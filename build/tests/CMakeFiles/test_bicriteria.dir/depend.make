# Empty dependencies file for test_bicriteria.
# This may be replaced when dependencies are built.
