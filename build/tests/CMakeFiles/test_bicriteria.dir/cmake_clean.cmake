file(REMOVE_RECURSE
  "CMakeFiles/test_bicriteria.dir/test_bicriteria.cpp.o"
  "CMakeFiles/test_bicriteria.dir/test_bicriteria.cpp.o.d"
  "test_bicriteria"
  "test_bicriteria.pdb"
  "test_bicriteria[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bicriteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
