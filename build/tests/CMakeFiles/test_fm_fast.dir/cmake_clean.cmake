file(REMOVE_RECURSE
  "CMakeFiles/test_fm_fast.dir/test_fm_fast.cpp.o"
  "CMakeFiles/test_fm_fast.dir/test_fm_fast.cpp.o.d"
  "test_fm_fast"
  "test_fm_fast.pdb"
  "test_fm_fast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fm_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
