# Empty compiler generated dependencies file for test_tree_distribution.
# This may be replaced when dependencies are built.
