file(REMOVE_RECURSE
  "CMakeFiles/test_tree_distribution.dir/test_tree_distribution.cpp.o"
  "CMakeFiles/test_tree_distribution.dir/test_tree_distribution.cpp.o.d"
  "test_tree_distribution"
  "test_tree_distribution.pdb"
  "test_tree_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
