# Empty dependencies file for test_cuttree.
# This may be replaced when dependencies are built.
