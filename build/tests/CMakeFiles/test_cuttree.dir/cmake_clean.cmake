file(REMOVE_RECURSE
  "CMakeFiles/test_cuttree.dir/test_cuttree.cpp.o"
  "CMakeFiles/test_cuttree.dir/test_cuttree.cpp.o.d"
  "test_cuttree"
  "test_cuttree.pdb"
  "test_cuttree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuttree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
