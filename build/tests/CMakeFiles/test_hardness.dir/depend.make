# Empty dependencies file for test_hardness.
# This may be replaced when dependencies are built.
