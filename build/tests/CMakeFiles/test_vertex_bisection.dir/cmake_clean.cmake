file(REMOVE_RECURSE
  "CMakeFiles/test_vertex_bisection.dir/test_vertex_bisection.cpp.o"
  "CMakeFiles/test_vertex_bisection.dir/test_vertex_bisection.cpp.o.d"
  "test_vertex_bisection"
  "test_vertex_bisection.pdb"
  "test_vertex_bisection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vertex_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
