# Empty dependencies file for test_vertex_bisection.
# This may be replaced when dependencies are built.
