file(REMOVE_RECURSE
  "CMakeFiles/test_push_relabel.dir/test_push_relabel.cpp.o"
  "CMakeFiles/test_push_relabel.dir/test_push_relabel.cpp.o.d"
  "test_push_relabel"
  "test_push_relabel.pdb"
  "test_push_relabel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_push_relabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
