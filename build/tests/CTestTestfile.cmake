# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_hypergraph[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_reduction[1]_include.cmake")
include("/root/repo/build/tests/test_cuttree[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_hardness[1]_include.cmake")
include("/root/repo/build/tests/test_vertex_bisection[1]_include.cmake")
include("/root/repo/build/tests/test_kway[1]_include.cmake")
include("/root/repo/build/tests/test_tree_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_decomposition[1]_include.cmake")
include("/root/repo/build/tests/test_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_bicriteria[1]_include.cmake")
include("/root/repo/build/tests/test_push_relabel[1]_include.cmake")
include("/root/repo/build/tests/test_fm_fast[1]_include.cmake")
include("/root/repo/build/tests/test_dot[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
