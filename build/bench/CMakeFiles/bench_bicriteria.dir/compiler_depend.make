# Empty compiler generated dependencies file for bench_bicriteria.
# This may be replaced when dependencies are built.
