
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_bicriteria.cpp" "bench/CMakeFiles/bench_bicriteria.dir/bench_bicriteria.cpp.o" "gcc" "bench/CMakeFiles/bench_bicriteria.dir/bench_bicriteria.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hardness/CMakeFiles/ht_hardness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cuttree/CMakeFiles/ht_cuttree.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ht_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ht_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ht_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/reduction/CMakeFiles/ht_reduction.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ht_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/ht_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
