file(REMOVE_RECURSE
  "CMakeFiles/bench_bicriteria.dir/bench_bicriteria.cpp.o"
  "CMakeFiles/bench_bicriteria.dir/bench_bicriteria.cpp.o.d"
  "bench_bicriteria"
  "bench_bicriteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bicriteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
