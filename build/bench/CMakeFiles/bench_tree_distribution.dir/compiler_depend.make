# Empty compiler generated dependencies file for bench_tree_distribution.
# This may be replaced when dependencies are built.
