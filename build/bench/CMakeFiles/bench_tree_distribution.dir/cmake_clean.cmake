file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_distribution.dir/bench_tree_distribution.cpp.o"
  "CMakeFiles/bench_tree_distribution.dir/bench_tree_distribution.cpp.o.d"
  "bench_tree_distribution"
  "bench_tree_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
