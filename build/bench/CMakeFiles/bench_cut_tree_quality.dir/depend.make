# Empty dependencies file for bench_cut_tree_quality.
# This may be replaced when dependencies are built.
