file(REMOVE_RECURSE
  "CMakeFiles/bench_cut_tree_quality.dir/bench_cut_tree_quality.cpp.o"
  "CMakeFiles/bench_cut_tree_quality.dir/bench_cut_tree_quality.cpp.o.d"
  "bench_cut_tree_quality"
  "bench_cut_tree_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cut_tree_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
