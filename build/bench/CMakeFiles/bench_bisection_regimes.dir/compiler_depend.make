# Empty compiler generated dependencies file for bench_bisection_regimes.
# This may be replaced when dependencies are built.
