file(REMOVE_RECURSE
  "CMakeFiles/bench_bisection_regimes.dir/bench_bisection_regimes.cpp.o"
  "CMakeFiles/bench_bisection_regimes.dir/bench_bisection_regimes.cpp.o.d"
  "bench_bisection_regimes"
  "bench_bisection_regimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisection_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
