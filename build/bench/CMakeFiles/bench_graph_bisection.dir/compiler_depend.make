# Empty compiler generated dependencies file for bench_graph_bisection.
# This may be replaced when dependencies are built.
