file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_bisection.dir/bench_graph_bisection.cpp.o"
  "CMakeFiles/bench_graph_bisection.dir/bench_graph_bisection.cpp.o.d"
  "bench_graph_bisection"
  "bench_graph_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
