# Empty dependencies file for bench_dense_vs_random.
# This may be replaced when dependencies are built.
