# Empty compiler generated dependencies file for bench_clique_expansion.
# This may be replaced when dependencies are built.
