file(REMOVE_RECURSE
  "CMakeFiles/bench_clique_expansion.dir/bench_clique_expansion.cpp.o"
  "CMakeFiles/bench_clique_expansion.dir/bench_clique_expansion.cpp.o.d"
  "bench_clique_expansion"
  "bench_clique_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clique_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
