# Empty compiler generated dependencies file for bench_edge_cut_tree_lb.
# This may be replaced when dependencies are built.
