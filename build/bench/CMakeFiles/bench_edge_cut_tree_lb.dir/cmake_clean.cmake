file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_cut_tree_lb.dir/bench_edge_cut_tree_lb.cpp.o"
  "CMakeFiles/bench_edge_cut_tree_lb.dir/bench_edge_cut_tree_lb.cpp.o.d"
  "bench_edge_cut_tree_lb"
  "bench_edge_cut_tree_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_cut_tree_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
