file(REMOVE_RECURSE
  "CMakeFiles/bench_vertex_bisection.dir/bench_vertex_bisection.cpp.o"
  "CMakeFiles/bench_vertex_bisection.dir/bench_vertex_bisection.cpp.o.d"
  "bench_vertex_bisection"
  "bench_vertex_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vertex_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
