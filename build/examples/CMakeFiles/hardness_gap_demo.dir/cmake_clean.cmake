file(REMOVE_RECURSE
  "CMakeFiles/hardness_gap_demo.dir/hardness_gap_demo.cpp.o"
  "CMakeFiles/hardness_gap_demo.dir/hardness_gap_demo.cpp.o.d"
  "hardness_gap_demo"
  "hardness_gap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardness_gap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
