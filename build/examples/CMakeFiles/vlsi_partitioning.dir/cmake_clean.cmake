file(REMOVE_RECURSE
  "CMakeFiles/vlsi_partitioning.dir/vlsi_partitioning.cpp.o"
  "CMakeFiles/vlsi_partitioning.dir/vlsi_partitioning.cpp.o.d"
  "vlsi_partitioning"
  "vlsi_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsi_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
