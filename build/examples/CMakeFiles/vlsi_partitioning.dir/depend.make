# Empty dependencies file for vlsi_partitioning.
# This may be replaced when dependencies are built.
