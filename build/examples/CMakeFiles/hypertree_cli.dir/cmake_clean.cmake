file(REMOVE_RECURSE
  "CMakeFiles/hypertree_cli.dir/hypertree_cli.cpp.o"
  "CMakeFiles/hypertree_cli.dir/hypertree_cli.cpp.o.d"
  "hypertree_cli"
  "hypertree_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypertree_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
