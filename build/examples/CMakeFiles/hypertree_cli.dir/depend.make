# Empty dependencies file for hypertree_cli.
# This may be replaced when dependencies are built.
