file(REMOVE_RECURSE
  "CMakeFiles/spmv_load_balancing.dir/spmv_load_balancing.cpp.o"
  "CMakeFiles/spmv_load_balancing.dir/spmv_load_balancing.cpp.o.d"
  "spmv_load_balancing"
  "spmv_load_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
