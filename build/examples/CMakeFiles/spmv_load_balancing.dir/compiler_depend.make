# Empty compiler generated dependencies file for spmv_load_balancing.
# This may be replaced when dependencies are built.
