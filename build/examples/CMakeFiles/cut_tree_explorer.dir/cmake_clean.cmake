file(REMOVE_RECURSE
  "CMakeFiles/cut_tree_explorer.dir/cut_tree_explorer.cpp.o"
  "CMakeFiles/cut_tree_explorer.dir/cut_tree_explorer.cpp.o.d"
  "cut_tree_explorer"
  "cut_tree_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cut_tree_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
