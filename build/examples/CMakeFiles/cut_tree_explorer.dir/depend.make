# Empty dependencies file for cut_tree_explorer.
# This may be replaced when dependencies are built.
