# Empty compiler generated dependencies file for ht_reduction.
# This may be replaced when dependencies are built.
