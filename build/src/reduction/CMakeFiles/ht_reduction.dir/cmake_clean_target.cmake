file(REMOVE_RECURSE
  "libht_reduction.a"
)
