file(REMOVE_RECURSE
  "CMakeFiles/ht_reduction.dir/clique_expansion.cpp.o"
  "CMakeFiles/ht_reduction.dir/clique_expansion.cpp.o.d"
  "CMakeFiles/ht_reduction.dir/dks_mku.cpp.o"
  "CMakeFiles/ht_reduction.dir/dks_mku.cpp.o.d"
  "CMakeFiles/ht_reduction.dir/mku_bisection.cpp.o"
  "CMakeFiles/ht_reduction.dir/mku_bisection.cpp.o.d"
  "CMakeFiles/ht_reduction.dir/star_expansion.cpp.o"
  "CMakeFiles/ht_reduction.dir/star_expansion.cpp.o.d"
  "libht_reduction.a"
  "libht_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
