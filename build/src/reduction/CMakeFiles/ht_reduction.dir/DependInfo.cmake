
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reduction/clique_expansion.cpp" "src/reduction/CMakeFiles/ht_reduction.dir/clique_expansion.cpp.o" "gcc" "src/reduction/CMakeFiles/ht_reduction.dir/clique_expansion.cpp.o.d"
  "/root/repo/src/reduction/dks_mku.cpp" "src/reduction/CMakeFiles/ht_reduction.dir/dks_mku.cpp.o" "gcc" "src/reduction/CMakeFiles/ht_reduction.dir/dks_mku.cpp.o.d"
  "/root/repo/src/reduction/mku_bisection.cpp" "src/reduction/CMakeFiles/ht_reduction.dir/mku_bisection.cpp.o" "gcc" "src/reduction/CMakeFiles/ht_reduction.dir/mku_bisection.cpp.o.d"
  "/root/repo/src/reduction/star_expansion.cpp" "src/reduction/CMakeFiles/ht_reduction.dir/star_expansion.cpp.o" "gcc" "src/reduction/CMakeFiles/ht_reduction.dir/star_expansion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ht_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/ht_hypergraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
