# CMake generated Testfile for 
# Source directory: /root/repo/src/cuttree
# Build directory: /root/repo/build/src/cuttree
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
