file(REMOVE_RECURSE
  "CMakeFiles/ht_cuttree.dir/decomposition_tree.cpp.o"
  "CMakeFiles/ht_cuttree.dir/decomposition_tree.cpp.o.d"
  "CMakeFiles/ht_cuttree.dir/dot.cpp.o"
  "CMakeFiles/ht_cuttree.dir/dot.cpp.o.d"
  "CMakeFiles/ht_cuttree.dir/edge_cut_trees.cpp.o"
  "CMakeFiles/ht_cuttree.dir/edge_cut_trees.cpp.o.d"
  "CMakeFiles/ht_cuttree.dir/quality.cpp.o"
  "CMakeFiles/ht_cuttree.dir/quality.cpp.o.d"
  "CMakeFiles/ht_cuttree.dir/tree.cpp.o"
  "CMakeFiles/ht_cuttree.dir/tree.cpp.o.d"
  "CMakeFiles/ht_cuttree.dir/tree_bisection.cpp.o"
  "CMakeFiles/ht_cuttree.dir/tree_bisection.cpp.o.d"
  "CMakeFiles/ht_cuttree.dir/tree_distribution.cpp.o"
  "CMakeFiles/ht_cuttree.dir/tree_distribution.cpp.o.d"
  "CMakeFiles/ht_cuttree.dir/tree_edge_partition.cpp.o"
  "CMakeFiles/ht_cuttree.dir/tree_edge_partition.cpp.o.d"
  "CMakeFiles/ht_cuttree.dir/vertex_cut_tree.cpp.o"
  "CMakeFiles/ht_cuttree.dir/vertex_cut_tree.cpp.o.d"
  "libht_cuttree.a"
  "libht_cuttree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_cuttree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
