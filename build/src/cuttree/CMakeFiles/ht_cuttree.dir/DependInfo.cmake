
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuttree/decomposition_tree.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/decomposition_tree.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/decomposition_tree.cpp.o.d"
  "/root/repo/src/cuttree/dot.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/dot.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/dot.cpp.o.d"
  "/root/repo/src/cuttree/edge_cut_trees.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/edge_cut_trees.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/edge_cut_trees.cpp.o.d"
  "/root/repo/src/cuttree/quality.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/quality.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/quality.cpp.o.d"
  "/root/repo/src/cuttree/tree.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/tree.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/tree.cpp.o.d"
  "/root/repo/src/cuttree/tree_bisection.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/tree_bisection.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/tree_bisection.cpp.o.d"
  "/root/repo/src/cuttree/tree_distribution.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/tree_distribution.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/tree_distribution.cpp.o.d"
  "/root/repo/src/cuttree/tree_edge_partition.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/tree_edge_partition.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/tree_edge_partition.cpp.o.d"
  "/root/repo/src/cuttree/vertex_cut_tree.cpp" "src/cuttree/CMakeFiles/ht_cuttree.dir/vertex_cut_tree.cpp.o" "gcc" "src/cuttree/CMakeFiles/ht_cuttree.dir/vertex_cut_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ht_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/ht_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ht_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ht_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/reduction/CMakeFiles/ht_reduction.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ht_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
