file(REMOVE_RECURSE
  "libht_cuttree.a"
)
