# Empty compiler generated dependencies file for ht_cuttree.
# This may be replaced when dependencies are built.
