file(REMOVE_RECURSE
  "CMakeFiles/ht_lp.dir/fractional_cut.cpp.o"
  "CMakeFiles/ht_lp.dir/fractional_cut.cpp.o.d"
  "CMakeFiles/ht_lp.dir/simplex.cpp.o"
  "CMakeFiles/ht_lp.dir/simplex.cpp.o.d"
  "CMakeFiles/ht_lp.dir/spectral.cpp.o"
  "CMakeFiles/ht_lp.dir/spectral.cpp.o.d"
  "libht_lp.a"
  "libht_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
