
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/fractional_cut.cpp" "src/lp/CMakeFiles/ht_lp.dir/fractional_cut.cpp.o" "gcc" "src/lp/CMakeFiles/ht_lp.dir/fractional_cut.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/lp/CMakeFiles/ht_lp.dir/simplex.cpp.o" "gcc" "src/lp/CMakeFiles/ht_lp.dir/simplex.cpp.o.d"
  "/root/repo/src/lp/spectral.cpp" "src/lp/CMakeFiles/ht_lp.dir/spectral.cpp.o" "gcc" "src/lp/CMakeFiles/ht_lp.dir/spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ht_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
