# Empty compiler generated dependencies file for ht_lp.
# This may be replaced when dependencies are built.
