file(REMOVE_RECURSE
  "libht_lp.a"
)
