file(REMOVE_RECURSE
  "CMakeFiles/ht_hardness.dir/dense_vs_random.cpp.o"
  "CMakeFiles/ht_hardness.dir/dense_vs_random.cpp.o.d"
  "CMakeFiles/ht_hardness.dir/dks.cpp.o"
  "CMakeFiles/ht_hardness.dir/dks.cpp.o.d"
  "libht_hardness.a"
  "libht_hardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
