file(REMOVE_RECURSE
  "libht_hardness.a"
)
