# Empty compiler generated dependencies file for ht_hardness.
# This may be replaced when dependencies are built.
