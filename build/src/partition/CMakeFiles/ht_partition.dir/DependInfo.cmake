
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/exact.cpp" "src/partition/CMakeFiles/ht_partition.dir/exact.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/exact.cpp.o.d"
  "/root/repo/src/partition/fm.cpp" "src/partition/CMakeFiles/ht_partition.dir/fm.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/fm.cpp.o.d"
  "/root/repo/src/partition/fm_fast.cpp" "src/partition/CMakeFiles/ht_partition.dir/fm_fast.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/fm_fast.cpp.o.d"
  "/root/repo/src/partition/graph_bisection.cpp" "src/partition/CMakeFiles/ht_partition.dir/graph_bisection.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/graph_bisection.cpp.o.d"
  "/root/repo/src/partition/kway.cpp" "src/partition/CMakeFiles/ht_partition.dir/kway.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/kway.cpp.o.d"
  "/root/repo/src/partition/min_ratio_cut.cpp" "src/partition/CMakeFiles/ht_partition.dir/min_ratio_cut.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/min_ratio_cut.cpp.o.d"
  "/root/repo/src/partition/mku.cpp" "src/partition/CMakeFiles/ht_partition.dir/mku.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/mku.cpp.o.d"
  "/root/repo/src/partition/multilevel.cpp" "src/partition/CMakeFiles/ht_partition.dir/multilevel.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/multilevel.cpp.o.d"
  "/root/repo/src/partition/sparsest_cut.cpp" "src/partition/CMakeFiles/ht_partition.dir/sparsest_cut.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/sparsest_cut.cpp.o.d"
  "/root/repo/src/partition/unbalanced_kcut.cpp" "src/partition/CMakeFiles/ht_partition.dir/unbalanced_kcut.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/unbalanced_kcut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ht_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/ht_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ht_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ht_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/reduction/CMakeFiles/ht_reduction.dir/DependInfo.cmake"
  "/root/repo/build/src/cuttree/CMakeFiles/ht_cuttree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
