file(REMOVE_RECURSE
  "CMakeFiles/ht_partition.dir/exact.cpp.o"
  "CMakeFiles/ht_partition.dir/exact.cpp.o.d"
  "CMakeFiles/ht_partition.dir/fm.cpp.o"
  "CMakeFiles/ht_partition.dir/fm.cpp.o.d"
  "CMakeFiles/ht_partition.dir/fm_fast.cpp.o"
  "CMakeFiles/ht_partition.dir/fm_fast.cpp.o.d"
  "CMakeFiles/ht_partition.dir/graph_bisection.cpp.o"
  "CMakeFiles/ht_partition.dir/graph_bisection.cpp.o.d"
  "CMakeFiles/ht_partition.dir/kway.cpp.o"
  "CMakeFiles/ht_partition.dir/kway.cpp.o.d"
  "CMakeFiles/ht_partition.dir/min_ratio_cut.cpp.o"
  "CMakeFiles/ht_partition.dir/min_ratio_cut.cpp.o.d"
  "CMakeFiles/ht_partition.dir/mku.cpp.o"
  "CMakeFiles/ht_partition.dir/mku.cpp.o.d"
  "CMakeFiles/ht_partition.dir/multilevel.cpp.o"
  "CMakeFiles/ht_partition.dir/multilevel.cpp.o.d"
  "CMakeFiles/ht_partition.dir/sparsest_cut.cpp.o"
  "CMakeFiles/ht_partition.dir/sparsest_cut.cpp.o.d"
  "CMakeFiles/ht_partition.dir/unbalanced_kcut.cpp.o"
  "CMakeFiles/ht_partition.dir/unbalanced_kcut.cpp.o.d"
  "libht_partition.a"
  "libht_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
