file(REMOVE_RECURSE
  "CMakeFiles/ht_core.dir/bicriteria.cpp.o"
  "CMakeFiles/ht_core.dir/bicriteria.cpp.o.d"
  "CMakeFiles/ht_core.dir/bisection.cpp.o"
  "CMakeFiles/ht_core.dir/bisection.cpp.o.d"
  "CMakeFiles/ht_core.dir/vertex_bisection.cpp.o"
  "CMakeFiles/ht_core.dir/vertex_bisection.cpp.o.d"
  "libht_core.a"
  "libht_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
