file(REMOVE_RECURSE
  "CMakeFiles/ht_hypergraph.dir/generators.cpp.o"
  "CMakeFiles/ht_hypergraph.dir/generators.cpp.o.d"
  "CMakeFiles/ht_hypergraph.dir/hypergraph.cpp.o"
  "CMakeFiles/ht_hypergraph.dir/hypergraph.cpp.o.d"
  "CMakeFiles/ht_hypergraph.dir/io.cpp.o"
  "CMakeFiles/ht_hypergraph.dir/io.cpp.o.d"
  "libht_hypergraph.a"
  "libht_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
