file(REMOVE_RECURSE
  "libht_hypergraph.a"
)
