# Empty dependencies file for ht_hypergraph.
# This may be replaced when dependencies are built.
