
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/gomory_hu.cpp" "src/flow/CMakeFiles/ht_flow.dir/gomory_hu.cpp.o" "gcc" "src/flow/CMakeFiles/ht_flow.dir/gomory_hu.cpp.o.d"
  "/root/repo/src/flow/hypergraph_gomory_hu.cpp" "src/flow/CMakeFiles/ht_flow.dir/hypergraph_gomory_hu.cpp.o" "gcc" "src/flow/CMakeFiles/ht_flow.dir/hypergraph_gomory_hu.cpp.o.d"
  "/root/repo/src/flow/min_cut.cpp" "src/flow/CMakeFiles/ht_flow.dir/min_cut.cpp.o" "gcc" "src/flow/CMakeFiles/ht_flow.dir/min_cut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ht_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/ht_hypergraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
