file(REMOVE_RECURSE
  "CMakeFiles/ht_flow.dir/gomory_hu.cpp.o"
  "CMakeFiles/ht_flow.dir/gomory_hu.cpp.o.d"
  "CMakeFiles/ht_flow.dir/hypergraph_gomory_hu.cpp.o"
  "CMakeFiles/ht_flow.dir/hypergraph_gomory_hu.cpp.o.d"
  "CMakeFiles/ht_flow.dir/min_cut.cpp.o"
  "CMakeFiles/ht_flow.dir/min_cut.cpp.o.d"
  "libht_flow.a"
  "libht_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
