# Empty compiler generated dependencies file for ht_flow.
# This may be replaced when dependencies are built.
