file(REMOVE_RECURSE
  "libht_flow.a"
)
