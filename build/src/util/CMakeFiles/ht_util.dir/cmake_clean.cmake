file(REMOVE_RECURSE
  "CMakeFiles/ht_util.dir/stats.cpp.o"
  "CMakeFiles/ht_util.dir/stats.cpp.o.d"
  "CMakeFiles/ht_util.dir/table.cpp.o"
  "CMakeFiles/ht_util.dir/table.cpp.o.d"
  "CMakeFiles/ht_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ht_util.dir/thread_pool.cpp.o.d"
  "libht_util.a"
  "libht_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
