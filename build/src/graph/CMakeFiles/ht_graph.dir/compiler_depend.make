# Empty compiler generated dependencies file for ht_graph.
# This may be replaced when dependencies are built.
