file(REMOVE_RECURSE
  "CMakeFiles/ht_graph.dir/generators.cpp.o"
  "CMakeFiles/ht_graph.dir/generators.cpp.o.d"
  "CMakeFiles/ht_graph.dir/graph.cpp.o"
  "CMakeFiles/ht_graph.dir/graph.cpp.o.d"
  "CMakeFiles/ht_graph.dir/io.cpp.o"
  "CMakeFiles/ht_graph.dir/io.cpp.o.d"
  "libht_graph.a"
  "libht_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
