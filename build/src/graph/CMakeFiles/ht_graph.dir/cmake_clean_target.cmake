file(REMOVE_RECURSE
  "libht_graph.a"
)
