// Parallel SpMV load balancing via the row-net hypergraph model — the
// scientific-computing application from the paper's introduction.
//
//   $ ./spmv_load_balancing [n] [rows]
//
// Columns of a sparse matrix are vertices; each row is a hyperedge over
// the columns it touches. A bisection assigns columns to two processors;
// every cut hyperedge is a row whose partial results must be combined
// across processors — exactly one communication per cut net, which is why
// the hypergraph model (not the graph model) counts communication volume
// correctly.
#include <cstdlib>
#include <iostream>

#include "ht/hypertree.hpp"

int main(int argc, char** argv) {
  const std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::int32_t rows = argc > 2 ? std::atoi(argv[2]) : 128;
  ht::Rng rng(7);
  const auto h = ht::hypergraph::spmv_row_net(n, rows, 6, 0.01, rng);
  std::cout << "row-net model: " << h.debug_string() << "\n"
            << "(vertices = matrix columns, hyperedges = rows)\n\n";

  ht::Table table({"partitioner", "comm volume (cut nets)",
                   "% of rows needing reduction"});
  auto run = [&](const char* name, const ht::core::BisectionReport& r) {
    table.add(name, r.solution.cut,
              100.0 * r.solution.cut / static_cast<double>(h.num_edges()));
  };
  run("theorem1", ht::core::bisect_theorem1(h));
  run("cut-tree (Cor. 3)", ht::core::bisect_via_cut_tree(h));
  {
    ht::Rng fm_rng(3);
    run("fm", ht::core::bisect_fm_baseline(h, fm_rng));
  }
  {
    ht::Rng rnd_rng(4);
    run("random", ht::core::bisect_random_baseline(h, rnd_rng));
  }
  table.print(std::cout);

  std::cout << "\nEach cut net is one row whose partial dot-product is "
               "reduced across the two processors per SpMV.\n";
  return 0;
}
