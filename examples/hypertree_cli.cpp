// Command-line partitioner: read an hMetis hypergraph, bisect or k-way
// partition it, print the assignment.
//
//   $ ./hypertree_cli <file.hmetis> [--algo=theorem1|cuttree|smalledges|fm]
//                     [--k=2] [--seed=42] [--deadline-ms=N] [--quiet]
//
// With --k > 2 the algorithm choice applies to the recursive-bisection
// engine is ignored and the FM-based recursive bisection is used.
// --deadline-ms runs the bisection as an anytime computation: on expiry
// the best-so-far feasible partition is printed, with its stop status.
// Output: one line per vertex with its part id, then a summary line
//   # cut=<delta_H> connectivity=<lambda-1> n=<n> m=<m> k=<k>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "ht/hypertree.hpp"

namespace {

struct Options {
  std::string path;
  std::string algo = "theorem1";
  std::int32_t k = 2;
  std::uint64_t seed = 42;
  std::int64_t deadline_ms = 0;
  bool quiet = false;
};

bool parse(int argc, char** argv, Options& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      out.algo = arg.substr(7);
    } else if (arg.rfind("--k=", 0) == 0) {
      out.k = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--seed=", 0) == 0) {
      out.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      out.deadline_ms = std::atoll(arg.c_str() + 14);
    } else if (arg == "--quiet") {
      out.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    } else {
      out.path = arg;
    }
  }
  return !out.path.empty() && out.k >= 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    std::cerr << "usage: hypertree_cli <file.hmetis> "
                 "[--algo=theorem1|cuttree|smalledges|fm] [--k=K] "
                 "[--seed=S] [--deadline-ms=N] [--quiet]\n";
    return 2;
  }
  auto parsed = ht::Solver::read_hmetis(options.path);
  if (!parsed.has_value()) {
    std::cerr << "failed to read " << options.path << ": "
              << parsed.status().to_string() << "\n";
    return 1;
  }
  const ht::hypergraph::Hypergraph& h = *parsed;

  ht::RunContext ctx = ht::RunContext::FromEnv();
  ctx.with_seed(options.seed);
  if (options.deadline_ms > 0)
    ctx.with_deadline_after(std::chrono::milliseconds(options.deadline_ms));
  ht::Solver solver(ctx);

  std::vector<std::int32_t> part(
      static_cast<std::size_t>(h.num_vertices()), 0);
  double cut = 0.0, connectivity = 0.0;
  std::string status = "OK";
  if (options.k == 2) {
    if (h.num_vertices() % 2 != 0) {
      std::cerr << "bisection needs an even number of vertices\n";
      return 1;
    }
    ht::StatusOr<ht::core::BisectionReport> report;
    if (options.algo == "theorem1") {
      report = solver.bisect(h);
    } else if (options.algo == "cuttree") {
      report = solver.bisect_via_cut_tree(h);
    } else if (options.algo == "smalledges") {
      ht::core::SmallEdgeOptions t;
      t.seed = options.seed;
      report = ht::core::bisect_small_edges(h, t);
    } else if (options.algo == "fm") {
      ht::Rng rng(options.seed);
      report = ht::core::bisect_fm_baseline(h, rng);
    } else {
      std::cerr << "unknown --algo=" << options.algo << "\n";
      return 2;
    }
    for (std::size_t v = 0; v < part.size(); ++v)
      part[v] = report->solution.side[v] ? 1 : 0;
    cut = report->solution.cut;
    connectivity = cut;
    status = report->status.code_name();
  } else {
    if (h.num_vertices() % options.k != 0) {
      std::cerr << "k must divide n for balanced partitioning\n";
      return 1;
    }
    ht::Rng rng(options.seed);
    const auto sol =
        (options.k & (options.k - 1)) == 0
            ? ht::partition::kway_recursive_bisection(h, options.k, rng)
            : ht::partition::kway_peel(h, options.k, rng);
    part = sol.part;
    cut = sol.cut;
    connectivity = sol.connectivity;
  }

  if (!options.quiet) {
    for (std::size_t v = 0; v < part.size(); ++v)
      std::cout << part[v] << "\n";
  }
  std::cout << "# cut=" << cut << " connectivity=" << connectivity
            << " n=" << h.num_vertices() << " m=" << h.num_edges()
            << " k=" << options.k << " algo=" << options.algo
            << " status=" << status << "\n";
  return 0;
}
