// Command-line front end: partition a hypergraph, build a .htsnap
// snapshot, or serve queries from one.
//
//   $ ./hypertree_cli <file.hmetis> [--algo=theorem1|cuttree|smalledges|fm]
//                     [--k=2] [--seed=42] [--deadline-ms=N] [--threads=N]
//                     [--quiet]
//   $ ./hypertree_cli build-snapshot <file.hmetis> <out.htsnap>
//                     [--seed=S] [--deadline-ms=N] [--threads=N]
//                     [--build-info=TEXT] [--prep=off|exact|aggressive]
//   $ ./hypertree_cli serve <snapshot.htsnap> [--deadline-ms=N]
//                     [--threads=N] [--slow-query-us=N]
//                     [--flight-dump=FILE] [--no-flight-recorder]
//
// Thread-count precedence (everywhere): --threads=N beats the HT_THREADS
// environment variable, which beats the hardware default. The flag is
// applied on top of RunContext::FromEnv(), which is what reads the
// environment.
//
// The partition mode is unchanged: with --k > 2 the FM-based recursive
// bisection is used regardless of --algo, --deadline-ms runs anytime and
// prints the best-so-far feasible partition with its stop status, and the
// output is one part id per line plus a summary line
//   # cut=<delta_H> connectivity=<lambda-1> n=<n> m=<m> k=<k> ...
//
// serve reads one query per line from stdin and answers on stdout:
//   minc <s> <t>   exact min s-t hyperedge cut (Gomory-Hu tree walk)
//   setcut <a_csv> <b_csv>  dominating delta_H(A, B) estimate (Lemma 7
//                  vertex-cut-tree DP); sides are comma-separated ids
//   bisect         balanced bisection (Corollary 3 cut-tree DP)
//   kway <k>       balanced k-way partition (decomposition-tree DP)
//   info           snapshot + server counters
//   swap <path>    hot-swap to another snapshot (old queries finish first)
//   stats          one-line versioned JSON snapshot of the metrics registry
//   metrics        Prometheus text exposition of the registry (multi-line,
//                  terminated by a line "# EOF")
//   flight         one-line versioned JSON dump of the flight recorder
//   quit           exit 0
//
// Observability flags: every query appends one record to the in-process
// flight recorder (disable with --no-flight-recorder); queries slower
// than --slow-query-us (default 100000) record a serve.slow_query trace
// span; --flight-dump=FILE rewrites FILE with the recorder dump whenever
// a query fails.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "ht/hypertree.hpp"

namespace {

struct Options {
  std::string command;  // "" = partition, or "build-snapshot" / "serve"
  std::string path;
  std::string out_path;
  std::string algo = "theorem1";
  std::string build_info;
  ht::prep::PrepConfig prep;
  std::int32_t k = 2;
  std::uint64_t seed = 42;
  std::int64_t deadline_ms = 0;
  std::int64_t threads = -1;  // -1 = not given, HT_THREADS applies
  std::int64_t slow_query_us = 100000;
  std::string flight_dump;
  bool flight_recorder = true;
  bool quiet = false;
};

bool parse(int argc, char** argv, Options& out) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      out.algo = arg.substr(7);
    } else if (arg.rfind("--k=", 0) == 0) {
      out.k = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--seed=", 0) == 0) {
      out.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      out.deadline_ms = std::atoll(arg.c_str() + 14);
    } else if (arg.rfind("--threads=", 0) == 0) {
      out.threads = std::atoll(arg.c_str() + 10);
      if (out.threads < 1) return false;
    } else if (arg.rfind("--build-info=", 0) == 0) {
      out.build_info = arg.substr(13);
    } else if (arg.rfind("--prep=", 0) == 0) {
      if (!ht::prep::parse_mode(arg.substr(7), &out.prep.mode)) {
        std::cerr << "unknown --prep mode (want off|exact|aggressive): "
                  << arg << "\n";
        return false;
      }
    } else if (arg.rfind("--slow-query-us=", 0) == 0) {
      out.slow_query_us = std::atoll(arg.c_str() + 16);
      if (out.slow_query_us < 0) return false;
    } else if (arg.rfind("--flight-dump=", 0) == 0) {
      out.flight_dump = arg.substr(14);
    } else if (arg == "--no-flight-recorder") {
      out.flight_recorder = false;
    } else if (arg == "--quiet") {
      out.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) return false;
  if (positional[0] == "build-snapshot") {
    if (positional.size() != 3) return false;
    out.command = positional[0];
    out.path = positional[1];
    out.out_path = positional[2];
    return true;
  }
  if (positional[0] == "serve") {
    if (positional.size() != 2) return false;
    out.command = positional[0];
    out.path = positional[1];
    return true;
  }
  if (positional.size() != 1) return false;
  out.path = positional[0];
  return out.k >= 2;
}

/// FromEnv() + the CLI flags; --threads (when given) overwrites the
/// HT_THREADS-derived default — the flag always wins.
ht::RunContext make_context(const Options& options) {
  ht::RunContext ctx = ht::RunContext::FromEnv();
  ctx.with_seed(options.seed);
  if (options.deadline_ms > 0)
    ctx.with_deadline_after(std::chrono::milliseconds(options.deadline_ms));
  if (options.threads > 0)
    ctx.with_threads(static_cast<std::size_t>(options.threads));
  return ctx;
}

int run_build_snapshot(const Options& options) {
  auto parsed = ht::Solver::read_hmetis(options.path);
  if (!parsed.has_value()) {
    std::cerr << "failed to read " << options.path << ": "
              << parsed.status().to_string() << "\n";
    return 1;
  }
  ht::Solver solver(make_context(options));
  ht::snapshot::BuildOptions build;
  build.seed = options.seed;
  build.build_info = options.build_info;
  build.prep = options.prep;
  ht::snapshot::BuildReport report;
  const ht::Status status =
      solver.build_snapshot(*parsed, options.out_path, build, &report);
  if (!status.ok() && report.bytes == 0) {
    std::cerr << "snapshot build failed: " << status.to_string() << "\n";
    return 1;
  }
  std::cout << "# snapshot=" << options.out_path << " bytes=" << report.bytes
            << " n=" << parsed->num_vertices() << " m=" << parsed->num_edges()
            << " gomory_hu=" << (report.gomory_hu_present ? 1 : 0)
            << " vct_nodes=" << report.vct_nodes
            << " decomp_nodes=" << report.decomp_nodes
            << " prep=" << ht::prep::mode_name(options.prep.mode)
            << " stored_n=" << report.stored_vertices
            << " stored_m=" << report.stored_edges
            << " prep_exact=" << (report.prep_exact ? 1 : 0)
            << " threads=" << solver.context().threads
            << " status=" << status.code_name() << "\n";
  return 0;
}

/// Parses "3,1,4" into vertex ids; false on empty or non-numeric input
/// (range checking is the server's job).
bool parse_id_csv(const std::string& text, std::vector<std::int32_t>& out) {
  out.clear();
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) return false;
    char* end = nullptr;
    const long value = std::strtol(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0') return false;
    out.push_back(static_cast<std::int32_t>(value));
  }
  return !out.empty();
}

int run_serve(const Options& options) {
  // The query path is pure tree DPs — no pool involvement — but the
  // resolved thread count (flag > HT_THREADS > hardware) is still
  // reported so operators can see what a swap-triggered rebuild would use.
  const ht::RunContext base = make_context(options);
  ht::Solver solver(base);
  ht::serve::ServeOptions serve_options;
  serve_options.flight_recorder = options.flight_recorder;
  serve_options.slow_query_ns =
      static_cast<std::uint64_t>(options.slow_query_us) * 1000;
  serve_options.flight_dump_path = options.flight_dump;
  auto server = solver.serve(options.path, serve_options);
  if (!server.has_value()) {
    std::cerr << "failed to open snapshot " << options.path << ": "
              << server.status().to_string() << "\n";
    return 1;
  }
  const auto info = server->info();
  std::cout << "# serving n=" << info.num_vertices << " m=" << info.num_edges
            << " version=" << info.format_version
            << " bytes=" << info.snapshot_bytes
            << " gomory_hu=" << (info.has_gomory_hu ? 1 : 0)
            << " cut_tree=" << (info.has_vertex_cut_tree ? 1 : 0)
            << " decomposition=" << (info.has_decomposition ? 1 : 0)
            << " threads=" << base.threads << "\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    // Each query gets a fresh context so --deadline-ms is per query, not
    // per process lifetime.
    ht::RunContext ctx = base;
    if (options.deadline_ms > 0)
      ctx.with_deadline_after(std::chrono::milliseconds(options.deadline_ms));
    if (cmd == "quit" || cmd == "exit") return 0;
    if (cmd == "info") {
      const auto now = server->info();
      std::cout << "info n=" << now.num_vertices << " m=" << now.num_edges
                << " stored_n=" << now.stored_vertices
                << " stored_m=" << now.stored_edges
                << " preprocessed=" << (now.preprocessed ? 1 : 0)
                << " queries=" << now.queries << " swaps=" << now.swaps
                << " epoch=" << now.epoch << "\n";
    } else if (cmd == "stats") {
      // One consistent registry copy, as sorted + escaped versioned JSON.
      std::cout << ht::obs::MetricsRegistry::global().snapshot_json() << "\n";
    } else if (cmd == "metrics") {
      // Prometheus text is multi-line; "# EOF" lets line-oriented callers
      // find the end without counting series.
      std::cout << ht::obs::prometheus_text(
                       ht::obs::MetricsRegistry::global().snapshot())
                << "# EOF\n";
    } else if (cmd == "flight") {
      std::cout << ht::obs::FlightRecorder::global().dump_json() << "\n";
    } else if (cmd == "minc") {
      std::int32_t s = -1, t = -1;
      if (!(in >> s >> t)) {
        std::cout << "error minc needs two vertex ids\n";
        continue;
      }
      const auto answer = server->min_cut(s, t, ctx);
      if (!answer.has_value()) {
        std::cout << "error " << answer.status().to_string() << "\n";
      } else {
        std::cout << "minc " << answer->value
                  << (answer->exact ? " exact" : " lower-bound") << "\n";
      }
    } else if (cmd == "setcut") {
      std::string a_csv, b_csv;
      if (!(in >> a_csv >> b_csv)) {
        std::cout << "error setcut needs two comma-separated id lists\n";
        continue;
      }
      std::vector<std::int32_t> a, b;
      if (!parse_id_csv(a_csv, a) || !parse_id_csv(b_csv, b)) {
        std::cout << "error setcut lists must be comma-separated ids\n";
        continue;
      }
      const auto answer = server->set_cut(a, b, ctx);
      if (!answer.has_value()) {
        std::cout << "error " << answer.status().to_string() << "\n";
      } else {
        std::cout << "setcut " << answer->value << "\n";
      }
    } else if (cmd == "bisect") {
      const auto answer = server->bisection(ctx);
      if (!answer.has_value()) {
        std::cout << "error " << answer.status().to_string() << "\n";
      } else {
        std::cout << "bisect cut=" << answer->cut
                  << " tree_cut=" << answer->tree_cut << "\n";
      }
    } else if (cmd == "kway") {
      std::int32_t k = 0;
      if (!(in >> k)) {
        std::cout << "error kway needs k\n";
        continue;
      }
      const auto answer = server->kway(k, ctx);
      if (!answer.has_value()) {
        std::cout << "error " << answer.status().to_string() << "\n";
      } else {
        std::cout << "kway cut=" << answer->cut
                  << " connectivity=" << answer->connectivity
                  << " tree_cut=" << answer->tree_cut << "\n";
      }
    } else if (cmd == "swap") {
      std::string path;
      if (!(in >> path)) {
        std::cout << "error swap needs a path\n";
        continue;
      }
      const ht::Status status = server->swap(path);
      if (!status.ok()) {
        std::cout << "error " << status.to_string() << "\n";
      } else {
        std::cout << "swapped " << path << "\n";
      }
    } else {
      std::cout << "error unknown command " << cmd << "\n";
    }
  }
  return 0;
}

int run_partition(const Options& options) {
  auto parsed = ht::Solver::read_hmetis(options.path);
  if (!parsed.has_value()) {
    std::cerr << "failed to read " << options.path << ": "
              << parsed.status().to_string() << "\n";
    return 1;
  }
  const ht::hypergraph::Hypergraph& h = *parsed;
  ht::Solver solver(make_context(options));

  std::vector<std::int32_t> part(
      static_cast<std::size_t>(h.num_vertices()), 0);
  double cut = 0.0, connectivity = 0.0;
  std::string status = "OK";
  if (options.k == 2) {
    if (h.num_vertices() % 2 != 0) {
      std::cerr << "bisection needs an even number of vertices\n";
      return 1;
    }
    ht::StatusOr<ht::core::BisectionReport> report;
    if (options.algo == "theorem1") {
      report = solver.bisect(h);
    } else if (options.algo == "cuttree") {
      report = solver.bisect_via_cut_tree(h);
    } else if (options.algo == "smalledges") {
      ht::core::SmallEdgeOptions t;
      t.seed = options.seed;
      report = ht::core::bisect_small_edges(h, t);
    } else if (options.algo == "fm") {
      ht::Rng rng(options.seed);
      report = ht::core::bisect_fm_baseline(h, rng);
    } else {
      std::cerr << "unknown --algo=" << options.algo << "\n";
      return 2;
    }
    for (std::size_t v = 0; v < part.size(); ++v)
      part[v] = report->solution.side[v] ? 1 : 0;
    cut = report->solution.cut;
    connectivity = cut;
    status = report->status.code_name();
  } else {
    if (h.num_vertices() % options.k != 0) {
      std::cerr << "k must divide n for balanced partitioning\n";
      return 1;
    }
    ht::Rng rng(options.seed);
    const auto sol =
        (options.k & (options.k - 1)) == 0
            ? ht::partition::kway_recursive_bisection(h, options.k, rng)
            : ht::partition::kway_peel(h, options.k, rng);
    part = sol.part;
    cut = sol.cut;
    connectivity = sol.connectivity;
  }

  if (!options.quiet) {
    for (std::size_t v = 0; v < part.size(); ++v)
      std::cout << part[v] << "\n";
  }
  std::cout << "# cut=" << cut << " connectivity=" << connectivity
            << " n=" << h.num_vertices() << " m=" << h.num_edges()
            << " k=" << options.k << " algo=" << options.algo
            << " threads=" << solver.context().threads
            << " status=" << status << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    std::cerr
        << "usage: hypertree_cli <file.hmetis> "
           "[--algo=theorem1|cuttree|smalledges|fm] [--k=K] [--seed=S] "
           "[--deadline-ms=N] [--threads=N] [--quiet]\n"
           "       hypertree_cli build-snapshot <file.hmetis> <out.htsnap> "
           "[--seed=S] [--deadline-ms=N] [--threads=N] [--build-info=TEXT] "
           "[--prep=off|exact|aggressive]\n"
           "       hypertree_cli serve <snapshot.htsnap> [--deadline-ms=N] "
           "[--threads=N] [--slow-query-us=N] [--flight-dump=FILE] "
           "[--no-flight-recorder]\n";
    return 2;
  }
  if (options.command == "build-snapshot") return run_build_snapshot(options);
  if (options.command == "serve") return run_serve(options);
  return run_partition(options);
}
