// Command-line partitioner: read an hMetis hypergraph, bisect or k-way
// partition it, print the assignment.
//
//   $ ./hypertree_cli <file.hmetis> [--algo=theorem1|cuttree|smalledges|fm]
//                     [--k=2] [--seed=42] [--quiet]
//
// With --k > 2 the algorithm choice applies to the recursive-bisection
// engine is ignored and the FM-based recursive bisection is used.
// Output: one line per vertex with its part id, then a summary line
//   # cut=<delta_H> connectivity=<lambda-1> n=<n> m=<m> k=<k>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/bisection.hpp"
#include "hypergraph/io.hpp"
#include "partition/kway.hpp"
#include "util/rng.hpp"

namespace {

struct Options {
  std::string path;
  std::string algo = "theorem1";
  std::int32_t k = 2;
  std::uint64_t seed = 42;
  bool quiet = false;
};

bool parse(int argc, char** argv, Options& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      out.algo = arg.substr(7);
    } else if (arg.rfind("--k=", 0) == 0) {
      out.k = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--seed=", 0) == 0) {
      out.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--quiet") {
      out.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    } else {
      out.path = arg;
    }
  }
  return !out.path.empty() && out.k >= 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    std::cerr << "usage: hypertree_cli <file.hmetis> "
                 "[--algo=theorem1|cuttree|smalledges|fm] [--k=K] "
                 "[--seed=S] [--quiet]\n";
    return 2;
  }
  ht::hypergraph::Hypergraph h;
  try {
    h = ht::hypergraph::read_hmetis_file(options.path);
  } catch (const std::exception& e) {
    std::cerr << "failed to read " << options.path << ": " << e.what()
              << "\n";
    return 1;
  }

  std::vector<std::int32_t> part(
      static_cast<std::size_t>(h.num_vertices()), 0);
  double cut = 0.0, connectivity = 0.0;
  try {
    if (options.k == 2) {
      if (h.num_vertices() % 2 != 0) {
        std::cerr << "bisection needs an even number of vertices\n";
        return 1;
      }
      ht::core::BisectionReport report;
      if (options.algo == "theorem1") {
        ht::core::Theorem1Options t;
        t.seed = options.seed;
        report = ht::core::bisect_theorem1(h, t);
      } else if (options.algo == "cuttree") {
        ht::core::CutTreeBisectionOptions t;
        t.seed = options.seed;
        report = ht::core::bisect_via_cut_tree(h, t);
      } else if (options.algo == "smalledges") {
        ht::core::SmallEdgeOptions t;
        t.seed = options.seed;
        report = ht::core::bisect_small_edges(h, t);
      } else if (options.algo == "fm") {
        ht::Rng rng(options.seed);
        report = ht::core::bisect_fm_baseline(h, rng);
      } else {
        std::cerr << "unknown --algo=" << options.algo << "\n";
        return 2;
      }
      for (std::size_t v = 0; v < part.size(); ++v)
        part[v] = report.solution.side[v] ? 1 : 0;
      cut = report.solution.cut;
      connectivity = cut;
    } else {
      if (h.num_vertices() % options.k != 0) {
        std::cerr << "k must divide n for balanced partitioning\n";
        return 1;
      }
      ht::Rng rng(options.seed);
      const auto sol =
          (options.k & (options.k - 1)) == 0
              ? ht::partition::kway_recursive_bisection(h, options.k, rng)
              : ht::partition::kway_peel(h, options.k, rng);
      part = sol.part;
      cut = sol.cut;
      connectivity = sol.connectivity;
    }
  } catch (const std::exception& e) {
    std::cerr << "partitioning failed: " << e.what() << "\n";
    return 1;
  }

  if (!options.quiet) {
    for (std::size_t v = 0; v < part.size(); ++v)
      std::cout << part[v] << "\n";
  }
  std::cout << "# cut=" << cut << " connectivity=" << connectivity
            << " n=" << h.num_vertices() << " m=" << h.num_edges()
            << " k=" << options.k << " algo=" << options.algo << "\n";
  return 0;
}
