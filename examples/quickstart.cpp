// Quickstart: build a hypergraph, bisect it three ways, inspect the cuts.
//
//   $ ./quickstart
//
// Walks through the public surface: the Hypergraph builder, the
// ht::Solver facade (Theorem 1 approximation and the Corollary 3
// cut-tree pipeline, both with anytime StatusOr results), and the FM
// baseline.
#include <iostream>

#include "ht/hypertree.hpp"

int main() {
  // A hypergraph with two obvious communities {0..3} and {4..7} and one
  // hyperedge straddling them.
  ht::hypergraph::Hypergraph h(8);
  h.add_edge({0, 1, 2});
  h.add_edge({1, 2, 3});
  h.add_edge({0, 2, 3});
  h.add_edge({4, 5, 6});
  h.add_edge({5, 6, 7});
  h.add_edge({4, 6, 7});
  h.add_edge({3, 4});  // the bridge
  h.finalize();

  std::cout << "instance: " << h.debug_string() << "\n\n";

  // One Solver, one run configuration. The default context has no
  // deadline; ctx.with_deadline_after(...) / with_cancel(...) would turn
  // every call below into an anytime run.
  ht::Solver solver;

  // 1. The paper's Theorem 1 algorithm (sparsest-cut peeling + piece DP).
  const auto t1 = solver.bisect(h);
  std::cout << "theorem 1 bisection cut      = " << t1->solution.cut
            << "  (OPT guess " << t1->opt_guess << ", "
            << t1->phase1_pieces << " pieces, status "
            << t1.status().code_name() << ")\n";

  // 2. Corollary 3: star expansion -> vertex cut tree -> balanced tree DP.
  const auto c3 = solver.bisect_via_cut_tree(h);
  std::cout << "cut-tree (Cor. 3) bisection  = " << c3->solution.cut << "\n";

  // 3. The practitioner baseline: multi-start Fiduccia–Mattheyses.
  ht::Rng rng(42);
  const auto fm = ht::core::bisect_fm_baseline(h, rng);
  std::cout << "FM baseline bisection        = " << fm.solution.cut << "\n\n";

  // All three should discover the planted structure: cut = 1 (the bridge).
  std::cout << "sides found by theorem 1: ";
  for (ht::hypergraph::VertexId v = 0; v < h.num_vertices(); ++v)
    std::cout << (t1->solution.side[static_cast<std::size_t>(v)] ? 'B' : 'A');
  std::cout << "\n";
  return 0;
}
