// VLSI netlist partitioning — the workload class that motivates hypergraph
// (rather than graph) cut models: a multi-pin net is cut ONCE no matter how
// many of its pins straddle the cut, which the clique expansion
// over-counts (Lemma 1's distortion, measured below).
//
//   $ ./vlsi_partitioning [n] [nets]
//
// Generates a netlist-like hypergraph, partitions it with every pipeline,
// and reports both the hyperedge cut (what a placer cares about) and the
// clique-expansion cut (what a graph partitioner would have optimized).
#include <cstdlib>
#include <iostream>

#include "ht/hypertree.hpp"

int main(int argc, char** argv) {
  const std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::int32_t nets = argc > 2 ? std::atoi(argv[2]) : 240;
  ht::Rng rng(2024);
  const auto h = ht::hypergraph::netlist_like(n, nets, 3, rng);
  const auto expansion = ht::reduction::clique_expansion(h);

  std::cout << "netlist: " << h.debug_string() << "\n"
            << "clique expansion: " << expansion.debug_string() << "\n\n";

  ht::Table table({"algorithm", "net cut (delta_H)",
                   "clique-model cut (delta_G')", "time(s)"});
  auto run = [&](const char* name, auto&& solve) {
    ht::Timer timer;
    const ht::core::BisectionReport report = solve();
    const double elapsed = timer.seconds();
    table.add(name, report.solution.cut,
              expansion.cut_weight(report.solution.side), elapsed);
  };
  run("theorem1", [&] { return ht::core::bisect_theorem1(h); });
  run("small-edges (Lemma 1)",
      [&] { return ht::core::bisect_small_edges(h); });
  run("cut-tree (Cor. 3)", [&] { return ht::core::bisect_via_cut_tree(h); });
  run("fm", [&] {
    ht::Rng fm_rng(7);
    return ht::core::bisect_fm_baseline(h, fm_rng);
  });
  table.print(std::cout);

  std::cout << "\nThe gap between the two cut columns is Lemma 1's "
               "distortion on real nets:\na graph partitioner optimizing "
               "delta_G' pays it invisibly.\n";
  return 0;
}
