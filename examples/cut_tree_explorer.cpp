// Cut-tree explorer: build the Section 3.1 vertex cut tree of a graph and
// interrogate it — compare gamma_T against gamma_G for chosen pairs, and
// watch the Figure 1 structure (separator children, infinite anchors).
//
//   $ ./cut_tree_explorer [rows] [cols]
//
// Uses a grid graph (the mesh workloads from the paper's introduction).
#include <cstdlib>
#include <iostream>

#include "ht/hypertree.hpp"

int main(int argc, char** argv) {
  const std::int32_t rows = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::int32_t cols = argc > 2 ? std::atoi(argv[2]) : 6;
  const auto g = ht::graph::grid(rows, cols);
  const std::int32_t n = g.num_vertices();
  std::cout << "graph: " << g.debug_string() << " (" << rows << "x" << cols
            << " grid)\n";

  ht::Solver solver;
  ht::cuttree::VertexCutTreeOptions options;
  options.threshold_override = 0.4;  // force visible decomposition
  const auto built = *solver.build_vertex_cut_tree(g, options);
  std::cout << "tree: " << built.tree.num_nodes() << " nodes, "
            << built.num_pieces << " pieces, separator weight "
            << built.separator_weight << " (threshold " << built.threshold
            << ")\n";
  std::cout << "separator vertices:";
  for (auto v : built.separator_vertices) std::cout << ' ' << v;
  std::cout << "\n\n";

  // Compare tree cuts against true graph cuts for a few pairs.
  ht::Table table({"A", "B", "gamma_G", "gamma_T", "ratio"});
  auto add_pair = [&](std::vector<std::int32_t> a,
                      std::vector<std::int32_t> b) {
    const double gg = ht::flow::min_vertex_cut(g, a, b).value;
    const double gt = ht::cuttree::tree_vertex_cut_flow(built.tree, a, b);
    auto fmt = [](const std::vector<std::int32_t>& s) {
      std::string out = "{";
      for (std::size_t i = 0; i < s.size(); ++i)
        out += std::to_string(s[i]) + (i + 1 < s.size() ? "," : "");
      return out + "}";
    };
    table.add(fmt(a), fmt(b), gg, gt, gg > 0 ? gt / gg : 0.0);
  };
  add_pair({0}, {n - 1});                    // opposite corners
  add_pair({0, 1}, {n - 1, n - 2});          // corner blocks
  add_pair({cols / 2}, {n - 1 - cols / 2});  // mid-edge vertices
  ht::Rng rng(1);
  for (int rep = 0; rep < 4; ++rep) {
    auto pick = rng.sample_without_replacement(n, 4);
    add_pair({pick[0], pick[1]}, {pick[2], pick[3]});
  }
  table.print(std::cout);

  // Aggregate quality over a larger random family.
  ht::Rng qrng(2);
  const auto pairs = ht::cuttree::random_set_pairs(n, 60, n / 6 + 1, qrng);
  const auto q = ht::cuttree::vertex_cut_tree_quality(g, built.tree, pairs);
  std::cout << "\nquality over " << q.pairs
            << " random pairs: max=" << q.max_ratio
            << " mean=" << q.mean_ratio
            << " dominating=" << (q.dominating ? "yes" : "NO") << "\n";
  return 0;
}
