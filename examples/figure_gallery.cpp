// Regenerates the paper's figures as Graphviz DOT files:
//
//   figure1.dot — the Section 3.1 vertex cut tree of a small graph (the
//                 separator-root / infinite-anchor structure of Figure 1);
//   figure2.dot — the Theorem 7 lower-bound hypergraph (star + heavy
//                 spanning hyperedge), drawn bipartite;
//   figure3.dot — the Lemma 8 weighted graph GH.
//
//   $ ./figure_gallery [out_dir]     # then: dot -Tsvg figure1.dot
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "ht/hypertree.hpp"

namespace {

void write(const std::string& path, const std::string& what,
           const std::function<void(std::ostream&)>& body) {
  std::ofstream os(path);
  if (!os.good()) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  body(os);
  std::cout << "wrote " << path << "  (" << what << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  // Figure 1: the cut-tree structure, built for a 3x4 grid at a permissive
  // threshold so the decomposition is visible.
  {
    const auto g = ht::graph::grid(3, 4);
    ht::cuttree::VertexCutTreeOptions options;
    options.threshold_override = 0.45;
    const auto built = ht::cuttree::build_vertex_cut_tree(g, options);
    write(dir + "/figure1.dot",
          "Section 3.1 tree: root = separator set, boxes = pieces",
          [&](std::ostream& os) { ht::write_dot(built.tree, os); });
  }
  // Figure 2: the Theorem 7 instance.
  {
    const auto fig = ht::hypergraph::figure2(9);
    write(dir + "/figure2.dot",
          "Theorem 7 hypergraph: star edges + sqrt(n)-weight spanning edge",
          [&](std::ostream& os) { ht::write_dot(fig.hypergraph, os); });
  }
  // Figure 3: the Lemma 8 graph GH.
  {
    const auto fig = ht::graph::figure3_gh(9);
    write(dir + "/figure3.dot",
          "Lemma 8 graph GH: t(sqrt n) - u_i(sqrt n + 1) - w_i(1) - v(n)",
          [&](std::ostream& os) { ht::write_dot(fig.graph, os); });
  }
  return 0;
}
