// Dense vs Random demo — the structure behind the paper's lower bound
// (Corollary 1): a planted instance hides an ell-union of size k that no
// efficient search finds, while random instances provably have none.
//
//   $ ./hardness_gap_demo [n] [k]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "ht/hypertree.hpp"

int main(int argc, char** argv) {
  const std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 150;
  const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::int32_t r = 3;
  const double beta = 1.5;
  ht::Rng rng(99);
  const double p = std::pow(static_cast<double>(n), 1.0 + 0.5 - r);
  const auto planted = ht::hypergraph::planted_dense(n, p, r, k, beta, rng);
  const auto ell = static_cast<std::int64_t>(
      std::llround(std::pow(static_cast<double>(k), 1.0 + beta) / r));

  std::cout << "planted instance: " << planted.hypergraph.debug_string()
            << ", planted " << planted.hypergraph.num_edges() -
                                   planted.first_planted_edge
            << " edges on " << k << " vertices; ell = " << ell << "\n\n";

  // The witness the adversary knows.
  std::vector<ht::hypergraph::EdgeId> witness;
  for (ht::hypergraph::EdgeId e = planted.first_planted_edge;
       e < planted.hypergraph.num_edges() &&
       static_cast<std::int64_t>(witness.size()) < ell;
       ++e)
    witness.push_back(e);
  std::cout << "adversary's witness union      = "
            << ht::reduction::mku_union_weight(planted.hypergraph, witness)
            << "   (<= k = " << k << ")\n";

  // What efficient search sees.
  const auto greedy = ht::partition::mku_local_search(
      planted.hypergraph, static_cast<std::int32_t>(ell), 2);
  std::cout << "greedy + local search finds    = " << greedy.union_weight
            << "\n";

  ht::Rng rng2(7);
  const auto random_h = ht::hypergraph::random_uniform(
      n, planted.hypergraph.num_edges(), r, rng2);
  ht::Rng eval(8);
  const auto random_cov =
      ht::hardness::union_coverage(random_h, ell, eval, 32);
  std::cout << "pure-random instance greedy    = " << random_cov.greedy_union
            << "\n\n";

  std::cout
      << "The planted structure exists (witness ~ " << k
      << ") but greedy lands near the random baseline —\nthis "
         "indistinguishability is Conjecture 1, which Corollary 1 converts "
         "into the n^{1/4-eps}\nhardness of Minimum Hypergraph Bisection.\n";
  return 0;
}
