// Extension experiment: k-way partitioning built on the paper's
// primitives — recursive bisection vs unbalanced-k-cut peeling
// (Section 2.1's subroutine) vs random, on planted multi-community and
// netlist workloads. Objectives: plain cut and connectivity (lambda - 1).
#include <iostream>

#include "bench_common.hpp"
#include "hypergraph/generators.hpp"
#include "partition/kway.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

void run_instance(const std::string& name,
                  const ht::hypergraph::Hypergraph& h, std::int32_t k,
                  double planted_connectivity) {
  ht::Table table({"method", "cut", "connectivity", "time(s)"});
  {
    ht::Timer t;
    ht::Rng rng(1);
    const auto sol = ht::partition::kway_recursive_bisection(h, k, rng);
    table.add("recursive bisection", sol.cut, sol.connectivity, t.seconds());
  }
  {
    ht::Timer t;
    ht::Rng rng(2);
    const auto sol = ht::partition::kway_peel(h, k, rng);
    table.add("peel (unbalanced k-cut)", sol.cut, sol.connectivity,
              t.seconds());
  }
  {
    ht::Timer t;
    ht::Rng rng(3);
    const auto sol = ht::partition::kway_random(h, k, rng);
    table.add("random", sol.cut, sol.connectivity, t.seconds());
  }
  std::cout << name << " (n=" << h.num_vertices() << ", m=" << h.num_edges()
            << ", k=" << k << ", planted connectivity <= "
            << planted_connectivity << "):\n";
  ht::bench::print_table(table);
}

}  // namespace

int main() {
  ht::bench::print_header(
      "k-way partitioning from the paper's primitives",
      "extension: recursive bisection & Section 2.1 peeling vs random");
  {
    ht::Rng rng(10);
    run_instance("planted 4 communities",
                 ht::hypergraph::planted_parts(4, 16, 3, 80, 6, rng), 4,
                 6.0);
  }
  {
    ht::Rng rng(11);
    run_instance("planted 8 communities",
                 ht::hypergraph::planted_parts(8, 8, 3, 40, 8, rng), 8, 8.0);
  }
  {
    ht::Rng rng(12);
    run_instance("netlist", ht::hypergraph::netlist_like(128, 220, 3, rng),
                 4, -1.0);
  }
  return 0;
}
