// Experiment T6: Theorem 6 — edge cut trees cannot represent hypergraph
// cuts: on the single-spanning-hyperedge instance, every edge cut tree has
// quality Omega(n).
//
// We evaluate every natural tree topology a practitioner would reach for
// (star, spectral path, balanced binary, random, Gomory–Hu of the clique
// expansion), each with the domination-correct induced edge weights, and
// report its measured quality. All of them should scale linearly with n —
// that is the theorem's content.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cuttree/edge_cut_trees.hpp"
#include "cuttree/quality.hpp"
#include "hypergraph/generators.hpp"
#include "util/rng.hpp"

namespace {

using ht::cuttree::Tree;
using ht::cuttree::VertexPair;

std::vector<VertexPair> bipartition_pairs(std::int32_t n, ht::Rng& rng) {
  std::vector<VertexPair> pairs;
  // Balanced random bipartitions + alternating pattern + small sets.
  for (int rep = 0; rep < 8; ++rep) {
    auto pick = rng.sample_without_replacement(n, n / 2);
    std::vector<bool> chosen(static_cast<std::size_t>(n), false);
    for (auto v : pick) chosen[static_cast<std::size_t>(v)] = true;
    VertexPair p;
    for (std::int32_t v = 0; v < n; ++v)
      (chosen[static_cast<std::size_t>(v)] ? p.first : p.second).push_back(v);
    pairs.push_back(std::move(p));
  }
  VertexPair alternating;
  for (std::int32_t v = 0; v < n; ++v)
    (v % 2 == 0 ? alternating.first : alternating.second).push_back(v);
  pairs.push_back(std::move(alternating));
  for (std::int32_t size : {1, 2, n / 4}) {
    if (size < 1 || size >= n) continue;
    VertexPair p;
    for (std::int32_t v = 0; v < n; ++v)
      (v < size ? p.first : p.second).push_back(v);
    pairs.push_back(std::move(p));
  }
  return pairs;
}

}  // namespace

int main() {
  ht::bench::print_header(
      "T6: edge cut trees vs the single-spanning-hyperedge instance",
      "every edge cut tree has quality Omega(n)   [Theorem 6]");

  ht::Table table({"n", "star", "path", "binary", "random", "gomory-hu",
                   "best/n"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {8, 16, 32, 64, 128}) {
    ht::Rng rng(17 + static_cast<std::uint64_t>(n));
    const auto h = ht::hypergraph::single_spanning_edge(n);
    auto pairs = bipartition_pairs(n, rng);

    std::vector<std::int32_t> order(static_cast<std::size_t>(n));
    for (std::int32_t v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;

    std::vector<std::pair<std::string, Tree>> trees;
    trees.emplace_back("star", ht::cuttree::star_topology(n));
    trees.emplace_back("path", ht::cuttree::path_topology(order));
    trees.emplace_back("binary", ht::cuttree::balanced_binary_topology(order));
    trees.emplace_back("random", ht::cuttree::random_topology(n, rng));
    trees.emplace_back("gomory-hu", ht::cuttree::gomory_hu_topology(h));

    std::vector<std::string> row{std::to_string(n)};
    double best = 1e300;
    for (auto& [name, tree] : trees) {
      ht::cuttree::assign_induced_weights(h, tree);
      const auto q = ht::cuttree::edge_cut_tree_quality(h, tree, pairs);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3g", q.quality);
      row.push_back(buf);
      best = std::min(best, q.quality);
    }
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.3g", best / n);
    row.push_back(ratio);
    table.add_row(std::move(row));
    xs.push_back(n);
    ys.push_back(best);
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("best-topology", xs, ys, ">= 1 (linear in n)");
  return 0;
}
