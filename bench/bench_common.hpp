// Shared helpers for the experiment benches.
//
// Every bench prints aligned tables via ht::Table; a final "shape" line
// reports the empirical log-log growth exponent so EXPERIMENTS.md can
// compare it with the paper's bound directly.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ht::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n==== " << experiment << " ====\n"
            << "paper claim: " << claim << "\n\n";
}

inline void print_table(const ht::Table& table) {
  table.print(std::cout);
  std::cout << '\n';
}

/// Prints the measured growth exponent alongside the claimed one.
inline void print_shape(const std::string& series,
                        const std::vector<double>& x,
                        const std::vector<double>& y,
                        const std::string& claimed) {
  if (x.size() >= 2) {
    std::cout << "shape[" << series
              << "]: measured exponent = " << ht::log_log_slope(x, y)
              << "  (paper: " << claimed << ")\n";
  }
}

}  // namespace ht::bench
