// Experiment T1-UB-{unw, w, hyp}: Table 1's cut-tree quality upper bounds.
//
//   unweighted vertex cuts : quality O(sqrt(n)      * log^{3/4} n)
//   weighted vertex cuts   : quality O(sqrt(n wavg) * log^{3/4} n)
//   hypergraph cuts        : quality O(sqrt(n davg) * log^{3/4} n)
//
// For each family we sweep n, build the Section 3.1 vertex cut tree, and
// measure the worst gamma_T / gamma_G (resp. gamma_T / delta_H via the
// Lemma 7 star expansion) over singleton + random set pairs. The measured
// quality should stay below the bound and grow no faster than ~sqrt(n).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cuttree/quality.hpp"
#include "cuttree/tree.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/star_expansion.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using ht::cuttree::VertexPair;

std::vector<VertexPair> evaluation_pairs(std::int32_t n, ht::Rng& rng) {
  // Mix of singleton pairs (sampled) and random set pairs.
  std::vector<VertexPair> pairs;
  const auto singles = std::min<std::int32_t>(n * (n - 1) / 2, 40);
  for (std::int32_t i = 0; i < singles; ++i) {
    auto pick = rng.sample_without_replacement(n, 2);
    pairs.push_back({{pick[0]}, {pick[1]}});
  }
  auto sets = ht::cuttree::random_set_pairs(n, 40, std::max(2, n / 8), rng);
  pairs.insert(pairs.end(), sets.begin(), sets.end());
  return pairs;
}

void unweighted_rows() {
  ht::bench::print_header(
      "T1-UB-unweighted: vertex cut tree quality, unit weights",
      "quality = O(sqrt(n) log^{3/4} n)   [Theorem 5, W = n]");
  ht::Table table({"family", "n", "pieces", "w(S)", "quality(max)",
                   "quality(mean)", "dominating", "bound"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {24, 48, 96, 192, 288}) {
    ht::Rng rng(1000 + static_cast<std::uint64_t>(n));
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    const auto built = ht::cuttree::build_vertex_cut_tree(g);
    auto pairs = evaluation_pairs(n, rng);
    const auto q = ht::cuttree::vertex_cut_tree_quality(g, built.tree, pairs);
    const double logn = std::log2(static_cast<double>(n));
    const double bound =
        std::sqrt(static_cast<double>(n)) * std::pow(logn, 0.75);
    table.add("gnp", n, built.num_pieces, built.separator_weight, q.max_ratio,
              q.mean_ratio, q.dominating ? "yes" : "NO", bound);
    xs.push_back(n);
    ys.push_back(q.max_ratio);
  }
  for (std::int32_t side : {5, 8, 12, 16}) {
    const std::int32_t n = side * side;
    ht::Rng rng(2000 + static_cast<std::uint64_t>(n));
    const auto g = ht::graph::grid(side, side);
    const auto built = ht::cuttree::build_vertex_cut_tree(g);
    auto pairs = evaluation_pairs(n, rng);
    const auto q = ht::cuttree::vertex_cut_tree_quality(g, built.tree, pairs);
    const double logn = std::log2(static_cast<double>(n));
    const double bound =
        std::sqrt(static_cast<double>(n)) * std::pow(logn, 0.75);
    table.add("grid", n, built.num_pieces, built.separator_weight,
              q.max_ratio, q.mean_ratio, q.dominating ? "yes" : "NO", bound);
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("unweighted-gnp", xs, ys, "<= 0.5 (+polylog)");
}

void weighted_rows() {
  ht::bench::print_header(
      "T1-UB-weighted: vertex cut tree quality, weighted vertices",
      "quality = O(sqrt(n * wavg) log^{3/4} n)   [Theorem 5, W = n*wavg]");
  ht::Table table(
      {"family", "n", "W", "quality(max)", "dominating", "bound"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {24, 48, 96, 192}) {
    ht::Rng rng(3000 + static_cast<std::uint64_t>(n));
    auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    // Heavy-tailed weights: a few heavy hubs, as in the GH instance.
    for (std::int32_t v = 0; v < n; ++v)
      g.set_vertex_weight(
          v, rng.next_bool(0.1) ? std::sqrt(static_cast<double>(n)) : 1.0);
    const auto built = ht::cuttree::build_vertex_cut_tree(g);
    auto pairs = evaluation_pairs(n, rng);
    const auto q = ht::cuttree::vertex_cut_tree_quality(g, built.tree, pairs);
    const double W = g.total_vertex_weight();
    const double bound =
        std::sqrt(W) * std::pow(std::log2(static_cast<double>(n)), 0.75);
    table.add("gnp+hubs", n, W, q.max_ratio, q.dominating ? "yes" : "NO",
              bound);
    xs.push_back(n);
    ys.push_back(q.max_ratio);
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("weighted-gnp", xs, ys, "<= 0.5 in W (+polylog)");
}

void hypergraph_rows() {
  ht::bench::print_header(
      "T1-UB-hypergraph: cut tree for hypergraph cuts (via star expansion)",
      "quality = O(sqrt(n * davg) log^{3/4} n)   [Corollary of Thm 5 + "
      "Lemma 7]");
  ht::Table table({"n", "m", "davg", "quality(max)", "quality(mean)",
                   "dominating", "bound"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {16, 32, 64, 128}) {
    ht::Rng rng(4000 + static_cast<std::uint64_t>(n));
    const auto h = ht::hypergraph::random_uniform(n, 2 * n, 3, rng);
    const auto star = ht::reduction::star_expansion(h);
    const auto built = ht::cuttree::build_vertex_cut_tree(star.graph);
    auto pairs = evaluation_pairs(n, rng);
    const auto q =
        ht::cuttree::hypergraph_cut_tree_quality(h, built.tree, pairs);
    const double davg = h.avg_degree();
    const double bound = std::sqrt(static_cast<double>(n) * davg) *
                         std::pow(std::log2(static_cast<double>(n)), 0.75);
    table.add(n, h.num_edges(), davg, q.max_ratio, q.mean_ratio,
              q.dominating ? "yes" : "NO", bound);
    xs.push_back(n);
    ys.push_back(q.max_ratio);
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("hypergraph", xs, ys, "<= 0.5 in n*davg (+polylog)");
}

void parallel_scaling_rows() {
  // Parallel decomposition engine: build + quality-evaluate the largest
  // unweighted instance (gnp n=288) with a 1-thread pool and with the
  // configured pool, and check the determinism contract (byte-identical
  // trees) along the way. On a multi-core machine the speedup column
  // should approach the core count; on 1 core it hovers around 1.0.
  ht::bench::print_header(
      "PAR-scaling: decomposition engine, 1 thread vs configured pool",
      "byte-identical trees at every thread count; wall time scales down");
  constexpr std::int32_t n = 288;
  auto run = [] {
    ht::Rng rng(1000 + static_cast<std::uint64_t>(n));
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    const auto built = ht::cuttree::build_vertex_cut_tree(g);
    auto pairs = evaluation_pairs(n, rng);
    const auto q = ht::cuttree::vertex_cut_tree_quality(g, built.tree, pairs);
    return std::make_pair(ht::cuttree::tree_signature(built.tree),
                          q.max_ratio);
  };

  ht::Table table({"threads", "build+quality (s)", "speedup", "quality(max)"});
  ht::PerfCounters::global().reset();
  ht::ThreadPool::reset_global(1);
  ht::Timer t1;
  const auto serial = run();
  const double serial_s = t1.seconds();
  table.add(1, serial_s, 1.0, serial.second);

  ht::PerfCounters::global().reset();
  ht::ThreadPool::reset_global();  // HT_THREADS env or hardware concurrency
  const auto threads = ht::ThreadPool::global().size();
  ht::Timer tn;
  const auto parallel = run();
  const double parallel_s = tn.seconds();
  table.add(static_cast<std::int64_t>(threads), parallel_s,
            serial_s / parallel_s, parallel.second);
  ht::bench::print_table(table);
  std::cout << "deterministic across thread counts: "
            << (serial.first == parallel.first ? "yes" : "NO") << "\n"
            << ht::PerfCounters::global().report();
}

}  // namespace

int main() {
  unweighted_rows();
  weighted_rows();
  hypergraph_rows();
  parallel_scaling_rows();
  return 0;
}
