// Preprocessing-pipeline benchmark: quality-loss-vs-speedup curves for
// the staged prep pipeline (kernelization / label propagation / cut
// sparsification) across three generator families, plus hard gates on
// the pipeline's contracts.
//
// Per (family, mode) cell:
//  * reduction_ratio — (vertices + pins) shrink of the reduced instance;
//  * minc_orig / minc_red — global min cut (Gomory–Hu tree minimum) of
//    the original vs. the reduced instance;
//  * build speedup — full snapshot build (all three tree artifacts) on
//    the original vs. the preprocessed path;
//  * bisect_loss_pct — balanced-bisection cut served from the
//    preprocessed snapshot, evaluated on the ORIGINAL hypergraph,
//    relative to the prep-off answer.
//
// Hard gates (non-zero exit — perf-smoke runs this as a regression
// gate, not a timing printout):
//  * exact mode preserves the global min-cut value on every family;
//  * at least one family reaches >= 5x reduction at < 5% bisection
//    cut loss.
//
// Output: a table plus BENCH_preprocess.json; CI validates the JSON and
// soft-warns when the headline reduction or quality loss regresses
// against bench/baselines/BENCH_preprocess_baseline.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ht/hypertree.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ht::hypergraph::Hypergraph;

double ms_since(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin)
      .count();
}

/// Global minimum cut as the Gomory–Hu tree's cheapest parent edge
/// (exact for connected instances).
double global_min_cut(const Hypergraph& h) {
  const auto gh = ht::flow::hypergraph_gomory_hu_run(h);
  double best = -1.0;
  for (std::int32_t v = 0; v < h.num_vertices(); ++v) {
    if (v == gh.tree.root) continue;
    const double cut = gh.tree.parent_cut[static_cast<std::size_t>(v)];
    if (best < 0.0 || cut < best) best = cut;
  }
  return best;
}

/// delta_H of a side assignment, evaluated directly on `h`.
double side_cut(const Hypergraph& h, const std::vector<bool>& side) {
  double cut = 0.0;
  for (std::int32_t e = 0; e < h.num_edges(); ++e) {
    bool saw0 = false, saw1 = false;
    for (const std::int32_t v : h.pins(e)) {
      (side[static_cast<std::size_t>(v)] ? saw1 : saw0) = true;
      if (saw0 && saw1) break;
    }
    if (saw0 && saw1) cut += h.edge_weight(e);
  }
  return cut;
}

/// Duplicates every edge of `base` `copies` times — the workload the
/// exact duplicate-merge rule collapses back down.
Hypergraph replicate_edges(const Hypergraph& base, int copies) {
  Hypergraph h(base.num_vertices());
  for (int c = 0; c < copies; ++c) {
    for (std::int32_t e = 0; e < base.num_edges(); ++e) {
      const auto pins = base.pins(e);
      h.add_edge({pins.begin(), pins.end()}, base.edge_weight(e));
    }
  }
  h.finalize();
  return h;
}

struct Cell {
  std::string family;
  std::string mode;
  std::int32_t n = 0, red_n = 0;
  std::int32_t m = 0, red_m = 0;
  std::int64_t pins = 0, red_pins = 0;
  double reduction_ratio = 1.0;
  double pipeline_ms = 0.0;
  double minc_orig = -1.0, minc_red = -1.0;
  double build_off_ms = 0.0, build_prep_ms = 0.0, speedup = 1.0;
  double bisect_cut_off = -1.0, bisect_cut_prep = -1.0;
  double bisect_loss_pct = 0.0;
  bool exact = false;
};

/// Builds a snapshot under `config`, serves one bisection from it, and
/// evaluates the answer's cut on the ORIGINAL hypergraph. Returns the
/// build wall time; cut < 0 flags a failed query.
double build_and_bisect(const Hypergraph& h, const ht::prep::PrepConfig& config,
                        const std::string& path, double* cut_on_original) {
  ht::snapshot::BuildOptions options;
  options.seed = 7;
  options.prep = config;
  const auto begin = Clock::now();
  const ht::Status st = ht::snapshot::write(h, path, options);
  const double build_ms = ms_since(begin);
  *cut_on_original = -1.0;
  if (!st.ok()) return build_ms;
  auto server = ht::TreeServer::open(path);
  if (!server.has_value()) return build_ms;
  const auto answer = server->bisection();
  if (answer.has_value()) *cut_on_original = side_cut(h, answer->side);
  return build_ms;
}

Cell run_cell(const std::string& family, const Hypergraph& h,
              ht::prep::PrepConfig::Mode mode, double minc_orig,
              double build_off_ms, double bisect_cut_off) {
  Cell cell;
  cell.family = family;
  cell.mode = ht::prep::mode_name(mode);
  cell.n = h.num_vertices();
  cell.m = h.num_edges();
  cell.pins = ht::prep::total_pins(h);
  cell.minc_orig = minc_orig;
  cell.build_off_ms = build_off_ms;
  cell.bisect_cut_off = bisect_cut_off;

  ht::prep::PrepConfig config;
  config.mode = mode;
  const auto begin = Clock::now();
  const auto result = ht::prep::run_pipeline(h, config);
  cell.pipeline_ms = ms_since(begin);
  cell.red_n = result->reduced.num_vertices();
  cell.red_m = result->reduced.num_edges();
  cell.red_pins = ht::prep::total_pins(result->reduced);
  cell.reduction_ratio = result->reduction_ratio();
  cell.exact = result->exact();
  cell.minc_red = cell.red_n >= 2 ? global_min_cut(result->reduced)
                                  : 0.0;

  const std::string path = "bench_preprocess_" + family + "_" + cell.mode +
                           ".htsnap";
  cell.build_prep_ms =
      build_and_bisect(h, config, path, &cell.bisect_cut_prep);
  std::remove(path.c_str());
  cell.speedup = cell.build_prep_ms > 0.0
                     ? cell.build_off_ms / cell.build_prep_ms
                     : 1.0;
  if (cell.bisect_cut_off > 0.0 && cell.bisect_cut_prep >= 0.0) {
    cell.bisect_loss_pct = 100.0 *
                           (cell.bisect_cut_prep - cell.bisect_cut_off) /
                           cell.bisect_cut_off;
  }
  return cell;
}

void append_cell_json(std::string& json, const Cell& cell, bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"n\": %d, \"m\": %d, \"pins\": %lld, "
      "\"red_n\": %d, \"red_m\": %d, \"red_pins\": %lld, "
      "\"reduction_ratio\": %.3f, \"pipeline_ms\": %.3f, "
      "\"minc_orig\": %.3f, \"minc_red\": %.3f, "
      "\"build_off_ms\": %.3f, \"build_prep_ms\": %.3f, "
      "\"speedup\": %.3f, \"bisect_cut_off\": %.3f, "
      "\"bisect_cut_prep\": %.3f, \"bisect_loss_pct\": %.3f, "
      "\"exact\": %s}%s\n",
      cell.mode.c_str(), cell.n, cell.m,
      static_cast<long long>(cell.pins), cell.red_n, cell.red_m,
      static_cast<long long>(cell.red_pins), cell.reduction_ratio,
      cell.pipeline_ms, cell.minc_orig, cell.minc_red, cell.build_off_ms,
      cell.build_prep_ms, cell.speedup, cell.bisect_cut_off,
      cell.bisect_cut_prep, cell.bisect_loss_pct,
      cell.exact ? "true" : "false", last ? "" : ",");
  json += buf;
}

}  // namespace

int main() {
  // Three families: exact-collapsible duplication, planted communities
  // (label propagation's target), and a dense random instance (the
  // sparsifier's target). All even n (bisection queries), all connected
  // by construction for the chosen seeds (asserted below).
  std::vector<std::pair<std::string, Hypergraph>> families;
  {
    ht::Rng rng(11);
    const auto base = ht::hypergraph::netlist_like(240, 480, 4, rng);
    families.emplace_back("replicated", replicate_edges(base, 8));
  }
  {
    ht::Rng rng(12);
    families.emplace_back(
        "planted", ht::hypergraph::planted_parts(8, 40, 3, 160, 40, rng));
  }
  {
    ht::Rng rng(13);
    families.emplace_back("dense",
                          ht::hypergraph::random_uniform(160, 1600, 4, rng));
  }

  std::vector<Cell> cells;
  for (const auto& [family, h] : families) {
    if (!ht::hypergraph::is_connected(h)) {
      std::fprintf(stderr, "family %s is not connected; pick a new seed\n",
                   family.c_str());
      return 1;
    }
    const double minc_orig = global_min_cut(h);
    double bisect_cut_off = -1.0;
    const std::string off_path = "bench_preprocess_" + family + "_off.htsnap";
    const double build_off_ms =
        build_and_bisect(h, ht::prep::PrepConfig{}, off_path,
                         &bisect_cut_off);
    std::remove(off_path.c_str());
    for (const auto mode : {ht::prep::PrepConfig::Mode::kExactOnly,
                            ht::prep::PrepConfig::Mode::kAggressive}) {
      cells.push_back(
          run_cell(family, h, mode, minc_orig, build_off_ms, bisect_cut_off));
    }
  }

  std::printf("%-11s %-10s %7s %9s %9s %9s %9s %8s %9s\n", "family", "mode",
              "ratio", "minc", "minc_red", "build_ms", "prep_ms", "speedup",
              "loss_pct");
  for (const auto& c : cells) {
    std::printf("%-11s %-10s %7.2f %9.1f %9.1f %9.1f %9.1f %8.2f %9.2f\n",
                c.family.c_str(), c.mode.c_str(), c.reduction_ratio,
                c.minc_orig, c.minc_red, c.build_off_ms, c.build_prep_ms,
                c.speedup, c.bisect_loss_pct);
  }

  // Gate 1: exact mode preserves the global min-cut value everywhere.
  bool exact_ok = true;
  for (const auto& c : cells) {
    if (c.mode != "exact") continue;
    if (!c.exact || std::abs(c.minc_red - c.minc_orig) > 1e-9) {
      exact_ok = false;
      std::printf("FAIL exact gate: %s min cut %f -> %f\n", c.family.c_str(),
                  c.minc_orig, c.minc_red);
    }
  }
  // Gate 2: some family reaches >= 5x reduction at < 5% bisection loss.
  const Cell* headline = nullptr;
  for (const auto& c : cells) {
    if (c.reduction_ratio >= 5.0 && c.bisect_cut_prep >= 0.0 &&
        c.bisect_loss_pct < 5.0 &&
        (headline == nullptr ||
         c.reduction_ratio > headline->reduction_ratio)) {
      headline = &c;
    }
  }
  if (headline != nullptr) {
    std::printf("headline: %s/%s %.2fx reduction at %.2f%% loss -> PASS\n",
                headline->family.c_str(), headline->mode.c_str(),
                headline->reduction_ratio, headline->bisect_loss_pct);
  } else {
    std::printf("FAIL reduction gate: no family reached 5x at < 5%% loss\n");
  }

  std::string json = "{\n  \"families\": {\n";
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    json += "  \"" + cells[i].family + "\": {\n";
    append_cell_json(json, cells[i], false);
    append_cell_json(json, cells[i + 1], true);
    json += i + 2 < cells.size() ? "  },\n" : "  }\n";
  }
  json += "  },\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"headline\": {\"family\": \"%s\", \"mode\": \"%s\", "
                  "\"reduction_ratio\": %.3f, \"bisect_loss_pct\": %.3f}\n",
                  headline != nullptr ? headline->family.c_str() : "none",
                  headline != nullptr ? headline->mode.c_str() : "none",
                  headline != nullptr ? headline->reduction_ratio : 0.0,
                  headline != nullptr ? headline->bisect_loss_pct : 0.0);
    json += buf;
  }
  json += "}\n";
  if (std::FILE* f = std::fopen("BENCH_preprocess.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_preprocess.json\n");
  }
  return exact_ok && headline != nullptr ? 0 : 1;
}
