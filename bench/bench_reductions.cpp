// Experiments THM3 + THM4: the hardness reductions, run forward.
//
// Theorem 3: an MkU instance maps to a bisection instance whose optimal
// bisection cost EQUALS the optimal union size, in both padding regimes;
// approximate bisections map back to approximate MkU solutions with the
// same factor.
//
// Theorem 4: the full DkS -> MkU -> Bisection chain loses at most f^2; we
// chart the measured chain ratio against the bisection solver's own
// measured f on the derived instances.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bisection.hpp"
#include "graph/generators.hpp"
#include "hardness/dks.hpp"
#include "hypergraph/generators.hpp"
#include "partition/exact.hpp"
#include "partition/mku.hpp"
#include "reduction/dks_mku.hpp"
#include "reduction/mku_bisection.hpp"
#include "util/rng.hpp"

namespace {

void theorem3_rows() {
  ht::bench::print_header(
      "THM3: MkU -> Minimum Hypergraph Bisection",
      "optimal costs coincide; approximation factors transfer");
  ht::Table table({"items", "sets", "k", "regime", "MkU OPT",
                   "bisection OPT", "thm1 cut", "extracted union",
                   "factor"});
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ht::Rng rng(seed);
    // MkU instances need every item covered by at least one set; patch any
    // uncovered items with one extra set.
    auto raw = ht::hypergraph::random_uniform(10, 7, 3, rng);
    std::vector<ht::hypergraph::VertexId> uncovered;
    for (ht::hypergraph::VertexId v = 0; v < raw.num_vertices(); ++v)
      if (raw.degree(v) == 0) uncovered.push_back(v);
    ht::hypergraph::Hypergraph base(raw.num_vertices());
    for (ht::hypergraph::EdgeId e = 0; e < raw.num_edges(); ++e) {
      auto pins = raw.pins(e);
      base.add_edge({pins.begin(), pins.end()});
    }
    if (!uncovered.empty()) {
      if (uncovered.size() == 1) uncovered.push_back((uncovered[0] + 1) % 10);
      base.add_edge(uncovered);
    }
    base.finalize();
    for (std::int32_t k : {2, 3, 5}) {
      ht::reduction::MkuInstance inst{base, k};
      const auto mku_opt = ht::partition::mku_exact(base, k);
      const auto red = ht::reduction::mku_to_bisection(inst);
      const auto bis_opt = ht::partition::exact_hypergraph_bisection(
          red.bisection_instance);
      ht::core::Theorem1Options options;
      options.seed = seed * 100 + static_cast<std::uint64_t>(k);
      const auto approx =
          ht::core::bisect_theorem1(red.bisection_instance, options);
      std::vector<bool> with_super = approx.solution.side;
      if (!with_super[static_cast<std::size_t>(red.supervertex)])
        with_super.flip();
      const auto extracted = red.extract_mku_solution(with_super, k);
      const double extracted_union =
          ht::reduction::mku_union_weight(base, extracted);
      table.add(base.num_vertices(), base.num_edges(), k,
                red.padding_glued ? "glued" : "free", mku_opt.union_weight,
                bis_opt.cut, approx.solution.cut, extracted_union,
                mku_opt.union_weight > 0
                    ? extracted_union / mku_opt.union_weight
                    : 1.0);
    }
  }
  ht::bench::print_table(table);
}

void theorem4_rows() {
  ht::bench::print_header(
      "THM4: DkS via the full reduction chain",
      "f-approx bisection => f^2-approx DkS; chain ratio should track "
      "(measured f)^2");
  ht::Table table({"n", "k", "DkS OPT", "greedy", "via chain",
                   "chain/OPT", "1/f^2 floor"});
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    ht::Rng rng(seed);
    // Background + planted clique instance.
    const std::int32_t n = 16, k = 6;
    ht::graph::Graph g(n);
    for (ht::graph::VertexId a = 0; a < k; ++a)
      for (ht::graph::VertexId b = a + 1; b < k; ++b) g.add_edge(a, b);
    const auto background = ht::graph::gnp(n, 0.15, rng);
    for (const auto& e : background.edges())
      if (e.u >= k || e.v >= k) g.add_edge(e.u, e.v);
    g.finalize();
    const auto exact = ht::hardness::dks_exact(g, k);
    const auto greedy = ht::hardness::dks_greedy_peel(g, k);
    const auto chain = ht::hardness::dks_via_bisection(g, k, seed, 6);
    const double chain_ratio =
        exact.induced_edges > 0
            ? static_cast<double>(chain.induced_edges) /
                  static_cast<double>(exact.induced_edges)
            : 1.0;
    // Theorem 4 with f = 1 predicts ratio 1; with measured f it predicts
    // at least 1/f^2. We report 1/f^2 using f from the bisection ratios in
    // THM3 (conservatively f = 2).
    table.add(n, k, exact.induced_edges, greedy.induced_edges,
              chain.induced_edges, chain_ratio, 1.0 / (2.0 * 2.0));
  }
  ht::bench::print_table(table);
}

}  // namespace

int main() {
  theorem3_rows();
  theorem4_rows();
  return 0;
}
