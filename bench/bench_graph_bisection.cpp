// Experiment: the graph-side substrate quality — the "O(log n)" black box
// that Theorem 2's small-edge branch and Proposition 1 consume.
//
// Columns: exact OPT (small n), the decomposition-tree DP pipeline
// ([17]-style), plain FM, and the decomposition tree's measured edge-cut
// quality. The paper's premise is that graphs have polylog-quality trees;
// the measured tree quality staying flat/log-ish while the hypergraph
// trees of bench_lower_bounds grow like sqrt(n) is the library-wide
// consistency check.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cuttree/decomposition_tree.hpp"
#include "cuttree/tree.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "partition/exact.hpp"
#include "partition/graph_bisection.hpp"
#include "util/rng.hpp"

namespace {

double measured_tree_quality(const ht::graph::Graph& g,
                             const ht::cuttree::Tree& tree, ht::Rng& rng) {
  double worst = 1.0;
  for (int trial = 0; trial < 30; ++trial) {
    auto pick = rng.sample_without_replacement(g.num_vertices(), 4);
    const std::vector<ht::graph::VertexId> a{pick[0], pick[1]},
        b{pick[2], pick[3]};
    const double dg = ht::flow::min_edge_cut(g, a, b).value;
    if (dg <= 0) continue;
    worst = std::max(worst, ht::cuttree::tree_edge_cut_dp(tree, a, b) / dg);
  }
  return worst;
}

}  // namespace

int main() {
  ht::bench::print_header(
      "graph bisection substrate: decomposition tree vs FM vs exact",
      "graphs admit polylog-quality trees [17]; tree DP competitive with "
      "FM");

  ht::Table table({"n", "exact", "tree DP", "tree DP+FM", "fm",
                   "tree quality", "log2(n)"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {12, 16, 24, 48, 96}) {
    ht::Rng rng(static_cast<std::uint64_t>(n));
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    std::string exact_cell = "-";
    if (n <= 16) {
      const auto exact = ht::partition::exact_graph_bisection(g);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4g", exact.cut);
      exact_cell = buf;
    }
    ht::Rng r1(1), r2(2), r3(3), r4(4);
    const auto raw =
        ht::partition::graph_bisection_tree_based(g, r1, false);
    const auto polished = ht::partition::graph_bisection_tree_based(g, r2);
    ht::hypergraph::Hypergraph wrapper(g.num_vertices());
    for (const auto& e : g.edges()) wrapper.add_edge({e.u, e.v}, e.weight);
    wrapper.finalize();
    const auto fm = ht::partition::fm_bisection(wrapper, r3, 8);
    const auto tree = ht::cuttree::build_decomposition_tree_run(g, {}).tree;
    const double quality = measured_tree_quality(g, tree, r4);
    table.add(n, exact_cell, raw.cut, polished.cut, fm.cut, quality,
              std::log2(static_cast<double>(n)));
    xs.push_back(n);
    ys.push_back(quality);
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("graph-tree-quality", xs, ys,
                         "~0 (polylog) — contrast hypergraph >= 0.5");
  return 0;
}
