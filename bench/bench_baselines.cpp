// Experiment BASE: practitioner workloads from the paper's introduction.
//
// Hypergraph partitioning is motivated by parallel scientific computing
// (SpMV row-net models) and VLSI netlists. This bench runs every bisection
// pipeline on both workload families — the context for the paper's novelty
// claim that theory-backed algorithms compete with the heuristics
// practitioners actually use.
#include <iostream>

#include "bench_common.hpp"
#include "core/bisection.hpp"
#include "hypergraph/generators.hpp"
#include "partition/multilevel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

void run_family(const std::string& family,
                const ht::hypergraph::Hypergraph& h) {
  ht::Table table({"algorithm", "cut", "time(s)"});
  {
    ht::Timer t;
    const auto r = ht::core::bisect_theorem1(h);
    table.add(r.algorithm, r.solution.cut, t.seconds());
  }
  {
    ht::Timer t;
    const auto r = ht::core::bisect_small_edges(h);
    table.add(r.algorithm, r.solution.cut, t.seconds());
  }
  {
    ht::Timer t;
    const auto r = ht::core::bisect_via_cut_tree(h);
    table.add(r.algorithm, r.solution.cut, t.seconds());
  }
  {
    ht::Timer t;
    ht::Rng rng(7);
    const auto r = ht::core::bisect_fm_baseline(h, rng);
    table.add(r.algorithm, r.solution.cut, t.seconds());
  }
  {
    ht::Timer t;
    ht::Rng rng(9);
    const auto sol = ht::partition::multilevel_bisection(h, rng);
    table.add("multilevel (hMetis-style)", sol.cut, t.seconds());
  }
  {
    ht::Timer t;
    ht::Rng rng(8);
    const auto r = ht::core::bisect_random_baseline(h, rng);
    table.add(r.algorithm, r.solution.cut, t.seconds());
  }
  std::cout << family << " (n=" << h.num_vertices() << ", m=" << h.num_edges()
            << ", hmax=" << h.max_edge_size() << "):\n";
  ht::bench::print_table(table);
}

}  // namespace

int main() {
  ht::bench::print_header(
      "BASE: workloads from the paper's motivation",
      "theory algorithms vs the FM heuristic practitioners use");
  {
    ht::Rng rng(1);
    run_family("VLSI netlist", ht::hypergraph::netlist_like(128, 220, 3, rng));
  }
  {
    ht::Rng rng(2);
    run_family("SpMV row-net",
               ht::hypergraph::spmv_row_net(128, 128, 6, 0.01, rng));
  }
  {
    ht::Rng rng(3);
    run_family("planted communities",
               ht::hypergraph::planted_bisection(64, 3, 256, 8, rng));
  }
  return 0;
}
