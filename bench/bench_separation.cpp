// Experiment GH-exact: the sharp graph/hypergraph separation the paper
// highlights.
//
// For ordinary graphs the Gomory–Hu tree is an EXACT edge cut tree
// (quality 1). The identical pipeline on hypergraphs is doomed: Theorem 6
// gives Omega(n) for edge cut trees and Theorem 7 Omega(sqrt(n)) for
// vertex cut trees. One table, three columns, one paper headline.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cuttree/edge_cut_trees.hpp"
#include "cuttree/quality.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/star_expansion.hpp"
#include "util/rng.hpp"

namespace {

/// Worst ratio tree-cut / graph-cut over all singleton pairs for a
/// Gomory–Hu tree (should be exactly 1).
double gomory_hu_quality(const ht::graph::Graph& g) {
  const auto tree = ht::flow::gomory_hu_run(g).tree;
  double worst = 1.0;
  for (ht::graph::VertexId s = 0; s < g.num_vertices(); ++s) {
    for (ht::graph::VertexId t = s + 1; t < g.num_vertices(); ++t) {
      const double direct = ht::flow::min_edge_cut(g, {s}, {t}).value;
      if (direct <= 0) continue;
      worst = std::max(worst, tree.min_cut(s, t) / direct);
    }
  }
  return worst;
}

}  // namespace

int main() {
  ht::bench::print_header(
      "GH-exact: graphs admit exact cut trees; hypergraphs do not",
      "graph GH-tree quality = 1; hypergraph edge cut tree Omega(n); "
      "vertex cut tree Omega(sqrt(n))");

  ht::Table table({"n", "graph GH tree", "hyp GH tree (s-t cuts)",
                   "hyp edge-cut tree (Thm6 inst.)",
                   "hyp vertex-cut tree (Fig2 inst.)", "sqrt(n)", "n"});
  for (std::int32_t n : {16, 36, 64, 100}) {
    ht::Rng rng(55 + static_cast<std::uint64_t>(n));
    // Column 1: random graph, Gomory–Hu, exhaustive singleton pairs.
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    const double graph_quality = gomory_hu_quality(g);

    // Column 2: hypergraph Gomory–Hu tree — exact for SINGLETON pairs even
    // on hypergraphs (the cut function is symmetric submodular), showing
    // the barrier is a set-cut phenomenon.
    const auto spanning = ht::hypergraph::single_spanning_edge(n);
    double hyper_gh_quality = 1.0;
    {
      ht::Rng hrng(3 + static_cast<std::uint64_t>(n));
      const auto rh = ht::hypergraph::random_uniform(
          std::min(n, 24), 2 * std::min(n, 24), 3, hrng);
      if (ht::hypergraph::is_connected(rh)) {
        const auto ghh = ht::flow::hypergraph_gomory_hu_run(rh).tree;
        for (std::int32_t s = 0; s < rh.num_vertices(); ++s) {
          for (std::int32_t t = s + 1; t < rh.num_vertices(); ++t) {
            const double direct =
                ht::flow::min_hyperedge_cut(rh, {s}, {t}).value;
            if (direct <= 0) continue;
            hyper_gh_quality =
                std::max(hyper_gh_quality, ghh.min_cut(s, t) / direct);
          }
        }
      }
    }
    double edge_tree_quality = 1e300;
    {
      std::vector<std::int32_t> order(static_cast<std::size_t>(n));
      for (std::int32_t v = 0; v < n; ++v)
        order[static_cast<std::size_t>(v)] = v;
      std::vector<ht::cuttree::Tree> trees;
      trees.push_back(ht::cuttree::star_topology(n));
      trees.push_back(ht::cuttree::balanced_binary_topology(order));
      trees.push_back(ht::cuttree::gomory_hu_topology(spanning));
      std::vector<ht::cuttree::VertexPair> pairs;
      for (int rep = 0; rep < 8; ++rep) {
        auto pick = rng.sample_without_replacement(n, n / 2);
        std::vector<bool> chosen(static_cast<std::size_t>(n), false);
        for (auto v : pick) chosen[static_cast<std::size_t>(v)] = true;
        ht::cuttree::VertexPair p;
        for (std::int32_t v = 0; v < n; ++v)
          (chosen[static_cast<std::size_t>(v)] ? p.first : p.second)
              .push_back(v);
        pairs.push_back(std::move(p));
      }
      for (auto& tree : trees) {
        ht::cuttree::assign_induced_weights(spanning, tree);
        const auto q =
            ht::cuttree::edge_cut_tree_quality(spanning, tree, pairs);
        edge_tree_quality = std::min(edge_tree_quality, q.quality);
      }
    }

    // Column 3: Figure 2 instance, Section 3.1 vertex cut tree.
    const auto fig = ht::hypergraph::figure2(n);
    const auto star = ht::reduction::star_expansion(fig.hypergraph);
    const auto built = ht::cuttree::build_vertex_cut_tree(star.graph);
    std::vector<ht::cuttree::VertexPair> hpairs;
    const auto k = static_cast<std::int32_t>(
        std::floor(std::sqrt(static_cast<double>(n))));
    {
      ht::cuttree::VertexPair p;
      for (std::int32_t i = 0; i < n; ++i)
        ((i % std::max(1, k) == 0 &&
          static_cast<std::int32_t>(p.first.size()) < k)
             ? p.first
             : p.second)
            .push_back(fig.u[static_cast<std::size_t>(i)]);
      hpairs.push_back(std::move(p));
    }
    for (int rep = 0; rep < 6; ++rep) {
      auto pick = rng.sample_without_replacement(n, std::max(2, k));
      ht::cuttree::VertexPair p;
      std::vector<bool> chosen(static_cast<std::size_t>(n), false);
      for (auto idx : pick) chosen[static_cast<std::size_t>(idx)] = true;
      for (std::int32_t i = 0; i < n; ++i)
        (chosen[static_cast<std::size_t>(i)] ? p.first : p.second)
            .push_back(fig.u[static_cast<std::size_t>(i)]);
      hpairs.push_back(std::move(p));
    }
    const auto vq = ht::cuttree::hypergraph_cut_tree_quality(
        fig.hypergraph, built.tree, hpairs);

    table.add(n, graph_quality, hyper_gh_quality, edge_tree_quality,
              vq.max_ratio, std::sqrt(static_cast<double>(n)), n);
  }
  ht::bench::print_table(table);
  std::cout << "headline: set-cut columns grow (~n and ~sqrt(n)) while both "
               "singleton-pair GH columns stay at exactly 1 —\nthe "
               "separation is intrinsically about cutting SETS apart, "
               "which is what bisection needs.\n";
  return 0;
}
