// google-benchmark timings of the library's computational kernels: flow
// primitives, Gomory–Hu, FM passes, spectral sweeps, tree construction and
// the balanced tree DP. These are the knobs that decide how far the
// experiment benches scale.
#include <benchmark/benchmark.h>

#include "core/bisection.hpp"
#include "cuttree/tree_bisection.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "lp/spectral.hpp"
#include "flow/push_relabel.hpp"
#include "partition/fm.hpp"
#include "partition/fm_fast.hpp"
#include "partition/sparsest_cut.hpp"
#include "reduction/star_expansion.hpp"
#include "util/rng.hpp"

namespace {

void BM_MinEdgeCut(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(1);
  const auto g = ht::graph::gnp_connected(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::flow::min_edge_cut(g, {0}, {n - 1}).value);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MinEdgeCut)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_MinVertexCut(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(2);
  const auto g = ht::graph::gnp_connected(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ht::flow::min_vertex_cut(g, {0}, {n - 1}).value);
  }
}
BENCHMARK(BM_MinVertexCut)->Arg(64)->Arg(256)->Arg(1024);

void BM_MinHyperedgeCut(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(3);
  const auto h = ht::hypergraph::random_uniform(n, 3 * n, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ht::flow::min_hyperedge_cut(h, {0}, {n - 1}).value);
  }
}
BENCHMARK(BM_MinHyperedgeCut)->Arg(64)->Arg(256)->Arg(1024);

void BM_GomoryHu(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(4);
  const auto g = ht::graph::gnp_connected(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::flow::gomory_hu_run(g).tree.parent.size());
  }
}
BENCHMARK(BM_GomoryHu)->Arg(32)->Arg(64)->Arg(128);

void BM_FmBisection(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(5);
  const auto h = ht::hypergraph::random_uniform(n, 3 * n, 4, rng);
  for (auto _ : state) {
    ht::Rng inner(6);
    benchmark::DoNotOptimize(
        ht::partition::fm_bisection(h, inner, 2).cut);
  }
}
BENCHMARK(BM_FmBisection)->Arg(64)->Arg(256)->Arg(512);

void BM_FmBisectionFast(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(5);
  const auto h = ht::hypergraph::random_uniform(n, 3 * n, 4, rng);
  for (auto _ : state) {
    ht::Rng inner(6);
    benchmark::DoNotOptimize(
        ht::partition::fm_bisection_fast(h, inner, 2).cut);
  }
}
BENCHMARK(BM_FmBisectionFast)->Arg(64)->Arg(256)->Arg(512)->Arg(2048);

void BM_PushRelabelVsDinic_PR(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(21);
  const auto g = ht::graph::gnp_connected(n, 8.0 / n, rng);
  for (auto _ : state) {
    ht::flow::PushRelabel<double> pr(n);
    for (const auto& e : g.edges()) pr.add_undirected(e.u, e.v, e.weight);
    benchmark::DoNotOptimize(pr.max_flow(0, n - 1));
  }
}
BENCHMARK(BM_PushRelabelVsDinic_PR)->Arg(256)->Arg(1024);

void BM_Fiedler(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(7);
  const auto g = ht::graph::gnp_connected(n, 6.0 / n, rng);
  for (auto _ : state) {
    ht::Rng inner(8);
    benchmark::DoNotOptimize(
        ht::lp::fiedler_vector(g, {}, inner).eigenvalue);
  }
}
BENCHMARK(BM_Fiedler)->Arg(64)->Arg(256)->Arg(1024);

void BM_SparsestCut(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(9);
  const auto h = ht::hypergraph::random_uniform(n, 2 * n, 3, rng);
  for (auto _ : state) {
    ht::Rng inner(10);
    benchmark::DoNotOptimize(
        ht::partition::sparsest_hyperedge_cut(h, inner).sparsity);
  }
}
BENCHMARK(BM_SparsestCut)->Arg(32)->Arg(128)->Arg(512);

void BM_VertexCutTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(11);
  const auto g = ht::graph::gnp_connected(n, 5.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ht::cuttree::build_vertex_cut_tree(g).num_pieces);
  }
}
BENCHMARK(BM_VertexCutTreeBuild)->Arg(32)->Arg(64)->Arg(128);

void BM_BalancedTreeDp(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(12);
  const auto h = ht::hypergraph::random_uniform(n, 2 * n, 3, rng);
  const auto star = ht::reduction::star_expansion(h);
  const auto built = ht::cuttree::build_vertex_cut_tree(star.graph);
  std::vector<ht::cuttree::VertexId> counted;
  for (std::int32_t v = 0; v < n; ++v) counted.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ht::cuttree::balanced_tree_bisection(built.tree, counted).tree_cut);
  }
}
BENCHMARK(BM_BalancedTreeDp)->Arg(32)->Arg(64)->Arg(128);

void BM_Theorem1(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  ht::Rng rng(13);
  const auto h = ht::hypergraph::random_uniform(n, 2 * n, 3, rng);
  for (auto _ : state) {
    ht::core::Theorem1Options options;
    options.guesses = 6;
    benchmark::DoNotOptimize(
        ht::core::bisect_theorem1(h, options).solution.cut);
  }
}
BENCHMARK(BM_Theorem1)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
