// Experiment: the paper's central dichotomy, measured.
//
// Bi-criteria bisection (smaller side >= n/3) is EASY for hypergraphs —
// graph techniques transfer with (O(1), sqrt(log n)) quality — while true
// bisection is n^{1/4-eps}-hard (Corollary 1). This bench makes the gap
// visible: on instances engineered so that exact balance forces expensive
// cuts (the Theorem 3 construction and skew-community instances), the
// relaxed partition is dramatically cheaper than the best balanced one.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bicriteria.hpp"
#include "core/bisection.hpp"
#include "hypergraph/generators.hpp"
#include "partition/mku.hpp"
#include "reduction/mku_bisection.hpp"
#include "util/rng.hpp"

namespace {

/// Skew communities: one community of 2n/3 and one of n/3, densely knit,
/// with few cross edges. Exact bisection must SPLIT the big community;
/// a bi-criteria partition just separates the communities.
ht::hypergraph::Hypergraph skew_instance(std::int32_t n, ht::Rng& rng) {
  ht::hypergraph::Hypergraph h(n);
  const std::int32_t big = 2 * n / 3;
  auto add_community = [&](std::int32_t lo, std::int32_t hi, std::int32_t m) {
    const std::int32_t size = hi - lo;
    for (std::int32_t e = 0; e < m; ++e) {
      auto local = rng.sample_without_replacement(size, 3);
      std::vector<ht::hypergraph::VertexId> pins;
      for (auto idx : local) pins.push_back(lo + idx);
      h.add_edge(std::move(pins));
    }
  };
  add_community(0, big, 6 * n);
  add_community(big, n, 3 * n);
  for (std::int32_t e = 0; e < 3; ++e)
    h.add_edge({static_cast<ht::hypergraph::VertexId>(e),
                static_cast<ht::hypergraph::VertexId>(big + e)});
  h.finalize();
  return h;
}

}  // namespace

int main() {
  ht::bench::print_header(
      "bi-criteria vs true bisection — the paper's dichotomy",
      "bi-criteria transfers from graphs at polylog quality; true bisection "
      "is n^{1/4-eps}-hard [Cor. 1]");

  ht::Table table({"instance", "n", "true bisection", "bi-criteria (1/3)",
                   "balance", "gap (true/relaxed)"});
  for (std::int32_t n : {24, 48, 96, 192}) {
    ht::Rng rng(static_cast<std::uint64_t>(n));
    const auto h = skew_instance(n, rng);
    const auto balanced = ht::core::bisect_theorem1(h);
    ht::core::BicriteriaOptions options;
    options.seed = static_cast<std::uint64_t>(n) + 5;
    const auto relaxed = ht::core::bisect_bicriteria(h, options);
    table.add("skew 2:1 communities", n, balanced.solution.cut, relaxed.cut,
              relaxed.balance,
              relaxed.cut > 0 ? balanced.solution.cut / relaxed.cut : 0.0);
  }
  // Theorem 3 instances: balance is exactly what encodes MkU hardness.
  for (std::uint64_t seed : {1ull, 2ull}) {
    ht::Rng rng(seed);
    ht::hypergraph::Hypergraph base(20);
    for (int e = 0; e < 14; ++e) {
      auto pins = rng.sample_without_replacement(20, 4);
      base.add_edge({pins.begin(), pins.end()});
    }
    base.finalize();
    ht::reduction::MkuInstance inst{base, 4};
    const auto red = ht::reduction::mku_to_bisection(inst);
    const auto balanced = ht::core::bisect_theorem1(red.bisection_instance);
    ht::core::BicriteriaOptions options;
    options.seed = seed;
    const auto relaxed =
        ht::core::bisect_bicriteria(red.bisection_instance, options);
    table.add("Theorem 3 reduction", red.bisection_instance.num_vertices(),
              balanced.solution.cut, relaxed.cut, relaxed.balance,
              relaxed.cut > 0 ? balanced.solution.cut / relaxed.cut : 1e300);
  }
  ht::bench::print_table(table);
  std::cout << "reading: the relaxed column collapses (often to ~the cross "
               "edges, or 0 on reductions where one\nside may stay small) "
               "while the balanced column pays to split dense structure — "
               "the hardness lives\nentirely in the exact-balance "
               "constraint.\n";
  return 0;
}
