// Experiments THM1 + COR3 + BASE: Minimum Hypergraph Bisection quality.
//
// Part 1 (ratio-to-OPT): on small random hypergraphs where the exact
// optimum is computable, chart the approximation ratio of Theorem 1's
// algorithm, the Corollary 3 cut-tree path, and baselines. Theorem 1
// promises O(sqrt(n) log^{5/4} n); measured ratios should sit far below
// that curve and grow slowly.
//
// Part 2 (planted recovery): on larger planted instances (OPT <= planted
// cross edges), measure cut / planted for every algorithm.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bisection.hpp"
#include "hypergraph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/exact.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

/// Distribution of the theorem-1 approximation ratio over many seeds, per
/// instance size — the statistical version of the ratio table (32 seeds
/// per n, evaluated in parallel; deterministic per seed).
void ratio_distribution() {
  ht::bench::print_header(
      "THM1 ratio distribution, NO FM polish (32 seeds per size)",
      "the bare two-phase algorithm's ratio, far below O(sqrt(n) "
      "log^{5/4} n)");
  ht::Table table({"n", "mean", "sd", "median", "p90", "max", "bound"});
  for (std::int32_t n : {10, 12, 14, 16}) {
    const std::size_t seeds = 32;
    std::vector<double> ratios(seeds, 1.0);
    ht::parallel_for(seeds, [&](std::size_t s) {
      ht::Rng rng(static_cast<std::uint64_t>(n) * 1000 + s);
      const auto h = ht::hypergraph::random_uniform(n, 2 * n, 3, rng);
      const auto exact = ht::partition::exact_hypergraph_bisection(h);
      ht::core::Theorem1Options options;
      options.seed = s;
      options.guesses = 8;
      options.fm_polish = false;  // the bare paper algorithm
      const auto report = ht::core::bisect_theorem1(h, options);
      ratios[s] = exact.cut > 0 ? report.solution.cut / exact.cut : 1.0;
    });
    const auto summary = ht::summarize(ratios);
    const double bound = std::sqrt(static_cast<double>(n)) *
                         std::pow(std::log2(static_cast<double>(n)), 1.25);
    table.add(n, summary.mean, summary.stddev, summary.median, summary.p90,
              summary.max, bound);
  }
  ht::bench::print_table(table);
}

void ratio_to_exact() {
  ht::bench::print_header(
      "THM1/COR3 vs exact OPT (small instances)",
      "Theorem 1: O(sqrt(n) log^{5/4} n); measured ratio should be <<");
  ht::Table table({"n", "m", "r", "OPT", "thm1", "cor3", "fm", "random",
                   "thm1/OPT", "bound"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {8, 12, 16, 20}) {
    double ratio_sum = 0.0;
    int ratio_count = 0;
    double opt_v = 0, t1_v = 0, c3_v = 0, fm_v = 0, rnd_v = 0;
    const std::int32_t m = 2 * n;
    for (int trial = 0; trial < 3; ++trial) {
      ht::Rng rng(static_cast<std::uint64_t>(n * 100 + trial));
      const auto h = ht::hypergraph::random_uniform(n, m, 3, rng);
      const auto exact = ht::partition::exact_hypergraph_bisection(h);
      ht::core::Theorem1Options t1_options;
      t1_options.seed = static_cast<std::uint64_t>(trial);
      const auto t1 = ht::core::bisect_theorem1(h, t1_options);
      ht::core::CutTreeBisectionOptions c3_options;
      c3_options.seed = static_cast<std::uint64_t>(trial);
      const auto c3 = ht::core::bisect_via_cut_tree(h, c3_options);
      ht::Rng brng(static_cast<std::uint64_t>(trial) + 77);
      const auto fm = ht::core::bisect_fm_baseline(h, brng);
      const auto rnd = ht::core::bisect_random_baseline(h, brng);
      opt_v += exact.cut;
      t1_v += t1.solution.cut;
      c3_v += c3.solution.cut;
      fm_v += fm.solution.cut;
      rnd_v += rnd.solution.cut;
      if (exact.cut > 0) {
        ratio_sum += t1.solution.cut / exact.cut;
        ++ratio_count;
      }
    }
    const double mean_ratio =
        ratio_count > 0 ? ratio_sum / ratio_count : 1.0;
    const double bound = std::sqrt(static_cast<double>(n)) *
                         std::pow(std::log2(static_cast<double>(n)), 1.25);
    table.add(n, m, 3, opt_v / 3, t1_v / 3, c3_v / 3, fm_v / 3, rnd_v / 3,
              mean_ratio, bound);
    xs.push_back(n);
    ys.push_back(std::max(mean_ratio, 1.0));
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("thm1-ratio", xs, ys, "<= 0.5 (+polylog)");
}

void planted_recovery() {
  ht::bench::print_header(
      "THM1/COR3 planted recovery (larger instances)",
      "planted cross cut upper-bounds OPT; ratios near 1 mean recovery");
  ht::Table table({"n", "planted", "thm1", "cor3", "small-edge", "fm",
                   "random", "thm1 time(s)"});
  for (std::int32_t half : {16, 32, 64}) {
    ht::Rng rng(900 + static_cast<std::uint64_t>(half));
    const std::int32_t cross = std::max(2, half / 8);
    const auto h = ht::hypergraph::planted_bisection(
        half, 3, 4 * half, cross, rng);
    ht::Timer timer;
    const auto t1 = ht::core::bisect_theorem1(h);
    const double t1_time = timer.seconds();
    const auto c3 = ht::core::bisect_via_cut_tree(h);
    const auto small = ht::core::bisect_small_edges(h);
    ht::Rng brng(half);
    const auto fm = ht::core::bisect_fm_baseline(h, brng);
    const auto rnd = ht::core::bisect_random_baseline(h, brng);
    table.add(2 * half, cross, t1.solution.cut, c3.solution.cut,
              small.solution.cut, fm.solution.cut, rnd.solution.cut,
              t1_time);
  }
  ht::bench::print_table(table);
}

void engine_counters() {
  // What the parallel engine actually did on the largest planted
  // instance, plus a 1-thread / N-thread agreement check on its output.
  ht::bench::print_header(
      "PAR-engine: theorem-1 work profile and thread-count invariance",
      "same bisection at every thread count; counters show the work done");
  ht::Rng rng(900 + 64);
  const auto h = ht::hypergraph::planted_bisection(64, 3, 4 * 64,
                                                   std::max(2, 64 / 8), rng);
  ht::Table table({"threads", "time(s)", "cut", "pieces", "max-flow calls"});
  std::string first_side;
  bool identical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
    ht::ThreadPool::reset_global(threads);
    ht::PerfCounters::global().reset();
    ht::Timer timer;
    const auto report = ht::core::bisect_theorem1(h);
    const double elapsed = timer.seconds();
    auto& pc = ht::PerfCounters::global();
    std::string side(report.solution.side.size(), '0');
    for (std::size_t i = 0; i < side.size(); ++i)
      if (report.solution.side[i]) side[i] = '1';
    if (first_side.empty())
      first_side = side;
    else
      identical = identical && side == first_side;
    table.add(static_cast<std::int64_t>(ht::ThreadPool::global().size()),
              elapsed, report.solution.cut,
              static_cast<std::int64_t>(pc.pieces()),
              static_cast<std::int64_t>(pc.max_flow_calls()));
  }
  ht::bench::print_table(table);
  std::cout << "identical bisection across thread counts: "
            << (identical ? "yes" : "NO") << "\n"
            << ht::PerfCounters::global().report();
  std::cout << "metrics: " << ht::obs::MetricsRegistry::global().snapshot_json()
            << "\n";
  ht::ThreadPool::reset_global();
}

}  // namespace

int main() {
  if (ht::obs::tracing_enabled()) {
    std::cout << "tracing: enabled via HT_TRACE; Chrome trace-event JSON "
                 "written at exit (open in ui.perfetto.dev)\n";
  }
  ratio_to_exact();
  ratio_distribution();
  planted_recovery();
  engine_counters();
  return 0;
}
