// Experiment: Table 1's "Bisection U.B." for vertex cuts —
// O(sqrt(n) log^{5/4} n) (unweighted) and the weighted analogue via the
// Section 3.1 cut tree + balanced tree DP.
//
// Small instances: ratio against the exact optimum. Larger instances:
// absolute separator weights across pipelines, with the Table 1 bound for
// scale. The weighted rows run the Figure 3 instance GH, where Lemma 8
// says no cut-tree approach can be better than sqrt(N) — visible as the
// cut-tree column drifting away from exact on GH but not on flat-weight
// graphs.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/vertex_bisection.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

void small_ratio_rows() {
  ht::bench::print_header(
      "vertex bisection vs exact OPT (small instances)",
      "cut-tree pipeline within O(sqrt(n) log^{5/4} n) of OPT  [Table 1]");
  ht::Table table({"n", "exact", "cut-tree", "spectral", "ratio(tree)",
                   "bound"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {10, 12, 14, 16}) {
    double exact_sum = 0, tree_sum = 0, spectral_sum = 0, ratio_sum = 0;
    int ratio_count = 0;
    for (int trial = 0; trial < 3; ++trial) {
      ht::Rng rng(static_cast<std::uint64_t>(n * 10 + trial));
      const auto g = ht::graph::gnp_connected(n, 0.25, rng);
      const auto exact = ht::core::exact_vertex_bisection(g);
      ht::core::VertexBisectionOptions options;
      options.seed = static_cast<std::uint64_t>(trial);
      const auto tree = ht::core::vertex_bisection_via_cut_tree(g, options);
      ht::Rng srng(static_cast<std::uint64_t>(trial) + 31);
      const auto spectral = ht::core::vertex_bisection_spectral(g, srng);
      exact_sum += exact.separator_weight;
      tree_sum += tree.separator_weight;
      spectral_sum += spectral.separator_weight;
      if (exact.separator_weight > 0) {
        ratio_sum += tree.separator_weight / exact.separator_weight;
        ++ratio_count;
      }
    }
    const double bound = std::sqrt(static_cast<double>(n)) *
                         std::pow(std::log2(static_cast<double>(n)), 1.25);
    const double mean_ratio = ratio_count ? ratio_sum / ratio_count : 1.0;
    table.add(n, exact_sum / 3, tree_sum / 3, spectral_sum / 3, mean_ratio,
              bound);
    xs.push_back(n);
    ys.push_back(std::max(1.0, mean_ratio));
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("vertex-bisection-ratio", xs, ys,
                         "<= 0.5 (+polylog)");
}

void scaling_rows() {
  ht::bench::print_header(
      "vertex bisection at scale (grids & random graphs)",
      "separator weight of each pipeline; grids have sqrt(n) separators");
  ht::Table table({"family", "n", "cut-tree", "spectral", "sqrt(n)"});
  for (std::int32_t side : {6, 8, 10, 12}) {
    const auto g = ht::graph::grid(side, side);
    const std::int32_t n = g.num_vertices();
    if (n % 2 != 0) continue;
    ht::core::VertexBisectionOptions options;
    const auto tree = ht::core::vertex_bisection_via_cut_tree(g, options);
    ht::Rng srng(static_cast<std::uint64_t>(side));
    const auto spectral = ht::core::vertex_bisection_spectral(g, srng);
    table.add("grid", n, tree.separator_weight, spectral.separator_weight,
              std::sqrt(static_cast<double>(n)));
  }
  for (std::int32_t n : {32, 64, 128}) {
    ht::Rng rng(static_cast<std::uint64_t>(n));
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    ht::core::VertexBisectionOptions options;
    const auto tree = ht::core::vertex_bisection_via_cut_tree(g, options);
    ht::Rng srng(static_cast<std::uint64_t>(n) + 3);
    const auto spectral = ht::core::vertex_bisection_spectral(g, srng);
    table.add("gnp", n, tree.separator_weight, spectral.separator_weight,
              std::sqrt(static_cast<double>(n)));
  }
  ht::bench::print_table(table);
}

void weighted_rows() {
  ht::bench::print_header(
      "weighted vertex bisection on the Figure 3 instance GH",
      "Lemma 8: no cut tree beats sqrt(N) here — watch the tree column");
  ht::Table table({"n", "N", "cut-tree", "spectral", "sqrt(W)"});
  for (std::int32_t n : {9, 16, 25, 49}) {
    const auto fig = ht::graph::figure3_gh(n);
    ht::core::VertexBisectionOptions options;
    const auto tree =
        ht::core::vertex_bisection_via_cut_tree(fig.graph, options);
    ht::Rng srng(static_cast<std::uint64_t>(n));
    const auto spectral = ht::core::vertex_bisection_spectral(fig.graph, srng);
    table.add(n, fig.graph.num_vertices(), tree.separator_weight,
              spectral.separator_weight,
              std::sqrt(fig.graph.total_vertex_weight()));
  }
  ht::bench::print_table(table);
}

}  // namespace

int main() {
  small_ratio_rows();
  scaling_rows();
  weighted_rows();
  return 0;
}
