// Experiment DvR: the empirical engine of Corollary 1 — Claim 1's facts.
//
//   fact 1: G(n, p, r) with p = n^{1+a-r} has degree Theta(n^a), tightly
//           concentrated;
//   facts 2/3: any ell hyperedges of a random instance cover many
//           vertices, while a planted instance hides an ell-union of size
//           k — the gap that the Dense vs Random Conjecture says is
//           computationally invisible.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "hardness/dense_vs_random.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/mku_bisection.hpp"
#include "util/rng.hpp"

int main() {
  // ---- fact 1: degree concentration ----
  ht::bench::print_header(
      "DvR fact 1: degree concentration of G(n, p, r)",
      "degree Theta(n^alpha) w.h.p.; min/max close to mean");
  ht::Table degree_table(
      {"n", "alpha", "mean deg", "n^alpha", "min/mean", "max/mean",
       "log-density"});
  for (std::int32_t n : {100, 200, 400}) {
    for (double alpha : {0.4, 0.6, 0.8}) {
      ht::Rng rng(static_cast<std::uint64_t>(n * 10 + alpha * 100));
      const double p = std::pow(static_cast<double>(n), 1.0 + alpha - 3);
      const auto h = ht::hypergraph::gnpr(n, p, 3, rng);
      const auto stats = ht::hardness::degree_stats(h);
      degree_table.add(n, alpha, stats.mean,
                       std::pow(static_cast<double>(n), alpha),
                       stats.mean > 0 ? stats.min / stats.mean : 0.0,
                       stats.mean > 0 ? stats.max / stats.mean : 0.0,
                       stats.log_density);
    }
  }
  ht::bench::print_table(degree_table);

  // ---- facts 2/3: union coverage gap ----
  ht::bench::print_header(
      "DvR facts 2/3: ell-union coverage, random vs planted",
      "random: union of ell edges is large; planted: witness of size <= k");
  ht::Table cover_table({"n", "k", "beta", "ell", "planted witness",
                         "planted greedy", "random greedy",
                         "random sampled", "gap (random/witness)"});
  const std::int32_t n = 150, r = 3;
  for (std::int32_t k : {12, 16, 24}) {
    for (double beta : {1.2, 1.5}) {
      ht::Rng rng(static_cast<std::uint64_t>(k * 100 + beta * 10));
      const double p = std::pow(static_cast<double>(n), 1.0 + 0.5 - r);
      const auto planted =
          ht::hypergraph::planted_dense(n, p, r, k, beta, rng);
      const auto ell = static_cast<std::int64_t>(std::llround(
          std::pow(static_cast<double>(k), 1.0 + beta) / r));
      std::vector<ht::hypergraph::EdgeId> witness;
      for (ht::hypergraph::EdgeId e = planted.first_planted_edge;
           e < planted.hypergraph.num_edges() &&
           static_cast<std::int64_t>(witness.size()) < ell;
           ++e)
        witness.push_back(e);
      const double witness_union =
          ht::reduction::mku_union_weight(planted.hypergraph, witness);
      ht::Rng eval1(1);
      const auto planted_cov = ht::hardness::union_coverage(
          planted.hypergraph, ell, eval1, 32);
      ht::Rng rng2(99);
      const auto random_h = ht::hypergraph::random_uniform(
          n, planted.hypergraph.num_edges(), r, rng2);
      ht::Rng eval2(2);
      const auto random_cov =
          ht::hardness::union_coverage(random_h, ell, eval2, 32);
      cover_table.add(n, k, beta, ell, witness_union,
                      planted_cov.greedy_union, random_cov.greedy_union,
                      random_cov.sampled_min,
                      witness_union > 0
                          ? random_cov.greedy_union / witness_union
                          : 0.0);
    }
  }
  ht::bench::print_table(cover_table);
  std::cout
      << "note: greedy failing to find the planted witness (planted greedy "
         ">> witness) is exactly the\ncomputational gap Conjecture 1 "
         "formalizes — the structure exists but eludes efficient search.\n";
  return 0;
}
