// Experiment: single tree vs distribution over trees.
//
// The paper's Section 1 stresses that its lower bounds apply to a SINGLE
// tree, while graph results [17] use convex combinations — but also that
// for graphs even a single tree achieves polylog quality [9, 16], so the
// single-tree comparison is fair. This bench measures both notions on
//   (a) ordinary graphs — averaging helps, and single trees are already
//       decent, and
//   (b) the Figure 2 hypergraph instance — where neither a single tree
//       nor the average of many escapes the sqrt(n) barrier (the paper's
//       separation survives distributions on these instances).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cuttree/tree_distribution.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/star_expansion.hpp"
#include "util/rng.hpp"

int main() {
  ht::bench::print_header(
      "tree distributions: graphs vs the Figure 2 hypergraph",
      "distributions help graphs; cannot break sqrt(n) on Figure 2 "
      "[Sec. 1 discussion]");

  ht::Table table({"instance", "n", "trees", "best single", "distribution",
                   "sqrt(n)"});
  // (a) ordinary graphs.
  for (std::int32_t n : {36, 64, 100}) {
    ht::Rng rng(static_cast<std::uint64_t>(n));
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    const auto dist = ht::cuttree::build_tree_distribution(g, 8);
    const auto pairs = ht::cuttree::random_set_pairs(n, 40, n / 8 + 1, rng);
    const auto q = ht::cuttree::distribution_quality(g, dist, pairs);
    table.add("gnp graph", n, 8, q.single_best, q.average_max,
              std::sqrt(static_cast<double>(n)));
  }
  // (b) the Figure 2 hypergraph.
  for (std::int32_t n : {36, 64, 100}) {
    ht::Rng rng(7 + static_cast<std::uint64_t>(n));
    const auto fig = ht::hypergraph::figure2(n);
    const auto star = ht::reduction::star_expansion(fig.hypergraph);
    const auto dist = ht::cuttree::build_tree_distribution(star.graph, 8);
    // Adversarial spread pairs over the u_i.
    const auto k = static_cast<std::int32_t>(
        std::floor(std::sqrt(static_cast<double>(n))));
    std::vector<ht::cuttree::VertexPair> pairs;
    {
      ht::cuttree::VertexPair p;
      for (std::int32_t i = 0; i < n; ++i)
        ((i % std::max(1, k) == 0 &&
          static_cast<std::int32_t>(p.first.size()) < k)
             ? p.first
             : p.second)
            .push_back(fig.u[static_cast<std::size_t>(i)]);
      pairs.push_back(std::move(p));
    }
    for (int rep = 0; rep < 8; ++rep) {
      auto pick = rng.sample_without_replacement(n, std::max(2, k));
      std::vector<bool> chosen(static_cast<std::size_t>(n), false);
      for (auto idx : pick) chosen[static_cast<std::size_t>(idx)] = true;
      ht::cuttree::VertexPair p;
      for (std::int32_t i = 0; i < n; ++i)
        (chosen[static_cast<std::size_t>(i)] ? p.first : p.second)
            .push_back(fig.u[static_cast<std::size_t>(i)]);
      pairs.push_back(std::move(p));
    }
    const auto q = ht::cuttree::distribution_quality_hypergraph(
        fig.hypergraph, dist, pairs);
    table.add("figure2 hypergraph", n, 8, q.single_best, q.average_max,
              std::sqrt(static_cast<double>(n)));
  }
  ht::bench::print_table(table);
  std::cout << "reading: on graphs both columns are small; on figure2 both "
               "stay pinned near sqrt(n) —\naveraging cannot rescue trees "
               "from Theorem 7's barrier.\n";
  return 0;
}
