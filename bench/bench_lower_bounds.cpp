// Experiments T1-LB-{hyp, w, unw}: Table 1's cut-tree quality lower bounds.
//
//   Theorem 7 (Figure 2)  : hypergraph cuts need quality Omega(sqrt(n))
//   Lemma 8  (Figure 3)   : weighted vertex cuts need quality Omega(sqrt(N))
//   Theorem 8 (blow-up)   : unweighted vertex cuts need quality Omega(N^{1/3})
//
// We cannot quantify over all trees; instead we build the *best* tree our
// Section 3.1 construction produces (plus simple alternatives) and evaluate
// the adversarial set families from the proofs. The measured ratio growing
// like the predicted root confirms the constructions behave as the paper
// argues.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cuttree/quality.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/star_expansion.hpp"
#include "util/rng.hpp"

namespace {

using ht::cuttree::Tree;
using ht::cuttree::VertexPair;

/// Adversarial family for Figure 2 / Figure 3: spread subsets of the u_i
/// of size ~sqrt(n) (every sqrt(n)-th u), plus random subsets of several
/// sizes. Pairs are (S, U \ S).
std::vector<VertexPair> spread_pairs(const std::vector<std::int32_t>& u,
                                     ht::Rng& rng) {
  const auto n = static_cast<std::int32_t>(u.size());
  const auto k = std::max<std::int32_t>(
      2, static_cast<std::int32_t>(std::floor(std::sqrt(n))));
  std::vector<VertexPair> pairs;
  {
    VertexPair p;
    for (std::int32_t i = 0; i < n; ++i)
      ((i % k == 0 && static_cast<std::int32_t>(p.first.size()) < k)
           ? p.first
           : p.second)
          .push_back(u[static_cast<std::size_t>(i)]);
    pairs.push_back(std::move(p));
  }
  for (std::int32_t size : {k / 2 + 1, k, 2 * k, n / 4}) {
    if (size < 1 || size >= n) continue;
    for (int rep = 0; rep < 4; ++rep) {
      auto pick = rng.sample_without_replacement(n, size);
      VertexPair p;
      std::vector<bool> chosen(static_cast<std::size_t>(n), false);
      for (auto idx : pick) chosen[static_cast<std::size_t>(idx)] = true;
      for (std::int32_t i = 0; i < n; ++i)
        (chosen[static_cast<std::size_t>(i)] ? p.first : p.second)
            .push_back(u[static_cast<std::size_t>(i)]);
      pairs.push_back(std::move(p));
    }
  }
  return pairs;
}

void figure2_rows() {
  ht::bench::print_header(
      "T1-LB-hypergraph: Figure 2 instance (Theorem 7)",
      "every vertex cut tree has quality Omega(sqrt(n)) for hypergraph cuts");
  ht::Table table({"n", "tree", "worst ratio", "sqrt(n)"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {16, 36, 64, 121, 196}) {
    ht::Rng rng(100 + static_cast<std::uint64_t>(n));
    const auto fig = ht::hypergraph::figure2(n);
    const auto star = ht::reduction::star_expansion(fig.hypergraph);
    auto pairs = spread_pairs(fig.u, rng);
    double worst_over_trees = 1e300;
    std::string worst_name;
    // Section 3.1 tree at several thresholds: the *best* tree counts, since
    // the lower bound must defeat all of them.
    for (double threshold : {0.0, 0.05, 0.2, 0.4}) {
      ht::cuttree::VertexCutTreeOptions options;
      options.seed = 5 + static_cast<std::uint64_t>(n);
      if (threshold > 0.0) options.threshold_override = threshold;
      const auto built =
          ht::cuttree::build_vertex_cut_tree(star.graph, options);
      const auto q = ht::cuttree::hypergraph_cut_tree_quality(
          fig.hypergraph, built.tree, pairs);
      if (q.max_ratio < worst_over_trees) {
        worst_over_trees = q.max_ratio;
        worst_name = threshold == 0.0 ? "sec3.1(default)"
                                      : "sec3.1(t=" + std::to_string(threshold) +
                                            ")";
      }
    }
    table.add(n, worst_name, worst_over_trees,
              std::sqrt(static_cast<double>(n)));
    xs.push_back(n);
    ys.push_back(worst_over_trees);
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("figure2-best-tree", xs, ys, ">= 0.5");
}

void figure3_rows() {
  ht::bench::print_header(
      "T1-LB-weighted: Figure 3 instance GH (Lemma 8)",
      "every vertex cut tree has quality Omega(sqrt(N)) for weighted vertex "
      "cuts");
  ht::Table table({"n", "N", "tree quality (best)", "sqrt(N)"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {16, 36, 64, 121, 196}) {
    ht::Rng rng(200 + static_cast<std::uint64_t>(n));
    const auto fig = ht::graph::figure3_gh(n);
    const std::int32_t big_n = fig.graph.num_vertices();
    auto pairs = spread_pairs(fig.u, rng);
    double best_tree = 1e300;
    for (double threshold : {0.0, 0.05, 0.2, 0.4}) {
      ht::cuttree::VertexCutTreeOptions options;
      options.seed = 7 + static_cast<std::uint64_t>(n);
      if (threshold > 0.0) options.threshold_override = threshold;
      const auto built =
          ht::cuttree::build_vertex_cut_tree(fig.graph, options);
      const auto q =
          ht::cuttree::vertex_cut_tree_quality(fig.graph, built.tree, pairs);
      best_tree = std::min(best_tree, q.max_ratio);
    }
    table.add(n, big_n, best_tree, std::sqrt(static_cast<double>(big_n)));
    xs.push_back(big_n);
    ys.push_back(best_tree);
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("figure3-best-tree", xs, ys, ">= 0.5");
}

void blowup_rows() {
  ht::bench::print_header(
      "T1-LB-unweighted: clique blow-up of GH (Theorem 8)",
      "every vertex cut tree has quality Omega(N^{1/3}) for unweighted "
      "vertex cuts");
  ht::Table table({"n", "N", "tree quality (best)", "N^{1/3}"});
  std::vector<double> xs, ys;
  for (std::int32_t n : {9, 16, 25, 36, 49}) {
    ht::Rng rng(300 + static_cast<std::uint64_t>(n));
    const auto blow = ht::graph::figure3_blowup(n);
    const std::int32_t big_n = blow.graph.num_vertices();
    // Adversarial family: choose ~2 sqrt(n) whole cliques spread apart (the
    // Lemma 9 construction) as A, rest of the core vertices as B.
    const auto s = static_cast<std::int32_t>(
        std::llround(std::sqrt(static_cast<double>(n))));
    std::vector<VertexPair> pairs;
    {
      VertexPair p;
      for (std::int32_t i = 0; i < n; ++i) {
        auto& side = (i % std::max(1, n / (2 * s)) == 0 &&
                      static_cast<std::int32_t>(p.first.size()) <
                          2 * s * s)
                         ? p.first
                         : p.second;
        for (auto v : blow.core[static_cast<std::size_t>(i)])
          side.push_back(v);
      }
      if (!p.first.empty() && !p.second.empty()) pairs.push_back(std::move(p));
    }
    for (int rep = 0; rep < 6; ++rep) {
      auto pick = rng.sample_without_replacement(n, std::max(2, 2 * s));
      std::vector<bool> chosen(static_cast<std::size_t>(n), false);
      for (auto idx : pick) chosen[static_cast<std::size_t>(idx)] = true;
      VertexPair p;
      for (std::int32_t i = 0; i < n; ++i)
        for (auto v : blow.core[static_cast<std::size_t>(i)])
          (chosen[static_cast<std::size_t>(i)] ? p.first : p.second)
              .push_back(v);
      pairs.push_back(std::move(p));
    }
    double best_tree = 1e300;
    for (double threshold : {0.0, 0.2}) {
      ht::cuttree::VertexCutTreeOptions options;
      options.seed = 9 + static_cast<std::uint64_t>(n);
      if (threshold > 0.0) options.threshold_override = threshold;
      const auto built =
          ht::cuttree::build_vertex_cut_tree(blow.graph, options);
      const auto q =
          ht::cuttree::vertex_cut_tree_quality(blow.graph, built.tree, pairs);
      best_tree = std::min(best_tree, q.max_ratio);
    }
    table.add(n, big_n, best_tree,
              std::pow(static_cast<double>(big_n), 1.0 / 3.0));
    xs.push_back(big_n);
    ys.push_back(best_tree);
  }
  ht::bench::print_table(table);
  ht::bench::print_shape("blowup-best-tree", xs, ys, ">= 1/3");
}

}  // namespace

int main() {
  figure2_rows();
  figure3_rows();
  blowup_rows();
  return 0;
}
