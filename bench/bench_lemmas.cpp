// Experiment: the two internal lemmas of Theorem 1, verified empirically
// on planted instances where the optimal coloring is known.
//
//   Lemma 2: total weight cut in phase 1  <=  alpha * n * log(n) * OPT / k
//   Lemma 3: total minority vertices after phase 1  <  k
//
// Both inequalities must hold at the threshold alpha*OPT/k the algorithm
// uses. The measured slack shows how loose the amortized analysis is in
// practice — the reason the algorithm's measured ratios in
// bench_bisection sit far below the proved O(sqrt(n) log^{5/4} n).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bisection.hpp"
#include "hypergraph/generators.hpp"
#include "util/rng.hpp"

int main() {
  ht::bench::print_header(
      "Lemma 2 / Lemma 3 on planted instances",
      "phase-1 cut <= alpha*n*log(n)*OPT/k and minority < k = sqrt(alpha*n)");

  ht::Table table({"n", "OPT(planted)", "pieces", "phase1 cut",
                   "Lemma2 bound", "minority", "Lemma3 bound (k)",
                   "L2 ok", "L3 ok"});
  for (std::int32_t half : {16, 32, 64, 128}) {
    ht::Rng rng(static_cast<std::uint64_t>(half));
    const std::int32_t cross = std::max(2, half / 8);
    const auto h = ht::hypergraph::planted_bisection(
        half, 3, 4 * half, cross, rng);
    const std::int32_t n = h.num_vertices();
    std::vector<bool> planted(static_cast<std::size_t>(n), false);
    for (std::int32_t v = half; v < n; ++v)
      planted[static_cast<std::size_t>(v)] = true;
    const double opt = h.cut_weight(planted);  // upper bound used as OPT
    const auto diag =
        ht::core::phase1_diagnostics(h, opt, planted, 0.0, 0.0, 11);
    table.add(n, opt, diag.pieces, diag.cut_weight, diag.lemma2_bound,
              diag.minority_count, diag.lemma3_bound,
              diag.cut_weight <= diag.lemma2_bound ? "yes" : "NO",
              static_cast<double>(diag.minority_count) < diag.lemma3_bound
                  ? "yes"
                  : "NO");
  }
  ht::bench::print_table(table);

  std::cout << "note: Lemma 3's proof needs the true OPT; using the planted "
               "cut (an upper bound) only\nloosens the threshold, so the "
               "inequality must still hold.\n";
  return 0;
}
