// Experiment L1: Lemma 1's clique-expansion sandwich and Proposition 1.
//
//   delta_H(S) <= delta_G'(S) <= min{k, hmax/2} * delta_H(S)
//
// Part 1 sweeps |S| = k and hyperedge size r on random hypergraphs and
// reports the worst measured distortion against the bound — the measured
// curve should flatten exactly where min{k, hmax/2} switches arm.
// Part 2 runs Proposition 1's unbalanced-k-cut path (solve on G', evaluate
// in H) against the native portfolio and the exact optimum.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "hypergraph/generators.hpp"
#include "partition/unbalanced_kcut.hpp"
#include "reduction/clique_expansion.hpp"
#include "util/rng.hpp"

namespace {

void distortion_sweep() {
  ht::bench::print_header(
      "L1a: clique expansion distortion sweep",
      "delta_G'/delta_H in [1, min{k, hmax/2}]   [Lemma 1]");
  ht::Table table({"r (=hmax)", "k", "worst delta_G'/delta_H", "bound",
                   "tight%"});
  const std::int32_t n = 64;
  for (std::int32_t r : {4, 8, 16, 32}) {
    ht::Rng rng(42 + static_cast<std::uint64_t>(r));
    const auto h = ht::hypergraph::random_uniform(n, 3 * n / 2, r, rng);
    const auto g = ht::reduction::clique_expansion(h);
    for (std::int32_t k : {1, 2, 4, 8, 16, 32}) {
      double worst = 0.0;
      for (int rep = 0; rep < 200; ++rep) {
        const auto set = rng.sample_without_replacement(n, k);
        std::vector<bool> side(static_cast<std::size_t>(n), false);
        for (auto v : set) side[static_cast<std::size_t>(v)] = true;
        const double dh = h.cut_weight(side);
        const double dg = g.cut_weight(side);
        if (dh > 0) worst = std::max(worst, dg / dh);
      }
      const double bound = ht::reduction::lemma1_bound(k, r);
      table.add(r, k, worst, bound, 100.0 * worst / bound);
    }
  }
  ht::bench::print_table(table);
  std::cout << "note: the bound's min{k, hmax/2} switch shows as the "
               "flattening of each r-row at k = r/2.\n";
}

void proposition1_rows() {
  ht::bench::print_header(
      "L1b: Proposition 1 — unbalanced k-cut via clique expansion",
      "approx factor min{k, hmax/2} * O(log n) over OPT");
  ht::Table table({"n", "r", "k", "exact", "via clique G'", "native",
                   "ratio(G')", "bound"});
  for (std::int32_t r : {3, 5}) {
    for (std::int32_t k : {2, 4, 6}) {
      const std::int32_t n = 16;
      ht::Rng rng(7 + static_cast<std::uint64_t>(r * 100 + k));
      const auto h = ht::hypergraph::random_uniform(n, 24, r, rng);
      const auto exact = ht::partition::unbalanced_kcut_exact(h, k);
      ht::Rng rng_a(1), rng_b(2);
      const auto via =
          ht::partition::unbalanced_kcut_via_clique_expansion(h, k, rng_a);
      const auto native = ht::partition::unbalanced_kcut(h, k, rng_b);
      const double ratio =
          exact.cut > 0 ? via.cut / exact.cut : (via.cut > 0 ? 1e300 : 1.0);
      table.add(n, r, k, exact.cut, via.cut, native.cut, ratio,
                ht::reduction::lemma1_bound(k, h.max_edge_size()) *
                    std::log2(static_cast<double>(n)));
    }
  }
  ht::bench::print_table(table);
}

}  // namespace

int main() {
  distortion_sweep();
  proposition1_rows();
  return 0;
}
