// Experiment THM2: hyperedge-size regimes of Theorem 2.
//
//   all hyperedges <= O(n^a) : ~O(n^a)    via Lemma 1 + graph bisection
//   all hyperedges >= Om(n^a): ~O(n^{1-a}) via k = min edge size
//
// We sweep the uniform hyperedge size r = n^a and run all three pipelines;
// the small-edge path should win for small r, the large-edge path for
// large r, with the crossover near r ~ sqrt(n) where the paper's upper
// bounds meet (the worst case hyperedge size the abstract highlights).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bisection.hpp"
#include "hypergraph/generators.hpp"
#include "util/rng.hpp"

int main() {
  ht::bench::print_header(
      "THM2: regimes by hyperedge size r = n^a (n = 64)",
      "small-edge path ~O(n^a), large-edge path ~O(n^{1-a}); crossover at "
      "r ~ sqrt(n)");

  const std::int32_t n = 64;
  ht::Table table({"r", "a=log_n(r)", "thm1", "small-edge", "large-edge",
                   "fm", "random"});
  for (std::int32_t r : {2, 4, 8, 16, 32}) {
    ht::Rng rng(31 + static_cast<std::uint64_t>(r));
    const auto h = ht::hypergraph::random_uniform(n, 2 * n, r, rng);
    const auto t1 = ht::core::bisect_theorem1(h);
    const auto small = ht::core::bisect_small_edges(h);
    const auto large = ht::core::bisect_large_edges(h);
    ht::Rng brng(r);
    const auto fm = ht::core::bisect_fm_baseline(h, brng);
    const auto rnd = ht::core::bisect_random_baseline(h, brng);
    table.add(r, std::log(static_cast<double>(r)) / std::log(64.0),
              t1.solution.cut, small.solution.cut, large.solution.cut,
              fm.solution.cut, rnd.solution.cut);
  }
  ht::bench::print_table(table);

  // Quasi-uniform instances (Lemma 4's regime): degree Theta(n^alpha).
  ht::Table table2({"alpha", "davg", "thm1", "small-edge", "fm"});
  for (double alpha : {0.3, 0.5, 0.7}) {
    ht::Rng rng(77 + static_cast<std::uint64_t>(alpha * 100));
    const auto h = ht::hypergraph::quasi_uniform(n, alpha, 3, rng);
    const auto t1 = ht::core::bisect_theorem1(h);
    const auto small = ht::core::bisect_small_edges(h);
    ht::Rng brng(static_cast<std::uint64_t>(alpha * 1000));
    const auto fm = ht::core::bisect_fm_baseline(h, brng);
    table2.add(alpha, h.avg_degree(), t1.solution.cut, small.solution.cut,
               fm.solution.cut);
  }
  std::cout << "quasi-uniform instances (degree ~ n^alpha):\n";
  ht::bench::print_table(table2);
  return 0;
}
