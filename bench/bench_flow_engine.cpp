// Experiment FE: the zero-rebuild flow engine vs. building a network per
// max-flow query.
//
// Each section runs one cut-tree workload twice — engine cache enabled
// (reset-and-reuse, the default) and disabled via FlowReuseScope (fresh
// FlowNetwork per query, the pre-refactor behaviour) — and reports wall
// time, max-flow calls, engine builds, and the arena hit rate. The outputs
// are bit-identical either way (see Determinism.* / FlowEngine.* tests);
// only the allocation profile moves. Results are written to
// BENCH_flow_engine.json for the CI perf-smoke artifact.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/flow_network.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/work_arena.hpp"

namespace {

struct Measurement {
  double wall_ms = 0.0;
  std::uint64_t max_flow_calls = 0;
  std::uint64_t flow_builds = 0;
  std::uint64_t flow_reuses = 0;
  double arena_hit_rate = 0.0;
  std::uint64_t peak_arena_bytes = 0;
};

struct Section {
  std::string name;
  Measurement reuse;
  Measurement fresh;
};

/// Runs `work` with counters cleared and returns the counter snapshot.
template <typename Fn>
Measurement measure(Fn&& work) {
  ht::WorkArena::local().clear_cache();
  auto& counters = ht::PerfCounters::global();
  counters.reset();
  ht::Timer timer;
  work();
  Measurement m;
  m.wall_ms = timer.millis();
  m.max_flow_calls = counters.max_flow_calls();
  m.flow_builds = counters.flow_builds();
  m.flow_reuses = counters.flow_reuses();
  m.arena_hit_rate = counters.arena_hit_rate();
  m.peak_arena_bytes = counters.peak_arena_bytes();
  return m;
}

template <typename Fn>
Section run_section(const std::string& name, Fn&& work) {
  Section s;
  s.name = name;
  s.reuse = measure(work);
  {
    ht::flow::FlowReuseScope off(false);
    s.fresh = measure(work);
  }
  return s;
}

void append_json(std::string& out, const std::string& name,
                 const Measurement& m, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"wall_ms\": %.3f, \"max_flow_calls\": %llu, "
                "\"flow_builds\": %llu, \"flow_reuses\": %llu, "
                "\"arena_hit_rate\": %.4f, \"peak_arena_bytes\": %llu}%s\n",
                name.c_str(), m.wall_ms,
                static_cast<unsigned long long>(m.max_flow_calls),
                static_cast<unsigned long long>(m.flow_builds),
                static_cast<unsigned long long>(m.flow_reuses),
                m.arena_hit_rate,
                static_cast<unsigned long long>(m.peak_arena_bytes),
                last ? "" : ",");
  out += buf;
}

}  // namespace

int main() {
  ht::bench::print_header(
      "FE: zero-rebuild flow engine",
      "reset()-and-reuse cuts network (re)builds by >= 1.5x vs "
      "build-per-query, with byte-identical outputs");

  std::vector<Section> sections;

  {
    ht::Rng rng(1313);
    const auto g = ht::graph::gnp_connected(160, 6.0 / 160, rng);
    sections.push_back(run_section(
        "gomory_hu", [&g] { (void)ht::flow::gomory_hu(g); }));
  }
  {
    ht::Rng rng(2024);
    const auto g = ht::graph::gnp_connected(140, 5.0 / 140, rng);
    ht::cuttree::VertexCutTreeOptions opt;
    opt.threshold_override = 0.75;  // force splits all the way down
    sections.push_back(run_section("vertex_cut_tree", [&] {
      (void)ht::cuttree::build_vertex_cut_tree(g, opt);
    }));
  }
  {
    ht::Rng rng(99);
    const auto h = ht::hypergraph::random_uniform(80, 160, 3, rng);
    sections.push_back(run_section("hypergraph_gomory_hu", [&h] {
      (void)ht::flow::hypergraph_gomory_hu(h);
    }));
  }

  ht::Table table({"section", "mode", "wall_ms", "flows", "builds", "reuses",
                   "hit_rate", "build_ratio"});
  bool gate_ok = true;
  for (const auto& s : sections) {
    const double ratio =
        s.reuse.flow_builds > 0
            ? static_cast<double>(s.fresh.flow_builds) /
                  static_cast<double>(s.reuse.flow_builds)
            : 0.0;
    table.add(s.name, "reuse", s.reuse.wall_ms, s.reuse.max_flow_calls,
              s.reuse.flow_builds, s.reuse.flow_reuses,
              s.reuse.arena_hit_rate, ratio);
    table.add(s.name, "fresh", s.fresh.wall_ms, s.fresh.max_flow_calls,
              s.fresh.flow_builds, s.fresh.flow_reuses,
              s.fresh.arena_hit_rate, 1.0);
    // Acceptance gate: >= 1.5x fewer network builds (or faster wall time)
    // on the Gomory-Hu and vertex-cut-tree sections.
    if (s.name != "hypergraph_gomory_hu" && ratio < 1.5 &&
        s.reuse.wall_ms >= s.fresh.wall_ms) {
      gate_ok = false;
    }
  }
  ht::bench::print_table(table);
  std::cout << (gate_ok ? "gate: PASS (>=1.5x fewer flow-network builds)"
                        : "gate: FAIL")
            << "\n";

  std::string json = "{\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& s = sections[i];
    json += "  \"" + s.name + "\": {\n";
    append_json(json, "reuse", s.reuse, false);
    append_json(json, "fresh", s.fresh, true);
    json += i + 1 == sections.size() ? "  }\n" : "  },\n";
  }
  json += "}\n";
  if (std::FILE* f = std::fopen("BENCH_flow_engine.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::cout << "wrote BENCH_flow_engine.json\n";
  }
  return gate_ok ? 0 : 1;
}
