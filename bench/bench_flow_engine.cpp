// Experiment FE: the zero-rebuild flow engine vs. building a network per
// max-flow query.
//
// Each section runs one cut-tree workload twice — engine cache enabled
// (reset-and-reuse, the default) and disabled via FlowReuseScope (fresh
// FlowNetwork per query, the pre-refactor behaviour) — and reports wall
// time, max-flow calls, engine builds, and the arena hit rate. The outputs
// are bit-identical either way (see Determinism.* / FlowEngine.* tests);
// only the allocation profile moves. Results are written to
// BENCH_flow_engine.json for the CI perf-smoke artifact; every measurement
// embeds a full metrics-registry snapshot, and a final probe checks that
// disabled tracing costs < 2% of the measured workload (soft gate: the
// result is reported, CI warns instead of failing on noisy runners).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/flow_network.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/work_arena.hpp"

namespace {

struct Measurement {
  double wall_ms = 0.0;
  std::uint64_t max_flow_calls = 0;
  std::uint64_t flow_builds = 0;
  std::uint64_t flow_reuses = 0;
  double arena_hit_rate = 0.0;
  std::uint64_t peak_arena_bytes = 0;
  std::string metrics_json;  // registry snapshot after the run
};

struct Section {
  std::string name;
  Measurement reuse;
  Measurement fresh;
};

/// Runs `work` with counters cleared and returns the counter snapshot.
template <typename Fn>
Measurement measure(Fn&& work) {
  ht::WorkArena::local().clear_cache();
  auto& counters = ht::PerfCounters::global();
  counters.reset();
  ht::Timer timer;
  work();
  Measurement m;
  m.wall_ms = timer.millis();
  m.max_flow_calls = counters.max_flow_calls();
  m.flow_builds = counters.flow_builds();
  m.flow_reuses = counters.flow_reuses();
  m.arena_hit_rate = counters.arena_hit_rate();
  m.peak_arena_bytes = counters.peak_arena_bytes();
  m.metrics_json = ht::obs::MetricsRegistry::global().snapshot_json();
  return m;
}

template <typename Fn>
Section run_section(const std::string& name, Fn&& work) {
  Section s;
  s.name = name;
  s.reuse = measure(work);
  {
    ht::flow::FlowReuseScope off(false);
    s.fresh = measure(work);
  }
  return s;
}

void append_json(std::string& out, const std::string& name,
                 const Measurement& m, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"wall_ms\": %.3f, \"max_flow_calls\": %llu, "
                "\"flow_builds\": %llu, \"flow_reuses\": %llu, "
                "\"arena_hit_rate\": %.4f, \"peak_arena_bytes\": %llu,\n"
                "      \"metrics\": ",
                name.c_str(), m.wall_ms,
                static_cast<unsigned long long>(m.max_flow_calls),
                static_cast<unsigned long long>(m.flow_builds),
                static_cast<unsigned long long>(m.flow_reuses),
                m.arena_hit_rate,
                static_cast<unsigned long long>(m.peak_arena_bytes));
  out += buf;
  out += m.metrics_json;
  out += last ? "}\n" : "},\n";
}

/// The <2% contract for disabled tracing. Directly timing traced vs
/// untraced wall clock drowns in run-to-run noise at this workload size,
/// so the probe measures the two factors separately: (a) the per-span
/// disabled cost from a tight construct/destruct loop, (b) the span count
/// an *enabled* run of the workload records. overhead_pct is then
/// spans * ns_per_span relative to the untraced wall time.
struct OverheadReport {
  double ns_per_span = 0.0;
  std::uint64_t spans = 0;
  double workload_ms = 0.0;
  double overhead_pct = 0.0;
};

template <typename Fn>
OverheadReport measure_disabled_overhead(Fn&& workload, double workload_ms) {
  OverheadReport r;
  r.workload_ms = workload_ms;
  const bool was_enabled = ht::obs::tracing_enabled();
  ht::obs::set_tracing_enabled(false);
  constexpr int kProbeSpans = 1 << 21;
  ht::Timer timer;
  for (int i = 0; i < kProbeSpans; ++i) {
    ht::obs::TraceSpan span("overhead.probe");
    (void)span;
  }
  r.ns_per_span = timer.millis() * 1e6 / kProbeSpans;

  auto& tracer = ht::obs::Tracer::global();
  const std::size_t before = tracer.event_count();
  ht::obs::set_tracing_enabled(true);
  workload();
  ht::obs::set_tracing_enabled(false);
  r.spans = tracer.event_count() - before;
  ht::obs::set_tracing_enabled(was_enabled);

  if (workload_ms > 0.0) {
    r.overhead_pct = static_cast<double>(r.spans) * r.ns_per_span /
                     (workload_ms * 1e6) * 100.0;
  }
  return r;
}

}  // namespace

int main() {
  ht::bench::print_header(
      "FE: zero-rebuild flow engine",
      "reset()-and-reuse cuts network (re)builds by >= 1.5x vs "
      "build-per-query, with byte-identical outputs");

  std::vector<Section> sections;

  ht::Rng gh_rng(1313);
  const auto gh_graph = ht::graph::gnp_connected(160, 6.0 / 160, gh_rng);
  const auto gh_workload = [&gh_graph] {
    (void)ht::flow::gomory_hu_run(gh_graph);
  };
  sections.push_back(run_section("gomory_hu", gh_workload));
  {
    ht::Rng rng(2024);
    const auto g = ht::graph::gnp_connected(140, 5.0 / 140, rng);
    ht::cuttree::VertexCutTreeOptions opt;
    opt.threshold_override = 0.75;  // force splits all the way down
    sections.push_back(run_section("vertex_cut_tree", [&] {
      (void)ht::cuttree::build_vertex_cut_tree(g, opt);
    }));
  }
  {
    ht::Rng rng(99);
    const auto h = ht::hypergraph::random_uniform(80, 160, 3, rng);
    sections.push_back(run_section("hypergraph_gomory_hu", [&h] {
      (void)ht::flow::hypergraph_gomory_hu_run(h);
    }));
  }

  ht::Table table({"section", "mode", "wall_ms", "flows", "builds", "reuses",
                   "hit_rate", "build_ratio"});
  bool gate_ok = true;
  for (const auto& s : sections) {
    const double ratio =
        s.reuse.flow_builds > 0
            ? static_cast<double>(s.fresh.flow_builds) /
                  static_cast<double>(s.reuse.flow_builds)
            : 0.0;
    table.add(s.name, "reuse", s.reuse.wall_ms, s.reuse.max_flow_calls,
              s.reuse.flow_builds, s.reuse.flow_reuses,
              s.reuse.arena_hit_rate, ratio);
    table.add(s.name, "fresh", s.fresh.wall_ms, s.fresh.max_flow_calls,
              s.fresh.flow_builds, s.fresh.flow_reuses,
              s.fresh.arena_hit_rate, 1.0);
    // Acceptance gate: >= 1.5x fewer network builds (or faster wall time)
    // on the Gomory-Hu and vertex-cut-tree sections.
    if (s.name != "hypergraph_gomory_hu" && ratio < 1.5 &&
        s.reuse.wall_ms >= s.fresh.wall_ms) {
      gate_ok = false;
    }
  }
  ht::bench::print_table(table);
  std::cout << (gate_ok ? "gate: PASS (>=1.5x fewer flow-network builds)"
                        : "gate: FAIL")
            << "\n";

  const OverheadReport overhead =
      measure_disabled_overhead(gh_workload, sections[0].reuse.wall_ms);
  std::printf(
      "trace overhead (disabled): %.2f ns/span x %llu spans over %.1f ms "
      "= %.4f%% -> %s\n",
      overhead.ns_per_span,
      static_cast<unsigned long long>(overhead.spans), overhead.workload_ms,
      overhead.overhead_pct,
      overhead.overhead_pct < 2.0 ? "PASS (<2%, soft gate)"
                                  : "WARN (>=2%, soft gate)");

  std::string json = "{\n";
  for (const auto& s : sections) {
    json += "  \"" + s.name + "\": {\n";
    append_json(json, "reuse", s.reuse, false);
    append_json(json, "fresh", s.fresh, true);
    json += "  },\n";
  }
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"trace_overhead\": {\"ns_per_span\": %.3f, "
                  "\"spans\": %llu, \"workload_ms\": %.3f, "
                  "\"overhead_pct\": %.5f}\n",
                  overhead.ns_per_span,
                  static_cast<unsigned long long>(overhead.spans),
                  overhead.workload_ms, overhead.overhead_pct);
    json += buf;
  }
  json += "}\n";
  if (std::FILE* f = std::fopen("BENCH_flow_engine.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::cout << "wrote BENCH_flow_engine.json\n";
  }
  return gate_ok ? 0 : 1;
}
