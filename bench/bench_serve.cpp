// Serving-path benchmark: queries/sec and tail latency of a TreeServer
// over a prebuilt snapshot, plus a hot-swap-under-load run that must drop
// zero queries.
//
// Measures what the build/serve split buys: the snapshot is built once
// (reported separately as build_ms), then min-cut / set-cut / bisection /
// k-way queries are answered by tree DPs alone — no flow solves — so
// per-query latency is micro-scale while a fresh in-memory build costs
// milliseconds to seconds.
//
// Output: a table per query kind (qps, p50/p99 microseconds) and
// BENCH_serve.json for CI (tools/bench_diff.py validates the JSON and
// gates qps/p99 against the checked-in baseline).
//
// Observability measurements in the same JSON:
//  - the four query sections run twice, flight recorder off then on;
//    "flight_recorder" reports both aggregate qps figures, the relative
//    overhead (soft CI gate: <= 2%), and a direct append() micro-bench
//    (ns/record) — the honest per-record cost independent of query size.
//  - "latency_hist" embeds the per-kind serve.latency.* histogram
//    quantiles (p50/p90/p99) as the server itself measured them, the
//    numbers a scrape of the live registry would serve.
//  - "metrics" embeds the full registry snapshot (versioned JSON).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ht/hypertree.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct QueryStats {
  std::string name;
  std::uint64_t queries = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[rank];
}

template <typename Query>
QueryStats measure(const std::string& name, std::uint64_t iterations,
                   Query&& query) {
  QueryStats stats;
  stats.name = name;
  std::vector<double> latencies_us;
  latencies_us.reserve(iterations);
  const auto begin = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const auto q0 = Clock::now();
    query(i);
    const auto q1 = Clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(q1 - q0).count());
  }
  const auto end = Clock::now();
  stats.queries = iterations;
  stats.wall_ms = std::chrono::duration<double, std::milli>(end - begin)
                      .count();
  stats.qps = stats.wall_ms > 0.0
                  ? 1000.0 * static_cast<double>(iterations) / stats.wall_ms
                  : 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  stats.p50_us = percentile(latencies_us, 0.50);
  stats.p99_us = percentile(latencies_us, 0.99);
  return stats;
}

void append_json(std::string& json, const QueryStats& stats, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"queries\": %llu, \"wall_ms\": %.3f, "
                "\"qps\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f}%s\n",
                stats.name.c_str(),
                static_cast<unsigned long long>(stats.queries),
                stats.wall_ms, stats.qps, stats.p50_us, stats.p99_us,
                last ? "" : ",");
  json += buf;
}

}  // namespace

int main() {
  // A mid-size instance: large enough that fresh builds visibly cost,
  // small enough that the bench stays in CI's seconds budget.
  ht::Rng rng(0x5eed);
  const auto h = ht::hypergraph::random_uniform(96, 300, 4, rng);
  if (!ht::hypergraph::is_connected(h)) {
    std::fprintf(stderr, "bench instance must be connected\n");
    return 1;
  }

  const std::string path = "/tmp/bench_serve.htsnap";
  const std::string path_alt = "/tmp/bench_serve_alt.htsnap";
  ht::snapshot::BuildOptions options;
  options.seed = 17;
  ht::snapshot::BuildReport report;
  const auto build0 = Clock::now();
  if (ht::Status s = ht::snapshot::write(h, path, options, &report);
      !s.ok()) {
    std::fprintf(stderr, "snapshot build failed: %s\n",
                 s.to_string().c_str());
    return 1;
  }
  const double build_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - build0)
          .count();
  options.seed = 18;  // distinct artifacts for the swap target
  if (!ht::snapshot::write(h, path_alt, options).ok()) return 1;

  auto server = ht::TreeServer::open(path);
  if (!server.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }
  const std::int32_t n = server->info().num_vertices;

  // The four query sections as one reusable pass (fresh Rng per pass so
  // both passes issue the identical query stream).
  auto run_sections = [&server, n]() {
    std::vector<QueryStats> sections;
    ht::Rng pick(1);
    sections.push_back(measure("min_cut", 20000, [&](std::uint64_t) {
      const auto s = static_cast<std::int32_t>(pick() % n);
      auto t = static_cast<std::int32_t>(pick() % n);
      if (t == s) t = (t + 1) % n;
      (void)*server->min_cut(s, t);
    }));
    sections.push_back(measure("set_cut", 2000, [&](std::uint64_t) {
      std::vector<std::int32_t> a{static_cast<std::int32_t>(pick() % n)};
      std::vector<std::int32_t> b;
      while (b.empty()) {
        const auto v = static_cast<std::int32_t>(pick() % n);
        if (v != a[0]) b.push_back(v);
      }
      (void)*server->set_cut(a, b);
    }));
    sections.push_back(measure("bisection", 200, [&](std::uint64_t) {
      (void)*server->bisection();
    }));
    sections.push_back(measure("kway4", 100, [&](std::uint64_t) {
      (void)*server->kway(4);
    }));
    return sections;
  };
  const auto aggregate_qps = [](const std::vector<QueryStats>& sections) {
    std::uint64_t queries = 0;
    double wall_ms = 0.0;
    for (const auto& s : sections) {
      queries += s.queries;
      wall_ms += s.wall_ms;
    }
    return wall_ms > 0.0
               ? 1000.0 * static_cast<double>(queries) / wall_ms
               : 0.0;
  };

  // Recorder-overhead A/B: identical query stream with appends disabled,
  // then enabled; the enabled pass is the headline measurement. Aggregate
  // (mixed-workload) qps is the gated figure — per-record cost is also
  // measured directly below, because on a ~250 ns min_cut walk even one
  // extra cache line is a visible fraction while the workload-level cost
  // stays far under the 2% gate.
  auto& recorder = ht::obs::FlightRecorder::global();
  (void)run_sections();  // warmup: touch every DP/code path once
  recorder.set_enabled(false);
  const double qps_recorder_off = aggregate_qps(run_sections());
  recorder.set_enabled(true);
  const std::vector<QueryStats> sections = run_sections();
  const double qps_recorder_on = aggregate_qps(sections);
  const double overhead_pct =
      qps_recorder_off > 0.0
          ? 100.0 * (qps_recorder_off - qps_recorder_on) / qps_recorder_off
          : 0.0;

  // Direct append cost (what "always on at ~tens of ns/record" claims).
  double append_ns = 0.0;
  {
    ht::obs::FlightRecord probe;
    probe.kind = ht::obs::QueryKind::kMinCut;
    probe.latency_ns = 1000;
    constexpr int kAppends = 200000;
    const auto a0 = Clock::now();
    for (int i = 0; i < kAppends; ++i) recorder.append(probe);
    append_ns = std::chrono::duration<double, std::nano>(Clock::now() - a0)
                    .count() /
                kAppends;
  }

  // Per-kind latency quantiles as the serving layer itself measured them
  // (both passes above; snapshot before the swap storm pollutes them).
  const char* kKinds[4] = {"min_cut", "set_cut", "bisection", "kway"};
  ht::obs::HistogramSnapshot latency_hist[4];
  for (int i = 0; i < 4; ++i) {
    latency_hist[i] = ht::obs::MetricsRegistry::global()
                          .histogram(std::string("serve.latency.") + kKinds[i])
                          .snapshot();
  }

  // Hot-swap under load: 2 query threads hammering min_cut while the main
  // thread swaps repeatedly; the gate is zero dropped (failed) queries.
  std::atomic<std::uint64_t> swap_answered{0};
  std::atomic<std::uint64_t> swap_failed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      ht::Rng wr(static_cast<std::uint64_t>(w) + 41);
      while (!stop.load(std::memory_order_acquire)) {
        const auto s = static_cast<std::int32_t>(wr() % n);
        auto t = static_cast<std::int32_t>(wr() % n);
        if (t == s) t = (t + 1) % n;
        if (server->min_cut(s, t).ok()) {
          swap_answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          swap_failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const auto swap0 = Clock::now();
  int swaps = 0;
  for (; swaps < 40; ++swaps) {
    if (!server->swap(swaps % 2 == 0 ? path_alt : path).ok()) break;
  }
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  const double swap_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - swap0)
          .count();
  const bool swap_gate_ok = swaps == 40 && swap_failed.load() == 0;

  std::printf("snapshot: %zu bytes, build %.1f ms (n=%d m=%d)\n",
              report.bytes, build_ms, h.num_vertices(), h.num_edges());
  std::printf("%-10s %10s %12s %10s %10s\n", "query", "count", "qps",
              "p50_us", "p99_us");
  for (const auto& s : sections) {
    std::printf("%-10s %10llu %12.1f %10.3f %10.3f\n", s.name.c_str(),
                static_cast<unsigned long long>(s.queries), s.qps, s.p50_us,
                s.p99_us);
  }
  std::printf(
      "hot-swap: %d swaps in %.1f ms, %llu queries answered, %llu dropped "
      "-> %s\n",
      swaps, swap_ms,
      static_cast<unsigned long long>(swap_answered.load()),
      static_cast<unsigned long long>(swap_failed.load()),
      swap_gate_ok ? "PASS (zero dropped)" : "FAIL");
  std::printf(
      "flight recorder: %.1f qps on vs %.1f qps off (overhead %.3f%%, "
      "soft gate <= 2%%), append %.1f ns/record, %llu recorded\n",
      qps_recorder_on, qps_recorder_off, overhead_pct, append_ns,
      static_cast<unsigned long long>(recorder.recorded()));
  std::printf("%-10s %10s %10s %10s %10s\n", "latency", "count", "p50_us",
              "p90_us", "p99_us");
  for (int i = 0; i < 4; ++i) {
    std::printf("%-10s %10llu %10.3f %10.3f %10.3f\n", kKinds[i],
                static_cast<unsigned long long>(latency_hist[i].count),
                latency_hist[i].p50() / 1000.0,
                latency_hist[i].p90() / 1000.0,
                latency_hist[i].p99() / 1000.0);
  }

  std::string json = "{\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"snapshot\": {\"bytes\": %zu, \"build_ms\": %.3f, "
                  "\"n\": %d, \"m\": %d},\n",
                  report.bytes, build_ms, h.num_vertices(), h.num_edges());
    json += buf;
  }
  for (const auto& s : sections) append_json(json, s, false);
  {
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "  \"hot_swap\": {\"swaps\": %d, \"wall_ms\": %.3f, "
        "\"answered\": %llu, \"dropped\": %llu},\n",
        swaps, swap_ms,
        static_cast<unsigned long long>(swap_answered.load()),
        static_cast<unsigned long long>(swap_failed.load()));
    json += buf;
  }
  {
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "  \"flight_recorder\": {\"qps_on\": %.1f, \"qps_off\": %.1f, "
        "\"overhead_pct\": %.4f, \"append_ns\": %.2f, \"records\": %llu},\n",
        qps_recorder_on, qps_recorder_off, overhead_pct, append_ns,
        static_cast<unsigned long long>(recorder.recorded()));
    json += buf;
  }
  json += "  \"latency_hist\": {\n";
  for (int i = 0; i < 4; ++i) {
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "    \"%s\": {\"count\": %llu, \"p50_us\": %.3f, \"p90_us\": %.3f, "
        "\"p99_us\": %.3f, \"max_us\": %.3f}%s\n",
        kKinds[i], static_cast<unsigned long long>(latency_hist[i].count),
        latency_hist[i].p50() / 1000.0, latency_hist[i].p90() / 1000.0,
        latency_hist[i].p99() / 1000.0,
        static_cast<double>(latency_hist[i].max) / 1000.0,
        i + 1 < 4 ? "," : "");
    json += buf;
  }
  json += "  },\n";
  json += "  \"metrics\": " +
          ht::obs::MetricsRegistry::global().snapshot_json() + "\n";
  json += "}\n";
  if (std::FILE* f = std::fopen("BENCH_serve.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_serve.json\n");
  }
  std::remove(path.c_str());
  std::remove(path_alt.c_str());
  return swap_gate_ok ? 0 : 1;
}
