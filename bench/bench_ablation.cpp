// Ablations for the design choices DESIGN.md calls out:
//
//   (a) the Section 3.1 stopping threshold alpha * f(W) — sweep it and
//       watch the tradeoff between separator weight (root cost) and piece
//       coarseness (per-piece cost), the exact tradeoff Lemma 6 balances;
//   (b) Theorem 1's OPT-guess ladder resolution;
//   (c) the FM polish pass on Theorem 1's output.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bisection.hpp"
#include "cuttree/quality.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "util/rng.hpp"

namespace {

void threshold_sweep() {
  ht::bench::print_header(
      "ablation (a): Section 3.1 stopping threshold",
      "Lemma 6 balances root weight (grows with threshold) against piece "
      "cost (shrinks); quality is U-shaped");
  ht::Table table({"threshold", "pieces", "w(S)", "quality(max)",
                   "quality(mean)"});
  const std::int32_t n = 96;
  ht::Rng rng(1);
  const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
  auto pairs = ht::cuttree::random_set_pairs(n, 60, 8, rng);
  for (double threshold : {0.01, 0.05, 0.1, 0.2, 0.3, 0.45}) {
    ht::cuttree::VertexCutTreeOptions options;
    options.threshold_override = threshold;
    const auto built = ht::cuttree::build_vertex_cut_tree(g, options);
    const auto q = ht::cuttree::vertex_cut_tree_quality(g, built.tree, pairs);
    table.add(threshold, built.num_pieces, built.separator_weight,
              q.max_ratio, q.mean_ratio);
  }
  // Default (the Lemma 6 balance point).
  const auto built = ht::cuttree::build_vertex_cut_tree(g);
  const auto q = ht::cuttree::vertex_cut_tree_quality(g, built.tree, pairs);
  table.add(built.threshold, built.num_pieces, built.separator_weight,
            q.max_ratio, q.mean_ratio);
  ht::bench::print_table(table);
}

void guess_ladder() {
  ht::bench::print_header(
      "ablation (b): Theorem 1 OPT-guess ladder resolution",
      "more guesses: better threshold calibration, more work");
  ht::Table table({"guesses", "cut", "winning guess", "pieces"});
  ht::Rng rng(2);
  const auto h = ht::hypergraph::planted_bisection(32, 3, 128, 6, rng);
  for (std::int32_t guesses : {2, 4, 8, 16}) {
    ht::core::Theorem1Options options;
    options.guesses = guesses;
    options.fm_polish = false;
    const auto r = ht::core::bisect_theorem1(h, options);
    table.add(guesses, r.solution.cut, r.opt_guess, r.phase1_pieces);
  }
  ht::bench::print_table(table);
}

void polish_ablation() {
  ht::bench::print_header("ablation (c): FM polish on Theorem 1's output",
                          "polish can only improve; gap shows rounding slack");
  ht::Table table({"instance", "thm1 raw", "thm1 + polish"});
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ht::Rng rng(seed);
    const auto h = ht::hypergraph::random_uniform(48, 96, 4, rng);
    ht::core::Theorem1Options raw;
    raw.seed = seed;
    raw.fm_polish = false;
    ht::core::Theorem1Options polished;
    polished.seed = seed;
    const auto r1 = ht::core::bisect_theorem1(h, raw);
    const auto r2 = ht::core::bisect_theorem1(h, polished);
    table.add("random r=4 seed=" + std::to_string(seed), r1.solution.cut,
              r2.solution.cut);
  }
  ht::bench::print_table(table);
}

}  // namespace

int main() {
  threshold_sweep();
  guess_ladder();
  polish_ablation();
  return 0;
}
