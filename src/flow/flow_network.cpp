#include "flow/flow_network.hpp"

#include <algorithm>
#include <atomic>
#include <queue>

#include "flow/dinic.hpp"
#include "flow/push_relabel.hpp"
#include "obs/metrics.hpp"
#include "util/perf_counters.hpp"
#include "util/run_context.hpp"

namespace ht::flow {

// The engines that predate the arena must agree on what "infinite" means;
// a drifting copy of this constant is exactly the bug this definition
// removes.
static_assert(kInfiniteCapacity == Dinic<double>::kInfinity);
static_assert(kInfiniteCapacity == PushRelabel<double>::kInfinity);

namespace {

std::atomic<bool> g_flow_reuse_enabled{true};

/// Registered once; per-query augmenting-path counts land here so a
/// metrics snapshot shows the flow-work distribution of a whole run.
ht::obs::Histogram& augmenting_paths_histogram() {
  static ht::obs::Histogram& h =
      ht::obs::MetricsRegistry::global().histogram("flow.augmenting_paths");
  return h;
}

}  // namespace

bool flow_reuse_enabled() {
  return g_flow_reuse_enabled.load(std::memory_order_relaxed);
}

FlowReuseScope::FlowReuseScope(bool enable)
    : previous_(g_flow_reuse_enabled.exchange(enable,
                                              std::memory_order_relaxed)) {}

FlowReuseScope::~FlowReuseScope() {
  g_flow_reuse_enabled.store(previous_, std::memory_order_relaxed);
}

void FlowNetwork::init(NodeId inner_nodes, std::int32_t terminal_slots) {
  HT_CHECK(inner_nodes >= 0 && terminal_slots >= 0);
  first_out_.assign(static_cast<std::size_t>(inner_nodes) + 2, -1);
  source_ = inner_nodes;
  sink_ = inner_nodes + 1;
  source_arc_of_.assign(static_cast<std::size_t>(terminal_slots), -1);
  sink_arc_of_.assign(static_cast<std::size_t>(terminal_slots), -1);
}

std::int32_t FlowNetwork::add_pair(NodeId u, NodeId v, double cap_fwd,
                                   double cap_bwd) {
  HT_DCHECK(0 <= u && u < num_nodes());
  HT_DCHECK(0 <= v && v < num_nodes());
  HT_DCHECK(cap_fwd >= 0.0 && cap_bwd >= 0.0);
  const auto a = static_cast<std::int32_t>(arc_to_.size());
  arc_to_.push_back(v);
  arc_next_.push_back(first_out_[static_cast<std::size_t>(u)]);
  base_cap_.push_back(cap_fwd);
  first_out_[static_cast<std::size_t>(u)] = a;
  arc_to_.push_back(u);
  arc_next_.push_back(first_out_[static_cast<std::size_t>(v)]);
  base_cap_.push_back(cap_bwd);
  first_out_[static_cast<std::size_t>(v)] = a + 1;
  return a;
}

void FlowNetwork::add_terminal_pair(std::int32_t slot, NodeId source_entry,
                                    NodeId sink_exit) {
  // Dormant at capacity 0: positive() filters them out of every traversal
  // until attach_* flips them to kInfiniteCapacity for one query.
  source_arc_of_[static_cast<std::size_t>(slot)] =
      add_arc(source_, source_entry, 0.0);
  sink_arc_of_[static_cast<std::size_t>(slot)] =
      add_arc(sink_exit, sink_, 0.0);
}

void FlowNetwork::freeze() {
  cap_ = base_cap_;
  level_.assign(first_out_.size(), -1);
  iter_.assign(first_out_.size(), -1);
  reach_.assign(first_out_.size(), 0);
  PerfCounters::global().add_flow_build();
}

FlowNetwork FlowNetwork::edge_cut_network(const ht::graph::Graph& g) {
  HT_CHECK(g.finalized());
  FlowNetwork net;
  net.init(g.num_vertices(), g.num_vertices());
  for (ht::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    net.add_undirected(edge.u, edge.v, edge.weight);
  }
  for (ht::graph::VertexId v = 0; v < g.num_vertices(); ++v)
    net.add_terminal_pair(v, v, v);
  net.freeze();
  return net;
}

FlowNetwork FlowNetwork::vertex_cut_network(const ht::graph::Graph& g) {
  HT_CHECK(g.finalized());
  const ht::graph::VertexId n = g.num_vertices();
  auto v_in = [](ht::graph::VertexId v) { return static_cast<NodeId>(2 * v); };
  auto v_out = [](ht::graph::VertexId v) {
    return static_cast<NodeId>(2 * v + 1);
  };
  FlowNetwork net;
  net.init(2 * n, n);
  for (ht::graph::VertexId v = 0; v < n; ++v)
    net.add_arc(v_in(v), v_out(v), g.vertex_weight(v));
  for (const auto& edge : g.edges()) {
    net.add_arc(v_out(edge.u), v_in(edge.v), kInfiniteCapacity);
    net.add_arc(v_out(edge.v), v_in(edge.u), kInfiniteCapacity);
  }
  // Entering at v_in (before the capacity arc) lets the cut pick A and B
  // vertices themselves, matching the paper's definition of a vertex cut.
  for (ht::graph::VertexId v = 0; v < n; ++v)
    net.add_terminal_pair(v, v_in(v), v_out(v));
  net.freeze();
  return net;
}

FlowNetwork FlowNetwork::hyperedge_cut_network(
    const ht::hypergraph::Hypergraph& h) {
  HT_CHECK(h.finalized());
  const auto n = h.num_vertices();
  const auto m = h.num_edges();
  auto e_in = [n](ht::hypergraph::EdgeId e) {
    return static_cast<NodeId>(n + 2 * e);
  };
  auto e_out = [n](ht::hypergraph::EdgeId e) {
    return static_cast<NodeId>(n + 2 * e + 1);
  };
  FlowNetwork net;
  net.init(n + 2 * m, n);
  for (ht::hypergraph::EdgeId e = 0; e < m; ++e) {
    net.add_arc(e_in(e), e_out(e), h.edge_weight(e));
    for (auto v : h.pins(e)) {
      net.add_arc(v, e_in(e), kInfiniteCapacity);
      net.add_arc(e_out(e), v, kInfiniteCapacity);
    }
  }
  for (ht::hypergraph::VertexId v = 0; v < n; ++v)
    net.add_terminal_pair(v, v, v);
  net.freeze();
  return net;
}

void FlowNetwork::reset() {
  HT_CHECK(source_ >= 0);
  std::copy(base_cap_.begin(), base_cap_.end(), cap_.begin());
  ++queries_;
}

void FlowNetwork::attach_source(std::int32_t slot) {
  HT_CHECK(0 <= slot &&
           slot < static_cast<std::int32_t>(source_arc_of_.size()));
  cap_[static_cast<std::size_t>(
      source_arc_of_[static_cast<std::size_t>(slot)])] = kInfiniteCapacity;
}

void FlowNetwork::attach_sink(std::int32_t slot) {
  HT_CHECK(0 <= slot &&
           slot < static_cast<std::int32_t>(sink_arc_of_.size()));
  cap_[static_cast<std::size_t>(
      sink_arc_of_[static_cast<std::size_t>(slot)])] = kInfiniteCapacity;
}

bool FlowNetwork::bfs() {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<NodeId> q;
  level_[static_cast<std::size_t>(source_)] = 0;
  q.push(source_);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (std::int32_t a = first_out_[static_cast<std::size_t>(v)]; a != -1;
         a = arc_next_[static_cast<std::size_t>(a)]) {
      if (!positive(cap_[static_cast<std::size_t>(a)])) continue;
      const NodeId to = arc_to_[static_cast<std::size_t>(a)];
      if (level_[static_cast<std::size_t>(to)] != -1) continue;
      level_[static_cast<std::size_t>(to)] =
          level_[static_cast<std::size_t>(v)] + 1;
      q.push(to);
    }
  }
  return level_[static_cast<std::size_t>(sink_)] != -1;
}

double FlowNetwork::dfs(NodeId v, double limit) {
  if (v == sink_) return limit;
  for (std::int32_t& a = iter_[static_cast<std::size_t>(v)]; a != -1;
       a = arc_next_[static_cast<std::size_t>(a)]) {
    const double cap = cap_[static_cast<std::size_t>(a)];
    if (!positive(cap)) continue;
    const NodeId to = arc_to_[static_cast<std::size_t>(a)];
    if (level_[static_cast<std::size_t>(to)] !=
        level_[static_cast<std::size_t>(v)] + 1)
      continue;
    const double pushed = dfs(to, cap < limit ? cap : limit);
    if (positive(pushed)) {
      cap_[static_cast<std::size_t>(a)] -= pushed;
      cap_[static_cast<std::size_t>(a ^ 1)] += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double FlowNetwork::max_flow() {
  HT_CHECK(source_ >= 0);
  RunState* run = current_run_state();
  const std::uint64_t stride =
      run != nullptr ? std::max<std::uint32_t>(
                           1, run->context().flow_check_rounds)
                     : 0;
  double total = 0.0;
  std::uint64_t paths = 0;
  std::uint64_t rounds = 0;
  last_flow_complete_ = true;
  while (bfs()) {
    // One poll per `stride` BFS phases (one relaxed load per phase once a
    // stop has latched elsewhere): an interrupted solve abandons the
    // remaining phases and reports last_flow_complete() == false.
    if (run != nullptr) {
      ++rounds;
      if (run->stopped() ||
          (rounds % stride == 0 && !run->check().ok())) {
        last_flow_complete_ = false;
        break;
      }
    }
    std::copy(first_out_.begin(), first_out_.end(), iter_.begin());
    for (;;) {
      const double pushed = dfs(source_, kInfiniteCapacity);
      if (!positive(pushed)) break;
      total += pushed;
      ++paths;
    }
  }
  last_augmenting_paths_ = paths;
  augmenting_paths_histogram().record(paths);
  return total;
}

double FlowNetwork::max_flow_push_relabel() {
  HT_CHECK(source_ >= 0);
  RunState* run = current_run_state();
  // Discharges are far cheaper than Dinic phases; poll at a matching
  // wall-clock cadence by scaling the configured round stride.
  const std::uint64_t stride =
      run != nullptr
          ? std::max<std::uint32_t>(1, run->context().flow_check_rounds) *
                1024ULL
          : 0;
  std::uint64_t discharges = 0;
  last_flow_complete_ = true;
  last_augmenting_paths_ = 0;
  const auto n = static_cast<std::size_t>(num_nodes());
  height_.assign(n, 0);
  excess_.assign(n, 0.0);
  height_[static_cast<std::size_t>(source_)] = num_nodes();
  height_count_.assign(2 * n + 2, 0);
  height_count_[0] = static_cast<std::int32_t>(n - 1);
  height_count_[n] = 1;

  auto push = [&](std::int32_t a, double amount) {
    const NodeId from = arc_to_[static_cast<std::size_t>(a ^ 1)];
    cap_[static_cast<std::size_t>(a)] -= amount;
    cap_[static_cast<std::size_t>(a ^ 1)] += amount;
    excess_[static_cast<std::size_t>(from)] -= amount;
    excess_[static_cast<std::size_t>(arc_to_[static_cast<std::size_t>(a)])] +=
        amount;
  };
  auto relabel = [&](NodeId v) {
    const auto old_height = height_[static_cast<std::size_t>(v)];
    std::int64_t best = 2 * num_nodes();
    for (std::int32_t a = first_out_[static_cast<std::size_t>(v)]; a != -1;
         a = arc_next_[static_cast<std::size_t>(a)]) {
      if (positive(cap_[static_cast<std::size_t>(a)]))
        best = std::min<std::int64_t>(
            best,
            height_[static_cast<std::size_t>(
                arc_to_[static_cast<std::size_t>(a)])] +
                1);
    }
    // Gap heuristic: if v was the last node at its height, every node
    // above that height (below n) is cut off from the sink — lift them.
    if (--height_count_[static_cast<std::size_t>(old_height)] == 0 &&
        old_height < num_nodes()) {
      for (NodeId u = 0; u < num_nodes(); ++u) {
        auto& hu = height_[static_cast<std::size_t>(u)];
        if (old_height < hu && hu < num_nodes()) {
          --height_count_[static_cast<std::size_t>(hu)];
          hu = num_nodes() + 1;
          ++height_count_[static_cast<std::size_t>(hu)];
        }
      }
    }
    // Exact arithmetic guarantees relabel strictly raises the height; the
    // kInfiniteCapacity terminal arcs break that in doubles (a push of c
    // out of an excess of ~1e307 leaves the excess bit-identical, minting
    // phantom excess downstream with no residual path back to the super-
    // source). A node stuck at the 2n clamp would relabel forever — park
    // it above every reachable height instead and strand its dust; the
    // sink's excess, which is what we return, is unaffected.
    if (best <= old_height) best = 2 * num_nodes() + 1;
    height_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(best);
    ++height_count_[static_cast<std::size_t>(best)];
  };

  for (std::int32_t a = first_out_[static_cast<std::size_t>(source_)];
       a != -1; a = arc_next_[static_cast<std::size_t>(a)]) {
    push(a, cap_[static_cast<std::size_t>(a)]);
  }
  std::queue<NodeId> active;
  for (NodeId v = 0; v < num_nodes(); ++v)
    if (v != source_ && v != sink_ &&
        positive(excess_[static_cast<std::size_t>(v)]))
      active.push(v);

  current_.assign(first_out_.begin(), first_out_.end());
  while (!active.empty()) {
    const NodeId v = active.front();
    active.pop();
    if (run != nullptr) {
      ++discharges;
      if (run->stopped() ||
          (discharges % stride == 0 && !run->check().ok())) {
        last_flow_complete_ = false;
        break;
      }
    }
    if (v == source_ || v == sink_) continue;
    while (positive(excess_[static_cast<std::size_t>(v)])) {
      if (height_[static_cast<std::size_t>(v)] > 2 * num_nodes()) break;
      std::int32_t& a = current_[static_cast<std::size_t>(v)];
      if (a == -1) {
        relabel(v);
        a = first_out_[static_cast<std::size_t>(v)];
        continue;
      }
      const NodeId to = arc_to_[static_cast<std::size_t>(a)];
      if (positive(cap_[static_cast<std::size_t>(a)]) &&
          height_[static_cast<std::size_t>(v)] ==
              height_[static_cast<std::size_t>(to)] + 1) {
        const bool was_inactive =
            !positive(excess_[static_cast<std::size_t>(to)]);
        push(a, std::min(excess_[static_cast<std::size_t>(v)],
                         cap_[static_cast<std::size_t>(a)]));
        if (was_inactive && to != sink_ && to != source_) active.push(to);
      } else {
        a = arc_next_[static_cast<std::size_t>(a)];
      }
    }
  }
  return excess_[static_cast<std::size_t>(sink_)];
}

const std::vector<char>& FlowNetwork::source_side() {
  HT_CHECK(source_ >= 0);
  std::fill(reach_.begin(), reach_.end(), 0);
  // iter_ is dead between solves; borrow it as the DFS stack.
  std::int32_t top = 0;
  iter_[static_cast<std::size_t>(top++)] = source_;
  reach_[static_cast<std::size_t>(source_)] = 1;
  while (top > 0) {
    const NodeId v = iter_[static_cast<std::size_t>(--top)];
    for (std::int32_t a = first_out_[static_cast<std::size_t>(v)]; a != -1;
         a = arc_next_[static_cast<std::size_t>(a)]) {
      if (!positive(cap_[static_cast<std::size_t>(a)])) continue;
      const NodeId to = arc_to_[static_cast<std::size_t>(a)];
      if (reach_[static_cast<std::size_t>(to)]) continue;
      reach_[static_cast<std::size_t>(to)] = 1;
      iter_[static_cast<std::size_t>(top++)] = to;
    }
  }
  return reach_;
}

std::size_t FlowNetwork::memory_bytes() const {
  auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return bytes(first_out_) + bytes(arc_to_) + bytes(arc_next_) +
         bytes(base_cap_) + bytes(cap_) + bytes(source_arc_of_) +
         bytes(sink_arc_of_) + bytes(level_) + bytes(iter_) + bytes(reach_) +
         bytes(height_) + bytes(excess_) + bytes(height_count_) +
         bytes(current_);
}

}  // namespace ht::flow
