// Dinic max-flow on a directed network, templated on capacity type.
//
// Used throughout the library with Cap = double: the clique expansion of
// Lemma 1 produces capacities 1/(|h|-1), so integral flow is not available.
// All comparisons go through a relative epsilon; every cut this solver
// produces is re-evaluated combinatorially by its caller, so floating-point
// slack cannot corrupt reported cut values.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "util/check.hpp"

namespace ht::flow {

using NodeId = std::int32_t;

template <typename Cap>
class Dinic {
 public:
  static constexpr Cap kInfinity = std::numeric_limits<Cap>::max() / 4;

  explicit Dinic(NodeId num_nodes) : first_out_(num_nodes, -1) {}

  NodeId num_nodes() const { return static_cast<NodeId>(first_out_.size()); }

  NodeId add_node() {
    first_out_.push_back(-1);
    return num_nodes() - 1;
  }

  /// Directed arc u -> v with capacity cap (reverse capacity 0).
  /// Returns the arc index; the paired reverse arc is index+1.
  std::int32_t add_arc(NodeId u, NodeId v, Cap cap) {
    return add_pair(u, v, cap, Cap{0});
  }

  /// Undirected edge: capacity cap in both directions sharing residual.
  std::int32_t add_undirected(NodeId u, NodeId v, Cap cap) {
    return add_pair(u, v, cap, cap);
  }

  struct Arc {
    NodeId to;
    std::int32_t next;  // next arc out of the same tail, -1 terminates
    Cap cap;            // remaining capacity
  };

  const Arc& arc(std::int32_t a) const {
    return arcs_[static_cast<std::size_t>(a)];
  }
  Cap original_capacity(std::int32_t a) const {
    // cap(a) + flow(a) where flow(a) = residual gained by reverse arc; for a
    // forward arc of a directed pair this is cap + (rev.cap - rev.orig).
    return orig_[static_cast<std::size_t>(a)];
  }
  Cap flow_on(std::int32_t a) const {
    return orig_[static_cast<std::size_t>(a)] -
           arcs_[static_cast<std::size_t>(a)].cap;
  }
  std::int32_t num_arcs() const { return static_cast<std::int32_t>(arcs_.size()); }

  /// Computes max flow from s to t. May be called once per instance.
  Cap max_flow(NodeId s, NodeId t) {
    HT_CHECK(s != t);
    source_ = s;
    sink_ = t;
    Cap total{0};
    while (bfs(s, t)) {
      iter_.assign(first_out_.begin(), first_out_.end());
      for (;;) {
        const Cap pushed = dfs(s, t, kInfinity);
        if (!positive(pushed)) break;
        total += pushed;
      }
    }
    return total;
  }

  /// After max_flow: vertices reachable from the source in the residual
  /// network (the canonical minimum cut's source side).
  std::vector<bool> min_cut_source_side() const {
    std::vector<bool> reachable(static_cast<std::size_t>(num_nodes()), false);
    std::vector<NodeId> stack{source_};
    reachable[static_cast<std::size_t>(source_)] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (std::int32_t a = first_out_[static_cast<std::size_t>(v)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (!positive(arc.cap)) continue;
        if (reachable[static_cast<std::size_t>(arc.to)]) continue;
        reachable[static_cast<std::size_t>(arc.to)] = true;
        stack.push_back(arc.to);
      }
    }
    return reachable;
  }

 private:
  static bool positive(Cap c) {
    if constexpr (std::numeric_limits<Cap>::is_integer) {
      return c > 0;
    } else {
      return c > Cap(1e-11);
    }
  }

  std::int32_t add_pair(NodeId u, NodeId v, Cap cap_fwd, Cap cap_bwd) {
    HT_CHECK(0 <= u && u < num_nodes());
    HT_CHECK(0 <= v && v < num_nodes());
    HT_CHECK(cap_fwd >= Cap{0} && cap_bwd >= Cap{0});
    const auto a = static_cast<std::int32_t>(arcs_.size());
    arcs_.push_back(Arc{v, first_out_[static_cast<std::size_t>(u)], cap_fwd});
    orig_.push_back(cap_fwd);
    first_out_[static_cast<std::size_t>(u)] = a;
    arcs_.push_back(Arc{u, first_out_[static_cast<std::size_t>(v)], cap_bwd});
    orig_.push_back(cap_bwd);
    first_out_[static_cast<std::size_t>(v)] = a + 1;
    return a;
  }

  bool bfs(NodeId s, NodeId t) {
    level_.assign(static_cast<std::size_t>(num_nodes()), -1);
    std::queue<NodeId> q;
    level_[static_cast<std::size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (std::int32_t a = first_out_[static_cast<std::size_t>(v)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (!positive(arc.cap)) continue;
        if (level_[static_cast<std::size_t>(arc.to)] != -1) continue;
        level_[static_cast<std::size_t>(arc.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        q.push(arc.to);
      }
    }
    return level_[static_cast<std::size_t>(t)] != -1;
  }

  Cap dfs(NodeId v, NodeId t, Cap limit) {
    if (v == t) return limit;
    for (std::int32_t& a = iter_[static_cast<std::size_t>(v)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (!positive(arc.cap)) continue;
      if (level_[static_cast<std::size_t>(arc.to)] !=
          level_[static_cast<std::size_t>(v)] + 1)
        continue;
      const Cap pushed =
          dfs(arc.to, t, arc.cap < limit ? arc.cap : limit);
      if (positive(pushed)) {
        arc.cap -= pushed;
        arcs_[static_cast<std::size_t>(a ^ 1)].cap += pushed;
        return pushed;
      }
    }
    return Cap{0};
  }

  std::vector<std::int32_t> first_out_;
  std::vector<Arc> arcs_;
  std::vector<Cap> orig_;
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> iter_;
  NodeId source_ = -1;
  NodeId sink_ = -1;
};

}  // namespace ht::flow
