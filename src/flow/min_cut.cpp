#include "flow/min_cut.hpp"

#include <algorithm>

#include "flow/dinic.hpp"
#include "util/perf_counters.hpp"

namespace ht::flow {

namespace {

using ht::graph::Graph;
using ht::graph::VertexId;
using ht::hypergraph::Hypergraph;

constexpr double kInf = Dinic<double>::kInfinity;

void check_disjoint_nonempty(const std::vector<VertexId>& a,
                             const std::vector<VertexId>& b, VertexId n) {
  HT_CHECK(!a.empty() && !b.empty());
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (VertexId v : a) {
    HT_CHECK(0 <= v && v < n);
    mark[static_cast<std::size_t>(v)] = 1;
  }
  for (VertexId v : b) {
    HT_CHECK(0 <= v && v < n);
    HT_CHECK_MSG(mark[static_cast<std::size_t>(v)] == 0,
                 "A and B intersect at vertex " << v);
  }
}

}  // namespace

EdgeCutResult min_edge_cut(const Graph& g, const std::vector<VertexId>& a,
                           const std::vector<VertexId>& b) {
  HT_CHECK(g.finalized());
  PerfCounters::global().add_max_flow_call();
  check_disjoint_nonempty(a, b, g.num_vertices());
  const NodeId n = g.num_vertices();
  Dinic<double> dinic(n + 2);
  const NodeId s = n, t = n + 1;
  std::vector<std::int32_t> arc_of_edge(
      static_cast<std::size_t>(g.num_edges()));
  for (ht::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    arc_of_edge[static_cast<std::size_t>(e)] =
        dinic.add_undirected(edge.u, edge.v, edge.weight);
  }
  for (VertexId v : a) dinic.add_arc(s, v, kInf);
  for (VertexId v : b) dinic.add_arc(v, t, kInf);
  dinic.max_flow(s, t);

  EdgeCutResult out;
  const std::vector<bool> reach = dinic.min_cut_source_side();
  out.source_side.assign(static_cast<std::size_t>(n), false);
  for (NodeId v = 0; v < n; ++v)
    out.source_side[static_cast<std::size_t>(v)] =
        reach[static_cast<std::size_t>(v)];
  for (ht::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    if (out.source_side[static_cast<std::size_t>(edge.u)] !=
        out.source_side[static_cast<std::size_t>(edge.v)]) {
      out.cut_edges.push_back(e);
      out.value += edge.weight;
    }
  }
  return out;
}

VertexCutResult min_vertex_cut(const Graph& g, const std::vector<VertexId>& a,
                               const std::vector<VertexId>& b) {
  HT_CHECK(g.finalized());
  PerfCounters::global().add_max_flow_call();
  check_disjoint_nonempty(a, b, g.num_vertices());
  const VertexId n = g.num_vertices();
  // Node splitting: v_in = 2v, v_out = 2v+1.
  Dinic<double> dinic(2 * n + 2);
  const NodeId s = 2 * n, t = 2 * n + 1;
  auto v_in = [](VertexId v) { return static_cast<NodeId>(2 * v); };
  auto v_out = [](VertexId v) { return static_cast<NodeId>(2 * v + 1); };
  for (VertexId v = 0; v < n; ++v)
    dinic.add_arc(v_in(v), v_out(v), g.vertex_weight(v));
  for (const auto& edge : g.edges()) {
    dinic.add_arc(v_out(edge.u), v_in(edge.v), kInf);
    dinic.add_arc(v_out(edge.v), v_in(edge.u), kInf);
  }
  // Entering at v_in (before the capacity arc) lets the cut pick A and B
  // vertices themselves, matching the paper's definition of a vertex cut.
  for (VertexId v : a) dinic.add_arc(s, v_in(v), kInf);
  for (VertexId v : b) dinic.add_arc(v_out(v), t, kInf);
  dinic.max_flow(s, t);

  VertexCutResult out;
  const std::vector<bool> reach = dinic.min_cut_source_side();
  for (VertexId v = 0; v < n; ++v) {
    if (reach[static_cast<std::size_t>(v_in(v))] &&
        !reach[static_cast<std::size_t>(v_out(v))]) {
      out.cut_vertices.push_back(v);
      out.value += g.vertex_weight(v);
    }
  }
  HT_DCHECK(vertex_cut_separates(g, out.cut_vertices, a, b));
  return out;
}

HyperedgeCutResult min_hyperedge_cut(
    const Hypergraph& h, const std::vector<ht::hypergraph::VertexId>& a,
    const std::vector<ht::hypergraph::VertexId>& b) {
  HT_CHECK(h.finalized());
  PerfCounters::global().add_max_flow_call();
  check_disjoint_nonempty(a, b, h.num_vertices());
  const auto n = h.num_vertices();
  const auto m = h.num_edges();
  // Lawler expansion: vertex v -> node v; hyperedge e -> nodes
  // n+2e (in) and n+2e+1 (out) joined by a capacity-w(e) arc; membership
  // arcs are infinite.
  Dinic<double> dinic(n + 2 * m + 2);
  const NodeId s = n + 2 * m, t = s + 1;
  auto e_in = [n](ht::hypergraph::EdgeId e) {
    return static_cast<NodeId>(n + 2 * e);
  };
  auto e_out = [n](ht::hypergraph::EdgeId e) {
    return static_cast<NodeId>(n + 2 * e + 1);
  };
  for (ht::hypergraph::EdgeId e = 0; e < m; ++e) {
    dinic.add_arc(e_in(e), e_out(e), h.edge_weight(e));
    for (auto v : h.pins(e)) {
      dinic.add_arc(v, e_in(e), kInf);
      dinic.add_arc(e_out(e), v, kInf);
    }
  }
  for (auto v : a) dinic.add_arc(s, v, kInf);
  for (auto v : b) dinic.add_arc(v, t, kInf);
  dinic.max_flow(s, t);

  HyperedgeCutResult out;
  const std::vector<bool> reach = dinic.min_cut_source_side();
  for (ht::hypergraph::EdgeId e = 0; e < m; ++e) {
    if (reach[static_cast<std::size_t>(e_in(e))] &&
        !reach[static_cast<std::size_t>(e_out(e))]) {
      out.cut_edges.push_back(e);
      out.value += h.edge_weight(e);
    }
  }
  HT_DCHECK(hyperedge_cut_separates(h, out.cut_edges, a, b));
  return out;
}

bool vertex_cut_separates(const Graph& g, const std::vector<VertexId>& cut,
                          const std::vector<VertexId>& a,
                          const std::vector<VertexId>& b) {
  HT_CHECK(g.finalized());
  std::vector<bool> removed(static_cast<std::size_t>(g.num_vertices()), false);
  for (VertexId v : cut) removed[static_cast<std::size_t>(v)] = true;
  auto [comp, count] = ht::graph::connected_components_excluding(g, removed);
  (void)count;
  std::vector<char> a_comps(static_cast<std::size_t>(
                                std::max<std::int32_t>(count, 1)),
                            0);
  for (VertexId v : a) {
    const auto c = comp[static_cast<std::size_t>(v)];
    if (c >= 0) a_comps[static_cast<std::size_t>(c)] = 1;
  }
  for (VertexId v : b) {
    const auto c = comp[static_cast<std::size_t>(v)];
    if (c >= 0 && a_comps[static_cast<std::size_t>(c)]) return false;
  }
  return true;
}

bool hyperedge_cut_separates(const Hypergraph& h,
                             const std::vector<ht::hypergraph::EdgeId>& cut,
                             const std::vector<ht::hypergraph::VertexId>& a,
                             const std::vector<ht::hypergraph::VertexId>& b) {
  HT_CHECK(h.finalized());
  std::vector<bool> edge_removed(static_cast<std::size_t>(h.num_edges()),
                                 false);
  for (auto e : cut) edge_removed[static_cast<std::size_t>(e)] = true;
  // BFS from A over surviving hyperedges.
  std::vector<bool> visited(static_cast<std::size_t>(h.num_vertices()), false);
  std::vector<bool> edge_done(static_cast<std::size_t>(h.num_edges()), false);
  std::vector<ht::hypergraph::VertexId> stack;
  for (auto v : a) {
    if (!visited[static_cast<std::size_t>(v)]) {
      visited[static_cast<std::size_t>(v)] = true;
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    for (auto e : h.incident_edges(v)) {
      if (edge_removed[static_cast<std::size_t>(e)] ||
          edge_done[static_cast<std::size_t>(e)])
        continue;
      edge_done[static_cast<std::size_t>(e)] = true;
      for (auto u : h.pins(e)) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          stack.push_back(u);
        }
      }
    }
  }
  for (auto v : b)
    if (visited[static_cast<std::size_t>(v)]) return false;
  return true;
}

}  // namespace ht::flow
