#include "flow/min_cut.hpp"

#include <algorithm>
#include <optional>

#include "flow/flow_network.hpp"
#include "obs/trace.hpp"
#include "util/perf_counters.hpp"
#include "util/run_context.hpp"
#include "util/work_arena.hpp"

namespace ht::flow {

namespace {

using ht::graph::Graph;
using ht::graph::VertexId;
using ht::hypergraph::Hypergraph;

void check_disjoint_nonempty(const std::vector<VertexId>& a,
                             const std::vector<VertexId>& b, VertexId n) {
  HT_CHECK(!a.empty() && !b.empty());
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (VertexId v : a) {
    HT_CHECK(0 <= v && v < n);
    mark[static_cast<std::size_t>(v)] = 1;
  }
  for (VertexId v : b) {
    HT_CHECK(0 <= v && v < n);
    HT_CHECK_MSG(mark[static_cast<std::size_t>(v)] == 0,
                 "A and B intersect at vertex " << v);
  }
}

/// The cached engine for (kind, uid), or a freshly built one parked in
/// `fresh` when reuse is off / uid is 0. The returned reference must not be
/// held across a thread-pool wait (see WorkArena).
template <typename BuildFn>
FlowNetwork& acquire_network(std::uint32_t kind, std::uint64_t uid,
                             std::optional<FlowNetwork>& fresh,
                             BuildFn&& build) {
  // Apply the run's memory budget before parking another engine: evict
  // least-recently-used cached engines until the cache fits.
  if (RunState* run = current_run_state()) {
    const std::size_t budget = run->context().memory_budget_bytes;
    if (budget != 0) ht::WorkArena::local().enforce_budget(budget);
  }
  if (flow_reuse_enabled() && uid != 0) {
    FlowNetwork& net = ht::WorkArena::local().acquire<FlowNetwork>(
        kind, uid, static_cast<BuildFn&&>(build));
    if (net.queries() > 0) PerfCounters::global().add_flow_reuse();
    return net;
  }
  fresh.emplace(build());
  return *fresh;
}

}  // namespace

EdgeCutResult min_edge_cut(const Graph& g, const std::vector<VertexId>& a,
                           const std::vector<VertexId>& b) {
  HT_CHECK(g.finalized());
  // Span args stay schedule-independent: cut value and augmenting-path
  // count are deterministic (reset() restores exact capacities), while
  // whether the network was reused is thread-affinity-dependent and is
  // reported through metrics only.
  ht::obs::TraceSpan span("flow.min_edge_cut");
  span.arg("a", a.size());
  span.arg("b", b.size());
  PerfCounters::global().add_max_flow_call();
  check_disjoint_nonempty(a, b, g.num_vertices());
  const NodeId n = g.num_vertices();
  std::optional<FlowNetwork> fresh;
  FlowNetwork& net =
      acquire_network(kEdgeCutNetwork, g.uid(), fresh,
                      [&g] { return FlowNetwork::edge_cut_network(g); });
  net.reset();
  for (VertexId v : a) net.attach_source(v);
  for (VertexId v : b) net.attach_sink(v);
  net.max_flow();

  EdgeCutResult out;
  out.complete = net.last_flow_complete();
  const std::vector<char>& reach = net.source_side();
  out.source_side.assign(static_cast<std::size_t>(n), false);
  for (NodeId v = 0; v < n; ++v)
    out.source_side[static_cast<std::size_t>(v)] =
        reach[static_cast<std::size_t>(v)] != 0;
  for (ht::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    if (out.source_side[static_cast<std::size_t>(edge.u)] !=
        out.source_side[static_cast<std::size_t>(edge.v)]) {
      out.cut_edges.push_back(e);
      out.value += edge.weight;
    }
  }
  span.arg("cut_value", out.value);
  span.arg("augmenting_paths", net.last_augmenting_paths());
  return out;
}

VertexCutResult min_vertex_cut(const Graph& g, const std::vector<VertexId>& a,
                               const std::vector<VertexId>& b) {
  HT_CHECK(g.finalized());
  ht::obs::TraceSpan span("flow.min_vertex_cut");
  span.arg("a", a.size());
  span.arg("b", b.size());
  PerfCounters::global().add_max_flow_call();
  check_disjoint_nonempty(a, b, g.num_vertices());
  const VertexId n = g.num_vertices();
  // Node splitting: v_in = 2v, v_out = 2v+1 (see vertex_cut_network).
  auto v_in = [](VertexId v) { return static_cast<NodeId>(2 * v); };
  auto v_out = [](VertexId v) { return static_cast<NodeId>(2 * v + 1); };
  std::optional<FlowNetwork> fresh;
  FlowNetwork& net =
      acquire_network(kVertexCutNetwork, g.uid(), fresh,
                      [&g] { return FlowNetwork::vertex_cut_network(g); });
  net.reset();
  for (VertexId v : a) net.attach_source(v);
  for (VertexId v : b) net.attach_sink(v);
  net.max_flow();

  VertexCutResult out;
  out.complete = net.last_flow_complete();
  const std::vector<char>& reach = net.source_side();
  for (VertexId v = 0; v < n; ++v) {
    if (reach[static_cast<std::size_t>(v_in(v))] &&
        !reach[static_cast<std::size_t>(v_out(v))]) {
      out.cut_vertices.push_back(v);
      out.value += g.vertex_weight(v);
    }
  }
  span.arg("cut_value", out.value);
  span.arg("augmenting_paths", net.last_augmenting_paths());
  HT_DCHECK(!out.complete || vertex_cut_separates(g, out.cut_vertices, a, b));
  return out;
}

HyperedgeCutResult min_hyperedge_cut(
    const Hypergraph& h, const std::vector<ht::hypergraph::VertexId>& a,
    const std::vector<ht::hypergraph::VertexId>& b) {
  HT_CHECK(h.finalized());
  ht::obs::TraceSpan span("flow.min_hyperedge_cut");
  span.arg("a", a.size());
  span.arg("b", b.size());
  PerfCounters::global().add_max_flow_call();
  check_disjoint_nonempty(a, b, h.num_vertices());
  const auto n = h.num_vertices();
  const auto m = h.num_edges();
  // Lawler expansion node ids (see hyperedge_cut_network).
  auto e_in = [n](ht::hypergraph::EdgeId e) {
    return static_cast<NodeId>(n + 2 * e);
  };
  auto e_out = [n](ht::hypergraph::EdgeId e) {
    return static_cast<NodeId>(n + 2 * e + 1);
  };
  std::optional<FlowNetwork> fresh;
  FlowNetwork& net =
      acquire_network(kHyperedgeCutNetwork, h.uid(), fresh,
                      [&h] { return FlowNetwork::hyperedge_cut_network(h); });
  net.reset();
  for (auto v : a) net.attach_source(v);
  for (auto v : b) net.attach_sink(v);
  net.max_flow();

  HyperedgeCutResult out;
  out.complete = net.last_flow_complete();
  const std::vector<char>& reach = net.source_side();
  for (ht::hypergraph::EdgeId e = 0; e < m; ++e) {
    if (reach[static_cast<std::size_t>(e_in(e))] &&
        !reach[static_cast<std::size_t>(e_out(e))]) {
      out.cut_edges.push_back(e);
      out.value += h.edge_weight(e);
    }
  }
  span.arg("cut_value", out.value);
  span.arg("augmenting_paths", net.last_augmenting_paths());
  HT_DCHECK(!out.complete || hyperedge_cut_separates(h, out.cut_edges, a, b));
  return out;
}

bool vertex_cut_separates(const Graph& g, const std::vector<VertexId>& cut,
                          const std::vector<VertexId>& a,
                          const std::vector<VertexId>& b) {
  HT_CHECK(g.finalized());
  std::vector<bool> removed(static_cast<std::size_t>(g.num_vertices()), false);
  for (VertexId v : cut) removed[static_cast<std::size_t>(v)] = true;
  auto [comp, count] = ht::graph::connected_components_excluding(g, removed);
  (void)count;
  std::vector<char> a_comps(static_cast<std::size_t>(
                                std::max<std::int32_t>(count, 1)),
                            0);
  for (VertexId v : a) {
    const auto c = comp[static_cast<std::size_t>(v)];
    if (c >= 0) a_comps[static_cast<std::size_t>(c)] = 1;
  }
  for (VertexId v : b) {
    const auto c = comp[static_cast<std::size_t>(v)];
    if (c >= 0 && a_comps[static_cast<std::size_t>(c)]) return false;
  }
  return true;
}

bool hyperedge_cut_separates(const Hypergraph& h,
                             const std::vector<ht::hypergraph::EdgeId>& cut,
                             const std::vector<ht::hypergraph::VertexId>& a,
                             const std::vector<ht::hypergraph::VertexId>& b) {
  HT_CHECK(h.finalized());
  std::vector<bool> edge_removed(static_cast<std::size_t>(h.num_edges()),
                                 false);
  for (auto e : cut) edge_removed[static_cast<std::size_t>(e)] = true;
  // BFS from A over surviving hyperedges.
  std::vector<bool> visited(static_cast<std::size_t>(h.num_vertices()), false);
  std::vector<bool> edge_done(static_cast<std::size_t>(h.num_edges()), false);
  std::vector<ht::hypergraph::VertexId> stack;
  for (auto v : a) {
    if (!visited[static_cast<std::size_t>(v)]) {
      visited[static_cast<std::size_t>(v)] = true;
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    for (auto e : h.incident_edges(v)) {
      if (edge_removed[static_cast<std::size_t>(e)] ||
          edge_done[static_cast<std::size_t>(e)])
        continue;
      edge_done[static_cast<std::size_t>(e)] = true;
      for (auto u : h.pins(e)) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          stack.push_back(u);
        }
      }
    }
  }
  for (auto v : b)
    if (visited[static_cast<std::size_t>(v)]) return false;
  return true;
}

}  // namespace ht::flow
