// FIFO push-relabel max-flow with the gap heuristic — an independent
// second max-flow implementation.
//
// Serves two purposes: (a) a cross-check oracle for Dinic in the property
// tests (two algorithms agreeing on thousands of random instances is the
// strongest correctness evidence flows can get without formal proof), and
// (b) a faster engine on the dense clique-expansion networks where Dinic's
// O(V^2 E) bound bites.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "util/check.hpp"

namespace ht::flow {

template <typename Cap>
class PushRelabel {
 public:
  using NodeId = std::int32_t;
  static constexpr Cap kInfinity = std::numeric_limits<Cap>::max() / 4;

  explicit PushRelabel(NodeId num_nodes) : first_out_(num_nodes, -1) {}

  NodeId num_nodes() const { return static_cast<NodeId>(first_out_.size()); }

  std::int32_t add_arc(NodeId u, NodeId v, Cap cap) {
    return add_pair(u, v, cap, Cap{0});
  }
  std::int32_t add_undirected(NodeId u, NodeId v, Cap cap) {
    return add_pair(u, v, cap, cap);
  }

  Cap max_flow(NodeId s, NodeId t) {
    HT_CHECK(s != t);
    source_ = s;
    sink_ = t;
    const auto n = static_cast<std::size_t>(num_nodes());
    height_.assign(n, 0);
    excess_.assign(n, Cap{0});
    height_[static_cast<std::size_t>(s)] = num_nodes();
    height_count_.assign(2 * n + 1, 0);
    height_count_[0] = static_cast<std::int32_t>(n - 1);
    height_count_[n] = 1;

    // Saturate source arcs.
    for (std::int32_t a = first_out_[static_cast<std::size_t>(s)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      push(a, arcs_[static_cast<std::size_t>(a)].cap);
    }
    std::queue<NodeId> active;
    for (NodeId v = 0; v < num_nodes(); ++v)
      if (v != s && v != t && positive(excess_[static_cast<std::size_t>(v)]))
        active.push(v);

    std::vector<std::int32_t> current(first_out_);
    while (!active.empty()) {
      const NodeId v = active.front();
      active.pop();
      if (v == s || v == t) continue;
      while (positive(excess_[static_cast<std::size_t>(v)])) {
        if (height_[static_cast<std::size_t>(v)] > 2 * num_nodes()) break;
        std::int32_t& a = current[static_cast<std::size_t>(v)];
        if (a == -1) {
          relabel(v);
          a = first_out_[static_cast<std::size_t>(v)];
          continue;
        }
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (positive(arc.cap) &&
            height_[static_cast<std::size_t>(v)] ==
                height_[static_cast<std::size_t>(arc.to)] + 1) {
          const NodeId to = arc.to;
          const bool was_inactive =
              !positive(excess_[static_cast<std::size_t>(to)]);
          push(a, std::min(excess_[static_cast<std::size_t>(v)], arc.cap));
          if (was_inactive && to != sink_ && to != source_) active.push(to);
        } else {
          a = arc.next;
        }
      }
    }
    return excess_[static_cast<std::size_t>(t)];
  }

  /// After max_flow: source side of the canonical minimum cut (vertices
  /// reachable from s in the residual network).
  std::vector<bool> min_cut_source_side() const {
    std::vector<bool> reachable(static_cast<std::size_t>(num_nodes()), false);
    std::vector<NodeId> stack{source_};
    reachable[static_cast<std::size_t>(source_)] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (std::int32_t a = first_out_[static_cast<std::size_t>(v)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (!positive(arc.cap) ||
            reachable[static_cast<std::size_t>(arc.to)])
          continue;
        reachable[static_cast<std::size_t>(arc.to)] = true;
        stack.push_back(arc.to);
      }
    }
    return reachable;
  }

 private:
  struct Arc {
    NodeId to;
    std::int32_t next;
    Cap cap;
  };

  static bool positive(Cap c) {
    if constexpr (std::numeric_limits<Cap>::is_integer) {
      return c > 0;
    } else {
      return c > Cap(1e-11);
    }
  }

  std::int32_t add_pair(NodeId u, NodeId v, Cap cap_fwd, Cap cap_bwd) {
    HT_CHECK(0 <= u && u < num_nodes());
    HT_CHECK(0 <= v && v < num_nodes());
    const auto a = static_cast<std::int32_t>(arcs_.size());
    arcs_.push_back(Arc{v, first_out_[static_cast<std::size_t>(u)], cap_fwd});
    first_out_[static_cast<std::size_t>(u)] = a;
    arcs_.push_back(Arc{u, first_out_[static_cast<std::size_t>(v)], cap_bwd});
    first_out_[static_cast<std::size_t>(v)] = a + 1;
    return a;
  }

  void push(std::int32_t a, Cap amount) {
    Arc& arc = arcs_[static_cast<std::size_t>(a)];
    const NodeId from = arcs_[static_cast<std::size_t>(a ^ 1)].to;
    arc.cap -= amount;
    arcs_[static_cast<std::size_t>(a ^ 1)].cap += amount;
    excess_[static_cast<std::size_t>(from)] -= amount;
    excess_[static_cast<std::size_t>(arc.to)] += amount;
  }

  void relabel(NodeId v) {
    const auto old_height = height_[static_cast<std::size_t>(v)];
    std::int64_t best = 2 * num_nodes();
    for (std::int32_t a = first_out_[static_cast<std::size_t>(v)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (positive(arc.cap))
        best = std::min<std::int64_t>(
            best, height_[static_cast<std::size_t>(arc.to)] + 1);
    }
    // Gap heuristic: if v was the last node at its height, every node
    // above that height (below n) is cut off from the sink — lift them.
    if (--height_count_[static_cast<std::size_t>(old_height)] == 0 &&
        old_height < num_nodes()) {
      for (NodeId u = 0; u < num_nodes(); ++u) {
        auto& hu = height_[static_cast<std::size_t>(u)];
        if (old_height < hu && hu < num_nodes()) {
          --height_count_[static_cast<std::size_t>(hu)];
          hu = num_nodes() + 1;
          ++height_count_[static_cast<std::size_t>(hu)];
        }
      }
    }
    height_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(best);
    ++height_count_[static_cast<std::size_t>(best)];
  }

  std::vector<std::int32_t> first_out_;
  std::vector<Arc> arcs_;
  std::vector<std::int32_t> height_;
  std::vector<Cap> excess_;
  std::vector<std::int32_t> height_count_;
  NodeId source_ = -1;
  NodeId sink_ = -1;
};

}  // namespace ht::flow
