// Reusable flow-network arena: build the arc structure once, then answer
// many max-flow queries by reset-and-reuse instead of reallocation.
//
// The cut-tree stack (Gomory–Hu, the Section 3.1 vertex cut tree, the
// min-ratio oracle) issues O(n) max-flow calls over near-identical
// networks. Rebuilding a Dinic instance per call makes allocation the
// dominant serial cost inside parallel wavefronts; KaHyPar and Mt-KaHyPar
// attribute large constant-factor wins to materializing the flow structure
// once and resetting between calls, and this class ports that pattern.
//
// A FlowNetwork materializes one of three expansions:
//   * edge_cut_network      — the graph itself (undirected arcs)
//   * vertex_cut_network    — the vertex-split graph (v_in -> v_out)
//   * hyperedge_cut_network — the Lawler expansion of a hypergraph
// plus two super terminals s/t with one *preallocated* zero-capacity
// terminal arc pair per vertex. A query is then:
//
//   net.reset();                        // O(arcs) capacity restore, no alloc
//   net.attach_source(v); ...           // flip terminal arcs to infinity
//   net.attach_sink(u);  ...
//   net.max_flow();                     // Dinic (or push-relabel) in place
//   const auto& side = net.source_side();
//
// Because reset() restores the exact pre-query capacities, a reused
// network answers every query bit-identically to a freshly built one.
//
// Engines are cached per thread in WorkArena keyed by the structure uid of
// the underlying (hyper)graph; FlowReuseScope(false) disables the cache so
// tests and benches can compare the fresh-build path.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/check.hpp"

namespace ht::flow {

using NodeId = std::int32_t;

/// The shared "practically infinite" capacity used for terminal and
/// expansion arcs (single definition; Dinic/PushRelabel's kInfinity must
/// stay equal to it — asserted in flow_network.cpp).
inline constexpr double kInfiniteCapacity =
    std::numeric_limits<double>::max() / 4;

/// Cache-key namespace for WorkArena::acquire: which expansion a cached
/// FlowNetwork materializes (one structure uid can back several kinds).
enum FlowNetworkKind : std::uint32_t {
  kEdgeCutNetwork = 1,
  kVertexCutNetwork = 2,
  kHyperedgeCutNetwork = 3,
};

/// True when min_*_cut may serve queries from thread-local cached engines
/// (the default). Toggled by FlowReuseScope.
bool flow_reuse_enabled();

/// RAII switch for the engine cache; FlowReuseScope off(false) forces the
/// pre-refactor build-per-call behaviour (used by equivalence tests and
/// the fresh-vs-reuse bench sections).
class FlowReuseScope {
 public:
  explicit FlowReuseScope(bool enable);
  ~FlowReuseScope();
  FlowReuseScope(const FlowReuseScope&) = delete;
  FlowReuseScope& operator=(const FlowReuseScope&) = delete;

 private:
  bool previous_;
};

class FlowNetwork {
 public:
  FlowNetwork() = default;

  /// Arena for min_edge_cut on g: node per vertex, undirected arc per
  /// edge, terminal slots at every vertex.
  static FlowNetwork edge_cut_network(const ht::graph::Graph& g);
  /// Arena for min_vertex_cut on g: node splitting v_in = 2v, v_out =
  /// 2v+1, capacity w(v) on the split arc; source attaches at v_in,
  /// sink at v_out (the cut may pick terminal vertices themselves).
  static FlowNetwork vertex_cut_network(const ht::graph::Graph& g);
  /// Arena for min_hyperedge_cut on h: Lawler expansion with hyperedge
  /// nodes n+2e / n+2e+1 and infinite membership arcs.
  static FlowNetwork hyperedge_cut_network(const ht::hypergraph::Hypergraph& h);

  NodeId num_nodes() const { return static_cast<NodeId>(first_out_.size()); }
  NodeId source() const { return source_; }
  NodeId sink() const { return sink_; }
  std::int64_t num_arcs() const {
    return static_cast<std::int64_t>(arc_to_.size());
  }
  /// Number of reset() calls served so far (0 = never queried).
  std::uint64_t queries() const { return queries_; }
  /// Augmenting paths pushed by the most recent max_flow() (Dinic) call.
  /// Deterministic per query — reset() restores exact capacities, so the
  /// same (network, terminals) always walks the same paths. 0 after
  /// max_flow_push_relabel(), which does not augment path-by-path.
  std::uint64_t last_augmenting_paths() const {
    return last_augmenting_paths_;
  }
  /// False when the most recent solve was interrupted by the ambient
  /// RunContext (deadline/cancel polled every flow_check_rounds augmenting
  /// rounds). An interrupted solve returns a partial flow value whose
  /// residual reachability need not be a cut; callers must not treat it as
  /// a min cut. The arena itself stays healthy — the next reset() restores
  /// exact capacities as usual.
  bool last_flow_complete() const { return last_flow_complete_; }

  /// Restores every capacity to its build-time value (terminal arcs back
  /// to zero) in O(arcs) with no allocation. Must precede attach_*.
  void reset();
  /// Activates the preallocated s -> slot arc at infinite capacity.
  /// `slot` is the original vertex id the builder registered.
  void attach_source(std::int32_t slot);
  /// Activates the preallocated slot -> t arc at infinite capacity.
  void attach_sink(std::int32_t slot);

  /// Dinic max flow s -> t over the current capacities, in place.
  double max_flow();
  /// FIFO push-relabel (gap heuristic) over the same arena — the second,
  /// independent solver; agrees with max_flow() up to float slack.
  double max_flow_push_relabel();

  /// After a solve: vertices reachable from s in the residual network (the
  /// canonical inclusion-minimal min cut's source side). The reference is
  /// into a scratch buffer invalidated by the next query on this network.
  const std::vector<char>& source_side();

  /// Approximate heap footprint, for the arena peak-allocation counter.
  std::size_t memory_bytes() const;

 private:
  void init(NodeId inner_nodes, std::int32_t terminal_slots);
  std::int32_t add_pair(NodeId u, NodeId v, double cap_fwd, double cap_bwd);
  std::int32_t add_arc(NodeId u, NodeId v, double cap) {
    return add_pair(u, v, cap, 0.0);
  }
  std::int32_t add_undirected(NodeId u, NodeId v, double cap) {
    return add_pair(u, v, cap, cap);
  }
  void add_terminal_pair(std::int32_t slot, NodeId source_entry,
                         NodeId sink_exit);
  void freeze();

  static bool positive(double c) { return c > 1e-11; }
  bool bfs();
  double dfs(NodeId v, double limit);

  // Static structure (immutable after freeze()).
  std::vector<std::int32_t> first_out_;
  std::vector<NodeId> arc_to_;
  std::vector<std::int32_t> arc_next_;
  std::vector<double> base_cap_;
  std::vector<std::int32_t> source_arc_of_;  // per terminal slot
  std::vector<std::int32_t> sink_arc_of_;
  NodeId source_ = -1;
  NodeId sink_ = -1;

  // Per-query state.
  std::vector<double> cap_;
  std::uint64_t queries_ = 0;
  std::uint64_t last_augmenting_paths_ = 0;
  bool last_flow_complete_ = true;

  // Solver scratch, reused across queries.
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> iter_;
  std::vector<char> reach_;
  std::vector<std::int32_t> height_;
  std::vector<double> excess_;
  std::vector<std::int32_t> height_count_;
  std::vector<std::int32_t> current_;
};

}  // namespace ht::flow
