#include "flow/hypergraph_gomory_hu.hpp"

#include <algorithm>

#include "flow/flow_network.hpp"
#include "flow/min_cut.hpp"
#include "obs/trace.hpp"
#include "util/perf_counters.hpp"
#include "util/run_context.hpp"
#include "util/thread_pool.hpp"

namespace ht::flow {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

double HypergraphGomoryHuTree::min_cut(VertexId s, VertexId t) const {
  HT_CHECK(s != t);
  auto path_to_root = [this](VertexId v) {
    std::vector<VertexId> path{v};
    while (parent[static_cast<std::size_t>(path.back())] != -1)
      path.push_back(parent[static_cast<std::size_t>(path.back())]);
    return path;
  };
  std::vector<VertexId> ps = path_to_root(s);
  std::vector<VertexId> pt = path_to_root(t);
  std::size_t is = ps.size(), it = pt.size();
  while (is > 0 && it > 0 && ps[is - 1] == pt[it - 1]) {
    --is;
    --it;
  }
  double best = kInfiniteCapacity;
  for (std::size_t i = 0; i < is; ++i)
    best = std::min(best, parent_cut[static_cast<std::size_t>(ps[i])]);
  for (std::size_t i = 0; i < it; ++i)
    best = std::min(best, parent_cut[static_cast<std::size_t>(pt[i])]);
  return best;
}

HypergraphGomoryHuRunResult hypergraph_gomory_hu_run(const Hypergraph& h) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(n >= 2);
  // One span per builder run; no per-batch spans (batch sizes follow the
  // pool size — see gomory_hu.cpp).
  ht::obs::TraceSpan trace("gomory_hu.hypergraph");
  trace.arg("n", n);
  trace.arg("m", h.num_edges());
  ht::PhaseTimer phase("gomory_hu.hypergraph");
  RunState* run = current_run_state();
  HypergraphGomoryHuRunResult out;
  HypergraphGomoryHuTree& tree = out.tree;
  tree.root = 0;
  tree.parent.assign(static_cast<std::size_t>(n), 0);
  tree.parent[0] = -1;
  tree.parent_cut.assign(static_cast<std::size_t>(n), 0.0);

  // Batched speculation over the pool (see gomory_hu.cpp): flows for a
  // parent snapshot run concurrently; stale ones are recomputed serially,
  // so the applied sequence is exactly the serial Gusfield run.
  const auto batch_size = static_cast<VertexId>(
      std::max<std::size_t>(1, ThreadPool::global().size()));
  VertexId batch_lo = 1;
  std::vector<VertexId> snapshot;
  std::vector<HyperedgeCutResult> speculative;
  for (VertexId i = 1; i < n; ++i) {
    // Anytime stop at the serial apply boundary (see gomory_hu.cpp).
    if (run != nullptr && !run->check().ok()) break;
    if (i >= batch_lo + batch_size || i == 1) {
      batch_lo = i;
      const VertexId batch_hi = std::min<VertexId>(n, batch_lo + batch_size);
      const auto count = static_cast<std::size_t>(batch_hi - batch_lo);
      snapshot.resize(count);
      for (std::size_t t = 0; t < count; ++t)
        snapshot[t] = tree.parent[static_cast<std::size_t>(batch_lo) + t];
      speculative.assign(count, HyperedgeCutResult{});
      if (count > 1) {
        parallel_for(count, [&](std::size_t t) {
          speculative[t] = min_hyperedge_cut(
              h, {batch_lo + static_cast<VertexId>(t)}, {snapshot[t]});
        });
      }
    }
    const VertexId j = tree.parent[static_cast<std::size_t>(i)];
    const std::size_t t = static_cast<std::size_t>(i - batch_lo);
    const HyperedgeCutResult cut =
        (snapshot.size() > 1 && snapshot[t] == j)
            ? std::move(speculative[t])
            : min_hyperedge_cut(h, {i}, {j});
    // An interrupted flow's witness need not separate i from j — never
    // apply it; the HT_CHECK below relies on completeness.
    if (!cut.complete) break;
    tree.parent_cut[static_cast<std::size_t>(i)] = cut.value;
    // Source side of the canonical minimum cut: vertices still reachable
    // from i after removing the cut hyperedges.
    std::vector<bool> removed(static_cast<std::size_t>(h.num_edges()), false);
    for (auto e : cut.cut_edges) removed[static_cast<std::size_t>(e)] = true;
    std::vector<bool> reachable(static_cast<std::size_t>(n), false);
    std::vector<VertexId> stack{i};
    reachable[static_cast<std::size_t>(i)] = true;
    std::vector<bool> edge_done(static_cast<std::size_t>(h.num_edges()),
                                false);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (auto e : h.incident_edges(v)) {
        if (removed[static_cast<std::size_t>(e)] ||
            edge_done[static_cast<std::size_t>(e)])
          continue;
        edge_done[static_cast<std::size_t>(e)] = true;
        for (auto u : h.pins(e)) {
          if (!reachable[static_cast<std::size_t>(u)]) {
            reachable[static_cast<std::size_t>(u)] = true;
            stack.push_back(u);
          }
        }
      }
    }
    HT_CHECK(!reachable[static_cast<std::size_t>(j)]);
    for (VertexId k = i + 1; k < n; ++k) {
      if (tree.parent[static_cast<std::size_t>(k)] == j &&
          reachable[static_cast<std::size_t>(k)]) {
        tree.parent[static_cast<std::size_t>(k)] = i;
      }
    }
    const VertexId pj = tree.parent[static_cast<std::size_t>(j)];
    if (pj != -1 && reachable[static_cast<std::size_t>(pj)]) {
      tree.parent[static_cast<std::size_t>(i)] = pj;
      tree.parent_cut[static_cast<std::size_t>(i)] =
          tree.parent_cut[static_cast<std::size_t>(j)];
      tree.parent[static_cast<std::size_t>(j)] = i;
      tree.parent_cut[static_cast<std::size_t>(j)] = cut.value;
    }
    ++out.applied;
    if (run != nullptr) run->note_piece();
  }
  out.status = out.applied + 1 < n && run != nullptr ? run->status()
                                                     : Status::Ok();
  trace.arg("applied", out.applied);
  return out;
}

HypergraphGomoryHuTree hypergraph_gomory_hu(const Hypergraph& h) {
  return hypergraph_gomory_hu_run(h).tree;
}

}  // namespace ht::flow
