#include "flow/gomory_hu.hpp"

#include <algorithm>

#include "flow/flow_network.hpp"
#include "flow/min_cut.hpp"
#include "obs/trace.hpp"
#include "util/perf_counters.hpp"
#include "util/run_context.hpp"
#include "util/thread_pool.hpp"

namespace ht::flow {

using ht::graph::Graph;
using ht::graph::VertexId;

double GomoryHuTree::min_cut(VertexId s, VertexId t) const {
  HT_CHECK(s != t);
  // Walk both vertices to the root recording depth-annotated paths; the
  // answer is the minimum parent_cut on the s..t tree path.
  auto path_to_root = [this](VertexId v) {
    std::vector<VertexId> path{v};
    while (parent[static_cast<std::size_t>(path.back())] != -1)
      path.push_back(parent[static_cast<std::size_t>(path.back())]);
    return path;
  };
  std::vector<VertexId> ps = path_to_root(s);
  std::vector<VertexId> pt = path_to_root(t);
  // Strip the common suffix (shared ancestors) but keep the LCA junction.
  std::size_t is = ps.size(), it = pt.size();
  while (is > 0 && it > 0 && ps[is - 1] == pt[it - 1]) {
    --is;
    --it;
  }
  double best = kInfiniteCapacity;
  for (std::size_t i = 0; i < is; ++i)
    best = std::min(best, parent_cut[static_cast<std::size_t>(ps[i])]);
  for (std::size_t i = 0; i < it; ++i)
    best = std::min(best, parent_cut[static_cast<std::size_t>(pt[i])]);
  return best;
}

Graph GomoryHuTree::as_graph() const {
  Graph g(static_cast<VertexId>(parent.size()));
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] != -1)
      g.add_edge(static_cast<VertexId>(v), parent[v], parent_cut[v]);
  }
  g.finalize();
  return g;
}

GomoryHuRunResult gomory_hu_run(const Graph& g) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(n >= 2);
  // One span per builder run. No per-batch spans: batch sizes follow the
  // pool size, so they would break thread-count-invariant traces; the
  // nested flow.min_edge_cut spans carry the per-flow detail.
  ht::obs::TraceSpan trace("gomory_hu");
  trace.arg("n", n);
  ht::PhaseTimer phase("gomory_hu.graph");
  RunState* run = current_run_state();
  GomoryHuRunResult out;
  GomoryHuTree& tree = out.tree;
  tree.root = 0;
  tree.parent.assign(static_cast<std::size_t>(n), 0);
  tree.parent[0] = -1;
  tree.parent_cut.assign(static_cast<std::size_t>(n), 0.0);

  // Batched speculation: the (i, parent[i]) max-flow subproblems of a
  // batch are independent given a parent snapshot, so they run over the
  // pool; a cut is applied only when i's parent is unchanged at apply
  // time, otherwise it is recomputed against the live parent. The applied
  // sequence is therefore exactly the serial Gusfield run — identical for
  // every thread count and batch size.
  const auto batch_size = static_cast<VertexId>(
      std::max<std::size_t>(1, ThreadPool::global().size()));
  bool interrupted = false;
  for (VertexId lo = 1; lo < n && !interrupted; lo += batch_size) {
    const VertexId hi = std::min<VertexId>(n, lo + batch_size);
    const auto count = static_cast<std::size_t>(hi - lo);
    std::vector<VertexId> snapshot(count);
    for (std::size_t t = 0; t < count; ++t)
      snapshot[t] =
          tree.parent[static_cast<std::size_t>(lo) + t];
    std::vector<EdgeCutResult> speculative(count);
    if (count > 1) {
      parallel_for(count, [&](std::size_t t) {
        speculative[t] = min_edge_cut(
            g, {lo + static_cast<VertexId>(t)}, {snapshot[t]});
      });
    }
    for (VertexId i = lo; i < hi; ++i) {
      // Anytime stop, at the serial apply boundary only: vertices before i
      // keep their exact cuts, i and beyond stay provisional. An
      // interrupted (incomplete) flow is never applied — its witness need
      // not separate.
      if (run != nullptr && !run->check().ok()) {
        interrupted = true;
        break;
      }
      const VertexId j = tree.parent[static_cast<std::size_t>(i)];
      const std::size_t t = static_cast<std::size_t>(i - lo);
      const EdgeCutResult cut =
          (count > 1 && snapshot[t] == j)
              ? std::move(speculative[t])
              : min_edge_cut(g, {i}, {j});
      if (!cut.complete) {
        interrupted = true;
        break;
      }
      tree.parent_cut[static_cast<std::size_t>(i)] = cut.value;
      // Gusfield re-hang: every later vertex currently hanging off j that
      // fell on i's side of this cut is re-parented to i.
      for (VertexId k = i + 1; k < n; ++k) {
        if (tree.parent[static_cast<std::size_t>(k)] == j &&
            cut.source_side[static_cast<std::size_t>(k)]) {
          tree.parent[static_cast<std::size_t>(k)] = i;
        }
      }
      // Classic Gusfield fix-up: if j's parent is on i's side, splice i
      // between j and its parent.
      const VertexId pj = tree.parent[static_cast<std::size_t>(j)];
      if (pj != -1 && cut.source_side[static_cast<std::size_t>(pj)]) {
        tree.parent[static_cast<std::size_t>(i)] = pj;
        tree.parent_cut[static_cast<std::size_t>(i)] =
            tree.parent_cut[static_cast<std::size_t>(j)];
        tree.parent[static_cast<std::size_t>(j)] = i;
        tree.parent_cut[static_cast<std::size_t>(j)] = cut.value;
      }
      ++out.applied;
      if (run != nullptr) run->note_piece();
    }
  }
  out.status = interrupted && run != nullptr ? run->status() : Status::Ok();
  trace.arg("applied", out.applied);
  return out;
}

GomoryHuTree gomory_hu(const Graph& g) { return gomory_hu_run(g).tree; }

}  // namespace ht::flow
