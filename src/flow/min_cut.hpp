// Exact minimum-cut primitives built on Dinic:
//
//  * delta_G(A,B)  — minimum-weight edge cut separating A from B in a graph,
//  * gamma_G(A,B)  — minimum-weight vertex cut (node-splitting reduction);
//                    the cut may use vertices of A and B, as in the paper,
//  * delta_H(A,B)  — minimum-weight hyperedge cut (Lawler expansion).
//
// Each returns the optimum value together with a witness cut whose value is
// re-evaluated combinatorially — the reported number is the witness's exact
// cost, not the flow accumulator.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace ht::flow {

struct EdgeCutResult {
  double value = 0.0;
  std::vector<ht::graph::EdgeId> cut_edges;
  std::vector<bool> source_side;  // indicator over vertices; A-side
  /// False when the ambient RunContext interrupted the max-flow solve: the
  /// witness then need not separate A from B and value is not a min cut.
  /// Anytime callers must check this before trusting the cut.
  bool complete = true;
};

/// Minimum edge cut separating disjoint non-empty A and B.
EdgeCutResult min_edge_cut(const ht::graph::Graph& g,
                           const std::vector<ht::graph::VertexId>& a,
                           const std::vector<ht::graph::VertexId>& b);

struct VertexCutResult {
  double value = 0.0;
  std::vector<ht::graph::VertexId> cut_vertices;
  /// See EdgeCutResult::complete.
  bool complete = true;
};

/// Minimum-weight vertex cut gamma_G(A,B): a vertex set X (possibly
/// intersecting A or B) whose removal disconnects A \ X from B \ X.
/// A and B must be disjoint and non-empty.
VertexCutResult min_vertex_cut(const ht::graph::Graph& g,
                               const std::vector<ht::graph::VertexId>& a,
                               const std::vector<ht::graph::VertexId>& b);

struct HyperedgeCutResult {
  double value = 0.0;
  std::vector<ht::hypergraph::EdgeId> cut_edges;
  /// See EdgeCutResult::complete.
  bool complete = true;
};

/// Minimum-weight hyperedge cut delta_H(A,B) separating A from B.
HyperedgeCutResult min_hyperedge_cut(
    const ht::hypergraph::Hypergraph& h,
    const std::vector<ht::hypergraph::VertexId>& a,
    const std::vector<ht::hypergraph::VertexId>& b);

/// True if removing `cut` (vertex set) disconnects every a in A\cut from
/// every b in B\cut — the correctness predicate for vertex cuts, used by
/// tests and by the witness re-evaluation.
bool vertex_cut_separates(const ht::graph::Graph& g,
                          const std::vector<ht::graph::VertexId>& cut,
                          const std::vector<ht::graph::VertexId>& a,
                          const std::vector<ht::graph::VertexId>& b);

/// True if removing hyperedges `cut` disconnects A from B in H.
bool hyperedge_cut_separates(const ht::hypergraph::Hypergraph& h,
                             const std::vector<ht::hypergraph::EdgeId>& cut,
                             const std::vector<ht::hypergraph::VertexId>& a,
                             const std::vector<ht::hypergraph::VertexId>& b);

}  // namespace ht::flow
