// Gomory–Hu trees for hypergraph s-t cuts.
//
// The hypergraph cut function is symmetric and submodular, so a Gomory–Hu
// tree exists and Gusfield's algorithm applies with the Lawler-expansion
// min-cut as the oracle: the tree stores, for every PAIR (s, t), the exact
// minimum hyperedge cut value.
//
// This sharpens the paper's separation story (bench_separation): for
// SINGLETON pairs hypergraphs behave like graphs — an exact tree exists —
// but Theorem 6 shows that the same tree (any tree!) must fail for SET
// cuts delta_H(A, B) by a factor Omega(n). The failure is intrinsically a
// set phenomenon.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/status.hpp"

namespace ht::flow {

struct HypergraphGomoryHuTree {
  std::vector<ht::hypergraph::VertexId> parent;  // -1 at the root
  std::vector<double> parent_cut;
  ht::hypergraph::VertexId root = 0;

  /// Exact min s-t hyperedge cut value read off the tree.
  double min_cut(ht::hypergraph::VertexId s,
                 ht::hypergraph::VertexId t) const;
};

/// hypergraph_gomory_hu with anytime semantics (see GomoryHuRunResult).
struct HypergraphGomoryHuRunResult {
  HypergraphGomoryHuTree tree;
  Status status;
  /// Vertices with exact parent cuts; beyond this the provisional
  /// parent_cut == 0 is a pessimistic lower bound.
  ht::hypergraph::VertexId applied = 0;
};

/// Builds the tree with n-1 hypergraph min-cut computations, stopping
/// early at the serial apply boundary under the ambient RunContext.
/// Requires a finalized connected hypergraph with n >= 2.
HypergraphGomoryHuRunResult hypergraph_gomory_hu_run(
    const ht::hypergraph::Hypergraph& h);

/// Run-to-completion wrapper; superseded by ht::Solver::gomory_hu.
HT_LEGACY_API HypergraphGomoryHuTree hypergraph_gomory_hu(
    const ht::hypergraph::Hypergraph& h);

}  // namespace ht::flow
