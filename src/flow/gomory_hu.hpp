// Gomory–Hu cut tree (Gusfield's algorithm).
//
// For an ordinary graph the Gomory–Hu tree is an *exact* edge cut tree: for
// every pair (s,t) the minimum s-t cut equals the lightest edge on the tree
// path. The paper's Section 3.2 contrasts this graph fact against
// hypergraphs, where Theorem 6 rules out any edge cut tree of quality
// o(n) — bench_separation measures exactly this contrast.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/status.hpp"

namespace ht::flow {

struct GomoryHuTree {
  // parent[v] for v != root (parent[root] == -1), with cut value
  // parent_cut[v] = mincut(v, parent[v]).
  std::vector<ht::graph::VertexId> parent;
  std::vector<double> parent_cut;
  ht::graph::VertexId root = 0;

  /// Value of the minimum s-t cut read off the tree (min edge on the path).
  double min_cut(ht::graph::VertexId s, ht::graph::VertexId t) const;

  /// The tree as a Graph whose edge weights are the cut values.
  ht::graph::Graph as_graph() const;
};

/// gomory_hu with anytime semantics under the ambient RunContext.
struct GomoryHuRunResult {
  GomoryHuTree tree;
  /// Ok when all n-1 cuts were applied; otherwise the run's stop status.
  Status status;
  /// Number of non-root vertices whose parent cut is exact. Vertices
  /// beyond the stop point keep their provisional parent with
  /// parent_cut == 0 — a (pessimistic) lower bound, so tree.min_cut()
  /// never over-reports on a partial tree.
  ht::graph::VertexId applied = 0;
};

/// Builds the Gomory–Hu tree with n-1 max-flow computations (Gusfield's
/// variant, no contractions), stopping early at the Gusfield apply
/// boundary when the ambient RunContext cancels, expires, or exhausts its
/// piece budget. The apply loop is serial, so a piece-budget stop lands on
/// the same vertex for every thread count. Requires a finalized connected
/// graph with n >= 2. Edge weights are used; vertex weights are ignored.
GomoryHuRunResult gomory_hu_run(const ht::graph::Graph& g);

/// Run-to-completion wrapper; superseded by ht::Solver::gomory_hu.
HT_LEGACY_API GomoryHuTree gomory_hu(const ht::graph::Graph& g);

}  // namespace ht::flow
