#include "obs/trace.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

namespace ht::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
thread_local SpanId tls_current_span = 0;
}  // namespace detail

namespace {

std::atomic<SpanId> g_next_span_id{1};

void json_escape(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void append_args(std::ostringstream& os, const TraceEvent& ev) {
  os << "\"span_id\":" << ev.id << ",\"parent_id\":" << ev.parent;
  for (const TraceArg& a : ev.args) {
    os << ",\"";
    json_escape(os, a.key);
    os << "\":";
    switch (a.kind) {
      case TraceArg::Kind::kInt:
        os << a.int_value;
        break;
      case TraceArg::Kind::kDouble:
        os << std::setprecision(17) << a.double_value;
        break;
      case TraceArg::Kind::kString:
        os << "\"";
        json_escape(os, a.string_value.c_str());
        os << "\"";
        break;
    }
  }
}

}  // namespace

void set_tracing_enabled(bool enabled) {
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void TraceSpan::open(const char* name) {
  name_ = name;
  parent_ = detail::tls_current_span;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  detail::tls_current_span = id_;
  start_us_ = Tracer::global().now_us();
}

void TraceSpan::close() {
  TraceEvent ev;
  ev.name = name_;
  ev.id = id_;
  ev.parent = parent_;
  ev.start_us = start_us_;
  ev.dur_us = Tracer::global().now_us() - start_us_;
  ev.args = std::move(args_);
  // Restore even if tracing was flipped off mid-span; the nesting
  // invariant (spans close LIFO per thread) makes this exact.
  detail::tls_current_span = parent_;
  Tracer::global().record(std::move(ev));
}

void TraceSpan::push_int(const char* key, std::int64_t value) {
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kInt;
  a.int_value = value;
  args_.push_back(std::move(a));
}

void TraceSpan::arg(const char* key, double value) {
  if (id_ == 0) return;
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kDouble;
  a.double_value = value;
  args_.push_back(std::move(a));
}

void TraceSpan::arg(const char* key, const char* value) {
  if (id_ == 0) return;
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kString;
  a.string_value = value;
  args_.push_back(std::move(a));
}

void TraceSpan::arg(const char* key, const std::string& value) {
  if (id_ == 0) return;
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kString;
  a.string_value = value;
  args_.push_back(std::move(a));
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed: threads may
  return *tracer;                        // record during static teardown
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Safe to cache per thread: the singleton tracer never dies and never
  // destroys buffers (clear() only empties the event vectors).
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::scoped_lock lock(buffers_mutex_);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = static_cast<std::uint32_t>(buffers_.size());
    buffer = owned.get();
    buffers_.push_back(std::move(owned));
  }
  return *buffer;
}

void Tracer::record(TraceEvent&& event) {
  ThreadBuffer& buf = local_buffer();
  event.tid = buf.tid;
  buf.events.push_back(std::move(event));
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

std::vector<TraceEvent> Tracer::collect() const {
  std::scoped_lock lock(buffers_mutex_);
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers_)
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  return out;
}

std::size_t Tracer::event_count() const {
  std::scoped_lock lock(buffers_mutex_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) n += buf->events.size();
  return n;
}

void Tracer::clear() {
  std::scoped_lock lock(buffers_mutex_);
  for (const auto& buf : buffers_) buf->events.clear();
}

std::string Tracer::chrome_trace_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  std::scoped_lock lock(buffers_mutex_);
  bool first = true;
  for (const auto& buf : buffers_) {
    for (const TraceEvent& ev : buf->events) {
      os << (first ? "" : ",\n");
      first = false;
      os << "{\"name\":\"";
      json_escape(os, ev.name);
      os << "\",\"cat\":\"ht\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
         << ",\"ts\":" << std::setprecision(17) << ev.start_us
         << ",\"dur\":" << std::setprecision(17) << ev.dur_us << ",\"args\":{";
      append_args(os, ev);
      os << "}}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ht::obs
