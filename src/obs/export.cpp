#include "obs/export.hpp"

#include <cctype>
#include <cstdio>

namespace ht::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string prometheus_name(const std::string& name) {
  std::string out = "ht_";
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0])))
    out += '_';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string prometheus_text(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n" + p + " ";
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n" + p + " ";
    append_i64(out, value);
    out += '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out += p + "_bucket{le=\"";
      append_u64(out, Histogram::bucket_upper_bound(b));
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += p + "_bucket{le=\"+Inf\"} ";
    append_u64(out, cumulative);
    out += '\n';
    out += p + "_sum ";
    append_u64(out, h.sum);
    out += '\n';
    out += p + "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

std::string registry_json(const RegistrySnapshot& snapshot) {
  std::string out = "{\"version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":";
    append_u64(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":";
    append_i64(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_u64(out, h.sum);
    out += ",\"max\":";
    append_u64(out, h.max);
    out += ",\"p50\":";
    append_double(out, h.p50());
    out += ",\"p90\":";
    append_double(out, h.p90());
    out += ",\"p99\":";
    append_double(out, h.p99());
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '[';
      append_u64(out, Histogram::bucket_upper_bound(b));
      out += ',';
      append_u64(out, h.buckets[b]);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace ht::obs
