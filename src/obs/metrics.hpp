// Named metrics registry: counters, gauges and log2-bucket histograms.
//
// Instruments register a metric once (by name, at namespace scope or via a
// function-local static) and then update it through a plain reference —
// updates are relaxed atomics, never a lock or a map lookup on the hot
// path. The registry owns the metric objects for the process lifetime, so
// references stay valid forever; snapshot_json() renders every registered
// metric sorted by name, which benches embed in their BENCH_*.json output.
//
// Naming scheme: dot-separated "<subsystem>.<quantity>", e.g.
// "flow.builds", "pool.max_queue_depth", "arena.peak_bytes". PerfCounters
// is a facade over this registry (see util/perf_counters.hpp); new
// instrumentation should register metrics directly.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/atomic_max.hpp"

namespace ht::obs {

/// Point-in-time copy of one histogram, with quantile estimation. count,
/// sum and max are exact; quantile(q) assumes values spread uniformly
/// within their log2 bucket (lower bound of the bucket at the bottom edge,
/// upper bound at the top), so the estimate is exact at bucket boundaries
/// and never leaves the containing bucket. The top occupied bucket is
/// clamped to the exact recorded max.
struct HistogramSnapshot {
  static constexpr int kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[kBuckets] = {};

  /// Value at cumulative fraction q in [0, 1]; 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
};

/// Point-in-time copy of the whole registry, sorted by name (std::map).
/// The exporter (obs/export.hpp) renders this as Prometheus text or
/// versioned JSON.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value; supports set/add and monotone-max updates.
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void update_max(std::int64_t value) { atomic_fetch_max(value_, value); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucket histogram over unsigned values: bucket b counts values with
/// bit_width b, i.e. bucket 0 is exactly {0} and bucket b >= 1 covers
/// [2^(b-1), 2^b - 1]. Also tracks count, sum and max exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width of a uint64 is 0..64

  void record(std::uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    atomic_fetch_max(max_, value);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket b (0 for b == 0).
  static std::uint64_t bucket_upper_bound(int b) {
    if (b <= 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }
  /// Copies the live buckets out. Concurrent record() calls may land
  /// between bucket reads, so count can lag the bucket total by the
  /// records in flight — each bucket value is itself consistent.
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Process-wide name -> metric table. Registration (counter()/gauge()/
/// histogram()) takes a lock; the returned reference is update-path
/// lock-free and valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Copies every registered metric out, sorted by name.
  RegistrySnapshot snapshot() const;

  /// One-line JSON object {"version":1,"counters":{...},"gauges":{...},
  /// "histograms":{...}} with names sorted and escaped; histogram buckets
  /// render as [upper_bound, count] pairs for the non-empty buckets only
  /// plus p50/p90/p99 quantile estimates. Equals
  /// export::registry_json(snapshot()); byte-comparable between runs with
  /// identical metric values.
  std::string snapshot_json() const;

  /// Zeroes every registered metric (registration survives). Benches call
  /// this between measured sections via PerfCounters::reset().
  void reset_all();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ht::obs
