#include "obs/metrics.hpp"

#include <sstream>

namespace ht::obs {

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::snapshot_json() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << g->value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << name << "\":{\"count\":"
       << h->count() << ",\"sum\":" << h->sum() << ",\"max\":" << h->max()
       << ",\"buckets\":[";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      os << (first_bucket ? "" : ",") << "["
         << Histogram::bucket_upper_bound(b) << "," << n << "]";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::reset_all() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace ht::obs
