#include "obs/metrics.hpp"

#include "obs/export.hpp"

namespace ht::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q >= 1.0) return static_cast<double>(max);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets[b];
    if (n == 0) continue;
    const double cum_end = static_cast<double>(cumulative + n);
    if (target <= cum_end) {
      if (b == 0) return 0.0;  // bucket 0 holds only the value 0
      const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
      double hi = static_cast<double>(Histogram::bucket_upper_bound(b));
      // The bucket holding the largest sample can't extend past it.
      if (static_cast<double>(max) < hi && static_cast<double>(max) >= lo)
        hi = static_cast<double>(max);
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(n);
      return lo + frac * (hi - lo);
    }
    cumulative += n;
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count();
  s.sum = sum();
  s.max = max();
  for (int b = 0; b < kBuckets; ++b) s.buckets[b] = bucket(b);
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mutex_);
  RegistrySnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

std::string MetricsRegistry::snapshot_json() const {
  return registry_json(snapshot());
}

void MetricsRegistry::reset_all() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace ht::obs
