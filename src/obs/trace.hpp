// Structured tracing: RAII spans over per-thread append-only buffers.
//
// A TraceSpan records one timed region with typed key/value args. The span
// *tree* follows the logical recursion tree, not the thread schedule:
// every thread carries a current-span id in TLS, ThreadPool::enqueue
// captures the enqueuer's id and restores it around the task (see
// util/thread_pool.cpp), and parallel_wavefront threads each item's parent
// span through emit() (see util/wavefront.hpp). A span recorded on a
// stolen task therefore parents under the span that logically spawned it.
//
// Cost model: when tracing is disabled (the default), constructing a
// TraceSpan is one relaxed atomic load and a couple of member zeroings —
// no clock read, no allocation, no TLS buffer touch. When enabled, closing
// a span appends one event to the calling thread's buffer; buffers are
// created once per thread under a registration lock and then written
// lock-free, and are never destroyed (thread exit keeps its events).
//
// Export: Tracer::chrome_trace_json() renders Chrome trace-event JSON
// ("X" complete events) loadable in Perfetto / chrome://tracing, with
// span_id/parent_id inside args so tools can rebuild the logical tree.
// Setting HT_TRACE=out.json in the environment enables tracing at startup
// and writes the file at process exit (the env read lives in
// util/run_context.cpp — the obs layer never calls getenv itself).
// collect()/clear()/export require
// quiescence: no span may be open or closing concurrently (call
// ThreadPool::wait_idle() first) — that is the price of the lock-free
// write path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace ht::obs {

using SpanId = std::uint64_t;  // 0 = "no span"

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
extern thread_local SpanId tls_current_span;
}  // namespace detail

/// One relaxed load; the guard every hot-path instrument checks first.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Flips tracing globally. Turning it on mid-run is safe (spans opened
/// while off simply never record); turning it off requires the same
/// quiescence as collect() if the events will be read afterwards.
void set_tracing_enabled(bool enabled);

/// The calling thread's current logical span (0 outside any span).
inline SpanId current_span() { return detail::tls_current_span; }

/// One typed key/value argument attached to a span. Keys must be string
/// literals (the tracer stores the pointer, not a copy).
struct TraceArg {
  enum class Kind : std::uint8_t { kInt, kDouble, kString };
  const char* key = "";
  Kind kind = Kind::kInt;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// One closed span, as stored in a thread buffer.
struct TraceEvent {
  const char* name = "";  // string literal
  SpanId id = 0;
  SpanId parent = 0;
  std::uint32_t tid = 0;  // tracer-assigned dense thread index
  double start_us = 0.0;  // relative to the tracer's origin
  double dur_us = 0.0;
  std::vector<TraceArg> args;
};

/// Restores a saved logical span context on a thread; used at task
/// boundaries so stolen work parents under its logical spawner.
class ContextGuard {
 public:
  explicit ContextGuard(SpanId parent) : saved_(detail::tls_current_span) {
    detail::tls_current_span = parent;
  }
  ~ContextGuard() { detail::tls_current_span = saved_; }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  SpanId saved_;
};

/// RAII span: opens on construction (if tracing is enabled), records on
/// destruction. `name` must be a string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (tracing_enabled()) open(name);
  }
  ~TraceSpan() {
    if (id_ != 0) close();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// 0 when the span is inactive (tracing was off at construction).
  SpanId id() const { return id_; }
  bool active() const { return id_ != 0; }

  /// Attach a typed argument; no-ops on an inactive span. `key` must be a
  /// string literal.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  void arg(const char* key, T value) {
    if (id_ != 0) push_int(key, static_cast<std::int64_t>(value));
  }
  void arg(const char* key, double value);
  void arg(const char* key, const char* value);
  void arg(const char* key, const std::string& value);

 private:
  void open(const char* name);
  void close();
  void push_int(const char* key, std::int64_t value);

  SpanId id_ = 0;
  SpanId parent_ = 0;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  std::vector<TraceArg> args_;
};

/// Owns the per-thread event buffers and the export formats.
class Tracer {
 public:
  static Tracer& global();

  /// Appends a closed span to the calling thread's buffer (assigns tid).
  void record(TraceEvent&& event);

  /// Microseconds since the tracer's origin (process start, roughly).
  double now_us() const;

  /// All recorded events, concatenated across thread buffers. Requires
  /// quiescence (no concurrent span closes) — wait_idle() the pool first.
  std::vector<TraceEvent> collect() const;
  std::size_t event_count() const;
  /// Drops all recorded events (buffers stay registered). Same quiescence
  /// requirement as collect().
  void clear();

  /// Chrome trace-event JSON ("X" events, ts/dur in microseconds, args
  /// carry span_id/parent_id). Same quiescence requirement as collect().
  std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; false on IO failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };
  ThreadBuffer& local_buffer();

  mutable std::mutex buffers_mutex_;  // guards registration, not appends
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
};

}  // namespace ht::obs
