// Lock-free monotone maximum over an atomic value.
//
// The CAS-max loop used to be hand-rolled in two places in
// util/perf_counters.cpp (queue depth, arena bytes); it now lives here so
// the metrics registry's gauges and histograms share the single audited
// implementation.
#pragma once

#include <atomic>

namespace ht::obs {

/// Raises `target` to `value` if `value` is larger; no-op otherwise.
/// Wait-free for the common no-raise case (one relaxed load), lock-free
/// under contention. Returns the previous value.
template <typename T>
T atomic_fetch_max(std::atomic<T>& target, T value) {
  T current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
  return current;
}

}  // namespace ht::obs
