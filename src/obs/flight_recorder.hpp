// Flight recorder: a lock-free ring buffer of fixed-size per-query
// records, always on in the serving path.
//
// The recorder answers "what were the last N queries doing?" the moment
// something goes wrong — a dump is available on demand (CLI `flight`
// command) and the serve layer writes one automatically on query errors.
// Unlike tracing (off by default, per-thread unbounded buffers, needs
// quiescence to read) the flight recorder is bounded, always recording,
// and readable while writers are appending.
//
// Write path: one relaxed fetch_add claims a slot, then a per-slot
// seqlock (version word + 7 relaxed-atomic payload words, one cache line
// total) publishes the record — ~10-20 ns on x86, no locks, no
// allocation. Readers (dump()) validate each slot's version before and
// after copying the payload and skip slots that were mid-write; a torn
// read is retried once and then dropped, never blocked on. The only
// (accepted, documented) imprecision: a writer lapped by `capacity`
// appends while mid-write can interleave with the lapping writer and
// produce one corrupted record; the dump is diagnostic, the window is a
// full ring of appends, and the seqlock still bounds the damage to that
// single slot.
//
// This header is in the dependency-free obs layer: status codes are
// stored as raw bytes (the serve layer owns the enum), and kinds are the
// fixed serving query vocabulary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ht::obs {

/// The serving-layer query vocabulary; values are stable (they appear in
/// dumps and versioned JSON).
enum class QueryKind : std::uint8_t {
  kMinCut = 0,
  kSetCut = 1,
  kBisection = 2,
  kKway = 3,
};

/// Stable lowercase name ("min_cut", "set_cut", "bisection", "kway").
const char* query_kind_name(QueryKind kind);

/// One fixed-size per-query record (packed into one 64-byte ring slot).
struct FlightRecord {
  std::uint64_t seq = 0;         // assigned by append(); globally ordered
  std::int64_t start_ns = 0;     // query admission, ns since recorder origin
  std::uint64_t latency_ns = 0;  // admission -> answer
  double cut_value = 0.0;        // answered cut/estimate; 0 on error
  std::int64_t deadline_ns = -1; // deadline headroom at admission; -1 = none
  std::uint32_t epoch = 0;       // serving epoch the query pinned
  std::uint16_t thread = 0;      // dense per-process thread index
  QueryKind kind = QueryKind::kMinCut;
  std::uint8_t status_code = 0;  // ht::StatusCode numeric value
  bool prep_exact = false;       // served instance exactly equivalent
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;  // 256 KiB of slots

  /// Capacity is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// The process-wide recorder the serving layer appends to.
  static FlightRecorder& global();

  /// Appends one record (seq is assigned internally; the caller's seq is
  /// ignored). No-op while disabled. Lock-free, ~tens of ns.
  void append(const FlightRecord& record);

  /// Copies out every currently-readable record, oldest first (global seq
  /// order). Safe concurrently with appenders; mid-write slots are
  /// skipped after one retry.
  std::vector<FlightRecord> dump() const;

  /// One-line versioned JSON of dump(): {"version":1,"capacity":...,
  /// "recorded":...,"records":[...]}.
  std::string dump_json() const;

  /// Total records ever appended (recorded - capacity have been
  /// overwritten once recorded exceeds capacity).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return mask_ + 1; }

  /// Flips appending; dumps keep working either way. The serving bench
  /// uses this for its recorder-overhead A/B.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the recorder's origin (its construction).
  std::int64_t now_ns() const;

  /// Dense per-process index of the calling thread (wraps at 2^16).
  static std::uint16_t thread_index();

 private:
  // Seqlock slot: ver == 0 never written; odd = write in progress;
  // ver == 2*seq + 2 = record `seq` published. Payload words are relaxed
  // atomics so concurrent read/write is defined behaviour, with fences
  // providing the seqlock ordering.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> ver{0};
    std::atomic<std::uint64_t> word[7] = {};
  };

  bool read_slot(const Slot& slot, FlightRecord& out) const;

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<bool> enabled_{true};
  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
};

}  // namespace ht::obs
