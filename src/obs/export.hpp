// Registry exporters: Prometheus text exposition format and versioned
// one-line JSON, both rendered from a RegistrySnapshot so a single
// consistent copy of the registry feeds every output.
//
// Prometheus mapping: metric names are sanitized to the exposition
// charset ([a-zA-Z0-9_:]) and prefixed "ht_" ("serve.queries" ->
// "ht_serve_queries"); counters become `counter`, gauges `gauge`, and
// log2-bucket histograms `histogram` with cumulative `_bucket{le="..."}`
// series over the non-empty buckets plus `le="+Inf"`, `_sum` and
// `_count`. JSON output is {"version":1,...} with names sorted (map
// order) and escaped — byte-comparable across runs with equal values.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace ht::obs {

/// JSON string escaping (quotes, backslash, control chars as \u00XX).
/// Returns the escaped body without surrounding quotes.
std::string json_escape(const std::string& s);

/// "serve.latency.min_cut" -> "ht_serve_latency_min_cut": any character
/// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets an extra
/// '_' after the prefix.
std::string prometheus_name(const std::string& name);

/// Prometheus text exposition (text/plain version 0.0.4): # TYPE comments
/// plus one sample line per series, trailing newline, sorted by name.
std::string prometheus_text(const RegistrySnapshot& snapshot);

/// One-line versioned JSON: {"version":1,"counters":{...},"gauges":{...},
/// "histograms":{name:{count,sum,max,p50,p90,p99,buckets:[[ub,c],...]}}}.
std::string registry_json(const RegistrySnapshot& snapshot);

}  // namespace ht::obs
