#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

namespace ht::obs {

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kMinCut:
      return "min_cut";
    case QueryKind::kSetCut:
      return "set_cut";
    case QueryKind::kBisection:
      return "bisection";
    case QueryKind::kKway:
      return "kway";
  }
  return "unknown";
}

namespace {

// Word layout of one published record (7 x 64-bit payload words).
//   w0  start_ns (int64)
//   w1  latency_ns
//   w2  cut_value (bit_cast double)
//   w3  deadline_ns (int64; -1 = no deadline)
//   w4  epoch | thread<<32 | kind<<48 | status_code<<56
//   w5  flags: bit 0 = prep_exact
//   w6  spare (zero)
constexpr int kStartNs = 0;
constexpr int kLatencyNs = 1;
constexpr int kCutValue = 2;
constexpr int kDeadlineNs = 3;
constexpr int kPacked = 4;
constexpr int kFlags = 5;

std::uint64_t pack_w4(const FlightRecord& r) {
  return static_cast<std::uint64_t>(r.epoch) |
         (static_cast<std::uint64_t>(r.thread) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(r.kind)) << 48) |
         (static_cast<std::uint64_t>(r.status_code) << 56);
}

std::size_t round_up_pow2(std::size_t n) {
  if (n < 8) n = 8;
  return std::size_t{1} << std::bit_width(n - 1);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  std::size_t cap = round_up_pow2(capacity);
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked like Tracer
  return *recorder;
}

std::int64_t FlightRecorder::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

std::uint16_t FlightRecorder::thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint16_t index =
      static_cast<std::uint16_t>(next.fetch_add(1, std::memory_order_relaxed));
  return index;
}

void FlightRecorder::append(const FlightRecord& record) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Seqlock write: odd version marks the slot mid-write, the final
  // release store of 2*seq+2 publishes the payload. Payload stores are
  // relaxed (the fences order them against the version word); concurrent
  // readers see either the old or the new version number and validate.
  slot.ver.store(2 * seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.word[kStartNs].store(static_cast<std::uint64_t>(record.start_ns),
                            std::memory_order_relaxed);
  slot.word[kLatencyNs].store(record.latency_ns, std::memory_order_relaxed);
  slot.word[kCutValue].store(std::bit_cast<std::uint64_t>(record.cut_value),
                             std::memory_order_relaxed);
  slot.word[kDeadlineNs].store(static_cast<std::uint64_t>(record.deadline_ns),
                               std::memory_order_relaxed);
  slot.word[kPacked].store(pack_w4(record), std::memory_order_relaxed);
  slot.word[kFlags].store(record.prep_exact ? 1u : 0u,
                          std::memory_order_relaxed);
  slot.ver.store(2 * seq + 2, std::memory_order_release);
}

bool FlightRecorder::read_slot(const Slot& slot, FlightRecord& out) const {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t v1 = slot.ver.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // never written / mid-write
    std::uint64_t w[7];
    for (int i = 0; i < 7; ++i)
      w[i] = slot.word[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t v2 = slot.ver.load(std::memory_order_relaxed);
    if (v1 != v2) continue;  // overwritten while copying
    out.seq = v1 / 2 - 1;
    out.start_ns = static_cast<std::int64_t>(w[kStartNs]);
    out.latency_ns = w[kLatencyNs];
    out.cut_value = std::bit_cast<double>(w[kCutValue]);
    out.deadline_ns = static_cast<std::int64_t>(w[kDeadlineNs]);
    out.epoch = static_cast<std::uint32_t>(w[kPacked]);
    out.thread = static_cast<std::uint16_t>(w[kPacked] >> 32);
    out.kind = static_cast<QueryKind>(static_cast<std::uint8_t>(
        w[kPacked] >> 48));
    out.status_code = static_cast<std::uint8_t>(w[kPacked] >> 56);
    out.prep_exact = (w[kFlags] & 1) != 0;
    return true;
  }
  return false;
}

std::vector<FlightRecord> FlightRecorder::dump() const {
  std::vector<FlightRecord> records;
  const std::size_t cap = capacity();
  records.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    FlightRecord r;
    if (read_slot(slots_[i], r)) records.push_back(r);
  }
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return records;
}

std::string FlightRecorder::dump_json() const {
  const std::vector<FlightRecord> records = dump();
  std::string out;
  out.reserve(64 + records.size() * 160);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"version\":1,\"capacity\":%zu,\"recorded\":%llu,"
                "\"records\":[",
                capacity(),
                static_cast<unsigned long long>(recorded()));
  out += buf;
  bool first = true;
  for (const FlightRecord& r : records) {
    if (!first) out += ',';
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "{\"seq\":%llu,\"kind\":\"%s\",\"status\":%u,\"epoch\":%u,"
        "\"thread\":%u,\"start_ns\":%lld,\"latency_ns\":%llu,"
        "\"deadline_ns\":%lld,\"cut\":%.17g,\"prep_exact\":%s}",
        static_cast<unsigned long long>(r.seq), query_kind_name(r.kind),
        static_cast<unsigned>(r.status_code), r.epoch,
        static_cast<unsigned>(r.thread),
        static_cast<long long>(r.start_ns),
        static_cast<unsigned long long>(r.latency_ns),
        static_cast<long long>(r.deadline_ns), r.cut_value,
        r.prep_exact ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace ht::obs
