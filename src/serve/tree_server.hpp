// Long-lived serving layer over .htsnap snapshots — the "serve" half of
// the OSRM-style extract→customize→serve split.
//
// A TreeServer loads one snapshot and answers queries purely through the
// precomputed trees — min s-t cut (Gomory–Hu tree walk), dominating
// delta_H(A, B) set-cut estimates (vertex-cut tree DP, Lemma 7),
// balanced bisection (Corollary 3 tree DP) and balanced k-way partition
// (decomposition-tree edge DP). No flow is ever solved on the query
// path; the expensive build is amortized over unbounded queries.
//
// Hot-swap: swap(path) loads and fully validates a new snapshot OFF the
// query path, then publishes it with a shared_ptr epoch handoff — each
// query pins the epoch it started on, in-flight queries on the old
// snapshot finish against the old mapping, and the old mapping is
// unmapped when its last query drops the reference. A failed swap keeps
// the current snapshot serving (the "mmap.bytes" gauge lets tests assert
// no mapping leaks across swap storms). TreeServer is a copyable handle;
// copies share the served epoch.
//
// Every query accepts a per-query RunContext (deadline / cancel), bound
// via the usual RunScope so the tree DPs' cooperative polls observe it,
// and runs under a trace span with "serve.*" metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cuttree/tree.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "serve/snapshot_reader.hpp"
#include "util/run_context.hpp"
#include "util/status.hpp"

namespace ht {

namespace serve {

/// Serving-layer observability knobs, fixed at open()/from_state() time
/// and shared by every copy of the handle.
///
/// The flight recorder (obs/flight_recorder.hpp) gets one fixed-size
/// record per query — kind, epoch, deadline headroom, latency, status,
/// cut value, prep-exactness, thread — appended lock-free after the
/// answer is produced (~tens of ns; disable per-server only for A/B
/// overhead measurements). Queries slower than slow_query_ns additionally
/// record a "serve.slow_query" trace span carrying the same fields as
/// span args (tracing must be enabled to see them; the span is
/// timing-dependent by design, unlike the deterministic serve.* spans).
/// When flight_dump_path is non-empty, any query that finishes non-ok
/// rewrites that file with the recorder's JSON dump — a post-mortem of
/// the last `capacity` queries leading up to the error.
struct ServeOptions {
  bool flight_recorder = true;
  std::uint64_t slow_query_ns = 100'000'000;  // 100 ms
  std::string flight_dump_path;               // "" = no auto-dump
};

/// One fully validated, immutable serving epoch. The hypergraph CSR is
/// served zero-copy out of the mapping; the O(n) tree structures are
/// validated and materialized once at load so every query can run the
/// existing (tested) tree DPs without touching the file again.
///
/// Preprocessed snapshots (kPrepMeta present) store the REDUCED instance;
/// at load the prep vertex map is validated and the cut/decomposition
/// trees are lifted so their embeddings are indexed by ORIGINAL vertex
/// ids (a contracted cluster's originals all embed at the cluster's tree
/// node — the tree DPs aggregate multiplicities per node, so balance
/// constraints count original vertices). Every TreeServer answer is in
/// original ids; only the Gomory–Hu walk maps through the prep map, and
/// rejects pairs the preprocessing merged.
struct LoadedSnapshot {
  snapshot::Snapshot snap;  // owns the mapping the spans point into
  snapshot::MetaBlock meta;

  // Zero-copy views into the mapping.
  std::span<const double> vertex_weights;
  std::span<const double> edge_weights;
  std::span<const std::int64_t> pin_offsets;
  std::span<const std::int32_t> pins;

  // Preprocessing provenance; has_prep == false leaves prep zeroed and
  // prep_map empty (identity).
  snapshot::PrepBlock prep{};
  std::span<const std::int32_t> prep_map;  // original -> stored vertex
  bool has_prep = false;

  std::optional<flow::HypergraphGomoryHuTree> gomory_hu;
  std::optional<cuttree::Tree> vertex_cut_tree;   // star expansion,
                                                  // embedding over orig n
  std::optional<cuttree::Tree> decomposition;     // clique expansion, ditto

  /// Validates and assembles a serving epoch from a mapped snapshot.
  /// Every structural claim the file makes (array lengths vs. meta
  /// counts, CSR monotonicity, pin ranges, tree invariants, Gomory–Hu
  /// forest shape) is re-checked here — a checksum-valid but semantically
  /// corrupt file is a Status, never UB.
  static StatusOr<std::shared_ptr<const LoadedSnapshot>> load(
      snapshot::Snapshot snap);
  static StatusOr<std::shared_ptr<const LoadedSnapshot>> load_file(
      const std::string& path);

  /// The id space queries use: the original vertex count (== stored count
  /// without preprocessing).
  std::int32_t original_vertices() const {
    return has_prep ? prep.orig_num_vertices : meta.num_vertices;
  }
  std::int32_t to_stored(std::int32_t original) const {
    return has_prep ? prep_map[static_cast<std::size_t>(original)]
                    : original;
  }

  /// delta_H of a side assignment over ORIGINAL ids, evaluated on the
  /// stored CSR. Exact for the stored instance; when the bisection DP
  /// splits a contracted cluster, the cluster counts on both sides of
  /// every incident stored hyperedge (the dominating reading).
  double cut_weight(const std::vector<bool>& side) const;
  /// (cut, connectivity) of a k-way assignment over ORIGINAL ids on the
  /// stored CSR. The edge-cut DP never splits a cluster, so under
  /// preprocessing a cluster takes the part of its first original member.
  std::pair<double, double> kway_cost(
      const std::vector<std::int32_t>& part) const;
};

namespace detail {
struct ServerShared;  // the state TreeServer copies share (tree_server.cpp)
}  // namespace detail

}  // namespace serve

class TreeServer {
 public:
  struct MinCutAnswer {
    double value = 0.0;
    /// True when the snapshot's Gomory–Hu build ran to completion; a
    /// snapshot frozen mid-build serves pessimistic lower bounds for
    /// vertices beyond its stop point.
    bool exact = false;
  };

  struct SetCutAnswer {
    /// gamma_T estimate of delta_H(A, B): dominating (never below the
    /// true cut is NOT guaranteed — it never *under*-reports: gamma_T >=
    /// delta_H by Lemma 5 + Lemma 7), quality bounded by the tree's.
    double value = 0.0;
  };

  struct BisectionAnswer {
    std::vector<bool> side;  // per vertex, true = side 1; exactly n/2 each
    double cut = 0.0;        // exact delta_H of `side`, evaluated on CSR
    double tree_cut = 0.0;   // the DP objective w(X) on the cut tree
  };

  struct KwayAnswer {
    std::vector<std::int32_t> part;  // per vertex in [0, k)
    double cut = 0.0;                // exact delta_H over the CSR
    double connectivity = 0.0;       // exact (lambda - 1) objective
    double tree_cut = 0.0;           // accumulated tree-DP objective
  };

  struct Info {
    /// The id space queries address: ORIGINAL vertices/edges (equal to
    /// the stored counts when the snapshot is not preprocessed).
    std::int32_t num_vertices = 0;
    std::int32_t num_edges = 0;
    /// The instance actually stored in (and served from) the snapshot.
    std::int32_t stored_vertices = 0;
    std::int32_t stored_edges = 0;
    std::uint32_t format_version = 0;
    std::uint32_t prep_stage_flags = 0;  // ht::prep::kStage* bits
    std::size_t snapshot_bytes = 0;
    bool preprocessed = false;
    /// Pipeline preserved the global min-cut value (no lossy stage).
    bool prep_exact = false;
    bool has_gomory_hu = false;
    bool has_vertex_cut_tree = false;
    bool has_decomposition = false;
    bool gomory_hu_exact = false;
    std::uint64_t queries = 0;  // served by this handle's shared state
    std::uint64_t swaps = 0;
    std::uint32_t epoch = 0;  // 1 at open, +1 per successful swap
  };

  /// Opens and validates a snapshot; the server is serving on return.
  static StatusOr<TreeServer> open(const std::string& path,
                                   serve::ServeOptions options = {});

  /// Serves an already-loaded epoch (tests; in-process builds).
  static TreeServer from_state(
      std::shared_ptr<const serve::LoadedSnapshot> state,
      serve::ServeOptions options = {});

  /// Hot-swap: validate `path` off the query path, then atomically
  /// publish it. On failure the current snapshot keeps serving and the
  /// error is returned.
  Status swap(const std::string& path);

  /// The current epoch (pins the mapping for the caller's lifetime).
  std::shared_ptr<const serve::LoadedSnapshot> state() const;

  /// The current epoch number (what flight records of new queries carry).
  std::uint32_t epoch() const;

  /// The observability knobs this server was opened with.
  const serve::ServeOptions& options() const;

  /// Exact min s-t hyperedge cut via the Gomory–Hu tree walk.
  StatusOr<MinCutAnswer> min_cut(std::int32_t s, std::int32_t t,
                                 const RunContext& ctx = {}) const;

  /// Dominating delta_H(A, B) estimate via the vertex-cut-tree DP over
  /// the star expansion (A, B disjoint, non-empty sets of vertex ids).
  StatusOr<SetCutAnswer> set_cut(const std::vector<std::int32_t>& a,
                                 const std::vector<std::int32_t>& b,
                                 const RunContext& ctx = {}) const;

  /// Corollary 3 balanced bisection from the stored cut tree (n even).
  StatusOr<BisectionAnswer> bisection(const RunContext& ctx = {}) const;

  /// Balanced k-way partition by peeling the decomposition tree with the
  /// edge-cut DP (k >= 2, k divides n).
  StatusOr<KwayAnswer> kway(std::int32_t k, const RunContext& ctx = {}) const;

  Info info() const;

 private:
  explicit TreeServer(std::shared_ptr<serve::detail::ServerShared> shared)
      : shared_(std::move(shared)) {}

  std::shared_ptr<serve::detail::ServerShared> shared_;
};

}  // namespace ht
