// Validated, zero-copy access to .htsnap snapshots — the serve side of
// the build/serve split.
//
// open() maps the file (util/mmap_file.hpp) and verifies the whole
// integrity chain — magic, endianness, version window, header checksum,
// TOC bounds + checksum, then every section's alignment, bounds,
// element-size divisibility and payload checksum — before a Snapshot is
// returned. Every failure is a Status with a precise message; no input,
// however malformed, may crash the loader (the test_snapshot corpus and
// the ASan/UBSan CI job enforce this).
//
// A Snapshot hands out spans pointing straight into the mapping: the
// hypergraph CSR of a multi-gigabyte snapshot is never copied. Sections
// with unknown kinds are skipped (forward compatibility); duplicate kinds
// are rejected.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/snapshot_format.hpp"
#include "util/mmap_file.hpp"
#include "util/status.hpp"

namespace ht::snapshot {

class Snapshot {
 public:
  Snapshot() = default;
  // Moves rebind data_ to the destination's own storage rather than
  // trusting the moved-from string's buffer to survive.
  Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }
  Snapshot& operator=(Snapshot&& other) noexcept {
    if (this != &other) {
      file_ = std::move(other.file_);
      owned_ = std::move(other.owned_);
      size_ = other.size_;
      header_ = other.header_;
      toc_ = std::move(other.toc_);
      data_ = file_.mapped()
                  ? file_.data()
                  : reinterpret_cast<const unsigned char*>(owned_.data());
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  const RawHeader& header() const { return header_; }
  std::size_t size_bytes() const { return size_; }

  bool has(SectionKind kind) const { return find(kind) != nullptr; }

  /// Span over a section payload, zero-copy into the mapping.
  /// kInvalidArgument when the section is absent or its elem_size does
  /// not match sizeof(T).
  template <typename T>
  StatusOr<std::span<const T>> section(SectionKind kind) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const RawSection* s = find(kind);
    if (s == nullptr) {
      return Status::InvalidArgument("snapshot section " +
                                     std::to_string(static_cast<unsigned>(
                                         kind)) +
                                     " absent");
    }
    if (s->elem_size != sizeof(T)) {
      return Status::InvalidArgument("snapshot section element size mismatch");
    }
    return std::span<const T>(reinterpret_cast<const T*>(data_ + s->offset),
                              static_cast<std::size_t>(s->byte_size) /
                                  sizeof(T));
  }

  /// The kMeta record (required in every valid snapshot; open() rejects a
  /// file without it, so this accessor cannot fail afterwards).
  const MetaBlock& meta() const {
    return *reinterpret_cast<const MetaBlock*>(
        data_ + find(SectionKind::kMeta)->offset);
  }

  /// The kBuildInfo text, or "" when absent.
  std::string build_info() const;

  friend StatusOr<Snapshot> open(const std::string& path);
  friend StatusOr<Snapshot> open_bytes(std::string bytes);

 private:
  const RawSection* find(SectionKind kind) const;
  Status parse();  // validates data_/size_ and fills header_/toc_

  MappedFile file_;      // owns the mapping when opened from a path
  std::string owned_;    // owns the bytes when opened from memory
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  RawHeader header_{};
  std::vector<RawSection> toc_;
};

/// Maps and fully validates a snapshot file.
StatusOr<Snapshot> open(const std::string& path);

/// Same validation over an in-memory image (used by tests and by the
/// writer's self-check); the Snapshot takes ownership of the bytes.
StatusOr<Snapshot> open_bytes(std::string bytes);

}  // namespace ht::snapshot
