#include "serve/tree_server.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <utility>

#include "cuttree/tree_bisection.hpp"
#include "cuttree/tree_edge_partition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prep/prep.hpp"

namespace ht {

namespace serve {

namespace {

using snapshot::SectionKind;

/// BFS over parent pointers from `root`: exactly one -1 (at the root),
/// every other parent in range, and the whole forest reachable — i.e. the
/// arrays really encode one rooted tree, not a cycle or a forest.
Status validate_rooted_parent(std::span<const std::int32_t> parent,
                              std::int32_t root, const char* what) {
  const auto n = static_cast<std::int32_t>(parent.size());
  if (root < 0 || root >= n) {
    return Status::InvalidArgument(std::string(what) + ": root out of range");
  }
  std::vector<std::vector<std::int32_t>> children(
      static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) {
    const std::int32_t p = parent[static_cast<std::size_t>(v)];
    if (v == root) {
      if (p != -1) {
        return Status::InvalidArgument(std::string(what) +
                                       ": root has a parent");
      }
      continue;
    }
    if (p < 0 || p >= n) {
      return Status::InvalidArgument(std::string(what) +
                                     ": parent out of range");
    }
    children[static_cast<std::size_t>(p)].push_back(v);
  }
  std::vector<std::int32_t> stack{root};
  std::int32_t visited = 0;
  while (!stack.empty()) {
    const std::int32_t v = stack.back();
    stack.pop_back();
    ++visited;
    for (std::int32_t c : children[static_cast<std::size_t>(v)]) {
      stack.push_back(c);
    }
  }
  if (visited != n) {
    return Status::InvalidArgument(std::string(what) +
                                   ": parent pointers are not a tree");
  }
  return Status::Ok();
}

StatusOr<cuttree::Tree> load_tree(const snapshot::Snapshot& snap,
                                  SectionKind parent_kind,
                                  SectionKind node_weight_kind,
                                  SectionKind edge_weight_kind,
                                  SectionKind vertex_node_kind,
                                  std::int32_t expected_nodes,
                                  std::int64_t expected_vertices,
                                  const char* what) {
  auto parent = snap.section<std::int32_t>(parent_kind);
  auto node_weight = snap.section<double>(node_weight_kind);
  auto edge_weight = snap.section<double>(edge_weight_kind);
  auto vertex_node = snap.section<std::int32_t>(vertex_node_kind);
  if (!parent.ok()) return parent.status();
  if (!node_weight.ok()) return node_weight.status();
  if (!edge_weight.ok()) return edge_weight.status();
  if (!vertex_node.ok()) return vertex_node.status();
  if (static_cast<std::int64_t>(parent->size()) != expected_nodes) {
    return Status::InvalidArgument(std::string(what) +
                                   ": node count disagrees with meta");
  }
  if (static_cast<std::int64_t>(vertex_node->size()) != expected_vertices) {
    return Status::InvalidArgument(std::string(what) +
                                   ": embedded vertex count disagrees with "
                                   "meta");
  }
  auto tree = cuttree::Tree::from_arrays(*parent, *node_weight, *edge_weight,
                                         *vertex_node);
  if (!tree.ok()) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   tree.status().message());
  }
  return tree;
}

}  // namespace

StatusOr<std::shared_ptr<const LoadedSnapshot>> LoadedSnapshot::load(
    snapshot::Snapshot snap) {
  auto out = std::make_shared<LoadedSnapshot>();
  out->meta = snap.meta();
  const snapshot::MetaBlock& meta = out->meta;
  const std::int32_t n = meta.num_vertices;
  const std::int32_t m = meta.num_edges;
  if (n < 2 || m < 0 || meta.num_pins < 0) {
    return Status::InvalidArgument("snapshot meta: bad instance counts");
  }

  // The snapshot must outlive the spans; move it in before slicing.
  out->snap = std::move(snap);
  const snapshot::Snapshot& s = out->snap;

  auto vertex_weights = s.section<double>(SectionKind::kVertexWeights);
  auto edge_weights = s.section<double>(SectionKind::kEdgeWeights);
  auto pin_offsets = s.section<std::int64_t>(SectionKind::kPinOffsets);
  auto pins = s.section<std::int32_t>(SectionKind::kPins);
  if (!vertex_weights.ok()) return vertex_weights.status();
  if (!edge_weights.ok()) return edge_weights.status();
  if (!pin_offsets.ok()) return pin_offsets.status();
  if (!pins.ok()) return pins.status();
  if (static_cast<std::int64_t>(vertex_weights->size()) != n ||
      static_cast<std::int64_t>(edge_weights->size()) != m ||
      static_cast<std::int64_t>(pin_offsets->size()) != m + 1 ||
      static_cast<std::int64_t>(pins->size()) != meta.num_pins) {
    return Status::InvalidArgument("snapshot CSR: array lengths disagree "
                                   "with meta");
  }
  if ((*pin_offsets)[0] != 0 ||
      (*pin_offsets)[static_cast<std::size_t>(m)] !=
          static_cast<std::int64_t>(pins->size())) {
    return Status::InvalidArgument("snapshot CSR: pin offsets do not span "
                                   "the pin array");
  }
  for (std::int32_t e = 0; e < m; ++e) {
    if ((*pin_offsets)[static_cast<std::size_t>(e)] >
        (*pin_offsets)[static_cast<std::size_t>(e) + 1]) {
      return Status::InvalidArgument("snapshot CSR: pin offsets decrease");
    }
  }
  for (std::int32_t pin : *pins) {
    if (pin < 0 || pin >= n) {
      return Status::InvalidArgument("snapshot CSR: pin out of range");
    }
  }
  out->vertex_weights = *vertex_weights;
  out->edge_weights = *edge_weights;
  out->pin_offsets = *pin_offsets;
  out->pins = *pins;

  if (s.has(SectionKind::kGhParent)) {
    auto gh_parent = s.section<std::int32_t>(SectionKind::kGhParent);
    auto gh_cut = s.section<double>(SectionKind::kGhParentCut);
    if (!gh_parent.ok()) return gh_parent.status();
    if (!gh_cut.ok()) return gh_cut.status();
    if (static_cast<std::int64_t>(gh_parent->size()) != n ||
        static_cast<std::int64_t>(gh_cut->size()) != n) {
      return Status::InvalidArgument("snapshot Gomory-Hu: array length is "
                                     "not the vertex count");
    }
    if (Status st =
            validate_rooted_parent(*gh_parent, meta.gh_root, "Gomory-Hu");
        !st.ok()) {
      return st;
    }
    flow::HypergraphGomoryHuTree gh;
    gh.parent.assign(gh_parent->begin(), gh_parent->end());
    gh.parent_cut.assign(gh_cut->begin(), gh_cut->end());
    gh.root = meta.gh_root;
    out->gomory_hu.emplace(std::move(gh));
  }

  if (s.has(SectionKind::kVctParent)) {
    auto tree = load_tree(s, SectionKind::kVctParent,
                          SectionKind::kVctNodeWeight,
                          SectionKind::kVctEdgeWeight,
                          SectionKind::kVctVertexNode, meta.vct_num_nodes,
                          static_cast<std::int64_t>(n) + m,
                          "vertex cut tree");
    if (!tree.ok()) return tree.status();
    if (tree->root() != meta.vct_root) {
      return Status::InvalidArgument("vertex cut tree: root disagrees with "
                                     "meta");
    }
    out->vertex_cut_tree.emplace(std::move(*tree));
  }

  if (s.has(SectionKind::kDecompParent)) {
    auto tree = load_tree(s, SectionKind::kDecompParent,
                          SectionKind::kDecompNodeWeight,
                          SectionKind::kDecompEdgeWeight,
                          SectionKind::kDecompVertexNode,
                          meta.decomp_num_nodes, n, "decomposition tree");
    if (!tree.ok()) return tree.status();
    if (tree->root() != meta.decomp_root) {
      return Status::InvalidArgument("decomposition tree: root disagrees "
                                     "with meta");
    }
    out->decomposition.emplace(std::move(*tree));
  }

  // Preprocessed snapshot: validate the original -> stored map and lift
  // the tree embeddings onto original ids, so every query below runs
  // directly in the id space callers know.
  if (s.has(SectionKind::kPrepMeta)) {
    auto prep_block = s.section<snapshot::PrepBlock>(SectionKind::kPrepMeta);
    if (!prep_block.ok()) return prep_block.status();
    if (prep_block->size() != 1) {
      return Status::InvalidArgument("snapshot prep: meta section is not "
                                     "one record");
    }
    out->prep = (*prep_block)[0];
    const std::int32_t orig_n = out->prep.orig_num_vertices;
    if (orig_n < n || out->prep.orig_num_edges < 0 ||
        out->prep.orig_num_pins < 0) {
      return Status::InvalidArgument("snapshot prep: original counts are "
                                     "smaller than the stored instance");
    }
    auto map = s.section<std::int32_t>(SectionKind::kPrepVertexMap);
    if (!map.ok()) return map.status();
    if (static_cast<std::int64_t>(map->size()) != orig_n) {
      return Status::InvalidArgument("snapshot prep: vertex map length is "
                                     "not the original vertex count");
    }
    std::vector<bool> hit(static_cast<std::size_t>(n), false);
    for (const std::int32_t stored_v : *map) {
      if (stored_v < 0 || stored_v >= n) {
        return Status::InvalidArgument("snapshot prep: vertex map entry "
                                       "out of range");
      }
      hit[static_cast<std::size_t>(stored_v)] = true;
    }
    for (std::int32_t v = 0; v < n; ++v) {
      if (!hit[static_cast<std::size_t>(v)]) {
        return Status::InvalidArgument("snapshot prep: vertex map does not "
                                       "cover every stored vertex");
      }
    }
    out->prep_map = *map;
    out->has_prep = true;
    if (out->vertex_cut_tree.has_value()) {
      out->vertex_cut_tree->lift_vertices(*map);
    }
    if (out->decomposition.has_value()) {
      out->decomposition->lift_vertices(*map);
    }
  }

  return std::shared_ptr<const LoadedSnapshot>(std::move(out));
}

StatusOr<std::shared_ptr<const LoadedSnapshot>> LoadedSnapshot::load_file(
    const std::string& path) {
  auto snap = snapshot::open(path);
  if (!snap.ok()) return snap.status();
  return load(std::move(*snap));
}

double LoadedSnapshot::cut_weight(const std::vector<bool>& side) const {
  // Collapse the original-id side onto stored vertices as side-presence
  // bits: a stored vertex whose originals straddle the cut exposes both
  // sides to every incident hyperedge.
  const std::int32_t n = meta.num_vertices;
  std::vector<std::uint8_t> tag(static_cast<std::size_t>(n), 0);
  if (has_prep) {
    for (std::size_t v = 0; v < prep_map.size(); ++v) {
      tag[static_cast<std::size_t>(prep_map[v])] |= side[v] ? 2 : 1;
    }
  } else {
    for (std::int32_t v = 0; v < n; ++v) {
      tag[static_cast<std::size_t>(v)] =
          side[static_cast<std::size_t>(v)] ? 2 : 1;
    }
  }
  double cut = 0.0;
  const std::int32_t m = meta.num_edges;
  for (std::int32_t e = 0; e < m; ++e) {
    const auto begin = static_cast<std::size_t>(
        pin_offsets[static_cast<std::size_t>(e)]);
    const auto end = static_cast<std::size_t>(
        pin_offsets[static_cast<std::size_t>(e) + 1]);
    std::uint8_t seen = 0;
    for (std::size_t i = begin; i < end && seen != 3; ++i) {
      seen |= tag[static_cast<std::size_t>(pins[i])];
    }
    if (seen == 3) cut += edge_weights[static_cast<std::size_t>(e)];
  }
  return cut;
}

std::pair<double, double> LoadedSnapshot::kway_cost(
    const std::vector<std::int32_t>& part) const {
  const std::int32_t n = meta.num_vertices;
  // Part id per stored vertex; under preprocessing a cluster follows its
  // first original member (the edge-cut DP keeps clusters whole, so all
  // members agree — the rule only makes the mapping total).
  std::vector<std::int32_t> stored_part(static_cast<std::size_t>(n), -1);
  if (has_prep) {
    for (std::size_t v = 0; v < prep_map.size(); ++v) {
      std::int32_t& p = stored_part[static_cast<std::size_t>(prep_map[v])];
      if (p == -1) p = part[v];
    }
  } else {
    stored_part = part;
  }
  double cut = 0.0;
  double connectivity = 0.0;
  const std::int32_t m = meta.num_edges;
  std::vector<std::int32_t> seen;
  for (std::int32_t e = 0; e < m; ++e) {
    const auto begin = static_cast<std::size_t>(
        pin_offsets[static_cast<std::size_t>(e)]);
    const auto end = static_cast<std::size_t>(
        pin_offsets[static_cast<std::size_t>(e) + 1]);
    seen.clear();
    for (std::size_t i = begin; i < end; ++i) {
      const std::int32_t p = stored_part[static_cast<std::size_t>(pins[i])];
      if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
        seen.push_back(p);
      }
    }
    if (seen.size() > 1) {
      const double w = edge_weights[static_cast<std::size_t>(e)];
      cut += w;
      connectivity += w * static_cast<double>(seen.size() - 1);
    }
  }
  return {cut, connectivity};
}

}  // namespace serve

namespace serve::detail {

struct ServerShared {
  mutable std::mutex mu;
  std::shared_ptr<const LoadedSnapshot> state;  // guarded by mu
  std::uint32_t epoch = 1;                      // guarded by mu
  ServeOptions options;  // immutable after construction
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> swaps{0};

  /// One consistent (state, epoch) pair for a starting query.
  std::shared_ptr<const LoadedSnapshot> acquire(
      std::uint32_t& epoch_out) const {
    std::lock_guard<std::mutex> lock(mu);
    epoch_out = epoch;
    return state;
  }
};

}  // namespace serve::detail

namespace {

using serve::detail::ServerShared;

/// The registry references every query touches, resolved once — the hot
/// path must not pay the registry's name lookup (lock + map walk).
struct ServeMetrics {
  obs::Counter& queries;
  obs::Counter& query_errors;
  obs::Counter& deadline_expired;
  obs::Counter& slow_queries;
  obs::Histogram* latency[4];  // indexed by obs::QueryKind

  static const ServeMetrics& get() {
    static const ServeMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return ServeMetrics{
          reg.counter("serve.queries"),
          reg.counter("serve.query_errors"),
          reg.counter("serve.deadline_expired"),
          reg.counter("serve.slow_queries"),
          {&reg.histogram("serve.latency.min_cut"),
           &reg.histogram("serve.latency.set_cut"),
           &reg.histogram("serve.latency.bisection"),
           &reg.histogram("serve.latency.kway")},
      };
    }();
    return m;
  }
};

/// Epoch acquire + per-query bookkeeping shared by every query method.
/// Every exit path routes its status through ok()/fail()/dp_failure(),
/// and the destructor finalizes observability in one place: per-kind
/// latency histogram, error counters (deadline expiries split out from
/// genuine errors), the flight record, the on-error auto-dump, and the
/// serve.slow_query span. The observer is constructed after the per-kind
/// serve.* span, so destruction runs first and the slow-query span nests
/// under the query's own span.
struct QueryObserver {
  std::shared_ptr<const serve::LoadedSnapshot> state;
  RunScope scope;
  const serve::ServeOptions& options;
  obs::QueryKind kind;
  std::uint32_t epoch = 0;
  std::int64_t start_ns = 0;
  std::int64_t deadline_ns = -1;  // headroom at admission; -1 = none
  double cut_value = 0.0;
  StatusCode code = StatusCode::kOk;

  QueryObserver(ServerShared& shared, obs::QueryKind k,
                const RunContext& ctx)
      : scope(ctx), options(shared.options), kind(k) {
    state = shared.acquire(epoch);
    shared.queries.fetch_add(1, std::memory_order_relaxed);
    ServeMetrics::get().queries.add();
    start_ns = obs::FlightRecorder::global().now_ns();
    if (ctx.has_deadline()) {
      deadline_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        ctx.deadline - RunContext::Clock::now())
                        .count();
    }
  }

  QueryObserver(const QueryObserver&) = delete;
  QueryObserver& operator=(const QueryObserver&) = delete;

  ~QueryObserver() {
    const ServeMetrics& metrics = ServeMetrics::get();
    auto& recorder = obs::FlightRecorder::global();
    const std::uint64_t latency_ns =
        static_cast<std::uint64_t>(recorder.now_ns() - start_ns);
    metrics.latency[static_cast<int>(kind)]->record(latency_ns);
    if (code == StatusCode::kDeadlineExceeded) {
      metrics.deadline_expired.add();
    } else if (code != StatusCode::kOk) {
      metrics.query_errors.add();
    }
    if (options.flight_recorder) {
      obs::FlightRecord record;
      record.start_ns = start_ns;
      record.latency_ns = latency_ns;
      record.cut_value = cut_value;
      record.deadline_ns = deadline_ns;
      record.epoch = epoch;
      record.thread = obs::FlightRecorder::thread_index();
      record.kind = kind;
      record.status_code = static_cast<std::uint8_t>(code);
      record.prep_exact =
          !state->has_prep || prep::stages_exact(state->prep.stage_flags);
      recorder.append(record);
    }
    if (code != StatusCode::kOk && !options.flight_dump_path.empty()) {
      std::ofstream out(options.flight_dump_path,
                        std::ios::binary | std::ios::trunc);
      if (out) out << recorder.dump_json() << '\n';
    }
    if (latency_ns > options.slow_query_ns) {
      metrics.slow_queries.add();
      obs::TraceSpan span("serve.slow_query");
      span.arg("kind", obs::query_kind_name(kind));
      span.arg("latency_ns", static_cast<std::int64_t>(latency_ns));
      span.arg("epoch", static_cast<std::int64_t>(epoch));
      span.arg("status", static_cast<std::int64_t>(code));
      span.arg("deadline_ns", deadline_ns);
    }
  }

  /// Poll once (deadline / cancel) before starting the DP.
  Status admission() { return fail(scope.state().check()); }

  /// Routes a terminal status through the observer (ok statuses pass
  /// through untouched).
  Status fail(Status st) {
    code = st.code();
    return st;
  }

  /// Maps an invalid DP result to the run's stop status (deadline /
  /// cancel latched mid-DP) or Internal for a genuine DP failure.
  Status dp_failure(const char* what) {
    Status stop = scope.status();
    if (!stop.ok()) return fail(std::move(stop));
    return fail(Status::Internal(std::string(what) +
                                 " DP produced no answer"));
  }

  /// Marks the query answered; `cut` lands in the flight record.
  void ok(double cut) {
    code = StatusCode::kOk;
    cut_value = cut;
  }
};

}  // namespace

StatusOr<TreeServer> TreeServer::open(const std::string& path,
                                      serve::ServeOptions options) {
  auto state = serve::LoadedSnapshot::load_file(path);
  if (!state.ok()) return state.status();
  return from_state(std::move(*state), std::move(options));
}

TreeServer TreeServer::from_state(
    std::shared_ptr<const serve::LoadedSnapshot> state,
    serve::ServeOptions options) {
  auto shared = std::make_shared<ServerShared>();
  shared->state = std::move(state);
  shared->options = std::move(options);
  return TreeServer(std::move(shared));
}

Status TreeServer::swap(const std::string& path) {
  obs::TraceSpan span("serve.swap");
  // Load and validate entirely off the query path: a broken file leaves
  // the current epoch serving untouched.
  auto next = serve::LoadedSnapshot::load_file(path);
  if (!next.ok()) {
    obs::MetricsRegistry::global().counter("serve.swap_failures").add();
    return next.status();
  }
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->state = std::move(*next);
    ++shared_->epoch;
  }
  shared_->swaps.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::global().counter("serve.swaps").add();
  return Status::Ok();
}

std::shared_ptr<const serve::LoadedSnapshot> TreeServer::state() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state;
}

std::uint32_t TreeServer::epoch() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->epoch;
}

const serve::ServeOptions& TreeServer::options() const {
  return shared_->options;  // immutable after construction
}

StatusOr<TreeServer::MinCutAnswer> TreeServer::min_cut(
    std::int32_t s, std::int32_t t, const RunContext& ctx) const {
  obs::TraceSpan span("serve.min_cut");
  QueryObserver guard(*shared_, obs::QueryKind::kMinCut, ctx);
  if (Status st = guard.admission(); !st.ok()) return st;
  const serve::LoadedSnapshot& snap = *guard.state;
  if (!snap.gomory_hu.has_value()) {
    return guard.fail(
        Status::InvalidArgument("snapshot has no Gomory-Hu tree"));
  }
  const std::int32_t n = snap.original_vertices();
  if (s < 0 || s >= n || t < 0 || t >= n || s == t) {
    return guard.fail(Status::InvalidArgument(
        "min_cut needs distinct vertices in [0, n)"));
  }
  const std::int32_t stored_s = snap.to_stored(s);
  const std::int32_t stored_t = snap.to_stored(t);
  if (stored_s == stored_t) {
    return guard.fail(Status::InvalidArgument(
        "min_cut endpoints were merged by preprocessing; rebuild with prep "
        "off or exact-only"));
  }
  MinCutAnswer answer;
  answer.value = snap.gomory_hu->min_cut(stored_s, stored_t);
  // Per-pair s-t cuts survive only the cut-preserving rules (zero-edge
  // drop, duplicate merge); heavy contraction preserves just the global
  // min-cut value, so it demotes the answer to a dominating estimate.
  answer.exact =
      (snap.meta.artifact_flags & snapshot::kGomoryHuComplete) != 0 &&
      (!snap.has_prep || prep::stages_cut_preserving(snap.prep.stage_flags));
  guard.ok(answer.value);
  return answer;
}

StatusOr<TreeServer::SetCutAnswer> TreeServer::set_cut(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b,
    const RunContext& ctx) const {
  obs::TraceSpan span("serve.set_cut");
  QueryObserver guard(*shared_, obs::QueryKind::kSetCut, ctx);
  if (Status st = guard.admission(); !st.ok()) return st;
  const serve::LoadedSnapshot& snap = *guard.state;
  if (!snap.vertex_cut_tree.has_value()) {
    return guard.fail(
        Status::InvalidArgument("snapshot has no vertex cut tree"));
  }
  const std::int32_t n = snap.original_vertices();
  if (a.empty() || b.empty()) {
    return guard.fail(
        Status::InvalidArgument("set_cut needs non-empty sides"));
  }
  std::vector<bool> in_a(static_cast<std::size_t>(n), false);
  for (std::int32_t v : a) {
    if (v < 0 || v >= n) {
      return guard.fail(
          Status::InvalidArgument("set_cut vertex out of range"));
    }
    in_a[static_cast<std::size_t>(v)] = true;
  }
  for (std::int32_t v : b) {
    if (v < 0 || v >= n) {
      return guard.fail(
          Status::InvalidArgument("set_cut vertex out of range"));
    }
    if (in_a[static_cast<std::size_t>(v)]) {
      return guard.fail(
          Status::InvalidArgument("set_cut sides must be disjoint"));
    }
  }
  // Disjoint ids can still land on one tree node once preprocessing has
  // contracted them together (or the star expansion embedded them so);
  // the DP's terminal marking treats that as a caller error, so reject it
  // here as a Status instead.
  {
    const cuttree::Tree& tree = *snap.vertex_cut_tree;
    std::vector<bool> node_in_a(static_cast<std::size_t>(tree.num_nodes()),
                                false);
    for (std::int32_t v : a) {
      node_in_a[static_cast<std::size_t>(tree.node_of_vertex(v))] = true;
    }
    for (std::int32_t v : b) {
      if (node_in_a[static_cast<std::size_t>(tree.node_of_vertex(v))]) {
        return guard.fail(Status::InvalidArgument(
            "set_cut sides share a tree node (vertices merged by "
            "preprocessing)"));
      }
    }
  }
  SetCutAnswer answer;
  answer.value = cuttree::tree_vertex_cut_dp(*snap.vertex_cut_tree, a, b);
  guard.ok(answer.value);
  return answer;
}

StatusOr<TreeServer::BisectionAnswer> TreeServer::bisection(
    const RunContext& ctx) const {
  obs::TraceSpan span("serve.bisection");
  QueryObserver guard(*shared_, obs::QueryKind::kBisection, ctx);
  if (Status st = guard.admission(); !st.ok()) return st;
  const serve::LoadedSnapshot& snap = *guard.state;
  if (!snap.vertex_cut_tree.has_value()) {
    return guard.fail(
        Status::InvalidArgument("snapshot has no vertex cut tree"));
  }
  // Balance is over ORIGINAL vertices: the lifted tree embeds every
  // original id (a contracted cluster's members at one node), and the DP
  // counts multiplicities per node.
  const std::int32_t n = snap.original_vertices();
  if (n % 2 != 0) {
    return guard.fail(
        Status::InvalidArgument("bisection needs an even vertex count"));
  }
  std::vector<cuttree::VertexId> counted(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) counted[static_cast<std::size_t>(v)] = v;
  const auto result =
      cuttree::balanced_tree_bisection(*snap.vertex_cut_tree, counted);
  if (!result.valid) return guard.dp_failure("bisection");
  BisectionAnswer answer;
  answer.side = result.side;
  answer.tree_cut = result.tree_cut;
  answer.cut = snap.cut_weight(answer.side);
  guard.ok(answer.cut);
  return answer;
}

StatusOr<TreeServer::KwayAnswer> TreeServer::kway(std::int32_t k,
                                                  const RunContext& ctx) const {
  obs::TraceSpan span("serve.kway");
  QueryObserver guard(*shared_, obs::QueryKind::kKway, ctx);
  if (Status st = guard.admission(); !st.ok()) return st;
  const serve::LoadedSnapshot& snap = *guard.state;
  if (!snap.decomposition.has_value()) {
    return guard.fail(
        Status::InvalidArgument("snapshot has no decomposition tree"));
  }
  const std::int32_t n = snap.original_vertices();
  if (k < 2 || n % k != 0) {
    return guard.fail(Status::InvalidArgument(
        "kway needs k >= 2 dividing the vertex count"));
  }
  const std::int64_t block = n / k;
  KwayAnswer answer;
  answer.part.assign(static_cast<std::size_t>(n), k - 1);
  std::vector<cuttree::VertexId> remaining(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) {
    remaining[static_cast<std::size_t>(v)] = v;
  }
  // Peel one n/k block per round off the decomposition tree with the
  // exact edge-cut DP; the last block is the residue.
  for (std::int32_t round = 0; round + 1 < k; ++round) {
    const auto result =
        cuttree::tree_edge_partition(*snap.decomposition, remaining, block);
    if (!result.valid) return guard.dp_failure("kway");
    answer.tree_cut += result.tree_cut;
    std::vector<cuttree::VertexId> next;
    next.reserve(remaining.size() - static_cast<std::size_t>(block));
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (result.side[i]) {
        answer.part[static_cast<std::size_t>(remaining[i])] = round;
      } else {
        next.push_back(remaining[i]);
      }
    }
    remaining = std::move(next);
  }
  const auto cost = snap.kway_cost(answer.part);
  answer.cut = cost.first;
  answer.connectivity = cost.second;
  guard.ok(answer.cut);
  return answer;
}

TreeServer::Info TreeServer::info() const {
  Info info;
  const auto snap = state();
  info.num_vertices = snap->original_vertices();
  info.num_edges =
      snap->has_prep ? snap->prep.orig_num_edges : snap->meta.num_edges;
  info.stored_vertices = snap->meta.num_vertices;
  info.stored_edges = snap->meta.num_edges;
  info.preprocessed = snap->has_prep;
  info.prep_stage_flags = snap->has_prep ? snap->prep.stage_flags : 0u;
  info.prep_exact =
      snap->has_prep && prep::stages_exact(snap->prep.stage_flags);
  info.format_version = snap->snap.header().version;
  info.snapshot_bytes = snap->snap.size_bytes();
  info.has_gomory_hu = snap->gomory_hu.has_value();
  info.has_vertex_cut_tree = snap->vertex_cut_tree.has_value();
  info.has_decomposition = snap->decomposition.has_value();
  info.gomory_hu_exact =
      (snap->meta.artifact_flags & snapshot::kGomoryHuComplete) != 0;
  info.queries = shared_->queries.load(std::memory_order_relaxed);
  info.swaps = shared_->swaps.load(std::memory_order_relaxed);
  info.epoch = epoch();
  return info;
}

}  // namespace ht
