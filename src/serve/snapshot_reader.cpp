#include "serve/snapshot_reader.hpp"

#include <cstring>

#include "util/hash64.hpp"

namespace ht::snapshot {

namespace {

std::uint32_t byteswap32(std::uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

}  // namespace

const RawSection* Snapshot::find(SectionKind kind) const {
  for (const RawSection& s : toc_) {
    if (s.kind == static_cast<std::uint32_t>(kind)) return &s;
  }
  return nullptr;
}

std::string Snapshot::build_info() const {
  const RawSection* s = find(SectionKind::kBuildInfo);
  if (s == nullptr) return {};
  return std::string(reinterpret_cast<const char*>(data_ + s->offset),
                     static_cast<std::size_t>(s->byte_size));
}

Status Snapshot::parse() {
  // Header: size, magic, endianness, version window, self-checksum.
  if (size_ < sizeof(RawHeader)) {
    return Status::InvalidArgument("snapshot too small for a header (" +
                                   std::to_string(size_) + " bytes)");
  }
  std::memcpy(&header_, data_, sizeof(RawHeader));
  if (!magic_matches(header_.magic)) {
    return Status::InvalidArgument("not a snapshot: bad magic");
  }
  if (header_.endian_mark != kEndianMark) {
    if (header_.endian_mark == byteswap32(kEndianMark)) {
      return Status::InvalidArgument(
          "snapshot was written on an opposite-endianness host");
    }
    return Status::InvalidArgument("snapshot endian mark corrupt");
  }
  if (header_.version < kMinSupportedVersion ||
      header_.version > kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " +
        std::to_string(header_.version) + " (this build reads " +
        std::to_string(kMinSupportedVersion) + ".." +
        std::to_string(kFormatVersion) + ")");
  }
  if (header_.header_bytes != sizeof(RawHeader)) {
    return Status::InvalidArgument("snapshot header size mismatch");
  }
  const std::uint64_t expected_header_hash =
      hash64(data_, offsetof(RawHeader, header_checksum), kChecksumSeed);
  if (header_.header_checksum != expected_header_hash) {
    return Status::InvalidArgument("snapshot header checksum mismatch");
  }
  if (header_.file_size != size_) {
    return Status::InvalidArgument(
        "snapshot truncated: header claims " +
        std::to_string(header_.file_size) + " bytes, file has " +
        std::to_string(size_));
  }

  // TOC: bounds (overflow-safe), alignment, checksum.
  if (header_.section_count > kMaxSections) {
    return Status::InvalidArgument("snapshot section count implausible");
  }
  const std::uint64_t toc_bytes =
      static_cast<std::uint64_t>(header_.section_count) * sizeof(RawSection);
  if (header_.toc_offset < sizeof(RawHeader) ||
      header_.toc_offset % kSectionAlignment != 0 ||
      header_.toc_offset > size_ || toc_bytes > size_ - header_.toc_offset) {
    return Status::InvalidArgument("snapshot TOC out of bounds");
  }
  const unsigned char* toc_ptr = data_ + header_.toc_offset;
  if (header_.toc_checksum != hash64(toc_ptr, toc_bytes, kChecksumSeed)) {
    return Status::InvalidArgument("snapshot TOC checksum mismatch");
  }
  toc_.resize(header_.section_count);
  if (toc_bytes > 0) std::memcpy(toc_.data(), toc_ptr, toc_bytes);

  // Sections: alignment, bounds (overflow-safe), element-size
  // divisibility, duplicate kinds, payload checksums.
  bool has_meta = false;
  for (std::size_t i = 0; i < toc_.size(); ++i) {
    const RawSection& s = toc_[i];
    if (s.offset % kSectionAlignment != 0) {
      return Status::InvalidArgument("snapshot section misaligned");
    }
    if (s.offset > size_ || s.byte_size > size_ - s.offset) {
      return Status::InvalidArgument(
          "snapshot section out of bounds (offset " +
          std::to_string(s.offset) + ", size " +
          std::to_string(s.byte_size) + ", file " + std::to_string(size_) +
          ")");
    }
    if (s.elem_size == 0 || s.byte_size % s.elem_size != 0) {
      return Status::InvalidArgument(
          "snapshot section size not a multiple of its element size");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (toc_[j].kind == s.kind) {
        return Status::InvalidArgument("snapshot has duplicate sections");
      }
    }
    if (s.checksum != hash64(data_ + s.offset, s.byte_size, kChecksumSeed)) {
      return Status::InvalidArgument("snapshot section checksum mismatch");
    }
    if (s.kind == static_cast<std::uint32_t>(SectionKind::kMeta)) {
      if (s.byte_size != sizeof(MetaBlock)) {
        return Status::InvalidArgument("snapshot meta block size mismatch");
      }
      has_meta = true;
    }
  }
  if (!has_meta) {
    return Status::InvalidArgument("snapshot has no meta section");
  }
  return Status::Ok();
}

StatusOr<Snapshot> open(const std::string& path) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  Snapshot snap;
  snap.file_ = std::move(*file);
  snap.data_ = snap.file_.data();
  snap.size_ = snap.file_.size();
  if (Status s = snap.parse(); !s.ok()) return s;
  return snap;
}

StatusOr<Snapshot> open_bytes(std::string bytes) {
  Snapshot snap;
  snap.owned_ = std::move(bytes);
  snap.data_ = reinterpret_cast<const unsigned char*>(snap.owned_.data());
  snap.size_ = snap.owned_.size();
  if (Status s = snap.parse(); !s.ok()) return s;
  return snap;
}

}  // namespace ht::snapshot
