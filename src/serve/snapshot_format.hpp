// On-disk layout of .htsnap cut-tree snapshots (format version 1).
//
// A snapshot is the build/serve split's frozen artifact: everything the
// query path needs (hypergraph CSR, hypergraph Gomory–Hu tree, the
// star-expansion vertex cut tree, the clique-expansion decomposition
// tree) serialized once by an expensive offline build and then mmap'ed by
// any number of cheap TreeServer processes. The file is:
//
//   offset 0    RawHeader   (64 bytes, fixed, little-endian)
//   offset 64   RawSection  table ("TOC", section_count * 32 bytes)
//   ...         section payloads, each 8-byte aligned, in TOC order
//
// Every payload is a flat array of one primitive type (i32 / i64 / f64 /
// bytes) so a reader can hand out spans straight into the mapping —
// nothing is pointer-swizzled, nothing needs a deserialization pass.
// Integrity: hash64 (XXH64) over the header prefix, over the TOC, and
// over every payload; open() verifies all of them before any span is
// produced, so a truncated or bit-flipped file is a Status, never UB.
//
// Compatibility policy (enforced by the CI snapshot-compat job):
//  * readers accept any version in [kMinSupportedVersion, kFormatVersion];
//  * unknown section kinds are skipped (forward-compatible additions);
//  * any change to RawHeader/RawSection/MetaBlock layout or to the
//    serialized meaning of an existing section kind MUST bump
//    kFormatVersion — the checked-in golden fixtures under tests/data/
//    fail loudly when this rule is violated silently.
//
// Everything here targets little-endian hosts (x86-64, AArch64). The
// endian mark in the header lets a (hypothetical) big-endian reader
// reject the file with a clear message instead of mis-reading it.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace ht::snapshot {

inline constexpr char kMagic[8] = {'H', 'T', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr std::uint32_t kEndianMark = 0x0A0B0C0Du;
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kMinSupportedVersion = 1;
/// Seed fed to hash64 for every snapshot checksum, so a snapshot hash
/// never collides with a plain XXH64 of the same bytes by construction.
inline constexpr std::uint64_t kChecksumSeed = 0x68747472656573ULL;  // "httrees"
/// All section payloads and the TOC start on 8-byte boundaries so f64/i64
/// spans into the mapping are naturally aligned.
inline constexpr std::uint64_t kSectionAlignment = 8;
/// Sanity cap on section_count; a header claiming more is malformed.
inline constexpr std::uint32_t kMaxSections = 1u << 20;

/// One flat array per kind. Values are stable on-disk identifiers — never
/// renumber, only append (and bump kFormatVersion if the meaning of an
/// existing kind changes).
enum class SectionKind : std::uint32_t {
  kMeta = 1,             // MetaBlock[1]
  kVertexWeights = 2,    // f64[n]        hypergraph vertex weights
  kEdgeWeights = 3,      // f64[m]        hyperedge weights
  kPinOffsets = 4,       // i64[m+1]      CSR offsets into kPins
  kPins = 5,             // i32[pins]     CSR pin storage
  kGhParent = 6,         // i32[n]        hypergraph Gomory–Hu parents
  kGhParentCut = 7,      // f64[n]        min-cut(v, parent[v])
  kVctParent = 8,        // i32[t]        star-expansion vertex cut tree
  kVctNodeWeight = 9,    // f64[t]
  kVctEdgeWeight = 10,   // f64[t]
  kVctVertexNode = 11,   // i32[n + m]    star node -> tree node embedding
  kVctSeparators = 12,   // i32[s]        the separator set S (Section 3.1)
  kDecompParent = 13,    // i32[d]        clique-expansion decomposition tree
  kDecompNodeWeight = 14,  // f64[d]
  kDecompEdgeWeight = 15,  // f64[d]
  kDecompVertexNode = 16,  // i32[n]
  kBuildInfo = 17,       // u8[]          free-form provenance text
  // Preprocessing provenance (forward-compatible additions: readers
  // before these kinds existed skip them and serve the stored instance
  // in its own — reduced — id space).
  kPrepMeta = 18,        // PrepBlock[1]
  kPrepVertexMap = 19,   // i32[orig_n]   original vertex -> stored vertex
  kPrepStages = 20,      // u8[]          per-stage provenance text
};

/// Fixed 64-byte little-endian file header. header_checksum covers the
/// first 56 bytes (everything before itself).
struct RawHeader {
  char magic[8];
  std::uint32_t endian_mark;    // kEndianMark, or byte-swapped on the
                                // wrong-endian host that wrote it
  std::uint32_t version;        // kFormatVersion of the writer
  std::uint32_t section_count;
  std::uint32_t header_bytes;   // sizeof(RawHeader), belt and braces
  std::uint64_t file_size;      // total bytes; validated against the map
  std::uint64_t toc_offset;     // byte offset of the RawSection table
  std::uint64_t created_unix_s; // 0 unless the writer stamps a time
  std::uint64_t toc_checksum;   // hash64 over the TOC bytes
  std::uint64_t header_checksum;
};
static_assert(sizeof(RawHeader) == 64);
static_assert(std::is_trivially_copyable_v<RawHeader>);

/// One TOC entry. elem_size is the payload's primitive size (1, 4 or 8);
/// byte_size must be a multiple of it.
struct RawSection {
  std::uint32_t kind;       // SectionKind; unknown values are skipped
  std::uint32_t elem_size;
  std::uint64_t offset;     // absolute, 8-byte aligned
  std::uint64_t byte_size;
  std::uint64_t checksum;   // hash64 over the payload bytes
};
static_assert(sizeof(RawSection) == 32);
static_assert(std::is_trivially_copyable_v<RawSection>);

/// Artifact completeness bits in MetaBlock::artifact_flags. A clear bit
/// with the section present means the offline build was stopped early
/// (anytime semantics) — the artifact is still a valid dominating tree,
/// just of degraded quality, and the server reports answers from it as
/// inexact.
inline constexpr std::uint32_t kGomoryHuComplete = 1u << 0;
inline constexpr std::uint32_t kVertexCutTreeComplete = 1u << 1;
inline constexpr std::uint32_t kDecompositionComplete = 1u << 2;

/// Fixed-size metadata record (the kMeta section). Field order packs
/// 8-byte members first so the struct has no padding — a requirement for
/// deterministic bytes and stable checksums.
struct MetaBlock {
  std::uint64_t build_seed;
  std::int64_t num_pins;
  double total_edge_weight;
  double total_vertex_weight;
  double vct_separator_weight;   // w(S) of the Section 3.1 tree
  double vct_threshold;          // sparsity stopping threshold used
  std::int32_t num_vertices;     // n of the source hypergraph
  std::int32_t num_edges;        // m
  std::int32_t vct_num_nodes;    // nodes of the vertex cut tree (0 = absent)
  std::int32_t vct_num_pieces;
  std::int32_t decomp_num_nodes; // nodes of the decomposition tree
  std::int32_t gh_applied;       // exact parent cuts in the GH tree
  std::int32_t gh_root;
  std::int32_t vct_root;
  std::int32_t decomp_root;
  std::uint32_t artifact_flags;  // kGomoryHuComplete | ...
  std::uint32_t build_threads;   // always 0 in v1: thread count is kept out
                                 // of the artifact so snapshot bytes are
                                 // identical across thread counts
  std::uint32_t reserved;
};
static_assert(sizeof(MetaBlock) == 96);
static_assert(std::is_trivially_copyable_v<MetaBlock>);

/// Preprocessing provenance (the kPrepMeta section), written only when a
/// prep pipeline changed the instance at build time. The CSR and every
/// tree in the file then describe the REDUCED instance; kPrepVertexMap
/// (original -> stored vertex, surjective onto [0, num_vertices)) lifts
/// original ids onto it so TreeServer keeps answering in original ids.
/// stage_flags holds ht::prep::kStage* bits; mode is the PrepConfig::Mode
/// the build ran with. Like MetaBlock, 8-byte members first: no padding,
/// deterministic bytes.
struct PrepBlock {
  std::int64_t orig_num_pins;
  std::uint64_t prep_seed;       // the sparsifier's sampling seed
  std::int32_t orig_num_vertices;
  std::int32_t orig_num_edges;
  std::uint32_t stage_flags;
  std::uint32_t mode;
  std::uint32_t rounds;
  std::uint32_t reserved;
};
static_assert(sizeof(PrepBlock) == 40);
static_assert(std::is_trivially_copyable_v<PrepBlock>);

inline bool magic_matches(const char* bytes) {
  return std::memcmp(bytes, kMagic, sizeof(kMagic)) == 0;
}

/// Rounds `offset` up to the section alignment.
inline std::uint64_t align_up(std::uint64_t offset) {
  return (offset + (kSectionAlignment - 1)) & ~(kSectionAlignment - 1);
}

}  // namespace ht::snapshot
