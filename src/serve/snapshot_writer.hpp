// Serializer for .htsnap snapshots — the build side of the build/serve
// split (see snapshot_format.hpp for the layout).
//
// Usage:
//   snapshot::Writer w;
//   w.add_span(SectionKind::kVertexWeights, std::span<const double>(...));
//   ...
//   Status s = w.write_file("out.htsnap");   // atomic: tmp file + rename
//
// serialize() is deterministic: the same sections in the same order
// produce byte-identical output (created_unix_s defaults to 0 precisely
// so that two builds of the same instance can be compared with memcmp —
// the round-trip tests and the CI snapshot-compat job rely on this).
// Writers that want a provenance timestamp opt in via set_timestamp().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/snapshot_format.hpp"
#include "util/status.hpp"

namespace ht::snapshot {

/// Writes `bytes` to `path + ".tmp"` and renames it over `path` — the
/// atomic publish every snapshot producer uses, so a TreeServer
/// hot-swapping on the path never observes a half-written file.
Status write_bytes_atomic(const std::string& path, const std::string& bytes);

class Writer {
 public:
  /// Appends one section. Sections are written in insertion order; a
  /// duplicate kind is a programming error (checked at serialize time).
  void add_bytes(SectionKind kind, std::uint32_t elem_size, const void* data,
                 std::size_t byte_size);

  template <typename T>
  void add_span(SectionKind kind, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    add_bytes(kind, sizeof(T), values.data(), values.size_bytes());
  }

  void add_meta(const MetaBlock& meta) {
    add_bytes(SectionKind::kMeta, sizeof(MetaBlock), &meta,
              sizeof(MetaBlock));
  }

  void add_build_info(const std::string& text) {
    add_bytes(SectionKind::kBuildInfo, 1, text.data(), text.size());
  }

  /// Provenance timestamp stored in the header; leave unset (0) when
  /// byte-determinism across builds matters more than provenance.
  void set_timestamp(std::uint64_t unix_seconds) {
    created_unix_s_ = unix_seconds;
  }

  std::size_t section_count() const { return sections_.size(); }

  /// Renders the complete file image. kInvalidArgument on duplicate
  /// section kinds or an elem_size that does not divide a payload.
  StatusOr<std::string> serialize() const;

  /// serialize() + atomic publish: writes `path + ".tmp"` and renames it
  /// over `path`, so a TreeServer hot-swapping on the path never observes
  /// a half-written snapshot.
  Status write_file(const std::string& path) const;

 private:
  struct Pending {
    SectionKind kind;
    std::uint32_t elem_size;
    std::string payload;
  };
  std::vector<Pending> sections_;
  std::uint64_t created_unix_s_ = 0;
};

}  // namespace ht::snapshot
