// The offline build half of the build/serve split: run the expensive
// cut-tree machinery once over a hypergraph and freeze every artifact the
// query path needs into one .htsnap image.
//
// Artifacts per snapshot (each optional, recorded in the section table):
//  * the hypergraph itself (CSR pins + weights) — exact cut evaluation of
//    query answers, no flow required;
//  * the hypergraph Gomory–Hu tree — exact min s-t cut queries as a tree
//    walk (Section 3.2: singleton pairs admit an exact tree);
//  * the Section 3.1 vertex cut tree of the star expansion — Corollary 3
//    bisection and dominating delta_H(A, B) set-cut estimates as tree DPs
//    (Lemma 7 turns hyperedge cuts into vertex cuts);
//  * the decomposition tree of the clique expansion — balanced k-way
//    partition queries as edge-cut tree DPs (Lemma 1 distortion).
//
// build() honours the ambient RunContext with the library's usual anytime
// semantics: a deadline mid-build yields partial-but-valid dominating
// trees whose completeness bits are cleared in the MetaBlock, so a server
// can distinguish exact answers from degraded ones.
#pragma once

#include <cstdint>
#include <string>

#include "hypergraph/hypergraph.hpp"
#include "prep/prep.hpp"
#include "serve/snapshot_format.hpp"
#include "serve/snapshot_writer.hpp"
#include "util/status.hpp"

namespace ht::snapshot {

struct BuildOptions {
  std::uint64_t seed = 0x5eedULL;
  /// Forwarded to the Section 3.1 oracle (<= 0 means sqrt(log2 n)).
  double alpha = 0.0;
  bool include_gomory_hu = true;
  bool include_vertex_cut_tree = true;
  bool include_decomposition = true;
  /// Provenance stamp; 0 (default) keeps the output byte-deterministic.
  std::uint64_t timestamp_unix_s = 0;
  /// Free-form provenance text stored in the kBuildInfo section.
  std::string build_info;
  /// Preprocessing pipeline run before any artifact is built (default
  /// off). When a stage fires, the snapshot stores the REDUCED instance
  /// plus the kPrepMeta / kPrepVertexMap sections, and TreeServer lifts
  /// every answer back to original vertex ids.
  prep::PrepConfig prep;
};

struct BuildReport {
  /// Per-artifact builder statuses (Ok, or the run's stop status when the
  /// ambient RunContext ended that builder early — the artifact is still
  /// written, flagged incomplete).
  Status gomory_hu_status;
  Status vertex_cut_tree_status;
  Status decomposition_status;
  /// The prep pipeline's stop status (Ok when it ran to completion or was
  /// off; anytime: a deadline mid-pipeline keeps the stages already
  /// applied).
  Status prep_status;
  std::size_t bytes = 0;
  /// Threads the offline build ran with (flag > HT_THREADS > hardware).
  /// Deliberately NOT stored in the snapshot so bytes stay identical
  /// across thread counts.
  std::uint32_t build_threads = 0;
  std::int32_t vct_nodes = 0;
  std::int32_t decomp_nodes = 0;
  /// Stored (post-prep) instance sizes; equal to the input's when no prep
  /// stage fired.
  std::int32_t stored_vertices = 0;
  std::int32_t stored_edges = 0;
  std::uint32_t prep_stage_flags = 0;
  bool prep_applied = false;
  /// True when the pipeline preserved the global min-cut value (only
  /// exact rules fired).
  bool prep_exact = true;
  bool gomory_hu_present = false;
  bool vertex_cut_tree_present = false;
  bool decomposition_present = false;
};

/// Builds all requested artifacts and serializes them; returns the file
/// image. kInvalidArgument on an unusable input (not finalized, n < 2).
StatusOr<std::string> build(const hypergraph::Hypergraph& h,
                            const BuildOptions& options = {},
                            BuildReport* report = nullptr);

/// build() + atomic file publish (tmp + rename), ready for a TreeServer
/// to hot-swap onto.
Status write(const hypergraph::Hypergraph& h, const std::string& path,
             const BuildOptions& options = {}, BuildReport* report = nullptr);

}  // namespace ht::snapshot
