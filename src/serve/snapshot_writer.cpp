#include "serve/snapshot_writer.hpp"

#include <cstdio>
#include <cstring>

#include "util/hash64.hpp"

namespace ht::snapshot {

void Writer::add_bytes(SectionKind kind, std::uint32_t elem_size,
                       const void* data, std::size_t byte_size) {
  Pending p;
  p.kind = kind;
  p.elem_size = elem_size;
  p.payload.assign(static_cast<const char*>(data), byte_size);
  sections_.push_back(std::move(p));
}

StatusOr<std::string> Writer::serialize() const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Pending& s = sections_[i];
    if (s.elem_size == 0 || s.payload.size() % s.elem_size != 0) {
      return Status::InvalidArgument("section payload not a multiple of its "
                                     "element size");
    }
    for (std::size_t j = i + 1; j < sections_.size(); ++j) {
      if (sections_[j].kind == s.kind) {
        return Status::InvalidArgument("duplicate section kind");
      }
    }
  }

  // Lay out: header, TOC, then payloads at 8-byte aligned offsets.
  const std::uint64_t toc_offset = sizeof(RawHeader);
  std::vector<RawSection> toc(sections_.size());
  std::uint64_t cursor =
      toc_offset + sections_.size() * sizeof(RawSection);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    cursor = align_up(cursor);
    toc[i].kind = static_cast<std::uint32_t>(sections_[i].kind);
    toc[i].elem_size = sections_[i].elem_size;
    toc[i].offset = cursor;
    toc[i].byte_size = sections_[i].payload.size();
    toc[i].checksum = hash64(sections_[i].payload.data(),
                             sections_[i].payload.size(), kChecksumSeed);
    cursor += toc[i].byte_size;
  }
  const std::uint64_t file_size = cursor;

  RawHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.endian_mark = kEndianMark;
  header.version = kFormatVersion;
  header.section_count = static_cast<std::uint32_t>(sections_.size());
  header.header_bytes = sizeof(RawHeader);
  header.file_size = file_size;
  header.toc_offset = toc_offset;
  header.created_unix_s = created_unix_s_;
  header.toc_checksum =
      hash64(toc.data(), toc.size() * sizeof(RawSection), kChecksumSeed);
  header.header_checksum =
      hash64(&header, offsetof(RawHeader, header_checksum), kChecksumSeed);

  std::string out(file_size, '\0');
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + toc_offset, toc.data(),
              toc.size() * sizeof(RawSection));
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    std::memcpy(out.data() + toc[i].offset, sections_[i].payload.data(),
                sections_[i].payload.size());
  }
  return out;
}

Status write_bytes_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + tmp + " for writing");
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

Status Writer::write_file(const std::string& path) const {
  auto bytes = serialize();
  if (!bytes.ok()) return bytes.status();
  return write_bytes_atomic(path, *bytes);
}

}  // namespace ht::snapshot
