#include "serve/snapshot_build.hpp"

#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cuttree/decomposition_tree.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "obs/trace.hpp"
#include "reduction/clique_expansion.hpp"
#include "reduction/star_expansion.hpp"
#include "util/run_context.hpp"

namespace ht::snapshot {

namespace {

using hypergraph::EdgeId;
using hypergraph::Hypergraph;
using hypergraph::VertexId;

template <typename T>
std::span<const T> to_span(const std::vector<T>& v) {
  return {v.data(), v.size()};
}

/// Flattens a cuttree::Tree into the four snapshot arrays.
struct TreeArrays {
  std::vector<std::int32_t> parent;
  std::vector<double> node_weight;
  std::vector<double> edge_weight;
  std::vector<std::int32_t> vertex_node;

  explicit TreeArrays(const cuttree::Tree& t) {
    const auto n = static_cast<std::size_t>(t.num_nodes());
    parent.reserve(n);
    node_weight.reserve(n);
    edge_weight.reserve(n);
    for (cuttree::NodeId v = 0; v < t.num_nodes(); ++v) {
      parent.push_back(t.parent(v));
      node_weight.push_back(t.node_weight(v));
      edge_weight.push_back(t.edge_weight(v));
    }
    const auto vertices = static_cast<std::size_t>(t.num_embedded_vertices());
    vertex_node.reserve(vertices);
    for (cuttree::VertexId v = 0; v < t.num_embedded_vertices(); ++v) {
      vertex_node.push_back(t.node_of_vertex(v));
    }
  }
};

}  // namespace

StatusOr<std::string> build(const Hypergraph& h, const BuildOptions& options,
                            BuildReport* report) {
  obs::TraceSpan span("snapshot.build");
  if (!h.finalized()) {
    return Status::InvalidArgument("snapshot build needs a finalized "
                                   "hypergraph");
  }
  const VertexId n = h.num_vertices();
  if (n < 2) {
    return Status::InvalidArgument("snapshot build needs >= 2 vertices");
  }

  BuildReport local_report;
  BuildReport& rep = report != nullptr ? *report : local_report;
  rep = BuildReport{};

  // Preprocessing first: every artifact below is built on the reduced
  // instance, and the lifting map is frozen into the snapshot so the
  // server can keep answering in original vertex ids.
  prep::PrepResult prep_result;
  const Hypergraph* instance = &h;
  bool prep_applied = false;
  if (options.prep.mode != prep::PrepConfig::Mode::kOff) {
    auto pipeline = prep::run_pipeline(h, options.prep);
    rep.prep_status = pipeline.status();
    prep_result = std::move(*pipeline);
    prep_applied = prep_result.applied();
    if (prep_applied) instance = &prep_result.reduced;
  }
  const Hypergraph& stored = *instance;
  const VertexId stored_n = stored.num_vertices();
  const EdgeId stored_m = stored.num_edges();
  rep.stored_vertices = stored_n;
  rep.stored_edges = stored_m;
  rep.prep_applied = prep_applied;
  rep.prep_stage_flags = prep_result.stage_flags;
  rep.prep_exact = prep_result.exact();

  MetaBlock meta;
  std::memset(&meta, 0, sizeof(meta));
  meta.build_seed = options.seed;
  meta.num_vertices = stored_n;
  meta.num_edges = stored_m;
  meta.total_edge_weight = stored.total_edge_weight();
  meta.total_vertex_weight = stored.total_vertex_weight();
  // meta.build_threads stays 0: like created_unix_s, the live thread count
  // is provenance that would break byte-determinism across thread counts,
  // so it is reported in BuildReport instead of the checksummed artifact.
  rep.build_threads = static_cast<std::uint32_t>(env_default_threads());
  if (const RunState* run = current_run_state(); run != nullptr) {
    rep.build_threads =
        run->context().threads != 0
            ? static_cast<std::uint32_t>(run->context().threads)
            : rep.build_threads;
  }

  // Hypergraph CSR — rebuilt from the public accessors, written as the
  // flat arrays the reader serves zero-copy.
  std::vector<double> vertex_weights(static_cast<std::size_t>(stored_n));
  for (VertexId v = 0; v < stored_n; ++v) {
    vertex_weights[static_cast<std::size_t>(v)] = stored.vertex_weight(v);
  }
  std::vector<double> edge_weights(static_cast<std::size_t>(stored_m));
  std::vector<std::int64_t> pin_offsets;
  std::vector<std::int32_t> pins;
  pin_offsets.reserve(static_cast<std::size_t>(stored_m) + 1);
  pin_offsets.push_back(0);
  for (EdgeId e = 0; e < stored_m; ++e) {
    edge_weights[static_cast<std::size_t>(e)] = stored.edge_weight(e);
    for (VertexId v : stored.pins(e)) pins.push_back(v);
    pin_offsets.push_back(static_cast<std::int64_t>(pins.size()));
  }
  meta.num_pins = static_cast<std::int64_t>(pins.size());

  Writer writer;
  writer.set_timestamp(options.timestamp_unix_s);

  // Gomory–Hu tree: exact min s-t cut answers. Needs connectivity.
  std::vector<std::int32_t> gh_parent;
  std::vector<double> gh_parent_cut;
  if (options.include_gomory_hu && hypergraph::is_connected(stored)) {
    const auto gh = flow::hypergraph_gomory_hu_run(stored);
    rep.gomory_hu_status = gh.status;
    rep.gomory_hu_present = true;
    gh_parent.assign(gh.tree.parent.begin(), gh.tree.parent.end());
    gh_parent_cut = gh.tree.parent_cut;
    meta.gh_root = gh.tree.root;
    meta.gh_applied = gh.applied;
    if (gh.status.ok()) meta.artifact_flags |= kGomoryHuComplete;
  }

  // Section 3.1 vertex cut tree of the star expansion (Corollary 3's
  // serving artifact: bisection + set-cut queries become tree DPs).
  std::optional<TreeArrays> vct;
  std::vector<std::int32_t> vct_separators;
  if (options.include_vertex_cut_tree) {
    const auto star = reduction::star_expansion(stored);
    cuttree::VertexCutTreeOptions vct_options;
    vct_options.seed = options.seed;
    vct_options.alpha = options.alpha;
    const auto result =
        cuttree::build_vertex_cut_tree(star.graph, vct_options);
    rep.vertex_cut_tree_status = result.status;
    rep.vertex_cut_tree_present = true;
    rep.vct_nodes = result.tree.num_nodes();
    vct.emplace(result.tree);
    vct_separators.assign(result.separator_vertices.begin(),
                          result.separator_vertices.end());
    meta.vct_num_nodes = result.tree.num_nodes();
    meta.vct_num_pieces = result.num_pieces;
    meta.vct_separator_weight = result.separator_weight;
    meta.vct_threshold = result.threshold;
    meta.vct_root = result.tree.root();
    if (result.status.ok()) meta.artifact_flags |= kVertexCutTreeComplete;
  }

  // Decomposition tree of the clique expansion (k-way queries via the
  // edge-cut tree DP, Lemma 1 distortion).
  std::optional<TreeArrays> decomp;
  if (options.include_decomposition) {
    graph::Graph expansion = reduction::clique_expansion(stored);
    if (!expansion.finalized()) expansion.finalize();
    cuttree::DecompositionOptions decomp_options;
    decomp_options.seed = options.seed;
    auto result =
        cuttree::build_decomposition_tree_run(expansion, decomp_options);
    rep.decomposition_status = result.status;
    rep.decomposition_present = true;
    rep.decomp_nodes = result.tree.num_nodes();
    decomp.emplace(result.tree);
    meta.decomp_num_nodes = result.tree.num_nodes();
    meta.decomp_root = result.tree.root();
    if (result.status.ok()) meta.artifact_flags |= kDecompositionComplete;
  }

  writer.add_meta(meta);
  writer.add_span(SectionKind::kVertexWeights, to_span(vertex_weights));
  writer.add_span(SectionKind::kEdgeWeights, to_span(edge_weights));
  writer.add_span(SectionKind::kPinOffsets, to_span(pin_offsets));
  writer.add_span(SectionKind::kPins, to_span(pins));
  if (rep.gomory_hu_present) {
    writer.add_span(SectionKind::kGhParent, to_span(gh_parent));
    writer.add_span(SectionKind::kGhParentCut, to_span(gh_parent_cut));
  }
  if (vct.has_value()) {
    writer.add_span(SectionKind::kVctParent, to_span(vct->parent));
    writer.add_span(SectionKind::kVctNodeWeight, to_span(vct->node_weight));
    writer.add_span(SectionKind::kVctEdgeWeight, to_span(vct->edge_weight));
    writer.add_span(SectionKind::kVctVertexNode, to_span(vct->vertex_node));
    writer.add_span(SectionKind::kVctSeparators, to_span(vct_separators));
  }
  if (decomp.has_value()) {
    writer.add_span(SectionKind::kDecompParent, to_span(decomp->parent));
    writer.add_span(SectionKind::kDecompNodeWeight,
                    to_span(decomp->node_weight));
    writer.add_span(SectionKind::kDecompEdgeWeight,
                    to_span(decomp->edge_weight));
    writer.add_span(SectionKind::kDecompVertexNode,
                    to_span(decomp->vertex_node));
  }
  std::vector<std::int32_t> prep_map;
  std::string prep_stages_text;
  if (prep_applied) {
    PrepBlock prep_block;
    std::memset(&prep_block, 0, sizeof(prep_block));
    prep_block.orig_num_pins = prep_result.total_pins_before;
    prep_block.prep_seed = options.prep.sparsify.seed;
    prep_block.orig_num_vertices = n;
    prep_block.orig_num_edges = h.num_edges();
    prep_block.stage_flags = prep_result.stage_flags;
    prep_block.mode = static_cast<std::uint32_t>(options.prep.mode);
    prep_block.rounds = prep_result.rounds;
    writer.add_bytes(SectionKind::kPrepMeta, sizeof(PrepBlock), &prep_block,
                     sizeof(PrepBlock));
    prep_map.assign(prep_result.lifting.map().begin(),
                    prep_result.lifting.map().end());
    writer.add_span(SectionKind::kPrepVertexMap, to_span(prep_map));
    for (const prep::StageInfo& stage : prep_result.stages) {
      prep_stages_text += stage.name;
      prep_stages_text += stage.exact ? " exact" : " lossy";
      prep_stages_text += " n " + std::to_string(stage.vertices_before) +
                          "->" + std::to_string(stage.vertices_after);
      prep_stages_text += " m " + std::to_string(stage.edges_before) + "->" +
                          std::to_string(stage.edges_after);
      prep_stages_text += " pins " + std::to_string(stage.pins_before) +
                          "->" + std::to_string(stage.pins_after);
      prep_stages_text += " rounds " + std::to_string(stage.rounds) + "\n";
    }
    writer.add_bytes(SectionKind::kPrepStages, 1, prep_stages_text.data(),
                     prep_stages_text.size());
  }
  if (!options.build_info.empty()) {
    writer.add_build_info(options.build_info);
  }

  auto bytes = writer.serialize();
  if (!bytes.ok()) return bytes.status();
  rep.bytes = bytes->size();
  return bytes;
}

Status write(const Hypergraph& h, const std::string& path,
             const BuildOptions& options, BuildReport* report) {
  auto bytes = build(h, options, report);
  if (!bytes.ok()) return bytes.status();
  return write_bytes_atomic(path, *bytes);
}

}  // namespace ht::snapshot
