#include "ht/hypertree.hpp"

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace ht {

namespace {

/// Applies the context's seed override to an options struct that carries a
/// `seed` member (all Solver-reachable option structs do).
template <typename Options>
void apply_seed(const RunContext& ctx, Options& options) {
  if (ctx.seed.has_value()) options.seed = *ctx.seed;
}

}  // namespace

Solver::Solver() : Solver(RunContext::FromEnv()) {}

Solver::Solver(RunContext ctx) : ctx_(std::move(ctx)) {
  // An explicit trace sink turns tracing on for the whole process (the
  // tracer is global); the file is written by write_trace().
  if (!ctx_.trace_path.empty()) obs::set_tracing_enabled(true);
}

void Solver::prepare_pool() const {
  if (ctx_.threads != 0 && ThreadPool::global().size() != ctx_.threads)
    ThreadPool::reset_global(ctx_.threads);
}

StatusOr<cuttree::VertexCutTreeResult> Solver::build_vertex_cut_tree(
    const graph::Graph& g, cuttree::VertexCutTreeOptions options) {
  apply_seed(ctx_, options);
  prepare_pool();
  RunScope scope(ctx_);
  auto result = cuttree::build_vertex_cut_tree(g, options);
  return {scope.status(), std::move(result)};
}

StatusOr<cuttree::DecompositionTreeResult> Solver::decomposition_tree(
    const graph::Graph& g, cuttree::DecompositionOptions options) {
  apply_seed(ctx_, options);
  prepare_pool();
  RunScope scope(ctx_);
  auto result = cuttree::build_decomposition_tree_run(g, options);
  return {scope.status(), std::move(result)};
}

StatusOr<core::BisectionReport> Solver::bisect(
    const hypergraph::Hypergraph& h, core::Theorem1Options options) {
  apply_seed(ctx_, options);
  prepare_pool();
  RunScope scope(ctx_);
  auto report = core::bisect_theorem1(h, options);
  return {scope.status(), std::move(report)};
}

StatusOr<core::BisectionReport> Solver::bisect_via_cut_tree(
    const hypergraph::Hypergraph& h, core::CutTreeBisectionOptions options) {
  apply_seed(ctx_, options);
  prepare_pool();
  RunScope scope(ctx_);
  auto report = core::bisect_via_cut_tree(h, options);
  return {scope.status(), std::move(report)};
}

StatusOr<prep::PrepResult> Solver::preprocess(const hypergraph::Hypergraph& h,
                                              prep::PrepConfig config) {
  if (ctx_.seed.has_value()) config.sparsify.seed = *ctx_.seed;
  prepare_pool();
  RunScope scope(ctx_);
  return prep::run_pipeline(h, config);
}

Status Solver::build_snapshot(const hypergraph::Hypergraph& h,
                              const std::string& path,
                              snapshot::BuildOptions options,
                              snapshot::BuildReport* report) {
  apply_seed(ctx_, options);
  prepare_pool();
  RunScope scope(ctx_);
  Status write_status = snapshot::write(h, path, options, report);
  if (!write_status.ok()) return write_status;
  // Surface the run's stop reason (the snapshot is still valid — its
  // completeness flags record which artifacts were cut short).
  return scope.status();
}

StatusOr<flow::GomoryHuRunResult> Solver::gomory_hu(const graph::Graph& g) {
  prepare_pool();
  RunScope scope(ctx_);
  auto result = flow::gomory_hu_run(g);
  return {scope.status(), std::move(result)};
}

StatusOr<flow::HypergraphGomoryHuRunResult> Solver::gomory_hu(
    const hypergraph::Hypergraph& h) {
  prepare_pool();
  RunScope scope(ctx_);
  auto result = flow::hypergraph_gomory_hu_run(h);
  return {scope.status(), std::move(result)};
}

StatusOr<TreeServer> Solver::serve(const std::string& path,
                                   serve::ServeOptions options) {
  prepare_pool();
  return TreeServer::open(path, std::move(options));
}

StatusOr<hypergraph::Hypergraph> Solver::read_hmetis(
    const std::string& path) {
  return hypergraph::try_read_hmetis_file(path);
}

bool Solver::write_trace() const {
  if (ctx_.trace_path.empty()) return false;
  ThreadPool::global().wait_idle();
  return obs::Tracer::global().write_chrome_trace(ctx_.trace_path);
}

}  // namespace ht
