// The public facade: one header, one Solver.
//
// External consumers (examples/, downstream users) include only this
// header and drive everything through ht::Solver, which owns the run
// configuration (ht::RunContext: deadline, cancel token, piece/memory
// budgets, threads, seed, trace sink) and returns ht::StatusOr results
// with anytime semantics — a run stopped by its deadline still yields a
// usable best-so-far value, tagged with the stop status (see
// util/status.hpp for the ok()/has_value() contract).
//
// The per-layer headers underneath remain includable for internal code
// and tests, but their run-to-completion entry points are marked
// HT_LEGACY_API; building with -DHT_DEPRECATE_LEGACY (as the facade CI
// job does for examples/) turns any call to them into a deprecation
// diagnostic. Migration table: DESIGN.md §9.
#pragma once

#include <string>

// Vocabulary: status, run context, RNG streams.
#include "util/run_context.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

// Inputs: graphs, hypergraphs, generators, hMetis IO.
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/io.hpp"

// Stable algorithm surface.
#include "core/bisection.hpp"
#include "cuttree/decomposition_tree.hpp"
#include "cuttree/dot.hpp"
#include "cuttree/quality.hpp"
#include "cuttree/tree.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "flow/min_cut.hpp"
#include "hardness/dense_vs_random.hpp"
#include "partition/kway.hpp"
#include "partition/mku.hpp"
#include "reduction/clique_expansion.hpp"
#include "reduction/mku_bisection.hpp"
#include "reduction/star_expansion.hpp"

// Staged preprocessing (kernelization + cut sparsification) with id
// lifting.
#include "prep/prep.hpp"

// Persistence + serving: .htsnap snapshots and the TreeServer query
// surface (the build/serve split).
#include "serve/snapshot_build.hpp"
#include "serve/snapshot_reader.hpp"
#include "serve/snapshot_writer.hpp"
#include "serve/tree_server.hpp"

// Serving observability: registry exporters (Prometheus text / versioned
// JSON) and the always-on per-query flight recorder.
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"

// Presentation helpers used by the examples.
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ht {

/// The unified entry point. A Solver holds one RunContext and applies it
/// to every run: the context is bound to the run via a RunScope (so every
/// layer down to the flow engine's augmentation loops can poll it), the
/// thread pool is sized to context().threads, and context().seed — when
/// set — overrides the per-algorithm options seed.
///
/// Runs on the same Solver share process-wide caches (flow arenas,
/// WorkArena object caches); an interrupted run leaves them consistent,
/// so the next run reuses them with no leaked state.
///
/// All methods return StatusOr with anytime semantics: has_value() is
/// true even when ok() is false — the value is then a valid best-so-far
/// result (partial dominating tree, feasible degraded bisection) and
/// status() says why the run stopped (kDeadlineExceeded, kCancelled,
/// kResourceExhausted).
class Solver {
 public:
  /// Defaults from the environment (HT_THREADS, HT_TRACE) — the explicit
  /// replacement for the getenv calls that used to hide in the pool and
  /// tracer. Pass a custom RunContext to override.
  Solver();
  explicit Solver(RunContext ctx);

  RunContext& context() { return ctx_; }
  const RunContext& context() const { return ctx_; }

  /// Section 3.1 vertex cut tree (Theorem 5 quality) for a finalized
  /// graph. Anytime: pieces unpeeled at the stop become final pieces.
  StatusOr<cuttree::VertexCutTreeResult> build_vertex_cut_tree(
      const graph::Graph& g, cuttree::VertexCutTreeOptions options = {});

  /// Laminar decomposition tree (Räcke stand-in) for graph edge cuts.
  /// Anytime: clusters unsplit at the stop become stars of leaves.
  StatusOr<cuttree::DecompositionTreeResult> decomposition_tree(
      const graph::Graph& g, cuttree::DecompositionOptions options = {});

  /// Theorem 1 minimum hypergraph bisection. Anytime: always returns a
  /// feasible balanced partition, degrading to the trivial one when the
  /// stop precedes every OPT guess.
  StatusOr<core::BisectionReport> bisect(const hypergraph::Hypergraph& h,
                                         core::Theorem1Options options = {});

  /// Corollary 3 bisection through the vertex cut tree.
  StatusOr<core::BisectionReport> bisect_via_cut_tree(
      const hypergraph::Hypergraph& h,
      core::CutTreeBisectionOptions options = {});

  /// Gusfield Gomory–Hu tree for graph edge cuts. Anytime: vertices not
  /// applied at the stop keep pessimistic parent_cut == 0.
  StatusOr<flow::GomoryHuRunResult> gomory_hu(const graph::Graph& g);

  /// Gomory–Hu tree for hypergraph s-t cuts (Lawler-expansion oracle).
  StatusOr<flow::HypergraphGomoryHuRunResult> gomory_hu(
      const hypergraph::Hypergraph& h);

  /// Runs the staged preprocessing pipeline (kernelization, and under
  /// Mode::kAggressive label-propagation contraction + cut
  /// sparsification) on a finalized hypergraph. The result carries the
  /// reduced instance plus the composed original -> reduced Lifting and
  /// per-stage provenance. Anytime: a deadline mid-pipeline keeps the
  /// stages already applied (always a valid, consistent instance).
  StatusOr<prep::PrepResult> preprocess(const hypergraph::Hypergraph& h,
                                        prep::PrepConfig config = {});

  /// Builds every snapshot artifact (Gomory–Hu, vertex cut tree,
  /// decomposition tree) and atomically publishes the .htsnap file.
  /// Anytime: a deadline mid-build still writes a valid snapshot whose
  /// incomplete artifacts have their completeness flags cleared (the
  /// report carries the per-artifact statuses); the returned status is
  /// the run's stop status.
  Status build_snapshot(const hypergraph::Hypergraph& h,
                        const std::string& path,
                        snapshot::BuildOptions options = {},
                        snapshot::BuildReport* report = nullptr);

  /// Opens a .htsnap snapshot for serving, with the solver's thread
  /// configuration applied before any query runs and the serving
  /// observability knobs (flight recorder, slow-query threshold,
  /// on-error auto-dump) fixed for the server's lifetime. Per-query
  /// deadlines are passed to the individual query calls, not through the
  /// solver's context.
  StatusOr<TreeServer> serve(const std::string& path,
                             serve::ServeOptions options = {});

  /// Parses an hMetis file; kInvalidArgument (no value) on malformed
  /// input. No RunContext involvement — IO is not interruptible.
  static StatusOr<hypergraph::Hypergraph> read_hmetis(
      const std::string& path);

  /// Drains the pool and writes the Chrome trace to context().trace_path
  /// (no-op returning false when the path is empty or the write fails).
  bool write_trace() const;

 private:
  /// Sizes the global pool to ctx_.threads (when set) before a run.
  void prepare_pool() const;

  RunContext ctx_;
};

}  // namespace ht
