#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ht::lp {

namespace {

constexpr double kEps = 1e-9;

// Tableau layout: rows = constraints (all converted to equalities with
// slack/surplus variables), columns = structural + slack + artificial
// variables + RHS. Phase 1 minimizes the sum of artificials; phase 2
// optimizes the real objective over the feasible basis.
class Tableau {
 public:
  Tableau(std::int32_t num_vars, const std::vector<Constraint>& constraints) {
    rows_ = static_cast<std::int32_t>(constraints.size());
    num_structural_ = num_vars;
    // Count slack and artificial columns.
    std::int32_t slacks = 0, artificials = 0;
    for (const auto& c : constraints) {
      if (c.relation != Relation::kEqual) ++slacks;
      // >= rows and = rows need an artificial; <= rows with negative rhs
      // are normalized below and may too. We conservatively give every row
      // an artificial — simple and correct; phase 1 drives them out.
      ++artificials;
    }
    (void)slacks;
    cols_ = num_structural_;
    slack_base_ = cols_;
    for (const auto& c : constraints)
      if (c.relation != Relation::kEqual) ++cols_;
    art_base_ = cols_;
    cols_ += artificials;
    width_ = cols_ + 1;  // + RHS
    data_.assign(static_cast<std::size_t>(rows_) *
                     static_cast<std::size_t>(width_),
                 0.0);
    basis_.assign(static_cast<std::size_t>(rows_), -1);

    std::int32_t slack_col = slack_base_;
    for (std::int32_t r = 0; r < rows_; ++r) {
      const Constraint& c = constraints[static_cast<std::size_t>(r)];
      HT_CHECK(static_cast<std::int32_t>(c.coeffs.size()) == num_structural_);
      double sign = 1.0;
      double rhs = c.rhs;
      Relation rel = c.relation;
      if (rhs < 0) {
        sign = -1.0;
        rhs = -rhs;
        if (rel == Relation::kLessEqual)
          rel = Relation::kGreaterEqual;
        else if (rel == Relation::kGreaterEqual)
          rel = Relation::kLessEqual;
      }
      for (std::int32_t j = 0; j < num_structural_; ++j)
        at(r, j) = sign * c.coeffs[static_cast<std::size_t>(j)];
      if (c.relation != Relation::kEqual) {
        at(r, slack_col) = (rel == Relation::kLessEqual) ? 1.0 : -1.0;
        ++slack_col;
      }
      at(r, art_base_ + r) = 1.0;
      at(r, cols_) = rhs;
      basis_[static_cast<std::size_t>(r)] = art_base_ + r;
    }
  }

  /// Phase 1: returns true if a feasible basis was found.
  bool phase1() {
    // Objective: minimize sum of artificials == maximize -sum.
    std::vector<double> obj(static_cast<std::size_t>(cols_), 0.0);
    for (std::int32_t r = 0; r < rows_; ++r)
      obj[static_cast<std::size_t>(art_base_ + r)] = -1.0;
    double value = run(obj);
    if (value < -kEps) return false;
    // Pivot out any artificial still in the basis (degenerate rows).
    for (std::int32_t r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= art_base_) {
        bool pivoted = false;
        for (std::int32_t j = 0; j < art_base_ && !pivoted; ++j) {
          if (std::fabs(at(r, j)) > kEps) {
            pivot(r, j);
            pivoted = true;
          }
        }
        // If no pivot exists the row is all-zero: redundant; leave it.
      }
    }
    return true;
  }

  /// Phase 2: maximizes objective over structural variables.
  /// Returns {finite, value}; finite=false means unbounded.
  std::pair<bool, double> phase2(const std::vector<double>& objective) {
    std::vector<double> obj(static_cast<std::size_t>(cols_), 0.0);
    for (std::int32_t j = 0; j < num_structural_; ++j)
      obj[static_cast<std::size_t>(j)] = objective[static_cast<std::size_t>(j)];
    // Forbid artificials from re-entering.
    forbid_artificials_ = true;
    const double value = run(obj);
    if (unbounded_) return {false, 0.0};
    return {true, value};
  }

  std::vector<double> solution() const {
    std::vector<double> x(static_cast<std::size_t>(num_structural_), 0.0);
    for (std::int32_t r = 0; r < rows_; ++r) {
      const std::int32_t b = basis_[static_cast<std::size_t>(r)];
      if (b < num_structural_) x[static_cast<std::size_t>(b)] = at(r, cols_);
    }
    return x;
  }

 private:
  double& at(std::int32_t r, std::int32_t c) {
    return data_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(c)];
  }
  double at(std::int32_t r, std::int32_t c) const {
    return data_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(c)];
  }

  void pivot(std::int32_t pr, std::int32_t pc) {
    const double pivot_value = at(pr, pc);
    HT_CHECK(std::fabs(pivot_value) > kEps);
    for (std::int32_t c = 0; c <= cols_; ++c) at(pr, c) /= pivot_value;
    for (std::int32_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::fabs(factor) < kEps) continue;
      for (std::int32_t c = 0; c <= cols_; ++c)
        at(r, c) -= factor * at(pr, c);
    }
    basis_[static_cast<std::size_t>(pr)] = pc;
  }

  /// Runs simplex with the given (maximization) objective from the current
  /// basis; returns the objective value. Sets unbounded_.
  double run(const std::vector<double>& obj) {
    unbounded_ = false;
    // Reduced costs computed fresh each iteration (simple revised-style
    // computation on the dense tableau): z_j - c_j over basis.
    for (;;) {
      // reduced cost for column j: c_j - c_B^T B^{-1} A_j; with the tableau
      // already in basis form, B^{-1}A_j is just column j.
      std::int32_t enter = -1;
      for (std::int32_t j = 0; j < cols_; ++j) {
        if (forbid_artificials_ && j >= art_base_) continue;
        bool basic = false;
        for (std::int32_t r = 0; r < rows_ && !basic; ++r)
          basic = basis_[static_cast<std::size_t>(r)] == j;
        if (basic) continue;
        double reduced = obj[static_cast<std::size_t>(j)];
        for (std::int32_t r = 0; r < rows_; ++r)
          reduced -= obj[static_cast<std::size_t>(
                         basis_[static_cast<std::size_t>(r)])] *
                     at(r, j);
        if (reduced > kEps) {  // Bland: smallest improving index
          enter = j;
          break;
        }
      }
      if (enter == -1) break;
      std::int32_t leave = -1;
      double best_ratio = 0.0;
      for (std::int32_t r = 0; r < rows_; ++r) {
        if (at(r, enter) > kEps) {
          const double ratio = at(r, cols_) / at(r, enter);
          if (leave == -1 || ratio < best_ratio - kEps ||
              (std::fabs(ratio - best_ratio) <= kEps &&
               basis_[static_cast<std::size_t>(r)] <
                   basis_[static_cast<std::size_t>(leave)])) {
            leave = r;
            best_ratio = ratio;
          }
        }
      }
      if (leave == -1) {
        unbounded_ = true;
        return 0.0;
      }
      pivot(leave, enter);
    }
    double value = 0.0;
    for (std::int32_t r = 0; r < rows_; ++r)
      value += obj[static_cast<std::size_t>(
                   basis_[static_cast<std::size_t>(r)])] *
               at(r, cols_);
    return value;
  }

  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::int32_t width_ = 0;
  std::int32_t num_structural_ = 0;
  std::int32_t slack_base_ = 0;
  std::int32_t art_base_ = 0;
  std::vector<double> data_;
  std::vector<std::int32_t> basis_;
  bool forbid_artificials_ = false;
  bool unbounded_ = false;
};

}  // namespace

SimplexSolver::SimplexSolver(std::int32_t num_vars) : num_vars_(num_vars) {
  HT_CHECK(num_vars > 0);
}

void SimplexSolver::add_constraint(Constraint c) {
  HT_CHECK(static_cast<std::int32_t>(c.coeffs.size()) == num_vars_);
  constraints_.push_back(std::move(c));
}

LpResult SimplexSolver::maximize(const std::vector<double>& objective) const {
  HT_CHECK(static_cast<std::int32_t>(objective.size()) == num_vars_);
  LpResult out;
  if (constraints_.empty()) {
    // Feasible (x = 0); bounded iff no positive objective coefficient.
    for (double c : objective) {
      if (c > kEps) {
        out.status = LpStatus::kUnbounded;
        return out;
      }
    }
    out.status = LpStatus::kOptimal;
    out.objective = 0.0;
    out.solution.assign(static_cast<std::size_t>(num_vars_), 0.0);
    return out;
  }
  Tableau tableau(num_vars_, constraints_);
  if (!tableau.phase1()) {
    out.status = LpStatus::kInfeasible;
    return out;
  }
  auto [finite, value] = tableau.phase2(objective);
  if (!finite) {
    out.status = LpStatus::kUnbounded;
    return out;
  }
  out.status = LpStatus::kOptimal;
  out.objective = value;
  out.solution = tableau.solution();
  return out;
}

LpResult SimplexSolver::minimize(const std::vector<double>& objective) const {
  std::vector<double> neg(objective.size());
  for (std::size_t i = 0; i < objective.size(); ++i) neg[i] = -objective[i];
  LpResult r = maximize(neg);
  r.objective = -r.objective;
  return r;
}

}  // namespace ht::lp
