// Spectral machinery: Fiedler vectors via power iteration.
//
// The min-ratio-cut surrogate (DESIGN.md substitution table) sweeps the
// second eigenvector of the weighted graph Laplacian. We compute it with
// shifted power iteration + deflation against the constant vector — no
// external linear algebra dependency, deterministic given the seed.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ht::lp {

struct FiedlerResult {
  std::vector<double> vector;  // one entry per vertex, unit norm
  double eigenvalue = 0.0;     // corresponding Laplacian eigenvalue estimate
  int iterations = 0;
};

/// Approximates the Fiedler vector (eigenvector of the second-smallest
/// Laplacian eigenvalue) of a finalized graph using edge weights.
/// `vertex_mass` optionally weights the orthogonality constraint (pass the
/// vertex weights to bias sweeps toward balanced *weight*, or empty for
/// uniform mass).
FiedlerResult fiedler_vector(const ht::graph::Graph& g,
                             const std::vector<double>& vertex_mass,
                             ht::Rng& rng, int max_iterations = 3000,
                             double tolerance = 1e-8);

}  // namespace ht::lp
