#include "lp/spectral.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ht::lp {

using ht::graph::Graph;
using ht::graph::VertexId;

namespace {

// y = (c*I - L) x, where L is the weighted Laplacian. With c >= lambda_max,
// the smallest Laplacian eigenvalues become the largest of the shifted
// operator, so power iteration converges to them.
void apply_shifted(const Graph& g, double shift, const std::vector<double>& x,
                   std::vector<double>& y) {
  const std::size_t n = x.size();
  for (std::size_t v = 0; v < n; ++v) y[v] = shift * x[v];
  for (const auto& e : g.edges()) {
    const auto u = static_cast<std::size_t>(e.u);
    const auto v = static_cast<std::size_t>(e.v);
    // L x = D x - A x contributes w*(x_u - x_v) at u and w*(x_v - x_u) at v.
    y[u] -= e.weight * (x[u] - x[v]);
    y[v] -= e.weight * (x[v] - x[u]);
  }
}

void make_mass_orthogonal(std::vector<double>& x,
                          const std::vector<double>& mass) {
  double dot = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    dot += mass[i] * x[i];
    norm += mass[i] * mass[i];
  }
  if (norm <= 0.0) return;
  const double coeff = dot / norm;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= coeff * mass[i];
}

double normalize(std::vector<double>& x) {
  double norm = 0.0;
  for (double v : x) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0.0)
    for (double& v : x) v /= norm;
  return norm;
}

}  // namespace

FiedlerResult fiedler_vector(const Graph& g,
                             const std::vector<double>& vertex_mass,
                             ht::Rng& rng, int max_iterations,
                             double tolerance) {
  HT_CHECK(g.finalized());
  const auto n = static_cast<std::size_t>(g.num_vertices());
  HT_CHECK(n >= 2);
  std::vector<double> mass = vertex_mass;
  if (mass.empty()) mass.assign(n, 1.0);
  HT_CHECK(mass.size() == n);

  // Gershgorin bound: lambda_max(L) <= 2 * max weighted degree.
  std::vector<double> wdeg(n, 0.0);
  for (const auto& e : g.edges()) {
    wdeg[static_cast<std::size_t>(e.u)] += e.weight;
    wdeg[static_cast<std::size_t>(e.v)] += e.weight;
  }
  double shift = 0.0;
  for (double d : wdeg) shift = std::max(shift, 2.0 * d);
  shift += 1.0;  // keep the operator strictly positive definite

  FiedlerResult out;
  std::vector<double> x(n), y(n);
  for (double& v : x) v = rng.next_double() - 0.5;
  make_mass_orthogonal(x, mass);
  normalize(x);

  double prev_eig = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    apply_shifted(g, shift, x, y);
    make_mass_orthogonal(y, mass);
    const double norm = normalize(y);
    x.swap(y);
    out.iterations = it + 1;
    const double eig = shift - norm;  // Laplacian eigenvalue estimate
    if (it > 8 && std::fabs(eig - prev_eig) < tolerance) {
      prev_eig = eig;
      break;
    }
    prev_eig = eig;
  }
  out.vector = std::move(x);
  out.eigenvalue = prev_eig;
  return out;
}

}  // namespace ht::lp
