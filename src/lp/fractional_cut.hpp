// LP relaxation of the minimum vertex cut, solved by constraint generation.
//
//   minimize   sum_v w(v) * x_v
//   subject to sum_{v in P} x_v >= 1   for every A-B path P,
//              x_v >= 0.
//
// By LP duality this equals the maximum fractional vertex-capacitated flow,
// and by Menger/max-flow-min-cut the optimum is integral and equals
// gamma_G(A,B) — giving an independent (simplex-based) cross-check of the
// node-splitting flow solver. Violated path constraints are found with a
// node-weighted Dijkstra; small instances only (dense simplex).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ht::lp {

struct FractionalCutResult {
  double value = 0.0;
  std::vector<double> x;  // fractional cut variables
  int constraints_generated = 0;
  bool converged = false;
};

FractionalCutResult fractional_vertex_cut(
    const ht::graph::Graph& g, const std::vector<ht::graph::VertexId>& a,
    const std::vector<ht::graph::VertexId>& b, int max_iterations = 200);

}  // namespace ht::lp
