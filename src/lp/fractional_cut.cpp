#include "lp/fractional_cut.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace ht::lp {

using ht::graph::Graph;
using ht::graph::VertexId;

namespace {

/// Shortest A-B path where entering vertex v costs x_v; returns the path
/// (vertex sequence) and its cost, or an empty path if disconnected.
std::pair<std::vector<VertexId>, double> cheapest_path(
    const Graph& g, const std::vector<double>& x,
    const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<VertexId> prev(n, -1);
  std::vector<bool> is_target(n, false);
  for (VertexId v : b) is_target[static_cast<std::size_t>(v)] = true;
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (VertexId v : a) {
    const double d = x[static_cast<std::size_t>(v)];
    if (d < dist[static_cast<std::size_t>(v)]) {
      dist[static_cast<std::size_t>(v)] = d;
      heap.push({d, v});
    }
  }
  VertexId reached = -1;
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(v)] + 1e-15) continue;
    if (is_target[static_cast<std::size_t>(v)]) {
      reached = v;
      break;
    }
    for (const auto& adj : g.neighbors(v)) {
      const double nd = d + x[static_cast<std::size_t>(adj.to)];
      if (nd + 1e-15 < dist[static_cast<std::size_t>(adj.to)]) {
        dist[static_cast<std::size_t>(adj.to)] = nd;
        prev[static_cast<std::size_t>(adj.to)] = v;
        heap.push({nd, adj.to});
      }
    }
  }
  if (reached == -1) return {{}, 0.0};
  std::vector<VertexId> path;
  for (VertexId v = reached; v != -1; v = prev[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return {path, dist[static_cast<std::size_t>(reached)]};
}

}  // namespace

FractionalCutResult fractional_vertex_cut(const Graph& g,
                                          const std::vector<VertexId>& a,
                                          const std::vector<VertexId>& b,
                                          int max_iterations) {
  HT_CHECK(g.finalized());
  HT_CHECK(!a.empty() && !b.empty());
  const auto n = g.num_vertices();
  FractionalCutResult out;
  out.x.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<double> objective(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    objective[static_cast<std::size_t>(v)] = g.vertex_weight(v);

  std::vector<std::vector<VertexId>> paths;
  for (int it = 0; it < max_iterations; ++it) {
    auto [path, cost] = cheapest_path(g, out.x, a, b);
    if (path.empty()) {
      // A and B already disconnected: the zero vector is optimal.
      out.converged = true;
      break;
    }
    if (cost >= 1.0 - 1e-7) {
      out.converged = true;
      break;
    }
    paths.push_back(std::move(path));
    SimplexSolver solver(n);
    for (const auto& p : paths) {
      Constraint c;
      c.coeffs.assign(static_cast<std::size_t>(n), 0.0);
      for (VertexId v : p) c.coeffs[static_cast<std::size_t>(v)] = 1.0;
      c.relation = Relation::kGreaterEqual;
      c.rhs = 1.0;
      solver.add_constraint(std::move(c));
    }
    const LpResult lp = solver.minimize(objective);
    HT_CHECK_MSG(lp.status == LpStatus::kOptimal,
                 "path-cover LP should always be feasible and bounded");
    out.x = lp.solution;
    out.value = lp.objective;
    out.constraints_generated = static_cast<int>(paths.size());
  }
  return out;
}

}  // namespace ht::lp
