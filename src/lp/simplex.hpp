// Dense two-phase primal simplex with Bland's rule.
//
// Solves   max c^T x   s.t.  A x (<=|=|>=) b,  x >= 0.
//
// This is the "LP machinery" consumed by the LP-relaxation sparsest-cut
// baseline (partition/min_ratio_cut) on small instances, and exercised
// standalone by tests. Bland's rule guarantees termination; dense tableaus
// are fine at the instance sizes where the LP baseline is enabled.
#pragma once

#include <cstdint>
#include <vector>

namespace ht::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct Constraint {
  std::vector<double> coeffs;  // one per variable
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> solution;
};

class SimplexSolver {
 public:
  /// num_vars variables, all constrained >= 0.
  explicit SimplexSolver(std::int32_t num_vars);

  void add_constraint(Constraint c);

  /// Maximizes objective^T x.
  LpResult maximize(const std::vector<double>& objective) const;

  /// Minimizes objective^T x (negates and maximizes).
  LpResult minimize(const std::vector<double>& objective) const;

 private:
  std::int32_t num_vars_;
  std::vector<Constraint> constraints_;
};

}  // namespace ht::lp
