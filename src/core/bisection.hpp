// Minimum Hypergraph Bisection — the paper's primary contribution.
//
//  * bisect_theorem1: the two-phase ~O(sqrt(n)) algorithm of Theorem 1
//    (OPT guessing; phase 1 = recursive sparsest-cut peeling with stopping
//    sparsity alpha*OPT/k; phase 2 = per-piece unbalanced-k-cut profiles
//    combined by a dynamic program; k = sqrt(alpha*n)).
//  * bisect_small_edges: Theorem 2's small-hyperedge branch — Lemma 1
//    clique expansion + graph bisection, paying hmax/2 distortion.
//  * bisect_large_edges: Theorem 2's large-hyperedge branch — Theorem 1
//    with k = min hyperedge size, so phase 2 degenerates toward MkU.
//  * bisect_via_cut_tree: Corollary 3 — star expansion, Section 3.1 vertex
//    cut tree, balanced tree DP.
//
// Every path re-evaluates its final partition with the exact combinatorial
// delta_H, so reported cuts are true costs regardless of internal
// approximations.
#pragma once

#include <cstdint>
#include <string>

#include "hypergraph/hypergraph.hpp"
#include "partition/fm.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ht::core {

struct BisectionReport {
  ht::partition::BisectionSolution solution;
  std::string algorithm;
  // Diagnostics (Theorem 1 path).
  double opt_guess = 0.0;       // the OPT guess that won
  std::int32_t phase1_pieces = 0;
  double phase1_cut = 0.0;      // hyperedge weight cut while peeling
  double dp_estimate = 0.0;     // internal DP objective (upper-bound bookkeeping)
  /// Ok on a full run. Under an early stop (deadline/cancel/budget from
  /// the ambient RunContext) the solvers still return a *feasible*
  /// balanced partition — degraded quality, never an invalid one — tagged
  /// with the stop status.
  Status status;
};

struct Theorem1Options {
  /// Assumed sparsest-cut oracle quality; <= 0 means sqrt(log2 n).
  double alpha = 0.0;
  /// Overrides k = sqrt(alpha * n) when > 0 (Theorem 2's large-edge branch
  /// passes the minimum hyperedge size here).
  double k_override = 0.0;
  /// Number of geometric OPT guesses.
  std::int32_t guesses = 10;
  std::uint64_t seed = 0x5eedULL;
  /// Refine the winning partition with one FM pass (on by default; the
  /// ablation bench turns it off to isolate the paper's algorithm).
  bool fm_polish = true;
};

BisectionReport bisect_theorem1(const ht::hypergraph::Hypergraph& h,
                                const Theorem1Options& options = {});

struct SmallEdgeOptions {
  std::uint64_t seed = 0x5eedULL;
  std::int32_t fm_starts = 8;
};
BisectionReport bisect_small_edges(const ht::hypergraph::Hypergraph& h,
                                   const SmallEdgeOptions& options = {});

BisectionReport bisect_large_edges(const ht::hypergraph::Hypergraph& h,
                                   const Theorem1Options& options = {});

struct CutTreeBisectionOptions {
  std::uint64_t seed = 0x5eedULL;
  /// Forwarded to the Section 3.1 builder.
  double alpha = 0.0;
  bool fm_polish = true;
};
BisectionReport bisect_via_cut_tree(const ht::hypergraph::Hypergraph& h,
                                    const CutTreeBisectionOptions& options = {});

/// Diagnostics for Lemma 2 / Lemma 3 of the paper: run phase 1 at the
/// threshold alpha*opt/k against a KNOWN optimal coloring (e.g. the
/// planted bisection) and report the quantities the two lemmas bound.
struct Phase1Diagnostics {
  std::int32_t pieces = 0;
  double cut_weight = 0.0;       // Lemma 2: <= alpha * n * log(n) * opt / k
  std::int64_t minority_count = 0;  // Lemma 3: < k
  double lemma2_bound = 0.0;
  double lemma3_bound = 0.0;     // k
};
Phase1Diagnostics phase1_diagnostics(const ht::hypergraph::Hypergraph& h,
                                     double opt,
                                     const std::vector<bool>& optimal_side,
                                     double alpha = 0.0, double k = 0.0,
                                     std::uint64_t seed = 0x5eedULL);

/// Baselines for the benches: multi-start FM and a uniformly random
/// balanced partition (averaged over `samples`).
BisectionReport bisect_fm_baseline(const ht::hypergraph::Hypergraph& h,
                                   ht::Rng& rng, int starts = 8);
BisectionReport bisect_random_baseline(const ht::hypergraph::Hypergraph& h,
                                       ht::Rng& rng, int samples = 16);

}  // namespace ht::core
