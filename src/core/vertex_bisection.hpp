// Minimum Vertex Bisection: remove a minimum-weight vertex set X so that
// the remaining graph splits into two parts of at most n/2 vertices each
// with no edges between them.
//
// This is the vertex-cut column of Table 1: the same cut-tree machinery
// gives an upper bound O(sqrt(n w_avg) log^{5/4} n) through Section 3.1
// trees + the balanced tree DP, and the paper's lower bounds (Lemma 8,
// Theorem 8) cap what any single tree can achieve. (The paper defers the
// NP-hardness details of vertex bisection to its full version; the
// algorithmic side is fully implemented here.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ht::core {

struct VertexBisectionResult {
  std::vector<ht::graph::VertexId> side_a;
  std::vector<ht::graph::VertexId> side_b;
  std::vector<ht::graph::VertexId> separator;
  double separator_weight = 0.0;
  std::string algorithm;
  bool valid = false;
};

/// Checks the separator invariants (partition, no A-B edge, balance) and
/// recomputes the weight. Throws on violation.
void validate_vertex_bisection(const ht::graph::Graph& g,
                               const VertexBisectionResult& result);

/// Exact optimum by separator enumeration (n <= ~18).
VertexBisectionResult exact_vertex_bisection(const ht::graph::Graph& g);

struct VertexBisectionOptions {
  std::uint64_t seed = 0x5eedULL;
  /// Forwarded to the Section 3.1 tree builder.
  double alpha = 0.0;
  double threshold_override = 0.0;
};

/// The cut-tree pipeline: Section 3.1 vertex cut tree of G, balanced tree
/// DP over all vertices, then an exact gamma(A,B) flow to turn the tree's
/// side assignment into a true separator (domination guarantees the flow
/// cut never exceeds the DP objective).
VertexBisectionResult vertex_bisection_via_cut_tree(
    const ht::graph::Graph& g, const VertexBisectionOptions& options = {});

/// Spectral baseline: Fiedler sweep to a balanced side assignment, then
/// the same exact gamma(A,B) extraction.
VertexBisectionResult vertex_bisection_spectral(const ht::graph::Graph& g,
                                                ht::Rng& rng);

}  // namespace ht::core
