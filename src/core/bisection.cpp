#include "core/bisection.hpp"

#include <algorithm>
#include <cmath>

#include "cuttree/tree_bisection.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "hypergraph/subset_view.hpp"
#include "obs/trace.hpp"
#include "partition/graph_bisection.hpp"
#include "partition/sparsest_cut.hpp"
#include "partition/unbalanced_kcut.hpp"
#include "reduction/clique_expansion.hpp"
#include "reduction/star_expansion.hpp"
#include "util/perf_counters.hpp"
#include "util/run_context.hpp"
#include "util/wavefront.hpp"

namespace ht::core {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;
using ht::partition::BisectionSolution;

namespace {

constexpr double kHuge = 1e200;

struct Phase1Result {
  std::vector<std::vector<VertexId>> pieces;  // original vertex ids
  double cut_weight = 0.0;                    // hyperedges cut while peeling
};

/// Phase 1 of Theorem 1: recursively peel sparsest cuts while a cut of
/// sparsity below `threshold` exists. Pieces peel in parallel over the
/// pool; each piece's oracle stream derives from (seed, piece index), so
/// every thread count yields the same peeling.
Phase1Result phase1_peel(const Hypergraph& h, double threshold,
                         std::uint64_t seed) {
  struct PieceOutcome {
    bool is_final = false;
    double cut = 0.0;
    std::vector<VertexId> small, large;
  };
  Phase1Result out;
  ht::obs::TraceSpan span("theorem1.phase1_peel");
  span.arg("n", h.num_vertices());
  span.arg("threshold", threshold);
  ht::PhaseTimer phase("theorem1.phase1_peel");
  std::vector<std::vector<VertexId>> roots(1);
  roots[0].resize(static_cast<std::size_t>(h.num_vertices()));
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    roots[0][static_cast<std::size_t>(v)] = v;

  const auto map = [&](const std::vector<VertexId>& piece,
                       ht::Rng& rng) -> PieceOutcome {
    PieceOutcome result;
    // A piece mapped after the run stopped skips its oracle: the fold loop
    // drains it into a final piece anyway.
    if (piece.size() < 2 || ht::run_stopped()) {
      result.is_final = true;
      return result;
    }
    // View of the piece; the sparsest-cut oracle needs a concrete
    // hypergraph, so this is a materialization boundary.
    const ht::hypergraph::SubsetView view(h, piece);
    const auto sub = view.materialize();
    ht::partition::SparsestCutResult sc;
    if (piece.size() <= 14) {
      sc = ht::partition::sparsest_hyperedge_cut_exact(sub.hypergraph);
    } else {
      sc = ht::partition::sparsest_hyperedge_cut(sub.hypergraph, rng);
    }
    if (!sc.valid || sc.sparsity >= threshold) {
      result.is_final = true;
      return result;
    }
    result.cut = sc.cut;
    std::vector<bool> in_small(piece.size(), false);
    for (VertexId local : sc.smaller_side)
      in_small[static_cast<std::size_t>(local)] = true;
    for (std::size_t local = 0; local < piece.size(); ++local) {
      (in_small[local] ? result.small : result.large)
          .push_back(view.old_of(static_cast<VertexId>(local)));
    }
    return result;
  };
  const auto fold = [&](std::vector<VertexId>&& piece, PieceOutcome&& result,
                        const auto& emit) {
    if (result.is_final) {
      out.pieces.push_back(std::move(piece));
      return;
    }
    out.cut_weight += result.cut;
    emit(std::move(result.small));
    emit(std::move(result.large));
  };
  // Early stop: pieces still queued become final pieces — coarser peeling,
  // but phase 2 still sees a full partition of the vertex set.
  const auto drain = [&](std::vector<VertexId>&& piece) {
    if (!piece.empty()) out.pieces.push_back(std::move(piece));
  };
  const ht::Status status =
      ht::parallel_wavefront<std::vector<VertexId>, PieceOutcome>(
          std::move(roots), seed, map, fold, drain);
  span.arg("stopped", status.ok() ? 0 : 1);
  span.arg("pieces", out.pieces.size());
  span.arg("cut_weight", out.cut_weight);
  return out;
}

struct PieceProfile {
  std::vector<VertexId> vertices;           // original ids
  std::vector<double> cost;                 // cost[k], k in [0, kmax]
  std::vector<std::vector<VertexId>> sets;  // witness sets (original ids)
};

/// Per-piece unbalanced-k-cut cost profiles, mapped back to original ids.
/// k ranges to min(|piece|, k_cap); removing the entire piece (k = |piece|)
/// is free of *internal* cut cost and is included when |piece| <= k_cap.
PieceProfile build_piece_profile(const Hypergraph& h,
                                 std::vector<VertexId> piece,
                                 std::int32_t k_cap, ht::Rng& rng) {
  PieceProfile out;
  out.vertices = std::move(piece);
  const auto size = static_cast<std::int32_t>(out.vertices.size());
  const std::int32_t kmax = std::min(size, k_cap);
  ht::obs::TraceSpan span("theorem1.piece_profile");
  span.arg("piece_size", size);
  span.arg("kmax", kmax);
  out.cost.assign(static_cast<std::size_t>(kmax) + 1, kHuge);
  out.sets.resize(static_cast<std::size_t>(kmax) + 1);
  out.cost[0] = 0.0;
  if (kmax == 0) return out;
  if (ht::run_stopped()) {
    // The run already latched a stop: skip the k-cut oracle and return the
    // cheapest valid profile — keep the piece whole (k = 0), or remove it
    // entirely when the cap allows. The DP stays feasible because k = 0 on
    // either side is always offered.
    if (kmax == size) {
      out.cost[static_cast<std::size_t>(size)] = 0.0;
      out.sets[static_cast<std::size_t>(size)] = out.vertices;
    }
    span.arg("stopped", 1);
    return out;
  }
  // One view, one materialization for the whole profile: both the k-cut
  // oracle and the gap-filling loop below read the same induced copy
  // (previously the loop rebuilt it per missing k).
  const auto sub =
      ht::hypergraph::SubsetView(h, out.vertices).materialize();
  const std::int32_t internal_kmax = std::min(kmax, size - 1);
  if (internal_kmax >= 1 && sub.hypergraph.num_vertices() >= 2) {
    auto profile = ht::partition::unbalanced_kcut_profile(
        sub.hypergraph, internal_kmax, rng);
    for (std::int32_t k = 1;
         k < static_cast<std::int32_t>(profile.cost.size()); ++k) {
      const auto idx = static_cast<std::size_t>(k);
      if (profile.cost[idx] >= kHuge || profile.sets[idx].empty()) continue;
      out.cost[idx] = profile.cost[idx];
      auto& set = out.sets[idx];
      set.reserve(profile.sets[idx].size());
      for (VertexId local : profile.sets[idx])
        set.push_back(sub.old_of_new[static_cast<std::size_t>(local)]);
    }
  } else if (internal_kmax >= 1) {
    // Piece with < 2 effective vertices in the sub-hypergraph cannot
    // happen (induced keeps all vertices), kept for safety.
    for (std::int32_t k = 1; k <= internal_kmax; ++k) {
      out.cost[static_cast<std::size_t>(k)] = 0.0;
      out.sets[static_cast<std::size_t>(k)].assign(
          out.vertices.begin(), out.vertices.begin() + k);
    }
  }
  if (kmax == size) {
    // Remove the whole piece: no internal hyperedge is cut by the removal
    // itself (cross-piece edges were paid in phase 1).
    out.cost[static_cast<std::size_t>(size)] = 0.0;
    out.sets[static_cast<std::size_t>(size)] = out.vertices;
  }
  // Profiles should be usable at any k the DP may pick: fill gaps with
  // prefix-extensions of the nearest smaller witness. The view supplies
  // O(1) old-id -> local-id lookups; it is created after the oracle calls
  // above so its arena remap stays live through this serial loop.
  const ht::hypergraph::SubsetView local_ids(h, out.vertices);
  for (std::int32_t k = 1;
       k < static_cast<std::int32_t>(out.cost.size()); ++k) {
    const auto idx = static_cast<std::size_t>(k);
    if (out.cost[idx] < kHuge) continue;
    // Extend the previous witness by arbitrary extra vertices.
    const auto& prev = out.sets[idx - 1];
    std::vector<bool> used(out.vertices.size(), false);
    std::vector<VertexId> set = prev;
    for (VertexId v : prev)
      used[static_cast<std::size_t>(local_ids.local_of(v))] = true;
    for (std::size_t i = 0;
         i < out.vertices.size() &&
         set.size() < static_cast<std::size_t>(k);
         ++i) {
      if (!used[i]) set.push_back(out.vertices[i]);
    }
    if (set.size() == static_cast<std::size_t>(k)) {
      // Cost: cut of the extended set inside the piece, evaluated on the
      // single materialized copy from above.
      std::vector<VertexId> local_set;
      for (VertexId v : set) local_set.push_back(local_ids.local_of(v));
      out.cost[idx] = sub.hypergraph.cut_weight(local_set);
      out.sets[idx] = std::move(set);
    }
  }
  return out;
}

struct DpChoice {
  std::int16_t k = -1;
  std::int8_t side = 0;
};

/// Phase 2 dynamic program over pieces. Returns a balanced side indicator
/// or an empty vector if no feasible combination exists under the k caps.
std::vector<bool> phase2_dp(const Hypergraph& h,
                            const std::vector<PieceProfile>& profiles,
                            double* dp_estimate) {
  const VertexId n = h.num_vertices();
  const VertexId half = n / 2;
  std::int32_t r_max = 0;
  for (const auto& p : profiles)
    r_max += static_cast<std::int32_t>(p.cost.size()) - 1;
  r_max = std::min<std::int32_t>(r_max, n);
  ht::obs::TraceSpan span("theorem1.phase2_dp");
  span.arg("pieces", profiles.size());
  span.arg("r_max", r_max);

  const auto s_states = static_cast<std::size_t>(half) + 1;
  const auto r_states = static_cast<std::size_t>(r_max) + 1;
  auto at = [s_states](std::size_t s, std::size_t r) {
    return r * s_states + s;
  };
  std::vector<double> dp(s_states * r_states, kHuge);
  dp[at(0, 0)] = 0.0;
  // choices[i] records the winning (k, side) per state after piece i.
  std::vector<std::vector<DpChoice>> choices(profiles.size());

  for (std::size_t i = 0; i < profiles.size(); ++i) {
    // Bail between rows once the run stops: the caller falls back to a
    // trivial feasible partition, so finishing the table would be wasted.
    if (ht::run_stopped()) {
      span.arg("stopped", 1);
      return {};
    }
    const auto& prof = profiles[i];
    const auto piece_size = static_cast<std::int32_t>(prof.vertices.size());
    std::vector<double> next(s_states * r_states, kHuge);
    choices[i].assign(s_states * r_states, DpChoice{});
    for (std::size_t r = 0; r < r_states; ++r) {
      if (ht::run_stopped()) {
        span.arg("stopped", 1);
        return {};
      }
      for (std::size_t s = 0; s < s_states; ++s) {
        const double base = dp[at(s, r)];
        if (base >= kHuge) continue;
        for (std::int32_t k = 0;
             k < static_cast<std::int32_t>(prof.cost.size()); ++k) {
          const double cost = prof.cost[static_cast<std::size_t>(k)];
          if (cost >= kHuge) continue;
          const std::size_t nr = r + static_cast<std::size_t>(k);
          if (nr >= r_states) break;
          const std::int32_t remainder = piece_size - k;
          for (std::int8_t side = 0; side < 2; ++side) {
            const std::size_t ns =
                s + (side == 1 ? static_cast<std::size_t>(remainder) : 0);
            if (ns >= s_states) continue;
            const double total = base + cost;
            auto& slot = next[at(ns, nr)];
            if (total < slot) {
              slot = total;
              choices[i][at(ns, nr)] = DpChoice{static_cast<std::int16_t>(k),
                                                side};
            }
            if (remainder == 0) break;  // both sides identical
          }
        }
      }
    }
    dp = std::move(next);
  }

  // Feasible terminal states: side1 remainder s, removed r, side0
  // remainder = n - r - s must also fit in half.
  double best = kHuge;
  std::size_t best_s = 0, best_r = 0;
  for (std::size_t r = 0; r < r_states; ++r) {
    for (std::size_t s = 0; s < s_states; ++s) {
      if (dp[at(s, r)] >= kHuge) continue;
      const std::int64_t side0 =
          static_cast<std::int64_t>(n) - static_cast<std::int64_t>(r) -
          static_cast<std::int64_t>(s);
      if (side0 < 0 || side0 > half) continue;
      if (dp[at(s, r)] < best) {
        best = dp[at(s, r)];
        best_s = s;
        best_r = r;
      }
    }
  }
  span.arg("feasible", best < kHuge ? 1 : 0);
  if (best >= kHuge) return {};
  span.arg("best", best);
  if (dp_estimate != nullptr) *dp_estimate = best;

  // Backtrack.
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  std::vector<VertexId> removed;
  std::size_t s = best_s, r = best_r;
  for (std::size_t i = profiles.size(); i > 0; --i) {
    const auto& prof = profiles[i - 1];
    const DpChoice choice = choices[i - 1][at(s, r)];
    HT_CHECK(choice.k >= 0);
    const auto k = static_cast<std::size_t>(choice.k);
    const auto& cut_set = prof.sets[k];
    std::vector<bool> in_cut(prof.vertices.size(), false);
    for (VertexId v : cut_set) {
      removed.push_back(v);
      // Mark membership by position.
      for (std::size_t j = 0; j < prof.vertices.size(); ++j)
        if (prof.vertices[j] == v) in_cut[j] = true;
    }
    for (std::size_t j = 0; j < prof.vertices.size(); ++j) {
      if (!in_cut[j])
        side[static_cast<std::size_t>(prof.vertices[j])] = choice.side == 1;
    }
    const std::int32_t remainder =
        static_cast<std::int32_t>(prof.vertices.size()) -
        static_cast<std::int32_t>(k);
    if (choice.side == 1) s -= static_cast<std::size_t>(remainder);
    r -= k;
  }
  HT_CHECK(s == 0 && r == 0);
  // Distribute removed vertices to reach exact balance.
  std::int64_t on_one = 0;
  for (bool b : side) on_one += b ? 1 : 0;
  // Subtract removed vertices currently defaulted to side 0 — they are
  // unassigned; place them now.
  for (VertexId v : removed) {
    if (on_one < half) {
      side[static_cast<std::size_t>(v)] = true;
      ++on_one;
    } else {
      side[static_cast<std::size_t>(v)] = false;
    }
  }
  HT_CHECK_MSG(on_one == half, "phase 2 balance repair failed");
  return side;
}

BisectionReport finish(const Hypergraph& h, std::vector<bool> side,
                       std::string algorithm, bool fm_polish) {
  BisectionReport out;
  out.algorithm = std::move(algorithm);
  BisectionSolution sol;
  sol.side = std::move(side);
  sol.cut = h.cut_weight(sol.side);
  sol.valid = true;
  if (fm_polish) {
    BisectionSolution refined = ht::partition::fm_refine(h, sol.side);
    if (refined.cut < sol.cut) sol = std::move(refined);
  }
  out.solution = std::move(sol);
  return out;
}

}  // namespace

BisectionReport bisect_theorem1(const Hypergraph& h,
                                const Theorem1Options& options) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(n >= 2 && n % 2 == 0);

  const double nd = static_cast<double>(n);
  double alpha = options.alpha;
  if (alpha <= 0.0) alpha = std::sqrt(std::max(1.0, std::log2(nd + 1.0)));
  double k = options.k_override > 0.0 ? options.k_override
                                      : std::sqrt(alpha * nd);
  k = std::max(1.0, std::min(k, nd / 2.0));
  const auto k_cap = static_cast<std::int32_t>(std::ceil(k));

  // OPT guesses: geometric ladder across the plausible cut range.
  double min_w = kHuge, total_w = 0.0;
  for (ht::hypergraph::EdgeId e = 0; e < h.num_edges(); ++e) {
    const double w = h.edge_weight(e);
    total_w += w;
    if (w > 0.0) min_w = std::min(min_w, w);
  }
  if (h.num_edges() == 0 || total_w <= 0.0) {
    // No edges: any balanced partition is optimal.
    std::vector<bool> side(static_cast<std::size_t>(n), false);
    for (VertexId v = 0; v < n / 2; ++v) side[static_cast<std::size_t>(v)] =
        true;
    return finish(h, std::move(side), "theorem1", false);
  }
  std::vector<double> guesses;
  const std::int32_t g = std::max<std::int32_t>(options.guesses, 2);
  for (std::int32_t j = 0; j < g; ++j) {
    const double t = static_cast<double>(j) / static_cast<double>(g - 1);
    guesses.push_back(min_w * std::pow(total_w / min_w, t));
  }

  // Evaluate every OPT guess concurrently; each guess's randomness derives
  // from (options.seed, guess index) and the nested phase-1/profile
  // parallelism derives from per-piece indices, so the schedule never
  // affects the output. The pool's stealing waits make the nesting safe.
  struct GuessOutcome {
    BisectionReport report;
    bool feasible = false;
  };
  ht::obs::TraceSpan trace("theorem1.bisect");
  trace.arg("n", n);
  trace.arg("k_cap", k_cap);
  trace.arg("guesses", guesses.size());
  std::vector<GuessOutcome> outcomes(guesses.size());
  ht::parallel_for(guesses.size(), [&](std::size_t gi) {
    if (ht::run_stopped()) return;  // outcome stays infeasible
    ht::obs::TraceSpan guess_span("theorem1.guess");
    const double guess = guesses[static_cast<std::size_t>(gi)];
    const double threshold = alpha * guess / k;
    guess_span.arg("guess_index", gi);
    guess_span.arg("opt_guess", guess);
    guess_span.arg("threshold", threshold);
    const std::uint64_t peel_seed = ht::derive_seed(options.seed, 2 * gi);
    const std::uint64_t profile_seed =
        ht::derive_seed(options.seed, 2 * gi + 1);
    Phase1Result p1 = phase1_peel(h, threshold, peel_seed);
    guess_span.arg("phase1_pieces", p1.pieces.size());
    guess_span.arg("phase1_cut", p1.cut_weight);
    std::vector<PieceProfile> profiles(p1.pieces.size());
    {
      ht::PhaseTimer phase("theorem1.piece_profiles");
      ht::parallel_for(p1.pieces.size(), [&](std::size_t pi) {
        ht::Rng piece_rng = ht::derive_stream(profile_seed, pi);
        profiles[pi] = build_piece_profile(h, std::move(p1.pieces[pi]),
                                           k_cap, piece_rng);
      });
    }
    ht::PhaseTimer phase("theorem1.phase2_dp");
    double dp_estimate = 0.0;
    std::vector<bool> side = phase2_dp(h, profiles, &dp_estimate);
    guess_span.arg("feasible", side.empty() ? 0 : 1);
    if (side.empty()) return;  // infeasible under this guess's peeling
    guess_span.arg("dp_estimate", dp_estimate);
    BisectionReport candidate = finish(h, std::move(side), "theorem1",
                                       options.fm_polish && !ht::run_stopped());
    candidate.opt_guess = guess;
    candidate.phase1_pieces = static_cast<std::int32_t>(profiles.size());
    candidate.phase1_cut = p1.cut_weight;
    candidate.dp_estimate = dp_estimate;
    outcomes[gi] = GuessOutcome{std::move(candidate), true};
  });
  BisectionReport best;
  best.algorithm = "theorem1";
  for (auto& outcome : outcomes) {
    if (!outcome.feasible) continue;
    if (!best.solution.valid ||
        outcome.report.solution.cut < best.solution.cut) {
      best = std::move(outcome.report);
    }
  }
  ht::RunState* run = ht::current_run_state();
  if (!best.solution.valid && run != nullptr && run->stopped()) {
    // The stop hit before any guess finished. Graceful degradation: return
    // the trivial balanced partition (first half of the vertex order on
    // side 1) — always feasible, tagged below with the stop status.
    std::vector<bool> side(static_cast<std::size_t>(n), false);
    for (VertexId v = 0; v < n / 2; ++v)
      side[static_cast<std::size_t>(v)] = true;
    best = finish(h, std::move(side), "theorem1", false);
  }
  HT_CHECK_MSG(best.solution.valid,
               "theorem1: no OPT guess produced a feasible bisection");
  if (run != nullptr) best.status = run->status();
  return best;
}

BisectionReport bisect_small_edges(const Hypergraph& h,
                                   const SmallEdgeOptions& options) {
  HT_CHECK(h.finalized());
  HT_CHECK(h.num_vertices() % 2 == 0);
  ht::Rng rng(options.seed);
  // Lemma 1: solve Minimum Bisection on the clique expansion, evaluate in
  // H. The graph bisection black box is the decomposition-tree pipeline
  // ([17]-style) raced against multi-start FM; the better graph cut wins.
  const ht::graph::Graph expansion = ht::reduction::clique_expansion(h);
  Hypergraph wrapper(expansion.num_vertices());
  for (const auto& e : expansion.edges()) wrapper.add_edge({e.u, e.v}, e.weight);
  wrapper.finalize();
  BisectionSolution graph_sol =
      ht::partition::fm_bisection(wrapper, rng, options.fm_starts);
  if (expansion.num_edges() > 0) {
    BisectionSolution tree_sol =
        ht::partition::graph_bisection_tree_based(expansion, rng);
    if (tree_sol.valid && tree_sol.cut < graph_sol.cut)
      graph_sol = std::move(tree_sol);
  }
  BisectionReport out = finish(h, std::move(graph_sol.side),
                               "theorem2-small-edges", !ht::run_stopped());
  if (ht::RunState* run = ht::current_run_state()) out.status = run->status();
  return out;
}

BisectionReport bisect_large_edges(const Hypergraph& h,
                                   const Theorem1Options& options) {
  Theorem1Options opts = options;
  // Theorem 2: choose k = min hyperedge size for phase 1; phase 2's
  // unbalanced cuts then act on fewer minority vertices than any hyperedge
  // has pins, i.e. the MkU regime.
  std::int32_t min_size = h.num_vertices();
  for (ht::hypergraph::EdgeId e = 0; e < h.num_edges(); ++e)
    min_size = std::min(min_size, h.edge_size(e));
  opts.k_override = static_cast<double>(std::max(1, min_size));
  BisectionReport out = bisect_theorem1(h, opts);
  out.algorithm = "theorem2-large-edges";
  return out;
}

BisectionReport bisect_via_cut_tree(const Hypergraph& h,
                                    const CutTreeBisectionOptions& options) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(n >= 2 && n % 2 == 0);
  // Corollary 3: star expansion -> Section 3.1 vertex cut tree -> balanced
  // tree DP over the original vertices only.
  const auto star = ht::reduction::star_expansion(h);
  ht::cuttree::VertexCutTreeOptions tree_options;
  tree_options.seed = options.seed;
  tree_options.alpha = options.alpha;
  const auto tree_result =
      ht::cuttree::build_vertex_cut_tree(star.graph, tree_options);
  std::vector<ht::cuttree::VertexId> counted(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) counted[static_cast<std::size_t>(v)] = v;
  const auto tree_bisection =
      ht::cuttree::balanced_tree_bisection(tree_result.tree, counted);
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  if (tree_bisection.valid) {
    for (std::size_t i = 0; i < counted.size(); ++i)
      side[static_cast<std::size_t>(counted[i])] = tree_bisection.side[i];
  } else {
    // Even a partial cut tree embeds every vertex, so the balanced DP is
    // only infeasible when the run stopped underneath it — degrade to the
    // trivial balanced partition instead of aborting.
    HT_CHECK_MSG(ht::run_stopped(), "cut-tree bisection DP infeasible");
    for (VertexId v = 0; v < n / 2; ++v)
      side[static_cast<std::size_t>(v)] = true;
  }
  BisectionReport out =
      finish(h, std::move(side), "corollary3-cut-tree",
             options.fm_polish && !ht::run_stopped());
  if (tree_bisection.valid) out.dp_estimate = tree_bisection.tree_cut;
  out.status = tree_result.status;
  if (ht::RunState* run = ht::current_run_state()) out.status = run->status();
  return out;
}

Phase1Diagnostics phase1_diagnostics(const Hypergraph& h, double opt,
                                     const std::vector<bool>& optimal_side,
                                     double alpha, double k,
                                     std::uint64_t seed) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(optimal_side.size() == static_cast<std::size_t>(n));
  const double nd = static_cast<double>(n);
  if (alpha <= 0.0) alpha = std::sqrt(std::max(1.0, std::log2(nd + 1.0)));
  if (k <= 0.0) k = std::max(1.0, std::sqrt(alpha * nd));
  const double threshold = alpha * std::max(opt, 1e-9) / k;
  const Phase1Result p1 = phase1_peel(h, threshold, seed);

  Phase1Diagnostics out;
  out.pieces = static_cast<std::int32_t>(p1.pieces.size());
  out.cut_weight = p1.cut_weight;
  for (const auto& piece : p1.pieces) {
    std::int64_t white = 0;
    for (VertexId v : piece)
      white += optimal_side[static_cast<std::size_t>(v)] ? 1 : 0;
    const auto size = static_cast<std::int64_t>(piece.size());
    out.minority_count += std::min(white, size - white);
  }
  out.lemma2_bound = alpha * nd * std::log2(nd + 1.0) * opt / k;
  out.lemma3_bound = k;
  return out;
}

BisectionReport bisect_fm_baseline(const Hypergraph& h, ht::Rng& rng,
                                   int starts) {
  BisectionSolution sol = ht::partition::fm_bisection(h, rng, starts);
  BisectionReport out;
  out.algorithm = "fm";
  out.solution = std::move(sol);
  return out;
}

BisectionReport bisect_random_baseline(const Hypergraph& h, ht::Rng& rng,
                                       int samples) {
  const VertexId n = h.num_vertices();
  HT_CHECK(n % 2 == 0);
  BisectionReport out;
  out.algorithm = "random";
  for (int s = 0; s < samples; ++s) {
    std::vector<VertexId> perm(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
    rng.shuffle(perm);
    std::vector<bool> side(static_cast<std::size_t>(n), false);
    for (VertexId i = 0; i < n / 2; ++i)
      side[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = true;
    const double cut = h.cut_weight(side);
    if (!out.solution.valid || cut < out.solution.cut) {
      out.solution.side = std::move(side);
      out.solution.cut = cut;
      out.solution.valid = true;
    }
  }
  return out;
}

}  // namespace ht::core
