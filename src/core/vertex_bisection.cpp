#include "core/vertex_bisection.hpp"

#include <algorithm>
#include <cmath>

#include "cuttree/tree_bisection.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/min_cut.hpp"
#include "lp/spectral.hpp"
#include "util/subsets.hpp"

namespace ht::core {

using ht::graph::Graph;
using ht::graph::VertexId;

namespace {

/// Turns a balanced side assignment (A0, B0) into a true vertex bisection:
/// the minimum vertex cut gamma(A0, B0) is the separator; survivors keep
/// their side. |A0| = |B0| = n/2 implies both final sides fit in n/2.
VertexBisectionResult extract_from_sides(const Graph& g,
                                         const std::vector<bool>& side,
                                         std::string algorithm) {
  std::vector<VertexId> a0, b0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    (side[static_cast<std::size_t>(v)] ? b0 : a0).push_back(v);
  HT_CHECK(!a0.empty() && !b0.empty());
  const auto cut = ht::flow::min_vertex_cut(g, a0, b0);
  VertexBisectionResult out;
  out.algorithm = std::move(algorithm);
  std::vector<bool> in_cut(static_cast<std::size_t>(g.num_vertices()), false);
  for (VertexId v : cut.cut_vertices) in_cut[static_cast<std::size_t>(v)] = true;
  for (VertexId v : a0)
    if (!in_cut[static_cast<std::size_t>(v)]) out.side_a.push_back(v);
  for (VertexId v : b0)
    if (!in_cut[static_cast<std::size_t>(v)]) out.side_b.push_back(v);
  out.separator = cut.cut_vertices;
  out.separator_weight = cut.value;
  out.valid = true;
  return out;
}

}  // namespace

void validate_vertex_bisection(const Graph& g,
                               const VertexBisectionResult& result) {
  HT_CHECK(result.valid);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<std::int8_t> role(n, -1);  // 0 A, 1 B, 2 X
  auto mark = [&](const std::vector<VertexId>& set, std::int8_t r) {
    for (VertexId v : set) {
      HT_CHECK(0 <= v && v < g.num_vertices());
      HT_CHECK_MSG(role[static_cast<std::size_t>(v)] == -1,
                   "vertex " << v << " assigned twice");
      role[static_cast<std::size_t>(v)] = r;
    }
  };
  mark(result.side_a, 0);
  mark(result.side_b, 1);
  mark(result.separator, 2);
  for (std::size_t v = 0; v < n; ++v)
    HT_CHECK_MSG(role[v] != -1, "vertex " << v << " unassigned");
  for (const auto& e : g.edges()) {
    const auto ru = role[static_cast<std::size_t>(e.u)];
    const auto rv = role[static_cast<std::size_t>(e.v)];
    HT_CHECK_MSG(!((ru == 0 && rv == 1) || (ru == 1 && rv == 0)),
                 "edge " << e.u << "-" << e.v << " crosses the bisection");
  }
  const std::size_t half = (n + 1) / 2;
  HT_CHECK_MSG(result.side_a.size() <= half, "side A too large");
  HT_CHECK_MSG(result.side_b.size() <= half, "side B too large");
  double w = 0.0;
  for (VertexId v : result.separator) w += g.vertex_weight(v);
  HT_CHECK_MSG(std::fabs(w - result.separator_weight) <=
                   1e-6 * (1.0 + std::fabs(w)),
               "separator weight mismatch");
}

VertexBisectionResult exact_vertex_bisection(const Graph& g) {
  HT_CHECK(g.finalized());
  const int n = g.num_vertices();
  HT_CHECK_MSG(n <= 18, "exact vertex bisection limited to n <= 18");
  HT_CHECK(n >= 2);
  const auto half = static_cast<std::size_t>((n + 1) / 2);
  VertexBisectionResult best;
  ht::for_each_subset(n, [&](std::uint32_t mask) {
    double w = 0.0;
    std::vector<bool> removed(static_cast<std::size_t>(n), false);
    for (int v = 0; v < n; ++v) {
      if (mask & (1u << v)) {
        removed[static_cast<std::size_t>(v)] = true;
        w += g.vertex_weight(v);
      }
    }
    if (best.valid && w >= best.separator_weight) return;
    auto [comp, count] = ht::graph::connected_components_excluding(g, removed);
    // Sizes per component; subset-sum to find a grouping with both sides
    // <= half.
    std::vector<std::size_t> sizes(static_cast<std::size_t>(count), 0);
    for (int v = 0; v < n; ++v)
      if (comp[static_cast<std::size_t>(v)] >= 0)
        ++sizes[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])];
    const std::size_t total = static_cast<std::size_t>(n) -
                              static_cast<std::size_t>(ht::popcount32(mask));
    // reachable[s]: can a sub-collection of components sum to s?
    std::vector<std::uint32_t> witness(total + 1, 0);
    std::vector<bool> reachable(total + 1, false);
    reachable[0] = true;
    for (std::size_t c = 0; c < sizes.size(); ++c) {
      for (std::size_t s = total + 1; s-- > 0;) {
        if (!reachable[s]) continue;
        const std::size_t t = s + sizes[c];
        if (t <= total && !reachable[t]) {
          reachable[t] = true;
          witness[t] = witness[s] | (1u << c);
        }
      }
    }
    std::int64_t chosen_sum = -1;
    for (std::size_t s = 0; s <= total; ++s) {
      if (reachable[s] && s <= half && total - s <= half) {
        chosen_sum = static_cast<std::int64_t>(s);
        break;
      }
    }
    if (chosen_sum < 0) return;
    VertexBisectionResult cand;
    const std::uint32_t group = witness[static_cast<std::size_t>(chosen_sum)];
    for (int v = 0; v < n; ++v) {
      if (removed[static_cast<std::size_t>(v)]) {
        cand.separator.push_back(v);
      } else if (group &
                 (1u << comp[static_cast<std::size_t>(v)])) {
        cand.side_a.push_back(v);
      } else {
        cand.side_b.push_back(v);
      }
    }
    cand.separator_weight = w;
    cand.algorithm = "exact";
    cand.valid = true;
    if (!best.valid || w < best.separator_weight) best = std::move(cand);
  });
  return best;
}

VertexBisectionResult vertex_bisection_via_cut_tree(
    const Graph& g, const VertexBisectionOptions& options) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(n >= 2 && n % 2 == 0);
  ht::cuttree::VertexCutTreeOptions tree_options;
  tree_options.seed = options.seed;
  tree_options.alpha = options.alpha;
  tree_options.threshold_override = options.threshold_override;
  const auto built = ht::cuttree::build_vertex_cut_tree(g, tree_options);
  std::vector<ht::cuttree::VertexId> counted(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) counted[static_cast<std::size_t>(v)] = v;
  const auto dp = ht::cuttree::balanced_tree_bisection(built.tree, counted);
  HT_CHECK_MSG(dp.valid, "balanced tree DP infeasible");
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  for (std::size_t i = 0; i < counted.size(); ++i)
    side[static_cast<std::size_t>(counted[i])] = dp.side[i];
  VertexBisectionResult out =
      extract_from_sides(g, side, "cut-tree");
  // Domination sanity: the realized separator can never exceed the tree's
  // DP objective (gamma_G <= gamma_T <= w(X_tree)).
  HT_CHECK(out.separator_weight <= dp.tree_cut + 1e-6);
  return out;
}

VertexBisectionResult vertex_bisection_spectral(const Graph& g,
                                                ht::Rng& rng) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(n >= 2 && n % 2 == 0);
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  if (g.num_edges() > 0) {
    const auto fiedler = ht::lp::fiedler_vector(g, g.vertex_weights(), rng);
    std::sort(order.begin(), order.end(), [&](VertexId l, VertexId r) {
      return fiedler.vector[static_cast<std::size_t>(l)] <
             fiedler.vector[static_cast<std::size_t>(r)];
    });
  }
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  for (VertexId i = n / 2; i < n; ++i)
    side[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = true;
  return extract_from_sides(g, side, "spectral");
}

}  // namespace ht::core
