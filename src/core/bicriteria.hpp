// Bi-criteria hypergraph bisection.
//
// The paper's sharp distinction: TRUE bisection in hypergraphs has no
// o(n^{1/4}) approximation (Corollary 1), yet bi-criteria approximations —
// where the smaller side only needs Omega(n) vertices instead of exactly
// n/2 — carry over from graphs at (O(1), sqrt(log n)) quality. This module
// implements the bi-criteria algorithm the paper alludes to: recursive
// sparsest-cut peeling until every piece has at most (1-eps)n vertices,
// then a subset-sum packing of pieces into two sides. Cost is bounded by
// the peeling cuts; balance is eps-slack.
//
// bench_bicriteria charts the paper's dichotomy: on the Theorem 3 hard
// instances, the bi-criteria cut is dramatically cheaper than any balanced
// one — the gap IS the hardness.
#pragma once

#include <cstdint>

#include "core/bisection.hpp"
#include "hypergraph/hypergraph.hpp"

namespace ht::core {

struct BicriteriaOptions {
  /// Required minimum fraction of vertices on the smaller side; the
  /// classic bi-criteria setting is a constant like 1/3.
  double min_side_fraction = 1.0 / 3.0;
  std::uint64_t seed = 0x5eedULL;
};

struct BicriteriaResult {
  std::vector<bool> side;     // true = side 1
  double cut = 0.0;           // exact delta_H of the partition
  double balance = 0.0;       // min side size / n  (>= min_side_fraction)
  std::int32_t pieces = 0;    // pieces produced by the peeling phase
  bool valid = false;
};

/// Bi-criteria partition: both sides have >= min_side_fraction * n
/// vertices; cut minimized heuristically via sparsest-cut peeling +
/// first-fit-decreasing packing + boundary refinement.
BicriteriaResult bisect_bicriteria(const ht::hypergraph::Hypergraph& h,
                                   const BicriteriaOptions& options = {});

}  // namespace ht::core
