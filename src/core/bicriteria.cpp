#include "core/bicriteria.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "partition/cut_tracker.hpp"
#include "partition/sparsest_cut.hpp"

namespace ht::core {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

BicriteriaResult bisect_bicriteria(const Hypergraph& h,
                                   const BicriteriaOptions& options) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(n >= 2);
  HT_CHECK(0.0 < options.min_side_fraction &&
           options.min_side_fraction <= 0.5);
  const auto min_side = static_cast<std::int64_t>(
      std::ceil(options.min_side_fraction * static_cast<double>(n)));
  const std::int64_t max_piece = n - min_side;
  ht::Rng rng(options.seed);

  // Phase 1: peel with sparsest cuts until every piece fits one side
  // (size <= n - min_side). Unlike Theorem 1, no threshold — we only cut
  // as much as balance requires, which is what makes bi-criteria cheap.
  std::deque<std::vector<VertexId>> queue;
  {
    std::vector<VertexId> all(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
    queue.push_back(std::move(all));
  }
  std::vector<std::vector<VertexId>> pieces;
  while (!queue.empty()) {
    std::vector<VertexId> piece = std::move(queue.front());
    queue.pop_front();
    if (static_cast<std::int64_t>(piece.size()) <= max_piece ||
        piece.size() < 2) {
      pieces.push_back(std::move(piece));
      continue;
    }
    const auto sub = ht::hypergraph::induced_subhypergraph(h, piece);
    ht::partition::SparsestCutResult sc;
    if (piece.size() <= 14) {
      sc = ht::partition::sparsest_hyperedge_cut_exact(sub.hypergraph);
    } else {
      sc = ht::partition::sparsest_hyperedge_cut(sub.hypergraph, rng);
    }
    if (!sc.valid) {
      // No cut available (e.g. one spanning hyperedge): split arbitrarily —
      // the edge is paid once either way.
      const std::size_t half = piece.size() / 2;
      queue.push_back({piece.begin(), piece.begin() + half});
      queue.push_back({piece.begin() + half, piece.end()});
      continue;
    }
    std::vector<bool> in_small(piece.size(), false);
    for (VertexId local : sc.smaller_side)
      in_small[static_cast<std::size_t>(local)] = true;
    std::vector<VertexId> small, large;
    for (std::size_t i = 0; i < piece.size(); ++i)
      (in_small[i] ? small : large).push_back(sub.old_of_new[i]);
    queue.push_back(std::move(small));
    queue.push_back(std::move(large));
  }

  // Phase 2: pack pieces into two sides, first-fit-decreasing, so that
  // both sides end with >= min_side vertices.
  std::sort(pieces.begin(), pieces.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  std::int64_t size1 = 0, size0 = 0;
  for (const auto& piece : pieces) {
    const bool to_one = size1 <= size0;
    if (to_one) {
      for (VertexId v : piece) side[static_cast<std::size_t>(v)] = true;
      size1 += static_cast<std::int64_t>(piece.size());
    } else {
      size0 += static_cast<std::int64_t>(piece.size());
    }
  }

  // Boundary refinement: single-vertex moves that reduce the cut while
  // keeping both sides >= min_side.
  ht::partition::CutTracker tracker(h);
  tracker.build(side);
  // Piece packing can under-fill one side when min_side_fraction is close
  // to 1/2; top it up with the cheapest single-vertex moves.
  while (std::min(size0, size1) < min_side) {
    const bool from_one = size1 > size0;
    VertexId pick = -1;
    double best_delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (tracker.on_side(v) != from_one) continue;
      const double delta = tracker.flip_delta(v);
      if (pick == -1 || delta < best_delta) {
        pick = v;
        best_delta = delta;
      }
    }
    HT_CHECK(pick != -1);
    tracker.flip(pick);
    size1 += from_one ? -1 : 1;
    size0 = n - size1;
  }
  for (int pass = 0; pass < 8; ++pass) {
    bool improved = false;
    for (VertexId v = 0; v < n; ++v) {
      const bool on_one = tracker.on_side(v);
      const std::int64_t new1 = size1 + (on_one ? -1 : 1);
      const std::int64_t new0 = n - new1;
      if (new1 < min_side || new0 < min_side) continue;
      if (tracker.flip_delta(v) < -1e-12) {
        tracker.flip(v);
        size1 = new1;
        size0 = new0;
        improved = true;
      }
    }
    if (!improved) break;
  }

  BicriteriaResult out;
  out.side = tracker.side();
  out.cut = h.cut_weight(out.side);
  out.balance = static_cast<double>(std::min(size0, size1)) /
                static_cast<double>(n);
  out.pieces = static_cast<std::int32_t>(pieces.size());
  out.valid = std::min(size0, size1) >= min_side;
  HT_CHECK_MSG(out.valid, "bi-criteria packing failed balance");
  return out;
}

}  // namespace ht::core
