#include "partition/min_ratio_cut.hpp"

#include <algorithm>
#include <cmath>

#include "flow/min_cut.hpp"
#include "lp/spectral.hpp"
#include "util/subsets.hpp"
#include "util/thread_pool.hpp"

namespace ht::partition {

using ht::graph::Graph;
using ht::graph::VertexId;

namespace {

/// Groups the connected components of G - X into two sides (A, B), trying
/// to maximize min(w(A), w(B)) — exhaustively for few components, greedily
/// (heaviest-first into the lighter side) otherwise. Returns false if there
/// are fewer than two non-empty groups.
bool group_components(const Graph& g, const std::vector<bool>& removed,
                      VertexSeparator& out) {
  auto [comp, count] = ht::graph::connected_components_excluding(g, removed);
  if (count < 2) return false;
  std::vector<double> comp_weight(static_cast<std::size_t>(count), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto c = comp[static_cast<std::size_t>(v)];
    if (c >= 0) comp_weight[static_cast<std::size_t>(c)] += g.vertex_weight(v);
  }
  std::vector<bool> side_b(static_cast<std::size_t>(count), false);
  if (count <= 16) {
    double best = -1.0;
    std::uint32_t best_mask = 1;
    ht::for_each_subset(count, [&](std::uint32_t mask) {
      if (mask == 0 || mask == (1u << count) - 1) return;
      double wa = 0.0, wb = 0.0;
      for (std::int32_t c = 0; c < count; ++c)
        ((mask >> c) & 1u ? wb : wa) += comp_weight[static_cast<std::size_t>(c)];
      const double score = std::min(wa, wb);
      if (score > best) {
        best = score;
        best_mask = mask;
      }
    });
    for (std::int32_t c = 0; c < count; ++c)
      side_b[static_cast<std::size_t>(c)] = (best_mask >> c) & 1u;
  } else {
    std::vector<std::int32_t> order(static_cast<std::size_t>(count));
    for (std::int32_t c = 0; c < count; ++c)
      order[static_cast<std::size_t>(c)] = c;
    std::sort(order.begin(), order.end(), [&](std::int32_t l, std::int32_t r) {
      return comp_weight[static_cast<std::size_t>(l)] >
             comp_weight[static_cast<std::size_t>(r)];
    });
    double wa = 0.0, wb = 0.0;
    for (std::int32_t c : order) {
      if (wa <= wb) {
        wa += comp_weight[static_cast<std::size_t>(c)];
      } else {
        wb += comp_weight[static_cast<std::size_t>(c)];
        side_b[static_cast<std::size_t>(c)] = true;
      }
    }
  }
  out.a.clear();
  out.b.clear();
  out.x.clear();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (removed[static_cast<std::size_t>(v)]) {
      out.x.push_back(v);
    } else if (side_b[static_cast<std::size_t>(
                   comp[static_cast<std::size_t>(v)])]) {
      out.b.push_back(v);
    } else {
      out.a.push_back(v);
    }
  }
  return !out.a.empty() && !out.b.empty();
}

double raw_sparsity(const Graph& g, const VertexSeparator& sep) {
  double wa = 0.0, wb = 0.0, wx = 0.0;
  for (VertexId v : sep.a) wa += g.vertex_weight(v);
  for (VertexId v : sep.b) wb += g.vertex_weight(v);
  for (VertexId v : sep.x) wx += g.vertex_weight(v);
  const double denom = std::min(wa, wb) + wx;
  return denom > 0.0 ? wx / denom : 0.0;
}

/// Moves separator vertices that touch only one side into that side;
/// strictly reduces w(X) while preserving separation.
void absorb_redundant(const Graph& g, VertexSeparator& sep) {
  std::vector<std::int8_t> role(static_cast<std::size_t>(g.num_vertices()),
                                0);  // 0=A, 1=B, 2=X
  for (VertexId v : sep.b) role[static_cast<std::size_t>(v)] = 1;
  for (VertexId v : sep.x) role[static_cast<std::size_t>(v)] = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < sep.x.size(); ++i) {
      const VertexId v = sep.x[i];
      bool touches_a = false, touches_b = false;
      for (const auto& adj : g.neighbors(v)) {
        const auto r = role[static_cast<std::size_t>(adj.to)];
        touches_a |= (r == 0);
        touches_b |= (r == 1);
      }
      if (touches_a && touches_b) continue;
      // Move v into the (unique or arbitrary) side it touches.
      if (touches_b) {
        role[static_cast<std::size_t>(v)] = 1;
        sep.b.push_back(v);
      } else {
        role[static_cast<std::size_t>(v)] = 0;
        sep.a.push_back(v);
      }
      sep.x[i] = sep.x.back();
      sep.x.pop_back();
      changed = true;
      break;
    }
  }
}

}  // namespace

double separator_sparsity(const Graph& g, const VertexSeparator& sep) {
  // Validate partition & separation.
  std::vector<std::int8_t> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  for (VertexId v : sep.a) ++seen[static_cast<std::size_t>(v)];
  for (VertexId v : sep.b) ++seen[static_cast<std::size_t>(v)];
  for (VertexId v : sep.x) ++seen[static_cast<std::size_t>(v)];
  for (std::size_t v = 0; v < seen.size(); ++v)
    HT_CHECK_MSG(seen[v] == 1, "separator does not partition V at vertex " << v);
  HT_CHECK(!sep.a.empty() && !sep.b.empty());
  std::vector<std::int8_t> role(static_cast<std::size_t>(g.num_vertices()), 0);
  for (VertexId v : sep.b) role[static_cast<std::size_t>(v)] = 1;
  for (VertexId v : sep.x) role[static_cast<std::size_t>(v)] = 2;
  for (const auto& e : g.edges()) {
    const auto ru = role[static_cast<std::size_t>(e.u)];
    const auto rv = role[static_cast<std::size_t>(e.v)];
    HT_CHECK_MSG(!((ru == 0 && rv == 1) || (ru == 1 && rv == 0)),
                 "edge " << e.u << "-" << e.v << " crosses the separator");
  }
  return raw_sparsity(g, sep);
}

VertexSeparator min_ratio_vertex_cut_exact(const Graph& g) {
  HT_CHECK(g.finalized());
  const int n = g.num_vertices();
  HT_CHECK_MSG(n <= 20, "exact min-ratio cut limited to n <= 20");
  VertexSeparator best;
  if (n < 2) return best;
  ht::for_each_subset(n, [&](std::uint32_t mask) {
    if (ht::popcount32(mask) > n - 2) return;
    std::vector<bool> removed(static_cast<std::size_t>(n), false);
    for (int v = 0; v < n; ++v)
      if (mask & (1u << v)) removed[static_cast<std::size_t>(v)] = true;
    VertexSeparator cand;
    if (!group_components(g, removed, cand)) return;
    cand.sparsity = raw_sparsity(g, cand);
    cand.valid = true;
    if (!best.valid || cand.sparsity < best.sparsity) best = cand;
  });
  return best;
}

VertexSeparator min_ratio_vertex_cut(const Graph& g, ht::Rng& rng) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  VertexSeparator best;
  if (n < 2) return best;

  // Disconnected graphs separate for free.
  {
    std::vector<bool> removed(static_cast<std::size_t>(n), false);
    VertexSeparator cand;
    if (group_components(g, removed, cand)) {
      cand.sparsity = 0.0;
      cand.valid = true;
      return cand;
    }
  }

  const auto fiedler = ht::lp::fiedler_vector(g, g.vertex_weights(), rng);
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](VertexId l, VertexId r) {
    return fiedler.vector[static_cast<std::size_t>(l)] <
           fiedler.vector[static_cast<std::size_t>(r)];
  });

  // Cheap proxy per sweep position: separator = boundary of the lighter
  // prefix (the cheaper of "A-boundary inside B" / "B-boundary inside A").
  // Positions are independent given the sweep order, so they evaluate in
  // parallel into index-addressed slots; the tie-broken sort keeps the
  // candidate ranking schedule-independent.
  struct SweepCandidate {
    VertexId position;
    double proxy;
  };
  std::vector<VertexId> pos_in_order(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i)
    pos_in_order[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        i;
  std::vector<double> prefix_weight(static_cast<std::size_t>(n) + 1, 0.0);
  for (VertexId i = 0; i < n; ++i)
    prefix_weight[static_cast<std::size_t>(i) + 1] =
        prefix_weight[static_cast<std::size_t>(i)] +
        g.vertex_weight(order[static_cast<std::size_t>(i)]);
  std::vector<SweepCandidate> candidates(static_cast<std::size_t>(n) - 1);
  ht::parallel_for(candidates.size(), [&](std::size_t slot) {
    const auto i = static_cast<VertexId>(slot) + 1;
    double boundary_in_b = 0.0, boundary_in_a = 0.0;
    std::vector<bool> counted_b(static_cast<std::size_t>(n), false);
    std::vector<bool> counted_a(static_cast<std::size_t>(n), false);
    for (const auto& e : g.edges()) {
      const bool pu = pos_in_order[static_cast<std::size_t>(e.u)] < i;
      const bool pv = pos_in_order[static_cast<std::size_t>(e.v)] < i;
      if (pu == pv) continue;
      const VertexId b_side = pu ? e.v : e.u;
      const VertexId a_side = pu ? e.u : e.v;
      if (!counted_b[static_cast<std::size_t>(b_side)]) {
        counted_b[static_cast<std::size_t>(b_side)] = true;
        boundary_in_b += g.vertex_weight(b_side);
      }
      if (!counted_a[static_cast<std::size_t>(a_side)]) {
        counted_a[static_cast<std::size_t>(a_side)] = true;
        boundary_in_a += g.vertex_weight(a_side);
      }
    }
    const double total = g.total_vertex_weight();
    const double small_side =
        std::min(prefix_weight[static_cast<std::size_t>(i)],
                 total - prefix_weight[static_cast<std::size_t>(i)]);
    const double wx = std::min(boundary_in_a, boundary_in_b);
    const double denom = small_side + wx;
    candidates[slot] = {i, denom > 0.0 ? wx / denom : 1e100};
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const SweepCandidate& l, const SweepCandidate& r) {
              if (l.proxy != r.proxy) return l.proxy < r.proxy;
              return l.position < r.position;
            });

  // Exact vertex-cut flow on the most promising sweep positions — each
  // flow is independent; the winner is reduced serially in candidate
  // order, so the pick never depends on the schedule.
  const std::size_t flows = std::min<std::size_t>(candidates.size(), 8);
  std::vector<VertexSeparator> evaluated(flows);
  ht::parallel_for(flows, [&](std::size_t c) {
    const VertexId i = candidates[c].position;
    std::vector<VertexId> a(order.begin(), order.begin() + i);
    std::vector<VertexId> b(order.begin() + i, order.end());
    const auto cut = ht::flow::min_vertex_cut(g, a, b);
    std::vector<bool> removed(static_cast<std::size_t>(n), false);
    for (VertexId v : cut.cut_vertices)
      removed[static_cast<std::size_t>(v)] = true;
    VertexSeparator cand;
    if (!group_components(g, removed, cand)) return;
    absorb_redundant(g, cand);
    cand.sparsity = raw_sparsity(g, cand);
    cand.valid = true;
    evaluated[c] = std::move(cand);
  });
  for (auto& cand : evaluated) {
    if (!cand.valid) continue;
    if (!best.valid || cand.sparsity < best.sparsity) best = std::move(cand);
  }

  // Fallback for graphs where every sweep cut was degenerate (e.g. cliques):
  // single-vertex sides A = {v}, B = rest, X = N(v).
  if (!best.valid) {
    for (VertexId v = 0; v < std::min<VertexId>(n, 32); ++v) {
      std::vector<bool> removed(static_cast<std::size_t>(n), false);
      bool all_neighbors = true;
      for (const auto& adj : g.neighbors(v)) {
        removed[static_cast<std::size_t>(adj.to)] = true;
      }
      removed[static_cast<std::size_t>(v)] = false;
      std::size_t removed_count = 0;
      for (bool r : removed) removed_count += r ? 1 : 0;
      if (removed_count + 2 > static_cast<std::size_t>(n)) all_neighbors = false;
      if (!all_neighbors) continue;
      VertexSeparator cand;
      if (!group_components(g, removed, cand)) continue;
      absorb_redundant(g, cand);
      cand.sparsity = raw_sparsity(g, cand);
      cand.valid = true;
      if (!best.valid || cand.sparsity < best.sparsity) best = cand;
    }
  }
  return best;
}

}  // namespace ht::partition
