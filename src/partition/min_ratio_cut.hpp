// Approximate min-ratio vertex cut (vertex separator sparsity).
//
// The paper's cut-tree construction (Section 3.1) consumes an
// alpha-approximate min-ratio vertex cut oracle; the cited black box is the
// O(sqrt(log n)) SDP algorithm of Feige–Hajiaghayi–Lee [6]. Our surrogate
// (per DESIGN.md): exact enumeration for small graphs, spectral sweep +
// exact (A,B) vertex-cut flows + local improvement for larger graphs. The
// achieved alpha is measured by tests/benches against the exact optimum on
// small instances.
//
// Sparsity of a separator (A, B, X):  w(X) / (min{w(A), w(B)} + w(X)).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ht::partition {

struct VertexSeparator {
  std::vector<ht::graph::VertexId> a;  // one side (no X vertices)
  std::vector<ht::graph::VertexId> b;  // other side
  std::vector<ht::graph::VertexId> x;  // the separator
  double sparsity = 0.0;
  bool valid = false;  // false when the graph has no separator (clique-like)
};

/// Recomputes the sparsity of (A, B, X) from vertex weights; checks that X
/// actually separates A from B and that the three sets partition V.
double separator_sparsity(const ht::graph::Graph& g,
                          const VertexSeparator& sep);

/// Exact optimum by exhaustive enumeration of separators (n <= ~16).
VertexSeparator min_ratio_vertex_cut_exact(const ht::graph::Graph& g);

/// Heuristic oracle for arbitrary sizes: Fiedler sweep generating (A,B)
/// candidate pairs, exact minimum vertex cut for each candidate, greedy
/// side-rebalancing. Deterministic given the seed.
VertexSeparator min_ratio_vertex_cut(const ht::graph::Graph& g, ht::Rng& rng);

}  // namespace ht::partition
