// Multilevel hypergraph bisection — the hMetis/KaHyPar-style heuristic the
// paper's introduction says practitioners actually run.
//
// Pipeline: (1) coarsen by repeated heavy-connectivity matching until the
// hypergraph is small; (2) solve the coarsest instance with multi-start FM
// (weight-aware balance); (3) uncoarsen, projecting the partition and
// running FM refinement at every level.
//
// This is the strongest baseline in the repository; benches compare the
// paper's theory pipelines against it.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.hpp"
#include "partition/fm.hpp"
#include "util/rng.hpp"

namespace ht::partition {

struct MultilevelOptions {
  /// Stop coarsening when at most this many vertices remain.
  std::int32_t coarsest_size = 32;
  /// Maximum ratio of cluster weight to average (prevents gorging).
  double max_cluster_weight_factor = 4.0;
  int fm_passes = 16;
  int coarsest_starts = 8;
};

/// Multilevel bisection. n must be even; balance is by vertex COUNT
/// (matching the paper's bisection definition), enforced exactly at the
/// finest level.
BisectionSolution multilevel_bisection(const ht::hypergraph::Hypergraph& h,
                                       ht::Rng& rng,
                                       const MultilevelOptions& options = {});

}  // namespace ht::partition
