#include "partition/kway.hpp"

#include <algorithm>

#include "hypergraph/subset_view.hpp"
#include "partition/fm_fast.hpp"
#include "partition/unbalanced_kcut.hpp"

namespace ht::partition {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

double kway_cut(const Hypergraph& h, const std::vector<std::int32_t>& part) {
  double total = 0.0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto pins = h.pins(e);
    const std::int32_t first = part[static_cast<std::size_t>(pins.front())];
    for (VertexId v : pins) {
      if (part[static_cast<std::size_t>(v)] != first) {
        total += h.edge_weight(e);
        break;
      }
    }
  }
  return total;
}

double kway_connectivity(const Hypergraph& h,
                         const std::vector<std::int32_t>& part) {
  double total = 0.0;
  std::vector<std::int32_t> seen;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    seen.clear();
    for (VertexId v : h.pins(e)) {
      const std::int32_t p = part[static_cast<std::size_t>(v)];
      if (std::find(seen.begin(), seen.end(), p) == seen.end())
        seen.push_back(p);
    }
    total += h.edge_weight(e) *
             static_cast<double>(static_cast<std::int32_t>(seen.size()) - 1);
  }
  return total;
}

void validate_kway(const Hypergraph& h, const KWaySolution& solution) {
  HT_CHECK(solution.valid);
  const VertexId n = h.num_vertices();
  HT_CHECK(solution.part.size() == static_cast<std::size_t>(n));
  HT_CHECK(solution.k >= 1 && n % solution.k == 0);
  std::vector<std::int32_t> counts(static_cast<std::size_t>(solution.k), 0);
  for (std::int32_t p : solution.part) {
    HT_CHECK(0 <= p && p < solution.k);
    ++counts[static_cast<std::size_t>(p)];
  }
  for (std::int32_t c : counts)
    HT_CHECK_MSG(c == n / solution.k, "unbalanced k-way part");
  HT_CHECK(std::abs(kway_cut(h, solution.part) - solution.cut) <= 1e-6);
  HT_CHECK(std::abs(kway_connectivity(h, solution.part) -
                    solution.connectivity) <= 1e-6);
}

namespace {

KWaySolution finish(const Hypergraph& h, std::vector<std::int32_t> part,
                    std::int32_t k) {
  KWaySolution out;
  out.part = std::move(part);
  out.k = k;
  out.cut = kway_cut(h, out.part);
  out.connectivity = kway_connectivity(h, out.part);
  out.valid = true;
  return out;
}

/// Recursive helper: bisect the sub-hypergraph induced by `vertices` into
/// `parts` final parts, writing ids [first_part, first_part + parts).
void recurse(const Hypergraph& h, const std::vector<VertexId>& vertices,
             std::int32_t parts, std::int32_t first_part,
             std::vector<std::int32_t>& out, ht::Rng& rng) {
  if (parts == 1) {
    for (VertexId v : vertices)
      out[static_cast<std::size_t>(v)] = first_part;
    return;
  }
  // View of the piece; FM needs a concrete hypergraph, so this is a
  // materialization boundary.
  const ht::hypergraph::SubsetView view(h, vertices);
  const auto sub = view.materialize();
  BisectionSolution bisection;
  if (sub.hypergraph.num_edges() == 0) {
    bisection.side.assign(vertices.size(), false);
    for (std::size_t i = vertices.size() / 2; i < vertices.size(); ++i)
      bisection.side[i] = true;
    bisection.valid = true;
  } else {
    bisection = fm_bisection_fast(sub.hypergraph, rng, 4);
  }
  std::vector<VertexId> left, right;
  for (std::size_t i = 0; i < vertices.size(); ++i)
    (bisection.side[i] ? right : left)
        .push_back(view.old_of(static_cast<VertexId>(i)));
  recurse(h, left, parts / 2, first_part, out, rng);
  recurse(h, right, parts / 2, first_part + parts / 2, out, rng);
}

}  // namespace

KWaySolution kway_recursive_bisection(const Hypergraph& h, std::int32_t k,
                                      ht::Rng& rng) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(k >= 1 && (k & (k - 1)) == 0);  // power of two
  // n divisible by k guarantees every recursion level splits an even set.
  HT_CHECK(n % k == 0);
  std::vector<VertexId> all(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), 0);
  recurse(h, all, k, 0, part, rng);
  return finish(h, std::move(part), k);
}

KWaySolution kway_peel(const Hypergraph& h, std::int32_t k, ht::Rng& rng) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(k >= 1 && n % k == 0);
  const VertexId per = n / k;
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> remaining(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) remaining[static_cast<std::size_t>(v)] = v;
  for (std::int32_t p = 0; p + 1 < k; ++p) {
    const ht::hypergraph::SubsetView view(h, remaining);
    const auto sub = view.materialize();
    std::vector<VertexId> peeled_local;
    if (sub.hypergraph.num_edges() == 0 ||
        static_cast<VertexId>(remaining.size()) <= per) {
      for (VertexId i = 0; i < per; ++i) peeled_local.push_back(i);
    } else {
      const auto cut = unbalanced_kcut(sub.hypergraph, per, rng);
      HT_CHECK(cut.valid);
      peeled_local = cut.set;
    }
    std::vector<bool> peeled(remaining.size(), false);
    for (VertexId local : peeled_local) {
      part[static_cast<std::size_t>(view.old_of(local))] = p;
      peeled[static_cast<std::size_t>(local)] = true;
    }
    std::vector<VertexId> next;
    next.reserve(remaining.size() - peeled_local.size());
    for (std::size_t i = 0; i < remaining.size(); ++i)
      if (!peeled[i]) next.push_back(remaining[i]);
    remaining = std::move(next);
  }
  for (VertexId v : remaining) part[static_cast<std::size_t>(v)] = k - 1;
  return finish(h, std::move(part), k);
}

KWaySolution kway_random(const Hypergraph& h, std::int32_t k, ht::Rng& rng) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(k >= 1 && n % k == 0);
  std::vector<VertexId> perm(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(perm);
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), 0);
  for (VertexId i = 0; i < n; ++i)
    part[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
        i / (n / k);
  return finish(h, std::move(part), k);
}

}  // namespace ht::partition
