#include "partition/graph_bisection.hpp"

#include "cuttree/decomposition_tree.hpp"
#include "cuttree/tree_edge_partition.hpp"
#include "hypergraph/hypergraph.hpp"

namespace ht::partition {

using ht::graph::Graph;
using ht::graph::VertexId;

namespace {

ht::cuttree::Tree decomposition_of(const Graph& g, std::uint64_t seed) {
  ht::cuttree::DecompositionOptions options;
  options.seed = seed;
  return ht::cuttree::build_decomposition_tree(g, options);
}

std::vector<ht::cuttree::VertexId> all_vertices(VertexId n) {
  std::vector<ht::cuttree::VertexId> out(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = v;
  return out;
}

ht::hypergraph::Hypergraph wrap(const Graph& g) {
  ht::hypergraph::Hypergraph wrapper(g.num_vertices());
  for (const auto& e : g.edges()) wrapper.add_edge({e.u, e.v}, e.weight);
  wrapper.finalize();
  return wrapper;
}

}  // namespace

BisectionSolution graph_bisection_tree_based(const Graph& g, ht::Rng& rng,
                                             bool fm_polish) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(n >= 2 && n % 2 == 0);
  const auto tree = decomposition_of(g, rng());
  const auto dp =
      ht::cuttree::balanced_tree_edge_bisection(tree, all_vertices(n));
  HT_CHECK_MSG(dp.valid, "tree bisection DP infeasible");
  BisectionSolution sol;
  sol.side.assign(static_cast<std::size_t>(n), false);
  for (VertexId v = 0; v < n; ++v)
    sol.side[static_cast<std::size_t>(v)] = dp.side[static_cast<std::size_t>(v)];
  sol.valid = true;
  sol.cut = g.cut_weight(sol.side);
  // Domination: the graph cut of the leaf assignment never exceeds the
  // tree cut the DP optimized (union bound over the laminar family).
  HT_CHECK(sol.cut <= dp.tree_cut + 1e-6);
  if (fm_polish && g.num_edges() > 0) {
    const auto wrapper = wrap(g);
    BisectionSolution refined = fm_refine(wrapper, sol.side);
    if (refined.cut < sol.cut) sol = std::move(refined);
  }
  return sol;
}

KCutResult unbalanced_kcut_graph_tree_based(const Graph& g, std::int32_t k,
                                            ht::Rng& rng) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(1 <= k && k < n);
  const auto tree = decomposition_of(g, rng());
  const auto dp = ht::cuttree::tree_edge_partition(tree, all_vertices(n), k);
  KCutResult out;
  if (!dp.valid) return out;
  for (VertexId v = 0; v < n; ++v)
    if (dp.side[static_cast<std::size_t>(v)]) out.set.push_back(v);
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  for (VertexId v : out.set) side[static_cast<std::size_t>(v)] = true;
  out.cut = g.cut_weight(side);
  out.valid = true;
  HT_CHECK(out.cut <= dp.tree_cut + 1e-6);
  return out;
}

}  // namespace ht::partition
