// Minimizing k-Union solvers.
//
// MkU (Chlamtáč–Dinitz–Makarychev [5]) is both a special case of
// unbalanced k-cut (all hyperedges larger than k) and the source problem
// of the Theorem 3 hardness reduction. Greedy + swap local search stand in
// for the ~O(n^{a(1-a)}) black box of Proposition 2 (DESIGN.md); exact
// enumeration covers small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::partition {

struct MkuSolution {
  std::vector<ht::hypergraph::EdgeId> sets;  // chosen hyperedges
  double union_weight = 0.0;
  bool valid = false;
};

/// Greedy: k rounds, each picking the set with the smallest marginal
/// union increase.
MkuSolution mku_greedy(const ht::hypergraph::Hypergraph& h, std::int32_t k);

/// Greedy followed by (drop, add) swap local search.
MkuSolution mku_local_search(const ht::hypergraph::Hypergraph& h,
                             std::int32_t k, int max_rounds = 8);

/// Exact optimum over all C(m, k) combinations (small instances only).
MkuSolution mku_exact(const ht::hypergraph::Hypergraph& h, std::int32_t k);

}  // namespace ht::partition
