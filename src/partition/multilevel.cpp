#include "partition/multilevel.hpp"

#include <algorithm>
#include <cmath>

#include "partition/cut_tracker.hpp"
#include "partition/fm_fast.hpp"

namespace ht::partition {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

namespace {

struct Level {
  Hypergraph hypergraph;
  // cluster_of[v] = coarse id of fine vertex v (mapping THIS level's
  // vertices into the NEXT coarser level).
  std::vector<std::int32_t> cluster_of;
};

/// One round of connectivity matching: pairs vertices sharing heavy edges.
/// Returns the cluster map and count, or 0 clusters if no contraction
/// happened (fixed point).
std::pair<std::vector<std::int32_t>, std::int32_t> match_round(
    const Hypergraph& h, double max_cluster_weight, ht::Rng& rng) {
  const VertexId n = h.num_vertices();
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  std::vector<std::int32_t> cluster(static_cast<std::size_t>(n), -1);
  std::int32_t next_cluster = 0;
  std::vector<double> score(static_cast<std::size_t>(n), 0.0);
  std::vector<VertexId> touched;
  bool contracted = false;
  for (VertexId v : order) {
    if (cluster[static_cast<std::size_t>(v)] != -1) continue;
    // Score unmatched neighbours by shared connectivity w(e)/(|e|-1).
    touched.clear();
    for (EdgeId e : h.incident_edges(v)) {
      const double contribution =
          h.edge_weight(e) / static_cast<double>(h.edge_size(e) - 1);
      for (VertexId u : h.pins(e)) {
        if (u == v || cluster[static_cast<std::size_t>(u)] != -1) continue;
        if (score[static_cast<std::size_t>(u)] == 0.0) touched.push_back(u);
        score[static_cast<std::size_t>(u)] += contribution;
      }
    }
    VertexId best = -1;
    for (VertexId u : touched) {
      if (h.vertex_weight(v) + h.vertex_weight(u) > max_cluster_weight)
        continue;
      if (best == -1 || score[static_cast<std::size_t>(u)] >
                            score[static_cast<std::size_t>(best)])
        best = u;
    }
    for (VertexId u : touched) score[static_cast<std::size_t>(u)] = 0.0;
    cluster[static_cast<std::size_t>(v)] = next_cluster;
    if (best != -1) {
      cluster[static_cast<std::size_t>(best)] = next_cluster;
      contracted = true;
    }
    ++next_cluster;
  }
  if (!contracted) return {{}, 0};
  return {std::move(cluster), next_cluster};
}

double side_weight(const Hypergraph& h, const std::vector<bool>& side) {
  double w = 0.0;
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    if (side[static_cast<std::size_t>(v)]) w += h.vertex_weight(v);
  return w;
}

/// Weight-aware FM-style refinement: first-improvement single-vertex moves
/// that reduce the cut while keeping |w(side1) - W/2| <= tolerance.
void refine_weighted(const Hypergraph& h, std::vector<bool>& side,
                     double tolerance, int max_passes) {
  CutTracker tracker(h);
  tracker.build(side);
  const double half = h.total_vertex_weight() / 2.0;
  double w1 = side_weight(h, side);
  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      const bool on_one = tracker.on_side(v);
      const double new_w1 =
          w1 + (on_one ? -h.vertex_weight(v) : h.vertex_weight(v));
      if (std::fabs(new_w1 - half) > tolerance + 1e-9) continue;
      const double delta = tracker.flip_delta(v);
      if (delta < -1e-12) {
        tracker.flip(v);
        w1 = new_w1;
        improved = true;
      }
    }
    if (!improved) break;
  }
  side = tracker.side();
}

/// Balanced-by-weight initial partition of the coarsest level: LPT bin
/// assignment with randomized tie noise, multi-start.
std::vector<bool> coarsest_partition(const Hypergraph& h, ht::Rng& rng,
                                     int starts, int fm_passes) {
  const VertexId n = h.num_vertices();
  const double half = h.total_vertex_weight() / 2.0;
  std::vector<bool> best;
  double best_cut = 1e300;
  for (int s = 0; s < starts; ++s) {
    std::vector<VertexId> order(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
    std::sort(order.begin(), order.end(), [&](VertexId l, VertexId r) {
      return h.vertex_weight(l) > h.vertex_weight(r);
    });
    // Randomized tie-ish perturbation: swap a few random adjacent entries.
    for (int p = 0; p < n; ++p) {
      const auto i = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(std::max<VertexId>(
              n - 1, 1))));
      std::swap(order[i], order[i + 1]);
    }
    std::vector<bool> side(static_cast<std::size_t>(n), false);
    double w1 = 0.0, w0 = 0.0;
    for (VertexId v : order) {
      const bool to_one = w1 <= w0;
      side[static_cast<std::size_t>(v)] = to_one;
      (to_one ? w1 : w0) += h.vertex_weight(v);
    }
    const double tolerance =
        std::max(0.02 * h.total_vertex_weight(),
                 2.0 * std::fabs(w1 - half));
    refine_weighted(h, side, tolerance, fm_passes);
    const double cut = h.cut_weight(side);
    if (cut < best_cut) {
      best_cut = cut;
      best = std::move(side);
    }
  }
  return best;
}

}  // namespace

BisectionSolution multilevel_bisection(const Hypergraph& h, ht::Rng& rng,
                                       const MultilevelOptions& options) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(n >= 2 && n % 2 == 0);

  // ---- coarsening ----
  std::vector<Level> levels;
  levels.push_back({h, {}});
  // Work on copies with vertex weight = represented COUNT so weight
  // balance at coarse levels approximates count balance at the finest.
  {
    Hypergraph unit(h.num_vertices());
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      auto pins = h.pins(e);
      unit.add_edge({pins.begin(), pins.end()}, h.edge_weight(e));
    }
    for (VertexId v = 0; v < n; ++v) unit.set_vertex_weight(v, 1.0);
    unit.finalize();
    levels.back().hypergraph = std::move(unit);
  }
  const double max_cluster_weight =
      options.max_cluster_weight_factor *
      std::max(2.0, static_cast<double>(n) /
                        std::max(options.coarsest_size, 2));
  while (levels.back().hypergraph.num_vertices() > options.coarsest_size) {
    auto [cluster, count] =
        match_round(levels.back().hypergraph, max_cluster_weight, rng);
    if (count == 0) break;  // no further contraction possible
    Hypergraph coarse =
        ht::hypergraph::contract(levels.back().hypergraph, cluster, count);
    levels.back().cluster_of = std::move(cluster);
    levels.push_back({std::move(coarse), {}});
  }

  // ---- coarsest solve ----
  std::vector<bool> side =
      coarsest_partition(levels.back().hypergraph, rng,
                         options.coarsest_starts, options.fm_passes);

  // ---- uncoarsening + refinement ----
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    const auto& fine = levels[level];
    std::vector<bool> fine_side(
        static_cast<std::size_t>(fine.hypergraph.num_vertices()), false);
    for (VertexId v = 0; v < fine.hypergraph.num_vertices(); ++v) {
      fine_side[static_cast<std::size_t>(v)] =
          side[static_cast<std::size_t>(
              fine.cluster_of[static_cast<std::size_t>(v)])];
    }
    const double tolerance =
        level == 0 ? 0.0
                   : 0.03 * fine.hypergraph.total_vertex_weight();
    if (level > 0) {
      refine_weighted(fine.hypergraph, fine_side, tolerance,
                      options.fm_passes);
    }
    side = std::move(fine_side);
  }

  // ---- exact count balance at the finest level ----
  std::int64_t on_one = 0;
  for (bool b : side) on_one += b ? 1 : 0;
  CutTracker tracker(levels[0].hypergraph);
  tracker.build(side);
  while (on_one != n / 2) {
    const bool from_one = on_one > n / 2;
    VertexId pick = -1;
    double best_delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (tracker.on_side(v) != from_one) continue;
      const double delta = tracker.flip_delta(v);
      if (pick == -1 || delta < best_delta) {
        pick = v;
        best_delta = delta;
      }
    }
    HT_CHECK(pick != -1);
    tracker.flip(pick);
    on_one += from_one ? -1 : 1;
  }
  BisectionSolution refined = fm_refine_fast(h, tracker.side(), 8);
  return refined;
}

}  // namespace ht::partition
