// Fiduccia–Mattheyses bisection refinement for hypergraphs.
//
// This is the practitioner baseline the paper's novelty discussion points
// at (heuristic partitioners), and the refinement engine reused by the
// spectral graph-bisection heuristic. Exact balance (|V|/2 per side) with
// the usual one-vertex transient slack inside a pass.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::partition {

struct BisectionSolution {
  std::vector<bool> side;  // true = side 1
  double cut = 0.0;
  bool valid = false;
};

/// One FM refinement run from the given balanced starting partition.
/// Returns a balanced partition with cut <= the starting cut.
BisectionSolution fm_refine(const ht::hypergraph::Hypergraph& h,
                            std::vector<bool> start, int max_passes = 16);

/// Multi-start FM: `starts` random balanced partitions, each refined;
/// best kept. Requires an even number of vertices.
BisectionSolution fm_bisection(const ht::hypergraph::Hypergraph& h,
                               ht::Rng& rng, int starts = 8,
                               int max_passes = 16);

/// Checks balance and recomputes the cut of a solution.
void validate_bisection(const ht::hypergraph::Hypergraph& h,
                        const BisectionSolution& s);

}  // namespace ht::partition
