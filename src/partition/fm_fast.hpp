// Heap-accelerated Fiduccia–Mattheyses refinement.
//
// The reference fm_refine() selects each move by a full O(n·deg) rescan —
// simple and obviously correct, but quadratic per pass. This variant keeps
// per-vertex gains in a lazy max-heap (stale entries skipped on pop),
// giving O((n + pins) log n) passes. Same contract as fm_refine: exact
// balance, monotone improvement, recomputed final cut. The two are
// cross-checked against each other in tests; benches use this one at
// scale.
#pragma once

#include "partition/fm.hpp"

namespace ht::partition {

/// Drop-in faster fm_refine. Returns a balanced partition with
/// cut <= the starting cut.
BisectionSolution fm_refine_fast(const ht::hypergraph::Hypergraph& h,
                                 std::vector<bool> start,
                                 int max_passes = 16);

/// Multi-start wrapper over fm_refine_fast.
BisectionSolution fm_bisection_fast(const ht::hypergraph::Hypergraph& h,
                                    ht::Rng& rng, int starts = 8,
                                    int max_passes = 16);

}  // namespace ht::partition
