#include "partition/mku.hpp"

#include <algorithm>

#include "reduction/mku_bisection.hpp"
#include "util/subsets.hpp"

namespace ht::partition {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

namespace {

/// Coverage state: per-vertex multiplicity under the chosen sets, with the
/// current union weight maintained incrementally.
class UnionState {
 public:
  explicit UnionState(const Hypergraph& h) : h_(h) {
    multiplicity_.assign(static_cast<std::size_t>(h.num_vertices()), 0);
  }

  double union_weight() const { return union_weight_; }

  double add_cost(EdgeId e) const {
    double cost = 0.0;
    for (VertexId v : h_.pins(e))
      if (multiplicity_[static_cast<std::size_t>(v)] == 0)
        cost += h_.vertex_weight(v);
    return cost;
  }

  void add(EdgeId e) {
    for (VertexId v : h_.pins(e)) {
      if (multiplicity_[static_cast<std::size_t>(v)]++ == 0)
        union_weight_ += h_.vertex_weight(v);
    }
  }

  void remove(EdgeId e) {
    for (VertexId v : h_.pins(e)) {
      if (--multiplicity_[static_cast<std::size_t>(v)] == 0)
        union_weight_ -= h_.vertex_weight(v);
    }
  }

 private:
  const Hypergraph& h_;
  std::vector<std::int32_t> multiplicity_;
  double union_weight_ = 0.0;
};

}  // namespace

MkuSolution mku_greedy(const Hypergraph& h, std::int32_t k) {
  HT_CHECK(h.finalized());
  HT_CHECK(1 <= k && k <= h.num_edges());
  UnionState state(h);
  std::vector<bool> chosen(static_cast<std::size_t>(h.num_edges()), false);
  MkuSolution out;
  for (std::int32_t round = 0; round < k; ++round) {
    EdgeId best = -1;
    double best_cost = 0.0;
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      if (chosen[static_cast<std::size_t>(e)]) continue;
      const double cost = state.add_cost(e);
      if (best == -1 || cost < best_cost) {
        best = e;
        best_cost = cost;
      }
    }
    HT_CHECK(best != -1);
    chosen[static_cast<std::size_t>(best)] = true;
    state.add(best);
    out.sets.push_back(best);
  }
  out.union_weight = state.union_weight();
  out.valid = true;
  return out;
}

MkuSolution mku_local_search(const Hypergraph& h, std::int32_t k,
                             int max_rounds) {
  MkuSolution sol = mku_greedy(h, k);
  UnionState state(h);
  std::vector<bool> chosen(static_cast<std::size_t>(h.num_edges()), false);
  for (EdgeId e : sol.sets) {
    chosen[static_cast<std::size_t>(e)] = true;
    state.add(e);
  }
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (std::size_t i = 0; i < sol.sets.size() && !improved; ++i) {
      const EdgeId drop = sol.sets[i];
      state.remove(drop);
      const double without = state.union_weight();
      const double current = sol.union_weight;
      EdgeId best_add = -1;
      double best_total = current;
      for (EdgeId e = 0; e < h.num_edges(); ++e) {
        if (chosen[static_cast<std::size_t>(e)] && e != drop) continue;
        if (e == drop) continue;
        const double total = without + state.add_cost(e);
        if (total < best_total - 1e-12) {
          best_total = total;
          best_add = e;
        }
      }
      if (best_add != -1) {
        chosen[static_cast<std::size_t>(drop)] = false;
        chosen[static_cast<std::size_t>(best_add)] = true;
        state.add(best_add);
        sol.sets[i] = best_add;
        sol.union_weight = state.union_weight();
        improved = true;
      } else {
        state.add(drop);  // revert
      }
    }
    if (!improved) break;
  }
  sol.union_weight = ht::reduction::mku_union_weight(h, sol.sets);
  return sol;
}

MkuSolution mku_exact(const Hypergraph& h, std::int32_t k) {
  HT_CHECK(h.finalized());
  const std::int32_t m = h.num_edges();
  HT_CHECK(1 <= k && k <= m);
  double combos = 1.0;
  for (std::int32_t i = 0; i < k; ++i)
    combos *= static_cast<double>(m - i) / static_cast<double>(i + 1);
  HT_CHECK_MSG(combos <= 6e6, "C(m,k) too large for exact MkU");
  MkuSolution best;
  ht::for_each_combination(m, k, [&](const std::vector<int>& idx) {
    std::vector<EdgeId> sets(idx.begin(), idx.end());
    const double w = ht::reduction::mku_union_weight(h, sets);
    if (!best.valid || w < best.union_weight) {
      best.sets = std::move(sets);
      best.union_weight = w;
      best.valid = true;
    }
  });
  return best;
}

}  // namespace ht::partition
