#include "partition/fm_fast.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace ht::partition {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

namespace {

/// Incremental gain structure: pin counts per side plus per-vertex gains,
/// updated only for the pins of edges whose cut state can change.
class GainTracker {
 public:
  GainTracker(const Hypergraph& h, const std::vector<bool>& side)
      : h_(h), side_(side) {
    pins_on_one_.assign(static_cast<std::size_t>(h.num_edges()), 0);
    for (EdgeId e = 0; e < h.num_edges(); ++e)
      for (VertexId v : h.pins(e))
        pins_on_one_[static_cast<std::size_t>(e)] +=
            side[static_cast<std::size_t>(v)] ? 1 : 0;
    gain_.assign(static_cast<std::size_t>(h.num_vertices()), 0.0);
    for (VertexId v = 0; v < h.num_vertices(); ++v)
      gain_[static_cast<std::size_t>(v)] = compute_gain(v);
  }

  double gain(VertexId v) const { return gain_[static_cast<std::size_t>(v)]; }
  bool on_one(VertexId v) const { return side_[static_cast<std::size_t>(v)]; }
  const std::vector<bool>& side() const { return side_; }

  /// Applies the move and returns the vertices whose gain changed.
  std::vector<VertexId> apply_move(VertexId v) {
    std::vector<VertexId> dirty;
    const bool from_one = side_[static_cast<std::size_t>(v)];
    for (EdgeId e : h_.incident_edges(v)) {
      const auto idx = static_cast<std::size_t>(e);
      const std::int32_t size = h_.edge_size(e);
      const std::int32_t ones_before = pins_on_one_[idx];
      const std::int32_t ones_after = ones_before + (from_one ? -1 : 1);
      pins_on_one_[idx] = ones_after;
      // Gains of an edge's pins only change when the edge is near a
      // critical state (0, 1, size-1 or size pins on a side).
      const bool critical =
          ones_before <= 1 || ones_before >= size - 1 || ones_after <= 1 ||
          ones_after >= size - 1;
      if (critical)
        for (VertexId u : h_.pins(e)) dirty.push_back(u);
    }
    side_[static_cast<std::size_t>(v)] = !from_one;
    dirty.push_back(v);
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    for (VertexId u : dirty)
      gain_[static_cast<std::size_t>(u)] = compute_gain(u);
    return dirty;
  }

  double cut() const {
    double total = 0.0;
    for (EdgeId e = 0; e < h_.num_edges(); ++e) {
      const auto ones = pins_on_one_[static_cast<std::size_t>(e)];
      if (ones > 0 && ones < h_.edge_size(e)) total += h_.edge_weight(e);
    }
    return total;
  }

 private:
  double compute_gain(VertexId v) const {
    const bool from_one = side_[static_cast<std::size_t>(v)];
    double g = 0.0;
    for (EdgeId e : h_.incident_edges(v)) {
      const auto idx = static_cast<std::size_t>(e);
      const std::int32_t size = h_.edge_size(e);
      const std::int32_t on_my_side =
          from_one ? pins_on_one_[idx] : size - pins_on_one_[idx];
      const std::int32_t on_other = size - on_my_side;
      if (on_my_side == 1 && on_other > 0) g += h_.edge_weight(e);
      if (on_other == 0) g -= h_.edge_weight(e);
    }
    return g;
  }

  const Hypergraph& h_;
  std::vector<bool> side_;
  std::vector<std::int32_t> pins_on_one_;
  std::vector<double> gain_;
};

}  // namespace

BisectionSolution fm_refine_fast(const Hypergraph& h,
                                 std::vector<bool> start, int max_passes) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(n % 2 == 0 && n >= 2);
  HT_CHECK(start.size() == static_cast<std::size_t>(n));
  const VertexId half = n / 2;
  {
    VertexId ones = 0;
    for (bool s : start) ones += s ? 1 : 0;
    HT_CHECK_MSG(ones == half, "start partition unbalanced");
  }

  BisectionSolution best;
  best.side = std::move(start);
  best.cut = h.cut_weight(best.side);
  best.valid = true;

  using HeapItem = std::pair<double, VertexId>;  // (gain, vertex)
  for (int pass = 0; pass < max_passes; ++pass) {
    GainTracker tracker(h, best.side);
    VertexId on_one = half;
    std::vector<bool> locked(static_cast<std::size_t>(n), false);
    std::priority_queue<HeapItem> heap;
    for (VertexId v = 0; v < n; ++v) heap.push({tracker.gain(v), v});

    double cut = best.cut;
    std::vector<VertexId> sequence;
    std::vector<double> cut_after;
    sequence.reserve(static_cast<std::size_t>(n));

    while (!heap.empty()) {
      // Pop the best admissible, non-stale, unlocked vertex.
      VertexId v = -1;
      std::vector<HeapItem> deferred;
      while (!heap.empty()) {
        const auto [g, u] = heap.top();
        heap.pop();
        if (locked[static_cast<std::size_t>(u)]) continue;
        if (g != tracker.gain(u)) {
          heap.push({tracker.gain(u), u});  // refresh stale entry
          continue;
        }
        const VertexId next_on_one =
            on_one + (tracker.on_one(u) ? -1 : 1);
        if (std::abs(next_on_one - half) > 1) {
          deferred.push_back({g, u});
          continue;
        }
        v = u;
        break;
      }
      for (const auto& item : deferred) heap.push(item);
      if (v == -1) break;
      cut -= tracker.gain(v);
      on_one += tracker.on_one(v) ? -1 : 1;
      locked[static_cast<std::size_t>(v)] = true;
      for (VertexId u : tracker.apply_move(v)) {
        if (!locked[static_cast<std::size_t>(u)])
          heap.push({tracker.gain(u), u});
      }
      sequence.push_back(v);
      cut_after.push_back(on_one == half ? cut : 1e300);
    }

    std::size_t best_prefix = 0;
    double best_prefix_cut = best.cut;
    for (std::size_t i = 0; i < cut_after.size(); ++i) {
      if (cut_after[i] < best_prefix_cut - 1e-12) {
        best_prefix_cut = cut_after[i];
        best_prefix = i + 1;
      }
    }
    if (best_prefix == 0) break;
    for (std::size_t i = 0; i < best_prefix; ++i) {
      const auto v = static_cast<std::size_t>(sequence[i]);
      best.side[v] = !best.side[v];
    }
    best.cut = best_prefix_cut;
  }
  best.cut = h.cut_weight(best.side);
  return best;
}

BisectionSolution fm_bisection_fast(const Hypergraph& h, ht::Rng& rng,
                                    int starts, int max_passes) {
  HT_CHECK(h.num_vertices() % 2 == 0 && h.num_vertices() >= 2);
  const VertexId n = h.num_vertices();
  BisectionSolution best;
  for (int s = 0; s < starts; ++s) {
    std::vector<VertexId> perm(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
    rng.shuffle(perm);
    std::vector<bool> side(static_cast<std::size_t>(n), false);
    for (VertexId i = 0; i < n / 2; ++i)
      side[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = true;
    BisectionSolution sol = fm_refine_fast(h, std::move(side), max_passes);
    if (!best.valid || sol.cut < best.cut) best = std::move(sol);
  }
  return best;
}

}  // namespace ht::partition
