#include "partition/exact.hpp"

#include "graph/graph.hpp"
#include "util/subsets.hpp"

namespace ht::partition {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

BisectionSolution exact_hypergraph_bisection(const Hypergraph& h) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(n >= 2 && n % 2 == 0);
  HT_CHECK_MSG(n <= 24, "exact bisection limited to n <= 24");
  BisectionSolution best;
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  // Fix vertex 0 on side 0; enumerate the other n/2 picks among [1, n).
  ht::for_each_combination(n - 1, n / 2, [&](const std::vector<int>& idx) {
    std::fill(side.begin(), side.end(), false);
    for (int i : idx) side[static_cast<std::size_t>(i) + 1] = true;
    const double cut = h.cut_weight(side);
    if (!best.valid || cut < best.cut) {
      best.side = side;
      best.cut = cut;
      best.valid = true;
    }
  });
  return best;
}

BisectionSolution exact_graph_bisection(const ht::graph::Graph& g) {
  Hypergraph wrapper(g.num_vertices());
  for (const auto& e : g.edges()) wrapper.add_edge({e.u, e.v}, e.weight);
  wrapper.finalize();
  return exact_hypergraph_bisection(wrapper);
}

}  // namespace ht::partition
