#include "partition/fm.hpp"

#include <algorithm>
#include <cmath>

namespace ht::partition {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

namespace {

/// Pin counts per side for every hyperedge, kept incrementally.
struct PinCounts {
  std::vector<std::int32_t> on_side[2];

  void build(const Hypergraph& h, const std::vector<bool>& side) {
    for (auto& s : on_side)
      s.assign(static_cast<std::size_t>(h.num_edges()), 0);
    for (EdgeId e = 0; e < h.num_edges(); ++e)
      for (VertexId v : h.pins(e))
        ++on_side[side[static_cast<std::size_t>(v)] ? 1 : 0]
                 [static_cast<std::size_t>(e)];
  }

  double cut(const Hypergraph& h) const {
    double total = 0.0;
    for (EdgeId e = 0; e < h.num_edges(); ++e)
      if (on_side[0][static_cast<std::size_t>(e)] > 0 &&
          on_side[1][static_cast<std::size_t>(e)] > 0)
        total += h.edge_weight(e);
    return total;
  }

  /// Cut-weight change if v moves from `from` to 1-from.
  double gain(const Hypergraph& h, VertexId v, int from) const {
    double g = 0.0;
    const int to = 1 - from;
    for (EdgeId e : h.incident_edges(v)) {
      const auto idx = static_cast<std::size_t>(e);
      if (on_side[from][idx] == 1 && on_side[to][idx] > 0)
        g += h.edge_weight(e);  // edge becomes uncut
      else if (on_side[to][idx] == 0)
        g -= h.edge_weight(e);  // edge becomes cut
    }
    return g;
  }

  void apply_move(const Hypergraph& h, VertexId v, int from) {
    for (EdgeId e : h.incident_edges(v)) {
      const auto idx = static_cast<std::size_t>(e);
      --on_side[from][idx];
      ++on_side[1 - from][idx];
    }
  }
};

}  // namespace

BisectionSolution fm_refine(const Hypergraph& h, std::vector<bool> start,
                            int max_passes) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(n % 2 == 0 && n >= 2);
  HT_CHECK(start.size() == static_cast<std::size_t>(n));
  const VertexId half = n / 2;
  {
    VertexId count1 = 0;
    for (bool s : start) count1 += s ? 1 : 0;
    HT_CHECK_MSG(count1 == half, "start partition unbalanced");
  }

  PinCounts counts;
  counts.build(h, start);
  double current_cut = counts.cut(h);

  BisectionSolution best;
  best.side = start;
  best.cut = current_cut;
  best.valid = true;

  for (int pass = 0; pass < max_passes; ++pass) {
    std::vector<bool> side = best.side;
    counts.build(h, side);
    double cut = best.cut;
    VertexId on_one = half;

    std::vector<bool> locked(static_cast<std::size_t>(n), false);
    std::vector<VertexId> move_sequence;
    std::vector<double> cut_after_move;
    move_sequence.reserve(static_cast<std::size_t>(n));

    for (VertexId step = 0; step < n; ++step) {
      VertexId best_v = -1;
      double best_gain = 0.0;
      // Balance rule: imbalance after the move must stay within 1 vertex.
      for (VertexId v = 0; v < n; ++v) {
        if (locked[static_cast<std::size_t>(v)]) continue;
        const int from = side[static_cast<std::size_t>(v)] ? 1 : 0;
        const VertexId new_on_one = on_one + (from == 0 ? 1 : -1);
        if (std::abs(new_on_one - half) > 1) continue;
        const double gain = counts.gain(h, v, from);
        if (best_v == -1 || gain > best_gain) {
          best_v = v;
          best_gain = gain;
        }
      }
      if (best_v == -1) break;
      const int from = side[static_cast<std::size_t>(best_v)] ? 1 : 0;
      counts.apply_move(h, best_v, from);
      side[static_cast<std::size_t>(best_v)] = (from == 0);
      on_one += (from == 0 ? 1 : -1);
      locked[static_cast<std::size_t>(best_v)] = true;
      cut -= best_gain;
      move_sequence.push_back(best_v);
      cut_after_move.push_back(on_one == half ? cut : 1e300);
    }

    // Best balanced prefix of the move sequence.
    std::size_t best_prefix = 0;  // 0 = keep the starting partition
    double best_prefix_cut = best.cut;
    for (std::size_t i = 0; i < cut_after_move.size(); ++i) {
      if (cut_after_move[i] < best_prefix_cut - 1e-12) {
        best_prefix_cut = cut_after_move[i];
        best_prefix = i + 1;
      }
    }
    if (best_prefix == 0) break;  // pass produced no balanced improvement
    std::vector<bool> improved = best.side;
    for (std::size_t i = 0; i < best_prefix; ++i) {
      const auto v = static_cast<std::size_t>(move_sequence[i]);
      improved[v] = !improved[v];
    }
    best.side = std::move(improved);
    best.cut = best_prefix_cut;
  }
  // Re-evaluate combinatorially: the reported cut is never the incremental
  // accumulator.
  best.cut = h.cut_weight(best.side);
  return best;
}

BisectionSolution fm_bisection(const Hypergraph& h, ht::Rng& rng, int starts,
                               int max_passes) {
  HT_CHECK(h.num_vertices() % 2 == 0 && h.num_vertices() >= 2);
  const VertexId n = h.num_vertices();
  BisectionSolution best;
  for (int s = 0; s < starts; ++s) {
    std::vector<VertexId> perm(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
    rng.shuffle(perm);
    std::vector<bool> side(static_cast<std::size_t>(n), false);
    for (VertexId i = 0; i < n / 2; ++i)
      side[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = true;
    BisectionSolution sol = fm_refine(h, std::move(side), max_passes);
    if (!best.valid || sol.cut < best.cut) best = std::move(sol);
  }
  return best;
}

void validate_bisection(const Hypergraph& h, const BisectionSolution& s) {
  HT_CHECK(s.valid);
  HT_CHECK(s.side.size() == static_cast<std::size_t>(h.num_vertices()));
  VertexId on_one = 0;
  for (bool b : s.side) on_one += b ? 1 : 0;
  HT_CHECK_MSG(2 * on_one == h.num_vertices(), "bisection unbalanced");
  const double cut = h.cut_weight(s.side);
  HT_CHECK_MSG(std::fabs(cut - s.cut) <= 1e-6 * (1.0 + std::fabs(cut)),
               "stored cut " << s.cut << " != recomputed " << cut);
}

}  // namespace ht::partition
