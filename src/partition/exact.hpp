// Exact (brute-force) solvers used as ground truth by tests and by the
// approximation-ratio benches.
#pragma once

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "partition/fm.hpp"

namespace ht::partition {

/// Exact Minimum Hypergraph Bisection by half-set enumeration. n must be
/// even and <= 24 (the enumeration is C(n-1, n/2-1) sides).
BisectionSolution exact_hypergraph_bisection(
    const ht::hypergraph::Hypergraph& h);

/// Exact minimum bisection of a graph (wraps it 2-uniform).
BisectionSolution exact_graph_bisection(const ht::graph::Graph& g);

}  // namespace ht::partition
