// Sparsest hyperedge cut oracle.
//
// Phase 1 of Theorem 1 recursively peels pieces off the hypergraph using a
// sparsest-cut subroutine; the paper cites the polylogarithmic hypergraph
// algorithm of Louis–Makarychev [13]. Surrogate (DESIGN.md): Fiedler sweep
// on the clique expansion, evaluating the *hypergraph* cut incrementally at
// every prefix, followed by greedy single-vertex improvement; exact
// enumeration for small instances. Sparsity here is cut(S) / |S| with S the
// smaller side (cardinality), matching Section 2.2.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::partition {

struct SparsestCutResult {
  std::vector<ht::hypergraph::VertexId> smaller_side;
  double cut = 0.0;
  double sparsity = 0.0;
  bool valid = false;
};

/// Exact optimum by subset enumeration (n <= 20).
SparsestCutResult sparsest_hyperedge_cut_exact(
    const ht::hypergraph::Hypergraph& h);

/// Heuristic oracle: spectral sweep + greedy improvement.
SparsestCutResult sparsest_hyperedge_cut(const ht::hypergraph::Hypergraph& h,
                                         ht::Rng& rng);

}  // namespace ht::partition
