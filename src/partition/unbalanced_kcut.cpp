#include "partition/unbalanced_kcut.hpp"

#include <algorithm>
#include <cmath>

#include "flow/gomory_hu.hpp"
#include "lp/spectral.hpp"
#include "partition/cut_tracker.hpp"
#include "partition/graph_bisection.hpp"
#include "reduction/clique_expansion.hpp"
#include "util/subsets.hpp"

namespace ht::partition {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

namespace {

std::vector<VertexId> side_to_set(const std::vector<bool>& side) {
  std::vector<VertexId> set;
  for (std::size_t v = 0; v < side.size(); ++v)
    if (side[v]) set.push_back(static_cast<VertexId>(v));
  return set;
}

/// Records the best cost/set per size as a construction walks through
/// sides of varying cardinality.
class ProfileRecorder {
 public:
  explicit ProfileRecorder(std::int32_t kmax) {
    profile_.cost.assign(static_cast<std::size_t>(kmax) + 1, 1e300);
    profile_.sets.resize(static_cast<std::size_t>(kmax) + 1);
    profile_.cost[0] = 0.0;
  }

  void offer(const CutTracker& tracker) {
    const std::int64_t k = tracker.side_count();
    if (k < 1 || k >= static_cast<std::int64_t>(profile_.cost.size())) return;
    const auto idx = static_cast<std::size_t>(k);
    if (tracker.cut() < profile_.cost[idx]) {
      profile_.cost[idx] = tracker.cut();
      profile_.sets[idx] = side_to_set(tracker.side());
    }
  }

  void offer_set(const Hypergraph& h, const std::vector<VertexId>& set) {
    if (set.empty() ||
        set.size() >= profile_.cost.size())
      return;
    const double cut = h.cut_weight(set);
    if (cut < profile_.cost[set.size()]) {
      profile_.cost[set.size()] = cut;
      profile_.sets[set.size()] = set;
    }
  }

  KCutProfile take() { return std::move(profile_); }
  const KCutProfile& peek() const { return profile_; }

 private:
  KCutProfile profile_;
};

/// Greedy growth from a seed: repeatedly add the vertex with the smallest
/// cut increase (boundary candidates first, all vertices as fallback),
/// recording every intermediate size.
void greedy_growth(const Hypergraph& h, VertexId seed, std::int32_t kmax,
                   ProfileRecorder& recorder) {
  const VertexId n = h.num_vertices();
  CutTracker tracker(h);
  tracker.build(std::vector<bool>(static_cast<std::size_t>(n), false));
  tracker.flip(seed);
  recorder.offer(tracker);
  std::vector<bool> is_boundary(static_cast<std::size_t>(n), false);
  auto refresh_boundary = [&](VertexId just_added) {
    for (EdgeId e : h.incident_edges(just_added))
      for (VertexId u : h.pins(e))
        if (!tracker.on_side(u)) is_boundary[static_cast<std::size_t>(u)] = true;
  };
  refresh_boundary(seed);
  for (std::int32_t step = 1; step < kmax && step < n - 1; ++step) {
    VertexId best_v = -1;
    double best_delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (tracker.on_side(v)) continue;
      if (!is_boundary[static_cast<std::size_t>(v)]) continue;
      const double delta = tracker.flip_delta(v);
      if (best_v == -1 || delta < best_delta) {
        best_v = v;
        best_delta = delta;
      }
    }
    if (best_v == -1) {
      // No boundary candidates (disconnected remainder): take any vertex.
      for (VertexId v = 0; v < n; ++v) {
        if (!tracker.on_side(v)) {
          best_v = v;
          break;
        }
      }
    }
    if (best_v == -1) break;
    tracker.flip(best_v);
    is_boundary[static_cast<std::size_t>(best_v)] = false;
    refresh_boundary(best_v);
    recorder.offer(tracker);
  }
}

/// Swap local search at fixed cardinality: first-improvement over
/// (drop s, add t) pairs restricted to boundary vertices.
std::vector<VertexId> swap_improve(const Hypergraph& h,
                                   std::vector<VertexId> set,
                                   int max_rounds) {
  const VertexId n = h.num_vertices();
  if (set.empty() || static_cast<VertexId>(set.size()) >= n) return set;
  CutTracker tracker(h);
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  for (VertexId v : set) side[static_cast<std::size_t>(v)] = true;
  tracker.build(side);
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (VertexId s = 0; s < n && !improved; ++s) {
      if (!tracker.on_side(s)) continue;
      const double drop_delta = tracker.flip_delta(s);
      tracker.flip(s);
      for (VertexId t = 0; t < n; ++t) {
        if (t == s || tracker.on_side(t)) continue;
        const double add_delta = tracker.flip_delta(t);
        if (drop_delta + add_delta < -1e-12) {
          tracker.flip(t);
          improved = true;
          break;
        }
      }
      if (!improved) tracker.flip(s);  // undo the drop
    }
    if (!improved) break;
  }
  return side_to_set(tracker.side());
}

void sweep_profile(const Hypergraph& h, const std::vector<VertexId>& order,
                   std::int32_t kmax, ProfileRecorder& recorder) {
  CutTracker tracker(h);
  tracker.build(
      std::vector<bool>(static_cast<std::size_t>(h.num_vertices()), false));
  const auto limit = std::min<std::int64_t>(kmax, h.num_vertices() - 1);
  for (std::int64_t i = 0; i < limit; ++i) {
    tracker.flip(order[static_cast<std::size_t>(i)]);
    recorder.offer(tracker);
  }
}

std::vector<VertexId> fiedler_order(const Hypergraph& h, ht::Rng& rng) {
  const ht::graph::Graph expansion = ht::reduction::clique_expansion(h);
  std::vector<VertexId> order(static_cast<std::size_t>(h.num_vertices()));
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    order[static_cast<std::size_t>(v)] = v;
  if (expansion.num_edges() == 0) return order;
  const auto fiedler = ht::lp::fiedler_vector(expansion, {}, rng);
  std::sort(order.begin(), order.end(), [&](VertexId l, VertexId r) {
    return fiedler.vector[static_cast<std::size_t>(l)] <
           fiedler.vector[static_cast<std::size_t>(r)];
  });
  return order;
}

std::vector<VertexId> profile_seeds(const Hypergraph& h, ht::Rng& rng,
                                    std::size_t count) {
  const VertexId n = h.num_vertices();
  std::vector<VertexId> seeds;
  VertexId lo = 0, hi = 0;
  for (VertexId v = 1; v < n; ++v) {
    if (h.degree(v) < h.degree(lo)) lo = v;
    if (h.degree(v) > h.degree(hi)) hi = v;
  }
  seeds.push_back(lo);
  if (hi != lo) seeds.push_back(hi);
  while (seeds.size() < count) {
    const auto v = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (std::find(seeds.begin(), seeds.end(), v) == seeds.end())
      seeds.push_back(v);
  }
  return seeds;
}

}  // namespace

KCutResult unbalanced_kcut_exact(const Hypergraph& h, std::int32_t k) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  HT_CHECK(1 <= k && k < n);
  // Guard against combinatorial blow-up.
  double combos = 1.0;
  for (std::int32_t i = 0; i < k; ++i)
    combos *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  HT_CHECK_MSG(combos <= 6e6, "C(n,k) too large for exact k-cut");
  KCutResult best;
  ht::for_each_combination(n, k, [&](const std::vector<int>& idx) {
    std::vector<VertexId> set(idx.begin(), idx.end());
    const double cut = h.cut_weight(set);
    if (!best.valid || cut < best.cut) {
      best.set = set;
      best.cut = cut;
      best.valid = true;
    }
  });
  return best;
}

KCutProfile unbalanced_kcut_profile(const Hypergraph& h, std::int32_t kmax,
                                    ht::Rng& rng) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  kmax = std::min<std::int32_t>(kmax, n - 1);
  HT_CHECK(kmax >= 0);
  ProfileRecorder recorder(kmax);
  if (kmax == 0 || n < 2) return recorder.take();
  for (VertexId seed : profile_seeds(h, rng, n > 64 ? 4 : 2))
    greedy_growth(h, seed, kmax, recorder);
  const auto order = fiedler_order(h, rng);
  sweep_profile(h, order, kmax, recorder);
  std::vector<VertexId> reversed(order.rbegin(), order.rend());
  sweep_profile(h, reversed, kmax, recorder);
  return recorder.take();
}

KCutResult unbalanced_kcut(const Hypergraph& h, std::int32_t k,
                           ht::Rng& rng) {
  HT_CHECK(1 <= k && k < h.num_vertices());
  KCutProfile profile = unbalanced_kcut_profile(h, k, rng);
  KCutResult out;
  if (profile.sets[static_cast<std::size_t>(k)].empty()) return out;
  out.set = swap_improve(h, profile.sets[static_cast<std::size_t>(k)], 8);
  out.cut = h.cut_weight(out.set);
  out.valid = true;
  return out;
}

KCutResult unbalanced_kcut_via_clique_expansion(const Hypergraph& h,
                                                std::int32_t k,
                                                ht::Rng& rng) {
  HT_CHECK(1 <= k && k < h.num_vertices());
  const ht::graph::Graph expansion = ht::reduction::clique_expansion(h);
  // Wrap the expansion as a 2-uniform hypergraph so the same portfolio
  // optimizes delta_G'.
  Hypergraph wrapper(expansion.num_vertices());
  for (const auto& e : expansion.edges())
    wrapper.add_edge({e.u, e.v}, e.weight);
  wrapper.finalize();
  KCutResult graph_best = unbalanced_kcut(wrapper, k, rng);
  KCutResult out;
  if (!graph_best.valid) return out;
  out.set = std::move(graph_best.set);
  out.cut = h.cut_weight(out.set);  // cost mapped back to the hypergraph
  out.valid = true;
  return out;
}

KCutResult unbalanced_kcut_graph(const ht::graph::Graph& g, std::int32_t k,
                                 ht::Rng& rng) {
  HT_CHECK(g.finalized());
  HT_CHECK(1 <= k && k < g.num_vertices());
  Hypergraph wrapper(g.num_vertices());
  for (const auto& e : g.edges()) wrapper.add_edge({e.u, e.v}, e.weight);
  wrapper.finalize();
  KCutResult best = unbalanced_kcut(wrapper, k, rng);

  // Decomposition-tree DP candidate (the [17]-style subroutine of
  // Proposition 1).
  if (g.num_edges() > 0) {
    KCutResult tree_candidate = unbalanced_kcut_graph_tree_based(g, k, rng);
    if (tree_candidate.valid &&
        (!best.valid || tree_candidate.cut < best.cut)) {
      best = std::move(tree_candidate);
    }
  }

  // Gomory–Hu candidates: the lighter side of each tree edge is a
  // known-good region; grow or shrink it greedily to exactly k.
  if (g.num_edges() > 0 && ht::graph::is_connected(g) &&
      g.num_vertices() <= 512) {
    const auto tree = ht::flow::gomory_hu(g);
    const auto tree_graph = tree.as_graph();
    for (ht::graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (tree.parent[static_cast<std::size_t>(v)] == -1) continue;
      // Side of v when removing the (v, parent) tree edge.
      std::vector<bool> removed_edge_side(
          static_cast<std::size_t>(g.num_vertices()), false);
      // BFS in the tree from v avoiding the parent edge.
      std::vector<ht::graph::VertexId> stack{v};
      removed_edge_side[static_cast<std::size_t>(v)] = true;
      while (!stack.empty()) {
        const auto x = stack.back();
        stack.pop_back();
        for (const auto& adj : tree_graph.neighbors(x)) {
          if (x == v && adj.to == tree.parent[static_cast<std::size_t>(v)])
            continue;
          if (removed_edge_side[static_cast<std::size_t>(adj.to)]) continue;
          // Do not cross back over the removed edge from the far side.
          if (adj.to == tree.parent[static_cast<std::size_t>(v)] && x == v)
            continue;
          removed_edge_side[static_cast<std::size_t>(adj.to)] = true;
          stack.push_back(adj.to);
        }
      }
      // Keep only candidates near k; adjust to exactly k by greedy flips.
      std::int64_t size = 0;
      for (bool b : removed_edge_side) size += b ? 1 : 0;
      if (size == 0 || size >= g.num_vertices()) continue;
      if (std::llabs(size - k) > std::max<std::int64_t>(4, k)) continue;
      CutTracker tracker(wrapper);
      tracker.build(removed_edge_side);
      while (tracker.side_count() > k) {
        ht::graph::VertexId pick = -1;
        double best_delta = 0.0;
        for (ht::graph::VertexId u = 0; u < g.num_vertices(); ++u) {
          if (!tracker.on_side(u)) continue;
          const double d = tracker.flip_delta(u);
          if (pick == -1 || d < best_delta) {
            pick = u;
            best_delta = d;
          }
        }
        tracker.flip(pick);
      }
      while (tracker.side_count() < k) {
        ht::graph::VertexId pick = -1;
        double best_delta = 0.0;
        for (ht::graph::VertexId u = 0; u < g.num_vertices(); ++u) {
          if (tracker.on_side(u)) continue;
          const double d = tracker.flip_delta(u);
          if (pick == -1 || d < best_delta) {
            pick = u;
            best_delta = d;
          }
        }
        tracker.flip(pick);
      }
      std::vector<ht::graph::VertexId> set = side_to_set(tracker.side());
      const double cut = wrapper.cut_weight(set);
      if (!best.valid || cut < best.cut) {
        best.set = std::move(set);
        best.cut = cut;
        best.valid = true;
      }
    }
  }
  return best;
}

}  // namespace ht::partition
