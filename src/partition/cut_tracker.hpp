// Incremental hyperedge-cut tracker over a side indicator.
//
// Maintains per-hyperedge pin counts on side 1 so that flipping one vertex
// updates the cut weight in O(degree). Shared by the sparsest-cut sweep,
// the unbalanced-k-cut portfolio and phase 1 of Theorem 1.
#pragma once

#include <algorithm>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace ht::partition {

class CutTracker {
 public:
  explicit CutTracker(const ht::hypergraph::Hypergraph& h) : h_(h) {
    pins_on_side_.assign(static_cast<std::size_t>(h.num_edges()), 0);
    side_.assign(static_cast<std::size_t>(h.num_vertices()), false);
  }

  void build(const std::vector<bool>& side) {
    std::fill(pins_on_side_.begin(), pins_on_side_.end(), 0);
    cut_ = 0.0;
    side_count_ = 0;
    side_ = side;
    for (ht::hypergraph::EdgeId e = 0; e < h_.num_edges(); ++e) {
      std::int32_t c = 0;
      for (ht::hypergraph::VertexId v : h_.pins(e))
        c += side[static_cast<std::size_t>(v)] ? 1 : 0;
      pins_on_side_[static_cast<std::size_t>(e)] = c;
      if (c > 0 && c < h_.edge_size(e)) cut_ += h_.edge_weight(e);
    }
    for (bool b : side) side_count_ += b ? 1 : 0;
  }

  void flip(ht::hypergraph::VertexId v) {
    const bool to_side = !side_[static_cast<std::size_t>(v)];
    for (ht::hypergraph::EdgeId e : h_.incident_edges(v)) {
      const auto idx = static_cast<std::size_t>(e);
      const std::int32_t size = h_.edge_size(e);
      const std::int32_t before = pins_on_side_[idx];
      const std::int32_t after = before + (to_side ? 1 : -1);
      const bool was_cut = before > 0 && before < size;
      const bool is_cut = after > 0 && after < size;
      if (was_cut && !is_cut) cut_ -= h_.edge_weight(e);
      if (!was_cut && is_cut) cut_ += h_.edge_weight(e);
      pins_on_side_[idx] = after;
    }
    side_[static_cast<std::size_t>(v)] = to_side;
    side_count_ += to_side ? 1 : -1;
  }

  /// Cut change that flipping v would cause, without applying it.
  double flip_delta(ht::hypergraph::VertexId v) const {
    const bool to_side = !side_[static_cast<std::size_t>(v)];
    double delta = 0.0;
    for (ht::hypergraph::EdgeId e : h_.incident_edges(v)) {
      const auto idx = static_cast<std::size_t>(e);
      const std::int32_t size = h_.edge_size(e);
      const std::int32_t before = pins_on_side_[idx];
      const std::int32_t after = before + (to_side ? 1 : -1);
      const bool was_cut = before > 0 && before < size;
      const bool is_cut = after > 0 && after < size;
      if (was_cut && !is_cut) delta -= h_.edge_weight(e);
      if (!was_cut && is_cut) delta += h_.edge_weight(e);
    }
    return delta;
  }

  double cut() const { return cut_; }
  std::int64_t side_count() const { return side_count_; }
  bool on_side(ht::hypergraph::VertexId v) const {
    return side_[static_cast<std::size_t>(v)];
  }
  const std::vector<bool>& side() const { return side_; }

 private:
  const ht::hypergraph::Hypergraph& h_;
  std::vector<std::int32_t> pins_on_side_;
  std::vector<bool> side_;
  double cut_ = 0.0;
  std::int64_t side_count_ = 0;
};

}  // namespace ht::partition
