// Unbalanced k-cut: remove exactly k vertices minimizing the (hyper)edge
// cut between them and the rest.
//
// Section 2.1 reduces the hypergraph problem to graphs via Lemma 1's clique
// expansion (Proposition 1); phase 2 of Theorem 1 consumes per-piece cost
// profiles c_i(k) for all k at once. The cited O(log n) graph subroutine
// (Räcke decomposition trees [17]) is replaced by a portfolio of candidate
// generators — greedy growth, spectral sweep prefixes, Gomory–Hu subtree
// packing — plus swap local search; every candidate is re-evaluated with
// the exact combinatorial cut. Exact enumeration covers small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::partition {

struct KCutResult {
  std::vector<ht::hypergraph::VertexId> set;  // the k removed vertices
  double cut = 0.0;                           // delta(set) in the input
  bool valid = false;
};

/// Cost profile: cost[k] and witness set for every k in [0, kmax].
/// cost[0] == 0 with an empty set.
struct KCutProfile {
  std::vector<double> cost;
  std::vector<std::vector<ht::hypergraph::VertexId>> sets;
};

/// Exact optimum by combination enumeration; C(n, k) must be modest.
KCutResult unbalanced_kcut_exact(const ht::hypergraph::Hypergraph& h,
                                 std::int32_t k);

/// Heuristic for a single k on a hypergraph (native greedy + sweep + swap
/// local search). Deterministic given the seed.
KCutResult unbalanced_kcut(const ht::hypergraph::Hypergraph& h,
                           std::int32_t k, ht::Rng& rng);

/// Proposition 1's path: run the *graph* portfolio on the clique expansion
/// of h and evaluate the winning sets back in the hypergraph. Exposed
/// separately so bench_clique_expansion can compare both paths.
KCutResult unbalanced_kcut_via_clique_expansion(
    const ht::hypergraph::Hypergraph& h, std::int32_t k, ht::Rng& rng);

/// Full profile for phase 2 of Theorem 1: per-k best cost over nested
/// greedy growths and sweep prefixes (one pass each, so the whole profile
/// costs little more than a single query).
KCutProfile unbalanced_kcut_profile(const ht::hypergraph::Hypergraph& h,
                                    std::int32_t kmax, ht::Rng& rng);

/// Graph variant (edge cuts): candidates from greedy growth, spectral
/// sweep and Gomory–Hu subtrees.
KCutResult unbalanced_kcut_graph(const ht::graph::Graph& g, std::int32_t k,
                                 ht::Rng& rng);

}  // namespace ht::partition
