// Graph Minimum Bisection engines — the O(log n) black box the paper's
// Theorem 2 (small-edge branch) and Proposition 1 invoke.
//
// The faithful pipeline (mirroring [17]): build a decomposition tree of
// the graph, solve the bisection exactly ON the tree with the balanced
// edge-cut DP, and read back the leaf sides; optionally refine with FM.
// A pure FM multi-start is provided as the practitioner baseline, and an
// analogous tree DP with target k provides the unbalanced k-cut on graphs.
#pragma once

#include "graph/graph.hpp"
#include "partition/fm.hpp"
#include "partition/unbalanced_kcut.hpp"
#include "util/rng.hpp"

namespace ht::partition {

/// Decomposition-tree graph bisection ([17]-style pipeline), with an FM
/// polish pass. Requires an even number of vertices.
BisectionSolution graph_bisection_tree_based(const ht::graph::Graph& g,
                                             ht::Rng& rng,
                                             bool fm_polish = true);

/// Unbalanced k-cut on a graph through the decomposition tree DP
/// (Proposition 1's subroutine); the returned cut is re-evaluated in g.
KCutResult unbalanced_kcut_graph_tree_based(const ht::graph::Graph& g,
                                            std::int32_t k, ht::Rng& rng);

}  // namespace ht::partition
