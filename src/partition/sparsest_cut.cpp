#include "partition/sparsest_cut.hpp"

#include <algorithm>

#include "lp/spectral.hpp"
#include "partition/cut_tracker.hpp"
#include "reduction/clique_expansion.hpp"
#include "util/subsets.hpp"

namespace ht::partition {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

namespace {

double sparsity_of(double cut, std::int64_t smaller) {
  return smaller > 0 ? cut / static_cast<double>(smaller) : 1e300;
}

SparsestCutResult from_side(const Hypergraph& h,
                            const std::vector<bool>& side, double cut) {
  SparsestCutResult out;
  std::int64_t count = 0;
  for (bool b : side) count += b ? 1 : 0;
  const bool smaller_is_side = 2 * count <= h.num_vertices();
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    if (side[static_cast<std::size_t>(v)] == smaller_is_side)
      out.smaller_side.push_back(v);
  out.cut = cut;
  out.sparsity = sparsity_of(
      cut, static_cast<std::int64_t>(out.smaller_side.size()));
  out.valid = !out.smaller_side.empty() &&
              out.smaller_side.size() < static_cast<std::size_t>(
                                            h.num_vertices());
  return out;
}

}  // namespace

SparsestCutResult sparsest_hyperedge_cut_exact(const Hypergraph& h) {
  HT_CHECK(h.finalized());
  const int n = h.num_vertices();
  HT_CHECK_MSG(n <= 20, "exact sparsest cut limited to n <= 20");
  SparsestCutResult best;
  if (n < 2) return best;
  std::vector<bool> side(static_cast<std::size_t>(n), false);
  ht::for_each_subset(n - 1, [&](std::uint32_t mask) {
    // Vertex n-1 fixed outside S: halves the enumeration by symmetry.
    if (mask == 0) return;
    for (int v = 0; v + 1 < n; ++v)
      side[static_cast<std::size_t>(v)] = (mask >> v) & 1u;
    const double cut = h.cut_weight(side);
    SparsestCutResult cand = from_side(h, side, cut);
    if (cand.valid && (!best.valid || cand.sparsity < best.sparsity))
      best = std::move(cand);
  });
  return best;
}

SparsestCutResult sparsest_hyperedge_cut(const Hypergraph& h, ht::Rng& rng) {
  HT_CHECK(h.finalized());
  const VertexId n = h.num_vertices();
  SparsestCutResult best;
  if (n < 2) return best;

  // Disconnected hypergraphs have a zero-sparsity cut along components.
  {
    auto [comp, count] = ht::hypergraph::connected_components(h);
    if (count >= 2) {
      std::vector<bool> side(static_cast<std::size_t>(n), false);
      for (VertexId v = 0; v < n; ++v)
        side[static_cast<std::size_t>(v)] =
            comp[static_cast<std::size_t>(v)] == 0;
      return from_side(h, side, h.cut_weight(side));
    }
  }

  const ht::graph::Graph expansion = ht::reduction::clique_expansion(h);
  const auto fiedler = ht::lp::fiedler_vector(expansion, {}, rng);
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](VertexId l, VertexId r) {
    return fiedler.vector[static_cast<std::size_t>(l)] <
           fiedler.vector[static_cast<std::size_t>(r)];
  });

  // Sweep: every prefix evaluated with the true hypergraph cut.
  CutTracker tracker(h);
  tracker.build(std::vector<bool>(static_cast<std::size_t>(n), false));
  std::vector<bool> best_side;
  double best_sparsity = 1e300;
  for (VertexId i = 0; i + 1 < n; ++i) {
    tracker.flip(order[static_cast<std::size_t>(i)]);
    const auto smaller = std::min<std::int64_t>(tracker.side_count(),
                                                n - tracker.side_count());
    const double s = sparsity_of(tracker.cut(), smaller);
    if (s < best_sparsity) {
      best_sparsity = s;
      best_side = tracker.side();
    }
  }
  HT_CHECK(!best_side.empty());

  // Greedy single-vertex improvement on the best sweep cut.
  tracker.build(best_side);
  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 32) {
    improved = false;
    ++rounds;
    for (VertexId v = 0; v < n; ++v) {
      const std::int64_t count = tracker.side_count();
      const bool on = tracker.on_side(v);
      // Keep both sides non-empty.
      if (on && count <= 1) continue;
      if (!on && count >= n - 1) continue;
      const double before_cut = tracker.cut();
      const auto before_small = std::min<std::int64_t>(count, n - count);
      const double before = sparsity_of(before_cut, before_small);
      tracker.flip(v);
      const auto after_small = std::min<std::int64_t>(
          tracker.side_count(), n - tracker.side_count());
      const double after = sparsity_of(tracker.cut(), after_small);
      if (after + 1e-12 < before) {
        improved = true;
      } else {
        tracker.flip(v);  // revert
      }
    }
  }
  return from_side(h, tracker.side(), tracker.cut());
}

}  // namespace ht::partition
