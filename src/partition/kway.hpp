// Balanced k-way hypergraph partitioning built from the bisection engines.
//
// The paper's introduction motivates partitioning into one part per
// processor; its results are for k = 2. This module provides the two
// standard lifts a practitioner would build on top:
//   * recursive bisection (k a power of two), reusing any bisection engine;
//   * peeling (arbitrary k), repeatedly extracting n/k vertices with the
//     unbalanced k-cut portfolio (Section 2.1's primitive).
// Both report the two standard objectives: plain cut (hyperedges touching
// >= 2 parts) and connectivity (sum over hyperedges of (parts touched - 1)).
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::partition {

struct KWaySolution {
  std::vector<std::int32_t> part;  // part id per vertex, in [0, k)
  std::int32_t k = 0;
  double cut = 0.0;           // weight of hyperedges spanning >= 2 parts
  double connectivity = 0.0;  // sum_e w(e) * (lambda(e) - 1)
  bool valid = false;
};

/// Recomputes both objectives and checks balance (each part exactly n/k).
void validate_kway(const ht::hypergraph::Hypergraph& h,
                   const KWaySolution& solution);

/// Objectives of an arbitrary assignment.
double kway_cut(const ht::hypergraph::Hypergraph& h,
                const std::vector<std::int32_t>& part);
double kway_connectivity(const ht::hypergraph::Hypergraph& h,
                         const std::vector<std::int32_t>& part);

/// Recursive bisection with the FM engine. k must be a power of two and
/// divide n.
KWaySolution kway_recursive_bisection(const ht::hypergraph::Hypergraph& h,
                                      std::int32_t k, ht::Rng& rng);

/// Peeling: extract n/k vertices k-1 times with the unbalanced k-cut
/// portfolio. k must divide n.
KWaySolution kway_peel(const ht::hypergraph::Hypergraph& h, std::int32_t k,
                       ht::Rng& rng);

/// Random balanced assignment baseline.
KWaySolution kway_random(const ht::hypergraph::Hypergraph& h, std::int32_t k,
                         ht::Rng& rng);

}  // namespace ht::partition
