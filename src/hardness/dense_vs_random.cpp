#include "hardness/dense_vs_random.hpp"

#include <algorithm>
#include <cmath>

#include "partition/mku.hpp"
#include "reduction/mku_bisection.hpp"

namespace ht::hardness {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

DegreeStats degree_stats(const Hypergraph& h) {
  DegreeStats out;
  const VertexId n = h.num_vertices();
  HT_CHECK(n > 0);
  out.min = 1e300;
  double sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const double d = h.degree(v);
    out.min = std::min(out.min, d);
    out.max = std::max(out.max, d);
    sum += d;
  }
  out.mean = sum / static_cast<double>(n);
  out.log_density =
      out.mean > 0.0 && n > 1
          ? std::log(out.mean) / std::log(static_cast<double>(n))
          : 0.0;
  return out;
}

UnionCoverage union_coverage(const Hypergraph& h, std::int64_t ell,
                             ht::Rng& rng, int samples) {
  HT_CHECK(1 <= ell && ell <= h.num_edges());
  UnionCoverage out;
  out.ell = ell;
  const auto greedy =
      ht::partition::mku_greedy(h, static_cast<std::int32_t>(ell));
  out.greedy_union = greedy.union_weight;
  out.sampled_min = 1e300;
  for (int s = 0; s < samples; ++s) {
    auto pick = rng.sample_without_replacement(
        h.num_edges(), static_cast<std::int32_t>(ell));
    std::vector<EdgeId> sets(pick.begin(), pick.end());
    out.sampled_min = std::min(
        out.sampled_min, ht::reduction::mku_union_weight(h, sets));
  }
  return out;
}

}  // namespace ht::hardness
