// Empirical side of the Dense vs Random Conjecture (Conjecture 1) and the
// Claim 1 facts that drive Corollary 1.
//
// The conjecture itself is a hardness assumption and cannot be "run"; what
// is measurable is the structural gap it rests on: in a random G(n, p, r)
// the union of any ell hyperedges is large (facts 2 and 3), while a planted
// instance hides ell hyperedges with a small union. bench_dense_vs_random
// charts this gap, the degree concentration of fact 1, and how the
// log-density knob moves all three.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::hardness {

struct DegreeStats {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double log_density = 0.0;  // log_n(mean degree), the paper's alpha
};

DegreeStats degree_stats(const ht::hypergraph::Hypergraph& h);

struct UnionCoverage {
  double greedy_union = 0.0;   // greedy upper bound on the min ell-union
  double sampled_min = 0.0;    // best of `samples` random ell-subsets
  std::int64_t ell = 0;
};

/// Upper-bounds the minimum ell-union via greedy + random sampling. Small
/// values mean a dense planted structure is discoverable; large values are
/// the random-instance behaviour of Claim 1.
UnionCoverage union_coverage(const ht::hypergraph::Hypergraph& h,
                             std::int64_t ell, ht::Rng& rng,
                             int samples = 64);

}  // namespace ht::hardness
