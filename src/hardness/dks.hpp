// Densest k-Subgraph solvers and the Theorem 4 round trip.
//
// Theorem 4 turns an f-approximation for Minimum Hypergraph Bisection into
// an f^2-approximation for DkS via the MkU reduction. dks_via_bisection
// executes the entire chain — DkS -> MkU (guessed L) -> Bisection
// (Theorem 3 construction) -> Theorem 1 solver -> extracted MkU solution ->
// pruned DkS candidate — so bench_reductions can chart the measured f
// against the measured f^2.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ht::hardness {

struct DksSolution {
  std::vector<ht::graph::VertexId> vertices;
  std::int64_t induced_edges = 0;
  bool valid = false;
};

/// Greedy peeling: repeatedly delete the minimum-degree vertex; the best
/// k-vertex suffix encountered wins. The classic density baseline.
DksSolution dks_greedy_peel(const ht::graph::Graph& g, std::int32_t k);

/// Exact optimum by combination enumeration (C(n,k) must be modest).
DksSolution dks_exact(const ht::graph::Graph& g, std::int32_t k);

/// Theorem 4 pipeline. `l_guesses` controls how many L values are tried
/// (geometric over [1, m]); each runs the full reduction chain.
DksSolution dks_via_bisection(const ht::graph::Graph& g, std::int32_t k,
                              std::uint64_t seed, std::int32_t l_guesses = 8);

}  // namespace ht::hardness
