#include "hardness/dks.hpp"

#include <algorithm>
#include <cmath>

#include "core/bisection.hpp"
#include "reduction/dks_mku.hpp"
#include "reduction/mku_bisection.hpp"
#include "util/subsets.hpp"

namespace ht::hardness {

using ht::graph::Graph;
using ht::graph::VertexId;

DksSolution dks_greedy_peel(const Graph& g, std::int32_t k) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(1 <= k && k <= n);
  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  std::vector<std::int64_t> degree(static_cast<std::size_t>(n), 0);
  for (const auto& e : g.edges()) {
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }
  DksSolution best;
  std::int32_t remaining = n;
  for (;;) {
    if (remaining == k) {
      std::vector<VertexId> set;
      for (VertexId v = 0; v < n; ++v)
        if (alive[static_cast<std::size_t>(v)]) set.push_back(v);
      const std::int64_t edges = ht::reduction::induced_edges(g, set);
      if (!best.valid || edges > best.induced_edges) {
        best.vertices = std::move(set);
        best.induced_edges = edges;
        best.valid = true;
      }
      break;
    }
    VertexId victim = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[static_cast<std::size_t>(v)]) continue;
      if (victim == -1 || degree[static_cast<std::size_t>(v)] <
                              degree[static_cast<std::size_t>(victim)])
        victim = v;
    }
    alive[static_cast<std::size_t>(victim)] = false;
    --remaining;
    for (const auto& adj : g.neighbors(victim))
      if (alive[static_cast<std::size_t>(adj.to)])
        --degree[static_cast<std::size_t>(adj.to)];
  }
  return best;
}

DksSolution dks_exact(const Graph& g, std::int32_t k) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(1 <= k && k <= n);
  double combos = 1.0;
  for (std::int32_t i = 0; i < k; ++i)
    combos *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  HT_CHECK_MSG(combos <= 6e6, "C(n,k) too large for exact DkS");
  DksSolution best;
  ht::for_each_combination(n, k, [&](const std::vector<int>& idx) {
    std::vector<VertexId> set(idx.begin(), idx.end());
    const std::int64_t edges = ht::reduction::induced_edges(g, set);
    if (!best.valid || edges > best.induced_edges) {
      best.vertices = std::move(set);
      best.induced_edges = edges;
      best.valid = true;
    }
  });
  return best;
}

DksSolution dks_via_bisection(const Graph& g, std::int32_t k,
                              std::uint64_t seed, std::int32_t l_guesses) {
  HT_CHECK(g.finalized());
  const std::int32_t m = g.num_edges();
  HT_CHECK(m >= 1);
  DksSolution best;
  // Guess L geometrically over [1, min(m, k*(k-1)/2)].
  const auto l_max = static_cast<std::int32_t>(std::min<std::int64_t>(
      m, static_cast<std::int64_t>(k) * (k - 1) / 2));
  std::vector<std::int32_t> ls;
  for (std::int32_t j = 0; j < l_guesses; ++j) {
    const double t = l_guesses > 1
                         ? static_cast<double>(j) /
                               static_cast<double>(l_guesses - 1)
                         : 0.0;
    const auto L = static_cast<std::int32_t>(std::llround(
        std::pow(static_cast<double>(l_max), t)));
    if (ls.empty() || ls.back() != std::max(1, L)) ls.push_back(std::max(1, L));
  }
  for (std::int32_t L : ls) {
    // DkS -> MkU with parameter L.
    ht::reduction::MkuInstance mku = ht::reduction::dks_to_mku(g, L);
    // MkU -> Minimum Hypergraph Bisection (Theorem 3).
    const auto reduction = ht::reduction::mku_to_bisection(mku);
    // Solve the bisection with the paper's algorithm.
    ht::core::Theorem1Options options;
    options.seed = seed ^ static_cast<std::uint64_t>(L) * 0x9e3779b9ULL;
    options.guesses = 6;
    const auto report =
        ht::core::bisect_theorem1(reduction.bisection_instance, options);
    // Orient sides so "true" is the supervertex side.
    std::vector<bool> with_super = report.solution.side;
    if (!with_super[static_cast<std::size_t>(reduction.supervertex)]) {
      with_super.flip();
    }
    const auto chosen = reduction.extract_mku_solution(with_super, L);
    // MkU solution -> DkS candidate.
    const auto candidate = ht::reduction::mku_solution_to_dks(g, chosen, k);
    const std::int64_t edges = ht::reduction::induced_edges(g, candidate);
    if (!best.valid || edges > best.induced_edges) {
      best.vertices = candidate;
      best.induced_edges = edges;
      best.valid = true;
    }
  }
  return best;
}

}  // namespace ht::hardness
