#include "hypergraph/subset_view.hpp"

#include "util/perf_counters.hpp"

namespace ht::hypergraph {

SubsetView::SubsetView(const Hypergraph& parent,
                       std::vector<VertexId> vertices)
    : parent_(&parent), vertices_(std::move(vertices)) {
  HT_CHECK(parent.finalized());
  remap_ = ht::WorkArena::local().begin_remap(parent.num_vertices());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const VertexId old = vertices_[i];
    HT_CHECK(0 <= old && old < parent.num_vertices());
    HT_CHECK_MSG(remap_.get(old) == -1,
                 "duplicate vertex " << old << " in SubsetView");
    remap_.set(old, static_cast<VertexId>(i));
  }
}

Weight SubsetView::total_vertex_weight() const {
  Weight sum = 0.0;
  for (VertexId old : vertices_) sum += parent_->vertex_weight(old);
  return sum;
}

InducedSubhypergraph SubsetView::materialize() const {
  HT_DCHECK(remap_.live());
  PerfCounters::global().add_materialization();
  InducedSubhypergraph out;
  out.hypergraph.resize(size());
  out.old_of_new = vertices_;
  for (std::size_t i = 0; i < vertices_.size(); ++i)
    out.hypergraph.set_vertex_weight(static_cast<VertexId>(i),
                                     parent_->vertex_weight(vertices_[i]));
  // Parent edge order is preserved, matching induced_subhypergraph exactly.
  std::vector<VertexId> restricted;
  for (EdgeId e = 0; e < parent_->num_edges(); ++e) {
    restricted.clear();
    for (VertexId v : parent_->pins(e)) {
      const VertexId nv = remap_.get(v);
      if (nv != -1) restricted.push_back(nv);
    }
    if (restricted.size() >= 2)
      out.hypergraph.add_edge(restricted, parent_->edge_weight(e));
  }
  out.hypergraph.finalize();
  return out;
}

}  // namespace ht::hypergraph
