// Weighted hypergraph with vertex weights.
//
// Storage is CSR both ways: a pin array indexed by hyperedge, and an
// incidence array indexed by vertex. Built via add_edge() + finalize();
// immutable afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ht::hypergraph {

using VertexId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = double;

class Hypergraph {
 public:
  Hypergraph() = default;
  explicit Hypergraph(VertexId n) { resize(n); }

  void resize(VertexId n) {
    HT_CHECK(n >= 0);
    vertex_weights_.assign(static_cast<std::size_t>(n), 1.0);
    finalized_ = false;
  }

  VertexId num_vertices() const {
    return static_cast<VertexId>(vertex_weights_.size());
  }
  EdgeId num_edges() const {
    return static_cast<EdgeId>(edge_weights_.size());
  }

  /// Adds a hyperedge over `pins` (deduplicated, sorted internally).
  /// Hyperedges of size < 2 are rejected: they can never be cut.
  EdgeId add_edge(std::vector<VertexId> pins, Weight w = 1.0);

  void finalize();
  bool finalized() const { return finalized_; }

  /// Process-unique structure id, assigned by finalize(); 0 while mutable
  /// ("uncacheable"). WorkArena keys cached flow engines on it.
  std::uint64_t uid() const { return finalized_ ? uid_ : 0; }

  /// Pins of hyperedge e. Requires finalize(): before it, add_edge() is
  /// still free to append and the spans would dangle on reallocation.
  std::span<const VertexId> pins(EdgeId e) const {
    HT_DCHECK(finalized_);
    const auto lo = pin_offsets_[static_cast<std::size_t>(e)];
    const auto hi = pin_offsets_[static_cast<std::size_t>(e) + 1];
    return {pin_storage_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  std::int32_t edge_size(EdgeId e) const {
    HT_DCHECK(finalized_);
    return static_cast<std::int32_t>(
        pin_offsets_[static_cast<std::size_t>(e) + 1] -
        pin_offsets_[static_cast<std::size_t>(e)]);
  }

  /// Hyperedges incident to a vertex; requires finalize().
  std::span<const EdgeId> incident_edges(VertexId v) const {
    HT_DCHECK(finalized_);
    const auto lo = inc_offsets_[static_cast<std::size_t>(v)];
    const auto hi = inc_offsets_[static_cast<std::size_t>(v) + 1];
    return {inc_storage_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// Number of hyperedges incident to v.
  std::int32_t degree(VertexId v) const {
    HT_DCHECK(finalized_);
    return static_cast<std::int32_t>(
        inc_offsets_[static_cast<std::size_t>(v) + 1] -
        inc_offsets_[static_cast<std::size_t>(v)]);
  }

  Weight edge_weight(EdgeId e) const {
    return edge_weights_[static_cast<std::size_t>(e)];
  }
  Weight vertex_weight(VertexId v) const {
    return vertex_weights_[static_cast<std::size_t>(v)];
  }
  /// Allowed after finalize() (weights are not part of the CSR), but doing
  /// so reassigns uid() so cached flow networks keyed on the old weights
  /// are not served stale.
  void set_vertex_weight(VertexId v, Weight w);

  std::int32_t max_edge_size() const;
  double avg_degree() const;
  Weight total_edge_weight() const;
  Weight total_vertex_weight() const;

  /// delta_H(S): total weight of hyperedges with pins on both sides of the
  /// indicator `in_set`.
  Weight cut_weight(const std::vector<bool>& in_set) const;
  Weight cut_weight(const std::vector<VertexId>& set) const;

  /// Total weight of hyperedges *touching* S (incident to at least one
  /// vertex of S) — the objective of unbalanced k-cut when no edge fits
  /// inside S, and of Minimizing k-Union under the Theorem 3 reduction.
  Weight touching_weight(const std::vector<bool>& in_set) const;

  std::string debug_string() const;

 private:
  std::vector<Weight> vertex_weights_;
  std::vector<Weight> edge_weights_;
  std::vector<std::int64_t> pin_offsets_{0};
  std::vector<VertexId> pin_storage_;
  std::vector<std::int64_t> inc_offsets_;
  std::vector<EdgeId> inc_storage_;
  std::uint64_t uid_ = 0;
  bool finalized_ = false;
};

/// Sub-hypergraph induced by `vertices`: pins are restricted to the set and
/// hyperedges with fewer than 2 remaining pins are dropped (they cannot be
/// cut inside the piece). `old_of_new` maps new vertex ids back.
struct InducedSubhypergraph {
  Hypergraph hypergraph;
  std::vector<VertexId> old_of_new;
};
InducedSubhypergraph induced_subhypergraph(
    const Hypergraph& h, const std::vector<VertexId>& vertices);

/// Contracts vertices by the cluster map `cluster_of` (values in
/// [0, num_clusters)): pins map to clusters, hyperedges shrinking below 2
/// distinct pins disappear, identical pin sets are merged with weights
/// added. Vertex weights accumulate per cluster. The workhorse of the
/// multilevel partitioner.
Hypergraph contract(const Hypergraph& h,
                    const std::vector<std::int32_t>& cluster_of,
                    std::int32_t num_clusters);

/// Connected components treating each hyperedge as a connectivity clique.
std::pair<std::vector<std::int32_t>, std::int32_t> connected_components(
    const Hypergraph& h);

bool is_connected(const Hypergraph& h);

}  // namespace ht::hypergraph
