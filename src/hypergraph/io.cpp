#include "hypergraph/io.hpp"

#include <fstream>
#include <sstream>

namespace ht::hypergraph {

namespace {

bool all_unit(const std::vector<double>& values) {
  for (double v : values)
    if (v != 1.0) return false;
  return true;
}

}  // namespace

void write_hmetis(const Hypergraph& h, std::ostream& os) {
  std::vector<double> edge_w, vertex_w;
  for (EdgeId e = 0; e < h.num_edges(); ++e) edge_w.push_back(h.edge_weight(e));
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    vertex_w.push_back(h.vertex_weight(v));
  const bool ew = !all_unit(edge_w);
  const bool vw = !all_unit(vertex_w);
  os << h.num_edges() << ' ' << h.num_vertices();
  if (ew || vw) os << ' ' << (vw ? 10 : 0) + (ew ? 1 : 0);
  os << '\n';
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (ew) os << h.edge_weight(e) << ' ';
    auto span = h.pins(e);
    for (std::size_t i = 0; i < span.size(); ++i)
      os << span[i] + 1 << (i + 1 < span.size() ? ' ' : '\n');
  }
  if (vw)
    for (VertexId v = 0; v < h.num_vertices(); ++v)
      os << h.vertex_weight(v) << '\n';
}

StatusOr<Hypergraph> try_read_hmetis(std::istream& is) {
  std::string line;
  // Returns false at EOF; comments (%) and blank lines are skipped.
  auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '%') return true;
    }
    return false;
  };
  if (!next_content_line())
    return Status::InvalidArgument("hMetis input is empty");
  std::istringstream header(line);
  std::int64_t m = 0, n = 0;
  int fmt = 0;
  if (!(header >> m >> n))
    return Status::InvalidArgument("bad hMetis header: \"" + line + "\"");
  if (!(header >> fmt)) fmt = 0;
  if (m < 0 || n < 0)
    return Status::InvalidArgument("bad hMetis header: negative m or n");
  if (fmt != 0 && fmt != 1 && fmt != 10 && fmt != 11)
    return Status::InvalidArgument("bad hMetis fmt field: " +
                                   std::to_string(fmt));
  const bool ew = (fmt % 10) == 1;
  const bool vw = fmt >= 10;
  Hypergraph h(static_cast<VertexId>(n));
  for (std::int64_t e = 0; e < m; ++e) {
    if (!next_content_line())
      return Status::InvalidArgument(
          "unexpected EOF: expected " + std::to_string(m) +
          " hyperedge lines, got " + std::to_string(e));
    std::istringstream row(line);
    double w = 1.0;
    if (ew && !(row >> w))
      return Status::InvalidArgument("missing edge weight: \"" + line + "\"");
    std::vector<VertexId> pins;
    std::int64_t pin;
    while (row >> pin) {
      if (pin < 1 || pin > n)
        return Status::InvalidArgument("pin out of range: " +
                                       std::to_string(pin));
      pins.push_back(static_cast<VertexId>(pin - 1));
    }
    if (!row.eof())
      return Status::InvalidArgument("non-numeric pin: \"" + line + "\"");
    h.add_edge(std::move(pins), w);
  }
  if (vw) {
    for (std::int64_t v = 0; v < n; ++v) {
      if (!next_content_line())
        return Status::InvalidArgument(
            "unexpected EOF: expected " + std::to_string(n) +
            " vertex weight lines, got " + std::to_string(v));
      std::istringstream row(line);
      double w = 1.0;
      if (!(row >> w))
        return Status::InvalidArgument("missing vertex weight: \"" + line +
                                       "\"");
      h.set_vertex_weight(static_cast<VertexId>(v), w);
    }
  }
  h.finalize();
  return h;
}

StatusOr<Hypergraph> try_read_hmetis_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) return Status::InvalidArgument("cannot open " + path);
  return try_read_hmetis(is);
}

void write_hmetis_file(const Hypergraph& h, const std::string& path) {
  std::ofstream os(path);
  HT_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_hmetis(h, os);
}

Hypergraph read_hmetis(std::istream& is) {
  StatusOr<Hypergraph> parsed = try_read_hmetis(is);
  HT_CHECK_MSG(parsed.ok(), parsed.status().to_string());
  return std::move(*parsed);
}

Hypergraph read_hmetis_file(const std::string& path) {
  StatusOr<Hypergraph> parsed = try_read_hmetis_file(path);
  HT_CHECK_MSG(parsed.ok(), parsed.status().to_string());
  return std::move(*parsed);
}

}  // namespace ht::hypergraph
