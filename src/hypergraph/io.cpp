#include "hypergraph/io.hpp"

#include <fstream>
#include <sstream>

namespace ht::hypergraph {

namespace {

bool all_unit(const std::vector<double>& values) {
  for (double v : values)
    if (v != 1.0) return false;
  return true;
}

}  // namespace

void write_hmetis(const Hypergraph& h, std::ostream& os) {
  std::vector<double> edge_w, vertex_w;
  for (EdgeId e = 0; e < h.num_edges(); ++e) edge_w.push_back(h.edge_weight(e));
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    vertex_w.push_back(h.vertex_weight(v));
  const bool ew = !all_unit(edge_w);
  const bool vw = !all_unit(vertex_w);
  os << h.num_edges() << ' ' << h.num_vertices();
  if (ew || vw) os << ' ' << (vw ? 10 : 0) + (ew ? 1 : 0);
  os << '\n';
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (ew) os << h.edge_weight(e) << ' ';
    auto span = h.pins(e);
    for (std::size_t i = 0; i < span.size(); ++i)
      os << span[i] + 1 << (i + 1 < span.size() ? ' ' : '\n');
  }
  if (vw)
    for (VertexId v = 0; v < h.num_vertices(); ++v)
      os << h.vertex_weight(v) << '\n';
}

Hypergraph read_hmetis(std::istream& is) {
  std::string line;
  auto next_content_line = [&]() -> std::string {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '%') return line;
    }
    HT_CHECK_MSG(false, "unexpected EOF in hMetis input");
    return {};
  };
  std::istringstream header(next_content_line());
  std::int64_t m = 0, n = 0;
  int fmt = 0;
  header >> m >> n;
  if (!(header >> fmt)) fmt = 0;
  const bool ew = (fmt % 10) == 1;
  const bool vw = fmt >= 10;
  Hypergraph h(static_cast<VertexId>(n));
  for (std::int64_t e = 0; e < m; ++e) {
    std::istringstream row(next_content_line());
    double w = 1.0;
    if (ew) {
      row >> w;
      HT_CHECK_MSG(row, "missing edge weight");
    }
    std::vector<VertexId> pins;
    std::int64_t pin;
    while (row >> pin) {
      HT_CHECK_MSG(1 <= pin && pin <= n, "pin out of range: " << pin);
      pins.push_back(static_cast<VertexId>(pin - 1));
    }
    h.add_edge(std::move(pins), w);
  }
  if (vw) {
    for (std::int64_t v = 0; v < n; ++v) {
      std::istringstream row(next_content_line());
      double w = 1.0;
      row >> w;
      HT_CHECK_MSG(row, "missing vertex weight");
      h.set_vertex_weight(static_cast<VertexId>(v), w);
    }
  }
  h.finalize();
  return h;
}

void write_hmetis_file(const Hypergraph& h, const std::string& path) {
  std::ofstream os(path);
  HT_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_hmetis(h, os);
}

Hypergraph read_hmetis_file(const std::string& path) {
  std::ifstream is(path);
  HT_CHECK_MSG(is.good(), "cannot open " << path);
  return read_hmetis(is);
}

}  // namespace ht::hypergraph
