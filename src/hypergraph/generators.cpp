#include "hypergraph/generators.hpp"

#include <algorithm>
#include <cmath>

namespace ht::hypergraph {

namespace {

std::vector<VertexId> random_pins(VertexId n, std::int32_t r, ht::Rng& rng) {
  auto sample = rng.sample_without_replacement(n, r);
  return {sample.begin(), sample.end()};
}

}  // namespace

Hypergraph random_uniform(VertexId n, EdgeId m, std::int32_t r,
                          ht::Rng& rng) {
  HT_CHECK(r >= 2 && r <= n);
  Hypergraph h(n);
  for (EdgeId e = 0; e < m; ++e) h.add_edge(random_pins(n, r, rng));
  h.finalize();
  return h;
}

Hypergraph gnpr(VertexId n, double p, std::int32_t r, ht::Rng& rng) {
  HT_CHECK(r >= 2 && r <= n);
  HT_CHECK(p >= 0.0);
  // Expected number of edges: C(n, r) * p. Computed in logs to avoid
  // overflow; we sample a Poisson approximation of the binomial count,
  // which matches G(n,p,r) in the sparse regimes of the paper's hardness
  // constructions.
  double log_count = std::log(p);
  for (std::int32_t i = 0; i < r; ++i) {
    log_count += std::log(static_cast<double>(n - i)) -
                 std::log(static_cast<double>(i + 1));
  }
  // Safety cap: refuse to materialize more than ~2M hyperedges — the
  // hardness constructions all live in the sparse regime.
  const double expected = std::min(std::exp(std::min(log_count, 20.0)), 2e6);
  // Poisson sampling via inversion for small mean, normal approx otherwise.
  std::int64_t m;
  if (expected < 64.0) {
    const double limit = std::exp(-expected);
    double prod = rng.next_double();
    m = 0;
    while (prod > limit) {
      prod *= rng.next_double();
      ++m;
    }
  } else {
    const double u1 = std::max(rng.next_double(), 1e-12);
    const double u2 = rng.next_double();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    m = std::llround(expected + std::sqrt(expected) * gauss);
    m = std::max<std::int64_t>(m, 0);
  }
  return random_uniform(n, static_cast<EdgeId>(m), r, rng);
}

PlantedInstance planted_dense(VertexId n, double p, std::int32_t r,
                              VertexId k, double beta, ht::Rng& rng) {
  HT_CHECK(2 <= r && r <= k && k <= n);
  PlantedInstance out;
  Hypergraph random_part = gnpr(n, p, r, rng);
  Hypergraph h(n);
  for (EdgeId e = 0; e < random_part.num_edges(); ++e) {
    auto span = random_part.pins(e);
    h.add_edge({span.begin(), span.end()}, random_part.edge_weight(e));
  }
  out.first_planted_edge = h.num_edges();
  out.planted_vertices = rng.sample_without_replacement(n, k);
  const auto planted_edges = static_cast<EdgeId>(std::max<std::int64_t>(
      1, std::llround(std::pow(static_cast<double>(k), 1.0 + beta) /
                      static_cast<double>(r))));
  for (EdgeId e = 0; e < planted_edges; ++e) {
    auto local = rng.sample_without_replacement(k, r);
    std::vector<VertexId> pins;
    pins.reserve(local.size());
    for (auto idx : local)
      pins.push_back(out.planted_vertices[static_cast<std::size_t>(idx)]);
    h.add_edge(std::move(pins));
  }
  h.finalize();
  out.hypergraph = std::move(h);
  return out;
}

Hypergraph single_spanning_edge(VertexId n, Weight w) {
  HT_CHECK(n >= 2);
  Hypergraph h(n);
  std::vector<VertexId> all(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  h.add_edge(std::move(all), w);
  h.finalize();
  return h;
}

Figure2Instance figure2(VertexId n, bool unweighted) {
  HT_CHECK(n >= 2);
  Figure2Instance out;
  Hypergraph h(n + 1);
  out.top = 0;
  out.u.resize(static_cast<std::size_t>(n));
  std::vector<VertexId> all_u;
  all_u.reserve(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i) {
    const VertexId ui = 1 + i;
    out.u[static_cast<std::size_t>(i)] = ui;
    all_u.push_back(ui);
    h.add_edge({out.top, ui}, 1.0);
  }
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  if (unweighted) {
    const auto copies = static_cast<std::int32_t>(std::floor(sqrt_n));
    for (std::int32_t c = 0; c < copies; ++c) h.add_edge(all_u, 1.0);
  } else {
    h.add_edge(all_u, sqrt_n);
  }
  h.finalize();
  out.hypergraph = std::move(h);
  return out;
}

Hypergraph from_graph_edges(
    const std::vector<std::pair<VertexId, VertexId>>& edges, VertexId n) {
  Hypergraph h(n);
  for (const auto& [u, v] : edges) h.add_edge({u, v});
  h.finalize();
  return h;
}

Hypergraph quasi_uniform(VertexId n, double alpha, std::int32_t r,
                         ht::Rng& rng) {
  HT_CHECK(alpha > 0.0);
  // Target degree d = n^alpha; m = n*d/r edges. Round-robin over vertices
  // for one pin to keep degrees concentrated, remaining pins random.
  const double d = std::pow(static_cast<double>(n), alpha);
  const auto m = static_cast<EdgeId>(std::max<std::int64_t>(
      1, std::llround(static_cast<double>(n) * d / static_cast<double>(r))));
  Hypergraph h(n);
  for (EdgeId e = 0; e < m; ++e) {
    std::vector<VertexId> pins;
    pins.push_back(static_cast<VertexId>(e % n));
    while (static_cast<std::int32_t>(pins.size()) < r) {
      const auto v = static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (std::find(pins.begin(), pins.end(), v) == pins.end())
        pins.push_back(v);
    }
    h.add_edge(std::move(pins));
  }
  h.finalize();
  return h;
}

Hypergraph planted_bisection(VertexId half, std::int32_t r,
                             EdgeId edges_per_side, EdgeId cross_edges,
                             ht::Rng& rng) {
  HT_CHECK(r >= 2 && r <= half);
  const VertexId n = 2 * half;
  Hypergraph h(n);
  for (VertexId side = 0; side < 2; ++side) {
    const VertexId base = side * half;
    for (EdgeId e = 0; e < edges_per_side; ++e) {
      auto local = rng.sample_without_replacement(half, r);
      std::vector<VertexId> pins;
      pins.reserve(local.size());
      for (auto idx : local) pins.push_back(base + idx);
      h.add_edge(std::move(pins));
    }
  }
  for (EdgeId e = 0; e < cross_edges; ++e) {
    // At least one pin per side.
    const auto left = static_cast<std::int32_t>(
        1 + rng.next_below(static_cast<std::uint64_t>(r - 1)));
    const std::int32_t right = r - left;
    std::vector<VertexId> pins;
    auto ls = rng.sample_without_replacement(half, std::min(left, half));
    auto rs = rng.sample_without_replacement(half, std::min(right, half));
    for (auto idx : ls) pins.push_back(idx);
    for (auto idx : rs) pins.push_back(half + idx);
    if (pins.size() >= 2) h.add_edge(std::move(pins));
  }
  h.finalize();
  return h;
}

Hypergraph planted_parts(std::int32_t parts, VertexId per, std::int32_t r,
                         EdgeId edges_per_part, EdgeId cross_edges,
                         ht::Rng& rng) {
  HT_CHECK(parts >= 2 && r >= 2 && r <= per);
  const VertexId n = parts * per;
  Hypergraph h(n);
  for (std::int32_t p = 0; p < parts; ++p) {
    const VertexId base = p * per;
    for (EdgeId e = 0; e < edges_per_part; ++e) {
      auto local = rng.sample_without_replacement(per, r);
      std::vector<VertexId> pins;
      pins.reserve(local.size());
      for (auto idx : local) pins.push_back(base + idx);
      h.add_edge(std::move(pins));
    }
  }
  for (EdgeId e = 0; e < cross_edges; ++e) {
    // One pin in each of two distinct groups, remaining pins in the first.
    const auto p1 = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(parts)));
    auto p2 = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(parts - 1)));
    if (p2 >= p1) ++p2;
    std::vector<VertexId> pins;
    auto first = rng.sample_without_replacement(per, std::min(r - 1, per));
    for (auto idx : first) pins.push_back(p1 * per + idx);
    pins.push_back(p2 * per +
                   static_cast<VertexId>(rng.next_below(
                       static_cast<std::uint64_t>(per))));
    h.add_edge(std::move(pins));
  }
  h.finalize();
  return h;
}

Hypergraph netlist_like(VertexId n, EdgeId nets, std::int32_t high_fanout_nets,
                        ht::Rng& rng) {
  HT_CHECK(n >= 8);
  Hypergraph h(n);
  for (EdgeId e = 0; e < nets; ++e) {
    // Net size 2 + Geometric(1/2), capped at 8: matches the small-net-heavy
    // distribution of circuit netlists.
    std::int32_t size = 2;
    while (size < 8 && rng.next_bool(0.45)) ++size;
    // Locality: pins cluster around a random anchor within a window,
    // mimicking placement locality.
    const auto anchor = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const VertexId window = std::max<VertexId>(16, n / 16);
    std::vector<VertexId> pins{anchor};
    int guard = 0;
    while (static_cast<std::int32_t>(pins.size()) < size && guard < 64) {
      ++guard;
      const auto offset = static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(window)));
      const VertexId v = (anchor + offset) % n;
      if (std::find(pins.begin(), pins.end(), v) == pins.end())
        pins.push_back(v);
    }
    if (pins.size() >= 2) h.add_edge(std::move(pins));
  }
  for (std::int32_t i = 0; i < high_fanout_nets; ++i) {
    const VertexId fan = std::max<VertexId>(2, n / 8);
    auto pins = rng.sample_without_replacement(n, fan);
    h.add_edge({pins.begin(), pins.end()});
  }
  h.finalize();
  return h;
}

Hypergraph spmv_row_net(VertexId n, EdgeId rows, std::int32_t band,
                        double fill_p, ht::Rng& rng) {
  HT_CHECK(band >= 2);
  Hypergraph h(n);
  for (EdgeId row = 0; row < rows; ++row) {
    const VertexId center = static_cast<VertexId>(
        (static_cast<std::int64_t>(row) * n) / std::max<EdgeId>(rows, 1));
    std::vector<VertexId> pins;
    for (std::int32_t off = -band / 2; off <= band / 2; ++off) {
      const std::int64_t c = center + off;
      if (0 <= c && c < n) pins.push_back(static_cast<VertexId>(c));
    }
    for (VertexId c = 0; c < n; ++c)
      if (rng.next_bool(fill_p)) pins.push_back(c);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() >= 2) h.add_edge(std::move(pins));
  }
  h.finalize();
  return h;
}

}  // namespace ht::hypergraph
