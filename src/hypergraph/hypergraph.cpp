#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "util/work_arena.hpp"

namespace ht::hypergraph {

EdgeId Hypergraph::add_edge(std::vector<VertexId> pins, Weight w) {
  HT_CHECK(w >= 0.0);
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  HT_CHECK_MSG(pins.size() >= 2, "hyperedge must span >= 2 vertices");
  for (VertexId v : pins) HT_CHECK(0 <= v && v < num_vertices());
  edge_weights_.push_back(w);
  pin_storage_.insert(pin_storage_.end(), pins.begin(), pins.end());
  pin_offsets_.push_back(static_cast<std::int64_t>(pin_storage_.size()));
  finalized_ = false;
  return static_cast<EdgeId>(edge_weights_.size() - 1);
}

void Hypergraph::set_vertex_weight(VertexId v, Weight w) {
  HT_CHECK(w >= 0.0);
  vertex_weights_[static_cast<std::size_t>(v)] = w;
  // Weights feed flow capacities: a finalized hypergraph whose weights
  // change must present a new cache key or reused engines would answer for
  // the old weights.
  if (finalized_) uid_ = next_structure_uid();
}

void Hypergraph::finalize() {
  if (finalized_) return;
  const auto n = static_cast<std::size_t>(num_vertices());
  inc_offsets_.assign(n + 1, 0);
  for (VertexId v : pin_storage_)
    ++inc_offsets_[static_cast<std::size_t>(v) + 1];
  for (std::size_t i = 0; i < n; ++i) inc_offsets_[i + 1] += inc_offsets_[i];
  inc_storage_.assign(pin_storage_.size(), 0);
  std::vector<std::int64_t> cursor(inc_offsets_.begin(),
                                   inc_offsets_.end() - 1);
  // Walk pin ranges through the raw offsets: pins() asserts finalized_,
  // which is not yet set here.
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto lo = pin_offsets_[static_cast<std::size_t>(e)];
    const auto hi = pin_offsets_[static_cast<std::size_t>(e) + 1];
    for (std::int64_t p = lo; p < hi; ++p) {
      const VertexId v = pin_storage_[static_cast<std::size_t>(p)];
      inc_storage_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(v)]++)] = e;
    }
  }
  uid_ = next_structure_uid();
  finalized_ = true;
}

std::int32_t Hypergraph::max_edge_size() const {
  std::int32_t best = 0;
  for (EdgeId e = 0; e < num_edges(); ++e) best = std::max(best, edge_size(e));
  return best;
}

double Hypergraph::avg_degree() const {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(pin_storage_.size()) /
         static_cast<double>(num_vertices());
}

Weight Hypergraph::total_edge_weight() const {
  return std::accumulate(edge_weights_.begin(), edge_weights_.end(), 0.0);
}

Weight Hypergraph::total_vertex_weight() const {
  return std::accumulate(vertex_weights_.begin(), vertex_weights_.end(), 0.0);
}

Weight Hypergraph::cut_weight(const std::vector<bool>& in_set) const {
  HT_CHECK(in_set.size() == vertex_weights_.size());
  Weight sum = 0.0;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    bool has_in = false, has_out = false;
    for (VertexId v : pins(e)) {
      (in_set[static_cast<std::size_t>(v)] ? has_in : has_out) = true;
      if (has_in && has_out) break;
    }
    if (has_in && has_out) sum += edge_weight(e);
  }
  return sum;
}

Weight Hypergraph::cut_weight(const std::vector<VertexId>& set) const {
  std::vector<bool> in_set(static_cast<std::size_t>(num_vertices()), false);
  for (VertexId v : set) in_set[static_cast<std::size_t>(v)] = true;
  return cut_weight(in_set);
}

Weight Hypergraph::touching_weight(const std::vector<bool>& in_set) const {
  HT_CHECK(in_set.size() == vertex_weights_.size());
  Weight sum = 0.0;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    for (VertexId v : pins(e)) {
      if (in_set[static_cast<std::size_t>(v)]) {
        sum += edge_weight(e);
        break;
      }
    }
  }
  return sum;
}

std::string Hypergraph::debug_string() const {
  std::ostringstream os;
  os << "Hypergraph(n=" << num_vertices() << ", m=" << num_edges()
     << ", hmax=" << max_edge_size() << ")";
  return os.str();
}

InducedSubhypergraph induced_subhypergraph(
    const Hypergraph& h, const std::vector<VertexId>& vertices) {
  std::vector<VertexId> new_of_old(
      static_cast<std::size_t>(h.num_vertices()), -1);
  InducedSubhypergraph out;
  out.hypergraph.resize(static_cast<VertexId>(vertices.size()));
  out.old_of_new = vertices;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId old = vertices[i];
    HT_CHECK(0 <= old && old < h.num_vertices());
    HT_CHECK_MSG(new_of_old[static_cast<std::size_t>(old)] == -1,
                 "duplicate vertex in induced_subhypergraph");
    new_of_old[static_cast<std::size_t>(old)] = static_cast<VertexId>(i);
    out.hypergraph.set_vertex_weight(static_cast<VertexId>(i),
                                     h.vertex_weight(old));
  }
  std::vector<VertexId> restricted;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    restricted.clear();
    for (VertexId v : h.pins(e)) {
      const VertexId nv = new_of_old[static_cast<std::size_t>(v)];
      if (nv != -1) restricted.push_back(nv);
    }
    if (restricted.size() >= 2)
      out.hypergraph.add_edge(restricted, h.edge_weight(e));
  }
  out.hypergraph.finalize();
  return out;
}

Hypergraph contract(const Hypergraph& h,
                    const std::vector<std::int32_t>& cluster_of,
                    std::int32_t num_clusters) {
  HT_CHECK(h.finalized());
  HT_CHECK(cluster_of.size() == static_cast<std::size_t>(h.num_vertices()));
  HT_CHECK(num_clusters >= 1);
  Hypergraph coarse(num_clusters);
  std::vector<double> cluster_weight(static_cast<std::size_t>(num_clusters),
                                     0.0);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    const auto c = cluster_of[static_cast<std::size_t>(v)];
    HT_CHECK(0 <= c && c < num_clusters);
    cluster_weight[static_cast<std::size_t>(c)] += h.vertex_weight(v);
  }
  // Deduplicate identical coarse pin sets, summing weights.
  std::map<std::vector<VertexId>, double> merged;
  std::vector<VertexId> pins;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    pins.clear();
    for (VertexId v : h.pins(e))
      pins.push_back(cluster_of[static_cast<std::size_t>(v)]);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;  // collapsed inside one cluster
    merged[pins] += h.edge_weight(e);
  }
  for (auto& [coarse_pins, weight] : merged)
    coarse.add_edge(coarse_pins, weight);
  for (std::int32_t c = 0; c < num_clusters; ++c)
    coarse.set_vertex_weight(c, cluster_weight[static_cast<std::size_t>(c)]);
  coarse.finalize();
  return coarse;
}

std::pair<std::vector<std::int32_t>, std::int32_t> connected_components(
    const Hypergraph& h) {
  HT_CHECK(h.finalized());
  const auto n = static_cast<std::size_t>(h.num_vertices());
  std::vector<std::int32_t> comp(n, -1);
  std::vector<bool> edge_done(static_cast<std::size_t>(h.num_edges()), false);
  std::int32_t count = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < h.num_vertices(); ++start) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    comp[static_cast<std::size_t>(start)] = count;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (EdgeId e : h.incident_edges(v)) {
        if (edge_done[static_cast<std::size_t>(e)]) continue;
        edge_done[static_cast<std::size_t>(e)] = true;
        for (VertexId u : h.pins(e)) {
          if (comp[static_cast<std::size_t>(u)] != -1) continue;
          comp[static_cast<std::size_t>(u)] = count;
          stack.push_back(u);
        }
      }
    }
    ++count;
  }
  return {std::move(comp), count};
}

bool is_connected(const Hypergraph& h) {
  if (h.num_vertices() == 0) return true;
  return connected_components(h).second == 1;
}

}  // namespace ht::hypergraph
