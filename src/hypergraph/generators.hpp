// Hypergraph workload generators, including the paper's constructions.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::hypergraph {

/// m random r-uniform hyperedges on n vertices (pins distinct, edges may
/// repeat). Unit weights.
Hypergraph random_uniform(VertexId n, EdgeId m, std::int32_t r, ht::Rng& rng);

/// The paper's G(n, p, r): every r-subset present independently with
/// probability p. Realized by sampling m ~ Binomial(C(n,r), p) edges (the
/// standard equivalent sampling for the sparse regime used here); with
/// p = n^{1+alpha-r} this has log-density alpha and expected average degree
/// Theta(n^alpha).
Hypergraph gnpr(VertexId n, double p, std::int32_t r, ht::Rng& rng);

/// G(n, p, r) with an adversarially planted sub-hypergraph: k vertices
/// carrying ceil(k^{1+beta}/r) r-uniform edges inside them (the Dense vs
/// Random planted instance of Conjecture 1). `planted[i]` lists the planted
/// vertex ids; planted edge ids come after the random ones.
struct PlantedInstance {
  Hypergraph hypergraph;
  std::vector<VertexId> planted_vertices;
  EdgeId first_planted_edge = 0;
};
PlantedInstance planted_dense(VertexId n, double p, std::int32_t r,
                              VertexId k, double beta, ht::Rng& rng);

/// Theorem 6 instance: a single hyperedge spanning all n vertices.
Hypergraph single_spanning_edge(VertexId n, Weight w = 1.0);

/// Figure 2 instance: top vertex v (id 0) connected by unit 2-edges to
/// u_1..u_n (ids 1..n), plus one hyperedge of weight sqrt(n) spanning all
/// u_i. If `unweighted`, the heavy hyperedge is replaced by floor(sqrt(n))
/// parallel unit copies (the unweighted variant noted after Theorem 7).
struct Figure2Instance {
  Hypergraph hypergraph;
  VertexId top = 0;
  std::vector<VertexId> u;  // u_1..u_n
};
Figure2Instance figure2(VertexId n, bool unweighted = false);

/// Wraps a graph as a 2-uniform hypergraph (edge weights copied).
Hypergraph from_graph_edges(const std::vector<std::pair<VertexId, VertexId>>&
                                edges,
                            VertexId n);

/// Quasi alpha-uniform MkU instance: constant hyperedge size r, every
/// vertex degree close to n^alpha (as in Lemma 4). Returns the instance
/// only; the MkU parameter k is chosen by the experiment.
Hypergraph quasi_uniform(VertexId n, double alpha, std::int32_t r,
                         ht::Rng& rng);

/// Planted-bisection hypergraph: two halves, `edges_per_side` r-uniform
/// edges inside each half, `cross_edges` r-uniform edges straddling the cut
/// (at least one pin on each side). OPT <= cross_edges by construction.
Hypergraph planted_bisection(VertexId half, std::int32_t r,
                             EdgeId edges_per_side, EdgeId cross_edges,
                             ht::Rng& rng);

/// Planted k-community instance: `parts` groups of `per` vertices,
/// `edges_per_part` r-uniform edges inside each group, `cross_edges`
/// spanning two random groups. The planted partition has connectivity
/// cost <= cross_edges.
Hypergraph planted_parts(std::int32_t parts, VertexId per, std::int32_t r,
                         EdgeId edges_per_part, EdgeId cross_edges,
                         ht::Rng& rng);

/// VLSI-netlist-like instance: mostly small nets (2–4 pins, geometric
/// distribution), plus a few high-fanout nets (clock/reset-like) spanning a
/// constant fraction of vertices. Models the hypergraph partitioning
/// workloads from the paper's introduction.
Hypergraph netlist_like(VertexId n, EdgeId nets, std::int32_t high_fanout_nets,
                        ht::Rng& rng);

/// Sparse-matrix row-net model: n "columns" (vertices), `rows` hyperedges,
/// each containing the columns with nonzeros in that row (band + random
/// fill). Models parallel SpMV load balancing.
Hypergraph spmv_row_net(VertexId n, EdgeId rows, std::int32_t band,
                        double fill_p, ht::Rng& rng);

}  // namespace ht::hypergraph
