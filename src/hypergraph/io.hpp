// Text IO in an hMetis-compatible format.
//
// Format (1-indexed, as hMetis):
//   line 1: m n [fmt]     fmt: 1=edge weights, 10=vertex weights, 11=both
//   next m lines: [weight] pin pin ...
//   next n lines (if vertex weights): weight
//
// The try_* readers report malformed input as kInvalidArgument statuses
// (never a value alongside — a half-parsed hypergraph is useless); the
// legacy readers abort on bad input and are superseded by the facade.
#pragma once

#include <iosfwd>
#include <string>

#include "hypergraph/hypergraph.hpp"
#include "util/status.hpp"

namespace ht::hypergraph {

void write_hmetis(const Hypergraph& h, std::ostream& os);
void write_hmetis_file(const Hypergraph& h, const std::string& path);

/// Parses an hMetis stream. On malformed input (truncated file, bad
/// header, pin out of range, missing weight) returns kInvalidArgument
/// with a message naming the offending line.
StatusOr<Hypergraph> try_read_hmetis(std::istream& is);
/// File variant; unreadable paths also yield kInvalidArgument.
StatusOr<Hypergraph> try_read_hmetis_file(const std::string& path);

/// Aborting wrappers; superseded by try_read_hmetis / ht::Solver.
HT_LEGACY_API Hypergraph read_hmetis(std::istream& is);
HT_LEGACY_API Hypergraph read_hmetis_file(const std::string& path);

}  // namespace ht::hypergraph
