// Text IO in an hMetis-compatible format.
//
// Format (1-indexed, as hMetis):
//   line 1: m n [fmt]     fmt: 1=edge weights, 10=vertex weights, 11=both
//   next m lines: [weight] pin pin ...
//   next n lines (if vertex weights): weight
#pragma once

#include <iosfwd>
#include <string>

#include "hypergraph/hypergraph.hpp"

namespace ht::hypergraph {

void write_hmetis(const Hypergraph& h, std::ostream& os);
Hypergraph read_hmetis(std::istream& is);

void write_hmetis_file(const Hypergraph& h, const std::string& path);
Hypergraph read_hmetis_file(const std::string& path);

}  // namespace ht::hypergraph
