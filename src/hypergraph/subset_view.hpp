// Zero-copy view of an induced sub-hypergraph.
//
// Same contract as ht::graph::SubsetView (see src/graph/subset_view.hpp):
// the view keeps only the vertex list plus an arena remap, and copies a
// concrete Hypergraph out only at materialize(). Lifetime rules are
// identical — parent outlives the view, one live view per thread, views
// are thread-affine.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/work_arena.hpp"

namespace ht::hypergraph {

class SubsetView {
 public:
  /// View of the sub-hypergraph of `parent` induced by `vertices`
  /// (distinct, in range). O(|vertices|).
  SubsetView(const Hypergraph& parent, std::vector<VertexId> vertices);

  const Hypergraph& parent() const { return *parent_; }
  VertexId size() const { return static_cast<VertexId>(vertices_.size()); }
  const std::vector<VertexId>& vertices() const { return vertices_; }
  VertexId old_of(VertexId local) const {
    return vertices_[static_cast<std::size_t>(local)];
  }
  /// Local id of a parent vertex, -1 when outside the view.
  VertexId local_of(VertexId old_id) const { return remap_.get(old_id); }
  bool contains(VertexId old_id) const { return local_of(old_id) != -1; }
  Weight vertex_weight(VertexId local) const {
    return parent_->vertex_weight(old_of(local));
  }
  Weight total_vertex_weight() const;

  /// Copies the view out as a finalized hypergraph: pins restricted to the
  /// view, hyperedges with < 2 surviving pins dropped. Output is identical
  /// to induced_subhypergraph(parent(), vertices()). Counts one
  /// materialization in PerfCounters.
  InducedSubhypergraph materialize() const;

 private:
  const Hypergraph* parent_;
  std::vector<VertexId> vertices_;
  ht::WorkArena::Remap remap_;
};

}  // namespace ht::hypergraph
