#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prep/prep.hpp"
#include "util/run_context.hpp"

namespace ht::prep {

namespace {

/// Degenerate outputs (nothing left to cut) would strand the downstream
/// tree builders; the pipeline skips the stage instead of applying it.
bool usable(const Hypergraph& h) {
  return h.num_vertices() >= 2 && h.num_edges() >= 1;
}

}  // namespace

const char* mode_name(PrepConfig::Mode mode) {
  switch (mode) {
    case PrepConfig::Mode::kOff: return "off";
    case PrepConfig::Mode::kExactOnly: return "exact";
    case PrepConfig::Mode::kAggressive: return "aggressive";
  }
  return "unknown";
}

bool parse_mode(std::string_view text, PrepConfig::Mode* out) {
  if (text == "off") {
    *out = PrepConfig::Mode::kOff;
  } else if (text == "exact" || text == "exact-only") {
    *out = PrepConfig::Mode::kExactOnly;
  } else if (text == "aggressive") {
    *out = PrepConfig::Mode::kAggressive;
  } else {
    return false;
  }
  return true;
}

double PrepResult::reduction_ratio() const {
  const double before = static_cast<double>(lifting.num_original()) +
                        static_cast<double>(total_pins_before);
  const double after = static_cast<double>(reduced.num_vertices()) +
                       static_cast<double>(total_pins(reduced));
  return after > 0.0 ? before / after : 1.0;
}

StatusOr<PrepResult> run_pipeline(const Hypergraph& h,
                                  const PrepConfig& config) {
  obs::TraceSpan span("prep.pipeline");
  if (!h.finalized()) {
    return Status::InvalidArgument("prep pipeline needs a finalized "
                                   "hypergraph");
  }
  PrepResult result;
  result.reduced = h;
  result.lifting = Lifting::identity(h.num_vertices());
  result.total_pins_before = total_pins(h);
  if (config.mode == PrepConfig::Mode::kOff || h.num_vertices() < 2) {
    return result;
  }

  const bool aggressive = config.mode == PrepConfig::Mode::kAggressive;
  std::vector<std::unique_ptr<PrepStage>> stages;
  stages.push_back(make_kernelize_stage(config.kernelize));
  if (aggressive) {
    stages.push_back(
        make_label_propagation_stage(config.label_propagation));
    // Label propagation creates duplicate coarse pin sets and new heavy
    // edges; a second exact pass mops them up.
    stages.push_back(make_kernelize_stage(config.kernelize));
    stages.push_back(make_sparsify_stage(config.sparsify));
  }

  RunState* run = current_run_state();
  auto& metrics = obs::MetricsRegistry::global();
  for (const auto& stage : stages) {
    if (run != nullptr && !run->check().ok()) break;
    StageResult sr;
    const Status st = stage->apply(result.reduced, sr);
    if (!st.ok()) return {st, std::move(result)};
    if (sr.changed && usable(sr.reduced)) {
      StageInfo info;
      info.name = stage->name();
      info.exact = stage->exact();
      info.rounds = sr.rounds;
      info.vertices_before = result.reduced.num_vertices();
      info.edges_before = result.reduced.num_edges();
      info.pins_before = total_pins(result.reduced);
      info.vertices_after = sr.reduced.num_vertices();
      info.edges_after = sr.reduced.num_edges();
      info.pins_after = total_pins(sr.reduced);
      metrics.counter("prep.stages_applied").add();
      metrics.counter("prep.vertices_removed")
          .add(static_cast<std::uint64_t>(info.vertices_before -
                                          info.vertices_after));
      metrics.counter("prep.edges_removed")
          .add(static_cast<std::uint64_t>(
              std::max<std::int64_t>(0, info.edges_before -
                                            info.edges_after)));
      metrics.counter("prep.pins_removed")
          .add(static_cast<std::uint64_t>(
              std::max<std::int64_t>(0, info.pins_before -
                                            info.pins_after)));
      result.lifting.compose(sr.map);
      result.reduced = std::move(sr.reduced);
      result.stage_flags |= sr.stage_flags;
      result.rounds += sr.rounds;
      result.stages.push_back(std::move(info));
    } else if (sr.changed) {
      metrics.counter("prep.stages_skipped").add();
    }
    // Stage boundaries are the pipeline's logical pieces: a piece budget
    // stops after the same stage at every thread count.
    if (run != nullptr) run->note_piece();
  }

  return {run != nullptr ? run->status() : Status::Ok(),
          std::move(result)};
}

}  // namespace ht::prep
