// Label-propagation contraction: the optional lossy kernelization rule.
//
// Synchronous rounds (every vertex adopts the best label of the PREVIOUS
// round, so the update is order-free and thread-count-invariant): vertex v
// scores each neighboring label by sum over incident hyperedges e and
// co-pins u != v with that label of w(e) / (|e| - 1) — a hyperedge's
// affinity spread over its other pins — and adopts the max, ties to the
// smallest label. A serial capping pass then assigns cluster ids in
// vertex-id order, splitting any label whose accumulated vertex weight
// would exceed max_cluster_fraction of the total, so the reduced instance
// keeps enough granularity for balanced queries.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prep/prep.hpp"
#include "util/run_context.hpp"
#include "util/thread_pool.hpp"

namespace ht::prep {

namespace {

using hypergraph::Weight;

class LabelPropagationStage final : public PrepStage {
 public:
  explicit LabelPropagationStage(LabelPropagationOptions options)
      : options_(options) {}

  const char* name() const override { return "label_propagation"; }
  bool exact() const override { return false; }

  Status apply(const Hypergraph& in, StageResult& out) const override {
    obs::TraceSpan span("prep.label_propagation");
    out = StageResult{};
    const VertexId n = in.num_vertices();
    out.map = ContractionMap::identity(n);
    if (n < 2 || in.num_edges() == 0) return Status::Ok();
    RunState* run = current_run_state();

    std::vector<VertexId> label(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) label[static_cast<std::size_t>(v)] = v;
    std::vector<VertexId> next(label);

    for (std::int32_t round = 0; round < options_.rounds; ++round) {
      if (run != nullptr && !run->check().ok()) break;
      parallel_for(static_cast<std::size_t>(n), [&](std::size_t vi) {
        const auto v = static_cast<VertexId>(vi);
        // Accumulation order per label is the fixed (edge, pin) iteration
        // order, so the float sums are deterministic.
        std::map<VertexId, Weight> score;
        for (const EdgeId e : in.incident_edges(v)) {
          const auto pins = in.pins(e);
          if (pins.size() < 2) continue;
          const Weight share =
              in.edge_weight(e) / static_cast<Weight>(pins.size() - 1);
          for (const VertexId u : pins) {
            if (u == v) continue;
            score[label[static_cast<std::size_t>(u)]] += share;
          }
        }
        VertexId best = label[vi];
        Weight best_score = -1.0;
        for (const auto& [candidate, s] : score) {
          // Strictly-greater keeps the smallest label on ties (map
          // iterates in ascending label order).
          if (s > best_score) {
            best = candidate;
            best_score = s;
          }
        }
        next[vi] = best;
      });
      label.swap(next);
      ++out.rounds;
      obs::MetricsRegistry::global().counter("prep.lp_rounds").add();
    }

    // Capped cluster assignment, serial and id-ordered: a label opens a
    // new cluster whenever its current one would exceed the weight cap.
    const Weight cap =
        std::max(in.total_vertex_weight() * options_.max_cluster_fraction,
                 1.0);
    std::map<VertexId, std::pair<VertexId, Weight>> open;  // label -> (id, w)
    out.map.cluster_of.assign(static_cast<std::size_t>(n), -1);
    VertexId clusters = 0;
    for (VertexId v = 0; v < n; ++v) {
      const VertexId l = label[static_cast<std::size_t>(v)];
      const Weight w = in.vertex_weight(v);
      auto it = open.find(l);
      if (it == open.end() || it->second.second + w > cap) {
        open[l] = {clusters, w};
        out.map.cluster_of[static_cast<std::size_t>(v)] = clusters;
        ++clusters;
      } else {
        it->second.second += w;
        out.map.cluster_of[static_cast<std::size_t>(v)] = it->second.first;
      }
    }
    out.map.num_clusters = clusters;
    if (clusters == n) {
      out.map = ContractionMap::identity(n);
      return Status::Ok();  // nothing coarsened
    }

    out.reduced =
        hypergraph::contract(in, out.map.cluster_of, out.map.num_clusters);
    out.stage_flags = kStageLabelPropagation;
    out.changed = true;
    return Status::Ok();
  }

 private:
  LabelPropagationOptions options_;
};

}  // namespace

std::unique_ptr<PrepStage> make_label_propagation_stage(
    LabelPropagationOptions options) {
  return std::make_unique<LabelPropagationStage>(options);
}

}  // namespace ht::prep
