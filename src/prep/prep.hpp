// Staged preprocessing pipeline: shrink a hypergraph before the expensive
// tree machinery runs (ROADMAP item 2).
//
// Two stage families, wired as an explicit pipeline in run_pipeline():
//
//  * Kernelization (HeiCut-style, arXiv:2504.19842). Exact-safe rules
//    applied to a fixpoint: drop zero-weight hyperedges, merge duplicate
//    pins-identical hyperedges (weights summed), and contract the pins of
//    any hyperedge whose weight strictly exceeds the current min-cut upper
//    bound lambda_hat (the minimum weighted vertex degree — the cut that
//    isolates that vertex). Such an edge can cross no minimum cut, so
//    contracting it preserves the global min-cut VALUE exactly; s-t cut
//    values for surviving vertex pairs only ever grow (dominating).
//    Label-propagation contraction rides along as an optional lossy rule
//    in aggressive mode.
//
//  * Importance-sampling cut sparsification in the spirit of
//    Chen–Khanna–Nagda (arXiv:2009.04992): keep hyperedge e with
//    probability p_e proportional to w(e) / strength(e) (strength proxy:
//    minimum weighted degree over e's pins), reweighted to w(e) / p_e so
//    cuts are preserved in expectation. The sampler is seeded and keyed on
//    (seed, edge id) via hash64 — byte-identical across thread counts.
//
// Every stage is deadline-aware through the ambient RunState (polled at
// round boundaries; one logical piece is noted per applied stage so piece
// budgets stop the pipeline at the same stage for every thread count) and
// deterministic: parallel sections write disjoint per-index slots and all
// reductions fold serially.
//
// The id contract: a stage maps its input to a contracted output plus a
// ContractionMap; run_pipeline composes them into one Lifting so every
// consumer (snapshot builder, TreeServer) can answer in ORIGINAL ids.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "prep/contraction.hpp"
#include "util/status.hpp"

namespace ht::prep {

using hypergraph::EdgeId;
using hypergraph::Hypergraph;

// Which rules actually changed the instance; recorded per pipeline in
// PrepResult::stage_flags and persisted verbatim in the snapshot's
// PrepBlock. Stable on-disk values — append, never renumber.
inline constexpr std::uint32_t kStageZeroEdges = 1u << 0;
inline constexpr std::uint32_t kStageDuplicateMerge = 1u << 1;
inline constexpr std::uint32_t kStageHeavyContraction = 1u << 2;
inline constexpr std::uint32_t kStageLabelPropagation = 1u << 3;
inline constexpr std::uint32_t kStageSparsifier = 1u << 4;

/// True when no lossy rule fired: the reduced instance provably has the
/// same global minimum cut value as the original.
inline bool stages_exact(std::uint32_t flags) {
  return (flags & (kStageLabelPropagation | kStageSparsifier)) == 0;
}
/// Stronger: only zero-edge removal / duplicate merging fired, so EVERY
/// cut value (per-pair s-t included) is preserved, not just the minimum.
inline bool stages_cut_preserving(std::uint32_t flags) {
  return (flags & ~(kStageZeroEdges | kStageDuplicateMerge)) == 0;
}

/// Sum of hyperedge sizes (|pins|); the size measure benches report.
std::int64_t total_pins(const Hypergraph& h);

/// One stage application: the contracted instance plus the vertex map
/// back to the stage's input. `reduced` is meaningful only when `changed`.
struct StageResult {
  Hypergraph reduced;
  ContractionMap map;
  std::uint32_t stage_flags = 0;
  std::uint32_t rounds = 0;
  bool changed = false;
};

/// The stage contract. apply() must be deterministic for a fixed input
/// (independent of thread count), poll the ambient RunState at round
/// boundaries, and on an early stop leave `out` either unchanged or a
/// valid best-so-far reduction — never a half-applied map.
class PrepStage {
 public:
  virtual ~PrepStage() = default;
  virtual const char* name() const = 0;
  /// True when the stage preserves the global min-cut value exactly.
  virtual bool exact() const = 0;
  virtual Status apply(const Hypergraph& in, StageResult& out) const = 0;
};

struct KernelizeOptions {
  /// Fixpoint cap; each round is one contract() pass.
  std::int32_t max_rounds = 8;
  /// Enables the lambda_hat heavy-hyperedge contraction rule (the
  /// zero-edge and duplicate-merge rules always run).
  bool heavy_contraction = true;
};

struct LabelPropagationOptions {
  std::int32_t rounds = 2;
  /// No cluster may exceed this fraction of the total vertex weight, so
  /// balanced queries on the reduced instance stay meaningful.
  double max_cluster_fraction = 0.25;
};

struct SparsifyOptions {
  /// Sampling aggressiveness: p_e = min(1, c*log2(n)/eps^2 * w_e/s_e).
  double epsilon = 0.5;
  double c = 1.0;
  std::uint64_t seed = 0x5eedULL;
};

std::unique_ptr<PrepStage> make_kernelize_stage(KernelizeOptions options = {});
std::unique_ptr<PrepStage> make_label_propagation_stage(
    LabelPropagationOptions options = {});
std::unique_ptr<PrepStage> make_sparsify_stage(SparsifyOptions options = {});

struct PrepConfig {
  enum class Mode : std::uint32_t {
    kOff = 0,        // pipeline disabled, identity result
    kExactOnly = 1,  // kernelization to a fixpoint, nothing lossy
    kAggressive = 2, // kernelize, label-propagate, re-kernelize, sparsify
  };
  Mode mode = Mode::kOff;
  KernelizeOptions kernelize;
  LabelPropagationOptions label_propagation;
  SparsifyOptions sparsify;
};

const char* mode_name(PrepConfig::Mode mode);
/// Parses "off" / "exact" / "aggressive" (the CLI spelling).
bool parse_mode(std::string_view text, PrepConfig::Mode* out);

/// Per applied stage, the before/after sizes (for provenance text and
/// reduction-ratio reporting).
struct StageInfo {
  std::string name;
  VertexId vertices_before = 0, vertices_after = 0;
  EdgeId edges_before = 0, edges_after = 0;
  std::int64_t pins_before = 0, pins_after = 0;
  std::uint32_t rounds = 0;
  bool exact = true;
};

struct PrepResult {
  /// The reduced instance (== a copy of the input when nothing fired).
  Hypergraph reduced;
  /// Composed original -> reduced vertex map.
  Lifting lifting;
  /// Stages that actually changed the instance, in application order.
  std::vector<StageInfo> stages;
  std::uint32_t stage_flags = 0;
  std::uint32_t rounds = 0;
  /// Pin count of the ORIGINAL instance (reduction_ratio()'s numerator).
  std::int64_t total_pins_before = 0;

  bool applied() const { return stage_flags != 0; }
  bool exact() const { return stages_exact(stage_flags); }
  bool cut_preserving() const { return stages_cut_preserving(stage_flags); }
  /// (vertices + pins) shrink factor, the headline reduction metric.
  double reduction_ratio() const;
};

/// Runs the configured pipeline under the ambient RunState with the
/// library's anytime semantics: a deadline / cancel / piece-budget stop
/// mid-pipeline returns the stages applied so far (still a valid exact or
/// lossy reduction) tagged with the stop status. A stage whose output
/// would be degenerate (< 2 vertices or no hyperedges) is skipped so the
/// result always supports the downstream tree builders.
StatusOr<PrepResult> run_pipeline(const Hypergraph& h,
                                  const PrepConfig& config);

}  // namespace ht::prep
