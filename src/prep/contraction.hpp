// Vertex-id bookkeeping for the preprocessing pipeline.
//
// Every prep stage maps its input hypergraph to a (possibly) contracted
// output hypergraph and reports the vertex mapping as a ContractionMap.
// A Lifting is the composition of those maps across the whole pipeline:
// one flat original-id -> reduced-id array that downstream layers (the
// snapshot builder, TreeServer) use to keep answering in ORIGINAL vertex
// ids no matter how many stages fired. The invariant, checked by tests:
//
//   lift(answer on reduced instance) == answer on original instance
//
// for every contraction-based exact rule, and "dominating estimate" for
// the lossy rules (label propagation, sparsification).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace ht::prep {

using hypergraph::VertexId;

/// One stage's vertex map: input vertex -> output cluster, clusters dense
/// in [0, num_clusters). Stages that only touch edges return identity().
struct ContractionMap {
  std::vector<VertexId> cluster_of;
  VertexId num_clusters = 0;

  static ContractionMap identity(VertexId n);
  bool is_identity() const;
};

/// The composed original -> reduced map for a whole pipeline. Starts as
/// identity over the original vertex set; compose() folds in each stage's
/// ContractionMap as it is applied.
class Lifting {
 public:
  Lifting() = default;
  static Lifting identity(VertexId n);

  /// Folds `next` (a map over the CURRENT reduced vertex set) into the
  /// composition. Requires next.cluster_of.size() == num_reduced().
  void compose(const ContractionMap& next);

  VertexId num_original() const {
    return static_cast<VertexId>(to_reduced_.size());
  }
  VertexId num_reduced() const { return num_reduced_; }
  VertexId to_reduced(VertexId original) const {
    return to_reduced_[static_cast<std::size_t>(original)];
  }
  const std::vector<VertexId>& map() const { return to_reduced_; }
  bool is_identity() const;

  /// Lifts a per-reduced-vertex value onto original ids: out[v] =
  /// reduced_value[to_reduced(v)].
  std::vector<bool> lift_side(const std::vector<bool>& reduced_side) const;
  std::vector<std::int32_t> lift_partition(
      const std::vector<std::int32_t>& reduced_part) const;

 private:
  std::vector<VertexId> to_reduced_;
  VertexId num_reduced_ = 0;
};

}  // namespace ht::prep
