// Importance-sampling cut sparsifier (Chen–Khanna–Nagda-style).
//
// Keep probability p_e = min(1, rho * w(e) / strength(e)) with
// rho = c * log2(n) / epsilon^2 and strength(e) approximated by the
// minimum weighted degree over e's pins (a cheap lower bound on how well
// e's endpoints are connected: edges inside well-connected regions are
// oversampled-safe, edges that could be a small cut's only crossing have
// w(e) ~ strength(e) and survive with p_e = 1). Kept edges are reweighted
// to w(e) / p_e so every cut is preserved in expectation.
//
// The sampler is deterministic and schedule-free: edge e draws its
// uniform from hash64(e, seed), so the same (instance, seed) keeps the
// same edges at every thread count.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prep/prep.hpp"
#include "util/hash64.hpp"
#include "util/run_context.hpp"
#include "util/thread_pool.hpp"

namespace ht::prep {

namespace {

using hypergraph::Weight;

/// Uniform in [0, 1) keyed on (seed, edge id); 53 mantissa bits of XXH64.
double edge_uniform(EdgeId e, std::uint64_t seed) {
  const auto key = static_cast<std::int64_t>(e);
  const std::uint64_t bits = hash64(&key, sizeof(key), seed);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

class SparsifyStage final : public PrepStage {
 public:
  explicit SparsifyStage(SparsifyOptions options) : options_(options) {}

  const char* name() const override { return "sparsify"; }
  bool exact() const override { return false; }

  Status apply(const Hypergraph& in, StageResult& out) const override {
    obs::TraceSpan span("prep.sparsify");
    out = StageResult{};
    const VertexId n = in.num_vertices();
    const EdgeId m = in.num_edges();
    out.map = ContractionMap::identity(n);
    if (n < 2 || m == 0) return Status::Ok();
    if (RunState* run = current_run_state();
        run != nullptr && !run->check().ok()) {
      return Status::Ok();
    }

    std::vector<Weight> degree(static_cast<std::size_t>(n), 0.0);
    parallel_for(static_cast<std::size_t>(n), [&](std::size_t v) {
      Weight d = 0.0;
      for (const EdgeId e : in.incident_edges(static_cast<VertexId>(v))) {
        d += in.edge_weight(e);
      }
      degree[v] = d;
    });

    const double rho = options_.c *
                       std::max(1.0, std::log2(static_cast<double>(n))) /
                       (options_.epsilon * options_.epsilon);
    std::vector<double> keep_weight(static_cast<std::size_t>(m), 0.0);
    parallel_for(static_cast<std::size_t>(m), [&](std::size_t ei) {
      const auto e = static_cast<EdgeId>(ei);
      Weight strength = std::numeric_limits<Weight>::infinity();
      for (const VertexId v : in.pins(e)) {
        strength = std::min(strength, degree[static_cast<std::size_t>(v)]);
      }
      const Weight w = in.edge_weight(e);
      const double p =
          strength > 0.0 ? std::min(1.0, rho * w / strength) : 1.0;
      if (p >= 1.0) {
        keep_weight[ei] = w;
      } else if (edge_uniform(e, options_.seed) < p) {
        keep_weight[ei] = w / p;
      }
    });

    EdgeId kept = 0;
    bool reweighted = false;
    for (EdgeId e = 0; e < m; ++e) {
      const Weight w = keep_weight[static_cast<std::size_t>(e)];
      if (w > 0.0) {
        ++kept;
        reweighted = reweighted || w != in.edge_weight(e);
      }
    }
    if (kept == m && !reweighted) return Status::Ok();  // p_e == 1 for all

    Hypergraph sparse(n);
    for (VertexId v = 0; v < n; ++v) {
      sparse.set_vertex_weight(v, in.vertex_weight(v));
    }
    for (EdgeId e = 0; e < m; ++e) {
      const Weight w = keep_weight[static_cast<std::size_t>(e)];
      if (w == 0.0) continue;
      const auto pins = in.pins(e);
      sparse.add_edge({pins.begin(), pins.end()}, w);
    }
    sparse.finalize();
    obs::MetricsRegistry::global()
        .counter("prep.sparsified_edges_dropped")
        .add(static_cast<std::uint64_t>(m - kept));
    out.reduced = std::move(sparse);
    out.stage_flags = kStageSparsifier;
    out.changed = true;
    return Status::Ok();
  }

 private:
  SparsifyOptions options_;
};

}  // namespace

std::unique_ptr<PrepStage> make_sparsify_stage(SparsifyOptions options) {
  return std::make_unique<SparsifyStage>(options);
}

}  // namespace ht::prep
