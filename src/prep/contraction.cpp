#include "prep/contraction.hpp"

#include <numeric>

#include "util/check.hpp"

namespace ht::prep {

ContractionMap ContractionMap::identity(VertexId n) {
  ContractionMap out;
  out.cluster_of.resize(static_cast<std::size_t>(n));
  std::iota(out.cluster_of.begin(), out.cluster_of.end(), 0);
  out.num_clusters = n;
  return out;
}

bool ContractionMap::is_identity() const {
  if (num_clusters != static_cast<VertexId>(cluster_of.size())) return false;
  for (std::size_t v = 0; v < cluster_of.size(); ++v) {
    if (cluster_of[v] != static_cast<VertexId>(v)) return false;
  }
  return true;
}

Lifting Lifting::identity(VertexId n) {
  Lifting out;
  out.to_reduced_.resize(static_cast<std::size_t>(n));
  std::iota(out.to_reduced_.begin(), out.to_reduced_.end(), 0);
  out.num_reduced_ = n;
  return out;
}

void Lifting::compose(const ContractionMap& next) {
  HT_CHECK(static_cast<VertexId>(next.cluster_of.size()) == num_reduced_);
  for (VertexId& r : to_reduced_) {
    r = next.cluster_of[static_cast<std::size_t>(r)];
    HT_CHECK(0 <= r && r < next.num_clusters);
  }
  num_reduced_ = next.num_clusters;
}

bool Lifting::is_identity() const {
  if (num_reduced_ != num_original()) return false;
  for (std::size_t v = 0; v < to_reduced_.size(); ++v) {
    if (to_reduced_[v] != static_cast<VertexId>(v)) return false;
  }
  return true;
}

std::vector<bool> Lifting::lift_side(
    const std::vector<bool>& reduced_side) const {
  HT_CHECK(reduced_side.size() == static_cast<std::size_t>(num_reduced_));
  std::vector<bool> out(to_reduced_.size());
  for (std::size_t v = 0; v < to_reduced_.size(); ++v) {
    out[v] = reduced_side[static_cast<std::size_t>(to_reduced_[v])];
  }
  return out;
}

std::vector<std::int32_t> Lifting::lift_partition(
    const std::vector<std::int32_t>& reduced_part) const {
  HT_CHECK(reduced_part.size() == static_cast<std::size_t>(num_reduced_));
  std::vector<std::int32_t> out(to_reduced_.size());
  for (std::size_t v = 0; v < to_reduced_.size(); ++v) {
    out[v] = reduced_part[static_cast<std::size_t>(to_reduced_[v])];
  }
  return out;
}

}  // namespace ht::prep
