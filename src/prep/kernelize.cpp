#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prep/prep.hpp"
#include "util/run_context.hpp"
#include "util/thread_pool.hpp"

namespace ht::prep {

namespace {

using hypergraph::Weight;

/// Minimum weighted vertex degree — the cheapest single-vertex cut, hence
/// a valid upper bound lambda_hat on the global minimum cut (n >= 2
/// guarantees every incident hyperedge has a pin on the far side).
/// Degrees are computed in parallel per disjoint slot; the min folds
/// serially (min over doubles is order-independent anyway).
Weight min_weighted_degree(const Hypergraph& h,
                           std::vector<Weight>& degree_scratch) {
  const auto n = static_cast<std::size_t>(h.num_vertices());
  degree_scratch.assign(n, 0.0);
  parallel_for(n, [&](std::size_t v) {
    Weight d = 0.0;
    for (const EdgeId e : h.incident_edges(static_cast<VertexId>(v))) {
      d += h.edge_weight(e);
    }
    degree_scratch[v] = d;
  });
  Weight lo = std::numeric_limits<Weight>::infinity();
  for (const Weight d : degree_scratch) lo = std::min(lo, d);
  return lo;
}

struct UnionFind {
  std::vector<VertexId> parent;

  explicit UnionFind(VertexId n) : parent(static_cast<std::size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  VertexId find(VertexId v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      const VertexId p = parent[static_cast<std::size_t>(v)];
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(p)];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  }
  void unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    // Smaller root wins: the representative choice is id-deterministic.
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent[static_cast<std::size_t>(b)] = a;
  }
};

/// Copies `h` without its zero-weight hyperedges (vertices untouched).
Hypergraph drop_zero_edges(const Hypergraph& h) {
  Hypergraph out(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    out.set_vertex_weight(v, h.vertex_weight(v));
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (h.edge_weight(e) == 0.0) continue;
    const auto pins = h.pins(e);
    out.add_edge({pins.begin(), pins.end()}, h.edge_weight(e));
  }
  out.finalize();
  return out;
}

class KernelizeStage final : public PrepStage {
 public:
  explicit KernelizeStage(KernelizeOptions options) : options_(options) {}

  const char* name() const override { return "kernelize"; }
  bool exact() const override { return true; }

  Status apply(const Hypergraph& in, StageResult& out) const override {
    obs::TraceSpan span("prep.kernelize");
    out = StageResult{};
    out.map = ContractionMap::identity(in.num_vertices());
    RunState* run = current_run_state();

    // `current` tracks the shrinking instance; `in` is only read.
    Hypergraph storage;
    const Hypergraph* current = &in;
    std::vector<Weight> degree;
    auto& metrics = obs::MetricsRegistry::global();

    for (std::int32_t round = 0; round < options_.max_rounds; ++round) {
      if (run != nullptr && !run->check().ok()) break;
      const VertexId n = current->num_vertices();
      const EdgeId m = current->num_edges();
      if (n < 2) break;

      // Rule 1: zero-weight hyperedges can never contribute to a cut.
      bool dropped_zero = false;
      for (EdgeId e = 0; e < m && !dropped_zero; ++e) {
        dropped_zero = current->edge_weight(e) == 0.0;
      }
      if (dropped_zero) {
        Hypergraph filtered = drop_zero_edges(*current);
        metrics.counter("prep.zero_edges_removed")
            .add(static_cast<std::uint64_t>(m - filtered.num_edges()));
        storage = std::move(filtered);
        current = &storage;
        out.stage_flags |= kStageZeroEdges;
      }

      // Rule 3 (heavy hyperedges): w(e) > lambda_hat means e crosses no
      // minimum cut — contract its pins.
      UnionFind uf(current->num_vertices());
      if (options_.heavy_contraction && current->num_vertices() >= 2) {
        const Weight lambda_hat = min_weighted_degree(*current, degree);
        for (EdgeId e = 0; e < current->num_edges(); ++e) {
          if (current->edge_weight(e) > lambda_hat) {
            const auto pins = current->pins(e);
            for (std::size_t i = 1; i < pins.size(); ++i) {
              uf.unite(pins[0], pins[i]);
            }
            metrics.counter("prep.heavy_edges_contracted").add();
          }
        }
      }

      // Cluster ids in first-occurrence order: deterministic renumbering.
      ContractionMap map;
      map.cluster_of.assign(
          static_cast<std::size_t>(current->num_vertices()), -1);
      VertexId clusters = 0;
      for (VertexId v = 0; v < current->num_vertices(); ++v) {
        const VertexId root = uf.find(v);
        VertexId& c = map.cluster_of[static_cast<std::size_t>(root)];
        if (v == root) {
          c = clusters++;
        }
        map.cluster_of[static_cast<std::size_t>(v)] = c;
      }
      map.num_clusters = clusters;

      // Rule 2 rides on contract(): identical coarse pin sets merge with
      // weights summed (and heavy edges collapse inside their cluster).
      Hypergraph next = hypergraph::contract(*current, map.cluster_of,
                                             map.num_clusters);
      const bool contracted = clusters < current->num_vertices();
      const bool merged =
          !contracted && next.num_edges() < current->num_edges();
      if (!dropped_zero && !contracted && !merged) break;  // fixpoint
      if (contracted) out.stage_flags |= kStageHeavyContraction;
      if (merged) {
        out.stage_flags |= kStageDuplicateMerge;
        metrics.counter("prep.duplicate_edges_merged")
            .add(static_cast<std::uint64_t>(current->num_edges() -
                                            next.num_edges()));
      }
      if (contracted || merged) {
        storage = std::move(next);
        current = &storage;
      }
      if (contracted) {
        // Fold this round's vertex map into the stage map.
        for (VertexId& c : out.map.cluster_of) {
          c = map.cluster_of[static_cast<std::size_t>(c)];
        }
        out.map.num_clusters = map.num_clusters;
      }
      out.changed = true;
      ++out.rounds;
      metrics.counter("prep.kernelize_rounds").add();
    }

    if (out.changed) out.reduced = std::move(storage);
    return Status::Ok();
  }

 private:
  KernelizeOptions options_;
};

}  // namespace

std::int64_t total_pins(const Hypergraph& h) {
  std::int64_t pins = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    pins += h.edge_size(e);
  }
  return pins;
}

std::unique_ptr<PrepStage> make_kernelize_stage(KernelizeOptions options) {
  return std::make_unique<KernelizeStage>(options);
}

}  // namespace ht::prep
