#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace ht {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HT_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  HT_CHECK_MSG(row.size() == header_.size(),
               "row width " << row.size() << " != header width "
                            << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}
std::string Table::format_cell(int v) { return std::to_string(v); }
std::string Table::format_cell(long v) { return std::to_string(v); }
std::string Table::format_cell(long long v) { return std::to_string(v); }
std::string Table::format_cell(unsigned long v) { return std::to_string(v); }
std::string Table::format_cell(unsigned long long v) {
  return std::to_string(v);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_markdown(std::ostream& os) const {
  auto row_md = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? " | " : " |\n");
    }
  };
  row_md(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) row_md(row);
}

void Table::print_csv(std::ostream& os) const {
  auto row_csv = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  row_csv(header_);
  for (const auto& row : rows_) row_csv(row);
}

}  // namespace ht
