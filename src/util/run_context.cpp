#include "util/run_context.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/trace.hpp"

namespace ht {

Status RunState::status() const {
  const int code = stop_code_.load(std::memory_order_relaxed);
  if (code == 0) return Status::Ok();
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kCancelled:
      return Status::Cancelled("run cancelled");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded("run deadline exceeded");
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted("run budget exhausted");
    default:
      return Status(static_cast<StatusCode>(code), "run stopped");
  }
}

Status RunState::check() {
  if (stopped()) return status();
  if (ctx_.cancel.cancelled()) {
    latch(StatusCode::kCancelled);
  } else if (ctx_.has_deadline() &&
             RunContext::Clock::now() >= ctx_.deadline) {
    latch(StatusCode::kDeadlineExceeded);
  }
  return status();
}

std::uint64_t RunState::note_piece() {
  const std::uint64_t count =
      pieces_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ctx_.piece_budget != 0 && count >= ctx_.piece_budget) {
    latch(StatusCode::kResourceExhausted);
  }
  return count;
}

void RunState::latch(StatusCode code) {
  if (code == StatusCode::kOk) return;
  int expected = 0;
  stop_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                     std::memory_order_relaxed);
}

namespace {
thread_local std::shared_ptr<RunState> tls_run_state;
}  // namespace

RunState* current_run_state() { return tls_run_state.get(); }

std::shared_ptr<RunState> current_run_state_shared() { return tls_run_state; }

RunScope::RunScope(const RunContext& ctx)
    : state_(std::make_shared<RunState>(ctx)),
      previous_(std::move(tls_run_state)) {
  tls_run_state = state_;
}

RunScope::~RunScope() { tls_run_state = std::move(previous_); }

RunBinding::RunBinding(std::shared_ptr<RunState> state)
    : previous_(std::move(tls_run_state)) {
  tls_run_state = std::move(state);
}

RunBinding::~RunBinding() { tls_run_state = std::move(previous_); }

std::size_t parse_thread_count(const char* text, std::size_t fallback) {
  if (text == nullptr) return fallback;
  // strtoul accepts a leading '-' (wrapping to a huge value), so screen it
  // out; cap the result so a typo can't ask for millions of threads.
  constexpr unsigned long kMaxThreads = 1024;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(text, &end, 10);
  if (text[0] != '-' && end != text && *end == '\0' && parsed >= 1) {
    return static_cast<std::size_t>(std::min(parsed, kMaxThreads));
  }
  return fallback;
}

std::size_t env_default_threads() {
  static const std::size_t threads = [] {
    const std::size_t hw = std::thread::hardware_concurrency();
    return parse_thread_count(std::getenv("HT_THREADS"),
                              hw == 0 ? 1 : hw);
  }();
  return threads;
}

const std::string& env_trace_path() {
  static const std::string path = [] {
    const char* env = std::getenv("HT_TRACE");
    return std::string(env != nullptr ? env : "");
  }();
  return path;
}

RunContext RunContext::FromEnv() {
  RunContext ctx;
  ctx.threads = env_default_threads();
  ctx.trace_path = env_trace_path();
  return ctx;
}

namespace {

/// HT_TRACE=out.json turns tracing on for the whole process and writes the
/// Chrome trace at exit. This lives here rather than in obs/trace.cpp so
/// the obs layer itself never reads the environment — env parsing is
/// RunContext's job (env_trace_path above is the single HT_TRACE read).
struct TraceEnvInit {
  TraceEnvInit() {
    if (env_trace_path().empty()) return;
    (void)obs::Tracer::global();  // construct before registering the handler
    obs::set_tracing_enabled(true);
    std::atexit([] {
      obs::set_tracing_enabled(false);
      const std::string& path = env_trace_path();
      if (obs::Tracer::global().write_chrome_trace(path)) {
        std::fprintf(stderr, "ht: wrote trace to %s (%zu events)\n",
                     path.c_str(), obs::Tracer::global().event_count());
      } else {
        std::fprintf(stderr, "ht: failed to write trace to %s\n",
                     path.c_str());
      }
    });
  }
};
const TraceEnvInit g_trace_env_init;

}  // namespace

}  // namespace ht
