// Deterministic random number generation.
//
// All randomized components of the library take an explicit `Rng&` (or a
// seed) so that every experiment is reproducible bit-for-bit across runs and
// thread counts. `Rng` is xoshiro256**, seeded via SplitMix64; independent
// streams for parallel work are derived with `split()`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace ht {

/// SplitMix64 — used to expand a single seed into xoshiro state and to
/// derive independent stream seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified with rejection).
  std::uint64_t next_below(std::uint64_t bound) {
    HT_CHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    HT_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Derive an independent stream (for per-task RNGs in parallel sweeps).
  Rng split() {
    std::uint64_t s = (*this)();
    return Rng(s);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample `k` distinct values from [0, n) in increasing order
  /// (Floyd's algorithm followed by a sort-free insertion since k is small
  /// relative to n in our workloads; falls back to shuffle for dense k).
  std::vector<std::int32_t> sample_without_replacement(std::int32_t n,
                                                       std::int32_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

inline std::vector<std::int32_t> Rng::sample_without_replacement(
    std::int32_t n, std::int32_t k) {
  HT_CHECK(0 <= k && k <= n);
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k > n / 2) {
    std::vector<std::int32_t> all(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    shuffle(all);
    out.assign(all.begin(), all.begin() + k);
  } else {
    // Floyd's algorithm.
    std::vector<bool> in(static_cast<std::size_t>(n), false);
    for (std::int32_t j = n - k; j < n; ++j) {
      auto t = static_cast<std::int32_t>(next_below(
          static_cast<std::uint64_t>(j) + 1));
      if (in[static_cast<std::size_t>(t)]) t = j;
      in[static_cast<std::size_t>(t)] = true;
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ht
