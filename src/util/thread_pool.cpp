#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/perf_counters.hpp"
#include "util/run_context.hpp"

namespace ht {

namespace {

std::mutex g_global_pool_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = configured_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  // Run-context propagation: a task spawned under a RunScope must observe
  // the same RunState (deadline, cancel latch, piece counter) no matter
  // which worker steals it. Only pay the wrapper when a run is bound.
  if (std::shared_ptr<RunState> run = current_run_state_shared()) {
    task = [run = std::move(run), inner = std::move(task)]() mutable {
      RunBinding binding(run);
      inner();
    };
  }
  // Span-context propagation: the task's spans must parent under the span
  // that *enqueued* it (the logical recursion tree), not under whatever
  // the stealing thread happens to be running. Only pay the wrapper when
  // tracing is live.
  if (obs::tracing_enabled()) {
    task = [parent = obs::current_span(),
            inner = std::move(task)]() mutable {
      obs::ContextGuard context(parent);
      inner();
    };
  }
  {
    std::unique_lock lock(mutex_);
    HT_CHECK(!stopping_);
    tasks_.push_back(std::move(task));
    PerfCounters::global().note_queue_depth(tasks_.size());
  }
  task_available_.notify_one();
  progress_.notify_all();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::unique_lock lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop_front();
    ++in_flight_;
  }
  run_task(task);
  return true;
}

void ThreadPool::run_task(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::unique_lock lock(mutex_);
    if (!pending_error_) pending_error_ = std::current_exception();
  }
  PerfCounters::global().add_task();
  {
    std::unique_lock lock(mutex_);
    --in_flight_;
    if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
  }
  progress_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (pending_error_) {
    std::exception_ptr err = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    run_task(task);
  }
}

std::size_t ThreadPool::configured_threads() {
  // Env parsing lives in run_context.cpp (RunContext::FromEnv is the one
  // place the environment is consulted); this is just the default knob.
  return env_default_threads();
}

ThreadPool& ThreadPool::global() {
  std::scoped_lock lock(g_global_pool_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::reset_global(std::size_t threads) {
  std::scoped_lock lock(g_global_pool_mutex);
  g_global_pool.reset();  // joins the old workers
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::global();
  if (n == 1 || pool.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Static chunking: cell -> chunk mapping is independent of thread count,
  // and each cell seeds its own RNG from its index, so output is
  // deterministic. Shared state lives on the heap because the enqueued
  // claimants can outlive this frame's fast path (help_until may return as
  // soon as all chunks are claimed and finished by others).
  struct State {
    std::function<void(std::size_t)> body;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
  };
  auto state = std::make_shared<State>();
  state->body = body;
  const std::size_t chunks = std::min(n, pool.size() * 4);
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.enqueue([state, chunks, n] {
      for (;;) {
        const std::size_t chunk = state->next_chunk.fetch_add(1);
        if (chunk >= chunks) break;
        const std::size_t lo = chunk * n / chunks;
        const std::size_t hi = (chunk + 1) * n / chunks;
        try {
          for (std::size_t i = lo; i < hi; ++i) state->body(i);
        } catch (...) {
          std::scoped_lock lock(state->error_mutex);
          if (!state->first_error)
            state->first_error = std::current_exception();
        }
        state->done.fetch_add(1);
      }
    });
  }
  // The calling thread participates: it steals queued tasks (its own
  // chunk claimants or unrelated work) until every chunk has finished.
  pool.help_until([&] { return state->done.load() == chunks; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace ht
