#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace ht {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    HT_CHECK(!stopping_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::global();
  if (n == 1 || pool.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Static chunking: cell -> chunk mapping is independent of thread count,
  // and each cell seeds its own RNG from its index, so output is
  // deterministic.
  const std::size_t chunks = std::min(n, pool.size() * 4);
  std::atomic<std::size_t> next_chunk{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < chunks; ++c) {
    pool.enqueue([&, chunks, n] {
      for (;;) {
        const std::size_t chunk = next_chunk.fetch_add(1);
        if (chunk >= chunks) break;
        const std::size_t lo = chunk * n / chunks;
        const std::size_t hi = (chunk + 1) * n / chunks;
        try {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
      std::scoped_lock lock(done_mutex);
      ++done;
      done_cv.notify_all();
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done == chunks; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ht
