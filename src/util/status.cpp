#include "util/status.hpp"

namespace ht {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out = code_name();
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ht
