// Process-wide performance counters for the parallel decomposition engine.
//
// The engines (wavefront peeling, Gomory–Hu batching, the flow oracles)
// and the thread pool feed a small set of atomic counters; benches reset
// them around a measured section and print report(). Counters are
// intentionally lossy about attribution (they are process-wide, not
// per-call) — they exist to make "what did this run actually do" visible,
// not to replace a profiler.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ht {

class PerfCounters {
 public:
  static PerfCounters& global();

  /// Work items (pieces/clusters/subproblems) processed by the engines.
  void add_pieces(std::uint64_t count) {
    pieces_.fetch_add(count, std::memory_order_relaxed);
  }
  /// Max-flow invocations (min_edge_cut / min_vertex_cut /
  /// min_hyperedge_cut), including speculative ones that were discarded.
  void add_max_flow_call() {
    max_flow_calls_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Tasks executed by the thread pool (workers and stealing waiters).
  void add_task() { tasks_.fetch_add(1, std::memory_order_relaxed); }
  /// Records an observed pool queue depth; keeps the maximum.
  void note_queue_depth(std::size_t depth);

  /// WorkArena cache hit: a flow engine (or other keyed object) was reused
  /// instead of rebuilt.
  void add_arena_hit() {
    arena_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  /// WorkArena cache miss: the object had to be built.
  void add_arena_miss() {
    arena_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  /// FlowNetwork arena constructed from scratch (cache miss or fresh-build
  /// mode).
  void add_flow_build() {
    flow_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  /// FlowNetwork reset-and-reused for another max-flow call.
  void add_flow_reuse() {
    flow_reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A SubsetView materialized a concrete induced sub(hyper)graph (oracle
  /// or contract() boundary).
  void add_materialization() {
    materializations_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Records one thread's current arena footprint; keeps the maximum seen
  /// on any single thread (peak per-thread scratch allocation).
  void note_arena_bytes(std::size_t bytes);

  /// Accumulates wall time under a phase name (see PhaseTimer). Parallel
  /// sections add per-thread elapsed time, so a phase can exceed the
  /// process wall clock — read it as aggregate time spent in the phase.
  void add_phase_time(const std::string& phase, double seconds);

  std::uint64_t pieces() const {
    return pieces_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_flow_calls() const {
    return max_flow_calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasks() const {
    return tasks_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_queue_depth() const {
    return max_queue_depth_.load(std::memory_order_relaxed);
  }
  std::uint64_t arena_hits() const {
    return arena_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t arena_misses() const {
    return arena_misses_.load(std::memory_order_relaxed);
  }
  /// Arena hit rate in [0, 1]; 0 when no acquire happened.
  double arena_hit_rate() const;
  std::uint64_t flow_builds() const {
    return flow_builds_.load(std::memory_order_relaxed);
  }
  std::uint64_t flow_reuses() const {
    return flow_reuses_.load(std::memory_order_relaxed);
  }
  std::uint64_t materializations() const {
    return materializations_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_arena_bytes() const {
    return peak_arena_bytes_.load(std::memory_order_relaxed);
  }
  std::vector<std::pair<std::string, double>> phase_times() const;

  void reset();

  /// Multi-line human-readable summary (benches print this after a run).
  std::string report() const;

 private:
  std::atomic<std::uint64_t> pieces_{0};
  std::atomic<std::uint64_t> max_flow_calls_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> arena_hits_{0};
  std::atomic<std::uint64_t> arena_misses_{0};
  std::atomic<std::uint64_t> flow_builds_{0};
  std::atomic<std::uint64_t> flow_reuses_{0};
  std::atomic<std::uint64_t> materializations_{0};
  std::atomic<std::uint64_t> peak_arena_bytes_{0};
  mutable std::mutex phase_mutex_;
  std::vector<std::pair<std::string, double>> phases_;
};

/// RAII phase timer: adds the scope's wall time to
/// PerfCounters::global() under `phase`.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase)
      : phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    PerfCounters::global().add_phase_time(phase_, seconds);
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ht
