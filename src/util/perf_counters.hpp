// Process-wide performance counters for the parallel decomposition engine.
//
// The engines (wavefront peeling, Gomory–Hu batching, the flow oracles)
// and the thread pool feed a small set of counters; benches reset them
// around a measured section and print report(). Counters are intentionally
// lossy about attribution (they are process-wide, not per-call) — they
// exist to make "what did this run actually do" visible, not to replace a
// profiler.
//
// Since the observability refactor this class is a facade: every counter
// is a named metric in ht::obs::MetricsRegistry ("engine.pieces",
// "flow.builds", "pool.max_queue_depth", ...), so metrics snapshots and
// bench JSON see the same numbers as these accessors. reset() resets the
// *whole* registry (benches want a clean slate for every metric, including
// ones registered outside this facade, e.g. "flow.augmenting_paths").
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ht {

class PerfCounters {
 public:
  static PerfCounters& global();

  /// Work items (pieces/clusters/subproblems) processed by the engines.
  void add_pieces(std::uint64_t count) { pieces_.add(count); }
  /// Max-flow invocations (min_edge_cut / min_vertex_cut /
  /// min_hyperedge_cut), including speculative ones that were discarded.
  void add_max_flow_call() { max_flow_calls_.add(); }
  /// Tasks executed by the thread pool (workers and stealing waiters).
  void add_task() { tasks_.add(); }
  /// Records an observed pool queue depth; keeps the maximum.
  void note_queue_depth(std::size_t depth) {
    max_queue_depth_.update_max(static_cast<std::int64_t>(depth));
  }

  /// WorkArena cache hit: a flow engine (or other keyed object) was reused
  /// instead of rebuilt.
  void add_arena_hit() { arena_hits_.add(); }
  /// WorkArena cache miss: the object had to be built.
  void add_arena_miss() { arena_misses_.add(); }
  /// FlowNetwork arena constructed from scratch (cache miss or fresh-build
  /// mode).
  void add_flow_build() { flow_builds_.add(); }
  /// FlowNetwork reset-and-reused for another max-flow call.
  void add_flow_reuse() { flow_reuses_.add(); }
  /// A SubsetView materialized a concrete induced sub(hyper)graph (oracle
  /// or contract() boundary).
  void add_materialization() { materializations_.add(); }
  /// Records one thread's current arena footprint; keeps the maximum seen
  /// on any single thread (peak per-thread scratch allocation).
  void note_arena_bytes(std::size_t bytes) {
    peak_arena_bytes_.update_max(static_cast<std::int64_t>(bytes));
  }

  /// Accumulates wall time under a phase name (see PhaseTimer). Parallel
  /// sections add per-thread elapsed time, so a phase can exceed the
  /// process wall clock — read it as aggregate time spent in the phase.
  void add_phase_time(const std::string& phase, double seconds);

  std::uint64_t pieces() const { return pieces_.value(); }
  std::uint64_t max_flow_calls() const { return max_flow_calls_.value(); }
  std::uint64_t tasks() const { return tasks_.value(); }
  std::uint64_t max_queue_depth() const {
    return static_cast<std::uint64_t>(max_queue_depth_.value());
  }
  std::uint64_t arena_hits() const { return arena_hits_.value(); }
  std::uint64_t arena_misses() const { return arena_misses_.value(); }
  /// Arena hit rate in [0, 1]; 0 when no acquire happened.
  double arena_hit_rate() const;
  std::uint64_t flow_builds() const { return flow_builds_.value(); }
  std::uint64_t flow_reuses() const { return flow_reuses_.value(); }
  std::uint64_t materializations() const {
    return materializations_.value();
  }
  std::uint64_t peak_arena_bytes() const {
    return static_cast<std::uint64_t>(peak_arena_bytes_.value());
  }
  /// Phase totals sorted by phase name, so report output and bench JSON
  /// are stable regardless of which thread registered a phase first.
  std::vector<std::pair<std::string, double>> phase_times() const;

  /// Zeroes every metric in the registry and drops recorded phases.
  void reset();

  /// Multi-line human-readable summary (benches print this after a run).
  std::string report() const;

 private:
  PerfCounters();

  obs::Counter& pieces_;
  obs::Counter& max_flow_calls_;
  obs::Counter& tasks_;
  obs::Gauge& max_queue_depth_;
  obs::Counter& arena_hits_;
  obs::Counter& arena_misses_;
  obs::Counter& flow_builds_;
  obs::Counter& flow_reuses_;
  obs::Counter& materializations_;
  obs::Gauge& peak_arena_bytes_;
  mutable std::mutex phase_mutex_;
  std::vector<std::pair<std::string, double>> phases_;
};

/// RAII phase timer: adds the scope's wall time to
/// PerfCounters::global() under `phase`.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase)
      : phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    PerfCounters::global().add_phase_time(phase_, seconds);
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ht
