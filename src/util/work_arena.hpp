// Per-thread scratch arena for the zero-rebuild decomposition stack.
//
// Two services, both allocation-free on the steady path:
//
//  * Epoch-stamped remaps: SubsetView needs an old-id -> local-id map over
//    the parent universe at every recursion level. Allocating (or clearing)
//    an O(n) array per level turns the recursion quadratic in allocations;
//    the arena instead keeps one stamp array per thread and invalidates it
//    by bumping an epoch counter, so begin_remap() is O(1) amortized.
//
//  * A keyed object cache: flow engines (FlowNetwork) are expensive to
//    build and cheap to reset. acquire<T>() returns a cached instance for a
//    (kind, structure-uid) key, building it only on a miss. Hits/misses and
//    the peak number of bytes parked in arenas are reported through
//    PerfCounters, which is how the benches measure the reuse rate.
//
// The arena is strictly thread-local (WorkArena::local()); no
// synchronization, and cached objects are never shared across threads.
// Callers must not hold a reference returned by acquire() across a thread
// pool wait: a task stolen onto this stack may acquire() too and evict the
// entry under the interrupted frame.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"
#include "util/perf_counters.hpp"

namespace ht {

/// Process-unique id for a finalized structure (Graph / Hypergraph), used
/// as the WorkArena cache key. Never returns 0 — that value is reserved
/// for "not finalized / uncacheable".
std::uint64_t next_structure_uid();

class WorkArena {
 public:
  /// The calling thread's arena (constructed on first use).
  static WorkArena& local();

  // --- epoch-stamped remap -------------------------------------------------

  /// Borrowed handle into the arena's remap buffers. Valid until the next
  /// begin_remap() on the same thread (enforced by HT_DCHECK).
  class Remap {
   public:
    void set(std::int32_t old_id, std::int32_t local_id) {
      HT_DCHECK(live());
      arena_->remap_stamp_[static_cast<std::size_t>(old_id)] = epoch_;
      arena_->remap_value_[static_cast<std::size_t>(old_id)] = local_id;
    }
    /// -1 when old_id was not set in this epoch.
    std::int32_t get(std::int32_t old_id) const {
      HT_DCHECK(live());
      return arena_->remap_stamp_[static_cast<std::size_t>(old_id)] == epoch_
                 ? arena_->remap_value_[static_cast<std::size_t>(old_id)]
                 : -1;
    }
    bool live() const { return arena_ != nullptr && arena_->epoch_ == epoch_; }

   private:
    friend class WorkArena;
    WorkArena* arena_ = nullptr;
    std::uint32_t epoch_ = 0;
  };

  /// Starts a fresh remap over ids [0, universe). Invalidates the previous
  /// Remap handle of this thread; O(universe) only when the buffer grows
  /// or the 32-bit epoch wraps.
  Remap begin_remap(std::int32_t universe);

  // --- keyed object cache --------------------------------------------------

  /// Returns the cached T for (kind, uid), building it with `build` (a
  /// callable returning T) on a miss. T must expose memory_bytes(). A small
  /// LRU keeps at most kCacheCapacity entries; uid 0 is reserved for
  /// "uncacheable" and must not be passed here.
  template <typename T, typename Build>
  T& acquire(std::uint32_t kind, std::uint64_t uid, Build&& build) {
    HT_CHECK(uid != 0);
    for (auto& entry : cache_) {
      if (entry.kind == kind && entry.uid == uid) {
        entry.last_use = ++use_clock_;
        PerfCounters::global().add_arena_hit();
        return static_cast<Holder<T>*>(entry.object.get())->value;
      }
    }
    PerfCounters::global().add_arena_miss();
    if (cache_.size() >= kCacheCapacity) evict_oldest();
    auto owned = std::make_unique<Holder<T>>(build());
    T& ref = owned->value;
    cache_.push_back(Entry{kind, uid, ++use_clock_, ref.memory_bytes(),
                           std::move(owned)});
    note_bytes();
    return ref;
  }

  /// Drops every cached object (tests and benches use this to compare cold
  /// and warm runs). Remap buffers are kept.
  void clear_cache();

  /// Evicts least-recently-used entries until the cache fits in
  /// `budget_bytes` (0 = unlimited, no-op). The RunContext memory budget
  /// is applied here by the flow layer before each engine acquire.
  void enforce_budget(std::size_t budget_bytes);

  /// Bytes currently parked in this arena's object cache.
  std::size_t cached_bytes() const;

  static constexpr std::size_t kCacheCapacity = 4;

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <typename T>
  struct Holder final : HolderBase {
    explicit Holder(T&& v) : value(std::move(v)) {}
    T value;
  };
  struct Entry {
    std::uint32_t kind = 0;
    std::uint64_t uid = 0;
    std::uint64_t last_use = 0;
    std::size_t bytes = 0;
    std::unique_ptr<HolderBase> object;
  };

  void evict_oldest();
  void note_bytes();

  std::vector<std::uint32_t> remap_stamp_;
  std::vector<std::int32_t> remap_value_;
  std::uint32_t epoch_ = 0;
  std::vector<Entry> cache_;
  std::uint64_t use_clock_ = 0;
};

}  // namespace ht
