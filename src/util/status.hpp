// Status vocabulary for anytime/fallible entry points.
//
// The decomposition stack has *anytime* semantics: a run that hits its
// deadline, its cancel token, or its piece budget unwinds cleanly and still
// returns a usable best-so-far result (a valid partial decomposition tree,
// a feasible bisection). StatusOr therefore deliberately deviates from the
// absl convention: a non-ok StatusOr may still carry a value. ok() answers
// "did the run complete?"; has_value() answers "is there a usable result?".
//
//   auto r = solver.bisect(h, opts, ctx);
//   if (r.has_value()) use(r->solution);          // possibly degraded
//   if (!r.ok()) log(r.status());                 // why it stopped early
//
// Statuses also replace the remaining throw-based error reporting in the
// IO layer (see hypergraph/io.hpp): malformed input yields
// kInvalidArgument with a message instead of an exception.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/check.hpp"

// Marks a legacy entry point superseded by the ht/hypertree.hpp facade.
// Inert by default so internal code and existing tests build warning-free;
// the facade-lockdown build (examples, CI) defines HT_DEPRECATE_LEGACY and
// promotes deprecation warnings to errors.
#if defined(HT_DEPRECATE_LEGACY)
#define HT_LEGACY_API \
  [[deprecated("superseded by the ht::Solver facade in ht/hypertree.hpp")]]
#else
#define HT_LEGACY_API
#endif

namespace ht {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kCancelled = 1,          // the run's CancelToken fired
  kDeadlineExceeded = 2,   // RunContext::deadline passed
  kResourceExhausted = 3,  // piece/memory budget exhausted
  kInvalidArgument = 4,    // malformed input (IO, option validation)
  kInternal = 5,           // invariant violation surfaced as a status
};

const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Cancelled(std::string msg = {}) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = {}) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = {}) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = {}) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg = {}) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const char* code_name() const { return status_code_name(code_); }
  /// "OK" or "DEADLINE_EXCEEDED: <message>".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result-or-status with anytime semantics: unlike absl::StatusOr, a
/// degraded status (deadline, cancel, budget) may coexist with a usable
/// best-so-far value. A default-constructed StatusOr is kInternal/empty.
template <typename T>
class StatusOr {
 public:
  StatusOr() : status_(Status::Internal("empty StatusOr")) {}
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status)                          // NOLINT
      : status_(std::move(status)) {}
  StatusOr(Status status, T best_so_far)
      : status_(std::move(status)), value_(std::move(best_so_far)) {}

  /// True iff the run completed normally.
  bool ok() const { return status_.ok(); }
  /// True iff a (possibly degraded) result is available.
  bool has_value() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    HT_CHECK_MSG(value_.has_value(),
                 "StatusOr has no value: " << status_.to_string());
    return *value_;
  }
  const T& value() const {
    HT_CHECK_MSG(value_.has_value(),
                 "StatusOr has no value: " << status_.to_string());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ht
