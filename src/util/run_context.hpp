// RunContext: deadline / cancellation / budget propagation for a run.
//
// Every public entry point (via ht::Solver or the *_run builders) executes
// under a RunContext describing when the run must stop (absolute deadline,
// cancel token, logical piece budget, arena memory budget) and how it is
// configured (thread count, seed, trace sink). The context is bound to the
// calling thread with a RunScope; ThreadPool::enqueue re-binds it around
// every task the run spawns, exactly like trace-span context, so the flow
// engine's augmentation loops and the wavefront's fold boundaries can poll
// it from any depth without signature changes on every intermediate layer.
//
// Stop semantics are cooperative and *latched*: the first failed check
// records a terminal status in the shared RunState; every later stopped()
// poll is one relaxed atomic load. Builders unwind at piece boundaries and
// return valid best-so-far results tagged with that status — nothing
// throws, arenas and WorkArena caches stay consistent (an interrupted
// FlowNetwork query is healed by the next reset()).
//
// Determinism: wall-clock stops (deadline, cancel) end the run at a
// schedule-dependent point, but the result is still valid. The *piece
// budget* stops at a logical point instead — it is counted at the serial
// fold boundary of the wavefront (and the serial apply loop of Gomory–Hu),
// so a run stopped at piece N yields byte-identical partial trees for
// every thread count.
//
// HT_THREADS / HT_TRACE are parsed exactly once, here (env_default_threads
// / env_trace_path); RunContext::FromEnv() turns them into explicit fields
// instead of getenv calls buried in thread_pool.cpp / trace.cpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "util/status.hpp"

namespace ht {

class CancelToken;

/// Owner side of a cancellation flag. Copyable handles share the flag.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }
  CancelToken token() const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Observer side; empty tokens (default) never report cancellation.
class CancelToken {
 public:
  CancelToken() = default;

  bool can_be_cancelled() const { return flag_ != nullptr; }
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}
  std::shared_ptr<const std::atomic<bool>> flag_;
};

inline CancelToken CancelSource::token() const { return CancelToken(flag_); }

struct RunContext {
  using Clock = std::chrono::steady_clock;
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  /// Cooperative cancellation; empty = never cancelled.
  CancelToken cancel;
  /// Absolute wall-clock deadline; kNoDeadline = unbounded.
  Clock::time_point deadline = kNoDeadline;
  /// Logical piece budget: the run stops (kResourceExhausted) after this
  /// many pieces have been folded/applied at serial boundaries. 0 =
  /// unlimited. Deterministic: the same budget stops at the same logical
  /// piece for every thread count.
  std::uint64_t piece_budget = 0;
  /// Soft cap on bytes parked in a thread's WorkArena object cache; the
  /// cache is evicted before it would exceed this. 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Worker threads for the run; 0 = keep the current pool (whose default
  /// comes from env_default_threads()). Applied by ht::Solver.
  std::size_t threads = 0;
  /// Overrides the per-algorithm options seed when set (ht::Solver).
  std::optional<std::uint64_t> seed;
  /// Deadline/cancel poll cadence inside flow augmentation loops, in
  /// augmenting rounds (Dinic BFS phases; push-relabel discharge chunks).
  std::uint32_t flow_check_rounds = 4;
  /// Chrome-trace output path (from HT_TRACE in FromEnv()); empty = off.
  std::string trace_path;

  /// Defaults with HT_THREADS / HT_TRACE applied — the one place the
  /// environment is consulted (parsed once per process).
  static RunContext FromEnv();

  bool has_deadline() const { return deadline != kNoDeadline; }

  /// Builder-style helpers.
  RunContext& with_deadline_after(std::chrono::nanoseconds timeout) {
    deadline = Clock::now() + timeout;
    return *this;
  }
  RunContext& with_cancel(CancelToken token) {
    cancel = std::move(token);
    return *this;
  }
  RunContext& with_piece_budget(std::uint64_t pieces) {
    piece_budget = pieces;
    return *this;
  }
  RunContext& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  /// Explicit thread count for the run. An explicit setting always wins
  /// over HT_THREADS: FromEnv() seeds `threads` from the environment, and
  /// this overwrites it — callers surfacing a --threads flag apply it
  /// after FromEnv() so the precedence is flag > HT_THREADS > hardware.
  RunContext& with_threads(std::size_t count) {
    threads = count;
    return *this;
  }
};

/// Shared per-run execution state: the latched stop status and the logical
/// piece counter. One RunState exists per RunScope; tasks spawned by the
/// run observe the same instance through the thread pool's re-binding.
class RunState {
 public:
  explicit RunState(const RunContext& ctx) : ctx_(ctx) {}

  const RunContext& context() const { return ctx_; }

  /// One relaxed load; true once any check has latched a terminal status.
  bool stopped() const {
    return stop_code_.load(std::memory_order_relaxed) != 0;
  }

  /// The latched status (Ok while the run is live).
  Status status() const;

  /// Polls cancel token and deadline (one clock read); latches the first
  /// failure and returns the current status. Call at piece boundaries and
  /// every few augmenting rounds — not per inner-loop iteration.
  Status check();

  /// Serial-boundary accounting: counts one folded/applied piece and
  /// latches kResourceExhausted when the piece budget is reached. Returns
  /// the new count.
  std::uint64_t note_piece();

  std::uint64_t pieces() const {
    return pieces_.load(std::memory_order_relaxed);
  }

  /// Latches `code` if no status is latched yet (first one wins).
  void latch(StatusCode code);

 private:
  const RunContext ctx_;
  std::atomic<std::uint64_t> pieces_{0};
  std::atomic<int> stop_code_{0};  // 0 = live, else StatusCode
};

/// The run state bound to the calling thread, or nullptr outside any run.
RunState* current_run_state();
/// Shared handle for task-boundary propagation (ThreadPool::enqueue).
std::shared_ptr<RunState> current_run_state_shared();

/// True when a run is bound and already stopped — the cheapest poll, safe
/// anywhere on the hot path.
inline bool run_stopped() {
  RunState* state = current_run_state();
  return state != nullptr && state->stopped();
}

/// RAII: binds a fresh RunState for `ctx` to this thread. Entry points
/// construct one; everything they call (including pool tasks, via
/// re-binding) sees it through current_run_state(). Nests: the previous
/// binding is restored on destruction.
class RunScope {
 public:
  explicit RunScope(const RunContext& ctx);
  ~RunScope();
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  RunState& state() { return *state_; }
  /// The run's terminal status: latched stop reason, or Ok.
  Status status() const { return state_->status(); }

 private:
  std::shared_ptr<RunState> state_;
  std::shared_ptr<RunState> previous_;
};

/// RAII: re-binds an existing run's state on a (pool) thread for the
/// duration of one task. Used by ThreadPool::enqueue; not for user code.
class RunBinding {
 public:
  explicit RunBinding(std::shared_ptr<RunState> state);
  ~RunBinding();
  RunBinding(const RunBinding&) = delete;
  RunBinding& operator=(const RunBinding&) = delete;

 private:
  std::shared_ptr<RunState> previous_;
};

/// HT_THREADS (validated, capped, >= 1) or hardware_concurrency; parsed
/// once per process.
std::size_t env_default_threads();
/// HT_TRACE path ("" when unset); parsed once per process.
const std::string& env_trace_path();
/// Pure parser behind env_default_threads, exposed for tests: returns
/// `fallback` unless text is a clean positive integer (capped at 1024).
std::size_t parse_thread_count(const char* text, std::size_t fallback);

}  // namespace ht
