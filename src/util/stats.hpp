// Summary statistics for experiment reporting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ht {

/// Simple aggregate of a sample; all fields are defined for non-empty input.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary; input is copied because quantiles need a sort.
Summary summarize(std::vector<double> values);

/// Quantile with linear interpolation; q in [0,1]; input must be sorted.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Geometric mean (values must be positive).
double geometric_mean(const std::vector<double>& values);

/// Least-squares slope of log(y) against log(x) — the empirical growth
/// exponent "b" in y ~ x^b. Used to compare measured scaling against the
/// paper's asymptotic claims. x and y must be positive and equally sized.
double log_log_slope(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Human-readable one-line rendering, e.g. for bench output.
std::string to_string(const Summary& s);

}  // namespace ht
