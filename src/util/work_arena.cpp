#include "util/work_arena.hpp"

#include <algorithm>
#include <atomic>

namespace ht {

std::uint64_t next_structure_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

WorkArena& WorkArena::local() {
  thread_local WorkArena arena;
  return arena;
}

WorkArena::Remap WorkArena::begin_remap(std::int32_t universe) {
  HT_CHECK(universe >= 0);
  const auto n = static_cast<std::size_t>(universe);
  if (remap_stamp_.size() < n) {
    remap_stamp_.resize(n, 0);
    remap_value_.resize(n, -1);
    note_bytes();
  }
  if (++epoch_ == 0) {
    // 32-bit epoch wrapped: stale stamps could alias, so wipe once.
    std::fill(remap_stamp_.begin(), remap_stamp_.end(), 0);
    epoch_ = 1;
  }
  Remap remap;
  remap.arena_ = this;
  remap.epoch_ = epoch_;
  return remap;
}

void WorkArena::clear_cache() { cache_.clear(); }

void WorkArena::enforce_budget(std::size_t budget_bytes) {
  if (budget_bytes == 0) return;
  while (!cache_.empty() && cached_bytes() > budget_bytes) evict_oldest();
}

std::size_t WorkArena::cached_bytes() const {
  std::size_t total = 0;
  for (const auto& entry : cache_) total += entry.bytes;
  return total;
}

void WorkArena::evict_oldest() {
  auto oldest = cache_.begin();
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->last_use < oldest->last_use) oldest = it;
  }
  cache_.erase(oldest);
}

void WorkArena::note_bytes() {
  PerfCounters::global().note_arena_bytes(
      cached_bytes() +
      remap_stamp_.size() * sizeof(std::uint32_t) +
      remap_value_.size() * sizeof(std::int32_t));
}

}  // namespace ht
