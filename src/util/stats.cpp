#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace ht {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  HT_CHECK(!sorted.empty());
  HT_CHECK(0.0 <= q && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> values) {
  HT_CHECK(!values.empty());
  Summary s;
  s.count = values.size();
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  s.median = quantile_sorted(values, 0.5);
  s.p90 = quantile_sorted(values, 0.9);
  s.p99 = quantile_sorted(values, 0.99);
  return s;
}

double geometric_mean(const std::vector<double>& values) {
  HT_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    HT_CHECK(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double log_log_slope(const std::vector<double>& x,
                     const std::vector<double>& y) {
  HT_CHECK(x.size() == y.size());
  HT_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    HT_CHECK(x[i] > 0.0 && y[i] > 0.0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  HT_CHECK(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " mean=" << s.mean << " sd=" << s.stddev
     << " min=" << s.min << " med=" << s.median << " p90=" << s.p90
     << " max=" << s.max;
  return os.str();
}

}  // namespace ht
