// A fixed-size thread pool and a deterministic parallel_for.
//
// Benchmarks in this repository sweep many (instance, seed, pair) cells that
// are independent of each other; parallel_for distributes those cells over a
// pool. Determinism contract: results depend only on the cell index (each
// cell derives its own RNG stream from its index), never on the thread that
// executed it, so any thread count produces identical output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ht {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; tasks may not themselves block on the pool.
  void enqueue(std::function<void()> task);

  /// Block until every task enqueued so far has finished.
  void wait_idle();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n), distributing chunks over the global pool.
/// `body` must be safe to call concurrently for distinct i. Exceptions from
/// body are rethrown (first one wins) after all iterations finish.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace ht
