// A fixed-size thread pool with work-stealing waits, plus a deterministic
// parallel_for.
//
// The decomposition engines (vertex cut tree, sparsest-cut peeling,
// decomposition trees, Gomory–Hu batching) and the benchmark sweeps all
// distribute independent work items over one process-wide pool.
//
// Determinism contract: results depend only on the work-item index (each
// item derives its own RNG stream from its index — see util/wavefront.hpp),
// never on the thread that executed it, so any thread count produces
// byte-identical output.
//
// Nested submission is supported: a task running on a pool thread may
// itself call parallel_for / submit and wait for the children. Waiting
// never blocks the worker — the waiter steals queued tasks and runs them
// on its own stack until its children complete (help_until), so recursive
// splits cannot deadlock the pool.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ht {

class ThreadPool {
 public:
  /// threads == 0 means configured_threads() (HT_THREADS env, else
  /// hardware_concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a fire-and-forget task. Tasks may block on the pool (they
  /// should wait via help_until so the waiting thread keeps stealing
  /// work). An exception escaping the task is captured and rethrown from
  /// the next wait_idle() call (first one wins).
  void enqueue(std::function<void()> task);

  /// Enqueue a task and get its result (or exception) through a future.
  /// Waiting on the future from a pool thread risks idling a worker —
  /// prefer help_until([&] { return future_is_ready(fut); }).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Pops and runs one queued task on the calling thread. Returns false
  /// if the queue was empty. This is the stealing primitive behind
  /// help_until.
  bool try_run_one();

  /// Runs queued tasks on the calling thread until done() returns true.
  /// Safe from pool threads and external threads alike: progress is made
  /// either by stealing or by a short timed wait when the queue is empty
  /// (the awaited work is then in flight on other threads).
  template <typename Pred>
  void help_until(Pred&& done) {
    while (!done()) {
      if (try_run_one()) continue;
      std::unique_lock lock(mutex_);
      if (done()) return;
      if (!tasks_.empty()) continue;
      progress_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  /// Block until every task enqueued so far has finished. Must be called
  /// from outside the pool (a worker waiting for itself would deadlock);
  /// rethrows the first exception captured from enqueue()d tasks.
  void wait_idle();

  /// Process-wide shared pool (lazily constructed with
  /// configured_threads()).
  static ThreadPool& global();

  /// Tears down and recreates the global pool with `threads` workers
  /// (0 = configured_threads()). Must not race in-flight global-pool work;
  /// intended for tests and benches that compare thread counts.
  static void reset_global(std::size_t threads = 0);

  /// Thread count from the HT_THREADS environment variable (>= 1), else
  /// hardware_concurrency (at least 1).
  static std::size_t configured_threads();

 private:
  void worker_loop();
  void run_task(std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::condition_variable progress_;  // any task completed or was enqueued
  std::exception_ptr pending_error_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n), distributing chunks over the global pool;
/// the calling thread participates by stealing, so nested calls from pool
/// workers are safe. `body` must be safe to call concurrently for distinct
/// i. Exceptions from body are rethrown (first one wins) after all
/// iterations finish.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace ht
