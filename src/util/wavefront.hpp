// Deterministic parallel wavefront engine for recursive decompositions.
//
// The paper's constructions share one shape: a FIFO queue of independent
// pieces where processing a piece either finalizes it or splits it into
// child pieces (vertex cut tree peeling, Theorem 1 phase-1 sparsest-cut
// peeling, decomposition-tree clustering). parallel_wavefront runs that
// queue in BFS waves over the global thread pool.
//
// Determinism contract: every item is assigned a global index in enqueue
// (FIFO) order, and its RNG stream is derived from (seed, index) alone —
// never from the executing thread or the thread count. The expensive map()
// step runs concurrently; the fold() step runs serially in item order and
// is the only place allowed to touch shared output state or emit children.
// 1-thread and N-thread runs therefore produce byte-identical results.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/run_context.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace ht {

/// Seed for work item `index` of a run seeded with `seed`; depends only on
/// (seed, index).
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return splitmix64(state);
}

/// Independent RNG stream for work item `index` of a run seeded with
/// `seed`.
inline Rng derive_stream(std::uint64_t seed, std::uint64_t index) {
  return Rng(derive_seed(seed, index));
}

/// Processes `roots` and all items emitted by fold() until the queue
/// drains, or until the ambient RunContext (if any) stops the run.
///
///   map(const Item&, Rng&) -> Result      concurrent, pure per item
///   fold(Item&&, Result&&, emit)          serial, in item-index order;
///                                         emit(Item&&) enqueues a child
///   drain(Item&&)                         serial; called once for every
///                                         item still queued when the run
///                                         stops early, in a deterministic
///                                         order (unfolded items of the
///                                         current wave by index, then
///                                         already-emitted children in
///                                         emission order)
///
/// Result must be default-constructible and movable.
///
/// Returns Ok when the queue fully drained; otherwise the run's stop
/// status (kCancelled / kDeadlineExceeded / kResourceExhausted). Stop
/// checks happen only at serial piece boundaries: the deadline/cancel poll
/// runs before each fold and each wave, and RunState::note_piece() counts
/// each *folded* piece against the piece budget. Because both live in the
/// serial fold loop, a run stopped by its piece budget stops after the
/// same logical piece for every thread count — the foundation of the
/// byte-identical-partial-tree guarantee. Wall-clock stops (deadline,
/// cancel) are schedule-dependent but still land on a piece boundary, so
/// drained builders always see a consistent frontier.
///
/// Tracing: each item runs under a "wavefront.piece" span whose parent is
/// the span of the fold() call that emitted it (roots parent under the
/// caller's span). The recorded span tree therefore mirrors the logical
/// recursion tree — which piece split into which — independent of the
/// thread schedule. Spans opened inside map() nest under the item's piece
/// span via the thread-local context.
template <typename Item, typename Result, typename Map, typename Fold,
          typename Drain>
Status parallel_wavefront(std::vector<Item> roots, std::uint64_t seed,
                          Map&& map, Fold&& fold, Drain&& drain) {
  RunState* run = current_run_state();
  std::vector<Item> wave = std::move(roots);
  std::vector<Item> next;
  // parents[i] is the logical parent span of wave[i]; span_ids[i] is the
  // piece span recorded for it (0 when tracing is off).
  std::vector<obs::SpanId> parents(wave.size(), obs::current_span());
  std::vector<obs::SpanId> next_parents;
  std::vector<obs::SpanId> span_ids;
  std::uint64_t next_index = 0;
  std::uint64_t wave_number = 0;
  obs::SpanId fold_parent = 0;
  const auto emit = [&next, &next_parents, &fold_parent](Item&& child) {
    next.push_back(std::move(child));
    next_parents.push_back(fold_parent);
  };
  while (!wave.empty()) {
    const std::size_t count = wave.size();
    if (run != nullptr && !run->check().ok()) {
      for (Item& item : wave) drain(std::move(item));
      return run->status();
    }
    const std::uint64_t base = next_index;
    next_index += count;
    std::vector<Result> results(count);
    span_ids.assign(count, 0);
    parallel_for(count, [&](std::size_t i) {
      obs::ContextGuard context(parents[i]);
      obs::TraceSpan span("wavefront.piece");
      span.arg("index", base + i);
      span.arg("wave", wave_number);
      span_ids[i] = span.id();
      Rng rng = derive_stream(seed, base + i);
      results[i] = map(static_cast<const Item&>(wave[i]), rng);
    });
    PerfCounters::global().add_pieces(count);
    next.clear();
    next_parents.clear();
    std::size_t folded = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (run != nullptr && !run->check().ok()) break;
      fold_parent = span_ids[i];
      fold(std::move(wave[i]), std::move(results[i]), emit);
      ++folded;
      if (run != nullptr) run->note_piece();
    }
    if (folded < count) {
      // Stopped mid-wave: the unfolded tail first, then the children the
      // folded prefix emitted. Both orders are thread-count independent.
      for (std::size_t i = folded; i < count; ++i) drain(std::move(wave[i]));
      for (Item& child : next) drain(std::move(child));
      return run->status();
    }
    std::swap(wave, next);
    std::swap(parents, next_parents);
    ++wave_number;
  }
  // The queue fully drained: this wavefront's work is complete even if the
  // run latched a stop at the very end — partiality is per-builder.
  return Status::Ok();
}

/// Overload without a drain callback: items still queued at an early stop
/// are discarded. Use the drain overload when unprocessed pieces must
/// become leaves of a best-so-far result.
template <typename Item, typename Result, typename Map, typename Fold>
Status parallel_wavefront(std::vector<Item> roots, std::uint64_t seed,
                          Map&& map, Fold&& fold) {
  return parallel_wavefront<Item, Result>(std::move(roots), seed,
                                          std::forward<Map>(map),
                                          std::forward<Fold>(fold),
                                          [](Item&&) {});
}

}  // namespace ht
