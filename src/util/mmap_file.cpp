#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define HT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HT_HAVE_MMAP 0
#include <cstdio>
#endif

#include "obs/metrics.hpp"

namespace ht {

namespace {

obs::Gauge& mapped_bytes_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("mmap.bytes");
  return gauge;
}

std::string errno_text() { return std::strerror(errno); }

}  // namespace

std::int64_t mapped_bytes_now() { return mapped_bytes_gauge().value(); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    owns_mapping_ = std::exchange(other.owns_mapping_, false);
    fallback_ = std::move(other.fallback_);
  }
  return *this;
}

void MappedFile::unmap() {
  if (data_ != nullptr) {
    mapped_bytes_gauge().add(-static_cast<std::int64_t>(size_));
  }
#if HT_HAVE_MMAP
  if (owns_mapping_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  owns_mapping_ = false;
  fallback_.clear();
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
#if HT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   errno_text());
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    return Status::InvalidArgument("cannot stat " + path + ": " + err);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(path + " is not a regular file");
  }
  MappedFile out;
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      const std::string err = errno_text();
      ::close(fd);
      return Status::InvalidArgument("cannot mmap " + path + ": " + err);
    }
    out.data_ = static_cast<const unsigned char*>(mapping);
    out.size_ = size;
    out.owns_mapping_ = true;
  }
  ::close(fd);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   errno_text());
  }
  MappedFile out;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size > 0) {
    out.fallback_.resize(static_cast<std::size_t>(size));
    if (std::fread(out.fallback_.data(), 1, out.fallback_.size(), f) !=
        out.fallback_.size()) {
      std::fclose(f);
      return Status::InvalidArgument("short read on " + path);
    }
    out.data_ = out.fallback_.data();
    out.size_ = out.fallback_.size();
  }
  std::fclose(f);
#endif
  if (out.size_ > 0) {
    mapped_bytes_gauge().add(static_cast<std::int64_t>(out.size_));
  }
  return out;
}

}  // namespace ht
