// Aligned text/markdown/CSV table rendering for experiment output.
//
// Every bench binary prints its results through Table so that rows are
// greppable and EXPERIMENTS.md can quote them verbatim.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ht {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic values with %.4g, passes strings
  /// through.
  template <typename... Ts>
  void add(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(format_cell(cells)), ...);
    add_row(std::move(row));
  }

  void print(std::ostream& os) const;            // aligned plain text
  void print_markdown(std::ostream& os) const;   // GitHub table
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  static std::string format_cell(int v);
  static std::string format_cell(long v);
  static std::string format_cell(long long v);
  static std::string format_cell(unsigned long v);
  static std::string format_cell(unsigned long long v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ht
