// Read-only memory-mapped files for the snapshot serving layer.
//
// A MappedFile owns one read-only mapping of a whole file; Snapshot
// accessors hand out spans straight into it, so opening a multi-gigabyte
// snapshot costs page-table setup, not a copy, and the kernel pages data
// in on first touch. The mapping is released in the destructor; the
// "mmap.bytes" gauge tracks the total bytes currently mapped so tests can
// assert that hot-swapping snapshots never leaks a mapping.
//
// On platforms without mmap (anything non-POSIX) Open() falls back to
// reading the file into an owned heap buffer — same interface, no
// zero-copy, still correct.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace ht {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { unmap(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. kInvalidArgument when the file cannot be
  /// opened, stat'ed or mapped (message carries errno text). An empty file
  /// maps to data() == nullptr, size() == 0.
  static StatusOr<MappedFile> Open(const std::string& path);

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

 private:
  void unmap();

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool owns_mapping_ = false;        // true: munmap; false: fallback buffer
  std::vector<unsigned char> fallback_;
};

/// Total bytes currently mapped (or fallback-buffered) across all live
/// MappedFiles — reads the "mmap.bytes" gauge. The hot-swap tests assert
/// this returns to exactly the live snapshot's size after a swap storm.
std::int64_t mapped_bytes_now();

}  // namespace ht
