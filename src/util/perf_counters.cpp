#include "util/perf_counters.hpp"

#include <algorithm>
#include <sstream>

namespace ht {

namespace {

obs::MetricsRegistry& registry() { return obs::MetricsRegistry::global(); }

}  // namespace

PerfCounters::PerfCounters()
    : pieces_(registry().counter("engine.pieces")),
      max_flow_calls_(registry().counter("flow.max_flow_calls")),
      tasks_(registry().counter("pool.tasks")),
      max_queue_depth_(registry().gauge("pool.max_queue_depth")),
      arena_hits_(registry().counter("arena.hits")),
      arena_misses_(registry().counter("arena.misses")),
      flow_builds_(registry().counter("flow.builds")),
      flow_reuses_(registry().counter("flow.reuses")),
      materializations_(registry().counter("view.materializations")),
      peak_arena_bytes_(registry().gauge("arena.peak_bytes")) {}

PerfCounters& PerfCounters::global() {
  static PerfCounters counters;
  return counters;
}

double PerfCounters::arena_hit_rate() const {
  const std::uint64_t hits = arena_hits();
  const std::uint64_t total = hits + arena_misses();
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void PerfCounters::add_phase_time(const std::string& phase, double seconds) {
  std::scoped_lock lock(phase_mutex_);
  for (auto& [name, total] : phases_) {
    if (name == phase) {
      total += seconds;
      return;
    }
  }
  phases_.emplace_back(phase, seconds);
}

std::vector<std::pair<std::string, double>> PerfCounters::phase_times()
    const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::scoped_lock lock(phase_mutex_);
    out = phases_;
  }
  std::sort(out.begin(), out.end(),
            [](const auto& l, const auto& r) { return l.first < r.first; });
  return out;
}

void PerfCounters::reset() {
  registry().reset_all();
  std::scoped_lock lock(phase_mutex_);
  phases_.clear();
}

std::string PerfCounters::report() const {
  std::ostringstream os;
  os << "perf: pieces=" << pieces() << " max_flow_calls=" << max_flow_calls()
     << " pool_tasks=" << tasks() << " max_queue_depth=" << max_queue_depth()
     << "\n";
  os << "perf: flow_builds=" << flow_builds()
     << " flow_reuses=" << flow_reuses() << " arena_hits=" << arena_hits()
     << " arena_misses=" << arena_misses() << " arena_hit_rate="
     << arena_hit_rate() << "\n";
  os << "perf: materializations=" << materializations()
     << " peak_arena_bytes=" << peak_arena_bytes() << "\n";
  for (const auto& [name, seconds] : phase_times()) {
    os << "perf: phase " << name << " = " << seconds << " s (aggregate)\n";
  }
  return os.str();
}

}  // namespace ht
