#include "util/perf_counters.hpp"

#include <algorithm>
#include <sstream>

namespace ht {

PerfCounters& PerfCounters::global() {
  static PerfCounters counters;
  return counters;
}

void PerfCounters::note_queue_depth(std::size_t depth) {
  std::uint64_t current = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > current &&
         !max_queue_depth_.compare_exchange_weak(
             current, depth, std::memory_order_relaxed)) {
  }
}

void PerfCounters::add_phase_time(const std::string& phase, double seconds) {
  std::scoped_lock lock(phase_mutex_);
  for (auto& [name, total] : phases_) {
    if (name == phase) {
      total += seconds;
      return;
    }
  }
  phases_.emplace_back(phase, seconds);
}

std::vector<std::pair<std::string, double>> PerfCounters::phase_times()
    const {
  std::scoped_lock lock(phase_mutex_);
  return phases_;
}

void PerfCounters::reset() {
  pieces_.store(0, std::memory_order_relaxed);
  max_flow_calls_.store(0, std::memory_order_relaxed);
  tasks_.store(0, std::memory_order_relaxed);
  max_queue_depth_.store(0, std::memory_order_relaxed);
  std::scoped_lock lock(phase_mutex_);
  phases_.clear();
}

std::string PerfCounters::report() const {
  std::ostringstream os;
  os << "perf: pieces=" << pieces() << " max_flow_calls=" << max_flow_calls()
     << " pool_tasks=" << tasks() << " max_queue_depth=" << max_queue_depth()
     << "\n";
  for (const auto& [name, seconds] : phase_times()) {
    os << "perf: phase " << name << " = " << seconds << " s (aggregate)\n";
  }
  return os.str();
}

}  // namespace ht
