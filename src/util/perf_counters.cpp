#include "util/perf_counters.hpp"

#include <algorithm>
#include <sstream>

namespace ht {

PerfCounters& PerfCounters::global() {
  static PerfCounters counters;
  return counters;
}

void PerfCounters::note_queue_depth(std::size_t depth) {
  std::uint64_t current = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > current &&
         !max_queue_depth_.compare_exchange_weak(
             current, depth, std::memory_order_relaxed)) {
  }
}

void PerfCounters::note_arena_bytes(std::size_t bytes) {
  std::uint64_t current = peak_arena_bytes_.load(std::memory_order_relaxed);
  while (bytes > current &&
         !peak_arena_bytes_.compare_exchange_weak(
             current, bytes, std::memory_order_relaxed)) {
  }
}

double PerfCounters::arena_hit_rate() const {
  const std::uint64_t hits = arena_hits();
  const std::uint64_t total = hits + arena_misses();
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void PerfCounters::add_phase_time(const std::string& phase, double seconds) {
  std::scoped_lock lock(phase_mutex_);
  for (auto& [name, total] : phases_) {
    if (name == phase) {
      total += seconds;
      return;
    }
  }
  phases_.emplace_back(phase, seconds);
}

std::vector<std::pair<std::string, double>> PerfCounters::phase_times()
    const {
  std::scoped_lock lock(phase_mutex_);
  return phases_;
}

void PerfCounters::reset() {
  pieces_.store(0, std::memory_order_relaxed);
  max_flow_calls_.store(0, std::memory_order_relaxed);
  tasks_.store(0, std::memory_order_relaxed);
  max_queue_depth_.store(0, std::memory_order_relaxed);
  arena_hits_.store(0, std::memory_order_relaxed);
  arena_misses_.store(0, std::memory_order_relaxed);
  flow_builds_.store(0, std::memory_order_relaxed);
  flow_reuses_.store(0, std::memory_order_relaxed);
  materializations_.store(0, std::memory_order_relaxed);
  peak_arena_bytes_.store(0, std::memory_order_relaxed);
  std::scoped_lock lock(phase_mutex_);
  phases_.clear();
}

std::string PerfCounters::report() const {
  std::ostringstream os;
  os << "perf: pieces=" << pieces() << " max_flow_calls=" << max_flow_calls()
     << " pool_tasks=" << tasks() << " max_queue_depth=" << max_queue_depth()
     << "\n";
  os << "perf: flow_builds=" << flow_builds()
     << " flow_reuses=" << flow_reuses() << " arena_hits=" << arena_hits()
     << " arena_misses=" << arena_misses() << " arena_hit_rate="
     << arena_hit_rate() << "\n";
  os << "perf: materializations=" << materializations()
     << " peak_arena_bytes=" << peak_arena_bytes() << "\n";
  for (const auto& [name, seconds] : phase_times()) {
    os << "perf: phase " << name << " = " << seconds << " s (aggregate)\n";
  }
  return os.str();
}

}  // namespace ht
