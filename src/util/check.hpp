// Lightweight runtime-check macros used across the library.
//
// HT_CHECK is always on (it guards API contracts and algorithm invariants
// whose violation would produce silently wrong cut values); HT_DCHECK
// compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ht {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "HT_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ht

#define HT_CHECK(expr)                                        \
  do {                                                        \
    if (!(expr)) ::ht::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define HT_CHECK_MSG(expr, msg)                                \
  do {                                                         \
    if (!(expr)) {                                             \
      std::ostringstream ht_check_os_;                         \
      ht_check_os_ << msg;                                     \
      ::ht::check_failed(#expr, __FILE__, __LINE__, ht_check_os_.str()); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define HT_DCHECK(expr) ((void)0)
#else
#define HT_DCHECK(expr) HT_CHECK(expr)
#endif
