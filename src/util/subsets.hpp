// Subset and combination enumeration used by exact (brute-force) solvers
// and exhaustive property tests.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/check.hpp"

namespace ht {

/// Calls body(mask) for every mask in [0, 2^n). n must be <= 30.
inline void for_each_subset(int n,
                            const std::function<void(std::uint32_t)>& body) {
  HT_CHECK(0 <= n && n <= 30);
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) body(mask);
}

/// Calls body(indices) for every k-combination of [0, n), in lexicographic
/// order. `indices` is reused between calls.
inline void for_each_combination(
    int n, int k, const std::function<void(const std::vector<int>&)>& body) {
  HT_CHECK(0 <= k && k <= n);
  std::vector<int> idx(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) idx[static_cast<std::size_t>(i)] = i;
  if (k == 0) {
    body(idx);
    return;
  }
  for (;;) {
    body(idx);
    int i = k - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j)
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
  }
}

/// Converts a bitmask over [0, n) into the vector of set positions.
inline std::vector<std::int32_t> mask_to_vertices(std::uint32_t mask, int n) {
  std::vector<std::int32_t> out;
  for (int i = 0; i < n; ++i)
    if (mask & (1u << i)) out.push_back(i);
  return out;
}

/// Popcount of a 32-bit mask.
inline int popcount32(std::uint32_t mask) { return __builtin_popcount(mask); }

}  // namespace ht
