// 64-bit content hash for snapshot checksums (XXH64 algorithm).
//
// The snapshot format (src/serve/) stores one hash per section plus one
// over the header and one over the section table, so a flipped bit
// anywhere in a mapped file is caught at open() instead of surfacing as a
// garbage query answer. XXH64 is used because it is fast enough to verify
// a whole snapshot at load time (~10 GB/s), has no dependencies, and its
// constants are fixed by the algorithm — two builds of this library hash
// identical bytes to identical values, which the format's compatibility
// gate relies on.
//
// This is a hash for integrity checking, not cryptography: it detects
// corruption, it does not resist an adversary.
#pragma once

#include <cstdint>
#include <cstring>

namespace ht {

namespace detail_hash {

inline constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t read64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t read32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t round_step(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = rotl(acc, 31);
  return acc * kPrime1;
}

inline std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) {
  acc ^= round_step(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace detail_hash

/// XXH64 of `len` bytes at `data`. Deterministic across processes,
/// compilers and (little-endian) machines.
inline std::uint64_t hash64(const void* data, std::size_t len,
                            std::uint64_t seed = 0) {
  using namespace detail_hash;
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = round_step(v1, read64(p));
      v2 = round_step(v2, read64(p + 8));
      v3 = round_step(v3, read64(p + 16));
      v4 = round_step(v4, read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    h ^= round_step(0, read64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace ht
