#include "cuttree/tree.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "flow/min_cut.hpp"
#include "util/check.hpp"

namespace ht::cuttree {

NodeId Tree::add_node(NodeId parent, double node_weight, double edge_weight) {
  if (parent == -1) {
    HT_CHECK_MSG(parent_.empty(), "tree already has a root");
  } else {
    HT_CHECK(0 <= parent && parent < num_nodes());
  }
  parent_.push_back(parent);
  children_.emplace_back();
  node_weight_.push_back(node_weight);
  edge_weight_.push_back(edge_weight);
  const auto id = static_cast<NodeId>(parent_.size() - 1);
  if (parent != -1) children_[static_cast<std::size_t>(parent)].push_back(id);
  return id;
}

void Tree::set_vertex_node(VertexId vertex, NodeId node) {
  HT_CHECK(0 <= vertex &&
           vertex < static_cast<VertexId>(vertex_node_.size()));
  HT_CHECK(0 <= node && node < num_nodes());
  vertex_node_[static_cast<std::size_t>(vertex)] = node;
}

void Tree::lift_vertices(std::span<const VertexId> to_current) {
  std::vector<NodeId> lifted(to_current.size());
  for (std::size_t i = 0; i < to_current.size(); ++i) {
    const VertexId cur = to_current[i];
    HT_CHECK(0 <= cur &&
             cur < static_cast<VertexId>(vertex_node_.size()));
    lifted[i] = vertex_node_[static_cast<std::size_t>(cur)];
  }
  vertex_node_ = std::move(lifted);
}

StatusOr<Tree> Tree::from_arrays(std::span<const NodeId> parent,
                                 std::span<const double> node_weight,
                                 std::span<const double> edge_weight,
                                 std::span<const NodeId> vertex_node) {
  if (parent.empty()) {
    return Status::InvalidArgument("tree arrays empty");
  }
  if (parent.size() != node_weight.size() ||
      parent.size() != edge_weight.size()) {
    return Status::InvalidArgument("tree array lengths disagree");
  }
  const auto n = static_cast<NodeId>(parent.size());
  if (parent[0] != -1) {
    return Status::InvalidArgument("tree root (node 0) has a parent");
  }
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = parent[static_cast<std::size_t>(v)];
    if (p < 0 || p >= v) {
      return Status::InvalidArgument("tree parent out of order at node " +
                                     std::to_string(v));
    }
  }
  for (const NodeId node : vertex_node) {
    if (node < 0 || node >= n) {
      return Status::InvalidArgument("tree vertex embedding out of range");
    }
  }
  Tree out;
  for (NodeId v = 0; v < n; ++v) {
    const auto idx = static_cast<std::size_t>(v);
    out.add_node(parent[idx], node_weight[idx], edge_weight[idx]);
  }
  out.reserve_vertices(static_cast<VertexId>(vertex_node.size()));
  for (std::size_t i = 0; i < vertex_node.size(); ++i) {
    out.set_vertex_node(static_cast<VertexId>(i), vertex_node[i]);
  }
  return out;
}

ht::graph::Graph Tree::as_graph() const {
  ht::graph::Graph g(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    g.set_vertex_weight(v, node_weight(v));
    if (parent(v) != -1) g.add_edge(v, parent(v), edge_weight(v));
  }
  g.finalize();
  return g;
}

void Tree::validate() const {
  HT_CHECK(num_nodes() >= 1);
  NodeId roots = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (parent(v) == -1) {
      ++roots;
      HT_CHECK(v == root_);
    } else {
      HT_CHECK_MSG(parent(v) < v, "parents must precede children");
    }
  }
  HT_CHECK(roots == 1);
  for (std::size_t v = 0; v < vertex_node_.size(); ++v) {
    HT_CHECK_MSG(vertex_node_[v] != -1,
                 "vertex " << v << " not embedded in the tree");
  }
}

namespace {

/// Post-order traversal of the tree (children before parents). Because
/// add_node enforces parent < child, a reverse id scan is a post-order.
struct Terminals {
  std::vector<std::int8_t> mark;  // 0 none, 1 A, 2 B
};

Terminals mark_terminals(const Tree& t, const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b) {
  Terminals out;
  out.mark.assign(static_cast<std::size_t>(t.num_nodes()), 0);
  for (VertexId v : a) {
    const NodeId node = t.node_of_vertex(v);
    HT_CHECK(node != -1);
    out.mark[static_cast<std::size_t>(node)] = 1;
  }
  for (VertexId v : b) {
    const NodeId node = t.node_of_vertex(v);
    HT_CHECK(node != -1);
    HT_CHECK_MSG(out.mark[static_cast<std::size_t>(node)] != 1,
                 "A and B map to the same tree node");
    out.mark[static_cast<std::size_t>(node)] = 2;
  }
  return out;
}

constexpr double kUnreachable = 1e200;

}  // namespace

double tree_vertex_cut_flow(const Tree& t, const std::vector<VertexId>& a,
                            const std::vector<VertexId>& b) {
  const ht::graph::Graph g = t.as_graph();
  std::vector<ht::graph::VertexId> na, nb;
  for (VertexId v : a) na.push_back(t.node_of_vertex(v));
  for (VertexId v : b) nb.push_back(t.node_of_vertex(v));
  std::sort(na.begin(), na.end());
  na.erase(std::unique(na.begin(), na.end()), na.end());
  std::sort(nb.begin(), nb.end());
  nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  return ht::flow::min_vertex_cut(g, na, nb).value;
}

double tree_vertex_cut_dp(const Tree& t, const std::vector<VertexId>& a,
                          const std::vector<VertexId>& b) {
  // States: 0 = node in cut, 1 = exposed to A, 2 = exposed to B,
  // 3 = neutral (component touches neither terminal set).
  const Terminals terminals = mark_terminals(t, a, b);
  const NodeId n = t.num_nodes();
  std::vector<std::array<double, 4>> dp(static_cast<std::size_t>(n));
  for (NodeId v = n - 1; v >= 0; --v) {
    const auto idx = static_cast<std::size_t>(v);
    const std::int8_t own = terminals.mark[idx];
    auto& d = dp[idx];
    d[0] = t.node_weight(v);
    d[1] = own == 2 ? kUnreachable : 0.0;
    d[2] = own == 1 ? kUnreachable : 0.0;
    d[3] = own != 0 ? kUnreachable : 0.0;
    for (NodeId c : t.children(v)) {
      const auto& dc = dp[static_cast<std::size_t>(c)];
      const double child_any =
          std::min(std::min(dc[0], dc[1]), std::min(dc[2], dc[3]));
      d[0] += child_any;
      // Exposed-A parent: child may be cut, exposed-A or neutral.
      d[1] += std::min(dc[0], std::min(dc[1], dc[3]));
      d[2] += std::min(dc[0], std::min(dc[2], dc[3]));
      d[3] += std::min(dc[0], dc[3]);
      for (double& x : d) x = std::min(x, kUnreachable);
    }
  }
  const auto& r = dp[static_cast<std::size_t>(t.root())];
  return std::min(std::min(r[0], r[1]), std::min(r[2], r[3]));
}

double tree_edge_cut_dp(const Tree& t, const std::vector<VertexId>& a,
                        const std::vector<VertexId>& b) {
  // States: 0 = component of v touches A, 1 = touches B, 2 = neutral.
  const Terminals terminals = mark_terminals(t, a, b);
  const NodeId n = t.num_nodes();
  std::vector<std::array<double, 3>> dp(static_cast<std::size_t>(n));
  for (NodeId v = n - 1; v >= 0; --v) {
    const auto idx = static_cast<std::size_t>(v);
    const std::int8_t own = terminals.mark[idx];
    auto& d = dp[idx];
    d[0] = own == 2 ? kUnreachable : 0.0;
    d[1] = own == 1 ? kUnreachable : 0.0;
    d[2] = own != 0 ? kUnreachable : 0.0;
    for (NodeId c : t.children(v)) {
      const auto& dc = dp[static_cast<std::size_t>(c)];
      const double cut_child =
          t.edge_weight(c) + std::min(std::min(dc[0], dc[1]), dc[2]);
      d[0] += std::min(cut_child, std::min(dc[0], dc[2]));
      d[1] += std::min(cut_child, std::min(dc[1], dc[2]));
      d[2] += std::min(cut_child, dc[2]);
      for (double& x : d) x = std::min(x, kUnreachable);
    }
  }
  const auto& r = dp[static_cast<std::size_t>(t.root())];
  return std::min(std::min(r[0], r[1]), r[2]);
}

std::string tree_signature(const Tree& t) {
  // Doubles are rendered as raw bit patterns: equal signatures mean
  // bit-identical trees, not merely trees that print alike.
  const auto bits = [](double x) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(x));
    std::memcpy(&b, &x, sizeof(b));
    return b;
  };
  std::string out;
  char buf[64];
  const NodeId n = t.num_nodes();
  std::snprintf(buf, sizeof(buf), "nodes=%d;", n);
  out += buf;
  for (NodeId v = 0; v < n; ++v) {
    std::snprintf(buf, sizeof(buf), "%d:%d:%" PRIx64 ":%" PRIx64 ";", v,
                  t.parent(v), bits(t.node_weight(v)),
                  bits(t.edge_weight(v)));
    out += buf;
  }
  const VertexId vertices = t.num_embedded_vertices();
  std::snprintf(buf, sizeof(buf), "vertices=%d;", vertices);
  out += buf;
  for (VertexId v = 0; v < vertices; ++v) {
    std::snprintf(buf, sizeof(buf), "%d->%d;", v, t.node_of_vertex(v));
    out += buf;
  }
  return out;
}

}  // namespace ht::cuttree
