// Balanced partitioning DPs on *edge-weighted* trees.
//
// This is the machinery the paper's cited graph results run on top of a
// decomposition tree: solve the partitioning problem exactly ON THE TREE
// (a DP), then read the leaf assignment back as a partition of the graph;
// the tree's quality bounds the loss. We provide the two instantiations
// the paper's pipelines consume:
//   * balanced bisection (minimum tree-edge cut with exactly half the
//     designated leaves on each side) — the [17]-style graph bisection;
//   * unbalanced k-cut (exactly k designated leaves on side 1) — the
//     subroutine of Proposition 1.
#pragma once

#include <cstdint>
#include <vector>

#include "cuttree/tree.hpp"

namespace ht::cuttree {

struct TreeEdgePartitionResult {
  /// Side per counted vertex (position in `counted`), true = side 1.
  std::vector<bool> side;
  double tree_cut = 0.0;  // total weight of tree edges joining sides
  bool valid = false;
};

/// Minimum tree-edge cut with exactly `target_side1` of the counted
/// vertices on side 1. Exact DP, O(|T| * |counted|^2 / subtree pruning).
TreeEdgePartitionResult tree_edge_partition(
    const Tree& t, const std::vector<VertexId>& counted,
    std::int64_t target_side1);

/// Balanced bisection: target = |counted| / 2 (|counted| must be even).
TreeEdgePartitionResult balanced_tree_edge_bisection(
    const Tree& t, const std::vector<VertexId>& counted);

}  // namespace ht::cuttree
