#include "cuttree/vertex_cut_tree.hpp"

#include <algorithm>
#include <cmath>

#include "graph/subset_view.hpp"
#include "obs/trace.hpp"
#include "partition/min_ratio_cut.hpp"
#include "util/perf_counters.hpp"
#include "util/wavefront.hpp"

namespace ht::cuttree {

using ht::graph::Graph;

namespace {

/// Outcome of processing one piece: either the piece survives (no cut
/// below threshold) or it is split by a separator into components.
struct PieceOutcome {
  bool is_final = false;
  std::vector<VertexId> separator;                // original ids
  std::vector<std::vector<VertexId>> children;    // original ids
};

}  // namespace

VertexCutTreeResult build_vertex_cut_tree(const Graph& g,
                                          const VertexCutTreeOptions& options) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(n >= 1);
  const double total_weight = std::max(g.total_vertex_weight(), 1.0);

  double alpha = options.alpha;
  if (alpha <= 0.0)
    alpha = std::sqrt(std::max(1.0, std::log2(static_cast<double>(n) + 1.0)));
  // f(W) = 1 / sqrt(alpha * log n * W); the analysis needs alpha*f(W)=o(1),
  // so clamp the threshold below 1/2.
  const double log_n = std::max(1.0, std::log2(static_cast<double>(n) + 1.0));
  double threshold =
      options.threshold_override > 0.0
          ? options.threshold_override
          : std::min(0.45, alpha / std::sqrt(alpha * log_n * total_weight));

  VertexCutTreeResult out;
  out.threshold = threshold;
  ht::obs::TraceSpan trace("vertex_cut_tree");
  trace.arg("n", n);
  trace.arg("threshold", threshold);
  ht::PhaseTimer phase("vertex_cut_tree.peel");

  // Independent-piece peeling over the pool. Each piece's oracle draws
  // from a stream derived from the piece index, so any thread count
  // produces the same tree.
  std::vector<std::vector<VertexId>> roots(1);
  roots[0].resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    roots[0][static_cast<std::size_t>(v)] = v;

  std::vector<std::vector<VertexId>> final_pieces;
  std::vector<VertexId> separator;

  const auto map = [&](const std::vector<VertexId>& piece,
                       ht::Rng& rng) -> PieceOutcome {
    ht::obs::TraceSpan span("vct.piece_oracle");
    span.arg("piece_size", piece.size());
    PieceOutcome result;
    // A piece mapped after the run stopped skips its oracle: the fold
    // loop will drain it into a final piece anyway (Lemma 5 makes that a
    // valid stopping rule), so the work would be discarded.
    if (piece.size() <= 1 || ht::run_stopped()) {
      result.is_final = true;
      return result;
    }
    // View of the piece; the min-ratio oracle needs a concrete graph, so
    // this is a materialization boundary.
    const ht::graph::SubsetView view(g, piece);
    const auto sub = view.materialize();
    ht::partition::VertexSeparator sep;
    if (static_cast<std::int32_t>(piece.size()) <=
        options.exact_oracle_limit) {
      sep = ht::partition::min_ratio_vertex_cut_exact(sub.graph);
    } else {
      sep = ht::partition::min_ratio_vertex_cut(sub.graph, rng);
    }
    if (sep.valid) span.arg("sparsity", sep.sparsity);
    if (!sep.valid || sep.sparsity >= threshold) {
      span.arg("split", 0);
      result.is_final = true;
      return result;
    }
    span.arg("split", 1);
    span.arg("separator_size", sep.x.size());
    for (VertexId local : sep.x)
      result.separator.push_back(view.old_of(local));
    // Recurse on the connected components of piece \ X. (A and B are
    // unions of components by construction, but splitting to actual
    // components peels faster and never hurts domination.)
    std::vector<bool> removed(piece.size(), false);
    for (VertexId local : sep.x)
      removed[static_cast<std::size_t>(local)] = true;
    auto [comp, count] =
        ht::graph::connected_components_excluding(sub.graph, removed);
    result.children.resize(static_cast<std::size_t>(count));
    for (std::size_t local = 0; local < piece.size(); ++local) {
      const auto c = comp[local];
      if (c >= 0)
        result.children[static_cast<std::size_t>(c)].push_back(
            view.old_of(static_cast<VertexId>(local)));
    }
    return result;
  };
  const auto fold = [&](std::vector<VertexId>&& piece, PieceOutcome&& result,
                        const auto& emit) {
    if (result.is_final) {
      final_pieces.push_back(std::move(piece));
      return;
    }
    separator.insert(separator.end(), result.separator.begin(),
                     result.separator.end());
    for (auto& child : result.children)
      if (!child.empty()) emit(std::move(child));
  };
  // Early stop: every piece still queued becomes a final piece — the tree
  // below stays a valid (coarser) cut tree, just with fewer separators.
  const auto drain = [&](std::vector<VertexId>&& piece) {
    if (!piece.empty()) final_pieces.push_back(std::move(piece));
  };
  out.status = ht::parallel_wavefront<std::vector<VertexId>, PieceOutcome>(
      std::move(roots), options.seed, map, fold, drain);

  // Assemble the Figure 1 tree.
  double separator_weight = 0.0;
  for (VertexId s : separator) separator_weight += g.vertex_weight(s);

  Tree tree;
  tree.reserve_vertices(n);
  const NodeId root = tree.add_node(-1, separator_weight);
  for (VertexId s : separator) {
    const NodeId leaf = tree.add_node(root, g.vertex_weight(s));
    tree.set_vertex_node(s, leaf);
  }
  for (const auto& piece : final_pieces) {
    const NodeId anchor = tree.add_node(root, kInfiniteNodeWeight);
    for (VertexId v : piece) {
      const NodeId leaf = tree.add_node(anchor, g.vertex_weight(v));
      tree.set_vertex_node(v, leaf);
    }
  }
  tree.validate();

  trace.arg("final_pieces", final_pieces.size());
  trace.arg("separator_size", separator.size());
  trace.arg("separator_weight", separator_weight);

  out.tree = std::move(tree);
  out.separator_vertices = std::move(separator);
  out.separator_weight = separator_weight;
  out.num_pieces = static_cast<std::int32_t>(final_pieces.size());
  return out;
}

}  // namespace ht::cuttree
