// Edge cut tree candidates for hypergraphs (Theorem 6's adversaries).
//
// Theorem 6 proves that NO edge cut tree achieves quality o(n) for
// hypergraph cuts. We cannot quantify over all trees, so the bench
// evaluates the natural candidates a practitioner would try: star, path
// (in spectral order), balanced binary, random topologies, and the
// Gomory–Hu tree of the clique expansion. Each topology gets the
// domination-correct "induced" edge weights: the weight of tree edge
// (c, parent(c)) is delta_H(L_c) where L_c is the set of embedded vertices
// below c — the union bound makes any such tree dominating.
#pragma once

#include "cuttree/tree.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::cuttree {

/// Star: one auxiliary root, every vertex a leaf.
Tree star_topology(VertexId n);

/// Path over the vertices in the given order (auxiliary chain nodes with
/// vertices hanging off, so vertices are leaves as in the paper's setup).
Tree path_topology(const std::vector<VertexId>& order);

/// Balanced binary tree with the vertices (in the given order) as leaves.
Tree balanced_binary_topology(const std::vector<VertexId>& order);

/// Random recursive tree: vertex leaves attached under random internal
/// nodes.
Tree random_topology(VertexId n, ht::Rng& rng);

/// Gomory–Hu tree of the clique expansion of h, re-rooted and converted.
Tree gomory_hu_topology(const ht::hypergraph::Hypergraph& h);

/// Sets every parent-edge weight to delta_H(leaves below the edge); this
/// makes the tree a dominating edge cut tree of h (union bound).
void assign_induced_weights(const ht::hypergraph::Hypergraph& h, Tree& tree);

}  // namespace ht::cuttree
