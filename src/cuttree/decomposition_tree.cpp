#include "cuttree/decomposition_tree.hpp"

#include <algorithm>

#include "hypergraph/hypergraph.hpp"
#include "partition/sparsest_cut.hpp"

namespace ht::cuttree {

using ht::graph::Graph;

namespace {

/// Recursively emits the cluster below `parent_node` for `vertices`.
void decompose(const Graph& g, const std::vector<VertexId>& vertices,
               NodeId parent_node, Tree& tree,
               const DecompositionOptions& options, ht::Rng& rng) {
  if (static_cast<std::int32_t>(vertices.size()) <=
      std::max(options.leaf_cluster_size, 1)) {
    for (VertexId v : vertices) {
      std::vector<bool> single(static_cast<std::size_t>(g.num_vertices()),
                               false);
      single[static_cast<std::size_t>(v)] = true;
      const NodeId leaf =
          tree.add_node(parent_node, 1.0, g.cut_weight(single));
      tree.set_vertex_node(v, leaf);
    }
    return;
  }
  if (vertices.size() == 1) {
    std::vector<bool> single(static_cast<std::size_t>(g.num_vertices()),
                             false);
    single[static_cast<std::size_t>(vertices[0])] = true;
    const NodeId leaf = tree.add_node(parent_node, 1.0, g.cut_weight(single));
    tree.set_vertex_node(vertices[0], leaf);
    return;
  }

  // Split the cluster with the sparsest cut of its induced subgraph
  // (wrapped 2-uniform so the hypergraph oracle applies).
  const auto sub = ht::graph::induced_subgraph(g, vertices);
  ht::hypergraph::Hypergraph wrapper(sub.graph.num_vertices());
  for (const auto& e : sub.graph.edges())
    wrapper.add_edge({e.u, e.v}, e.weight);
  wrapper.finalize();

  std::vector<std::vector<VertexId>> parts;
  if (wrapper.num_edges() == 0) {
    // Disconnected dust: every vertex its own part.
    for (VertexId v : vertices) parts.push_back({v});
  } else {
    ht::partition::SparsestCutResult cut;
    if (static_cast<std::int32_t>(vertices.size()) <= options.exact_limit) {
      cut = ht::partition::sparsest_hyperedge_cut_exact(wrapper);
    } else {
      cut = ht::partition::sparsest_hyperedge_cut(wrapper, rng);
    }
    if (!cut.valid) {
      // No split available (complete-graph-like): make all vertices leaves.
      for (VertexId v : vertices) parts.push_back({v});
    } else {
      std::vector<bool> in_small(vertices.size(), false);
      for (VertexId local : cut.smaller_side)
        in_small[static_cast<std::size_t>(local)] = true;
      std::vector<VertexId> small, large;
      for (std::size_t i = 0; i < vertices.size(); ++i)
        (in_small[i] ? small : large)
            .push_back(sub.old_of_new[i]);
      parts.push_back(std::move(small));
      parts.push_back(std::move(large));
    }
  }

  for (auto& part : parts) {
    if (part.empty()) continue;
    if (part.size() == 1) {
      std::vector<bool> single(static_cast<std::size_t>(g.num_vertices()),
                               false);
      single[static_cast<std::size_t>(part[0])] = true;
      const NodeId leaf =
          tree.add_node(parent_node, 1.0, g.cut_weight(single));
      tree.set_vertex_node(part[0], leaf);
      continue;
    }
    std::vector<bool> side(static_cast<std::size_t>(g.num_vertices()), false);
    for (VertexId v : part) side[static_cast<std::size_t>(v)] = true;
    const NodeId cluster = tree.add_node(
        parent_node, kInfiniteNodeWeight, g.cut_weight(side));
    decompose(g, part, cluster, tree, options, rng);
  }
}

}  // namespace

Tree build_decomposition_tree(const Graph& g,
                              const DecompositionOptions& options) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(n >= 1);
  Tree tree;
  tree.reserve_vertices(n);
  const NodeId root = tree.add_node(-1, kInfiniteNodeWeight);
  std::vector<VertexId> all(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
  ht::Rng rng(options.seed);
  decompose(g, all, root, tree, options, rng);
  tree.validate();
  return tree;
}

}  // namespace ht::cuttree
