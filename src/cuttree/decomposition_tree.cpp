#include "cuttree/decomposition_tree.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "graph/subset_view.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/trace.hpp"
#include "partition/sparsest_cut.hpp"
#include "util/perf_counters.hpp"
#include "util/wavefront.hpp"

namespace ht::cuttree {

using ht::graph::Graph;

namespace {

/// One child slot of a cluster: either a single-vertex leaf or a nested
/// cluster (index into the cluster record table).
struct ChildEntry {
  bool is_leaf = false;
  VertexId vertex = -1;        // leaf only
  std::int32_t cluster = -1;   // cluster only
  double cut = 0.0;            // delta_G of the child (leaf or cluster)
};

struct ClusterRec {
  std::vector<VertexId> vertices;
  std::vector<ChildEntry> children;  // filled by fold, in split order
};

/// Parallel-computable outcome of splitting one cluster.
struct SplitOutcome {
  struct Part {
    std::vector<VertexId> vertices;
    double cut = 0.0;
  };
  // True when the whole cluster bottoms out into single-vertex leaves
  // (small cluster, edgeless cluster, or no valid cut).
  bool expand_leaves = false;
  std::vector<double> leaf_cuts;  // parallel to the cluster's vertices
  std::vector<Part> parts;        // otherwise: the sparsest-cut split
};

double singleton_cut(const Graph& g, VertexId v) {
  std::vector<bool> single(static_cast<std::size_t>(g.num_vertices()), false);
  single[static_cast<std::size_t>(v)] = true;
  return g.cut_weight(single);
}

double set_cut(const Graph& g, const std::vector<VertexId>& part) {
  std::vector<bool> side(static_cast<std::size_t>(g.num_vertices()), false);
  for (VertexId v : part) side[static_cast<std::size_t>(v)] = true;
  return g.cut_weight(side);
}

}  // namespace

DecompositionTreeResult build_decomposition_tree_run(
    const Graph& g, const DecompositionOptions& options) {
  HT_CHECK(g.finalized());
  const VertexId n = g.num_vertices();
  HT_CHECK(n >= 1);
  ht::obs::TraceSpan trace("decomposition_tree");
  trace.arg("n", n);
  ht::PhaseTimer phase("decomposition_tree.build");

  // Stage 1 — parallel: grow the laminar cluster family over the pool.
  // Splits (spectral sweep + cut evaluations) run concurrently per
  // cluster; each cluster's RNG stream derives from its wavefront index,
  // so the family is identical for every thread count.
  std::vector<ClusterRec> recs(1);
  recs[0].vertices.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    recs[0].vertices[static_cast<std::size_t>(v)] = v;

  const auto map = [&](const std::int32_t& rec_index,
                       ht::Rng& rng) -> SplitOutcome {
    // Safe concurrent read: fold only appends records between waves.
    const std::vector<VertexId>& vertices =
        recs[static_cast<std::size_t>(rec_index)].vertices;
    ht::obs::TraceSpan span("dtree.split_oracle");
    span.arg("cluster_size", vertices.size());
    SplitOutcome result;
    if (ht::run_stopped()) {
      // The run already latched a stop: the fold loop is guaranteed to
      // drain this cluster (the latch never clears), so its oracle work
      // would be discarded — return an empty placeholder instead.
      result.expand_leaves = true;
      return result;
    }
    if (static_cast<std::int32_t>(vertices.size()) <=
        std::max(options.leaf_cluster_size, 1)) {
      result.expand_leaves = true;
      result.leaf_cuts.reserve(vertices.size());
      for (VertexId v : vertices)
        result.leaf_cuts.push_back(singleton_cut(g, v));
      span.arg("expand_leaves", 1);
      return result;
    }

    // Split the cluster with the sparsest cut of its induced subgraph,
    // wrapped 2-uniform so the hypergraph oracle applies. The view lets
    // the wrapper be built straight from the parent's edge list — the
    // intermediate induced Graph copy is gone.
    const ht::graph::SubsetView view(g, vertices);
    ht::hypergraph::Hypergraph wrapper(view.size());
    for (const auto& e : g.edges()) {
      const VertexId nu = view.local_of(e.u);
      const VertexId nv = view.local_of(e.v);
      if (nu != -1 && nv != -1) wrapper.add_edge({nu, nv}, e.weight);
    }
    wrapper.finalize();

    std::vector<std::vector<VertexId>> parts;
    if (wrapper.num_edges() == 0) {
      // Disconnected dust: every vertex its own part.
      for (VertexId v : vertices) parts.push_back({v});
    } else {
      ht::partition::SparsestCutResult cut;
      if (static_cast<std::int32_t>(vertices.size()) <=
          options.exact_limit) {
        cut = ht::partition::sparsest_hyperedge_cut_exact(wrapper);
      } else {
        cut = ht::partition::sparsest_hyperedge_cut(wrapper, rng);
      }
      if (!cut.valid) {
        // No split available (complete-graph-like): all vertices leaves.
        for (VertexId v : vertices) parts.push_back({v});
      } else {
        std::vector<bool> in_small(vertices.size(), false);
        for (VertexId local : cut.smaller_side)
          in_small[static_cast<std::size_t>(local)] = true;
        std::vector<VertexId> small, large;
        for (std::size_t i = 0; i < vertices.size(); ++i)
          (in_small[i] ? small : large)
              .push_back(view.old_of(static_cast<VertexId>(i)));
        parts.push_back(std::move(small));
        parts.push_back(std::move(large));
      }
    }
    for (auto& part : parts) {
      if (part.empty()) continue;
      SplitOutcome::Part out_part;
      out_part.cut =
          part.size() == 1 ? singleton_cut(g, part[0]) : set_cut(g, part);
      out_part.vertices = std::move(part);
      result.parts.push_back(std::move(out_part));
    }
    span.arg("expand_leaves", 0);
    span.arg("parts", result.parts.size());
    return result;
  };
  const auto fold = [&](std::int32_t&& rec_index, SplitOutcome&& result,
                        const auto& emit) {
    // Build the child list locally: appending child records below may
    // reallocate `recs`, so no reference into it can be held across the
    // loop.
    std::vector<ChildEntry> children;
    if (result.expand_leaves) {
      const auto& vertices =
          recs[static_cast<std::size_t>(rec_index)].vertices;
      // A placeholder from a post-stop map can never reach this fold (the
      // wavefront drains once a stop latches), so the cut list is full.
      HT_DCHECK(result.leaf_cuts.size() == vertices.size());
      for (std::size_t i = 0; i < vertices.size(); ++i) {
        ChildEntry leaf;
        leaf.is_leaf = true;
        leaf.vertex = vertices[i];
        leaf.cut = result.leaf_cuts[i];
        children.push_back(leaf);
      }
    } else {
      for (auto& part : result.parts) {
        ChildEntry entry;
        entry.cut = part.cut;
        if (part.vertices.size() == 1) {
          entry.is_leaf = true;
          entry.vertex = part.vertices[0];
        } else {
          entry.cluster = static_cast<std::int32_t>(recs.size());
          ClusterRec child;
          child.vertices = std::move(part.vertices);
          recs.push_back(std::move(child));
          emit(std::int32_t(entry.cluster));
        }
        children.push_back(entry);
      }
    }
    recs[static_cast<std::size_t>(rec_index)].children = std::move(children);
  };
  // Early stop: a cluster still queued expands into a star of leaves with
  // exact singleton cuts — the union-bound domination argument is
  // unaffected, the tree is just coarser below that cluster.
  const auto drain = [&](std::int32_t&& rec_index) {
    ClusterRec& rec = recs[static_cast<std::size_t>(rec_index)];
    std::vector<ChildEntry> children;
    children.reserve(rec.vertices.size());
    for (VertexId v : rec.vertices) {
      ChildEntry leaf;
      leaf.is_leaf = true;
      leaf.vertex = v;
      leaf.cut = singleton_cut(g, v);
      children.push_back(leaf);
    }
    rec.children = std::move(children);
  };
  const ht::Status status =
      ht::parallel_wavefront<std::int32_t, SplitOutcome>(
          {0}, options.seed, map, fold, drain);

  // Stage 2 — serial: emit the Tree in DFS preorder over the cluster
  // family, matching the recursive construction's node numbering.
  Tree tree;
  tree.reserve_vertices(n);
  const NodeId root = tree.add_node(-1, kInfiniteNodeWeight);
  const std::function<void(std::int32_t, NodeId)> assemble =
      [&](std::int32_t rec_index, NodeId node) {
        for (const ChildEntry& child :
             recs[static_cast<std::size_t>(rec_index)].children) {
          if (child.is_leaf) {
            const NodeId leaf = tree.add_node(node, 1.0, child.cut);
            tree.set_vertex_node(child.vertex, leaf);
          } else {
            const NodeId cluster =
                tree.add_node(node, kInfiniteNodeWeight, child.cut);
            assemble(child.cluster, cluster);
          }
        }
      };
  assemble(0, root);
  tree.validate();
  DecompositionTreeResult out;
  out.tree = std::move(tree);
  out.status = status;
  return out;
}

Tree build_decomposition_tree(const Graph& g,
                              const DecompositionOptions& options) {
  return build_decomposition_tree_run(g, options).tree;
}

}  // namespace ht::cuttree
