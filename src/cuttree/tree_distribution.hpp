// Distributions over cut trees.
//
// The paper's lower bounds (Theorems 7/8, Lemma 8) hold for a SINGLE tree;
// it explicitly contrasts this with the stronger notion of a convex
// combination of trees used for graphs [17], while noting that for graphs
// even a single tree achieves polylog quality [9, 16]. This module builds
// a (uniform) distribution of Section 3.1 trees — varying seeds and
// stopping thresholds — and evaluates the distribution quality
//
//     max over pairs of  E_T[cut_T(A,B)] / cut_G(A,B),
//
// so bench_tree_distribution can measure how much averaging helps on
// graphs versus on the paper's hypergraph lower-bound instances (answer,
// per the paper: it cannot break the sqrt(n) barrier there).
#pragma once

#include <cstdint>
#include <vector>

#include "cuttree/quality.hpp"
#include "cuttree/tree.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace ht::cuttree {

struct TreeDistribution {
  std::vector<Tree> trees;  // uniform weights
};

/// Builds `count` Section 3.1 trees with varied seeds and thresholds.
TreeDistribution build_tree_distribution(const ht::graph::Graph& g,
                                         std::int32_t count,
                                         std::uint64_t seed = 0x5eedULL);

struct DistributionQualityReport {
  double single_best = 0.0;   // best single tree's max ratio
  double average_max = 0.0;   // max over pairs of the averaged ratio
  std::size_t pairs = 0;
};

/// Vertex-cut quality of the distribution against gamma_G.
DistributionQualityReport distribution_quality(
    const ht::graph::Graph& g, const TreeDistribution& distribution,
    const std::vector<VertexPair>& pairs);

/// Hypergraph-cut quality against delta_H (trees over the star expansion).
DistributionQualityReport distribution_quality_hypergraph(
    const ht::hypergraph::Hypergraph& h, const TreeDistribution& distribution,
    const std::vector<VertexPair>& pairs);

}  // namespace ht::cuttree
