#include "cuttree/quality.hpp"

#include <algorithm>
#include <cmath>

#include "flow/min_cut.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ht::cuttree {

namespace {

constexpr double kDominationTolerance = 1e-6;

QualityReport aggregate_ratios(const std::vector<double>& tree_values,
                               const std::vector<double>& graph_values) {
  HT_CHECK(tree_values.size() == graph_values.size());
  QualityReport out;
  double sum = 0.0;
  std::size_t used = 0;
  out.min_ratio = 1e300;
  for (std::size_t i = 0; i < tree_values.size(); ++i) {
    const double gv = graph_values[i];
    const double tv = tree_values[i];
    if (gv <= 0.0) {
      // Zero graph cut: domination only requires tv >= 0; ratio undefined.
      continue;
    }
    const double ratio = tv / gv;
    out.max_ratio = std::max(out.max_ratio, ratio);
    out.min_ratio = std::min(out.min_ratio, ratio);
    sum += ratio;
    ++used;
  }
  out.pairs = used;
  out.mean_ratio = used > 0 ? sum / static_cast<double>(used) : 0.0;
  out.dominating = out.min_ratio >= 1.0 - kDominationTolerance;
  if (used == 0) out.min_ratio = 0.0;
  return out;
}

}  // namespace

QualityReport vertex_cut_tree_quality(const ht::graph::Graph& g,
                                      const Tree& tree,
                                      const std::vector<VertexPair>& pairs) {
  std::vector<double> tv(pairs.size()), gv(pairs.size());
  ht::parallel_for(pairs.size(), [&](std::size_t i) {
    const auto& [a, b] = pairs[i];
    gv[i] = ht::flow::min_vertex_cut(g, a, b).value;
    tv[i] = tree_vertex_cut_flow(tree, a, b);
  });
  return aggregate_ratios(tv, gv);
}

QualityReport hypergraph_cut_tree_quality(
    const ht::hypergraph::Hypergraph& h, const Tree& tree,
    const std::vector<VertexPair>& pairs) {
  std::vector<double> tv(pairs.size()), gv(pairs.size());
  ht::parallel_for(pairs.size(), [&](std::size_t i) {
    const auto& [a, b] = pairs[i];
    gv[i] = ht::flow::min_hyperedge_cut(h, a, b).value;
    tv[i] = tree_vertex_cut_flow(tree, a, b);
  });
  return aggregate_ratios(tv, gv);
}

ScaledQualityReport edge_cut_tree_quality(
    const ht::hypergraph::Hypergraph& h, const Tree& tree,
    const std::vector<VertexPair>& pairs) {
  std::vector<double> tv(pairs.size()), gv(pairs.size());
  ht::parallel_for(pairs.size(), [&](std::size_t i) {
    const auto& [a, b] = pairs[i];
    gv[i] = ht::flow::min_hyperedge_cut(h, a, b).value;
    tv[i] = tree_edge_cut_dp(tree, a, b);
  });
  ScaledQualityReport out;
  double max_over = 0.0;   // delta_T / delta_H
  double max_under = 0.0;  // delta_H / delta_T
  std::size_t used = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (gv[i] <= 0.0 || tv[i] <= 0.0) continue;
    max_over = std::max(max_over, tv[i] / gv[i]);
    max_under = std::max(max_under, gv[i] / tv[i]);
    ++used;
  }
  out.pairs = used;
  // A tree that already dominates (max_under <= 1) needs no rescaling —
  // scaling below 1 would wrongly shrink the measured quality.
  out.scale = std::max(1.0, max_under);
  out.quality = max_over * out.scale;
  return out;
}

std::vector<VertexPair> all_singleton_pairs(VertexId n) {
  std::vector<VertexPair> out;
  out.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) /
              2);
  for (VertexId s = 0; s < n; ++s)
    for (VertexId t = s + 1; t < n; ++t)
      out.push_back({{s}, {t}});
  return out;
}

std::vector<VertexPair> random_set_pairs(VertexId n, std::size_t count,
                                         VertexId max_size, ht::Rng& rng) {
  HT_CHECK(n >= 2);
  max_size = std::min<VertexId>(max_size, n / 2);
  max_size = std::max<VertexId>(max_size, 1);
  std::vector<VertexPair> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto size_a = static_cast<VertexId>(
        1 + rng.next_below(static_cast<std::uint64_t>(max_size)));
    const auto size_b = static_cast<VertexId>(
        1 + rng.next_below(static_cast<std::uint64_t>(max_size)));
    auto both = rng.sample_without_replacement(n, size_a + size_b);
    rng.shuffle(both);
    VertexPair pair;
    pair.first.assign(both.begin(), both.begin() + size_a);
    pair.second.assign(both.begin() + size_a, both.end());
    out.push_back(std::move(pair));
  }
  return out;
}

}  // namespace ht::cuttree
