// Graphviz DOT export for graphs, hypergraphs and cut trees — debugging
// and documentation aids (`dot -Tsvg`).
#pragma once

#include <iosfwd>

namespace ht::graph {
class Graph;
}
namespace ht::hypergraph {
class Hypergraph;
}
namespace ht::cuttree {
class Tree;
}

namespace ht {

/// Undirected graph; edge labels show non-unit weights, node labels show
/// non-unit vertex weights.
void write_dot(const ht::graph::Graph& g, std::ostream& os);

/// Hypergraph in its bipartite (star-expansion) drawing: round vertex
/// nodes, square hyperedge nodes.
void write_dot(const ht::hypergraph::Hypergraph& h, std::ostream& os);

/// Cut tree: node weights and parent-edge weights as labels; embedded
/// vertices annotated on their nodes.
void write_dot(const ht::cuttree::Tree& t, std::ostream& os);

}  // namespace ht
