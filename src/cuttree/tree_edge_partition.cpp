#include "cuttree/tree_edge_partition.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"
#include "util/run_context.hpp"

namespace ht::cuttree {

namespace {

constexpr double kUnreachable = 1e200;

struct Solver {
  const Tree& t;
  std::vector<std::int32_t> cnt;   // counted vertices at node
  std::vector<std::int32_t> sub;   // counted vertices in subtree
  // dp[node][side][j]: min edge cut inside the subtree with the node's own
  // component on `side` and j counted vertices on side 1.
  std::vector<std::array<std::vector<double>, 2>> dp;

  explicit Solver(const Tree& tree) : t(tree) {}

  /// False when the ambient RunContext stopped the run mid-DP (per-query
  /// deadlines on the serving path); the caller reports invalid then.
  bool solve() {
    const NodeId n = t.num_nodes();
    dp.resize(static_cast<std::size_t>(n));
    sub.assign(static_cast<std::size_t>(n), 0);
    for (NodeId v = n - 1; v >= 0; --v) {
      if ((v & 255) == 0 && ht::run_stopped()) return false;
      const auto idx = static_cast<std::size_t>(v);
      sub[idx] = cnt[idx];
      for (NodeId c : t.children(v))
        sub[idx] += sub[static_cast<std::size_t>(c)];
      auto& d = dp[idx];
      const auto own = cnt[idx];
      // Base: the node's own counted vertices follow the node's side.
      for (int s = 0; s < 2; ++s) {
        d[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(own) + 1, kUnreachable);
        d[static_cast<std::size_t>(s)]
         [static_cast<std::size_t>(s == 1 ? own : 0)] = 0.0;
      }
      for (NodeId c : t.children(v)) {
        const auto& dc = dp[static_cast<std::size_t>(c)];
        const double ew = t.edge_weight(c);
        const auto csub = sub[static_cast<std::size_t>(c)];
        for (int s = 0; s < 2; ++s) {
          auto& cur = d[static_cast<std::size_t>(s)];
          std::vector<double> next(cur.size() + static_cast<std::size_t>(csub),
                                   kUnreachable);
          for (std::size_t j = 0; j < cur.size(); ++j) {
            if (cur[j] >= kUnreachable) continue;
            for (std::int32_t jc = 0; jc <= csub; ++jc) {
              const auto cidx = static_cast<std::size_t>(jc);
              const double same = dc[static_cast<std::size_t>(s)][cidx];
              const double flip =
                  dc[static_cast<std::size_t>(1 - s)][cidx] + ew;
              const double best = std::min(same, flip);
              if (best >= kUnreachable) continue;
              auto& slot = next[j + cidx];
              slot = std::min(slot, cur[j] + best);
            }
          }
          cur = std::move(next);
        }
      }
    }
    return true;
  }

  void reconstruct(NodeId v, int side, std::int64_t j,
                   std::vector<std::int8_t>& node_side) {
    node_side[static_cast<std::size_t>(v)] = static_cast<std::int8_t>(side);
    // Re-run the sequential merge to backtrack child allocations/sides.
    const auto idx = static_cast<std::size_t>(v);
    const auto own = cnt[idx];
    std::vector<std::vector<double>> steps;
    {
      std::vector<double> base(static_cast<std::size_t>(own) + 1,
                               kUnreachable);
      base[static_cast<std::size_t>(side == 1 ? own : 0)] = 0.0;
      steps.push_back(std::move(base));
    }
    const auto& kids = t.children(v);
    for (NodeId c : kids) {
      const auto& dc = dp[static_cast<std::size_t>(c)];
      const double ew = t.edge_weight(c);
      const auto csub = sub[static_cast<std::size_t>(c)];
      const auto& cur = steps.back();
      std::vector<double> next(cur.size() + static_cast<std::size_t>(csub),
                               kUnreachable);
      for (std::size_t jj = 0; jj < cur.size(); ++jj) {
        if (cur[jj] >= kUnreachable) continue;
        for (std::int32_t jc = 0; jc <= csub; ++jc) {
          const auto cidx = static_cast<std::size_t>(jc);
          const double best =
              std::min(dc[static_cast<std::size_t>(side)][cidx],
                       dc[static_cast<std::size_t>(1 - side)][cidx] + ew);
          if (best >= kUnreachable) continue;
          auto& slot = next[jj + cidx];
          slot = std::min(slot, cur[jj] + best);
        }
      }
      steps.push_back(std::move(next));
    }
    std::int64_t remaining = j;
    for (std::size_t i = kids.size(); i > 0; --i) {
      const NodeId c = kids[i - 1];
      const auto& dc = dp[static_cast<std::size_t>(c)];
      const double ew = t.edge_weight(c);
      const auto csub = sub[static_cast<std::size_t>(c)];
      const double target = steps[i][static_cast<std::size_t>(remaining)];
      bool found = false;
      for (std::int32_t jc = 0; jc <= csub && !found; ++jc) {
        if (jc > remaining) break;
        const auto prev = static_cast<std::size_t>(remaining - jc);
        if (prev >= steps[i - 1].size() ||
            steps[i - 1][prev] >= kUnreachable)
          continue;
        const auto cidx = static_cast<std::size_t>(jc);
        const double same = dc[static_cast<std::size_t>(side)][cidx];
        const double flip = dc[static_cast<std::size_t>(1 - side)][cidx] + ew;
        for (int child_side_choice = 0; child_side_choice < 2;
             ++child_side_choice) {
          const int cs = child_side_choice == 0 ? side : 1 - side;
          const double cost = child_side_choice == 0 ? same : flip;
          if (cost >= kUnreachable) continue;
          if (std::abs(steps[i - 1][prev] + cost - target) <=
              1e-9 * (1.0 + std::abs(target))) {
            reconstruct(c, cs, jc, node_side);
            remaining -= jc;
            found = true;
            break;
          }
        }
      }
      HT_CHECK_MSG(found, "tree edge partition backtrack failed");
    }
    HT_CHECK(remaining == (side == 1 ? own : 0));
  }
};

}  // namespace

TreeEdgePartitionResult tree_edge_partition(
    const Tree& t, const std::vector<VertexId>& counted,
    std::int64_t target_side1) {
  TreeEdgePartitionResult out;
  HT_CHECK(!counted.empty());
  HT_CHECK(0 <= target_side1 &&
           target_side1 <= static_cast<std::int64_t>(counted.size()));
  Solver solver(t);
  solver.cnt.assign(static_cast<std::size_t>(t.num_nodes()), 0);
  for (VertexId v : counted) {
    const NodeId node = t.node_of_vertex(v);
    HT_CHECK(node != -1);
    ++solver.cnt[static_cast<std::size_t>(node)];
  }
  if (!solver.solve()) return out;
  const auto& root_dp = solver.dp[static_cast<std::size_t>(t.root())];
  int best_side = -1;
  double best = kUnreachable;
  for (int s = 0; s < 2; ++s) {
    const double v =
        root_dp[static_cast<std::size_t>(s)]
               [static_cast<std::size_t>(target_side1)];
    if (v < best) {
      best = v;
      best_side = s;
    }
  }
  if (best_side < 0 || best >= kUnreachable) return out;

  std::vector<std::int8_t> node_side(
      static_cast<std::size_t>(t.num_nodes()), 0);
  solver.reconstruct(t.root(), best_side, target_side1, node_side);
  out.side.assign(counted.size(), false);
  for (std::size_t i = 0; i < counted.size(); ++i) {
    const NodeId node = t.node_of_vertex(counted[i]);
    out.side[i] = node_side[static_cast<std::size_t>(node)] == 1;
  }
  std::int64_t on_one = 0;
  for (bool b : out.side) on_one += b ? 1 : 0;
  HT_CHECK_MSG(on_one == target_side1, "tree edge partition imbalance");
  out.tree_cut = best;
  out.valid = true;
  return out;
}

TreeEdgePartitionResult balanced_tree_edge_bisection(
    const Tree& t, const std::vector<VertexId>& counted) {
  HT_CHECK(counted.size() % 2 == 0);
  return tree_edge_partition(t, counted,
                             static_cast<std::int64_t>(counted.size() / 2));
}

}  // namespace ht::cuttree
