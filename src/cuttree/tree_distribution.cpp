#include "cuttree/tree_distribution.hpp"

#include <algorithm>

#include "flow/min_cut.hpp"
#include "util/thread_pool.hpp"

namespace ht::cuttree {

TreeDistribution build_tree_distribution(const ht::graph::Graph& g,
                                         std::int32_t count,
                                         std::uint64_t seed) {
  HT_CHECK(count >= 1);
  TreeDistribution out;
  out.trees.reserve(static_cast<std::size_t>(count));
  // Vary both the seed (randomized oracle decisions) and the stopping
  // threshold (coarse vs fine decompositions) so the trees err in
  // different directions.
  const double thresholds[] = {0.0, 0.05, 0.12, 0.25, 0.4};
  for (std::int32_t i = 0; i < count; ++i) {
    VertexCutTreeOptions options;
    options.seed = seed + static_cast<std::uint64_t>(i) * 7919;
    const double t = thresholds[static_cast<std::size_t>(i) %
                                (sizeof thresholds / sizeof thresholds[0])];
    if (t > 0.0) options.threshold_override = t;
    out.trees.push_back(build_vertex_cut_tree(g, options).tree);
  }
  return out;
}

namespace {

template <typename GraphCut>
DistributionQualityReport evaluate(const TreeDistribution& distribution,
                                   const std::vector<VertexPair>& pairs,
                                   GraphCut&& graph_cut) {
  DistributionQualityReport out;
  const std::size_t trees = distribution.trees.size();
  HT_CHECK(trees >= 1);
  std::vector<double> base(pairs.size());
  std::vector<std::vector<double>> tree_values(
      trees, std::vector<double>(pairs.size()));
  ht::parallel_for(pairs.size(), [&](std::size_t i) {
    base[i] = graph_cut(pairs[i]);
    for (std::size_t t = 0; t < trees; ++t) {
      tree_values[t][i] = tree_vertex_cut_flow(
          distribution.trees[t], pairs[i].first, pairs[i].second);
    }
  });
  std::size_t used = 0;
  double best_single = 1e300;
  for (std::size_t t = 0; t < trees; ++t) {
    double worst = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (base[i] <= 0.0) continue;
      worst = std::max(worst, tree_values[t][i] / base[i]);
    }
    best_single = std::min(best_single, worst);
  }
  double avg_worst = 0.0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (base[i] <= 0.0) continue;
    double sum = 0.0;
    for (std::size_t t = 0; t < trees; ++t) sum += tree_values[t][i];
    avg_worst = std::max(avg_worst,
                         sum / static_cast<double>(trees) / base[i]);
    ++used;
  }
  out.single_best = best_single;
  out.average_max = avg_worst;
  out.pairs = used;
  return out;
}

}  // namespace

DistributionQualityReport distribution_quality(
    const ht::graph::Graph& g, const TreeDistribution& distribution,
    const std::vector<VertexPair>& pairs) {
  return evaluate(distribution, pairs, [&](const VertexPair& p) {
    return ht::flow::min_vertex_cut(g, p.first, p.second).value;
  });
}

DistributionQualityReport distribution_quality_hypergraph(
    const ht::hypergraph::Hypergraph& h, const TreeDistribution& distribution,
    const std::vector<VertexPair>& pairs) {
  return evaluate(distribution, pairs, [&](const VertexPair& p) {
    return ht::flow::min_hyperedge_cut(h, p.first, p.second).value;
  });
}

}  // namespace ht::cuttree
