#include "cuttree/dot.hpp"

#include <ostream>

#include "cuttree/tree.hpp"
#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace ht {

void write_dot(const ht::graph::Graph& g, std::ostream& os) {
  os << "graph G {\n  node [shape=circle];\n";
  for (ht::graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    os << "  v" << v;
    if (g.vertex_weight(v) != 1.0)
      os << " [label=\"" << v << "\\nw=" << g.vertex_weight(v) << "\"]";
    os << ";\n";
  }
  for (const auto& e : g.edges()) {
    os << "  v" << e.u << " -- v" << e.v;
    if (e.weight != 1.0) os << " [label=\"" << e.weight << "\"]";
    os << ";\n";
  }
  os << "}\n";
}

void write_dot(const ht::hypergraph::Hypergraph& h, std::ostream& os) {
  os << "graph H {\n  node [shape=circle];\n";
  for (ht::hypergraph::VertexId v = 0; v < h.num_vertices(); ++v)
    os << "  v" << v << ";\n";
  for (ht::hypergraph::EdgeId e = 0; e < h.num_edges(); ++e) {
    os << "  e" << e << " [shape=box";
    if (h.edge_weight(e) != 1.0)
      os << ", label=\"e" << e << "\\nw=" << h.edge_weight(e) << "\"";
    os << "];\n";
    for (ht::hypergraph::VertexId v : h.pins(e))
      os << "  e" << e << " -- v" << v << ";\n";
  }
  os << "}\n";
}

void write_dot(const ht::cuttree::Tree& t, std::ostream& os) {
  os << "digraph T {\n  node [shape=ellipse];\n";
  // Reverse map: node -> embedded vertices.
  std::vector<std::vector<ht::cuttree::VertexId>> embedded(
      static_cast<std::size_t>(t.num_nodes()));
  for (ht::cuttree::VertexId v = 0; v < t.num_embedded_vertices(); ++v) {
    const auto node = t.node_of_vertex(v);
    if (node != -1) embedded[static_cast<std::size_t>(node)].push_back(v);
  }
  for (ht::cuttree::NodeId x = 0; x < t.num_nodes(); ++x) {
    os << "  n" << x << " [label=\"";
    if (t.node_weight(x) >= ht::cuttree::kInfiniteNodeWeight / 2) {
      os << "inf";
    } else {
      os << "w=" << t.node_weight(x);
    }
    for (auto v : embedded[static_cast<std::size_t>(x)]) os << "\\nv" << v;
    os << "\"];\n";
    if (t.parent(x) != -1) {
      os << "  n" << t.parent(x) << " -> n" << x;
      if (t.edge_weight(x) != 0.0)
        os << " [label=\"" << t.edge_weight(x) << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace ht
