#include "cuttree/tree_bisection.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"
#include "util/run_context.hpp"

namespace ht::cuttree {

namespace {

constexpr double kUnreachable = 1e200;
enum State : int { kCut = 0, kSide0 = 1, kSide1 = 2 };

struct NodeDp {
  // dp[state][j]: min cut weight in the subtree with j counted vertices on
  // side 1; j ranges over [0, subtree_count].
  std::array<std::vector<double>, 3> dp;
};

struct Solver {
  const Tree& t;
  std::vector<std::int32_t> cnt;  // counted vertices embedded at node
  std::vector<std::int32_t> sub;  // counted vertices in subtree
  std::vector<NodeDp> table;
  // Assignment output: per node, how many of its own counted vertices go
  // to side 1.
  std::vector<std::int32_t> own_to_side1;

  explicit Solver(const Tree& tree) : t(tree) {}

  /// Base DP for the node itself (before children merge).
  std::array<std::vector<double>, 3> base(NodeId v) const {
    const auto c = cnt[static_cast<std::size_t>(v)];
    std::array<std::vector<double>, 3> out;
    for (auto& arr : out)
      arr.assign(static_cast<std::size_t>(c) + 1, kUnreachable);
    for (std::int32_t j = 0; j <= c; ++j)
      out[kCut][static_cast<std::size_t>(j)] = t.node_weight(v);
    out[kSide0][0] = 0.0;
    out[kSide1][static_cast<std::size_t>(c)] = 0.0;
    return out;
  }

  /// Best child cost at count j, given the parent's state.
  double child_option(NodeId c, int parent_state, std::int32_t j) const {
    const auto& d = table[static_cast<std::size_t>(c)].dp;
    const auto idx = static_cast<std::size_t>(j);
    double best = d[kCut][idx];
    if (parent_state == kCut) {
      best = std::min(best, std::min(d[kSide0][idx], d[kSide1][idx]));
    } else {
      best = std::min(best, d[static_cast<std::size_t>(parent_state)][idx]);
    }
    return best;
  }

  /// False when the ambient RunContext stopped the run mid-DP (serving
  /// queries carry per-query deadlines); the caller then reports an
  /// invalid result tagged with the run's stop status.
  bool solve() {
    const NodeId n = t.num_nodes();
    table.resize(static_cast<std::size_t>(n));
    sub.assign(static_cast<std::size_t>(n), 0);
    own_to_side1.assign(static_cast<std::size_t>(n), 0);
    for (NodeId v = n - 1; v >= 0; --v) {
      if ((v & 255) == 0 && ht::run_stopped()) return false;
      const auto idx = static_cast<std::size_t>(v);
      sub[idx] = cnt[idx];
      for (NodeId c : t.children(v)) sub[idx] += sub[static_cast<std::size_t>(c)];
      auto dp = base(v);
      for (int s = 0; s < 3; ++s) {
        std::vector<double> cur = dp[static_cast<std::size_t>(s)];
        for (NodeId c : t.children(v)) {
          const auto csub = sub[static_cast<std::size_t>(c)];
          std::vector<double> next(cur.size() + static_cast<std::size_t>(csub),
                                   kUnreachable);
          for (std::size_t j = 0; j < cur.size(); ++j) {
            if (cur[j] >= kUnreachable) continue;
            for (std::int32_t jc = 0; jc <= csub; ++jc) {
              const double cost = cur[j] + child_option(c, s, jc);
              auto& slot = next[j + static_cast<std::size_t>(jc)];
              if (cost < slot) slot = cost;
            }
          }
          cur = std::move(next);
        }
        dp[static_cast<std::size_t>(s)] = std::move(cur);
      }
      table[idx].dp = std::move(dp);
    }
    return true;
  }

  /// Reconstructs the assignment for node v in `state` hitting exactly j.
  void reconstruct(NodeId v, int state, std::int32_t j) {
    const auto idx = static_cast<std::size_t>(v);
    // Recompute the sequential merge to backtrack the child allocations.
    auto dp0 = base(v);
    std::vector<std::vector<double>> steps;
    steps.push_back(dp0[static_cast<std::size_t>(state)]);
    const auto& kids = t.children(v);
    for (NodeId c : kids) {
      const auto csub = sub[static_cast<std::size_t>(c)];
      const auto& cur = steps.back();
      std::vector<double> next(cur.size() + static_cast<std::size_t>(csub),
                               kUnreachable);
      for (std::size_t jj = 0; jj < cur.size(); ++jj) {
        if (cur[jj] >= kUnreachable) continue;
        for (std::int32_t jc = 0; jc <= csub; ++jc) {
          const double cost = cur[jj] + child_option(c, state, jc);
          auto& slot = next[jj + static_cast<std::size_t>(jc)];
          if (cost < slot) slot = cost;
        }
      }
      steps.push_back(std::move(next));
    }
    // Walk backwards through the children.
    std::int32_t remaining = j;
    std::vector<std::pair<NodeId, std::int32_t>> child_alloc;
    for (std::size_t i = kids.size(); i > 0; --i) {
      const NodeId c = kids[i - 1];
      const auto csub = sub[static_cast<std::size_t>(c)];
      const double target = steps[i][static_cast<std::size_t>(remaining)];
      bool found = false;
      for (std::int32_t jc = 0; jc <= csub && !found; ++jc) {
        if (jc > remaining) break;
        const auto prev = static_cast<std::size_t>(remaining - jc);
        if (prev >= steps[i - 1].size()) continue;
        const double cand =
            steps[i - 1][prev] + child_option(c, state, jc);
        if (std::abs(cand - target) <= 1e-9 * (1.0 + std::abs(target))) {
          child_alloc.push_back({c, jc});
          remaining -= jc;
          found = true;
        }
      }
      HT_CHECK_MSG(found, "tree bisection backtrack failed");
    }
    // Own allocation.
    own_to_side1[idx] = remaining;
    HT_CHECK(0 <= remaining && remaining <= cnt[idx]);
    if (state == kSide0) HT_CHECK(remaining == 0);
    if (state == kSide1) HT_CHECK(remaining == cnt[idx]);
    // Recurse into children with their chosen states.
    for (const auto& [c, jc] : child_alloc) {
      const auto& d = table[static_cast<std::size_t>(c)].dp;
      const double want = child_option(c, state, jc);
      int child_state = kCut;
      const auto jidx = static_cast<std::size_t>(jc);
      if (std::abs(d[kCut][jidx] - want) <= 1e-12 * (1.0 + std::abs(want))) {
        child_state = kCut;
      } else if (state == kCut) {
        child_state =
            d[kSide0][jidx] <= d[kSide1][jidx] ? kSide0 : kSide1;
        if (std::abs(d[static_cast<std::size_t>(child_state)][jidx] - want) >
            1e-9 * (1.0 + std::abs(want))) {
          child_state = child_state == kSide0 ? kSide1 : kSide0;
        }
      } else {
        child_state = state;
      }
      node_state_[static_cast<std::size_t>(c)] =
          static_cast<std::int8_t>(child_state);
      reconstruct(c, child_state, jc);
    }
  }

  std::vector<std::int8_t> node_state_;
};

}  // namespace

TreeBisectionResult balanced_tree_bisection(
    const Tree& t, const std::vector<VertexId>& counted_vertices) {
  TreeBisectionResult out;
  HT_CHECK(counted_vertices.size() % 2 == 0);
  HT_CHECK(!counted_vertices.empty());
  Solver solver(t);
  solver.cnt.assign(static_cast<std::size_t>(t.num_nodes()), 0);
  for (VertexId v : counted_vertices) {
    const NodeId node = t.node_of_vertex(v);
    HT_CHECK(node != -1);
    ++solver.cnt[static_cast<std::size_t>(node)];
  }
  if (!solver.solve()) return out;
  const auto half =
      static_cast<std::int32_t>(counted_vertices.size() / 2);
  const auto& root_dp = solver.table[static_cast<std::size_t>(t.root())].dp;
  int best_state = -1;
  double best = kUnreachable;
  for (int s = 0; s < 3; ++s) {
    const double v = root_dp[static_cast<std::size_t>(s)]
                            [static_cast<std::size_t>(half)];
    if (v < best) {
      best = v;
      best_state = s;
    }
  }
  if (best_state < 0 || best >= kUnreachable) return out;
  solver.node_state_.assign(static_cast<std::size_t>(t.num_nodes()), kCut);
  solver.node_state_[static_cast<std::size_t>(t.root())] =
      static_cast<std::int8_t>(best_state);
  solver.reconstruct(t.root(), best_state, half);

  // Emit per-counted-vertex sides: within a node, the first
  // own_to_side1[node] occurrences go to side 1.
  std::vector<std::int32_t> used(static_cast<std::size_t>(t.num_nodes()), 0);
  out.side.assign(counted_vertices.size(), false);
  for (std::size_t i = 0; i < counted_vertices.size(); ++i) {
    const NodeId node = t.node_of_vertex(counted_vertices[i]);
    const auto nidx = static_cast<std::size_t>(node);
    const int state = solver.node_state_[nidx];
    if (state == kSide1) {
      out.side[i] = true;
    } else if (state == kSide0) {
      out.side[i] = false;
    } else {
      out.side[i] = used[nidx] < solver.own_to_side1[nidx];
      ++used[nidx];
    }
  }
  std::size_t on_one = 0;
  for (bool b : out.side) on_one += b ? 1 : 0;
  HT_CHECK_MSG(on_one == counted_vertices.size() / 2,
               "tree bisection produced unbalanced sides");
  out.tree_cut = best;
  out.valid = true;
  return out;
}

}  // namespace ht::cuttree
