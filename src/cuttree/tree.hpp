// Rooted trees used as cut sparsifiers.
//
// A Tree carries both node weights (vertex cut trees, Section 3.1) and
// parent-edge weights (edge cut trees, Theorem 6 / Gomory–Hu), plus the
// embedding map from original (hyper)graph vertices to tree nodes
// (V ⊆ V_T). gamma_T and delta_T are computed two independent ways — flow
// on the tree-as-graph and a direct tree DP — which cross-check each other
// in tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/status.hpp"

namespace ht::cuttree {

using NodeId = std::int32_t;
using VertexId = std::int32_t;

/// Stand-in for "infinite" node weight: far above any finite weight sum in
/// our instances but far below the flow solver's own infinity, so infinite
/// nodes are never selected into minimum cuts yet arithmetic stays finite.
inline constexpr double kInfiniteNodeWeight = 1e15;

class Tree {
 public:
  Tree() = default;

  /// Adds a node. The first call must pass parent == -1 and creates the
  /// root; all later nodes attach below an existing node.
  NodeId add_node(NodeId parent, double node_weight, double edge_weight = 0.0);

  NodeId num_nodes() const { return static_cast<NodeId>(parent_.size()); }
  NodeId root() const { return root_; }
  NodeId parent(NodeId v) const { return parent_[static_cast<std::size_t>(v)]; }
  const std::vector<NodeId>& children(NodeId v) const {
    return children_[static_cast<std::size_t>(v)];
  }

  double node_weight(NodeId v) const {
    return node_weight_[static_cast<std::size_t>(v)];
  }
  void set_node_weight(NodeId v, double w) {
    node_weight_[static_cast<std::size_t>(v)] = w;
  }
  /// Weight of the edge between v and parent(v); unused at the root.
  double edge_weight(NodeId v) const {
    return edge_weight_[static_cast<std::size_t>(v)];
  }
  void set_edge_weight(NodeId v, double w) {
    edge_weight_[static_cast<std::size_t>(v)] = w;
  }

  /// Maps original vertex ids to tree nodes. Must be set by the builder;
  /// node_of_vertex(v) == -1 means v is not embedded.
  void set_vertex_node(VertexId vertex, NodeId node);
  NodeId node_of_vertex(VertexId vertex) const {
    return vertex_node_[static_cast<std::size_t>(vertex)];
  }
  VertexId num_embedded_vertices() const {
    return static_cast<VertexId>(vertex_node_.size());
  }
  void reserve_vertices(VertexId count) {
    vertex_node_.assign(static_cast<std::size_t>(count), -1);
  }

  /// Replaces the vertex embedding by composition: new vertex i maps to
  /// the node of current vertex to_current[i]. This is how a tree built
  /// on a preprocessed (contracted) instance is lifted back to original
  /// vertex ids — every original vertex of a cluster embeds at the
  /// cluster's node, and the tree DPs already aggregate multiple counted
  /// vertices per node. Entries must index the current embedding.
  void lift_vertices(std::span<const VertexId> to_current);

  /// Reconstructs a tree from flat arrays (the snapshot loader's entry
  /// point: the arrays come straight out of an mmap'ed, checksummed but
  /// otherwise untrusted file). Validates every invariant add_node/
  /// set_vertex_node would have enforced — root at node 0, parent[i] < i,
  /// equal array lengths, every vertex embedded at a valid node — and
  /// returns kInvalidArgument instead of crashing on violations.
  static StatusOr<Tree> from_arrays(std::span<const NodeId> parent,
                                    std::span<const double> node_weight,
                                    std::span<const double> edge_weight,
                                    std::span<const NodeId> vertex_node);

  /// The tree as an undirected Graph (node weights copied; edge weights
  /// from parent-edge weights).
  ht::graph::Graph as_graph() const;

  /// Consistency check: exactly one root, parent links acyclic, every
  /// embedded vertex maps to a valid node.
  void validate() const;

 private:
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<double> node_weight_;
  std::vector<double> edge_weight_;
  std::vector<NodeId> vertex_node_;
  NodeId root_ = 0;
};

/// gamma_T(A, B): minimum node-weight cut separating the tree nodes of A
/// from those of B (nodes of A/B may themselves be chosen). Computed by
/// max-flow on the tree graph. A and B are original vertex ids.
double tree_vertex_cut_flow(const Tree& t, const std::vector<VertexId>& a,
                            const std::vector<VertexId>& b);

/// Same value via an exact O(|T|) tree DP — the independent cross-check.
double tree_vertex_cut_dp(const Tree& t, const std::vector<VertexId>& a,
                          const std::vector<VertexId>& b);

/// delta_T(A, B): minimum parent-edge-weight cut separating A from B.
double tree_edge_cut_dp(const Tree& t, const std::vector<VertexId>& a,
                        const std::vector<VertexId>& b);

/// Canonical byte-exact serialization of the full tree state (structure,
/// weights with full precision, vertex embedding). Two trees built by
/// deterministic code paths are interchangeable iff their signatures are
/// equal — the determinism tests compare 1-thread and N-thread builds
/// through this.
std::string tree_signature(const Tree& t);

}  // namespace ht::cuttree
