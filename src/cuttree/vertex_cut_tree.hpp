// Section 3.1: construction of a vertex cut tree of quality
// ~O(sqrt(W)) for a vertex-weighted graph.
//
// Algorithm (Figure 1): repeatedly extract approximate min-ratio vertex
// separators while one of sparsity below alpha * f(W) exists, with
// f(W) = 1 / sqrt(alpha * log(n) * W); collect all separator vertices into
// S. The tree is the root (weight w(S)) with one child per separator
// vertex (weight w(s)) and one infinite-weight child per surviving
// subgraph G_i carrying G_i's vertices as leaves.
//
// Lemma 5 (domination) holds for ANY stopping rule — it only uses the tree
// shape — so the construction is dominating even with our surrogate
// oracle; Lemma 6 ties the quality to the oracle's alpha, which the
// benches measure.
#pragma once

#include <cstdint>
#include <vector>

#include "cuttree/tree.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ht::cuttree {

struct VertexCutTreeOptions {
  /// Assumed approximation factor of the min-ratio oracle (enters the
  /// stopping threshold alpha * f(W)). <= 0 means sqrt(log2 n).
  double alpha = 0.0;
  /// Use the exact min-ratio oracle on pieces of at most this many
  /// vertices (exponential; keep small).
  std::int32_t exact_oracle_limit = 10;
  std::uint64_t seed = 0x5eedULL;
  /// Overrides the sparsity stopping threshold entirely when > 0
  /// (used by ablation benches).
  double threshold_override = 0.0;
};

struct VertexCutTreeResult {
  Tree tree;
  std::vector<VertexId> separator_vertices;  // the set S
  double separator_weight = 0.0;             // w(S)
  std::int32_t num_pieces = 0;               // surviving subgraphs G_i
  double threshold = 0.0;                    // sparsity threshold used
  /// Ok when peeling ran to the stopping rule; a stop status when the
  /// ambient RunContext ended the run early. Either way `tree` is a valid
  /// dominating cut tree: Lemma 5 holds for ANY stopping rule, so pieces
  /// still queued at the stop simply become final pieces.
  Status status;
};

/// Builds the Section 3.1 vertex cut tree for a finalized graph. Works on
/// disconnected graphs too (components become separate pieces). Pieces are
/// peeled in parallel over the global thread pool; each piece's oracle RNG
/// stream is derived from (seed, piece index), so the result is
/// byte-identical for every thread count.
VertexCutTreeResult build_vertex_cut_tree(
    const ht::graph::Graph& g, const VertexCutTreeOptions& options = {});

}  // namespace ht::cuttree
