#include "cuttree/edge_cut_trees.hpp"

#include <algorithm>
#include <functional>

#include "flow/gomory_hu.hpp"
#include "reduction/clique_expansion.hpp"
#include "util/check.hpp"

namespace ht::cuttree {

Tree star_topology(VertexId n) {
  HT_CHECK(n >= 1);
  Tree t;
  t.reserve_vertices(n);
  const NodeId root = t.add_node(-1, 1.0);
  for (VertexId v = 0; v < n; ++v) {
    const NodeId leaf = t.add_node(root, 1.0, 1.0);
    t.set_vertex_node(v, leaf);
  }
  t.validate();
  return t;
}

Tree path_topology(const std::vector<VertexId>& order) {
  HT_CHECK(!order.empty());
  const auto n = static_cast<VertexId>(order.size());
  Tree t;
  t.reserve_vertices(n);
  NodeId chain = t.add_node(-1, 1.0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId leaf = t.add_node(chain, 1.0, 1.0);
    t.set_vertex_node(order[i], leaf);
    if (i + 1 < order.size()) chain = t.add_node(chain, 1.0, 1.0);
  }
  t.validate();
  return t;
}

Tree balanced_binary_topology(const std::vector<VertexId>& order) {
  HT_CHECK(!order.empty());
  const auto n = static_cast<VertexId>(order.size());
  Tree t;
  t.reserve_vertices(n);
  const NodeId root = t.add_node(-1, 1.0);
  // Recursive split of [lo, hi) below `parent`.
  std::function<void(NodeId, std::size_t, std::size_t)> build =
      [&](NodeId parent, std::size_t lo, std::size_t hi) {
        if (hi - lo == 1) {
          const NodeId leaf = t.add_node(parent, 1.0, 1.0);
          t.set_vertex_node(order[lo], leaf);
          return;
        }
        const std::size_t mid = lo + (hi - lo) / 2;
        const NodeId left = t.add_node(parent, 1.0, 1.0);
        const NodeId right = t.add_node(parent, 1.0, 1.0);
        build(left, lo, mid);
        build(right, mid, hi);
      };
  build(root, 0, order.size());
  t.validate();
  return t;
}

Tree random_topology(VertexId n, ht::Rng& rng) {
  HT_CHECK(n >= 1);
  Tree t;
  t.reserve_vertices(n);
  std::vector<NodeId> internal{t.add_node(-1, 1.0)};
  // Grow a random internal skeleton of ~n/2 nodes, then hang leaves.
  const VertexId skeleton = std::max<VertexId>(1, n / 2);
  for (VertexId i = 1; i < skeleton; ++i) {
    const NodeId parent = internal[static_cast<std::size_t>(
        rng.next_below(internal.size()))];
    internal.push_back(t.add_node(parent, 1.0, 1.0));
  }
  for (VertexId v = 0; v < n; ++v) {
    const NodeId parent = internal[static_cast<std::size_t>(
        rng.next_below(internal.size()))];
    const NodeId leaf = t.add_node(parent, 1.0, 1.0);
    t.set_vertex_node(v, leaf);
  }
  t.validate();
  return t;
}

Tree gomory_hu_topology(const ht::hypergraph::Hypergraph& h) {
  const ht::graph::Graph expansion = ht::reduction::clique_expansion(h);
  HT_CHECK(ht::graph::is_connected(expansion));
  const auto gh = ht::flow::gomory_hu(expansion);
  const auto gh_graph = gh.as_graph();
  // Convert the parent structure into a Tree (ids re-ordered so parents
  // precede children).
  const VertexId n = h.num_vertices();
  Tree t;
  t.reserve_vertices(n);
  std::vector<NodeId> node_of(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> stack{gh.root};
  node_of[static_cast<std::size_t>(gh.root)] = t.add_node(-1, 1.0);
  t.set_vertex_node(gh.root, node_of[static_cast<std::size_t>(gh.root)]);
  // BFS over children links derived from the parent array.
  std::vector<std::vector<VertexId>> kids(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    if (gh.parent[static_cast<std::size_t>(v)] != -1)
      kids[static_cast<std::size_t>(gh.parent[static_cast<std::size_t>(v)])]
          .push_back(v);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (VertexId c : kids[static_cast<std::size_t>(v)]) {
      node_of[static_cast<std::size_t>(c)] =
          t.add_node(node_of[static_cast<std::size_t>(v)], 1.0,
                     gh.parent_cut[static_cast<std::size_t>(c)]);
      t.set_vertex_node(c, node_of[static_cast<std::size_t>(c)]);
      stack.push_back(c);
    }
  }
  t.validate();
  return t;
}

void assign_induced_weights(const ht::hypergraph::Hypergraph& h, Tree& tree) {
  const NodeId n = tree.num_nodes();
  // Leaf sets via child-before-parent accumulation: collect embedded
  // vertices per node, then fold upward.
  std::vector<std::vector<VertexId>> below(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < tree.num_embedded_vertices(); ++v) {
    const NodeId node = tree.node_of_vertex(v);
    if (node != -1) below[static_cast<std::size_t>(node)].push_back(v);
  }
  for (NodeId v = n - 1; v > 0; --v) {
    // delta_H of the embedded vertices below v (inclusive).
    const auto& set = below[static_cast<std::size_t>(v)];
    double weight = 0.0;
    if (!set.empty() &&
        set.size() < static_cast<std::size_t>(h.num_vertices())) {
      weight = h.cut_weight(set);
    }
    tree.set_edge_weight(v, weight);
    const NodeId p = tree.parent(v);
    auto& up = below[static_cast<std::size_t>(p)];
    up.insert(up.end(), set.begin(), set.end());
  }
}

}  // namespace ht::cuttree
