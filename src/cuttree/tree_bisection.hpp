// Corollary 3's tree dynamic program: minimum-weight vertex cut X in a cut
// tree T such that the remaining components can be two-colored with exactly
// half of the designated "real" vertices on each side.
//
// For hypergraph bisection the tree is the Section 3.1 vertex cut tree of
// the star expansion; only original hypergraph vertices count toward
// balance, and hyperedge nodes are free. Vertices embedded at cut nodes are
// side-free (they are already paid for), mirroring the amortization in the
// paper's analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "cuttree/tree.hpp"

namespace ht::cuttree {

struct TreeBisectionResult {
  /// Side assignment per counted vertex index (position in
  /// `counted_vertices`), true = side 1. Exactly half on each side.
  std::vector<bool> side;
  double tree_cut = 0.0;  // w(X), the DP objective
  bool valid = false;
};

/// Computes the balanced tree cut. `counted_vertices` are original vertex
/// ids embedded in the tree whose count must split n/2–n/2 (size must be
/// even). Runs in O(|T| * |counted|^2 / subtree pruning) — fine for the
/// few-hundred-vertex instances the benches use.
TreeBisectionResult balanced_tree_bisection(
    const Tree& t, const std::vector<VertexId>& counted_vertices);

}  // namespace ht::cuttree
