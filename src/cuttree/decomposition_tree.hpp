// Laminar decomposition trees for graph edge cuts — the stand-in for the
// Räcke decomposition trees [17] that the paper's Proposition 1 and the
// graph-bisection black box consume.
//
// Construction: recursively split every cluster with the sparsest edge
// cut (spectral sweep + local search; exact on small clusters), producing
// a laminar family. Tree nodes are clusters, leaves are single vertices,
// and the edge above a cluster C carries weight delta_G(C). The union
// bound makes any such tree a *dominating* edge cut tree:
// delta_T(A,B) >= delta_G(A,B) for all disjoint A, B; its measured quality
// on graphs is polylogarithmic-ish (bench_graph_bisection charts it),
// matching the regime where [17] proves O(log n).
#pragma once

#include <cstdint>

#include "cuttree/tree.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ht::cuttree {

struct DecompositionOptions {
  std::uint64_t seed = 0x5eedULL;
  /// Clusters of at most this size are split exactly.
  std::int32_t exact_limit = 12;
  /// Stop splitting clusters below this size (they become stars of
  /// leaves). 1 = decompose fully.
  std::int32_t leaf_cluster_size = 1;
};

struct DecompositionTreeResult {
  Tree tree;
  /// Ok when every cluster was split down to the stopping rule; a stop
  /// status when the ambient RunContext ended the run early. The partial
  /// tree is still a valid dominating tree: clusters still queued at the
  /// stop expand into stars of leaves carrying their exact singleton cuts
  /// (the union bound needs nothing more).
  Status status;
};

/// Builds the decomposition tree of a finalized graph. Every original
/// vertex is embedded as a leaf; internal nodes have weight
/// kInfiniteNodeWeight (they are clusters, not vertices — only edges
/// matter), and edge weights are the induced cuts delta_G(cluster).
/// Stops early at wavefront piece boundaries under the ambient RunContext.
DecompositionTreeResult build_decomposition_tree_run(
    const ht::graph::Graph& g, const DecompositionOptions& options = {});

/// Tree-only wrapper; superseded by ht::Solver::decomposition_tree.
HT_LEGACY_API Tree build_decomposition_tree(
    const ht::graph::Graph& g, const DecompositionOptions& options = {});

}  // namespace ht::cuttree
