// Cut-tree quality evaluation.
//
// Quality of a dominating cut tree T for G is the smallest alpha with
// cut_G(A,B) <= cut_T(A,B) <= alpha * cut_G(A,B) over all disjoint A,B.
// Exact evaluation is exponential; we measure over pair families: all
// singleton pairs, random sampled set pairs, and the adversarial families
// from the paper's lower-bound proofs (supplied by the benches).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cuttree/tree.hpp"
#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace ht::cuttree {

using VertexPair =
    std::pair<std::vector<VertexId>, std::vector<VertexId>>;

struct QualityReport {
  double max_ratio = 0.0;   // worst tree/graph ratio — the measured quality
  double min_ratio = 0.0;   // < 1 would falsify domination
  double mean_ratio = 0.0;
  std::size_t pairs = 0;
  bool dominating = true;   // min_ratio >= 1 - tolerance
};

/// gamma_T vs gamma_G over the given pairs (vertex cuts in a graph).
QualityReport vertex_cut_tree_quality(const ht::graph::Graph& g,
                                      const Tree& tree,
                                      const std::vector<VertexPair>& pairs);

/// gamma_T vs delta_H over the given pairs: T is a vertex cut tree of the
/// star expansion of h, pairs are over hypergraph vertices (Lemma 7 makes
/// the comparison meaningful).
QualityReport hypergraph_cut_tree_quality(
    const ht::hypergraph::Hypergraph& h, const Tree& tree,
    const std::vector<VertexPair>& pairs);

struct ScaledQualityReport {
  double quality = 0.0;  // max(delta_T/delta_H) * max(delta_H/delta_T)
  double scale = 0.0;    // the domination-restoring scale factor
  std::size_t pairs = 0;
};

/// delta_T vs delta_H for an *edge* cut tree, with the minimal scaling
/// that restores domination over the measured pairs (Theorem 6 evaluation).
ScaledQualityReport edge_cut_tree_quality(
    const ht::hypergraph::Hypergraph& h, const Tree& tree,
    const std::vector<VertexPair>& pairs);

/// All n*(n-1)/2 singleton pairs ({s},{t}).
std::vector<VertexPair> all_singleton_pairs(VertexId n);

/// `count` random disjoint pairs of sets, each of size in [1, max_size].
std::vector<VertexPair> random_set_pairs(VertexId n, std::size_t count,
                                         VertexId max_size, ht::Rng& rng);

}  // namespace ht::cuttree
