// Lemma 7: star expansion.
//
// From a hypergraph G = (V, H) build the bipartite vertex-weighted graph
// G' = (V ∪ H, E): vertex v keeps its identity with weight deg_G(v) + 1,
// hyperedge e becomes a vertex of weight w(e), and v—e edges connect
// incidences. Lemma 7: gamma_{G'}(A, B) = delta_G(A, B) for all disjoint
// A, B ⊆ V — hypergraph *edge* cuts become *vertex* cuts, which is how
// Theorem 5's vertex cut trees are applied to hypergraphs (Corollary 3).
#pragma once

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace ht::reduction {

struct StarExpansion {
  ht::graph::Graph graph;
  // Vertices of the hypergraph are ids [0, n); hyperedge e is node
  // edge_node_base + e.
  ht::graph::VertexId edge_node_base = 0;

  ht::graph::VertexId node_of_vertex(ht::hypergraph::VertexId v) const {
    return v;
  }
  ht::graph::VertexId node_of_edge(ht::hypergraph::EdgeId e) const {
    return edge_node_base + e;
  }
};

StarExpansion star_expansion(const ht::hypergraph::Hypergraph& h);

}  // namespace ht::reduction
