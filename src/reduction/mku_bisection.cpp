#include "reduction/mku_bisection.hpp"

#include <algorithm>
#include <cmath>

namespace ht::reduction {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

double mku_union_weight(const Hypergraph& h,
                        const std::vector<EdgeId>& chosen) {
  std::vector<bool> covered(static_cast<std::size_t>(h.num_vertices()), false);
  double total = 0.0;
  for (EdgeId e : chosen) {
    for (VertexId v : h.pins(e)) {
      if (!covered[static_cast<std::size_t>(v)]) {
        covered[static_cast<std::size_t>(v)] = true;
        total += h.vertex_weight(v);
      }
    }
  }
  return total;
}

MkuBisectionReduction mku_to_bisection(const MkuInstance& instance) {
  const Hypergraph& g = instance.hypergraph;
  HT_CHECK(g.finalized());
  const std::int64_t m_sets = g.num_edges();
  const std::int64_t k = instance.k;
  HT_CHECK(1 <= k && k <= m_sets);
  // Items covered by no set never contribute to any union; they simply
  // generate no hyperedge below.

  MkuBisectionReduction out;
  const std::int64_t p = std::llabs(m_sets + 1 - 2 * k);
  out.num_padding = static_cast<std::int32_t>(p);
  out.padding_glued = k > (m_sets + 1) / 2;
  const auto total_vertices = static_cast<VertexId>(m_sets + 1 + p);
  HT_CHECK(total_vertices % 2 == 0);

  Hypergraph bis(total_vertices);
  out.supervertex = static_cast<VertexId>(m_sets);
  out.set_of_vertex.assign(static_cast<std::size_t>(total_vertices), -1);
  for (std::int64_t i = 0; i < m_sets; ++i)
    out.set_of_vertex[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(i);

  // One hyperedge per covered item j: {w} ∪ {v_i : j ∈ h'_i}.
  for (VertexId j = 0; j < g.num_vertices(); ++j) {
    if (g.degree(j) == 0) continue;
    std::vector<VertexId> pins{out.supervertex};
    for (EdgeId e : g.incident_edges(j)) pins.push_back(e);
    bis.add_edge(std::move(pins), g.vertex_weight(j));
  }
  // Glue padding onto w with effectively-infinite edges in the k > (m+1)/2
  // regime. "Infinite" = more than any feasible finite bisection can cost.
  out.infinite_cost = 0.0;
  for (VertexId j = 0; j < g.num_vertices(); ++j)
    out.infinite_cost += g.vertex_weight(j);
  out.infinite_cost = out.infinite_cost * 4.0 + 16.0;
  if (out.padding_glued) {
    for (std::int64_t l = 0; l < p; ++l) {
      const auto pad = static_cast<VertexId>(m_sets + 1 + l);
      bis.add_edge({out.supervertex, pad}, out.infinite_cost);
    }
  }
  bis.finalize();
  out.bisection_instance = std::move(bis);
  return out;
}

std::vector<EdgeId> MkuBisectionReduction::extract_mku_solution(
    const std::vector<bool>& with_supervertex, std::int32_t k) const {
  HT_CHECK(with_supervertex.size() ==
           static_cast<std::size_t>(bisection_instance.num_vertices()));
  HT_CHECK(with_supervertex[static_cast<std::size_t>(supervertex)]);
  // Sets whose vertex landed on the non-supervertex side.
  std::vector<EdgeId> v1_sets, v2_sets;
  for (std::size_t v = 0; v < with_supervertex.size(); ++v) {
    const std::int32_t set = set_of_vertex[v];
    if (set < 0) continue;
    (with_supervertex[v] ? v2_sets : v1_sets).push_back(set);
  }
  std::vector<EdgeId> chosen;
  chosen.reserve(static_cast<std::size_t>(k));
  for (EdgeId s : v1_sets) {
    if (static_cast<std::int32_t>(chosen.size()) == k) break;
    chosen.push_back(s);
  }
  // Heuristic bisections may strand fewer than k sets on the w-free side
  // (only possible if they paid for padding misplacement); top up from the
  // other side so the output is always a feasible k-set solution.
  for (EdgeId s : v2_sets) {
    if (static_cast<std::int32_t>(chosen.size()) == k) break;
    chosen.push_back(s);
  }
  HT_CHECK(static_cast<std::int32_t>(chosen.size()) == k);
  return chosen;
}

}  // namespace ht::reduction
