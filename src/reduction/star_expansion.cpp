#include "reduction/star_expansion.hpp"

namespace ht::reduction {

StarExpansion star_expansion(const ht::hypergraph::Hypergraph& h) {
  HT_CHECK(h.finalized());
  StarExpansion out;
  const auto n = h.num_vertices();
  const auto m = h.num_edges();
  out.edge_node_base = n;
  out.graph.resize(n + m);
  for (ht::hypergraph::VertexId v = 0; v < n; ++v) {
    // Weight deg(v) + 1 makes it always cheaper to cut all hyperedges at v
    // than v itself, which is what forces minimum vertex cuts in G' to use
    // only hyperedge nodes (proof of Lemma 7). With weighted hyperedges the
    // same argument needs the *weighted* degree.
    double weighted_degree = 0.0;
    for (auto e : h.incident_edges(v)) weighted_degree += h.edge_weight(e);
    out.graph.set_vertex_weight(v, weighted_degree + 1.0);
  }
  for (ht::hypergraph::EdgeId e = 0; e < m; ++e) {
    out.graph.set_vertex_weight(out.node_of_edge(e), h.edge_weight(e));
    for (auto v : h.pins(e)) out.graph.add_edge(v, out.node_of_edge(e));
  }
  out.graph.finalize();
  return out;
}

}  // namespace ht::reduction
