// Theorem 3: Minimizing k-Union  →  Minimum Hypergraph Bisection.
//
// MkU instance: hypergraph G' = (V', H'), select k hyperedges minimizing
// |union of their pins|. Reduction: swap the roles of vertices and
// hyperedges, add a supervertex w incident to every new hyperedge, and pad
// with p = |m + 1 - 2k| vertices so the bisection is exactly balanced. When
// k > (m+1)/2 the padding is glued to w with infinite-cost edges; otherwise
// the padding floats free.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace ht::reduction {

/// A Minimizing-k-Union instance.
struct MkuInstance {
  ht::hypergraph::Hypergraph hypergraph;  // sets = hyperedges over items
  std::int32_t k = 0;                     // number of sets to pick
};

/// Exact/heuristic MkU objective: size of the union of the chosen sets.
double mku_union_weight(const ht::hypergraph::Hypergraph& h,
                        const std::vector<ht::hypergraph::EdgeId>& chosen);

struct MkuBisectionReduction {
  ht::hypergraph::Hypergraph bisection_instance;
  ht::hypergraph::VertexId supervertex = 0;
  // set_of_vertex[v] == index of hyperedge h'_v in the MkU instance, or -1
  // for the supervertex / padding vertices.
  std::vector<std::int32_t> set_of_vertex;
  std::int32_t num_padding = 0;
  bool padding_glued = false;  // true iff k > (m+1)/2
  double infinite_cost = 0.0;  // the weight standing in for "infinity"

  /// Maps a bisection (side indicator, true = side containing the
  /// supervertex) back to a k-set MkU solution (Theorem 3's argument).
  std::vector<ht::hypergraph::EdgeId> extract_mku_solution(
      const std::vector<bool>& with_supervertex, std::int32_t k) const;
};

/// Builds the reduction. Requires every item to belong to >= 1 set.
MkuBisectionReduction mku_to_bisection(const MkuInstance& instance);

}  // namespace ht::reduction
