#include "reduction/clique_expansion.hpp"

#include <algorithm>

namespace ht::reduction {

ht::graph::Graph clique_expansion(const ht::hypergraph::Hypergraph& h) {
  HT_CHECK(h.finalized());
  ht::graph::Graph g(h.num_vertices());
  for (ht::hypergraph::VertexId v = 0; v < h.num_vertices(); ++v)
    g.set_vertex_weight(v, h.vertex_weight(v));
  for (ht::hypergraph::EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto pins = h.pins(e);
    const double w =
        h.edge_weight(e) / static_cast<double>(pins.size() - 1);
    for (std::size_t i = 0; i < pins.size(); ++i)
      for (std::size_t j = i + 1; j < pins.size(); ++j)
        g.add_edge(pins[i], pins[j], w);
  }
  g.finalize();
  return g;
}

double lemma1_bound(std::int64_t k, std::int32_t hmax) {
  const double bound =
      std::min(static_cast<double>(k), static_cast<double>(hmax) / 2.0);
  return std::max(bound, 1.0);
}

}  // namespace ht::reduction
