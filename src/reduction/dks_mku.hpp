// Theorem 4: Densest k-Subgraph  →  Minimizing k-Union, and the f → f²
// solution mapping.
//
// For a DkS instance (graph G, size k) and a guessed optimal edge count L,
// the derived MkU instance has one hyperedge per graph edge (its two
// endpoints) and asks for L hyperedges with minimum union. A k-vertex
// subgraph with L edges gives L sets with union <= k; conversely an MkU
// solution covering f·k vertices induces >= L edges, and pruning down to k
// vertices retains >= L/f² of them (derandomized by conditional
// expectations — here: iteratively dropping the vertex that loses the
// fewest induced edges).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "reduction/mku_bisection.hpp"

namespace ht::reduction {

/// Builds the MkU instance for DkS guess L: items = vertices of g,
/// sets = edges of g, k_mku = L.
MkuInstance dks_to_mku(const ht::graph::Graph& g, std::int32_t L);

/// Number of edges of g inside the vertex set S.
std::int64_t induced_edges(const ht::graph::Graph& g,
                           const std::vector<ht::graph::VertexId>& s);

/// Theorem 4's pruning step: given a vertex set S (|S| >= k), repeatedly
/// remove the vertex whose removal destroys the fewest induced edges until
/// |S| == k. This is the conditional-expectation derandomization of the
/// random k-subset argument.
std::vector<ht::graph::VertexId> prune_to_k(
    const ht::graph::Graph& g, std::vector<ht::graph::VertexId> s,
    std::int32_t k);

/// Maps an MkU solution (chosen hyperedges == graph edges) back to a DkS
/// candidate: the union of endpoints, pruned to k vertices.
std::vector<ht::graph::VertexId> mku_solution_to_dks(
    const ht::graph::Graph& g,
    const std::vector<ht::hypergraph::EdgeId>& chosen_edges, std::int32_t k);

}  // namespace ht::reduction
