#include "reduction/dks_mku.hpp"

#include <algorithm>

namespace ht::reduction {

using ht::graph::Graph;
using ht::graph::VertexId;

MkuInstance dks_to_mku(const Graph& g, std::int32_t L) {
  HT_CHECK(g.finalized());
  HT_CHECK(1 <= L && L <= g.num_edges());
  MkuInstance out;
  out.hypergraph.resize(g.num_vertices());
  for (const auto& e : g.edges()) out.hypergraph.add_edge({e.u, e.v});
  out.hypergraph.finalize();
  out.k = L;
  return out;
}

std::int64_t induced_edges(const Graph& g, const std::vector<VertexId>& s) {
  std::vector<bool> in(static_cast<std::size_t>(g.num_vertices()), false);
  for (VertexId v : s) in[static_cast<std::size_t>(v)] = true;
  std::int64_t count = 0;
  for (const auto& e : g.edges()) {
    if (in[static_cast<std::size_t>(e.u)] && in[static_cast<std::size_t>(e.v)])
      ++count;
  }
  return count;
}

std::vector<VertexId> prune_to_k(const Graph& g, std::vector<VertexId> s,
                                 std::int32_t k) {
  HT_CHECK(static_cast<std::int32_t>(s.size()) >= k);
  std::vector<bool> in(static_cast<std::size_t>(g.num_vertices()), false);
  for (VertexId v : s) in[static_cast<std::size_t>(v)] = true;
  // Degree of each member *inside* the current set.
  std::vector<std::int32_t> internal_degree(
      static_cast<std::size_t>(g.num_vertices()), 0);
  for (const auto& e : g.edges()) {
    if (in[static_cast<std::size_t>(e.u)] &&
        in[static_cast<std::size_t>(e.v)]) {
      ++internal_degree[static_cast<std::size_t>(e.u)];
      ++internal_degree[static_cast<std::size_t>(e.v)];
    }
  }
  while (static_cast<std::int32_t>(s.size()) > k) {
    std::size_t worst = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (internal_degree[static_cast<std::size_t>(s[i])] <
          internal_degree[static_cast<std::size_t>(s[worst])])
        worst = i;
    }
    const VertexId victim = s[worst];
    in[static_cast<std::size_t>(victim)] = false;
    for (const auto& a : g.neighbors(victim)) {
      if (in[static_cast<std::size_t>(a.to)])
        --internal_degree[static_cast<std::size_t>(a.to)];
    }
    s[worst] = s.back();
    s.pop_back();
  }
  return s;
}

std::vector<VertexId> mku_solution_to_dks(
    const Graph& g, const std::vector<ht::hypergraph::EdgeId>& chosen_edges,
    std::int32_t k) {
  std::vector<bool> in(static_cast<std::size_t>(g.num_vertices()), false);
  std::vector<VertexId> s;
  for (auto e : chosen_edges) {
    const auto& edge = g.edge(static_cast<ht::graph::EdgeId>(e));
    for (VertexId v : {edge.u, edge.v}) {
      if (!in[static_cast<std::size_t>(v)]) {
        in[static_cast<std::size_t>(v)] = true;
        s.push_back(v);
      }
    }
  }
  // The union may be smaller than k (dense solutions); pad with arbitrary
  // extra vertices — extra vertices never reduce induced edges.
  for (VertexId v = 0;
       v < g.num_vertices() && static_cast<std::int32_t>(s.size()) < k; ++v) {
    if (!in[static_cast<std::size_t>(v)]) {
      in[static_cast<std::size_t>(v)] = true;
      s.push_back(v);
    }
  }
  HT_CHECK(static_cast<std::int32_t>(s.size()) >= k);
  return prune_to_k(g, std::move(s), k);
}

}  // namespace ht::reduction
