// Lemma 1: clique expansion.
//
// Replace every hyperedge h by a clique on its pins with per-edge weight
// w(h)/(|h|-1). The paper proves the sandwich
//     delta_H(S) <= delta_G'(S) <= min{|S|, hmax/2} * delta_H(S)
// for any vertex set S of size k — the engine of Proposition 1 and of the
// small-hyperedge branch of Theorem 2.
#pragma once

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace ht::reduction {

/// Builds the clique-expansion graph G'. Vertex ids and vertex weights are
/// preserved. Cliques of parallel hyperedges stack additively.
ht::graph::Graph clique_expansion(const ht::hypergraph::Hypergraph& h);

/// The distortion bound of Lemma 1 for a cut side of size k:
/// min(k, hmax/2), never less than 1.
double lemma1_bound(std::int64_t k, std::int32_t hmax);

}  // namespace ht::reduction
