// Zero-copy view of an induced subgraph.
//
// The decomposition recursion repeatedly restricts a graph to a vertex
// subset; copying the induced subgraph at every level makes allocation the
// dominant cost. A SubsetView instead keeps only the vertex list plus an
// old-id -> local-id remap borrowed from the calling thread's WorkArena
// (O(1) amortized to create), and copies a concrete Graph out only at
// materialize() — the oracle/contract boundaries that genuinely need one.
//
// Lifetime rules, enforced by HT_DCHECK:
//  * The parent graph must outlive the view (the view holds a pointer).
//  * local_of()/contains()/materialize() are valid only while this view is
//    the calling thread's most recent (constructing another SubsetView on
//    the same thread reuses the arena remap and invalidates this one).
//  * Views are thread-affine: use them on the thread that built them.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/work_arena.hpp"

namespace ht::graph {

class SubsetView {
 public:
  /// View of the subgraph of `parent` induced by `vertices` (distinct, in
  /// range). O(|vertices|): no edges or weights are copied.
  SubsetView(const Graph& parent, std::vector<VertexId> vertices);

  const Graph& parent() const { return *parent_; }
  /// Number of vertices in the view.
  VertexId size() const { return static_cast<VertexId>(vertices_.size()); }
  const std::vector<VertexId>& vertices() const { return vertices_; }
  VertexId old_of(VertexId local) const {
    return vertices_[static_cast<std::size_t>(local)];
  }
  /// Local id of a parent vertex, -1 when outside the view.
  VertexId local_of(VertexId old_id) const { return remap_.get(old_id); }
  bool contains(VertexId old_id) const { return local_of(old_id) != -1; }
  Weight vertex_weight(VertexId local) const {
    return parent_->vertex_weight(old_of(local));
  }
  /// Sum of vertex weights inside the view.
  Weight total_vertex_weight() const;

  /// Copies the view out as a finalized graph; output is identical to
  /// induced_subgraph(parent(), vertices()). Counts one materialization in
  /// PerfCounters.
  InducedSubgraph materialize() const;

 private:
  const Graph* parent_;
  std::vector<VertexId> vertices_;
  ht::WorkArena::Remap remap_;
};

}  // namespace ht::graph
