#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace ht::graph {

Graph gnp(VertexId n, double p, ht::Rng& rng) {
  HT_CHECK(0.0 <= p && p <= 1.0);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v)
      if (rng.next_bool(p)) g.add_edge(u, v);
  g.finalize();
  return g;
}

Graph gnp_connected(VertexId n, double p, ht::Rng& rng, int max_retries) {
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    Graph g = gnp(n, p, rng);
    if (is_connected(g)) return g;
  }
  // Fallback: G(n,p) plus a random spanning tree (random permutation path
  // plus attachment), which keeps degree distribution close to G(n,p).
  Graph g(n);
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  std::set<std::pair<VertexId, VertexId>> present;
  auto add_unique = [&](VertexId u, VertexId v) {
    if (u == v) return;
    auto key = std::minmax(u, v);
    if (present.insert({key.first, key.second}).second) g.add_edge(u, v);
  };
  for (VertexId i = 1; i < n; ++i) {
    const auto j = static_cast<VertexId>(rng.next_below(
        static_cast<std::uint64_t>(i)));
    add_unique(order[static_cast<std::size_t>(i)],
               order[static_cast<std::size_t>(j)]);
  }
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v)
      if (rng.next_bool(p)) add_unique(u, v);
  g.finalize();
  return g;
}

Graph grid(VertexId rows, VertexId cols) {
  Graph g(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  g.finalize();
  return g;
}

Graph clique(VertexId n, Weight w) {
  Graph g(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) g.add_edge(u, v, w);
  g.finalize();
  return g;
}

Graph star(VertexId leaves) {
  Graph g(leaves + 1);
  for (VertexId i = 1; i <= leaves; ++i) g.add_edge(0, i);
  g.finalize();
  return g;
}

Graph path(VertexId n) {
  Graph g(n);
  for (VertexId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

Graph random_regular(VertexId n, std::int32_t d, ht::Rng& rng) {
  HT_CHECK((static_cast<std::int64_t>(n) * d) % 2 == 0);
  HT_CHECK(d < n);
  // Configuration model: pair up n*d half-edges, drop loops and parallels.
  std::vector<VertexId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (VertexId v = 0; v < n; ++v)
    for (std::int32_t i = 0; i < d; ++i) stubs.push_back(v);
  rng.shuffle(stubs);
  Graph g(n);
  std::set<std::pair<VertexId, VertexId>> present;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    VertexId u = stubs[i], v = stubs[i + 1];
    if (u == v) continue;
    auto key = std::minmax(u, v);
    if (present.insert({key.first, key.second}).second) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

Graph planted_bisection(VertexId half, double p_in, std::int32_t cross_edges,
                        ht::Rng& rng) {
  const VertexId n = 2 * half;
  Graph g(n);
  std::set<std::pair<VertexId, VertexId>> present;
  auto add_unique = [&](VertexId u, VertexId v) -> bool {
    auto key = std::minmax(u, v);
    if (!present.insert({key.first, key.second}).second) return false;
    g.add_edge(u, v);
    return true;
  };
  for (VertexId side = 0; side < 2; ++side) {
    const VertexId base = side * half;
    // Spanning path keeps each side connected, making the planted bisection
    // the overwhelmingly likely optimum.
    for (VertexId i = 0; i + 1 < half; ++i)
      add_unique(base + i, base + i + 1);
    for (VertexId u = 0; u < half; ++u)
      for (VertexId v = u + 1; v < half; ++v)
        if (rng.next_bool(p_in)) add_unique(base + u, base + v);
  }
  std::int32_t added = 0;
  int guard = 0;
  while (added < cross_edges && guard < 100 * cross_edges + 100) {
    ++guard;
    const auto u = static_cast<VertexId>(rng.next_below(
        static_cast<std::uint64_t>(half)));
    const auto v = static_cast<VertexId>(
        half + static_cast<VertexId>(rng.next_below(
                   static_cast<std::uint64_t>(half))));
    if (add_unique(u, v)) ++added;
  }
  g.finalize();
  return g;
}

Figure3Graph figure3_gh(VertexId n) {
  HT_CHECK(n >= 1);
  Figure3Graph out;
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  Graph& g = out.graph;
  g.resize(2 * n + 2);
  out.t = 0;
  out.v = 2 * n + 1;
  g.set_vertex_weight(out.t, sqrt_n);
  g.set_vertex_weight(out.v, static_cast<double>(n));
  out.u.resize(static_cast<std::size_t>(n));
  out.w.resize(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i) {
    const VertexId ui = 1 + i;
    const VertexId wi = 1 + n + i;
    out.u[static_cast<std::size_t>(i)] = ui;
    out.w[static_cast<std::size_t>(i)] = wi;
    g.set_vertex_weight(ui, sqrt_n + 1.0);
    g.set_vertex_weight(wi, 1.0);
    g.add_edge(out.t, ui);
    g.add_edge(ui, wi);
    g.add_edge(wi, out.v);
  }
  g.finalize();
  return out;
}

BlowupGraph figure3_blowup(VertexId n) {
  HT_CHECK(n >= 1);
  // For exposition (as in the paper's Theorem 8) use weight sqrt(n) for the
  // u_i; n is rounded so that sqrt(n) is integral by the caller. We use
  // round(sqrt(n)) here and keep all cliques of that size.
  const auto s = static_cast<VertexId>(
      std::llround(std::sqrt(static_cast<double>(n))));
  BlowupGraph out;
  Graph& g = out.graph;
  // Blocks: T (size s), U_i (size s each), W_i (size 1 each), V (size n).
  const VertexId num_vertices = s + n * s + n + n;
  g.resize(num_vertices);
  auto t_base = static_cast<VertexId>(0);
  auto u_base = [s](VertexId i) { return s + i * s; };
  const VertexId w_base = s + n * s;
  const VertexId v_base = w_base + n;

  auto add_clique = [&g](VertexId base, VertexId size) {
    for (VertexId a = 0; a < size; ++a)
      for (VertexId b = a + 1; b < size; ++b)
        g.add_edge(base + a, base + b);
  };
  auto add_biclique = [&g](VertexId base_a, VertexId size_a, VertexId base_b,
                           VertexId size_b) {
    for (VertexId a = 0; a < size_a; ++a)
      for (VertexId b = 0; b < size_b; ++b)
        g.add_edge(base_a + a, base_b + b);
  };

  add_clique(t_base, s);
  add_clique(v_base, n);
  out.core.resize(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i) {
    add_clique(u_base(i), s);
    add_biclique(t_base, s, u_base(i), s);          // t -- u_i
    add_biclique(u_base(i), s, w_base + i, 1);      // u_i -- w_i
    add_biclique(w_base + i, 1, v_base, n);         // w_i -- v
    auto& core = out.core[static_cast<std::size_t>(i)];
    core.resize(static_cast<std::size_t>(s));
    for (VertexId a = 0; a < s; ++a)
      core[static_cast<std::size_t>(a)] = u_base(i) + a;
  }
  g.finalize();
  return out;
}

}  // namespace ht::graph
