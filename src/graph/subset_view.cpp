#include "graph/subset_view.hpp"

#include "util/perf_counters.hpp"

namespace ht::graph {

SubsetView::SubsetView(const Graph& parent, std::vector<VertexId> vertices)
    : parent_(&parent), vertices_(std::move(vertices)) {
  HT_CHECK(parent.finalized());
  remap_ = ht::WorkArena::local().begin_remap(parent.num_vertices());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const VertexId old = vertices_[i];
    HT_CHECK(0 <= old && old < parent.num_vertices());
    HT_CHECK_MSG(remap_.get(old) == -1,
                 "duplicate vertex " << old << " in SubsetView");
    remap_.set(old, static_cast<VertexId>(i));
  }
}

Weight SubsetView::total_vertex_weight() const {
  Weight sum = 0.0;
  for (VertexId old : vertices_) sum += parent_->vertex_weight(old);
  return sum;
}

InducedSubgraph SubsetView::materialize() const {
  HT_DCHECK(remap_.live());
  PerfCounters::global().add_materialization();
  InducedSubgraph out;
  out.graph.resize(size());
  out.old_of_new = vertices_;
  for (std::size_t i = 0; i < vertices_.size(); ++i)
    out.graph.set_vertex_weight(static_cast<VertexId>(i),
                                parent_->vertex_weight(vertices_[i]));
  // Parent edge order is preserved, matching induced_subgraph exactly.
  for (const Edge& e : parent_->edges()) {
    const VertexId nu = remap_.get(e.u);
    const VertexId nv = remap_.get(e.v);
    if (nu != -1 && nv != -1) out.graph.add_edge(nu, nv, e.weight);
  }
  out.graph.finalize();
  return out;
}

}  // namespace ht::graph
