#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

namespace ht::graph {

namespace {

bool all_unit_weights(const Graph& g) {
  for (const auto& e : g.edges())
    if (e.weight != 1.0) return false;
  return true;
}

bool all_unit_vertex_weights(const Graph& g) {
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (g.vertex_weight(v) != 1.0) return false;
  return true;
}

}  // namespace

void write_metis(const Graph& g, std::ostream& os) {
  HT_CHECK(g.finalized());
  const bool ew = !all_unit_weights(g);
  const bool vw = !all_unit_vertex_weights(g);
  os << g.num_vertices() << ' ' << g.num_edges();
  if (ew || vw) os << ' ' << (vw ? 10 : 0) + (ew ? 1 : 0);
  os << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::ostringstream line;
    if (vw) line << g.vertex_weight(v) << ' ';
    bool first = true;
    for (const auto& adj : g.neighbors(v)) {
      if (!first) line << ' ';
      first = false;
      line << adj.to + 1;
      if (ew) line << ' ' << g.edge(adj.edge).weight;
    }
    os << line.str() << '\n';
  }
}

Graph read_metis(std::istream& is) {
  std::string line;
  auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '%') return true;
    }
    return false;
  };
  HT_CHECK_MSG(next_content_line(), "empty METIS input");
  std::istringstream header(line);
  std::int64_t n = 0, m = 0;
  int fmt = 0;
  header >> n >> m;
  if (!(header >> fmt)) fmt = 0;
  const bool ew = (fmt % 10) == 1;
  const bool vw = fmt >= 10;
  HT_CHECK_MSG(n >= 0 && m >= 0, "bad METIS header");
  Graph g(static_cast<VertexId>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    HT_CHECK_MSG(next_content_line(), "missing adjacency line for vertex "
                                          << v + 1);
    std::istringstream row(line);
    if (vw) {
      double w = 1.0;
      HT_CHECK_MSG(static_cast<bool>(row >> w), "missing vertex weight");
      g.set_vertex_weight(static_cast<VertexId>(v), w);
    }
    std::int64_t to;
    while (row >> to) {
      HT_CHECK_MSG(1 <= to && to <= n, "neighbor out of range: " << to);
      double w = 1.0;
      if (ew) HT_CHECK_MSG(static_cast<bool>(row >> w), "missing edge weight");
      // Each edge appears twice; add it once, from the smaller endpoint.
      if (v < to - 1) {
        g.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(to - 1),
                   w);
      }
    }
  }
  HT_CHECK_MSG(g.num_edges() == m,
               "edge count mismatch: header says " << m << ", found "
                                                   << g.num_edges());
  g.finalize();
  return g;
}

void write_metis_file(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  HT_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_metis(g, os);
}

Graph read_metis_file(const std::string& path) {
  std::ifstream is(path);
  HT_CHECK_MSG(is.good(), "cannot open " << path);
  return read_metis(is);
}

}  // namespace ht::graph
