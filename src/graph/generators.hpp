// Graph workload generators, including the paper's lower-bound instances.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ht::graph {

/// Erdős–Rényi G(n, p). Unit weights.
Graph gnp(VertexId n, double p, ht::Rng& rng);

/// G(n, p) conditioned on connectivity: retries until connected, then adds
/// a random spanning-tree fallback if p is too small to connect within
/// `max_retries` attempts.
Graph gnp_connected(VertexId n, double p, ht::Rng& rng, int max_retries = 16);

/// rows x cols grid graph (4-neighbour), unit weights. Models the
/// scientific-computing meshes the paper's introduction motivates.
Graph grid(VertexId rows, VertexId cols);

/// Complete graph K_n with edge weight w.
Graph clique(VertexId n, Weight w = 1.0);

/// Star with `leaves` leaves; vertex 0 is the centre.
Graph star(VertexId leaves);

/// Path on n vertices.
Graph path(VertexId n);

/// Random d-regular-ish multigraph via the configuration model; parallel
/// edges collapsed (so degrees are <= d). Requires n*d even.
Graph random_regular(VertexId n, std::int32_t d, ht::Rng& rng);

/// Two G(k, p_in) communities joined by `cross_edges` random cross edges —
/// a planted-bisection instance with known upper bound `cross_edges` on OPT.
Graph planted_bisection(VertexId half, double p_in, std::int32_t cross_edges,
                        ht::Rng& rng);

/// The Figure 3 instance GH of the paper: vertex t of weight sqrt(n)
/// adjacent to u_1..u_n (weight sqrt(n)+1 each), each u_i adjacent to w_i
/// (weight 1), all w_i adjacent to v (weight n). N = 2n+2 vertices.
///
/// Layout: index 0 = t, 1..n = u_i, n+1..2n = w_i, 2n+1 = v.
struct Figure3Graph {
  Graph graph;
  VertexId t = 0;
  VertexId v = 0;
  std::vector<VertexId> u;  // u_1..u_n
  std::vector<VertexId> w;  // w_1..w_n
};
Figure3Graph figure3_gh(VertexId n);

/// Theorem 8 instance: the unweighted clique blow-up of figure3_gh. Each
/// weight-w vertex becomes a w-clique; edges between weighted vertices
/// become complete bipartite connections. All weights 1. `core[i]` lists
/// the clique (blow-up) of u_i — the "core vertices" of the proof.
struct BlowupGraph {
  Graph graph;
  std::vector<std::vector<VertexId>> core;  // per-u_i cliques
};
BlowupGraph figure3_blowup(VertexId n);

}  // namespace ht::graph
