// Graph text IO in a METIS-compatible adjacency format.
//
// Format (1-indexed):
//   line 1: n m [fmt]      fmt: 1 = edge weights, 10 = vertex weights,
//                          11 = both
//   next n lines: [vweight] neighbor [eweight] neighbor [eweight] ...
// Each undirected edge appears in both endpoint lines; weights must agree.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ht::graph {

void write_metis(const Graph& g, std::ostream& os);
Graph read_metis(std::istream& is);

void write_metis_file(const Graph& g, const std::string& path);
Graph read_metis_file(const std::string& path);

}  // namespace ht::graph
