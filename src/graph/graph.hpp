// Weighted undirected graph with vertex weights.
//
// The graph is built by add_edge() calls and then finalize()d, which
// constructs the CSR adjacency; afterwards the structure is immutable and
// safe to share across threads. Vertex weights model the vertex-cut
// instances of the paper (Section 3); edge weights model weighted edge cuts
// and clique expansions (Lemma 1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ht::graph {

using VertexId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = double;

inline constexpr Weight kInfiniteWeight = 1e100;

struct Edge {
  VertexId u = -1;
  VertexId v = -1;
  Weight weight = 1.0;
};

/// One adjacency entry: the neighbour and the id of the connecting edge.
struct AdjEntry {
  VertexId to = -1;
  EdgeId edge = -1;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(VertexId n) { resize(n); }

  void resize(VertexId n) {
    HT_CHECK(n >= 0);
    vertex_weights_.assign(static_cast<std::size_t>(n), 1.0);
    finalized_ = false;
  }

  VertexId num_vertices() const {
    return static_cast<VertexId>(vertex_weights_.size());
  }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Adds an undirected edge; self-loops are rejected (they never affect a
  /// cut). Parallel edges are allowed and behave as additive weight.
  EdgeId add_edge(VertexId u, VertexId v, Weight w = 1.0);

  const Edge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }
  const std::vector<Edge>& edges() const { return edges_; }

  Weight vertex_weight(VertexId v) const {
    return vertex_weights_[static_cast<std::size_t>(v)];
  }
  /// Allowed after finalize() (weights are not part of the CSR), but doing
  /// so reassigns uid() so cached flow networks keyed on the old weights
  /// are not served stale.
  void set_vertex_weight(VertexId v, Weight w);
  const std::vector<Weight>& vertex_weights() const { return vertex_weights_; }

  Weight total_vertex_weight() const;
  Weight total_edge_weight() const;

  /// Builds the CSR adjacency. Idempotent; must be called before
  /// neighbors()/degree().
  void finalize();
  bool finalized() const { return finalized_; }

  /// Process-unique structure id, assigned by finalize(); 0 while the graph
  /// is mutable ("uncacheable"). WorkArena keys cached flow engines on it.
  std::uint64_t uid() const { return finalized_ ? uid_ : 0; }

  std::span<const AdjEntry> neighbors(VertexId v) const {
    HT_DCHECK(finalized_);
    const auto lo = adj_offsets_[static_cast<std::size_t>(v)];
    const auto hi = adj_offsets_[static_cast<std::size_t>(v) + 1];
    return {adj_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// Number of incident edge endpoints at v (parallel edges counted).
  std::int32_t degree(VertexId v) const {
    HT_DCHECK(finalized_);
    return static_cast<std::int32_t>(
        adj_offsets_[static_cast<std::size_t>(v) + 1] -
        adj_offsets_[static_cast<std::size_t>(v)]);
  }

  /// Total weight of edges with exactly one endpoint in `in_set` (indicator
  /// over vertices). This is the edge cut delta_G(S).
  Weight cut_weight(const std::vector<bool>& in_set) const;

  /// Sum of vertex weights over a set.
  Weight set_weight(const std::vector<VertexId>& vertices) const;

  std::string debug_string() const;

 private:
  std::vector<Weight> vertex_weights_;
  std::vector<Edge> edges_;
  std::vector<std::int64_t> adj_offsets_;
  std::vector<AdjEntry> adj_;
  std::uint64_t uid_ = 0;
  bool finalized_ = false;
};

/// Labels connected components; returns (component id per vertex, count).
/// Requires a finalized graph.
std::pair<std::vector<std::int32_t>, std::int32_t> connected_components(
    const Graph& g);

/// Connected components after deleting the vertex set `removed` (indicator).
/// Removed vertices get component id -1.
std::pair<std::vector<std::int32_t>, std::int32_t>
connected_components_excluding(const Graph& g,
                               const std::vector<bool>& removed);

/// Extracts the sub-graph induced by `vertices`; `old_of_new[i]` maps the
/// new id i back to the original vertex. Vertex weights are carried over.
struct InducedSubgraph {
  Graph graph;
  std::vector<VertexId> old_of_new;
};
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<VertexId>& vertices);

/// True if the finalized graph is connected (n == 0 counts as connected).
bool is_connected(const Graph& g);

}  // namespace ht::graph
