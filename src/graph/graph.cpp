#include "graph/graph.hpp"

#include <numeric>
#include <sstream>

#include "util/work_arena.hpp"

namespace ht::graph {

EdgeId Graph::add_edge(VertexId u, VertexId v, Weight w) {
  HT_CHECK(0 <= u && u < num_vertices());
  HT_CHECK(0 <= v && v < num_vertices());
  HT_CHECK_MSG(u != v, "self-loop at vertex " << u);
  HT_CHECK(w >= 0.0);
  edges_.push_back(Edge{u, v, w});
  finalized_ = false;
  return static_cast<EdgeId>(edges_.size() - 1);
}

void Graph::set_vertex_weight(VertexId v, Weight w) {
  HT_CHECK(w >= 0.0);
  vertex_weights_[static_cast<std::size_t>(v)] = w;
  // Weights feed flow capacities: a finalized graph whose weights change
  // must present a new cache key or reused engines would answer for the
  // old weights.
  if (finalized_) uid_ = next_structure_uid();
}

Weight Graph::total_vertex_weight() const {
  return std::accumulate(vertex_weights_.begin(), vertex_weights_.end(), 0.0);
}

Weight Graph::total_edge_weight() const {
  Weight sum = 0.0;
  for (const auto& e : edges_) sum += e.weight;
  return sum;
}

void Graph::finalize() {
  if (finalized_) return;
  const auto n = static_cast<std::size_t>(num_vertices());
  adj_offsets_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    ++adj_offsets_[static_cast<std::size_t>(e.u) + 1];
    ++adj_offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) adj_offsets_[i + 1] += adj_offsets_[i];
  adj_.assign(static_cast<std::size_t>(adj_offsets_[n]), AdjEntry{});
  std::vector<std::int64_t> cursor(adj_offsets_.begin(),
                                   adj_offsets_.end() - 1);
  for (EdgeId id = 0; id < num_edges(); ++id) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] =
        AdjEntry{e.v, id};
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] =
        AdjEntry{e.u, id};
  }
  uid_ = next_structure_uid();
  finalized_ = true;
}

Weight Graph::cut_weight(const std::vector<bool>& in_set) const {
  HT_CHECK(in_set.size() == vertex_weights_.size());
  Weight sum = 0.0;
  for (const auto& e : edges_) {
    if (in_set[static_cast<std::size_t>(e.u)] !=
        in_set[static_cast<std::size_t>(e.v)])
      sum += e.weight;
  }
  return sum;
}

Weight Graph::set_weight(const std::vector<VertexId>& vertices) const {
  Weight sum = 0.0;
  for (VertexId v : vertices) sum += vertex_weight(v);
  return sum;
}

std::string Graph::debug_string() const {
  std::ostringstream os;
  os << "Graph(n=" << num_vertices() << ", m=" << num_edges() << ")";
  return os.str();
}

std::pair<std::vector<std::int32_t>, std::int32_t> connected_components(
    const Graph& g) {
  return connected_components_excluding(
      g, std::vector<bool>(static_cast<std::size_t>(g.num_vertices()), false));
}

std::pair<std::vector<std::int32_t>, std::int32_t>
connected_components_excluding(const Graph& g,
                               const std::vector<bool>& removed) {
  HT_CHECK(g.finalized());
  const auto n = static_cast<std::size_t>(g.num_vertices());
  HT_CHECK(removed.size() == n);
  std::vector<std::int32_t> comp(n, -1);
  std::int32_t count = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < g.num_vertices(); ++start) {
    const auto s = static_cast<std::size_t>(start);
    if (removed[s] || comp[s] != -1) continue;
    comp[s] = count;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const AdjEntry& a : g.neighbors(v)) {
        const auto t = static_cast<std::size_t>(a.to);
        if (removed[t] || comp[t] != -1) continue;
        comp[t] = count;
        stack.push_back(a.to);
      }
    }
    ++count;
  }
  return {std::move(comp), count};
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<VertexId>& vertices) {
  std::vector<VertexId> new_of_old(static_cast<std::size_t>(g.num_vertices()),
                                   -1);
  InducedSubgraph out;
  out.graph.resize(static_cast<VertexId>(vertices.size()));
  out.old_of_new = vertices;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId old = vertices[i];
    HT_CHECK(0 <= old && old < g.num_vertices());
    HT_CHECK_MSG(new_of_old[static_cast<std::size_t>(old)] == -1,
                 "duplicate vertex " << old << " in induced_subgraph");
    new_of_old[static_cast<std::size_t>(old)] = static_cast<VertexId>(i);
    out.graph.set_vertex_weight(static_cast<VertexId>(i),
                                g.vertex_weight(old));
  }
  for (const Edge& e : g.edges()) {
    const VertexId nu = new_of_old[static_cast<std::size_t>(e.u)];
    const VertexId nv = new_of_old[static_cast<std::size_t>(e.v)];
    if (nu != -1 && nv != -1) out.graph.add_edge(nu, nv, e.weight);
  }
  out.graph.finalize();
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).second == 1;
}

}  // namespace ht::graph
