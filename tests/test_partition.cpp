#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "partition/exact.hpp"
#include "partition/fm.hpp"
#include "partition/min_ratio_cut.hpp"
#include "partition/mku.hpp"
#include "partition/sparsest_cut.hpp"
#include "partition/unbalanced_kcut.hpp"
#include "reduction/clique_expansion.hpp"
#include "util/rng.hpp"

namespace {

using ht::graph::Graph;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

// ---------- min-ratio vertex cut ----------

TEST(MinRatioCut, ExactOnPath) {
  // Path of 5: best separator is the middle vertex; sparsity
  // 1 / (2 + 1) = 1/3.
  const Graph g = ht::graph::path(5);
  const auto sep = ht::partition::min_ratio_vertex_cut_exact(g);
  ASSERT_TRUE(sep.valid);
  EXPECT_NEAR(sep.sparsity, 1.0 / 3.0, 1e-9);
  EXPECT_EQ(sep.x.size(), 1u);
}

TEST(MinRatioCut, ExactOnDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const auto sep = ht::partition::min_ratio_vertex_cut_exact(g);
  ASSERT_TRUE(sep.valid);
  EXPECT_DOUBLE_EQ(sep.sparsity, 0.0);
  EXPECT_TRUE(sep.x.empty());
}

TEST(MinRatioCut, SparsityValidatorRejectsCrossingEdges) {
  const Graph g = ht::graph::path(3);
  ht::partition::VertexSeparator bad;
  bad.a = {0};
  bad.b = {1};
  bad.x = {2};
  EXPECT_THROW(ht::partition::separator_sparsity(g, bad), std::logic_error);
}

TEST(MinRatioCut, HeuristicValidAndMeasuredAlpha) {
  // On small instances the heuristic's sparsity should be within a modest
  // factor of the exact optimum (this pins the measured alpha).
  ht::Rng rng(3);
  double worst_alpha = 1.0;
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = ht::graph::gnp_connected(12, 0.25, rng);
    const auto exact = ht::partition::min_ratio_vertex_cut_exact(g);
    ht::Rng heuristic_rng(trial);
    const auto heur = ht::partition::min_ratio_vertex_cut(g, heuristic_rng);
    if (!exact.valid) continue;
    ASSERT_TRUE(heur.valid);
    const double check = ht::partition::separator_sparsity(g, heur);
    EXPECT_NEAR(check, heur.sparsity, 1e-9);
    if (exact.sparsity > 0)
      worst_alpha = std::max(worst_alpha, heur.sparsity / exact.sparsity);
  }
  EXPECT_LE(worst_alpha, 4.0) << "heuristic min-ratio cut strayed too far";
}

TEST(MinRatioCut, HeuristicOnWeightedFigure3) {
  const auto fig = ht::graph::figure3_gh(16);
  ht::Rng rng(5);
  const auto sep = ht::partition::min_ratio_vertex_cut(fig.graph, rng);
  ASSERT_TRUE(sep.valid);
  // Sanity: a valid separator with sparsity < 1.
  EXPECT_LT(sep.sparsity, 1.0);
}

// ---------- sparsest hyperedge cut ----------

TEST(SparsestCut, ExactOnTwoClusters) {
  // Two triangles joined by one 2-pin edge: the optimum is the joint.
  Hypergraph h(6);
  h.add_edge({0, 1, 2});
  h.add_edge({0, 1});
  h.add_edge({3, 4, 5});
  h.add_edge({4, 5});
  h.add_edge({2, 3});
  h.finalize();
  const auto cut = ht::partition::sparsest_hyperedge_cut_exact(h);
  ASSERT_TRUE(cut.valid);
  EXPECT_DOUBLE_EQ(cut.cut, 1.0);
  EXPECT_EQ(cut.smaller_side.size(), 3u);
  EXPECT_NEAR(cut.sparsity, 1.0 / 3.0, 1e-9);
}

TEST(SparsestCut, HeuristicNearExactOnSmall) {
  ht::Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const Hypergraph h = ht::hypergraph::random_uniform(12, 18, 3, rng);
    const auto exact = ht::partition::sparsest_hyperedge_cut_exact(h);
    ht::Rng hrng(trial + 100);
    const auto heur = ht::partition::sparsest_hyperedge_cut(h, hrng);
    if (!exact.valid || !heur.valid) continue;
    EXPECT_LE(exact.sparsity, heur.sparsity + 1e-9);
    EXPECT_LE(heur.sparsity, 5.0 * exact.sparsity + 1e-9) << "trial " << trial;
  }
}

TEST(SparsestCut, DisconnectedIsFree) {
  Hypergraph h(5);
  h.add_edge({0, 1});
  h.add_edge({3, 4});
  h.finalize();
  ht::Rng rng(9);
  const auto cut = ht::partition::sparsest_hyperedge_cut(h, rng);
  ASSERT_TRUE(cut.valid);
  EXPECT_DOUBLE_EQ(cut.cut, 0.0);
  EXPECT_DOUBLE_EQ(cut.sparsity, 0.0);
}

// ---------- FM ----------

TEST(Fm, RefineKeepsBalanceAndImproves) {
  ht::Rng rng(11);
  const Hypergraph h = ht::hypergraph::planted_bisection(10, 3, 30, 2, rng);
  std::vector<bool> start(20, false);
  for (VertexId v = 0; v < 10; ++v) start[static_cast<std::size_t>(2 * v)] =
      true;  // interleaved = bad start
  const double start_cut = h.cut_weight(start);
  const auto refined = ht::partition::fm_refine(h, start);
  ht::partition::validate_bisection(h, refined);
  EXPECT_LE(refined.cut, start_cut);
}

TEST(Fm, RecoversPlantedBisection) {
  ht::Rng rng(13);
  const Hypergraph h = ht::hypergraph::planted_bisection(12, 3, 60, 2, rng);
  const auto sol = ht::partition::fm_bisection(h, rng, 8);
  ht::partition::validate_bisection(h, sol);
  EXPECT_LE(sol.cut, 2.0 + 1e-9);
}

TEST(Fm, MatchesExactOnSmallInstances) {
  ht::Rng rng(17);
  int optimal_hits = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Hypergraph h = ht::hypergraph::random_uniform(10, 16, 3, rng);
    const auto exact = ht::partition::exact_hypergraph_bisection(h);
    const auto fm = ht::partition::fm_bisection(h, rng, 12);
    EXPECT_GE(fm.cut, exact.cut - 1e-9);
    if (fm.cut <= exact.cut + 1e-9) ++optimal_hits;
  }
  EXPECT_GE(optimal_hits, 4) << "FM should usually find the optimum at n=10";
}

TEST(Fm, RejectsUnbalancedStart) {
  Hypergraph h(4);
  h.add_edge({0, 1});
  h.finalize();
  EXPECT_THROW(
      ht::partition::fm_refine(h, {true, true, true, false}),
      std::logic_error);
}

TEST(Fm, ValidatorCatchesCorruptedSolution) {
  Hypergraph h(4);
  h.add_edge({0, 1});
  h.finalize();
  ht::partition::BisectionSolution bad;
  bad.valid = true;
  bad.side = {true, true, false, false};
  bad.cut = 12345.0;
  EXPECT_THROW(ht::partition::validate_bisection(h, bad), std::logic_error);
}

// ---------- unbalanced k-cut ----------

TEST(KCut, ExactSimple) {
  // Path hypergraph 0-1-2-3-4: removing {0} cuts 1 edge; removing {0,1}
  // cuts 1 edge.
  Hypergraph h(5);
  for (VertexId v = 0; v + 1 < 5; ++v) h.add_edge({v, v + 1});
  h.finalize();
  const auto one = ht::partition::unbalanced_kcut_exact(h, 1);
  ASSERT_TRUE(one.valid);
  EXPECT_DOUBLE_EQ(one.cut, 1.0);
  const auto two = ht::partition::unbalanced_kcut_exact(h, 2);
  ASSERT_TRUE(two.valid);
  EXPECT_DOUBLE_EQ(two.cut, 1.0);
}

TEST(KCut, HeuristicNearExact) {
  ht::Rng rng(19);
  for (int trial = 0; trial < 5; ++trial) {
    const Hypergraph h = ht::hypergraph::random_uniform(14, 22, 3, rng);
    for (std::int32_t k : {2, 4, 7}) {
      const auto exact = ht::partition::unbalanced_kcut_exact(h, k);
      ht::Rng hrng(trial * 10 + k);
      const auto heur = ht::partition::unbalanced_kcut(h, k, hrng);
      ASSERT_TRUE(heur.valid);
      EXPECT_EQ(static_cast<std::int32_t>(heur.set.size()), k);
      EXPECT_GE(heur.cut, exact.cut - 1e-9);
      EXPECT_LE(heur.cut, 3.0 * exact.cut + 3.0) << "k=" << k;
      // Witness re-evaluation agrees.
      EXPECT_NEAR(heur.cut, h.cut_weight(heur.set), 1e-9);
    }
  }
}

TEST(KCut, ProfileIsConsistent) {
  ht::Rng rng(23);
  const Hypergraph h = ht::hypergraph::random_uniform(20, 30, 4, rng);
  const auto profile = ht::partition::unbalanced_kcut_profile(h, 10, rng);
  ASSERT_EQ(profile.cost.size(), 11u);
  EXPECT_DOUBLE_EQ(profile.cost[0], 0.0);
  for (std::size_t k = 1; k <= 10; ++k) {
    ASSERT_EQ(profile.sets[k].size(), k) << "k=" << k;
    EXPECT_NEAR(profile.cost[k], h.cut_weight(profile.sets[k]), 1e-9);
  }
}

TEST(KCut, CliqueExpansionPathMatchesPropositionOne) {
  ht::Rng rng(29);
  const Hypergraph h = ht::hypergraph::random_uniform(14, 20, 4, rng);
  for (std::int32_t k : {3, 6}) {
    const auto exact = ht::partition::unbalanced_kcut_exact(h, k);
    ht::Rng hrng(k);
    const auto viaclique =
        ht::partition::unbalanced_kcut_via_clique_expansion(h, k, hrng);
    ASSERT_TRUE(viaclique.valid);
    // Proposition 1 bound (with our heuristic in place of the O(log n)
    // black box): within min(k, hmax/2) * small factor of optimum.
    const double bound = ht::reduction::lemma1_bound(k, h.max_edge_size());
    EXPECT_LE(viaclique.cut, bound * 4.0 * std::max(exact.cut, 1.0))
        << "k=" << k;
  }
}

TEST(KCut, GraphVariant) {
  ht::Rng rng(31);
  const Graph g = ht::graph::grid(4, 5);
  const auto cut = ht::partition::unbalanced_kcut_graph(g, 4, rng);
  ASSERT_TRUE(cut.valid);
  EXPECT_EQ(cut.set.size(), 4u);
  // A 2x2 corner block of the grid cuts 4 edges.
  EXPECT_LE(cut.cut, 4.0 + 1e-9);
}

// ---------- MkU ----------

TEST(Mku, GreedyOnDisjointSets) {
  Hypergraph h(9);
  h.add_edge({0, 1});           // size 2
  h.add_edge({2, 3, 4});        // size 3
  h.add_edge({5, 6, 7, 8});     // size 4
  h.finalize();
  const auto sol = ht::partition::mku_greedy(h, 2);
  ASSERT_TRUE(sol.valid);
  EXPECT_DOUBLE_EQ(sol.union_weight, 5.0);  // sizes 2 + 3
}

TEST(Mku, GreedyExploitsOverlap) {
  Hypergraph h(6);
  h.add_edge({0, 1, 2});
  h.add_edge({0, 1, 3});  // overlaps the first
  h.add_edge({4, 5});
  h.finalize();
  const auto sol = ht::partition::mku_greedy(h, 2);
  // Greedy takes {4,5} first (size 2) then one triple: union 5. The true
  // optimum is the two overlapping triples: union 4. Local search fixes it.
  const auto improved = ht::partition::mku_local_search(h, 2);
  EXPECT_DOUBLE_EQ(improved.union_weight, 4.0);
  EXPECT_GE(sol.union_weight, improved.union_weight);
}

TEST(Mku, ExactMatchesEnumeration) {
  ht::Rng rng(37);
  const Hypergraph h = ht::hypergraph::random_uniform(12, 10, 3, rng);
  for (std::int32_t k : {2, 3, 5}) {
    const auto exact = ht::partition::mku_exact(h, k);
    const auto greedy = ht::partition::mku_local_search(h, k);
    ASSERT_TRUE(exact.valid);
    EXPECT_GE(greedy.union_weight, exact.union_weight - 1e-9);
    EXPECT_LE(greedy.union_weight, 2.0 * exact.union_weight + 1e-9)
        << "k=" << k;
  }
}

// ---------- exact bisection ----------

TEST(ExactBisection, KnownOptimum) {
  // Two triangles plus one cross edge: optimum = 1.
  Hypergraph h(6);
  h.add_edge({0, 1, 2});
  h.add_edge({3, 4, 5});
  h.add_edge({2, 3});
  h.finalize();
  const auto sol = ht::partition::exact_hypergraph_bisection(h);
  ASSERT_TRUE(sol.valid);
  EXPECT_DOUBLE_EQ(sol.cut, 1.0);
}

TEST(ExactBisection, GraphWrapper) {
  const Graph g = ht::graph::grid(2, 4);
  const auto sol = ht::partition::exact_graph_bisection(g);
  ASSERT_TRUE(sol.valid);
  EXPECT_DOUBLE_EQ(sol.cut, 2.0);  // split the 2x4 grid down the middle
}

TEST(ExactBisection, RejectsOddVertexCount) {
  Hypergraph h(3);
  h.add_edge({0, 1});
  h.finalize();
  EXPECT_THROW(ht::partition::exact_hypergraph_bisection(h),
               std::logic_error);
}

}  // namespace
