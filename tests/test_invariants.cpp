// Small algebraic invariants of the cut primitives, checked over random
// instances: complement symmetry, touching-vs-cut dominance, contraction
// idempotence, monotonicity of cut values under edge addition, and
// generator safety rails.
#include <gtest/gtest.h>

#include <cmath>

#include "hypergraph/generators.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

class CutAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutAlgebra, CutIsComplementSymmetric) {
  ht::Rng rng(GetParam());
  const Hypergraph h = ht::hypergraph::random_uniform(16, 28, 3, rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> side(16, false);
    for (int v = 0; v < 16; ++v) side[static_cast<std::size_t>(v)] =
        rng.next_bool();
    std::vector<bool> complement = side;
    complement.flip();
    EXPECT_DOUBLE_EQ(h.cut_weight(side), h.cut_weight(complement));
  }
}

TEST_P(CutAlgebra, TouchingDominatesCut) {
  ht::Rng rng(GetParam() * 3 + 1);
  const Hypergraph h = ht::hypergraph::random_uniform(16, 28, 4, rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> side(16, false);
    for (int v = 0; v < 16; ++v) side[static_cast<std::size_t>(v)] =
        rng.next_bool(0.3);
    // Every cut hyperedge touches S, so touching weight >= cut weight.
    EXPECT_GE(h.touching_weight(side), h.cut_weight(side) - 1e-12);
  }
}

TEST_P(CutAlgebra, CutSubadditiveOverUnion) {
  // delta(S ∪ T) <= delta(S) + delta(T) for disjoint S, T (each cut edge
  // of the union is cut by S or by T... in hypergraphs an edge cut by the
  // union must have a pin outside and a pin inside, hence inside S or T,
  // and a pin outside both, so it is cut by that part). Checks the
  // submodular flavor our Gomory–Hu construction relies on.
  ht::Rng rng(GetParam() * 7 + 5);
  const Hypergraph h = ht::hypergraph::random_uniform(18, 30, 3, rng);
  for (int trial = 0; trial < 10; ++trial) {
    auto pick = rng.sample_without_replacement(18, 8);
    std::vector<bool> s(18, false), t(18, false), u(18, false);
    for (int i = 0; i < 4; ++i) {
      s[static_cast<std::size_t>(pick[static_cast<std::size_t>(i)])] = true;
      u[static_cast<std::size_t>(pick[static_cast<std::size_t>(i)])] = true;
    }
    for (int i = 4; i < 8; ++i) {
      t[static_cast<std::size_t>(pick[static_cast<std::size_t>(i)])] = true;
      u[static_cast<std::size_t>(pick[static_cast<std::size_t>(i)])] = true;
    }
    EXPECT_LE(h.cut_weight(u), h.cut_weight(s) + h.cut_weight(t) + 1e-9);
  }
}

TEST_P(CutAlgebra, ContractionIsIdempotentOnIdentity) {
  ht::Rng rng(GetParam() * 11 + 3);
  const Hypergraph h = ht::hypergraph::random_uniform(12, 20, 3, rng);
  std::vector<std::int32_t> identity(12);
  for (int v = 0; v < 12; ++v) identity[static_cast<std::size_t>(v)] = v;
  const auto same = ht::hypergraph::contract(h, identity, 12);
  EXPECT_EQ(same.num_vertices(), h.num_vertices());
  // Edge multiset may merge duplicates, but total weight and all cut
  // values must be preserved.
  EXPECT_NEAR(same.total_edge_weight(), h.total_edge_weight(), 1e-9);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<bool> side(12, false);
    for (int v = 0; v < 12; ++v) side[static_cast<std::size_t>(v)] =
        rng.next_bool();
    EXPECT_NEAR(same.cut_weight(side), h.cut_weight(side), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutAlgebra,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(GeneratorSafety, GnprRefusesToExplode) {
  // Dense parameters must be capped, not allocate hundreds of millions of
  // edges.
  ht::Rng rng(1);
  const Hypergraph h = ht::hypergraph::gnpr(64, 0.9, 3, rng);
  EXPECT_LE(h.num_edges(), 2'100'000);
}

TEST(GeneratorSafety, PlantedBisectionDegenerateCross) {
  ht::Rng rng(2);
  const Hypergraph h = ht::hypergraph::planted_bisection(8, 3, 10, 0, rng);
  std::vector<bool> planted(16, false);
  for (int v = 8; v < 16; ++v) planted[static_cast<std::size_t>(v)] = true;
  EXPECT_DOUBLE_EQ(h.cut_weight(planted), 0.0);
}

}  // namespace
