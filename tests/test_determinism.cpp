// Thread-count invariance of the parallel decomposition engine.
//
// Every parallel code path derives its randomness from (seed, work-item
// index) and applies results in serial item order, so running with 1
// thread and with 4 threads must produce byte-identical outputs. These
// tests pin that contract for each routed subsystem; CI additionally runs
// them under HT_THREADS=1 and HT_THREADS=4.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/bisection.hpp"
#include "cuttree/decomposition_tree.hpp"
#include "cuttree/tree.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/flow_network.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "partition/kway.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

// Runs `build` under a 1-thread pool and a 4-thread pool and returns both
// results; restores the configured default pool afterwards.
template <typename Build>
auto one_vs_four(Build&& build) {
  ht::ThreadPool::reset_global(1);
  auto serial = build();
  ht::ThreadPool::reset_global(4);
  auto parallel = build();
  ht::ThreadPool::reset_global();
  return std::make_pair(std::move(serial), std::move(parallel));
}

TEST(Determinism, DecompositionTreeAcrossThreadCounts) {
  ht::Rng rng(4242);
  const auto g = ht::graph::gnp_connected(80, 5.0 / 80, rng);
  auto [serial, parallel] = one_vs_four(
      [&g] { return ht::cuttree::build_decomposition_tree(g); });
  EXPECT_EQ(ht::cuttree::tree_signature(serial),
            ht::cuttree::tree_signature(parallel));
}

TEST(Determinism, Theorem1BisectionAcrossThreadCounts) {
  ht::Rng rng(777);
  const auto h = ht::hypergraph::random_uniform(40, 80, 3, rng);
  auto [serial, parallel] =
      one_vs_four([&h] { return ht::core::bisect_theorem1(h); });
  EXPECT_EQ(serial.solution.side, parallel.solution.side);
  EXPECT_DOUBLE_EQ(serial.solution.cut, parallel.solution.cut);
  EXPECT_DOUBLE_EQ(serial.opt_guess, parallel.opt_guess);
  EXPECT_EQ(serial.phase1_pieces, parallel.phase1_pieces);
  EXPECT_DOUBLE_EQ(serial.phase1_cut, parallel.phase1_cut);
  EXPECT_DOUBLE_EQ(serial.dp_estimate, parallel.dp_estimate);
}

TEST(Determinism, GomoryHuAcrossThreadCounts) {
  // The batched speculative build must reproduce the serial Gusfield
  // sequence exactly: stale speculations are recomputed, so the tree is
  // independent of batch size and thread count.
  ht::Rng rng(1313);
  const auto g = ht::graph::gnp_connected(60, 6.0 / 60, rng);
  auto [serial, parallel] =
      one_vs_four([&g] { return ht::flow::gomory_hu(g); });
  EXPECT_EQ(serial.parent, parallel.parent);
  EXPECT_EQ(serial.parent_cut, parallel.parent_cut);
}

TEST(Determinism, HypergraphGomoryHuAcrossThreadCounts) {
  ht::Rng rng(99);
  const auto h = ht::hypergraph::random_uniform(36, 70, 3, rng);
  auto [serial, parallel] =
      one_vs_four([&h] { return ht::flow::hypergraph_gomory_hu(h); });
  EXPECT_EQ(serial.parent, parallel.parent);
  EXPECT_EQ(serial.parent_cut, parallel.parent_cut);
}

TEST(Determinism, VertexCutTreeViewPathAcrossThreadCounts) {
  // Deep-recursion configuration: every wave runs SubsetView + the
  // vertex-cut flow arena on worker threads (thread-local caches), so this
  // pins the refactored view path, not just the top-level split.
  ht::Rng rng(2024);
  const auto g = ht::graph::gnp_connected(60, 5.0 / 60, rng);
  ht::cuttree::VertexCutTreeOptions opt;
  opt.threshold_override = 0.75;
  auto [serial, parallel] = one_vs_four(
      [&] { return ht::cuttree::build_vertex_cut_tree(g, opt); });
  EXPECT_EQ(ht::cuttree::tree_signature(serial.tree),
            ht::cuttree::tree_signature(parallel.tree));
  EXPECT_DOUBLE_EQ(serial.separator_weight, parallel.separator_weight);
  EXPECT_EQ(serial.num_pieces, parallel.num_pieces);
}

TEST(Determinism, GomoryHuIndependentOfFlowReuse) {
  // The engine cache is a per-thread performance detail: turning it off
  // (fresh FlowNetwork per query, the pre-refactor behaviour) must not
  // move a byte, under either thread count.
  ht::Rng rng(1313);
  const auto g = ht::graph::gnp_connected(60, 6.0 / 60, rng);
  auto [serial, parallel] = one_vs_four([&g] {
    ht::flow::FlowReuseScope off(false);
    return ht::flow::gomory_hu(g);
  });
  const auto reused = ht::flow::gomory_hu(g);
  EXPECT_EQ(serial.parent, parallel.parent);
  EXPECT_EQ(serial.parent_cut, parallel.parent_cut);
  EXPECT_EQ(serial.parent, reused.parent);
  EXPECT_EQ(serial.parent_cut, reused.parent_cut);
}

TEST(Determinism, KWayRecursiveBisectionAcrossRuns) {
  // kway uses SubsetView at every recursion level; same seed, same part.
  ht::Rng rng(31);
  const auto h = ht::hypergraph::random_uniform(32, 64, 3, rng);
  ht::Rng r1(5), r2(5);
  const auto a = ht::partition::kway_recursive_bisection(h, 4, r1);
  const auto b = ht::partition::kway_recursive_bisection(h, 4, r2);
  EXPECT_EQ(a.part, b.part);
  EXPECT_DOUBLE_EQ(a.cut, b.cut);
}

}  // namespace
