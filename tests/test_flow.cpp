#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "flow/dinic.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "util/rng.hpp"
#include "util/subsets.hpp"

namespace {

using ht::flow::Dinic;
using ht::graph::Graph;
using ht::graph::VertexId;
using ht::hypergraph::Hypergraph;

// ---------- brute-force references ----------

double brute_edge_cut(const Graph& g, const std::vector<VertexId>& a,
                      const std::vector<VertexId>& b) {
  const int n = g.num_vertices();
  std::vector<int> free_vertices;
  std::vector<bool> base(static_cast<std::size_t>(n), false);
  std::vector<bool> fixed(static_cast<std::size_t>(n), false);
  for (VertexId v : a) {
    base[static_cast<std::size_t>(v)] = true;
    fixed[static_cast<std::size_t>(v)] = true;
  }
  for (VertexId v : b) fixed[static_cast<std::size_t>(v)] = true;
  for (int v = 0; v < n; ++v)
    if (!fixed[static_cast<std::size_t>(v)]) free_vertices.push_back(v);
  double best = std::numeric_limits<double>::infinity();
  ht::for_each_subset(static_cast<int>(free_vertices.size()),
                      [&](std::uint32_t mask) {
                        auto side = base;
                        for (std::size_t i = 0; i < free_vertices.size(); ++i)
                          if (mask & (1u << i))
                            side[static_cast<std::size_t>(free_vertices[i])] =
                                true;
                        best = std::min(best, g.cut_weight(side));
                      });
  return best;
}

double brute_vertex_cut(const Graph& g, const std::vector<VertexId>& a,
                        const std::vector<VertexId>& b) {
  const int n = g.num_vertices();
  double best = std::numeric_limits<double>::infinity();
  ht::for_each_subset(n, [&](std::uint32_t mask) {
    const auto cut = ht::mask_to_vertices(mask, n);
    if (!ht::flow::vertex_cut_separates(g, cut, a, b)) return;
    double w = 0.0;
    for (VertexId v : cut) w += g.vertex_weight(v);
    best = std::min(best, w);
  });
  return best;
}

double brute_hyperedge_cut(const Hypergraph& h,
                           const std::vector<VertexId>& a,
                           const std::vector<VertexId>& b) {
  const int n = h.num_vertices();
  std::vector<int> free_vertices;
  std::vector<bool> base(static_cast<std::size_t>(n), false);
  std::vector<bool> fixed(static_cast<std::size_t>(n), false);
  for (VertexId v : a) {
    base[static_cast<std::size_t>(v)] = true;
    fixed[static_cast<std::size_t>(v)] = true;
  }
  for (VertexId v : b) fixed[static_cast<std::size_t>(v)] = true;
  for (int v = 0; v < n; ++v)
    if (!fixed[static_cast<std::size_t>(v)]) free_vertices.push_back(v);
  double best = std::numeric_limits<double>::infinity();
  ht::for_each_subset(static_cast<int>(free_vertices.size()),
                      [&](std::uint32_t mask) {
                        auto side = base;
                        for (std::size_t i = 0; i < free_vertices.size(); ++i)
                          if (mask & (1u << i))
                            side[static_cast<std::size_t>(free_vertices[i])] =
                                true;
                        best = std::min(best, h.cut_weight(side));
                      });
  return best;
}

// ---------- Dinic on hand-built networks ----------

TEST(Dinic, TextbookNetwork) {
  Dinic<double> d(4);
  d.add_arc(0, 1, 3.0);
  d.add_arc(0, 2, 2.0);
  d.add_arc(1, 2, 5.0);
  d.add_arc(1, 3, 2.0);
  d.add_arc(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(d.max_flow(0, 3), 5.0);
}

TEST(Dinic, DisconnectedSinkZeroFlow) {
  Dinic<double> d(3);
  d.add_arc(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(d.max_flow(0, 2), 0.0);
  const auto side = d.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
}

TEST(Dinic, IntegerCapacities) {
  Dinic<std::int64_t> d(4);
  d.add_arc(0, 1, 10);
  d.add_arc(1, 3, 7);
  d.add_arc(0, 2, 5);
  d.add_arc(2, 3, 5);
  EXPECT_EQ(d.max_flow(0, 3), 12);
}

TEST(Dinic, UndirectedEdgeCarriesBothWays) {
  Dinic<double> d(3);
  d.add_undirected(0, 1, 2.0);
  d.add_undirected(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(d.max_flow(0, 2), 2.0);
  Dinic<double> d2(3);
  d2.add_undirected(0, 1, 2.0);
  d2.add_undirected(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(d2.max_flow(2, 0), 2.0);
}

TEST(Dinic, FractionalCapacities) {
  // Clique-expansion-style weights 1/(|h|-1).
  Dinic<double> d(3);
  d.add_undirected(0, 1, 1.0 / 3.0);
  d.add_undirected(1, 2, 1.0 / 3.0);
  d.add_undirected(0, 2, 1.0 / 3.0);
  EXPECT_NEAR(d.max_flow(0, 2), 2.0 / 3.0, 1e-9);
}

// ---------- min_edge_cut ----------

TEST(MinEdgeCut, PathGraph) {
  const Graph g = ht::graph::path(5);
  const auto cut = ht::flow::min_edge_cut(g, {0}, {4});
  EXPECT_DOUBLE_EQ(cut.value, 1.0);
  EXPECT_EQ(cut.cut_edges.size(), 1u);
}

TEST(MinEdgeCut, WeightedChoice) {
  Graph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 10.0);
  g.finalize();
  const auto cut = ht::flow::min_edge_cut(g, {0}, {3});
  EXPECT_DOUBLE_EQ(cut.value, 1.0);
  EXPECT_EQ(cut.cut_edges, (std::vector<ht::graph::EdgeId>{1}));
}

TEST(MinEdgeCut, MultiTerminalSets) {
  const Graph g = ht::graph::grid(3, 3);
  const auto cut = ht::flow::min_edge_cut(g, {0, 1, 2}, {6, 7, 8});
  // Separating top row from bottom row of a 3x3 grid costs 3.
  EXPECT_DOUBLE_EQ(cut.value, 3.0);
}

TEST(MinEdgeCut, RejectsOverlap) {
  const Graph g = ht::graph::path(3);
  EXPECT_THROW(ht::flow::min_edge_cut(g, {0, 1}, {1, 2}), std::logic_error);
  EXPECT_THROW(ht::flow::min_edge_cut(g, {}, {1}), std::logic_error);
}

// ---------- min_vertex_cut ----------

TEST(MinVertexCut, PathMiddleVertex) {
  // Path 0-1-2: every single vertex is an optimal cut (the cut may use A or
  // B itself); the value must be 1 and the witness must separate.
  const Graph g = ht::graph::path(3);
  const auto cut = ht::flow::min_vertex_cut(g, {0}, {2});
  EXPECT_DOUBLE_EQ(cut.value, 1.0);
  EXPECT_EQ(cut.cut_vertices.size(), 1u);
  EXPECT_TRUE(ht::flow::vertex_cut_separates(g, cut.cut_vertices, {0}, {2}));
}

TEST(MinVertexCut, MiddleForcedWhenTerminalsHeavy) {
  Graph g = ht::graph::path(3);
  g.set_vertex_weight(0, 10.0);
  g.set_vertex_weight(2, 10.0);
  const auto cut = ht::flow::min_vertex_cut(g, {0}, {2});
  EXPECT_DOUBLE_EQ(cut.value, 1.0);
  EXPECT_EQ(cut.cut_vertices, (std::vector<VertexId>{1}));
}

TEST(MinVertexCut, AdjacentTerminalsUseTerminal) {
  // 0-1 edge: the only vertex cuts are {0} or {1} (cut may include A/B).
  const Graph g = ht::graph::path(2);
  const auto cut = ht::flow::min_vertex_cut(g, {0}, {1});
  EXPECT_DOUBLE_EQ(cut.value, 1.0);
  EXPECT_EQ(cut.cut_vertices.size(), 1u);
}

TEST(MinVertexCut, WeightsSteerTheCut) {
  // 0 - 1 - 3 and 0 - 2 - 3 with w(1) = 5, w(2) = 1: cutting both middles
  // costs 6; cutting 0 costs w(0)=1? Set w(0)=w(3)=10 to force middles.
  Graph g(4);
  g.set_vertex_weight(0, 10.0);
  g.set_vertex_weight(3, 10.0);
  g.set_vertex_weight(1, 5.0);
  g.set_vertex_weight(2, 1.0);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.finalize();
  const auto cut = ht::flow::min_vertex_cut(g, {0}, {3});
  EXPECT_DOUBLE_EQ(cut.value, 6.0);
}

TEST(MinVertexCut, SeparatesPredicate) {
  const Graph g = ht::graph::grid(3, 3);
  EXPECT_TRUE(ht::flow::vertex_cut_separates(g, {1, 4, 7}, {0}, {2}));
  EXPECT_FALSE(ht::flow::vertex_cut_separates(g, {4}, {0}, {2}));
  EXPECT_TRUE(ht::flow::vertex_cut_separates(g, {0}, {0}, {2}));  // A in cut
}

// ---------- min_hyperedge_cut ----------

TEST(MinHyperedgeCut, SingleSpanningEdge) {
  const Hypergraph h = ht::hypergraph::single_spanning_edge(6, 2.5);
  const auto cut = ht::flow::min_hyperedge_cut(h, {0}, {5});
  EXPECT_DOUBLE_EQ(cut.value, 2.5);
  EXPECT_EQ(cut.cut_edges, (std::vector<ht::hypergraph::EdgeId>{0}));
}

TEST(MinHyperedgeCut, ChoosesCheapSeparator) {
  Hypergraph h(5);
  h.add_edge({0, 1, 2}, 5.0);
  h.add_edge({2, 3}, 1.0);
  h.add_edge({3, 4}, 5.0);
  h.finalize();
  const auto cut = ht::flow::min_hyperedge_cut(h, {0}, {4});
  EXPECT_DOUBLE_EQ(cut.value, 1.0);
  EXPECT_EQ(cut.cut_edges, (std::vector<ht::hypergraph::EdgeId>{1}));
}

TEST(MinHyperedgeCut, SeparatesPredicate) {
  Hypergraph h(4);
  h.add_edge({0, 1});
  h.add_edge({1, 2});
  h.add_edge({2, 3});
  h.finalize();
  EXPECT_TRUE(ht::flow::hyperedge_cut_separates(h, {1}, {0}, {3}));
  // Removing edge {0,1} isolates 0 — that DOES separate {0} from {3}.
  EXPECT_TRUE(ht::flow::hyperedge_cut_separates(h, {0}, {0}, {3}));
  // But it does not separate {1} from {3}.
  EXPECT_FALSE(ht::flow::hyperedge_cut_separates(h, {0}, {1}, {3}));
  EXPECT_FALSE(ht::flow::hyperedge_cut_separates(h, {}, {0}, {3}));
}

TEST(MinHyperedgeCut, Figure2CutValues) {
  const auto fig = ht::hypergraph::figure2(9);
  // gamma between two u's: the heavy hyperedge and... between u_0 and u_1:
  // cut star edge of u_0 (1) + heavy edge (3) = 4, or both star edges = 2 +
  // heavy 3 = ... minimum separating {u0},{u1}: cut heavy edge + u0's star
  // edge = 3+1 = 4; or heavy + u1's star = 4. delta = 4.
  const auto cut =
      ht::flow::min_hyperedge_cut(fig.hypergraph, {fig.u[0]}, {fig.u[1]});
  EXPECT_DOUBLE_EQ(cut.value, 4.0);
}

// ---------- randomized property suites ----------

struct FlowParam {
  int n;
  double p;
  std::uint64_t seed;
};

class EdgeCutProperty : public ::testing::TestWithParam<FlowParam> {};

TEST_P(EdgeCutProperty, MatchesBruteForce) {
  const auto param = GetParam();
  ht::Rng rng(param.seed);
  const Graph g = ht::graph::gnp(param.n, param.p, rng);
  for (int trial = 0; trial < 8; ++trial) {
    auto pick = rng.sample_without_replacement(param.n, 2);
    const std::vector<VertexId> a{pick[0]}, b{pick[1]};
    const auto flow_cut = ht::flow::min_edge_cut(g, a, b);
    EXPECT_NEAR(flow_cut.value, brute_edge_cut(g, a, b), 1e-9);
  }
}

class VertexCutProperty : public ::testing::TestWithParam<FlowParam> {};

TEST_P(VertexCutProperty, MatchesBruteForce) {
  const auto param = GetParam();
  ht::Rng rng(param.seed * 31 + 1);
  Graph g = ht::graph::gnp(param.n, param.p, rng);
  // Random integer vertex weights.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    g.set_vertex_weight(v, static_cast<double>(1 + rng.next_below(4)));
  for (int trial = 0; trial < 6; ++trial) {
    auto pick = rng.sample_without_replacement(param.n, 2);
    const std::vector<VertexId> a{pick[0]}, b{pick[1]};
    const auto flow_cut = ht::flow::min_vertex_cut(g, a, b);
    EXPECT_NEAR(flow_cut.value, brute_vertex_cut(g, a, b), 1e-9);
    EXPECT_TRUE(ht::flow::vertex_cut_separates(g, flow_cut.cut_vertices, a, b));
  }
}

class HyperedgeCutProperty : public ::testing::TestWithParam<FlowParam> {};

TEST_P(HyperedgeCutProperty, MatchesBruteForce) {
  const auto param = GetParam();
  ht::Rng rng(param.seed * 77 + 3);
  const Hypergraph h = ht::hypergraph::random_uniform(
      param.n, param.n * 2, 3, rng);
  for (int trial = 0; trial < 6; ++trial) {
    auto pick = rng.sample_without_replacement(param.n, 2);
    const std::vector<VertexId> a{pick[0]}, b{pick[1]};
    const auto flow_cut = ht::flow::min_hyperedge_cut(h, a, b);
    EXPECT_NEAR(flow_cut.value, brute_hyperedge_cut(h, a, b), 1e-9);
    EXPECT_TRUE(
        ht::flow::hyperedge_cut_separates(h, flow_cut.cut_edges, a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, EdgeCutProperty,
    ::testing::Values(FlowParam{6, 0.5, 1}, FlowParam{8, 0.4, 2},
                      FlowParam{10, 0.3, 3}, FlowParam{12, 0.35, 4},
                      FlowParam{9, 0.6, 5}));

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, VertexCutProperty,
    ::testing::Values(FlowParam{6, 0.5, 1}, FlowParam{8, 0.4, 2},
                      FlowParam{10, 0.3, 3}, FlowParam{11, 0.35, 4},
                      FlowParam{9, 0.6, 5}));

INSTANTIATE_TEST_SUITE_P(
    RandomHypergraphs, HyperedgeCutProperty,
    ::testing::Values(FlowParam{6, 0, 1}, FlowParam{8, 0, 2},
                      FlowParam{10, 0, 3}, FlowParam{12, 0, 4}));

// ---------- Gomory–Hu ----------

TEST(GomoryHu, PathGraphTreeValues) {
  Graph g(4);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 2.0);
  g.finalize();
  const auto tree = ht::flow::gomory_hu(g);
  EXPECT_DOUBLE_EQ(tree.min_cut(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(tree.min_cut(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(tree.min_cut(2, 3), 2.0);
}

class GomoryHuProperty : public ::testing::TestWithParam<FlowParam> {};

TEST_P(GomoryHuProperty, AllPairsMatchDirectFlow) {
  const auto param = GetParam();
  ht::Rng rng(param.seed * 131 + 7);
  Graph g = ht::graph::gnp_connected(param.n, param.p, rng);
  // Integer edge weights keep comparisons exact.
  Graph weighted(g.num_vertices());
  for (const auto& e : g.edges())
    weighted.add_edge(e.u, e.v, static_cast<double>(1 + rng.next_below(5)));
  weighted.finalize();
  const auto tree = ht::flow::gomory_hu(weighted);
  for (VertexId s = 0; s < weighted.num_vertices(); ++s) {
    for (VertexId t = s + 1; t < weighted.num_vertices(); ++t) {
      const double direct = ht::flow::min_edge_cut(weighted, {s}, {t}).value;
      EXPECT_NEAR(tree.min_cut(s, t), direct, 1e-9)
          << "pair (" << s << ", " << t << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, GomoryHuProperty,
    ::testing::Values(FlowParam{6, 0.5, 1}, FlowParam{8, 0.45, 2},
                      FlowParam{10, 0.35, 3}, FlowParam{12, 0.3, 4}));

TEST(GomoryHu, AsGraphIsTree) {
  ht::Rng rng(9);
  const Graph g = ht::graph::gnp_connected(10, 0.4, rng);
  const auto tree = ht::flow::gomory_hu(g);
  const Graph tg = tree.as_graph();
  EXPECT_EQ(tg.num_edges(), g.num_vertices() - 1);
  EXPECT_TRUE(ht::graph::is_connected(tg));
}

}  // namespace
