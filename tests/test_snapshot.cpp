// .htsnap persistence: round-trip fidelity, byte determinism, and the
// malformed-input corpus.
//
// The loader contract under test: a snapshot that came back from
// open()/open_bytes() answers queries identically to the in-memory
// artifacts it was built from, re-serializes byte-identically, and NO
// byte-level corruption — truncation, bit flips, hostile offsets, wrong
// endianness — may ever crash the loader (CI runs this file under
// ASan/UBSan): every malformed input is a Status.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cuttree/tree.hpp"
#include "cuttree/tree_bisection.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/hypergraph.hpp"
#include "reduction/star_expansion.hpp"
#include "serve/snapshot_build.hpp"
#include "serve/snapshot_format.hpp"
#include "serve/snapshot_reader.hpp"
#include "serve/snapshot_writer.hpp"
#include "serve/tree_server.hpp"
#include "util/hash64.hpp"
#include "util/rng.hpp"
#include "util/run_context.hpp"
#include "util/thread_pool.hpp"

namespace {

using ht::snapshot::RawHeader;
using ht::snapshot::RawSection;
using ht::snapshot::SectionKind;

ht::hypergraph::Hypergraph test_instance(std::uint64_t seed = 1234) {
  ht::Rng rng(seed);
  auto h = ht::hypergraph::random_uniform(16, 30, 3, rng);
  // The corpus relies on every artifact (incl. Gomory–Hu) being present.
  EXPECT_TRUE(ht::hypergraph::is_connected(h));
  return h;
}

std::string build_bytes(const ht::hypergraph::Hypergraph& h,
                        std::uint64_t seed = 7) {
  ht::snapshot::BuildOptions options;
  options.seed = seed;
  auto bytes = ht::snapshot::build(h, options);
  EXPECT_TRUE(bytes.ok()) << bytes.status().to_string();
  return *bytes;
}

/// Recomputes every checksum (payloads -> TOC -> header) after a test
/// mutated the image, so semantic corruption reaches the semantic
/// validators instead of dying at the integrity layer.
void resign(std::string& bytes) {
  auto* header = reinterpret_cast<RawHeader*>(bytes.data());
  auto* toc = reinterpret_cast<RawSection*>(bytes.data() + header->toc_offset);
  // A hostile section_count / offset / length planted by the test cannot
  // be hashed (the claimed bytes are not in the buffer); the loader
  // rejects those on bounds before ever consulting the checksums, so
  // resign only refreshes what is actually addressable.
  std::uint32_t count = header->section_count;
  if (header->toc_offset > bytes.size() ||
      count > (bytes.size() - header->toc_offset) / sizeof(RawSection)) {
    count = 0;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (toc[i].offset > bytes.size() ||
        toc[i].byte_size > bytes.size() - toc[i].offset) {
      continue;
    }
    toc[i].checksum = ht::hash64(bytes.data() + toc[i].offset,
                                 toc[i].byte_size,
                                 ht::snapshot::kChecksumSeed);
  }
  if (count == header->section_count) {
    header->toc_checksum = ht::hash64(toc, count * sizeof(RawSection),
                                      ht::snapshot::kChecksumSeed);
  }
  header->header_checksum =
      ht::hash64(header, offsetof(RawHeader, header_checksum),
                 ht::snapshot::kChecksumSeed);
}

/// The TOC entry for `kind` (must exist).
RawSection* find_section(std::string& bytes, SectionKind kind) {
  auto* header = reinterpret_cast<RawHeader*>(bytes.data());
  auto* toc = reinterpret_cast<RawSection*>(bytes.data() + header->toc_offset);
  for (std::uint32_t i = 0; i < header->section_count; ++i) {
    if (toc[i].kind == static_cast<std::uint32_t>(kind)) return &toc[i];
  }
  ADD_FAILURE() << "section " << static_cast<unsigned>(kind) << " missing";
  return nullptr;
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(SnapshotRoundTrip, SectionsAndMetaSurvive) {
  const auto h = test_instance();
  auto snap = ht::snapshot::open_bytes(build_bytes(h));
  ASSERT_TRUE(snap.ok()) << snap.status().to_string();

  const auto& meta = snap->meta();
  EXPECT_EQ(meta.num_vertices, h.num_vertices());
  EXPECT_EQ(meta.num_edges, h.num_edges());
  EXPECT_DOUBLE_EQ(meta.total_edge_weight, h.total_edge_weight());
  EXPECT_EQ(meta.build_seed, 7u);
  EXPECT_TRUE(snap->has(SectionKind::kMeta));
  EXPECT_TRUE(snap->has(SectionKind::kPins));
  EXPECT_TRUE(snap->has(SectionKind::kGhParent));
  EXPECT_TRUE(snap->has(SectionKind::kVctParent));
  EXPECT_TRUE(snap->has(SectionKind::kDecompParent));

  auto vw = snap->section<double>(SectionKind::kVertexWeights);
  ASSERT_TRUE(vw.ok());
  ASSERT_EQ(static_cast<std::int64_t>(vw->size()), h.num_vertices());
  for (ht::hypergraph::VertexId v = 0; v < h.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ((*vw)[static_cast<std::size_t>(v)], h.vertex_weight(v));
  }
  auto pins = snap->section<std::int32_t>(SectionKind::kPins);
  auto offsets = snap->section<std::int64_t>(SectionKind::kPinOffsets);
  ASSERT_TRUE(pins.ok());
  ASSERT_TRUE(offsets.ok());
  for (ht::hypergraph::EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto begin = (*offsets)[static_cast<std::size_t>(e)];
    const auto expected = h.pins(e);
    ASSERT_EQ((*offsets)[static_cast<std::size_t>(e) + 1] - begin,
              static_cast<std::int64_t>(expected.size()));
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*pins)[static_cast<std::size_t>(begin) + i], expected[i]);
    }
  }
}

TEST(SnapshotRoundTrip, QueriesMatchInMemoryArtifacts) {
  const auto h = test_instance();
  auto state = ht::serve::LoadedSnapshot::load(
      std::move(*ht::snapshot::open_bytes(build_bytes(h))));
  ASSERT_TRUE(state.ok()) << state.status().to_string();
  const ht::serve::LoadedSnapshot& loaded = **state;

  // Gomory–Hu answers equal a fresh in-memory build (same deterministic
  // algorithm, no seed involved).
  const auto gh = ht::flow::hypergraph_gomory_hu_run(h);
  ASSERT_TRUE(gh.status.ok());
  ASSERT_TRUE(loaded.gomory_hu.has_value());
  for (ht::hypergraph::VertexId s = 0; s < h.num_vertices(); ++s) {
    for (ht::hypergraph::VertexId t = s + 1; t < h.num_vertices(); ++t) {
      EXPECT_DOUBLE_EQ(loaded.gomory_hu->min_cut(s, t),
                       gh.tree.min_cut(s, t));
    }
  }

  // The stored vertex cut tree is byte-equal to rebuilding with the
  // snapshot's seed.
  const auto star = ht::reduction::star_expansion(h);
  ht::cuttree::VertexCutTreeOptions options;
  options.seed = 7;
  const auto rebuilt =
      ht::cuttree::build_vertex_cut_tree(star.graph, options);
  ASSERT_TRUE(loaded.vertex_cut_tree.has_value());
  EXPECT_EQ(ht::cuttree::tree_signature(*loaded.vertex_cut_tree),
            ht::cuttree::tree_signature(rebuilt.tree));

  // And the bisection DP on the loaded tree reproduces the in-memory DP.
  std::vector<ht::cuttree::VertexId> counted;
  for (ht::hypergraph::VertexId v = 0; v < h.num_vertices(); ++v) {
    counted.push_back(v);
  }
  const auto from_snapshot =
      ht::cuttree::balanced_tree_bisection(*loaded.vertex_cut_tree, counted);
  const auto from_memory =
      ht::cuttree::balanced_tree_bisection(rebuilt.tree, counted);
  ASSERT_TRUE(from_snapshot.valid);
  EXPECT_EQ(from_snapshot.side, from_memory.side);
  EXPECT_DOUBLE_EQ(from_snapshot.tree_cut, from_memory.tree_cut);
}

TEST(SnapshotRoundTrip, ReserializationIsByteIdentical) {
  const auto h = test_instance();
  const std::string first = build_bytes(h);
  const std::string second = build_bytes(h);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(0, std::memcmp(first.data(), second.data(), first.size()));
}

TEST(SnapshotRoundTrip, ByteIdenticalAcrossThreadCounts) {
  const auto h = test_instance();
  ht::ThreadPool::reset_global(1);
  const std::string serial = build_bytes(h);
  ht::ThreadPool::reset_global(4);
  const std::string parallel = build_bytes(h);
  ht::ThreadPool::reset_global();
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(), serial.size()));
}

// The ambient RunContext's thread count (the CLI's --threads / HT_THREADS
// path) must not leak into the artifact either: snapshots are
// content-addressable regardless of how parallel the build was.
TEST(SnapshotRoundTrip, ByteIdenticalAcrossContextThreadCounts) {
  const auto h = test_instance();
  std::string bytes_1;
  {
    ht::RunContext ctx;
    ctx.threads = 1;
    ht::RunScope scope(ctx);
    bytes_1 = build_bytes(h);
  }
  std::string bytes_4;
  {
    ht::RunContext ctx;
    ctx.threads = 4;
    ht::RunScope scope(ctx);
    bytes_4 = build_bytes(h);
  }
  ASSERT_EQ(bytes_1.size(), bytes_4.size());
  EXPECT_EQ(0, std::memcmp(bytes_1.data(), bytes_4.data(), bytes_1.size()));
  ht::snapshot::BuildOptions options;
  options.seed = 7;
  ht::snapshot::BuildReport report;
  ht::RunContext ctx;
  ctx.threads = 3;
  ht::RunScope scope(ctx);
  ASSERT_TRUE(ht::snapshot::build(h, options, &report).ok());
  EXPECT_EQ(report.build_threads, 3u);  // provenance lives in the report
}

TEST(SnapshotRoundTrip, FileWriteThenMmapOpen) {
  const auto h = test_instance();
  const std::string path = testing::TempDir() + "roundtrip.htsnap";
  ht::snapshot::BuildOptions options;
  options.seed = 7;
  ASSERT_TRUE(ht::snapshot::write(h, path, options).ok());
  auto mapped = ht::snapshot::open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  auto in_memory = ht::snapshot::open_bytes(build_bytes(h));
  ASSERT_TRUE(in_memory.ok());
  ASSERT_EQ(mapped->size_bytes(), in_memory->size_bytes());
  EXPECT_EQ(mapped->header().file_size, in_memory->header().file_size);
  auto a = mapped->section<std::int32_t>(SectionKind::kPins);
  auto b = in_memory->section<std::int32_t>(SectionKind::kPins);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  EXPECT_EQ(0, std::memcmp(a->data(), b->data(), a->size_bytes()));
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, BuildInfoSurvives) {
  const auto h = test_instance();
  ht::snapshot::BuildOptions options;
  options.build_info = "test build\nrev abc123";
  auto bytes = ht::snapshot::build(h, options);
  ASSERT_TRUE(bytes.ok());
  auto snap = ht::snapshot::open_bytes(std::move(*bytes));
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->build_info(), "test build\nrev abc123");
}

// ---------------------------------------------------------------------------
// Golden fixture: a v1 snapshot checked into the repo. Guards format
// compatibility — if parsing v1 images breaks, this fails before any
// cross-version CI job does. Answers are asserted as values, not bytes,
// so the test is compiler-portable.

TEST(SnapshotGolden, V1FixtureLoadsAndAnswers) {
  const std::string path =
      std::string(HT_TEST_DATA_DIR) + "/golden_v1_small16.htsnap";
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const auto info = server->info();
  EXPECT_EQ(info.num_vertices, 16);
  EXPECT_EQ(info.num_edges, 20);
  EXPECT_EQ(info.format_version, 1u);
  EXPECT_TRUE(info.has_gomory_hu);
  EXPECT_TRUE(info.has_vertex_cut_tree);
  EXPECT_TRUE(info.has_decomposition);
  EXPECT_TRUE(info.gomory_hu_exact);

  auto minc = server->min_cut(0, 5);
  ASSERT_TRUE(minc.ok()) << minc.status().to_string();
  EXPECT_NEAR(minc->value, 4.0, 1e-9);
  EXPECT_TRUE(minc->exact);

  auto bisect = server->bisection();
  ASSERT_TRUE(bisect.ok()) << bisect.status().to_string();
  std::int64_t side1 = 0;
  for (const bool s : bisect->side) side1 += s ? 1 : 0;
  EXPECT_EQ(side1, 8);
  EXPECT_GT(bisect->cut, 0.0);

  auto kway = server->kway(4);
  ASSERT_TRUE(kway.ok()) << kway.status().to_string();
  std::vector<int> sizes(4, 0);
  for (const std::int32_t p : kway->part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    ++sizes[static_cast<std::size_t>(p)];
  }
  for (const int size : sizes) EXPECT_EQ(size, 4);
}

// ---------------------------------------------------------------------------
// Malformed corpus: every case must produce a Status, never a crash.

class SnapshotCorpus : public testing::Test {
 protected:
  void SetUp() override { bytes_ = build_bytes(test_instance()); }

  void expect_rejected(std::string mutated, const char* why) {
    auto snap = ht::snapshot::open_bytes(std::move(mutated));
    EXPECT_FALSE(snap.ok()) << "loader accepted " << why;
  }

  std::string bytes_;
};

TEST_F(SnapshotCorpus, EmptyFile) { expect_rejected("", "an empty file"); }

TEST_F(SnapshotCorpus, TruncatedHeader) {
  expect_rejected(bytes_.substr(0, 10), "a truncated header");
  expect_rejected(bytes_.substr(0, sizeof(RawHeader) - 1),
                  "a header one byte short");
}

TEST_F(SnapshotCorpus, TruncatedEverywhere) {
  // Cutting the file at any length below full size must be caught by the
  // size / bounds / checksum chain.
  for (std::size_t len : {sizeof(RawHeader), bytes_.size() / 2,
                          bytes_.size() - 1}) {
    expect_rejected(bytes_.substr(0, len), "a truncated file");
  }
}

TEST_F(SnapshotCorpus, BadMagic) {
  std::string mutated = bytes_;
  mutated[0] = 'X';
  expect_rejected(std::move(mutated), "a bad magic");
}

TEST_F(SnapshotCorpus, OppositeEndianness) {
  std::string mutated = bytes_;
  auto* header = reinterpret_cast<RawHeader*>(mutated.data());
  // What a big-endian writer would have produced for the mark.
  header->endian_mark = __builtin_bswap32(ht::snapshot::kEndianMark);
  auto snap = ht::snapshot::open_bytes(std::move(mutated));
  ASSERT_FALSE(snap.ok());
  EXPECT_NE(snap.status().message().find("endian"), std::string::npos);
}

TEST_F(SnapshotCorpus, VersionOutsideWindow) {
  for (std::uint32_t version :
       {0u, ht::snapshot::kFormatVersion + 1, 0xFFFFFFFFu}) {
    std::string mutated = bytes_;
    reinterpret_cast<RawHeader*>(mutated.data())->version = version;
    resign(mutated);
    expect_rejected(std::move(mutated), "an unsupported version");
  }
}

TEST_F(SnapshotCorpus, HeaderChecksumFlip) {
  std::string mutated = bytes_;
  reinterpret_cast<RawHeader*>(mutated.data())->file_size ^= 1;
  expect_rejected(std::move(mutated), "a header bit flip");
}

TEST_F(SnapshotCorpus, TocChecksumFlip) {
  std::string mutated = bytes_;
  mutated[sizeof(RawHeader) + 4] ^= 0x40;  // inside the first TOC entry
  expect_rejected(std::move(mutated), "a TOC bit flip");
}

TEST_F(SnapshotCorpus, PayloadBitFlip) {
  std::string mutated = bytes_;
  mutated[mutated.size() - 3] ^= 0x01;  // inside the last payload
  expect_rejected(std::move(mutated), "a payload bit flip");
}

TEST_F(SnapshotCorpus, OversizedSectionOffset) {
  for (std::uint64_t offset :
       {bytes_.size(), bytes_.size() + 1024,
        static_cast<std::size_t>(0x7FFFFFFFFFFFFFF0ULL)}) {
    std::string mutated = bytes_;
    find_section(mutated, SectionKind::kPins)->offset = offset;
    resign(mutated);
    expect_rejected(std::move(mutated), "an out-of-bounds section offset");
  }
}

TEST_F(SnapshotCorpus, OversizedSectionLength) {
  // byte_size chosen so offset + byte_size overflows to a small value —
  // the classic bounds-check bypass; the loader must use overflow-safe
  // arithmetic.
  std::string mutated = bytes_;
  auto* section = find_section(mutated, SectionKind::kPins);
  section->byte_size = ~0ULL - section->offset + 8;
  resign(mutated);
  expect_rejected(std::move(mutated), "an overflowing section length");
}

TEST_F(SnapshotCorpus, HostileSectionCount) {
  std::string mutated = bytes_;
  reinterpret_cast<RawHeader*>(mutated.data())->section_count = 0xFFFFFFFFu;
  resign(mutated);
  expect_rejected(std::move(mutated), "a hostile section count");
}

TEST_F(SnapshotCorpus, MisalignedSectionOffset) {
  std::string mutated = bytes_;
  find_section(mutated, SectionKind::kPins)->offset += 1;
  resign(mutated);
  expect_rejected(std::move(mutated), "a misaligned section offset");
}

TEST_F(SnapshotCorpus, DuplicateSectionKind) {
  std::string mutated = bytes_;
  find_section(mutated, SectionKind::kEdgeWeights)->kind =
      static_cast<std::uint32_t>(SectionKind::kVertexWeights);
  resign(mutated);
  expect_rejected(std::move(mutated), "a duplicate section kind");
}

TEST_F(SnapshotCorpus, ElementSizeMismatch) {
  auto snap = ht::snapshot::open_bytes(std::string(bytes_));
  ASSERT_TRUE(snap.ok());
  // Reading an i32 section as f64 must fail cleanly, not reinterpret.
  auto wrong = snap->section<double>(SectionKind::kPins);
  EXPECT_FALSE(wrong.ok());
}

TEST_F(SnapshotCorpus, MissingMeta) {
  std::string mutated = bytes_;
  // Retype the meta section to an unknown kind: the loader skips unknown
  // kinds (forward compat) and must then reject the metadata-less file.
  find_section(mutated, SectionKind::kMeta)->kind = 0xFFFFu;
  resign(mutated);
  expect_rejected(std::move(mutated), "a snapshot without kMeta");
}

TEST_F(SnapshotCorpus, UnknownSectionKindIsSkipped) {
  std::string mutated = bytes_;
  // Forward compatibility: an unknown kind on a NON-required section is
  // ignored; the file still loads (and still checksums).
  find_section(mutated, SectionKind::kVctSeparators)->kind = 0xFFFFu;
  resign(mutated);
  auto snap = ht::snapshot::open_bytes(std::move(mutated));
  EXPECT_TRUE(snap.ok()) << snap.status().to_string();
  EXPECT_FALSE(snap->has(SectionKind::kVctSeparators));
}

// Checksum-valid but semantically corrupt images: the serve-layer
// validators must catch what the integrity layer cannot.

TEST_F(SnapshotCorpus, SemanticPinOutOfRange) {
  std::string mutated = bytes_;
  const auto* section = find_section(mutated, SectionKind::kPins);
  *reinterpret_cast<std::int32_t*>(mutated.data() + section->offset) = 999;
  resign(mutated);
  auto snap = ht::snapshot::open_bytes(std::move(mutated));
  ASSERT_TRUE(snap.ok());  // integrity layer is fine with it
  auto loaded = ht::serve::LoadedSnapshot::load(std::move(*snap));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotCorpus, SemanticGomoryHuCycle) {
  std::string mutated = bytes_;
  const auto* section = find_section(mutated, SectionKind::kGhParent);
  auto* parent =
      reinterpret_cast<std::int32_t*>(mutated.data() + section->offset);
  // Point two non-root vertices at each other: a 2-cycle unreachable from
  // the root.
  parent[14] = 15;
  parent[15] = 14;
  resign(mutated);
  auto snap = ht::snapshot::open_bytes(std::move(mutated));
  ASSERT_TRUE(snap.ok());
  auto loaded = ht::serve::LoadedSnapshot::load(std::move(*snap));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotCorpus, SemanticTreeParentOrderViolation) {
  std::string mutated = bytes_;
  const auto* section = find_section(mutated, SectionKind::kVctParent);
  auto* parent =
      reinterpret_cast<std::int32_t*>(mutated.data() + section->offset);
  parent[1] = 2;  // Tree invariant: parent(v) < v
  resign(mutated);
  auto snap = ht::snapshot::open_bytes(std::move(mutated));
  ASSERT_TRUE(snap.ok());
  auto loaded = ht::serve::LoadedSnapshot::load(std::move(*snap));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotCorpus, SemanticMetaCountMismatch) {
  std::string mutated = bytes_;
  const auto* section = find_section(mutated, SectionKind::kMeta);
  auto* meta = reinterpret_cast<ht::snapshot::MetaBlock*>(mutated.data() +
                                                          section->offset);
  meta->num_vertices += 1;
  resign(mutated);
  auto snap = ht::snapshot::open_bytes(std::move(mutated));
  ASSERT_TRUE(snap.ok());
  auto loaded = ht::serve::LoadedSnapshot::load(std::move(*snap));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotCorpus, RandomSingleByteFlips) {
  // A light fuzz pass: flipping any single byte must never crash; it
  // either fails validation or (for don't-care bytes like padding or the
  // timestamp) still loads.
  ht::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes_;
    const auto pos = static_cast<std::size_t>(rng() % mutated.size());
    mutated[pos] ^= static_cast<char>(1 + (rng() % 255));
    auto snap = ht::snapshot::open_bytes(std::move(mutated));
    if (snap.ok()) {
      auto loaded = ht::serve::LoadedSnapshot::load(std::move(*snap));
      (void)loaded;  // either outcome is fine — just must not crash
    }
  }
}

// ---------------------------------------------------------------------------
// Writer-side validation.

TEST(SnapshotWriter, RejectsDuplicateKinds) {
  ht::snapshot::Writer writer;
  const double values[2] = {1.0, 2.0};
  writer.add_span(SectionKind::kVertexWeights,
                  std::span<const double>(values, 2));
  writer.add_span(SectionKind::kVertexWeights,
                  std::span<const double>(values, 2));
  EXPECT_FALSE(writer.serialize().ok());
}

TEST(SnapshotWriter, RejectsIndivisiblePayload) {
  ht::snapshot::Writer writer;
  const char raw[5] = {0, 1, 2, 3, 4};
  writer.add_bytes(SectionKind::kPins, 4, raw, 5);
  EXPECT_FALSE(writer.serialize().ok());
}

TEST(SnapshotBuild, RejectsUnusableInputs) {
  ht::hypergraph::Hypergraph unfinalized(4);
  unfinalized.add_edge({0, 1});
  EXPECT_FALSE(ht::snapshot::build(unfinalized).ok());

  ht::hypergraph::Hypergraph tiny(1);
  tiny.finalize();
  EXPECT_FALSE(ht::snapshot::build(tiny).ok());
}

}  // namespace
