// TreeServer: query correctness against in-memory artifacts, per-query
// deadlines, and the shared_ptr epoch hot-swap — no dropped queries, no
// leaked mappings (CI additionally runs this file under TSan).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/hypergraph_gomory_hu.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/snapshot_build.hpp"
#include "serve/tree_server.hpp"
#include "util/mmap_file.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

ht::hypergraph::Hypergraph make_instance(std::uint64_t seed) {
  ht::Rng rng(seed);
  auto h = ht::hypergraph::random_uniform(16, 30, 3, rng);
  EXPECT_TRUE(ht::hypergraph::is_connected(h));
  return h;
}

std::string write_snapshot(const ht::hypergraph::Hypergraph& h,
                           const std::string& name) {
  const std::string path = testing::TempDir() + name;
  ht::snapshot::BuildOptions options;
  options.seed = 7;
  EXPECT_TRUE(ht::snapshot::write(h, path, options).ok());
  return path;
}

TEST(TreeServer, OpensAndReportsInfo) {
  const auto h = make_instance(1);
  const std::string path = write_snapshot(h, "serve_info.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const auto info = server->info();
  EXPECT_EQ(info.num_vertices, h.num_vertices());
  EXPECT_EQ(info.num_edges, h.num_edges());
  EXPECT_TRUE(info.has_gomory_hu);
  EXPECT_TRUE(info.has_vertex_cut_tree);
  EXPECT_TRUE(info.has_decomposition);
  EXPECT_EQ(info.swaps, 0u);
  std::remove(path.c_str());
}

TEST(TreeServer, MinCutMatchesInMemoryGomoryHu) {
  const auto h = make_instance(2);
  const std::string path = write_snapshot(h, "serve_minc.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  const auto gh = ht::flow::hypergraph_gomory_hu_run(h);
  ASSERT_TRUE(gh.status.ok());
  for (std::int32_t s = 0; s < h.num_vertices(); ++s) {
    for (std::int32_t t = s + 1; t < h.num_vertices(); ++t) {
      auto answer = server->min_cut(s, t);
      ASSERT_TRUE(answer.ok());
      EXPECT_DOUBLE_EQ(answer->value, gh.tree.min_cut(s, t));
      EXPECT_TRUE(answer->exact);
    }
  }
  std::remove(path.c_str());
}

TEST(TreeServer, BisectionIsBalancedAndExactlyEvaluated) {
  const auto h = make_instance(3);
  const std::string path = write_snapshot(h, "serve_bisect.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  auto answer = server->bisection();
  ASSERT_TRUE(answer.ok()) << answer.status().to_string();
  ASSERT_EQ(static_cast<std::int64_t>(answer->side.size()),
            h.num_vertices());
  std::int64_t side1 = 0;
  for (const bool s : answer->side) side1 += s ? 1 : 0;
  EXPECT_EQ(side1, h.num_vertices() / 2);
  // The reported cut is the exact delta_H of the returned side.
  double expected = 0.0;
  for (ht::hypergraph::EdgeId e = 0; e < h.num_edges(); ++e) {
    bool saw0 = false, saw1 = false;
    for (const auto v : h.pins(e)) {
      (answer->side[static_cast<std::size_t>(v)] ? saw1 : saw0) = true;
    }
    if (saw0 && saw1) expected += h.edge_weight(e);
  }
  EXPECT_DOUBLE_EQ(answer->cut, expected);
  std::remove(path.c_str());
}

TEST(TreeServer, KwayIsBalancedAndExactlyEvaluated) {
  const auto h = make_instance(4);
  const std::string path = write_snapshot(h, "serve_kway.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  auto answer = server->kway(4);
  ASSERT_TRUE(answer.ok()) << answer.status().to_string();
  std::vector<int> sizes(4, 0);
  for (const std::int32_t p : answer->part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    ++sizes[static_cast<std::size_t>(p)];
  }
  for (const int size : sizes) EXPECT_EQ(size, 4);
  EXPECT_GE(answer->connectivity, answer->cut);
  std::remove(path.c_str());
}

TEST(TreeServer, SetCutDominatesTrueCut) {
  const auto h = make_instance(5);
  const std::string path = write_snapshot(h, "serve_setcut.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  const std::vector<std::int32_t> a{0, 1, 2};
  const std::vector<std::int32_t> b{13, 14, 15};
  auto answer = server->set_cut(a, b);
  ASSERT_TRUE(answer.ok()) << answer.status().to_string();
  EXPECT_GE(answer->value, 0.0);
  // Invalid inputs are statuses.
  EXPECT_FALSE(server->set_cut({}, b).ok());
  EXPECT_FALSE(server->set_cut(a, {1}).ok());          // overlap
  EXPECT_FALSE(server->set_cut(a, {999}).ok());        // out of range
  std::remove(path.c_str());
}

TEST(TreeServer, RejectsInvalidQueryArguments) {
  const auto h = make_instance(6);
  const std::string path = write_snapshot(h, "serve_args.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server->min_cut(0, 0).ok());
  EXPECT_FALSE(server->min_cut(-1, 1).ok());
  EXPECT_FALSE(server->min_cut(0, 999).ok());
  EXPECT_FALSE(server->kway(1).ok());
  EXPECT_FALSE(server->kway(5).ok());  // 5 does not divide 16
  std::remove(path.c_str());
}

TEST(TreeServer, ExpiredDeadlineIsAStatusNotAnAnswer) {
  const auto h = make_instance(7);
  const std::string path = write_snapshot(h, "serve_deadline.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  ht::RunContext ctx;
  ctx.deadline = ht::RunContext::Clock::now() - std::chrono::seconds(1);
  auto answer = server->bisection(ctx);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), ht::StatusCode::kDeadlineExceeded);
  // The server still works for the next (unconstrained) query.
  EXPECT_TRUE(server->bisection().ok());
  std::remove(path.c_str());
}

TEST(TreeServer, QueriesRecordPerKindLatencyAndFlightRecords) {
  const auto h = make_instance(25);
  const std::string path = write_snapshot(h, "serve_obs.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  auto& reg = ht::obs::MetricsRegistry::global();
  // Deltas, not absolute values: the registry is process-global and other
  // tests in this binary also serve queries.
  const std::uint64_t queries0 = reg.counter("serve.queries").value();
  const std::uint64_t minc0 =
      reg.histogram("serve.latency.min_cut").count();
  const std::uint64_t setc0 =
      reg.histogram("serve.latency.set_cut").count();
  const std::uint64_t bisect0 =
      reg.histogram("serve.latency.bisection").count();
  const std::uint64_t kway0 = reg.histogram("serve.latency.kway").count();
  const std::uint64_t flight0 =
      ht::obs::FlightRecorder::global().recorded();

  EXPECT_TRUE(server->min_cut(0, 1).ok());
  EXPECT_TRUE(server->min_cut(2, 3).ok());
  EXPECT_TRUE(server->set_cut({0, 1}, {14, 15}).ok());
  EXPECT_TRUE(server->bisection().ok());
  EXPECT_TRUE(server->kway(4).ok());
  EXPECT_FALSE(server->min_cut(0, 0).ok());  // errors are recorded too

  EXPECT_EQ(reg.counter("serve.queries").value() - queries0, 6u);
  EXPECT_EQ(reg.histogram("serve.latency.min_cut").count() - minc0, 3u);
  EXPECT_EQ(reg.histogram("serve.latency.set_cut").count() - setc0, 1u);
  EXPECT_EQ(reg.histogram("serve.latency.bisection").count() - bisect0, 1u);
  EXPECT_EQ(reg.histogram("serve.latency.kway").count() - kway0, 1u);
  EXPECT_EQ(ht::obs::FlightRecorder::global().recorded() - flight0, 6u);
  std::remove(path.c_str());
}

TEST(TreeServer, FlightRecorderOptOutSkipsAppends) {
  const auto h = make_instance(21);
  const std::string path = write_snapshot(h, "serve_noflight.htsnap");
  ht::serve::ServeOptions options;
  options.flight_recorder = false;
  auto server = ht::TreeServer::open(path, options);
  ASSERT_TRUE(server.ok());
  const std::uint64_t flight0 =
      ht::obs::FlightRecorder::global().recorded();
  EXPECT_TRUE(server->min_cut(0, 1).ok());
  EXPECT_FALSE(server->min_cut(0, 0).ok());
  EXPECT_EQ(ht::obs::FlightRecorder::global().recorded(), flight0);
  // Metrics still record — only the flight recorder is opted out.
  EXPECT_FALSE(server->options().flight_recorder);
  std::remove(path.c_str());
}

TEST(TreeServer, DeadlineExpiryCountsSeparatelyFromQueryErrors) {
  const auto h = make_instance(22);
  const std::string path = write_snapshot(h, "serve_deadcnt.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  auto& reg = ht::obs::MetricsRegistry::global();
  const std::uint64_t expired0 =
      reg.counter("serve.deadline_expired").value();
  const std::uint64_t errors0 = reg.counter("serve.query_errors").value();

  ht::RunContext ctx;
  ctx.deadline = ht::RunContext::Clock::now() - std::chrono::seconds(1);
  ASSERT_EQ(server->bisection(ctx).status().code(),
            ht::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(reg.counter("serve.deadline_expired").value() - expired0, 1u);
  EXPECT_EQ(reg.counter("serve.query_errors").value(), errors0);

  // A plain invalid-argument error goes to query_errors, not expiry.
  ASSERT_FALSE(server->min_cut(0, 0).ok());
  EXPECT_EQ(reg.counter("serve.deadline_expired").value() - expired0, 1u);
  EXPECT_EQ(reg.counter("serve.query_errors").value() - errors0, 1u);
  std::remove(path.c_str());
}

TEST(TreeServer, SlowQueryThresholdEmitsSpanAndCounter) {
  const auto h = make_instance(23);
  const std::string path = write_snapshot(h, "serve_slow.htsnap");
  ht::serve::ServeOptions options;
  options.slow_query_ns = 0;  // every query is "slow"
  auto server = ht::TreeServer::open(path, options);
  ASSERT_TRUE(server.ok());
  auto& reg = ht::obs::MetricsRegistry::global();
  const std::uint64_t slow0 = reg.counter("serve.slow_queries").value();

  const bool was_tracing = ht::obs::tracing_enabled();
  ht::ThreadPool::global().wait_idle();
  ht::obs::Tracer::global().clear();
  ht::obs::set_tracing_enabled(true);
  EXPECT_TRUE(server->min_cut(0, 1).ok());
  ht::ThreadPool::global().wait_idle();
  ht::obs::set_tracing_enabled(was_tracing);

  EXPECT_EQ(reg.counter("serve.slow_queries").value() - slow0, 1u);
  bool saw_slow_span = false;
  for (const auto& event : ht::obs::Tracer::global().collect()) {
    if (std::string(event.name) != "serve.slow_query") continue;
    saw_slow_span = true;
    bool saw_kind = false, saw_latency = false;
    for (const auto& arg : event.args) {
      if (std::string(arg.key) == "kind") {
        saw_kind = true;
        EXPECT_EQ(arg.string_value, "min_cut");
      }
      if (std::string(arg.key) == "latency_ns") saw_latency = true;
    }
    EXPECT_TRUE(saw_kind);
    EXPECT_TRUE(saw_latency);
  }
  EXPECT_TRUE(saw_slow_span);
  ht::obs::Tracer::global().clear();
  std::remove(path.c_str());
}

TEST(TreeServer, FailedQueryAutoDumpsFlightRecords) {
  const auto h = make_instance(24);
  const std::string path = write_snapshot(h, "serve_dump.htsnap");
  const std::string dump_path = testing::TempDir() + "serve_dump.json";
  std::remove(dump_path.c_str());
  ht::serve::ServeOptions options;
  options.flight_dump_path = dump_path;
  auto server = ht::TreeServer::open(path, options);
  ASSERT_TRUE(server.ok());

  // Success: no dump file appears.
  EXPECT_TRUE(server->min_cut(0, 1).ok());
  EXPECT_FALSE(std::ifstream(dump_path).good());
  // Failure: the recorder state is dumped for postmortem.
  EXPECT_FALSE(server->min_cut(0, 0).ok());
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(json.find("{\"version\":1,"), 0u);
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"min_cut\""), std::string::npos);
  std::remove(dump_path.c_str());
  std::remove(path.c_str());
}

TEST(TreeServer, FailedSwapKeepsServing) {
  const auto h = make_instance(8);
  const std::string path = write_snapshot(h, "serve_failswap.htsnap");
  auto server = ht::TreeServer::open(path);
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server->swap(testing::TempDir() + "missing.htsnap").ok());
  // Corrupt file: also refused, still serving the original.
  const std::string bad = testing::TempDir() + "bad.htsnap";
  std::FILE* f = std::fopen(bad.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a snapshot", f);
  std::fclose(f);
  EXPECT_FALSE(server->swap(bad).ok());
  EXPECT_EQ(server->info().swaps, 0u);
  EXPECT_TRUE(server->min_cut(0, 1).ok());
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(TreeServer, SwapChangesAnswers) {
  const auto h1 = make_instance(9);
  ht::Rng rng(10);
  auto h2 = ht::hypergraph::random_uniform(20, 40, 3, rng);
  ASSERT_TRUE(ht::hypergraph::is_connected(h2));
  const std::string path1 = write_snapshot(h1, "serve_swap1.htsnap");
  const std::string path2 = write_snapshot(h2, "serve_swap2.htsnap");
  auto server = ht::TreeServer::open(path1);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server->info().num_vertices, 16);
  ASSERT_TRUE(server->swap(path2).ok());
  EXPECT_EQ(server->info().num_vertices, 20);
  EXPECT_EQ(server->info().swaps, 1u);
  const auto gh2 = ht::flow::hypergraph_gomory_hu_run(h2);
  auto answer = server->min_cut(0, 19);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer->value, gh2.tree.min_cut(0, 19));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(TreeServer, SwapStormUnderConcurrentQueriesDropsNothingAndLeaksNothing) {
  const auto h1 = make_instance(11);
  const auto h2 = make_instance(12);
  const std::string path1 = write_snapshot(h1, "serve_storm1.htsnap");
  const std::string path2 = write_snapshot(h2, "serve_storm2.htsnap");

  const std::int64_t mapped_before = ht::mapped_bytes_now();
  {
    auto server = ht::TreeServer::open(path1);
    ASSERT_TRUE(server.ok());

    constexpr int kQueryThreads = 4;
    constexpr int kQueriesPerThread = 200;
    std::atomic<bool> go{false};
    std::atomic<bool> stop_observer{false};
    std::atomic<std::int64_t> answered{0};
    std::atomic<std::int64_t> failed{0};
    std::atomic<std::int64_t> exports{0};
    std::vector<std::thread> workers;
    workers.reserve(kQueryThreads);
    for (int w = 0; w < kQueryThreads; ++w) {
      workers.emplace_back([&, w] {
        while (!go.load(std::memory_order_acquire)) {
        }
        ht::Rng rng(static_cast<std::uint64_t>(w) + 100);
        for (int q = 0; q < kQueriesPerThread; ++q) {
          // Every epoch has n=16, so these ids are valid across swaps.
          const auto s = static_cast<std::int32_t>(rng() % 16);
          auto t = static_cast<std::int32_t>(rng() % 16);
          if (t == s) t = (t + 1) % 16;
          const auto answer =
              (q % 3 == 0) ? server->min_cut(s, t)
                           : server->min_cut(t, s);
          if (answer.ok()) {
            answered.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
          if (q % 16 == 0) (void)server->bisection();
        }
      });
    }

    // An observer thread exercises the whole read-side observability
    // surface concurrently with the storm: flight-recorder dumps (seqlock
    // reads racing live appends) and registry exports (snapshot under the
    // registration lock racing relaxed metric updates). Everything it
    // reads must stay well-formed. Runs under the tsan-serve CI job.
    std::thread observer([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!stop_observer.load(std::memory_order_acquire)) {
        const std::string flight =
            ht::obs::FlightRecorder::global().dump_json();
        EXPECT_EQ(flight.find("{\"version\":1,"), 0u);
        const std::string metrics =
            ht::obs::MetricsRegistry::global().snapshot_json();
        EXPECT_EQ(metrics.find("{\"version\":1,"), 0u);
        const std::string prom = ht::obs::prometheus_text(
            ht::obs::MetricsRegistry::global().snapshot());
        EXPECT_NE(prom.find("# TYPE ht_serve_queries counter\n"),
                  std::string::npos);
        exports.fetch_add(1, std::memory_order_relaxed);
      }
    });

    // Trace the storm so the post-join export covers spans closed across
    // swaps (collect() itself needs quiescence, hence after the joins).
    const bool was_tracing = ht::obs::tracing_enabled();
    ht::ThreadPool::global().wait_idle();
    ht::obs::Tracer::global().clear();
    ht::obs::set_tracing_enabled(true);

    go.store(true, std::memory_order_release);
    // Swap back and forth while the workers hammer the query path.
    for (int swap = 0; swap < 50; ++swap) {
      ASSERT_TRUE(server->swap(swap % 2 == 0 ? path2 : path1).ok());
    }
    for (auto& worker : workers) worker.join();
    stop_observer.store(true, std::memory_order_release);
    observer.join();
    ht::ThreadPool::global().wait_idle();
    ht::obs::set_tracing_enabled(was_tracing);

    // No query may be dropped by a swap: every single one got an answer.
    EXPECT_EQ(answered.load(),
              static_cast<std::int64_t>(kQueryThreads) * kQueriesPerThread);
    EXPECT_EQ(failed.load(), 0);
    EXPECT_GT(exports.load(), 0);
    EXPECT_EQ(server->info().swaps, 50u);
    EXPECT_EQ(server->epoch(), 51u);  // open = 1, +1 per swap

    // Quiescent now: the trace export must parse and contain the serve
    // spans recorded during the storm.
    const std::string trace = ht::obs::Tracer::global().chrome_trace_json();
    EXPECT_NE(trace.find("\"serve.min_cut\""), std::string::npos);
    ht::obs::Tracer::global().clear();
  }
  // Server destroyed: every epoch's mapping must be gone.
  EXPECT_EQ(ht::mapped_bytes_now(), mapped_before);
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(TreeServer, MappingsAreReleasedWithTheLastHandle) {
  const auto h = make_instance(13);
  const std::string path = write_snapshot(h, "serve_release.htsnap");
  const std::int64_t mapped_before = ht::mapped_bytes_now();
  {
    auto server = ht::TreeServer::open(path);
    ASSERT_TRUE(server.ok());
    EXPECT_GT(ht::mapped_bytes_now(), mapped_before);
    // A pinned epoch keeps its mapping alive past a swap...
    auto pinned = server->state();
    ASSERT_TRUE(server->swap(path).ok());
    EXPECT_TRUE(pinned->gomory_hu.has_value());
  }
  // ...and everything unmaps once the last reference is gone.
  EXPECT_EQ(ht::mapped_bytes_now(), mapped_before);
  std::remove(path.c_str());
}

}  // namespace
