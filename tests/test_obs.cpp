// Observability layer: metrics registry, tracer, and the context
// propagation that makes recorded span trees mirror the logical recursion
// tree (not the thread schedule).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cuttree/vertex_cut_tree.hpp"
#include "graph/generators.hpp"
#include "gtest/gtest.h"
#include "obs/atomic_max.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"
#include "util/wavefront.hpp"

namespace {

using ht::obs::SpanId;
using ht::obs::TraceEvent;

/// Enables tracing for a test scope with clean buffers; restores the
/// disabled default and drops the recorded events on exit.
class TracingOn {
 public:
  TracingOn() {
    ht::ThreadPool::global().wait_idle();
    ht::obs::Tracer::global().clear();
    ht::obs::set_tracing_enabled(true);
  }
  ~TracingOn() {
    ht::obs::set_tracing_enabled(false);
    ht::ThreadPool::global().wait_idle();
    ht::obs::Tracer::global().clear();
  }
};

std::map<SpanId, TraceEvent> by_id(const std::vector<TraceEvent>& events) {
  std::map<SpanId, TraceEvent> out;
  for (const auto& ev : events) out[ev.id] = ev;
  return out;
}

const TraceEvent* find_by_name(const std::vector<TraceEvent>& events,
                               const std::string& name) {
  for (const auto& ev : events)
    if (name == ev.name) return &ev;
  return nullptr;
}

/// Renders one event as "name|key=value|..." with doubles at full
/// precision; used to compare multisets of (name, args) across runs.
std::string event_signature(const TraceEvent& ev) {
  std::ostringstream os;
  os << ev.name;
  for (const auto& a : ev.args) {
    os << "|" << a.key << "=";
    switch (a.kind) {
      case ht::obs::TraceArg::Kind::kInt:
        os << a.int_value;
        break;
      case ht::obs::TraceArg::Kind::kDouble:
        os.precision(17);
        os << a.double_value;
        break;
      case ht::obs::TraceArg::Kind::kString:
        os << a.string_value;
        break;
    }
  }
  return os.str();
}

// --- Minimal JSON validator (objects/arrays/strings/numbers/literals).
// The repo has no JSON dependency; this is enough to assert the exported
// trace and metrics snapshots are well-formed (CI additionally runs
// python3 -m json.tool on the real artifacts).

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r'))
      ++i;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s.compare(i, n, lit) != 0) return false;
    i += n;
    return true;
  }
  bool string() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    bool digits = false;
    auto eat_digits = [&] {
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
        ++i;
        digits = true;
      }
    };
    eat_digits();
    if (i < s.size() && s[i] == '.') {
      ++i;
      eat_digits();
    }
    if (digits && i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
      bool exp_digits = false;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
        ++i;
        exp_digits = true;
      }
      if (!exp_digits) return false;
    }
    return digits && i > start;
  }
  bool value() {  // NOLINT(misc-no-recursion)
    ws();
    if (i >= s.size()) return false;
    if (s[i] == '{') {
      ++i;
      ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      for (;;) {
        ws();
        if (!string()) return false;
        ws();
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      ws();
      if (i >= s.size() || s[i] != '}') return false;
      ++i;
      return true;
    }
    if (s[i] == '[') {
      ++i;
      ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      for (;;) {
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      ws();
      if (i >= s.size() || s[i] != ']') return false;
      ++i;
      return true;
    }
    if (s[i] == '"') return string();
    if (literal("true") || literal("false") || literal("null")) return true;
    return number();
  }
  bool parse() {
    const bool ok = value();
    ws();
    return ok && i == s.size();
  }
};

bool json_parses(const std::string& text) {
  JsonParser p{text};
  return p.parse();
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramBasics) {
  auto& reg = ht::obs::MetricsRegistry::global();
  auto& c = reg.counter("test.counter");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same object (stable reference registration).
  EXPECT_EQ(&reg.counter("test.counter"), &c);

  auto& g = reg.gauge("test.gauge");
  g.reset();
  g.set(-5);
  g.add(2);
  EXPECT_EQ(g.value(), -3);
  g.update_max(7);
  g.update_max(3);
  EXPECT_EQ(g.value(), 7);

  auto& h = reg.histogram("test.hist");
  h.reset();
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);   // {0}
  EXPECT_EQ(h.bucket(1), 1u);   // {1}
  EXPECT_EQ(h.bucket(2), 2u);   // {2, 3}
  EXPECT_EQ(h.bucket(11), 1u);  // [1024, 2047]
  EXPECT_EQ(ht::obs::Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(ht::obs::Histogram::bucket_upper_bound(11), 2047u);
}

TEST(Metrics, AtomicFetchMaxUnderContention) {
  std::atomic<std::int64_t> target{0};
  ht::parallel_for(512, [&](std::size_t i) {
    ht::obs::atomic_fetch_max(target, static_cast<std::int64_t>(i * 7));
  });
  EXPECT_EQ(target.load(), 511 * 7);
  // Lower values never regress the max.
  ht::obs::atomic_fetch_max<std::int64_t>(target, 5);
  EXPECT_EQ(target.load(), 511 * 7);
}

TEST(Metrics, SnapshotJsonParsesAndSortsNames) {
  auto& reg = ht::obs::MetricsRegistry::global();
  reg.counter("test.zz").add(1);
  reg.counter("test.aa").add(2);
  reg.histogram("test.hist").record(9);
  const std::string json = reg.snapshot_json();
  EXPECT_TRUE(json_parses(json)) << json;
  const auto pos_aa = json.find("\"test.aa\"");
  const auto pos_zz = json.find("\"test.zz\"");
  ASSERT_NE(pos_aa, std::string::npos);
  ASSERT_NE(pos_zz, std::string::npos);
  EXPECT_LT(pos_aa, pos_zz);  // std::map iteration = sorted names
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);
}

TEST(Metrics, HistogramSnapshotQuantiles) {
  auto& h = ht::obs::MetricsRegistry::global().histogram("test.quantiles");
  h.reset();
  const ht::obs::HistogramSnapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p50(), 0.0);

  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) h.record(v);
  const ht::obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1030u);
  EXPECT_EQ(s.max, 1024u);
  // p50: target rank 2.5 lands in bucket [2, 3] a quarter of the way in.
  EXPECT_DOUBLE_EQ(s.p50(), 2.25);
  // p99 lands in the top occupied bucket, which is clamped to the exact
  // recorded max instead of the bucket's upper bound 2047.
  EXPECT_DOUBLE_EQ(s.p99(), 1024.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1024.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);

  // A lone sample is bounded by its bucket [64, 127] clamped to max=100.
  h.reset();
  h.record(100);
  const ht::obs::HistogramSnapshot one = h.snapshot();
  EXPECT_GE(one.p50(), 64.0);
  EXPECT_LE(one.p50(), 100.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 100.0);
  h.reset();
}

TEST(Metrics, SnapshotJsonIsVersionedAndEscapesNames) {
  auto& reg = ht::obs::MetricsRegistry::global();
  reg.counter("test.esc\"quote\\slash").add(3);
  const std::string json = reg.snapshot_json();
  EXPECT_TRUE(json_parses(json)) << json;
  EXPECT_EQ(json.find("{\"version\":1,"), 0u);
  // The raw name must never appear unescaped (it would break the JSON).
  EXPECT_EQ(json.find("test.esc\"quote"), std::string::npos);
  EXPECT_NE(json.find("test.esc\\\"quote\\\\slash"), std::string::npos);
}

TEST(Metrics, RegistrySnapshotIsByteStableAcrossRenders) {
  auto& reg = ht::obs::MetricsRegistry::global();
  reg.counter("test.stable").add(7);
  reg.histogram("test.stable.hist").record(12);
  const std::string a = reg.snapshot_json();
  const std::string b = ht::obs::registry_json(reg.snapshot());
  EXPECT_EQ(a, b);  // same values -> byte-identical JSON, diffable in CI
}

// ---------------------------------------------------------------- exporter

TEST(Export, PrometheusNameSanitization) {
  EXPECT_EQ(ht::obs::prometheus_name("serve.latency.min_cut"),
            "ht_serve_latency_min_cut");
  EXPECT_EQ(ht::obs::prometheus_name("flow.builds"), "ht_flow_builds");
  EXPECT_EQ(ht::obs::prometheus_name("weird name-1"), "ht_weird_name_1");
  EXPECT_EQ(ht::obs::prometheus_name("9lives"), "ht__9lives");
}

TEST(Export, PrometheusTextRendersAllMetricFamilies) {
  ht::obs::RegistrySnapshot snap;
  snap.counters["test.prom.count"] = 5;
  snap.gauges["test.prom.gauge"] = -3;
  ht::obs::HistogramSnapshot h;
  h.count = 3;
  h.sum = 6;
  h.max = 3;
  h.buckets[1] = 1;  // {1}
  h.buckets[2] = 2;  // {2, 3}
  snap.histograms["test.prom.hist"] = h;

  const std::string text = ht::obs::prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE ht_test_prom_count counter\n"
                      "ht_test_prom_count 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ht_test_prom_gauge gauge\n"
                      "ht_test_prom_gauge -3\n"),
            std::string::npos);
  // Histogram buckets are cumulative with an +Inf series plus _sum/_count.
  EXPECT_NE(text.find("# TYPE ht_test_prom_hist histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("ht_test_prom_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ht_test_prom_hist_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ht_test_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ht_test_prom_hist_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("ht_test_prom_hist_count 3\n"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Export, JsonEscapeControlCharacters) {
  EXPECT_EQ(ht::obs::json_escape("plain"), "plain");
  EXPECT_EQ(ht::obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(ht::obs::json_escape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(ht::obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

// ---------------------------------------------------------- flight recorder

ht::obs::FlightRecord make_record(ht::obs::QueryKind kind, double cut) {
  ht::obs::FlightRecord r;
  r.start_ns = 1000;
  r.latency_ns = 250;
  r.cut_value = cut;
  r.deadline_ns = 5000000;
  r.epoch = 3;
  r.thread = 1;
  r.kind = kind;
  r.status_code = 2;  // kDeadlineExceeded's numeric value
  r.prep_exact = true;
  return r;
}

TEST(Flight, AppendDumpRoundtripPreservesEveryField) {
  ht::obs::FlightRecorder rec(16);
  rec.append(make_record(ht::obs::QueryKind::kBisection, 42.5));
  rec.append(make_record(ht::obs::QueryKind::kMinCut, -1.25));
  const auto records = rec.dump();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[0].kind, ht::obs::QueryKind::kBisection);
  EXPECT_EQ(records[1].kind, ht::obs::QueryKind::kMinCut);
  EXPECT_DOUBLE_EQ(records[0].cut_value, 42.5);
  EXPECT_DOUBLE_EQ(records[1].cut_value, -1.25);
  EXPECT_EQ(records[0].start_ns, 1000);
  EXPECT_EQ(records[0].latency_ns, 250u);
  EXPECT_EQ(records[0].deadline_ns, 5000000);
  EXPECT_EQ(records[0].epoch, 3u);
  EXPECT_EQ(records[0].thread, 1u);
  EXPECT_EQ(records[0].status_code, 2u);
  EXPECT_TRUE(records[0].prep_exact);
  EXPECT_EQ(rec.recorded(), 2u);
}

TEST(Flight, WrapKeepsTheNewestCapacityRecords) {
  ht::obs::FlightRecorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    auto r = make_record(ht::obs::QueryKind::kKway, static_cast<double>(i));
    rec.append(r);
  }
  const auto records = rec.dump();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 12 + i);  // oldest-first, newest 8 of 20
    EXPECT_DOUBLE_EQ(records[i].cut_value, static_cast<double>(12 + i));
  }
  EXPECT_EQ(rec.recorded(), 20u);
}

TEST(Flight, DisabledRecorderAppendsNothing) {
  ht::obs::FlightRecorder rec(8);
  rec.set_enabled(false);
  rec.append(make_record(ht::obs::QueryKind::kMinCut, 1.0));
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.dump().empty());
  rec.set_enabled(true);
  rec.append(make_record(ht::obs::QueryKind::kMinCut, 1.0));
  EXPECT_EQ(rec.dump().size(), 1u);
}

TEST(Flight, DumpJsonIsVersionedAndParses) {
  ht::obs::FlightRecorder rec(8);
  rec.append(make_record(ht::obs::QueryKind::kSetCut, 7.0));
  const std::string json = rec.dump_json();
  EXPECT_TRUE(json_parses(json)) << json;
  EXPECT_EQ(json.find("{\"version\":1,"), 0u);
  EXPECT_NE(json.find("\"kind\":\"set_cut\""), std::string::npos);
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
}

TEST(Flight, ConcurrentAppendersAndDumpersStayWellFormed) {
  // Dumps run against live appenders: every record read must be coherent
  // (a valid kind and the cut value matching the seq its writer packed),
  // and seqs must come out strictly increasing. Torn slots may be skipped
  // but never invented.
  ht::obs::FlightRecorder rec(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&rec, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ht::obs::FlightRecord r;
        r.kind = ht::obs::QueryKind::kMinCut;
        r.latency_ns = ++i;
        rec.append(r);
      }
    });
  }
  // On a single core the writers may not be scheduled yet; make sure the
  // dumps actually race live appends.
  while (rec.recorded() == 0) std::this_thread::yield();
  for (int round = 0; round < 200; ++round) {
    const auto records = rec.dump();
    std::uint64_t last_seq = 0;
    bool first = true;
    for (const auto& r : records) {
      if (!first) {
        EXPECT_GT(r.seq, last_seq);
      }
      first = false;
      last_seq = r.seq;
      EXPECT_EQ(r.kind, ht::obs::QueryKind::kMinCut);
    }
    EXPECT_LE(records.size(), rec.capacity());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  EXPECT_GT(rec.recorded(), 0u);
}

TEST(Metrics, PerfCountersAreRegistryBacked) {
  auto& pc = ht::PerfCounters::global();
  auto& reg = ht::obs::MetricsRegistry::global();
  pc.reset();
  pc.add_flow_build();
  pc.add_flow_build();
  pc.add_pieces(3);
  pc.note_queue_depth(17);
  pc.note_queue_depth(4);
  EXPECT_EQ(reg.counter("flow.builds").value(), pc.flow_builds());
  EXPECT_EQ(reg.counter("engine.pieces").value(), 3u);
  EXPECT_EQ(reg.gauge("pool.max_queue_depth").value(), 17);
  pc.reset();  // resets the whole registry
  EXPECT_EQ(reg.counter("flow.builds").value(), 0u);
  EXPECT_EQ(pc.max_queue_depth(), 0u);
}

TEST(Metrics, PhaseTimesSortedByName) {
  auto& pc = ht::PerfCounters::global();
  pc.reset();
  pc.add_phase_time("zeta.phase", 1.0);
  pc.add_phase_time("alpha.phase", 2.0);
  pc.add_phase_time("mid.phase", 3.0);
  pc.add_phase_time("alpha.phase", 0.5);  // accumulates
  const auto phases = pc.phase_times();
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].first, "alpha.phase");
  EXPECT_DOUBLE_EQ(phases[0].second, 2.5);
  EXPECT_EQ(phases[1].first, "mid.phase");
  EXPECT_EQ(phases[2].first, "zeta.phase");
  // report() renders phases in the same sorted order.
  const std::string report = pc.report();
  EXPECT_LT(report.find("alpha.phase"), report.find("mid.phase"));
  EXPECT_LT(report.find("mid.phase"), report.find("zeta.phase"));
  pc.reset();
}

// ----------------------------------------------------------------- tracer

TEST(Trace, DisabledSpansRecordNothing) {
  ht::ThreadPool::global().wait_idle();
  ht::obs::Tracer::global().clear();
  ASSERT_FALSE(ht::obs::tracing_enabled());
  const SpanId outer_context = ht::obs::current_span();
  {
    ht::obs::TraceSpan span("noop");
    span.arg("k", 1);
    span.arg("d", 2.0);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(ht::obs::current_span(), outer_context);
  }
  EXPECT_EQ(ht::obs::Tracer::global().event_count(), 0u);
}

TEST(Trace, NestingAndArgsOnOneThread) {
  TracingOn tracing;
  {
    ht::obs::TraceSpan outer("outer");
    outer.arg("n", 42);
    outer.arg("ratio", 0.5);
    outer.arg("label", "abc");
    EXPECT_EQ(ht::obs::current_span(), outer.id());
    {
      ht::obs::TraceSpan inner("inner");
      EXPECT_EQ(ht::obs::current_span(), inner.id());
    }
    EXPECT_EQ(ht::obs::current_span(), outer.id());
  }
  EXPECT_EQ(ht::obs::current_span(), 0u);

  const auto events = ht::obs::Tracer::global().collect();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = find_by_name(events, "outer");
  const TraceEvent* inner = find_by_name(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_GE(outer->dur_us, inner->dur_us);
  ASSERT_EQ(outer->args.size(), 3u);
  EXPECT_STREQ(outer->args[0].key, "n");
  EXPECT_EQ(outer->args[0].int_value, 42);
  EXPECT_EQ(outer->args[1].kind, ht::obs::TraceArg::Kind::kDouble);
  EXPECT_DOUBLE_EQ(outer->args[1].double_value, 0.5);
  EXPECT_EQ(outer->args[2].string_value, "abc");
}

TEST(Trace, ContextPropagatesAcrossPoolSubmit) {
  TracingOn tracing;
  SpanId outer_id = 0;
  SpanId inner_id = 0;
  {
    ht::obs::TraceSpan outer("submit.outer");
    outer_id = outer.id();
    auto fut = ht::ThreadPool::global().submit([] {
      ht::obs::TraceSpan inner("submit.inner");
      return inner.id();
    });
    inner_id = fut.get();
  }
  ht::ThreadPool::global().wait_idle();
  const auto events = ht::obs::Tracer::global().collect();
  const auto ids = by_id(events);
  ASSERT_TRUE(ids.count(inner_id));
  // The task's span parents under the *enqueuing* span even though it may
  // have run on a different (stealing) thread.
  EXPECT_EQ(ids.at(inner_id).parent, outer_id);
  ASSERT_TRUE(ids.count(outer_id));
  EXPECT_EQ(ids.at(outer_id).parent, 0u);
}

TEST(Trace, WavefrontSpanTreeMatchesLogicalRecursion) {
  // Items are heap-style labels: label L at depth d splits into 2L and
  // 2L+1 until depth 3 — a complete binary recursion tree with 15 items.
  // The recorded piece spans must reproduce exactly that tree via parent
  // ids, regardless of which threads ran which items.
  struct Item {
    int label = 0;
    int depth = 0;
  };
  TracingOn tracing;
  ht::obs::TraceSpan root("test.root");
  const SpanId root_id = root.id();
  ht::parallel_wavefront<Item, int>(
      {Item{1, 0}}, 7,
      [](const Item& item, ht::Rng&) {
        ht::obs::TraceSpan span("test.item");
        span.arg("label", item.label);
        return item.label;
      },
      [](Item&& item, int&&, const auto& emit) {
        if (item.depth < 3) {
          emit(Item{2 * item.label, item.depth + 1});
          emit(Item{2 * item.label + 1, item.depth + 1});
        }
      });
  const auto events = ht::obs::Tracer::global().collect();
  const auto ids = by_id(events);

  // piece_of[label] = the wavefront.piece span that processed this label
  // (found through the test.item span recorded inside it).
  std::map<int, SpanId> piece_of;
  for (const auto& ev : events) {
    if (std::string(ev.name) != "test.item") continue;
    ASSERT_EQ(ev.args.size(), 1u);
    const int label = static_cast<int>(ev.args[0].int_value);
    ASSERT_TRUE(ids.count(ev.parent)) << "test.item has no parent span";
    EXPECT_STREQ(ids.at(ev.parent).name, "wavefront.piece");
    piece_of[label] = ev.parent;
  }
  ASSERT_EQ(piece_of.size(), 15u);
  // The root item belongs to the caller's span; every other item's piece
  // span parents under the piece span of the label that emitted it.
  EXPECT_EQ(ids.at(piece_of.at(1)).parent, root_id);
  for (const auto& [label, piece] : piece_of) {
    if (label == 1) continue;
    EXPECT_EQ(ids.at(piece).parent, piece_of.at(label / 2))
        << "label " << label << " not parented under label " << label / 2;
  }
}

TEST(Trace, VertexCutTreeSpanTreeIsRootedAndWellFormed) {
  TracingOn tracing;
  ht::Rng rng(4242);
  const auto g = ht::graph::gnp_connected(60, 5.0 / 60, rng);
  ht::cuttree::VertexCutTreeOptions opt;
  opt.threshold_override = 0.75;  // force real recursion
  (void)ht::cuttree::build_vertex_cut_tree(g, opt);
  ht::ThreadPool::global().wait_idle();

  const auto events = ht::obs::Tracer::global().collect();
  const auto ids = by_id(events);
  const TraceEvent* root = find_by_name(events, "vertex_cut_tree");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);

  std::size_t pieces = 0, oracles = 0, flows = 0;
  for (const auto& ev : events) {
    // Every span's parent chain reaches the top without dangling ids.
    SpanId cursor = ev.id;
    int hops = 0;
    while (cursor != 0) {
      ASSERT_TRUE(ids.count(cursor)) << "dangling parent id for " << ev.name;
      cursor = ids.at(cursor).parent;
      ASSERT_LT(++hops, 64) << "parent cycle for " << ev.name;
    }
    const std::string name = ev.name;
    if (name == "wavefront.piece") {
      ++pieces;
      const TraceEvent& parent = ids.at(ev.parent);
      // Wave-0 pieces hang off the builder span; deeper pieces hang off
      // the piece that emitted them.
      const std::string parent_name = parent.name;
      EXPECT_TRUE(parent_name == "vertex_cut_tree" ||
                  parent_name == "wavefront.piece")
          << parent_name;
    } else if (name == "vct.piece_oracle") {
      ++oracles;
      EXPECT_STREQ(ids.at(ev.parent).name, "wavefront.piece");
    } else if (name == "flow.min_vertex_cut") {
      ++flows;
    }
  }
  EXPECT_GT(pieces, 1u);        // the threshold forces at least one split
  EXPECT_EQ(pieces, oracles);   // one oracle span per piece
  EXPECT_GT(flows, 0u);         // the spectral oracle ran real flows
}

TEST(Trace, SameSpanMultisetForOneAndFourThreads) {
  // The logical span tree (names + args) must be identical for any thread
  // count; only ids/timestamps/thread assignment may differ. Uses the
  // vertex cut tree: its oracle fan-out is fixed per piece (unlike
  // Gomory-Hu speculation, whose batch size follows the pool size).
  ht::Rng rng(777);
  const auto g = ht::graph::gnp_connected(48, 5.0 / 48, rng);
  ht::cuttree::VertexCutTreeOptions opt;
  opt.threshold_override = 0.6;
  opt.seed = 99;

  const auto run = [&](std::size_t threads) {
    ht::ThreadPool::reset_global(threads);
    ht::obs::Tracer::global().clear();
    ht::obs::set_tracing_enabled(true);
    (void)ht::cuttree::build_vertex_cut_tree(g, opt);
    ht::ThreadPool::global().wait_idle();
    ht::obs::set_tracing_enabled(false);
    const auto events = ht::obs::Tracer::global().collect();
    ht::obs::Tracer::global().clear();
    std::vector<std::string> signatures;
    signatures.reserve(events.size());
    for (const auto& ev : events) signatures.push_back(event_signature(ev));
    std::sort(signatures.begin(), signatures.end());
    return signatures;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ht::ThreadPool::reset_global();
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Trace, ChromeTraceJsonParsesAndCarriesSpanIds) {
  TracingOn tracing;
  {
    ht::obs::TraceSpan outer("json.outer");
    outer.arg("n", 7);
    outer.arg("weird", "quote\"backslash\\end");
    ht::obs::TraceSpan inner("json.inner");
    inner.arg("ratio", 0.25);
  }
  const std::string json = ht::obs::Tracer::global().chrome_trace_json();
  EXPECT_TRUE(json_parses(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\""), std::string::npos);
  EXPECT_NE(json.find("quote\\\"backslash\\\\end"), std::string::npos);

  // A traced bench run must also produce a loadable file end-to-end.
  const std::string path = ::testing::TempDir() + "ht_trace_test.json";
  ASSERT_TRUE(ht::obs::Tracer::global().write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
    contents.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, json);
}

TEST(Trace, EnableMidSpanNeverCorruptsContext) {
  // A span constructed while tracing is off stays inactive even if
  // tracing flips on before its destructor; the context is untouched.
  ht::ThreadPool::global().wait_idle();
  ht::obs::Tracer::global().clear();
  {
    ht::obs::TraceSpan span("flip");
    ht::obs::set_tracing_enabled(true);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(ht::obs::current_span(), 0u);
    ht::obs::set_tracing_enabled(false);
  }
  EXPECT_EQ(ht::obs::Tracer::global().event_count(), 0u);
  EXPECT_EQ(ht::obs::current_span(), 0u);
}

}  // namespace
