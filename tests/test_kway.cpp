#include <gtest/gtest.h>

#include "hypergraph/generators.hpp"
#include "partition/kway.hpp"
#include "util/rng.hpp"

namespace {

using ht::hypergraph::Hypergraph;
using ht::partition::kway_connectivity;
using ht::partition::kway_cut;
using ht::partition::kway_peel;
using ht::partition::kway_random;
using ht::partition::kway_recursive_bisection;
using ht::partition::validate_kway;

TEST(KWayObjectives, HandComputed) {
  Hypergraph h(6);
  h.add_edge({0, 1, 2});     // parts {0,0,1} -> spans 2 parts
  h.add_edge({3, 4, 5});     // parts {1,2,2} -> spans 2 parts
  h.add_edge({0, 3}, 2.0);   // parts {0,1}  -> spans 2 parts
  h.add_edge({0, 1}, 4.0);   // parts {0,0}  -> internal
  h.finalize();
  const std::vector<std::int32_t> part{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(kway_cut(h, part), 1.0 + 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(kway_connectivity(h, part), 1.0 + 1.0 + 2.0);
}

TEST(KWayObjectives, ConnectivityExceedsCutOnWideEdges) {
  Hypergraph h(6);
  h.add_edge({0, 2, 4});  // touches parts 0,1,2 -> connectivity 2, cut 1
  h.finalize();
  const std::vector<std::int32_t> part{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(kway_cut(h, part), 1.0);
  EXPECT_DOUBLE_EQ(kway_connectivity(h, part), 2.0);
}

TEST(KWayRecursive, RecoversPlantedCommunities) {
  ht::Rng rng(1);
  const Hypergraph h =
      ht::hypergraph::planted_parts(4, 8, 3, 40, 4, rng);
  ht::Rng prng(2);
  const auto sol = kway_recursive_bisection(h, 4, prng);
  validate_kway(h, sol);
  // Planted solution has connectivity <= 4 (cross edges); allow slack for
  // the heuristic but it must land near it.
  EXPECT_LE(sol.connectivity, 12.0);
}

TEST(KWayRecursive, KOneIsTrivial) {
  ht::Rng rng(3);
  const Hypergraph h = ht::hypergraph::random_uniform(8, 10, 3, rng);
  const auto sol = kway_recursive_bisection(h, 1, rng);
  validate_kway(h, sol);
  EXPECT_DOUBLE_EQ(sol.cut, 0.0);
}

TEST(KWayRecursive, NonPowerOfTwoRejected) {
  ht::Rng rng(4);
  const Hypergraph h = ht::hypergraph::random_uniform(12, 10, 3, rng);
  EXPECT_THROW(kway_recursive_bisection(h, 3, rng), std::logic_error);
}

TEST(KWayPeel, ArbitraryK) {
  ht::Rng rng(5);
  const Hypergraph h = ht::hypergraph::planted_parts(3, 8, 3, 40, 3, rng);
  ht::Rng prng(6);
  const auto sol = kway_peel(h, 3, prng);
  validate_kway(h, sol);
  ht::Rng rrng(7);
  const auto random = kway_random(h, 3, rrng);
  validate_kway(h, random);
  EXPECT_LT(sol.connectivity, random.connectivity);
}

TEST(KWayPeel, MatchesBisectionAtKTwo) {
  ht::Rng rng(8);
  const Hypergraph h = ht::hypergraph::planted_bisection(8, 3, 30, 2, rng);
  ht::Rng prng(9);
  const auto peel = kway_peel(h, 2, prng);
  validate_kway(h, peel);
  EXPECT_LE(peel.cut, 8.0);  // near the planted 2
}

TEST(KWayRandom, BalancedAndValid) {
  ht::Rng rng(10);
  const Hypergraph h = ht::hypergraph::random_uniform(24, 30, 3, rng);
  for (std::int32_t k : {2, 3, 4, 6}) {
    ht::Rng prng(static_cast<std::uint64_t>(k));
    const auto sol = kway_random(h, k, prng);
    validate_kway(h, sol);
    EXPECT_EQ(sol.k, k);
  }
}

TEST(PlantedParts, GeneratorShape) {
  ht::Rng rng(11);
  const Hypergraph h = ht::hypergraph::planted_parts(3, 6, 3, 10, 5, rng);
  EXPECT_EQ(h.num_vertices(), 18);
  EXPECT_EQ(h.num_edges(), 35);
  // Planted assignment has connectivity <= cross edges.
  std::vector<std::int32_t> part(18);
  for (int v = 0; v < 18; ++v) part[static_cast<std::size_t>(v)] = v / 6;
  EXPECT_LE(kway_connectivity(h, part), 5.0);
}

}  // namespace
