#include <gtest/gtest.h>

#include "hypergraph/generators.hpp"
#include "partition/exact.hpp"
#include "partition/fm.hpp"
#include "partition/fm_fast.hpp"
#include "util/rng.hpp"

namespace {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

TEST(FmFast, RefineKeepsBalanceAndNeverWorsens) {
  ht::Rng rng(1);
  const Hypergraph h = ht::hypergraph::planted_bisection(12, 3, 50, 2, rng);
  std::vector<bool> start(24, false);
  for (VertexId v = 0; v < 12; ++v)
    start[static_cast<std::size_t>(2 * v)] = true;
  const double start_cut = h.cut_weight(start);
  const auto refined = ht::partition::fm_refine_fast(h, start);
  ht::partition::validate_bisection(h, refined);
  EXPECT_LE(refined.cut, start_cut);
}

TEST(FmFast, RecoversPlantedBisection) {
  ht::Rng rng(2);
  const Hypergraph h = ht::hypergraph::planted_bisection(16, 3, 80, 2, rng);
  const auto sol = ht::partition::fm_bisection_fast(h, rng, 8);
  ht::partition::validate_bisection(h, sol);
  EXPECT_LE(sol.cut, 2.0 + 1e-9);
}

class FmCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FmCrossCheck, FastMatchesReferenceQuality) {
  // Both variants start from the same partitions; the fast variant must
  // land within a whisker of the reference (tie-breaking may differ, both
  // are monotone refiners of the same start).
  ht::Rng rng(GetParam());
  const Hypergraph h = ht::hypergraph::random_uniform(16, 28, 3, rng);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<VertexId> perm(16);
    for (VertexId v = 0; v < 16; ++v) perm[static_cast<std::size_t>(v)] = v;
    rng.shuffle(perm);
    std::vector<bool> start(16, false);
    for (VertexId i = 0; i < 8; ++i)
      start[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
          true;
    const auto ref = ht::partition::fm_refine(h, start);
    const auto fast = ht::partition::fm_refine_fast(h, start);
    ht::partition::validate_bisection(h, ref);
    ht::partition::validate_bisection(h, fast);
    const double start_cut = h.cut_weight(start);
    EXPECT_LE(ref.cut, start_cut + 1e-9);
    EXPECT_LE(fast.cut, start_cut + 1e-9);
    // Quality parity within a modest additive slack — tie-breaking and
    // pass order legitimately diverge, in either direction.
    EXPECT_LE(fast.cut, ref.cut + 4.0 + 1e-9);
    EXPECT_LE(ref.cut, fast.cut + 4.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FmFast, MatchesExactOftenOnSmall) {
  ht::Rng rng(9);
  int hits = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Hypergraph h = ht::hypergraph::random_uniform(10, 16, 3, rng);
    const auto exact = ht::partition::exact_hypergraph_bisection(h);
    const auto fast = ht::partition::fm_bisection_fast(h, rng, 12);
    EXPECT_GE(fast.cut, exact.cut - 1e-9);
    if (fast.cut <= exact.cut + 1e-9) ++hits;
  }
  EXPECT_GE(hits, 4);
}

TEST(FmFast, RejectsUnbalancedStart) {
  Hypergraph h(4);
  h.add_edge({0, 1});
  h.finalize();
  EXPECT_THROW(
      ht::partition::fm_refine_fast(h, {true, true, true, false}),
      std::logic_error);
}

TEST(FmFast, WeightedEdgesRespected) {
  // Heavy edge must not be cut when a cheap alternative exists.
  Hypergraph h(4);
  h.add_edge({0, 1}, 100.0);
  h.add_edge({2, 3}, 100.0);
  h.add_edge({1, 2}, 1.0);
  h.finalize();
  const auto sol = ht::partition::fm_refine_fast(
      h, {true, false, true, false});  // bad start cuts both heavies
  ht::partition::validate_bisection(h, sol);
  EXPECT_DOUBLE_EQ(sol.cut, 1.0);
}

}  // namespace
