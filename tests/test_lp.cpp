#include <gtest/gtest.h>

#include <cmath>

#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "lp/fractional_cut.hpp"
#include "lp/simplex.hpp"
#include "lp/spectral.hpp"
#include "util/rng.hpp"

namespace {

using ht::lp::Constraint;
using ht::lp::LpStatus;
using ht::lp::Relation;
using ht::lp::SimplexSolver;

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
  SimplexSolver solver(2);
  solver.add_constraint({{1, 0}, Relation::kLessEqual, 4});
  solver.add_constraint({{0, 2}, Relation::kLessEqual, 12});
  solver.add_constraint({{3, 2}, Relation::kLessEqual, 18});
  const auto r = solver.maximize({3, 5});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-7);
  EXPECT_NEAR(r.solution[0], 2.0, 1e-7);
  EXPECT_NEAR(r.solution[1], 6.0, 1e-7);
}

TEST(Simplex, Minimization) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> opt at intersection
  // (8/5, 6/5), value 14/5.
  SimplexSolver solver(2);
  solver.add_constraint({{1, 2}, Relation::kGreaterEqual, 4});
  solver.add_constraint({{3, 1}, Relation::kGreaterEqual, 6});
  const auto r = solver.minimize({1, 1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 14.0 / 5.0, 1e-7);
}

TEST(Simplex, EqualityConstraints) {
  // max x + 2y s.t. x + y = 3, x <= 2 -> (1...) best y: x=0,y=3 obj 6?
  // x + y = 3, x <= 2, x,y >= 0; max x + 2y -> x=0, y=3 -> 6.
  SimplexSolver solver(2);
  solver.add_constraint({{1, 1}, Relation::kEqual, 3});
  solver.add_constraint({{1, 0}, Relation::kLessEqual, 2});
  const auto r = solver.maximize({1, 2});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  SimplexSolver solver(1);
  solver.add_constraint({{1}, Relation::kLessEqual, 1});
  solver.add_constraint({{1}, Relation::kGreaterEqual, 2});
  EXPECT_EQ(solver.maximize({1}).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  SimplexSolver solver(2);
  solver.add_constraint({{1, -1}, Relation::kLessEqual, 1});
  EXPECT_EQ(solver.maximize({1, 1}).status, LpStatus::kUnbounded);
}

TEST(Simplex, UnconstrainedCases) {
  SimplexSolver solver(2);
  EXPECT_EQ(solver.maximize({1, 0}).status, LpStatus::kUnbounded);
  const auto r = solver.maximize({-1, -1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 means y >= x + 1; max x s.t. x <= 3, x - y <= -1, y <= 5.
  SimplexSolver solver(2);
  solver.add_constraint({{1, 0}, Relation::kLessEqual, 3});
  solver.add_constraint({{1, -1}, Relation::kLessEqual, -1});
  solver.add_constraint({{0, 1}, Relation::kLessEqual, 5});
  const auto r = solver.maximize({1, 0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
}

TEST(Simplex, DegenerateTerminates) {
  // Degenerate vertex; Bland's rule must still terminate.
  SimplexSolver solver(2);
  solver.add_constraint({{1, 1}, Relation::kLessEqual, 1});
  solver.add_constraint({{1, 1}, Relation::kLessEqual, 1});
  solver.add_constraint({{1, 0}, Relation::kLessEqual, 1});
  const auto r = solver.maximize({1, 1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-7);
}

TEST(Spectral, FiedlerSeparatesTwoCliques) {
  // Two K5's joined by one edge: Fiedler vector signs split the cliques.
  ht::graph::Graph g(10);
  for (int a = 0; a < 5; ++a)
    for (int b = a + 1; b < 5; ++b) {
      g.add_edge(a, b);
      g.add_edge(5 + a, 5 + b);
    }
  g.add_edge(0, 5);
  g.finalize();
  ht::Rng rng(1);
  const auto f = ht::lp::fiedler_vector(g, {}, rng);
  for (int v = 1; v < 5; ++v)
    EXPECT_GT(f.vector[0] * f.vector[static_cast<std::size_t>(v)], 0.0);
  for (int v = 6; v < 10; ++v)
    EXPECT_GT(f.vector[5] * f.vector[static_cast<std::size_t>(v)], 0.0);
  EXPECT_LT(f.vector[0] * f.vector[5], 0.0);
}

TEST(Spectral, PathEigenvalueMatchesClosedForm) {
  // Path P_n Laplacian: lambda_2 = 2(1 - cos(pi/n)).
  const int n = 12;
  const ht::graph::Graph g = ht::graph::path(n);
  ht::Rng rng(2);
  const auto f = ht::lp::fiedler_vector(g, {}, rng, 20000, 1e-12);
  const double expected = 2.0 * (1.0 - std::cos(M_PI / n));
  EXPECT_NEAR(f.eigenvalue, expected, 1e-4);
}

TEST(Spectral, VectorIsMassOrthogonalAndUnit) {
  ht::Rng rng(3);
  const ht::graph::Graph g = ht::graph::grid(4, 4);
  std::vector<double> mass(16, 1.0);
  mass[3] = 5.0;
  const auto f = ht::lp::fiedler_vector(g, mass, rng);
  double dot = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    dot += mass[i] * f.vector[i];
    norm += f.vector[i] * f.vector[i];
  }
  EXPECT_NEAR(dot, 0.0, 1e-5);
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(FractionalCut, MatchesFlowOnPath) {
  const ht::graph::Graph g = ht::graph::path(5);
  const auto lp = ht::lp::fractional_vertex_cut(g, {0}, {4});
  EXPECT_TRUE(lp.converged);
  EXPECT_NEAR(lp.value, 1.0, 1e-6);
}

TEST(FractionalCut, DisconnectedTerminalsCostZero) {
  ht::graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const auto lp = ht::lp::fractional_vertex_cut(g, {0}, {3});
  EXPECT_TRUE(lp.converged);
  EXPECT_NEAR(lp.value, 0.0, 1e-9);
}

TEST(FractionalCut, LpEqualsIntegralVertexCut) {
  // The vertex-cut LP is integral: LP value == gamma from the flow solver.
  ht::Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    ht::graph::Graph g = ht::graph::gnp_connected(9, 0.35, rng);
    for (ht::graph::VertexId v = 0; v < g.num_vertices(); ++v)
      g.set_vertex_weight(v, static_cast<double>(1 + rng.next_below(3)));
    auto pick = rng.sample_without_replacement(9, 2);
    const std::vector<ht::graph::VertexId> a{pick[0]}, b{pick[1]};
    const auto lp = ht::lp::fractional_vertex_cut(g, a, b);
    const auto flow = ht::flow::min_vertex_cut(g, a, b);
    ASSERT_TRUE(lp.converged);
    EXPECT_NEAR(lp.value, flow.value, 1e-5)
        << "trial " << trial << " terminals " << pick[0] << "," << pick[1];
  }
}

}  // namespace
