#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/subsets.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/wavefront.hpp"

namespace {

TEST(Check, ThrowsOnFailure) {
  EXPECT_THROW(HT_CHECK(1 == 2), std::logic_error);
  EXPECT_NO_THROW(HT_CHECK(1 == 1));
  EXPECT_THROW(HT_CHECK_MSG(false, "context " << 42), std::logic_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  ht::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  ht::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  ht::Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  ht::Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  ht::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SampleWithoutReplacementDistinctSorted) {
  ht::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::int32_t>(5 + rng.next_below(50));
    const auto k = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(n) + 1));
    const auto sample = rng.sample_without_replacement(n, k);
    ASSERT_EQ(static_cast<std::int32_t>(sample.size()), k);
    std::set<std::int32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), sample.size());
    for (auto v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  }
}

TEST(Rng, SampleFullRange) {
  ht::Rng rng(13);
  const auto all = rng.sample_without_replacement(8, 8);
  ASSERT_EQ(all.size(), 8u);
  for (std::int32_t i = 0; i < 8; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShufflePreservesMultiset) {
  ht::Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
  ht::Rng a(42);
  ht::Rng b(42);
  ht::Rng as = a.split();
  ht::Rng bs = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(as(), bs());
}

TEST(Stats, SummaryBasics) {
  const auto s = ht::summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, SummarySingleValue) {
  const auto s = ht::summarize({7.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(ht::quantile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ht::quantile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(ht::quantile_sorted(sorted, 1.0), 10.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(ht::geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(ht::geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * std::sqrt(v));  // exponent 1.5
  }
  EXPECT_NEAR(ht::log_log_slope(x, y), 1.5, 1e-9);
}

TEST(Stats, LogLogSlopeConstant) {
  std::vector<double> x{2, 4, 8}, y{5, 5, 5};
  EXPECT_NEAR(ht::log_log_slope(x, y), 0.0, 1e-9);
}

TEST(Table, AlignedAndCsvOutput) {
  ht::Table t({"name", "value"});
  t.add("alpha", 1.5);
  t.add("b", 42);
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\nalpha,1.5\nb,42\n");
  std::ostringstream md;
  t.print_markdown(md);
  EXPECT_NE(md.str().find("| alpha | 1.5 |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  ht::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Subsets, EnumeratesAllMasks) {
  int count = 0;
  ht::for_each_subset(4, [&](std::uint32_t) { ++count; });
  EXPECT_EQ(count, 16);
}

TEST(Subsets, CombinationsCountAndOrder) {
  std::vector<std::vector<int>> combos;
  ht::for_each_combination(5, 3,
                           [&](const std::vector<int>& c) { combos.push_back(c); });
  EXPECT_EQ(combos.size(), 10u);  // C(5,3)
  EXPECT_EQ(combos.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(combos.back(), (std::vector<int>{2, 3, 4}));
  for (const auto& c : combos) EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
}

TEST(Subsets, ZeroCombination) {
  int count = 0;
  ht::for_each_combination(4, 0, [&](const std::vector<int>& c) {
    EXPECT_TRUE(c.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Subsets, MaskToVertices) {
  const auto v = ht::mask_to_vertices(0b1011u, 4);
  EXPECT_EQ(v, (std::vector<std::int32_t>{0, 1, 3}));
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  ht::parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  bool called = false;
  ht::parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  EXPECT_THROW(ht::parallel_for(64,
                                [&](std::size_t i) {
                                  if (i == 13) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, DeterministicAggregation) {
  // Values derived from the index only — any schedule gives the same sum.
  std::vector<double> out(1000);
  ht::parallel_for(out.size(), [&](std::size_t i) {
    ht::Rng rng(static_cast<std::uint64_t>(i));
    out[i] = rng.next_double();
  });
  std::vector<double> expected(1000);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ht::Rng rng(static_cast<std::uint64_t>(i));
    expected[i] = rng.next_double();
  }
  EXPECT_EQ(out, expected);
}

TEST(ThreadPool, SubmitReturnsFutureValue) {
  auto fut = ht::ThreadPool::global().submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  auto fut = ht::ThreadPool::global().submit(
      []() -> int { throw std::runtime_error("submit boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, NestedParallelForFromPoolWorkers) {
  // The outer iterations run on pool workers; each spawns an inner
  // parallel_for. With blocking waits this deadlocks on a small pool —
  // the stealing wait (help_until) makes it safe.
  std::atomic<int> total{0};
  ht::parallel_for(8, [&](std::size_t) {
    ht::parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, EnqueueExceptionRethrownAtWaitIdle) {
  auto& pool = ht::ThreadPool::global();
  pool.enqueue([] { throw std::runtime_error("enqueue boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error must not leak into the next cycle.
  pool.enqueue([] {});
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, WaitIdleUnderConcurrentProducers) {
  // Producer tasks themselves enqueue more work (nested submission);
  // wait_idle must only return once the transitive closure is drained.
  auto& pool = ht::ThreadPool::global();
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 32;
  std::atomic<int> total{0};
  for (int p = 0; p < kProducers; ++p) {
    pool.enqueue([&pool, &total] {
      for (int i = 0; i < kPerProducer; ++i)
        pool.enqueue([&total] { total.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), kProducers * kPerProducer);
}

TEST(ThreadPool, TryRunOneEmptyQueue) {
  auto& pool = ht::ThreadPool::global();
  pool.wait_idle();
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ThreadPool, ConfiguredThreadsParsesEnv) {
  ::setenv("HT_THREADS", "3", 1);
  EXPECT_EQ(ht::ThreadPool::configured_threads(), 3u);
  ::setenv("HT_THREADS", "0", 1);
  EXPECT_GE(ht::ThreadPool::configured_threads(), 1u);
  ::setenv("HT_THREADS", "junk", 1);
  EXPECT_GE(ht::ThreadPool::configured_threads(), 1u);
  ::unsetenv("HT_THREADS");
}

TEST(ThreadPool, ResetGlobalChangesSize) {
  ht::ThreadPool::reset_global(2);
  EXPECT_EQ(ht::ThreadPool::global().size(), 2u);
  ht::ThreadPool::reset_global();  // back to the configured default
  EXPECT_GE(ht::ThreadPool::global().size(), 1u);
}

TEST(Wavefront, DeriveSeedIsStableAndSpreads) {
  const std::uint64_t a = ht::derive_seed(12345, 0);
  EXPECT_EQ(a, ht::derive_seed(12345, 0));
  EXPECT_NE(a, ht::derive_seed(12345, 1));
  EXPECT_NE(a, ht::derive_seed(12346, 0));
}

TEST(Wavefront, ProcessesItemsInFifoOrderWithEmission) {
  // Each item i < 4 emits two children; fold order must match the serial
  // FIFO queue: 0,1,2,3 then the children in emission order.
  std::vector<int> folded;
  std::vector<std::int64_t> seeds_seen;
  ht::parallel_wavefront<int, std::int64_t>(
      std::vector<int>{0, 1, 2, 3}, /*seed=*/99,
      [](const int& item, ht::Rng& rng) {
        (void)rng;
        return static_cast<std::int64_t>(item);
      },
      [&](int item, std::int64_t result, auto&& emit) {
        folded.push_back(item);
        seeds_seen.push_back(result);
        if (item < 4) {
          emit(item * 10 + 4);
          emit(item * 10 + 5);
        }
      });
  const std::vector<int> expected{0, 1,  2,  3,  4,  5,  14, 15,
                                  24, 25, 34, 35};
  EXPECT_EQ(folded, expected);
}

TEST(Wavefront, RngStreamsDependOnGlobalIndexOnly) {
  // Run the same wavefront twice with different pool sizes; the map-phase
  // RNG draws must be identical because they derive from (seed, index).
  auto run = [] {
    std::vector<std::uint64_t> draws;
    ht::parallel_wavefront<int, std::uint64_t>(
        std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}, /*seed=*/7,
        [](const int&, ht::Rng& rng) { return rng.next_below(1u << 30); },
        [&](int, std::uint64_t result, auto&&) { draws.push_back(result); });
    return draws;
  };
  ht::ThreadPool::reset_global(1);
  const auto serial = run();
  ht::ThreadPool::reset_global(4);
  const auto parallel = run();
  ht::ThreadPool::reset_global();
  EXPECT_EQ(serial, parallel);
}

TEST(PerfCounters, AccumulatesAndResets) {
  auto& pc = ht::PerfCounters::global();
  pc.reset();
  pc.add_pieces(3);
  pc.add_max_flow_call();
  pc.note_queue_depth(7);
  pc.note_queue_depth(2);
  pc.add_phase_time("test.phase", 0.5);
  EXPECT_EQ(pc.pieces(), 3u);
  EXPECT_EQ(pc.max_flow_calls(), 1u);
  EXPECT_GE(pc.max_queue_depth(), 7u);
  const std::string report = pc.report();
  EXPECT_NE(report.find("pieces=3"), std::string::npos);
  EXPECT_NE(report.find("test.phase"), std::string::npos);
  pc.reset();
  EXPECT_EQ(pc.pieces(), 0u);
  EXPECT_EQ(pc.max_flow_calls(), 0u);
}

}  // namespace
