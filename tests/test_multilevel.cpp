#include <gtest/gtest.h>

#include "hypergraph/generators.hpp"
#include "hypergraph/hypergraph.hpp"
#include "partition/exact.hpp"
#include "partition/multilevel.hpp"
#include "util/rng.hpp"

namespace {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

// ---------- contraction ----------

TEST(Contract, MergesPinsAndWeights) {
  Hypergraph h(4);
  h.add_edge({0, 1}, 1.0);
  h.add_edge({0, 2}, 2.0);
  h.add_edge({1, 2}, 4.0);
  h.add_edge({2, 3}, 8.0);
  h.set_vertex_weight(1, 3.0);
  h.finalize();
  // Clusters: {0,1} -> 0, {2} -> 1, {3} -> 2.
  const auto coarse = ht::hypergraph::contract(h, {0, 0, 1, 2}, 3);
  EXPECT_EQ(coarse.num_vertices(), 3);
  // Edge {0,1} collapses; {0,2} and {1,2} merge into {c0,c1} weight 6;
  // {2,3} -> {c1,c2} weight 8.
  EXPECT_EQ(coarse.num_edges(), 2);
  double total = 0.0;
  for (ht::hypergraph::EdgeId e = 0; e < coarse.num_edges(); ++e)
    total += coarse.edge_weight(e);
  EXPECT_DOUBLE_EQ(total, 14.0);
  EXPECT_DOUBLE_EQ(coarse.vertex_weight(0), 4.0);  // 1 + 3
}

TEST(Contract, CutsArePreservedUnderRefinementOfClusters) {
  // Any partition of the coarse hypergraph lifts to a partition of the
  // fine one with the SAME cut (cluster-respecting cuts are preserved).
  ht::Rng rng(1);
  const Hypergraph h = ht::hypergraph::random_uniform(12, 20, 3, rng);
  std::vector<std::int32_t> cluster(12);
  for (int v = 0; v < 12; ++v) cluster[static_cast<std::size_t>(v)] = v / 2;
  const auto coarse = ht::hypergraph::contract(h, cluster, 6);
  for (std::uint32_t mask = 1; mask < 63; ++mask) {
    std::vector<bool> coarse_side(6, false);
    for (int c = 0; c < 6; ++c) coarse_side[static_cast<std::size_t>(c)] =
        (mask >> c) & 1u;
    std::vector<bool> fine_side(12, false);
    for (int v = 0; v < 12; ++v)
      fine_side[static_cast<std::size_t>(v)] =
          coarse_side[static_cast<std::size_t>(v / 2)];
    EXPECT_NEAR(coarse.cut_weight(coarse_side), h.cut_weight(fine_side),
                1e-9);
  }
}

TEST(Contract, DropsCollapsedEdges) {
  Hypergraph h(3);
  h.add_edge({0, 1, 2});
  h.finalize();
  const auto coarse = ht::hypergraph::contract(h, {0, 0, 0}, 1);
  EXPECT_EQ(coarse.num_edges(), 0);
  EXPECT_DOUBLE_EQ(coarse.vertex_weight(0), 3.0);
}

// ---------- multilevel bisection ----------

TEST(Multilevel, ValidOnRandomInstances) {
  ht::Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    const Hypergraph h = ht::hypergraph::random_uniform(40, 80, 3, rng);
    ht::Rng prng(static_cast<std::uint64_t>(trial));
    const auto sol = ht::partition::multilevel_bisection(h, prng);
    ht::partition::validate_bisection(h, sol);
  }
}

TEST(Multilevel, RecoversPlantedBisection) {
  ht::Rng rng(3);
  const Hypergraph h = ht::hypergraph::planted_bisection(32, 3, 160, 4, rng);
  ht::Rng prng(4);
  const auto sol = ht::partition::multilevel_bisection(h, prng);
  ht::partition::validate_bisection(h, sol);
  EXPECT_LE(sol.cut, 4.0 + 1e-9);
}

TEST(Multilevel, NearExactOnSmall) {
  ht::Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    const Hypergraph h = ht::hypergraph::random_uniform(12, 20, 3, rng);
    const auto exact = ht::partition::exact_hypergraph_bisection(h);
    ht::Rng prng(static_cast<std::uint64_t>(trial) + 7);
    const auto sol = ht::partition::multilevel_bisection(h, prng);
    ht::partition::validate_bisection(h, sol);
    EXPECT_GE(sol.cut, exact.cut - 1e-9);
    EXPECT_LE(sol.cut, 2.0 * exact.cut + 2.0);
  }
}

TEST(Multilevel, HandlesEdgelessInstances) {
  Hypergraph h(8);
  h.finalize();
  ht::Rng rng(6);
  const auto sol = ht::partition::multilevel_bisection(h, rng);
  ht::partition::validate_bisection(h, sol);
  EXPECT_DOUBLE_EQ(sol.cut, 0.0);
}

TEST(Multilevel, LargerInstanceBeatsRandomClearly) {
  ht::Rng rng(7);
  const Hypergraph h = ht::hypergraph::netlist_like(256, 420, 4, rng);
  ht::Rng prng(8);
  const auto sol = ht::partition::multilevel_bisection(h, prng);
  ht::partition::validate_bisection(h, sol);
  // Random balanced partitions cut roughly half the nets; multilevel
  // should do far better on a local netlist.
  std::vector<bool> naive(256, false);
  for (int v = 0; v < 128; ++v) naive[static_cast<std::size_t>(2 * v)] = true;
  EXPECT_LT(sol.cut, h.cut_weight(naive));
}

}  // namespace
