#include <gtest/gtest.h>

#include "cuttree/tree_distribution.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/star_expansion.hpp"
#include "util/rng.hpp"

namespace {

TEST(TreeDistribution, BuildsRequestedCount) {
  const auto g = ht::graph::grid(4, 4);
  const auto dist = ht::cuttree::build_tree_distribution(g, 5);
  EXPECT_EQ(dist.trees.size(), 5u);
  for (const auto& t : dist.trees) t.validate();
}

TEST(TreeDistribution, AverageNeverWorseThanBestSingleByMuch) {
  // The averaged ratio is at most the worst single tree's ratio, and the
  // evaluator must report average <= best single (averaging only helps
  // when trees err on different pairs — but it can never beat every tree
  // on a single pair family by definition of max).
  ht::Rng rng(1);
  const auto g = ht::graph::gnp_connected(24, 0.2, rng);
  const auto dist = ht::cuttree::build_tree_distribution(g, 4);
  const auto pairs = ht::cuttree::random_set_pairs(24, 30, 4, rng);
  const auto q = ht::cuttree::distribution_quality(g, dist, pairs);
  EXPECT_GT(q.pairs, 0u);
  EXPECT_GE(q.single_best, 1.0 - 1e-9);  // domination per tree
  // Averaging dominated trees stays dominated.
  EXPECT_GE(q.average_max, 1.0 - 1e-9);
}

TEST(TreeDistribution, HypergraphEvaluatorRuns) {
  ht::Rng rng(2);
  const auto h = ht::hypergraph::random_uniform(16, 28, 3, rng);
  const auto star = ht::reduction::star_expansion(h);
  const auto dist = ht::cuttree::build_tree_distribution(star.graph, 4);
  const auto pairs = ht::cuttree::random_set_pairs(16, 20, 3, rng);
  const auto q =
      ht::cuttree::distribution_quality_hypergraph(h, dist, pairs);
  EXPECT_GT(q.pairs, 0u);
  EXPECT_GE(q.average_max, 1.0 - 1e-9);
  EXPECT_GE(q.single_best, q.average_max - 1e-9);
}

TEST(TreeDistribution, SingleTreeDistributionMatchesSingleQuality) {
  ht::Rng rng(3);
  const auto g = ht::graph::grid(4, 4);
  const auto dist = ht::cuttree::build_tree_distribution(g, 1);
  const auto pairs = ht::cuttree::random_set_pairs(16, 20, 3, rng);
  const auto q = ht::cuttree::distribution_quality(g, dist, pairs);
  EXPECT_NEAR(q.single_best, q.average_max, 1e-9);
}

}  // namespace
