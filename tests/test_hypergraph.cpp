#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "hypergraph/generators.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/io.hpp"
#include "util/rng.hpp"

namespace {

using ht::hypergraph::EdgeId;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

TEST(Hypergraph, BasicConstruction) {
  Hypergraph h(5);
  h.add_edge({0, 1, 2}, 2.0);
  h.add_edge({2, 3});
  h.finalize();
  EXPECT_EQ(h.num_vertices(), 5);
  EXPECT_EQ(h.num_edges(), 2);
  EXPECT_EQ(h.edge_size(0), 3);
  EXPECT_DOUBLE_EQ(h.edge_weight(0), 2.0);
  EXPECT_EQ(h.degree(2), 2);
  EXPECT_EQ(h.degree(4), 0);
  EXPECT_EQ(h.max_edge_size(), 3);
}

TEST(Hypergraph, PinsDeduplicatedAndSorted) {
  Hypergraph h(4);
  h.add_edge({3, 1, 3, 1, 2});
  h.finalize();
  const auto pins = h.pins(0);
  EXPECT_EQ(std::vector<VertexId>(pins.begin(), pins.end()),
            (std::vector<VertexId>{1, 2, 3}));
}

TEST(Hypergraph, RejectsTinyEdges) {
  Hypergraph h(3);
  EXPECT_THROW(h.add_edge({1}), std::logic_error);
  EXPECT_THROW(h.add_edge({2, 2}), std::logic_error);  // dedups to size 1
}

TEST(Hypergraph, CutWeight) {
  Hypergraph h(4);
  h.add_edge({0, 1, 2}, 1.0);
  h.add_edge({2, 3}, 2.0);
  h.add_edge({0, 1}, 4.0);
  h.finalize();
  // S = {0,1}: edge 0 spans (cut), edge 1 untouched by S... edge 1 = {2,3}
  // entirely outside; edge 2 inside. Cut = 1.
  EXPECT_DOUBLE_EQ(h.cut_weight(std::vector<bool>{true, true, false, false}),
                   1.0);
  // S = {2}: edge0 cut, edge1 cut -> 3.
  EXPECT_DOUBLE_EQ(h.cut_weight(std::vector<bool>{false, false, true, false}),
                   3.0);
  EXPECT_DOUBLE_EQ(h.cut_weight(std::vector<VertexId>{2}), 3.0);
}

TEST(Hypergraph, TouchingWeight) {
  Hypergraph h(4);
  h.add_edge({0, 1}, 1.0);
  h.add_edge({1, 2}, 2.0);
  h.add_edge({2, 3}, 4.0);
  h.finalize();
  EXPECT_DOUBLE_EQ(h.touching_weight({true, false, false, false}), 1.0);
  EXPECT_DOUBLE_EQ(h.touching_weight({false, true, false, false}), 3.0);
  EXPECT_DOUBLE_EQ(h.touching_weight({false, false, false, false}), 0.0);
}

TEST(Hypergraph, InducedSubhypergraphDropsSmallEdges) {
  Hypergraph h(5);
  h.add_edge({0, 1, 2});
  h.add_edge({2, 3});
  h.add_edge({3, 4});
  h.finalize();
  const auto sub = ht::hypergraph::induced_subhypergraph(h, {0, 1, 2});
  EXPECT_EQ(sub.hypergraph.num_vertices(), 3);
  // {0,1,2} survives fully; {2,3} restricts to {2} -> dropped.
  EXPECT_EQ(sub.hypergraph.num_edges(), 1);
  EXPECT_EQ(sub.hypergraph.edge_size(0), 3);
}

TEST(Hypergraph, ConnectedComponents) {
  Hypergraph h(6);
  h.add_edge({0, 1, 2});
  h.add_edge({4, 5});
  h.finalize();
  auto [comp, count] = ht::hypergraph::connected_components(h);
  EXPECT_EQ(count, 3);  // {0,1,2}, {3}, {4,5}
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_FALSE(ht::hypergraph::is_connected(h));
}

TEST(HypergraphIo, RoundTripUnweighted) {
  Hypergraph h(4);
  h.add_edge({0, 1, 2});
  h.add_edge({1, 3});
  h.finalize();
  std::stringstream ss;
  ht::hypergraph::write_hmetis(h, ss);
  const Hypergraph r = ht::hypergraph::read_hmetis(ss);
  ASSERT_EQ(r.num_vertices(), 4);
  ASSERT_EQ(r.num_edges(), 2);
  EXPECT_EQ(r.edge_size(0), 3);
  const auto pins = r.pins(1);
  EXPECT_EQ(std::vector<VertexId>(pins.begin(), pins.end()),
            (std::vector<VertexId>{1, 3}));
}

TEST(HypergraphIo, RoundTripWeighted) {
  Hypergraph h(3);
  h.add_edge({0, 1}, 2.5);
  h.add_edge({1, 2}, 1.0);
  h.set_vertex_weight(2, 4.0);
  h.finalize();
  std::stringstream ss;
  ht::hypergraph::write_hmetis(h, ss);
  const Hypergraph r = ht::hypergraph::read_hmetis(ss);
  EXPECT_DOUBLE_EQ(r.edge_weight(0), 2.5);
  EXPECT_DOUBLE_EQ(r.vertex_weight(2), 4.0);
  EXPECT_DOUBLE_EQ(r.vertex_weight(0), 1.0);
}

TEST(HypergraphIo, SkipsComments) {
  std::stringstream ss("% comment\n2 3\n1 2\n% another\n2 3\n");
  const Hypergraph h = ht::hypergraph::read_hmetis(ss);
  EXPECT_EQ(h.num_edges(), 2);
  EXPECT_EQ(h.num_vertices(), 3);
}

TEST(Generators, RandomUniformShape) {
  ht::Rng rng(1);
  const Hypergraph h = ht::hypergraph::random_uniform(30, 50, 4, rng);
  EXPECT_EQ(h.num_vertices(), 30);
  EXPECT_EQ(h.num_edges(), 50);
  for (EdgeId e = 0; e < 50; ++e) EXPECT_EQ(h.edge_size(e), 4);
}

TEST(Generators, GnprLogDensityTracksAlpha) {
  // p = n^{1+alpha-r} should give average degree ~ n^alpha.
  ht::Rng rng(2);
  const VertexId n = 200;
  const std::int32_t r = 3;
  const double alpha = 0.7;
  const double p = std::pow(static_cast<double>(n), 1.0 + alpha - r);
  const Hypergraph h = ht::hypergraph::gnpr(n, p, r, rng);
  const double target = std::pow(static_cast<double>(n), alpha);
  EXPECT_GT(h.avg_degree(), target / 4.0);
  EXPECT_LT(h.avg_degree(), target * 4.0);
}

TEST(Generators, PlantedDenseContainsPlantedEdges) {
  ht::Rng rng(3);
  const auto inst = ht::hypergraph::planted_dense(
      100, std::pow(100.0, 1.0 + 0.5 - 3), 3, 20, 0.5, rng);
  EXPECT_EQ(static_cast<int>(inst.planted_vertices.size()), 20);
  EXPECT_GT(inst.hypergraph.num_edges(), inst.first_planted_edge);
  std::set<VertexId> planted(inst.planted_vertices.begin(),
                             inst.planted_vertices.end());
  for (EdgeId e = inst.first_planted_edge; e < inst.hypergraph.num_edges();
       ++e) {
    for (VertexId v : inst.hypergraph.pins(e)) EXPECT_TRUE(planted.count(v));
  }
}

TEST(Generators, SingleSpanningEdge) {
  const Hypergraph h = ht::hypergraph::single_spanning_edge(10, 3.0);
  EXPECT_EQ(h.num_edges(), 1);
  EXPECT_EQ(h.edge_size(0), 10);
  EXPECT_DOUBLE_EQ(h.edge_weight(0), 3.0);
  // Every non-trivial cut costs exactly 3.
  std::vector<bool> side(10, false);
  side[0] = side[3] = true;
  EXPECT_DOUBLE_EQ(h.cut_weight(side), 3.0);
}

TEST(Generators, Figure2WeightedShape) {
  const auto fig = ht::hypergraph::figure2(16);
  const Hypergraph& h = fig.hypergraph;
  EXPECT_EQ(h.num_vertices(), 17);
  EXPECT_EQ(h.num_edges(), 17);  // 16 star edges + 1 heavy hyperedge
  EXPECT_DOUBLE_EQ(h.edge_weight(16), 4.0);  // sqrt(16)
  EXPECT_EQ(h.edge_size(16), 16);
  // Cut of S subset of U: sqrt(n) + |S| (paper's computation).
  std::vector<VertexId> s{fig.u[0], fig.u[1], fig.u[2]};
  EXPECT_DOUBLE_EQ(h.cut_weight(s), 4.0 + 3.0);
}

TEST(Generators, Figure2UnweightedParallelCopies) {
  const auto fig = ht::hypergraph::figure2(16, /*unweighted=*/true);
  EXPECT_EQ(fig.hypergraph.num_edges(), 16 + 4);  // floor(sqrt(16)) copies
  for (EdgeId e = 16; e < fig.hypergraph.num_edges(); ++e)
    EXPECT_DOUBLE_EQ(fig.hypergraph.edge_weight(e), 1.0);
}

TEST(Generators, QuasiUniformDegreesConcentrated) {
  ht::Rng rng(4);
  const Hypergraph h = ht::hypergraph::quasi_uniform(100, 0.5, 3, rng);
  const double target = std::pow(100.0, 0.5) * 3.0 / 3.0;
  double min_d = 1e9, max_d = 0;
  for (VertexId v = 0; v < 100; ++v) {
    min_d = std::min<double>(min_d, h.degree(v));
    max_d = std::max<double>(max_d, h.degree(v));
  }
  EXPECT_GT(min_d, target / 8.0);
  EXPECT_LT(max_d, target * 8.0);
}

TEST(Generators, PlantedBisectionCrossBound) {
  ht::Rng rng(5);
  const Hypergraph h =
      ht::hypergraph::planted_bisection(20, 3, 40, 5, rng);
  EXPECT_EQ(h.num_vertices(), 40);
  std::vector<bool> planted(40, false);
  for (VertexId v = 20; v < 40; ++v) planted[static_cast<std::size_t>(v)] = true;
  EXPECT_LE(h.cut_weight(planted), 5.0);
}

TEST(Generators, NetlistSmallNetsDominate) {
  ht::Rng rng(6);
  const Hypergraph h = ht::hypergraph::netlist_like(256, 400, 3, rng);
  EXPECT_EQ(h.num_edges() >= 400, true);
  int small = 0;
  for (EdgeId e = 0; e < 400; ++e) small += h.edge_size(e) <= 8 ? 1 : 0;
  EXPECT_EQ(small, 400);
  // High-fanout nets exist and are large.
  EXPECT_GE(h.max_edge_size(), 256 / 8);
}

TEST(Generators, SpmvRowNetBanded) {
  ht::Rng rng(7);
  const Hypergraph h = ht::hypergraph::spmv_row_net(64, 64, 4, 0.01, rng);
  EXPECT_GT(h.num_edges(), 32);
  for (EdgeId e = 0; e < h.num_edges(); ++e) EXPECT_GE(h.edge_size(e), 2);
}

}  // namespace
