#include <gtest/gtest.h>

#include <cmath>

#include "cuttree/decomposition_tree.hpp"
#include "cuttree/tree_edge_partition.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "partition/exact.hpp"
#include "partition/graph_bisection.hpp"
#include "partition/unbalanced_kcut.hpp"
#include "util/rng.hpp"

namespace {

using ht::cuttree::Tree;
using ht::graph::Graph;
using ht::graph::VertexId;
using ht::hypergraph::Hypergraph;

// ---------- decomposition trees ----------

TEST(DecompositionTree, EmbedsAllVerticesAsLeaves) {
  const Graph g = ht::graph::grid(4, 4);
  const Tree t = ht::cuttree::build_decomposition_tree(g);
  for (VertexId v = 0; v < 16; ++v) {
    const auto node = t.node_of_vertex(v);
    ASSERT_NE(node, -1);
    EXPECT_TRUE(t.children(node).empty());  // vertices are leaves
  }
}

TEST(DecompositionTree, LeafEdgeWeightsAreDegreeCuts) {
  const Graph g = ht::graph::path(5);
  const Tree t = ht::cuttree::build_decomposition_tree(g);
  // Leaf above vertex v carries delta_G({v}) = weighted degree.
  g.finalized();
  for (VertexId v = 0; v < 5; ++v) {
    const auto node = t.node_of_vertex(v);
    std::vector<bool> single(5, false);
    single[static_cast<std::size_t>(v)] = true;
    EXPECT_DOUBLE_EQ(t.edge_weight(node), g.cut_weight(single));
  }
}

class DecompositionDomination
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecompositionDomination, TreeEdgeCutDominatesGraphCut) {
  ht::Rng rng(GetParam());
  const Graph g = ht::graph::gnp_connected(14, 0.3, rng);
  ht::cuttree::DecompositionOptions options;
  options.seed = GetParam() * 3 + 1;
  const Tree t = ht::cuttree::build_decomposition_tree(g, options);
  for (int trial = 0; trial < 10; ++trial) {
    auto pick = rng.sample_without_replacement(14, 4);
    const std::vector<VertexId> a{pick[0], pick[1]}, b{pick[2], pick[3]};
    const double dg = ht::flow::min_edge_cut(g, a, b).value;
    const double dt = ht::cuttree::tree_edge_cut_dp(t, a, b);
    EXPECT_GE(dt, dg - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionDomination,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- tree edge partition DP ----------

TEST(TreeEdgePartition, PathTreeBisectionCutsOnce) {
  // Chain of clusters: best bisection of a path decomposition cuts one
  // tree edge (the middle).
  Tree t;
  t.reserve_vertices(4);
  const auto root = t.add_node(-1, 1.0);
  const auto left = t.add_node(root, 1.0, 3.0);
  const auto right = t.add_node(root, 1.0, 3.0);
  t.set_vertex_node(0, t.add_node(left, 1.0, 10.0));
  t.set_vertex_node(1, t.add_node(left, 1.0, 10.0));
  t.set_vertex_node(2, t.add_node(right, 1.0, 10.0));
  t.set_vertex_node(3, t.add_node(right, 1.0, 10.0));
  const auto dp = ht::cuttree::balanced_tree_edge_bisection(t, {0, 1, 2, 3});
  ASSERT_TRUE(dp.valid);
  // Sides = the two clusters; cut = edge(left)+edge(right)? No: root can
  // share a side with one cluster; only one 3-weight edge is cut.
  EXPECT_DOUBLE_EQ(dp.tree_cut, 3.0);
  EXPECT_EQ(dp.side[0], dp.side[1]);
  EXPECT_EQ(dp.side[2], dp.side[3]);
  EXPECT_NE(dp.side[0], dp.side[2]);
}

TEST(TreeEdgePartition, TargetKExtractsCheapSubtree) {
  Tree t;
  t.reserve_vertices(4);
  const auto root = t.add_node(-1, 1.0);
  const auto cheap = t.add_node(root, 1.0, 1.0);
  t.set_vertex_node(0, t.add_node(cheap, 1.0, 100.0));
  t.set_vertex_node(1, t.add_node(cheap, 1.0, 100.0));
  t.set_vertex_node(2, t.add_node(root, 1.0, 5.0));
  t.set_vertex_node(3, t.add_node(root, 1.0, 7.0));
  const auto dp = ht::cuttree::tree_edge_partition(t, {0, 1, 2, 3}, 2);
  ASSERT_TRUE(dp.valid);
  // Best pair on side 1: the cheap subtree {0,1} for cost 1.
  EXPECT_DOUBLE_EQ(dp.tree_cut, 1.0);
  EXPECT_TRUE(dp.side[0]);
  EXPECT_TRUE(dp.side[1]);
}

TEST(TreeEdgePartition, ZeroAndFullTargetsAreFree) {
  Tree t;
  t.reserve_vertices(2);
  const auto root = t.add_node(-1, 1.0);
  t.set_vertex_node(0, t.add_node(root, 1.0, 4.0));
  t.set_vertex_node(1, t.add_node(root, 1.0, 6.0));
  EXPECT_DOUBLE_EQ(ht::cuttree::tree_edge_partition(t, {0, 1}, 0).tree_cut,
                   0.0);
  EXPECT_DOUBLE_EQ(ht::cuttree::tree_edge_partition(t, {0, 1}, 2).tree_cut,
                   0.0);
}

// ---------- tree-based graph bisection ----------

TEST(GraphBisectionTreeBased, ValidAndNearExact) {
  ht::Rng rng(5);
  double worst = 1.0;
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = ht::graph::gnp_connected(12, 0.3, rng);
    const auto exact = ht::partition::exact_graph_bisection(g);
    ht::Rng prng(static_cast<std::uint64_t>(trial));
    const auto sol = ht::partition::graph_bisection_tree_based(g, prng);
    ASSERT_TRUE(sol.valid);
    EXPECT_GE(sol.cut, exact.cut - 1e-9);
    if (exact.cut > 0) worst = std::max(worst, sol.cut / exact.cut);
  }
  EXPECT_LE(worst, 2.5);
}

TEST(GraphBisectionTreeBased, RecoversPlantedBisection) {
  ht::Rng rng(6);
  const Graph g = ht::graph::planted_bisection(12, 0.5, 2, rng);
  ht::Rng prng(7);
  const auto sol = ht::partition::graph_bisection_tree_based(g, prng);
  ASSERT_TRUE(sol.valid);
  EXPECT_LE(sol.cut, 2.0 + 1e-9);
}

TEST(GraphBisectionTreeBased, NoPolishStillDominatedByTree) {
  ht::Rng rng(8);
  const Graph g = ht::graph::grid(4, 4);
  ht::Rng prng(9);
  const auto sol =
      ht::partition::graph_bisection_tree_based(g, prng, /*fm_polish=*/false);
  ASSERT_TRUE(sol.valid);
  EXPECT_LE(sol.cut, 8.0);  // a 4x4 grid bisects with cut 4; allow slack
}

TEST(KCutGraphTreeBased, MatchesExactOnSmall) {
  ht::Rng rng(10);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = ht::graph::gnp_connected(12, 0.3, rng);
    ht::hypergraph::Hypergraph wrapper(g.num_vertices());
    for (const auto& e : g.edges()) wrapper.add_edge({e.u, e.v}, e.weight);
    wrapper.finalize();
    for (std::int32_t k : {2, 4}) {
      const auto exact = ht::partition::unbalanced_kcut_exact(wrapper, k);
      ht::Rng prng(static_cast<std::uint64_t>(trial * 10 + k));
      const auto tree_cut =
          ht::partition::unbalanced_kcut_graph_tree_based(g, k, prng);
      ASSERT_TRUE(tree_cut.valid);
      EXPECT_EQ(static_cast<std::int32_t>(tree_cut.set.size()), k);
      EXPECT_GE(tree_cut.cut, exact.cut - 1e-9);
      EXPECT_LE(tree_cut.cut, 3.0 * exact.cut + 4.0);
    }
  }
}

// ---------- hypergraph Gomory–Hu ----------

class HypergraphGomoryHuProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HypergraphGomoryHuProperty, AllPairsMatchDirectCuts) {
  ht::Rng rng(GetParam() * 7 + 1);
  const Hypergraph h = ht::hypergraph::random_uniform(10, 18, 3, rng);
  if (!ht::hypergraph::is_connected(h)) GTEST_SKIP();
  const auto tree = ht::flow::hypergraph_gomory_hu(h);
  for (VertexId s = 0; s < 10; ++s) {
    for (VertexId t = s + 1; t < 10; ++t) {
      const double direct = ht::flow::min_hyperedge_cut(h, {s}, {t}).value;
      EXPECT_NEAR(tree.min_cut(s, t), direct, 1e-9)
          << "pair " << s << "," << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphGomoryHuProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(HypergraphGomoryHu, SingleSpanningEdgeStar) {
  // With one spanning hyperedge every s-t cut is 1; the tree must report 1
  // everywhere.
  const Hypergraph h = ht::hypergraph::single_spanning_edge(8, 2.0);
  const auto tree = ht::flow::hypergraph_gomory_hu(h);
  for (VertexId s = 0; s < 8; ++s)
    for (VertexId t = s + 1; t < 8; ++t)
      EXPECT_DOUBLE_EQ(tree.min_cut(s, t), 2.0);
}

TEST(HypergraphGomoryHu, WeightedFigure2Values) {
  const auto fig = ht::hypergraph::figure2(9);
  const auto tree = ht::flow::hypergraph_gomory_hu(fig.hypergraph);
  // top-u_i: cutting u_0's star edge alone does NOT separate (u_0 reaches
  // top through the heavy hyperedge and another star edge); the optimum is
  // star edge + heavy edge = 1 + 3 = 4.
  EXPECT_DOUBLE_EQ(tree.min_cut(fig.top, fig.u[0]), 4.0);
  // u_i-u_j: star edge of one + heavy edge = 4 (validated in test_flow).
  EXPECT_DOUBLE_EQ(tree.min_cut(fig.u[0], fig.u[1]), 4.0);
}

}  // namespace
